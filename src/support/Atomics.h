//===- Atomics.h - Shared CAS-loop helpers ----------------------*- C++ -*-===//
///
/// \file
/// The one place in the tree allowed to spell a compare-exchange retry
/// loop. cgc-lint rule R3 bans hand-rolled `compare_exchange` loops
/// outside `support/`; callers express their update as a pure step
/// function and route it through one of these helpers instead. That keeps
/// every retry loop in the collector on the same, separately-reviewed
/// skeleton: explicit memory orders, `compare_exchange_weak` (spurious
/// failure tolerated), and a per-attempt hook for fault injection and
/// sync-op accounting.
///
//===----------------------------------------------------------------------===//

#ifndef CGC_SUPPORT_ATOMICS_H
#define CGC_SUPPORT_ATOMICS_H

#include <atomic>
#include <optional>
#include <utility>

namespace cgc {

/// Generic CAS retry loop. Each attempt calls \p OnAttempt (fault
/// injection, contention counters), then \p Step with the currently
/// observed value. \p Step returns the desired new value, or
/// `std::nullopt` to abort the loop (e.g. "stack is empty").
///
/// Returns the old value the successful exchange replaced, or
/// `std::nullopt` if \p Step aborted.
template <class T, class StepFn, class AttemptHook>
std::optional<T> atomicCasLoop(std::atomic<T> &Atom,
                               std::memory_order LoadOrder,
                               std::memory_order SuccessOrder,
                               std::memory_order FailureOrder, StepFn &&Step,
                               AttemptHook &&OnAttempt) {
  T Old = Atom.load(LoadOrder); // cgc-lint: allow(R1) caller-supplied order
  for (;;) {
    OnAttempt();
    std::optional<T> Desired = Step(Old);
    if (!Desired)
      return std::nullopt;
    // On failure compare_exchange reloads Old with FailureOrder.
    // cgc-lint: allow(R1) caller-supplied orders
    if (Atom.compare_exchange_weak(Old, *Desired, SuccessOrder, FailureOrder))
      return Old;
  }
}

/// atomicCasLoop without a per-attempt hook.
template <class T, class StepFn>
std::optional<T> atomicCasLoop(std::atomic<T> &Atom,
                               std::memory_order LoadOrder,
                               std::memory_order SuccessOrder,
                               std::memory_order FailureOrder, StepFn &&Step) {
  return atomicCasLoop(Atom, LoadOrder, SuccessOrder, FailureOrder,
                       std::forward<StepFn>(Step), [] {});
}

/// Monotonic maximum: raises \p Atom to \p Candidate unless a concurrent
/// writer already stored something at least as large (watermarks,
/// high-water statistics). Values may only grow through this helper.
template <class T>
void atomicStoreMax(std::atomic<T> &Atom, T Candidate,
                    std::memory_order Order = std::memory_order_relaxed) {
  T Current = Atom.load(Order); // cgc-lint: allow(R1) caller-supplied order
  while (Candidate > Current && // cgc-lint: allow(R1) caller-supplied order
         !Atom.compare_exchange_weak(Current, Candidate, Order, Order)) {
  }
}

/// Claims and returns the next ticket below \p Limit, or `std::nullopt`
/// once the counter has reached it. The bounded claim used by the card
/// cleaner to parcel out registered cards to concurrent cleaners.
template <class T>
std::optional<T> atomicClaimBelow(std::atomic<T> &Next, T Limit,
                                  std::memory_order Order =
                                      std::memory_order_relaxed) {
  T Ticket = Next.load(Order); // cgc-lint: allow(R1) caller-supplied order
  for (;;) {
    if (Ticket >= Limit)
      return std::nullopt;
    // cgc-lint: allow(R1) caller-supplied order
    if (Next.compare_exchange_weak(Ticket, Ticket + 1, Order, Order))
      return Ticket;
  }
}

} // namespace cgc

#endif // CGC_SUPPORT_ATOMICS_H
