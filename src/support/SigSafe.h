//===- SigSafe.h - Async-signal-safe output helpers -------------*- C++ -*-===//
///
/// \file
/// Formatting helpers usable from signal handlers (the GC flight
/// recorder dumps its crash report through these). Everything here obeys
/// the async-signal-safety rules: no allocation, no locks, no stdio, no
/// errno-clobbering beyond write(2) — just fixed-size stack buffers and
/// direct write() calls, with short writes and EINTR retried.
///
/// The helpers deliberately mirror the subset of printf the flight
/// recorder needs (strings, decimal and hex integers) rather than
/// re-implementing format strings: a handler running after memory
/// corruption should execute as little cleverness as possible.
///
//===----------------------------------------------------------------------===//

#ifndef CGC_SUPPORT_SIGSAFE_H
#define CGC_SUPPORT_SIGSAFE_H

#include <cerrno>
#include <cstddef>
#include <cstdint>

#include <unistd.h>

namespace cgc {

/// Writes \p Len bytes of \p Buf to \p Fd, retrying short writes and
/// EINTR. Errors other than EINTR abandon the write (a crash dump must
/// never loop forever on a dead descriptor).
inline void sigSafeWrite(int Fd, const char *Buf, size_t Len) {
  while (Len > 0) {
    ssize_t N = ::write(Fd, Buf, Len);
    if (N < 0) {
      // Reading errno is async-signal-safe (handlers must only
      // save/restore it, which our callers do not need: the process is
      // about to die).
      if (errno == EINTR)
        continue;
      return;
    }
    if (N == 0)
      return;
    Buf += static_cast<size_t>(N);
    Len -= static_cast<size_t>(N);
  }
}

/// Writes a NUL-terminated string.
inline void sigSafeWriteStr(int Fd, const char *S) {
  size_t Len = 0;
  while (S[Len] != '\0')
    ++Len;
  sigSafeWrite(Fd, S, Len);
}

/// Writes \p V in decimal.
inline void sigSafeWriteDec(int Fd, uint64_t V) {
  char Buf[24];
  size_t I = sizeof(Buf);
  do {
    Buf[--I] = static_cast<char>('0' + V % 10);
    V /= 10;
  } while (V != 0);
  sigSafeWrite(Fd, Buf + I, sizeof(Buf) - I);
}

/// Writes \p V as 0x-prefixed lowercase hex.
inline void sigSafeWriteHex(int Fd, uint64_t V) {
  static const char Digits[] = "0123456789abcdef";
  char Buf[18];
  size_t I = sizeof(Buf);
  do {
    Buf[--I] = Digits[V & 0xf];
    V >>= 4;
  } while (V != 0);
  sigSafeWrite(Fd, "0x", 2);
  sigSafeWrite(Fd, Buf + I, sizeof(Buf) - I);
}

} // namespace cgc

#endif // CGC_SUPPORT_SIGSAFE_H
