//===- Timing.h - Wall-clock helpers ----------------------------*- C++ -*-===//
///
/// \file
/// Monotonic wall-clock helpers used for pause-time and rate measurements.
///
//===----------------------------------------------------------------------===//

#ifndef CGC_SUPPORT_TIMING_H
#define CGC_SUPPORT_TIMING_H

#include <chrono>
#include <cstdint>

namespace cgc {

/// Current monotonic time in nanoseconds.
inline uint64_t nowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Converts nanoseconds to fractional milliseconds.
inline double nanosToMillis(uint64_t Nanos) {
  return static_cast<double>(Nanos) / 1e6;
}

/// A restartable stopwatch measuring elapsed nanoseconds.
class Stopwatch {
public:
  Stopwatch() : Start(nowNanos()) {}

  /// Restarts the measurement window.
  void restart() { Start = nowNanos(); }

  /// Nanoseconds elapsed since construction or the last restart().
  uint64_t elapsedNanos() const { return nowNanos() - Start; }

  /// Milliseconds elapsed since construction or the last restart().
  double elapsedMillis() const { return nanosToMillis(elapsedNanos()); }

private:
  uint64_t Start;
};

} // namespace cgc

#endif // CGC_SUPPORT_TIMING_H
