//===- Timing.h - Wall-clock helpers ----------------------------*- C++ -*-===//
///
/// \file
/// Monotonic wall-clock helpers used for pause-time and rate
/// measurements, routed through a swappable Clock source so tests can
/// substitute a deterministic clock.
///
/// Every timing read in the repo — pause stopwatches, workload
/// deadlines, observability event timestamps — goes through
/// cgc::nowNanos(), which reads Clock. By default Clock reads the real
/// std::chrono::steady_clock; installing a ManualClock (tests only)
/// makes time advance only when the test says so, which removes the
/// wall-clock dependence that made timing asserts flaky on loaded CI
/// hosts.
///
//===----------------------------------------------------------------------===//

#ifndef CGC_SUPPORT_TIMING_H
#define CGC_SUPPORT_TIMING_H

#include <atomic>
#include <cstdint>

namespace cgc {

/// The process-wide time source. All reads go through nowNanos(); the
/// source function is swappable (ManualClock) for deterministic tests.
class Clock {
public:
  using SourceFn = uint64_t (*)();

  /// Current time in nanoseconds from the installed source (the real
  /// monotonic clock unless a test installed a fake).
  static uint64_t nowNanos() {
    return Source.load(std::memory_order_acquire)();
  }

  /// Installs \p Fn as the time source; nullptr restores the real
  /// monotonic clock. Returns the previous source. Not intended for
  /// concurrent install/uninstall (tests install once up front).
  static SourceFn setSource(SourceFn Fn);

  /// The real monotonic clock, regardless of the installed source.
  static uint64_t realNowNanos();

  /// Whether a fake source is currently installed.
  static bool isFaked();

private:
  // Swapped only by tests at quiescent points; hot readers pay one
  // acquire load + indirect call (both free on x86, cheap everywhere).
  static std::atomic<SourceFn> Source;
};

/// Current monotonic time in nanoseconds (via the installed Clock).
inline uint64_t nowNanos() { return Clock::nowNanos(); }

/// Converts nanoseconds to fractional milliseconds.
inline double nanosToMillis(uint64_t Nanos) {
  return static_cast<double>(Nanos) / 1e6;
}

/// A restartable stopwatch measuring elapsed nanoseconds.
class Stopwatch {
public:
  Stopwatch() : Start(nowNanos()) {}

  /// Restarts the measurement window.
  void restart() { Start = nowNanos(); }

  /// Nanoseconds elapsed since construction or the last restart().
  uint64_t elapsedNanos() const { return nowNanos() - Start; }

  /// Milliseconds elapsed since construction or the last restart().
  double elapsedMillis() const { return nanosToMillis(elapsedNanos()); }

private:
  uint64_t Start;
};

/// RAII deterministic clock for tests: installing it makes nowNanos()
/// return a manually advanced counter; destruction restores the real
/// clock. Only one may be active at a time (asserted). Threads still
/// running when time is advanced observe the new value on their next
/// read — advance is a single atomic store.
class ManualClock {
public:
  explicit ManualClock(uint64_t StartNanos = 1);
  ~ManualClock();

  ManualClock(const ManualClock &) = delete;
  ManualClock &operator=(const ManualClock &) = delete;

  /// Sets the current time (must not move backwards).
  void setNanos(uint64_t Nanos);

  /// Advances the clock.
  void advanceNanos(uint64_t Delta);
  void advanceMillis(uint64_t Millis) { advanceNanos(Millis * 1000000ull); }

  /// The value nowNanos() currently returns.
  uint64_t nanos() const;

private:
  static uint64_t read();
  // One writer (the test body), many reader threads via Clock.
  static std::atomic<uint64_t> NowV;
  static std::atomic<bool> Active;
  Clock::SourceFn Prev;
};

} // namespace cgc

#endif // CGC_SUPPORT_TIMING_H
