//===- Smoothing.h - Exponential smoothing average --------------*- C++ -*-===//
///
/// \file
/// Exponential smoothing average, used by the pacer for the L, M and Best
/// predictions of Sections 3.1 and 3.2 of the paper.
///
//===----------------------------------------------------------------------===//

#ifndef CGC_SUPPORT_SMOOTHING_H
#define CGC_SUPPORT_SMOOTHING_H

#include <cassert>

namespace cgc {

/// Exponentially smoothed scalar estimate.
///
/// Until the first sample arrives value() returns the seed supplied at
/// construction; afterwards each sample S updates the estimate E as
/// E = Alpha * S + (1 - Alpha) * E.
class ExponentialAverage {
public:
  explicit ExponentialAverage(double Seed = 0.0, double Alpha = 0.5)
      : Estimate(Seed), Alpha(Alpha) {
    assert(Alpha > 0.0 && Alpha <= 1.0 && "smoothing factor out of range");
  }

  /// Feeds one observation.
  void addSample(double Sample) {
    if (!HasSample) {
      Estimate = Sample;
      HasSample = true;
      return;
    }
    Estimate = Alpha * Sample + (1.0 - Alpha) * Estimate;
  }

  /// Current smoothed prediction.
  double value() const { return Estimate; }

  /// Whether at least one real sample has been folded in.
  bool hasSample() const { return HasSample; }

private:
  double Estimate;
  double Alpha;
  bool HasSample = false;
};

} // namespace cgc

#endif // CGC_SUPPORT_SMOOTHING_H
