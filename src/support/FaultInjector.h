//===- FaultInjector.h - Deterministic fault injection ----------*- C++ -*-===//
///
/// \file
/// Deterministic fault injection for the collector's unhappy paths.
///
/// The paper sketches several degradation paths it never exercises
/// deliberately: packet-pool overflow (mark the object and dirty its
/// card, Section 4.3), allocation outrunning the tracer (Section 3.2's
/// corrective term), and falling back to stop-the-world completion
/// (Section 3). This subsystem makes those paths testable: named
/// injection sites are threaded through the hot paths, and each site can
/// be configured to fail seeded-probabilistically or on every Nth visit,
/// and/or to perturb scheduling (forced yields / stalls) so CAS windows
/// and fence protocols are stretched open under test.
///
/// Cost when disabled: every site fast-path is a single relaxed load of
/// the armed flag behind an unlikely branch (plus one pointer null check
/// where the injector is optional) — the acceptance bar is that benches
/// show no measurable regression with injection off.
///
/// Determinism: each site keeps a visit counter; the decision for the
/// Nth visit of a site is a pure function of (seed, site, N). Under a
/// fixed seed a single-threaded test sees an exactly reproducible fault
/// sequence; concurrent runs see a reproducible per-site sequence
/// modulo visit interleaving.
///
//===----------------------------------------------------------------------===//

#ifndef CGC_SUPPORT_FAULTINJECTOR_H
#define CGC_SUPPORT_FAULTINJECTOR_H

#include "support/SpinLock.h"

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>

namespace cgc {

/// Named injection sites, one per unhappy path worth exercising.
enum class FaultSite : unsigned {
  /// PacketPool::getInput — simulated input-packet starvation.
  PacketAcquireInput,
  /// PacketPool::getOutput — simulated output-packet exhaustion (drives
  /// the Section 4.3 overflow treatment: mark + dirty card).
  PacketAcquireOutput,
  /// PacketPool::getEmpty — simulated Empty-pool exhaustion (drives the
  /// deferred-side overflow fallback).
  PacketAcquireEmpty,
  /// Perturb-only: stretch the CAS window of the packet sub-pool
  /// Treiber stacks (acquire and publish sides).
  PacketCas,
  /// GcHeap::refillCache — simulated transient allocation-cache refill
  /// failure (first rung of the degradation ladder).
  AllocCacheRefill,
  /// Perturb-only: between the allocation-cache flush fence and the
  /// batched allocation-bit publication (Section 5.2 mutator steps 2-3).
  AllocCacheFlush,
  /// ShardedFreeList::allocateUpTo — simulated transient free-list
  /// refill failure.
  FreeListRefill,
  /// ShardedFreeList::allocate — simulated transient large-allocation
  /// failure.
  FreeListAllocate,
  /// CardCleaner::tryBeginConcurrentPass — pass registration denied for
  /// this attempt (callers must retry or escalate).
  CardCleanBegin,
  /// CardCleaner::cleanSome (concurrent passes only) — cleaner yields
  /// its claim loop early.
  CardCleanStep,
  /// Tracer::traceWork — the tracing increment ends early, under-filling
  /// its budget (allocation outruns the tracer; the pacer falls behind).
  TracerStep,
  /// Perturb-only: StealingMarker steal attempts.
  MarkerSteal,
  /// WorkerPool::runParallel — parallel dispatch degrades to serial
  /// execution on the calling thread (workers "unavailable").
  WorkerDispatch,
  /// Compactor::evacuate target selection — simulated allocation failure
  /// for one object's evacuation target (the object stays in the area
  /// and is counted as a failed move; compaction degrades gracefully
  /// instead of aborting).
  CompactorTargetAlloc,
  /// ThreadRegistry::poll — the mutator skips this cooperation point
  /// entirely (no handshake acknowledgement, no safepoint park). With
  /// BurstLength configured, one hit opens a per-thread burst: that
  /// mutator skips its next BurstLength visits too, simulating a thread
  /// wedged in a long syscall or native loop. Drives the timed-handshake
  /// stall defense.
  MutatorPollSkip,
  /// Perturb-only: stretch the mid-transition window of
  /// ThreadRegistry::enterIdle/exitIdle (the odd span of the context's
  /// TransitionSeq seqlock), so handshake initiators observe threads
  /// caught between execution states.
  IdleTransitionStall,
  /// Decision site consulted by chaos workloads: detach the mutator
  /// mid-cycle and reattach it, exercising registry membership churn
  /// against in-flight handshakes.
  MutatorDetach,
  NumSites
};

/// Human-readable site name.
const char *faultSiteName(FaultSite Site);

/// Per-site failure/perturbation configuration. All knobs default off.
struct FaultSiteConfig {
  /// Fail with this probability per visit (seeded draw), in [0, 1].
  double Probability = 0.0;
  /// Fail deterministically on every Nth visit (0 = off). Checked before
  /// the probabilistic draw; EveryNth == 1 fails every visit.
  uint64_t EveryNth = 0;
  /// Forced sched yields on every visit to the site.
  uint32_t YieldCount = 0;
  /// Forced stall (microseconds) on every visit to the site.
  uint32_t StallMicros = 0;
  /// Non-cooperation burst: when a failure decision hits, the affected
  /// actor keeps failing for this many further visits of its own (0 =
  /// single-shot). Consumed per-thread by the MutatorPollSkip site (the
  /// thread that drew the hit skips its next BurstLength polls).
  uint32_t BurstLength = 0;
};

/// A full injection plan: the GcOptions knob for chaos mode.
struct FaultPlan {
  static constexpr unsigned NumSites =
      static_cast<unsigned>(FaultSite::NumSites);

  /// Master switch; with Enabled == false every site is a cold no-op.
  bool Enabled = false;

  /// Seed for the per-site decision sequences.
  uint64_t Seed = 0x5eedfa17ULL;

  std::array<FaultSiteConfig, NumSites> Sites{};

  FaultSiteConfig &site(FaultSite S) {
    return Sites[static_cast<unsigned>(S)];
  }
  const FaultSiteConfig &site(FaultSite S) const {
    return Sites[static_cast<unsigned>(S)];
  }

  /// Chainable helpers so tests read declaratively.
  FaultPlan &failWithProbability(FaultSite S, double P) {
    site(S).Probability = P;
    Enabled = true;
    return *this;
  }
  FaultPlan &failEveryNth(FaultSite S, uint64_t N) {
    site(S).EveryNth = N;
    Enabled = true;
    return *this;
  }
  FaultPlan &perturb(FaultSite S, uint32_t Yields, uint32_t StallMicros = 0) {
    site(S).YieldCount = Yields;
    site(S).StallMicros = StallMicros;
    Enabled = true;
    return *this;
  }
  FaultPlan &burst(FaultSite S, uint32_t Length) {
    site(S).BurstLength = Length;
    return *this;
  }
};

/// Deterministic fault injector shared by one heap's subsystems.
///
/// Thread-safe: decisions use per-site atomic visit counters; the plan
/// itself is guarded by a spin lock taken only on the (cold) armed path,
/// so tests may reconfigure() between phases of a chaos run.
class FaultInjector {
public:
  static constexpr unsigned NumSites = FaultPlan::NumSites;

  /// Disarmed injector: every site is a no-op.
  FaultInjector() = default;

  explicit FaultInjector(const FaultPlan &Plan) { reconfigure(Plan); }

  FaultInjector(const FaultInjector &) = delete;
  FaultInjector &operator=(const FaultInjector &) = delete;

  /// Swaps in a new plan (arms or disarms). Visit/injection counters are
  /// preserved so a multi-phase chaos test keeps cumulative totals.
  void reconfigure(const FaultPlan &NewPlan);

  /// Restores the disarmed state.
  void disarm() { Armed.store(false, std::memory_order_relaxed); }

  bool enabled() const { return Armed.load(std::memory_order_relaxed); }

  /// Whether this visit to \p S should fail. The cold branch: disabled
  /// injectors answer with one relaxed load.
  bool shouldFail(FaultSite S) {
    if (__builtin_expect(!Armed.load(std::memory_order_relaxed), 1))
      return false;
    return shouldFailSlow(S);
  }

  /// Applies the configured yields/stall at \p S (scheduling chaos that
  /// never fails the operation).
  void maybePerturb(FaultSite S) {
    if (__builtin_expect(!Armed.load(std::memory_order_relaxed), 1))
      return;
    perturbSlow(S);
  }

  /// --- Introspection (tests, chaos reports) --------------------------

  /// Decisions drawn at \p S since construction.
  uint64_t visits(FaultSite S) const {
    return Visits[static_cast<unsigned>(S)].load(std::memory_order_relaxed);
  }
  /// Failures injected at \p S.
  uint64_t injected(FaultSite S) const {
    return Injected[static_cast<unsigned>(S)].load(std::memory_order_relaxed);
  }
  /// Perturbations (yield/stall visits) applied at \p S.
  uint64_t perturbed(FaultSite S) const {
    return Perturbed[static_cast<unsigned>(S)].load(
        std::memory_order_relaxed);
  }
  /// The configured burst length of \p S (cold; callers read it only
  /// after a hit, to size their per-actor non-cooperation window).
  uint32_t burstLength(FaultSite S) const;
  /// Total failures injected across all sites.
  uint64_t totalInjected() const;

private:
  bool shouldFailSlow(FaultSite S);
  void perturbSlow(FaultSite S);

  std::atomic<bool> Armed{false};
  mutable SpinLock PlanLock;
  FaultPlan Plan;

  std::array<std::atomic<uint64_t>, NumSites> Visits{};
  std::array<std::atomic<uint64_t>, NumSites> Injected{};
  std::array<std::atomic<uint64_t>, NumSites> Perturbed{};
};

} // namespace cgc

#endif // CGC_SUPPORT_FAULTINJECTOR_H
