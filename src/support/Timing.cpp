//===- Timing.cpp - Wall-clock helpers -----------------------------------------//

#include "support/Timing.h"

#include <cassert>
#include <chrono>

using namespace cgc;

uint64_t Clock::realNowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::atomic<Clock::SourceFn> Clock::Source{&Clock::realNowNanos};

Clock::SourceFn Clock::setSource(SourceFn Fn) {
  return Source.exchange(Fn ? Fn : &Clock::realNowNanos,
                         std::memory_order_acq_rel);
}

bool Clock::isFaked() {
  return Source.load(std::memory_order_acquire) != &Clock::realNowNanos;
}

std::atomic<uint64_t> ManualClock::NowV{0};
std::atomic<bool> ManualClock::Active{false};

uint64_t ManualClock::read() {
  return NowV.load(std::memory_order_acquire);
}

ManualClock::ManualClock(uint64_t StartNanos) {
  bool WasActive = Active.exchange(true, std::memory_order_acq_rel);
  assert(!WasActive && "only one ManualClock may be active");
  (void)WasActive;
  NowV.store(StartNanos, std::memory_order_release);
  Prev = Clock::setSource(&ManualClock::read);
}

ManualClock::~ManualClock() {
  Clock::setSource(Prev);
  Active.store(false, std::memory_order_release);
}

void ManualClock::setNanos(uint64_t Nanos) {
  assert(Nanos >= NowV.load(std::memory_order_relaxed) &&
         "manual clock must not move backwards");
  NowV.store(Nanos, std::memory_order_release);
}

void ManualClock::advanceNanos(uint64_t Delta) {
  NowV.fetch_add(Delta, std::memory_order_acq_rel);
}

uint64_t ManualClock::nanos() const {
  return NowV.load(std::memory_order_acquire);
}
