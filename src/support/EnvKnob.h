//===- EnvKnob.h - Validated environment-knob parsing -----------*- C++ -*-===//
///
/// \file
/// Shared, validated parsing for the numeric `CGC_*` environment knobs
/// the bench harnesses (and some tests) consume. The previous per-bench
/// `strtoull` calls silently turned a mistyped value ("3OO", "-5",
/// "2.5s") into 0 and fell back to the default — a bench sweep then ran
/// with a configuration the operator did not ask for and no hint why.
///
/// parseEnvKnob() is a pure function (testable without touching the
/// environment): it accepts only a full non-negative decimal or
/// 0x-prefixed hex integer with no trailing junk and no overflow, and
/// produces a human-readable error otherwise. envKnobU64() wraps it
/// over getenv(): unset means "use the default", an invalid value is a
/// hard error (message to stderr, exit 2) — never a silent zero.
///
//===----------------------------------------------------------------------===//

#ifndef CGC_SUPPORT_ENVKNOB_H
#define CGC_SUPPORT_ENVKNOB_H

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace cgc {

/// Parses \p Text as a non-negative integer (decimal, or hex with a
/// "0x"/"0X" prefix). On success stores the value in \p Out and returns
/// true. On failure returns false and, when \p Error is non-null, fills
/// it with the reason (empty string, leading minus, trailing junk,
/// overflow). Leading/trailing whitespace is rejected — a knob is a
/// bare number, and a stray space usually means a quoting mistake.
inline bool parseEnvKnob(const char *Text, uint64_t *Out,
                         std::string *Error = nullptr) {
  auto fail = [&](const std::string &Why) {
    if (Error)
      *Error = Why;
    return false;
  };
  if (!Text || *Text == '\0')
    return fail("empty value");
  if (*Text == '-')
    return fail("negative value (knobs are non-negative integers)");
  if (*Text == '+' || *Text == ' ' || *Text == '\t')
    return fail("value must start with a digit (got '" +
                std::string(1, *Text) + "')");
  errno = 0;
  char *End = nullptr;
  unsigned long long Parsed = std::strtoull(Text, &End, 0);
  if (End == Text)
    return fail("not a number: '" + std::string(Text) + "'");
  if (errno == ERANGE)
    return fail("value out of range: '" + std::string(Text) + "'");
  if (*End != '\0')
    return fail("trailing junk after number: '" + std::string(End) + "'");
  *Out = static_cast<uint64_t>(Parsed);
  return true;
}

/// Reads environment knob \p Name: unset returns \p Default, a valid
/// value is returned as-is, an invalid value prints a clear message and
/// exits with status 2 (the run must not silently proceed with a
/// configuration the operator did not set).
inline uint64_t envKnobU64(const char *Name, uint64_t Default) {
  const char *Env = std::getenv(Name);
  if (!Env)
    return Default;
  uint64_t Value = 0;
  std::string Error;
  if (!parseEnvKnob(Env, &Value, &Error)) {
    std::fprintf(stderr, "error: invalid %s='%s': %s\n", Name, Env,
                 Error.c_str());
    std::exit(2);
  }
  return Value;
}

} // namespace cgc

#endif // CGC_SUPPORT_ENVKNOB_H
