//===- Annotations.h - Concurrency annotation macros ------------*- C++ -*-===//
///
/// \file
/// Macros that make the repo's concurrency discipline machine-checkable.
///
/// Two audiences consume these annotations:
///
///  * Clang's Thread Safety Analysis: under Clang the CGC_* lock macros
///    expand to the corresponding `capability` attributes, and the default
///    build adds `-Wthread-safety -Werror=thread-safety-analysis`, so a
///    field read without its declared lock is a build error. Under other
///    compilers (the reproduction host builds with GCC) they expand to
///    nothing.
///
///  * `tools/cgc-lint` (rule R4): every `std::atomic` member in the core
///    concurrent components must carry either a CGC_GUARDED_BY (it is in
///    fact lock-protected) or a CGC_ATOMIC_DOC stating which threads touch
///    it and why the chosen memory orders suffice. CGC_ATOMIC_DOC never
///    expands to code — it exists so the claim is written next to the
///    field and so the lint can verify the claim exists.
///
//===----------------------------------------------------------------------===//

#ifndef CGC_SUPPORT_ANNOTATIONS_H
#define CGC_SUPPORT_ANNOTATIONS_H

#if defined(__clang__) && !defined(SWIG)
#define CGC_TSA_ATTR(x) __attribute__((x))
#else
#define CGC_TSA_ATTR(x) // no-op under GCC/MSVC
#endif

/// Marks a class as a lock-like capability (SpinLock, mutex wrappers).
#define CGC_CAPABILITY(name) CGC_TSA_ATTR(capability(name))

/// Marks an RAII guard whose constructor acquires and destructor releases.
#define CGC_SCOPED_CAPABILITY CGC_TSA_ATTR(scoped_lockable)

/// Field may only be read or written while holding \p lock.
#define CGC_GUARDED_BY(lock) CGC_TSA_ATTR(guarded_by(lock))

/// Pointed-to data may only be touched while holding \p lock.
#define CGC_PT_GUARDED_BY(lock) CGC_TSA_ATTR(pt_guarded_by(lock))

/// Function requires the listed capabilities to be held on entry.
#define CGC_REQUIRES(...) CGC_TSA_ATTR(requires_capability(__VA_ARGS__))

/// Function acquires the listed capabilities (held on return).
#define CGC_ACQUIRE(...) CGC_TSA_ATTR(acquire_capability(__VA_ARGS__))

/// Function releases the listed capabilities.
#define CGC_RELEASE(...) CGC_TSA_ATTR(release_capability(__VA_ARGS__))

/// Function tries to acquire; returns \p result on success.
#define CGC_TRY_ACQUIRE(...) CGC_TSA_ATTR(try_acquire_capability(__VA_ARGS__))

/// Function must NOT be called with the listed capabilities held.
#define CGC_EXCLUDES(...) CGC_TSA_ATTR(locks_excluded(__VA_ARGS__))

/// Function returns a reference to the given capability.
#define CGC_RETURN_CAPABILITY(x) CGC_TSA_ATTR(lock_returned(x))

/// Escape hatch for code the analysis cannot follow (document why!).
#define CGC_NO_THREAD_SAFETY_ANALYSIS CGC_TSA_ATTR(no_thread_safety_analysis)

/// Documentation-only marker for atomics that are intentionally accessed
/// by multiple threads without a lock. The argument is a short free-text
/// claim naming the writer/reader threads and the ordering argument, e.g.
///   CGC_ATOMIC_DOC("workers CAS, checker acquire-loads; Section 4.3")
/// Expands to nothing; cgc-lint rule R4 requires it (or CGC_GUARDED_BY)
/// on every std::atomic member of the core concurrent components.
#define CGC_ATOMIC_DOC(claim)

//===----------------------------------------------------------------------===//
// GC-safety annotations (consumed by tools/cgc-mole, DESIGN.md §14)
//===----------------------------------------------------------------------===//
//
// cgc-mole propagates a may-reach-safepoint bit over the whole-tree
// call graph. These markers extend (CGC_SAFEPOINT) and constrain
// (CGC_NO_SAFEPOINT) that propagation, and CGC_GC_UNSAFE_OK is the
// audited escape hatch. All three expand to nothing — they exist in the
// token stream for the analyzer and in the source for the reader.

/// Declares that this function may reach a GC safepoint: it can poll,
/// allocate, park the calling thread, or hand control to the collector.
/// cgc-mole seeds its propagation here (in addition to its built-in
/// seed list), so callers inherit the bit transitively. Put it on the
/// declaration the callers see.
#define CGC_SAFEPOINT

/// Asserts that this function NEVER reaches a safepoint, directly or
/// transitively. cgc-mole treats it as a propagation barrier and
/// verifies the claim: a CGC_NO_SAFEPOINT function whose body calls a
/// may-safepoint function is a build error (rule NS). Use it on
/// barrier/allocation fast paths and signal-safe code whose callers
/// rely on the guarantee.
#define CGC_NO_SAFEPOINT

/// Audited escape hatch: suppresses every cgc-mole finding on this
/// statement (its line and the next). The argument must say WHY the
/// flagged pattern is safe here — suppressions are counted in the tool
/// output, so each one stays a visible, justified exception rather
/// than silent drift. Equivalent comment form:
///   // cgc-mole: allow(M1): reason
#define CGC_GC_UNSAFE_OK(reason)

#endif // CGC_SUPPORT_ANNOTATIONS_H
