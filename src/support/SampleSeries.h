//===- SampleSeries.h - Aggregating sample recorder -------------*- C++ -*-===//
///
/// \file
/// Thread-safe recorder of scalar samples with min/max/mean/stddev
/// aggregation, used for pause times, tracing factors and the other
/// per-cycle measurements reported in Section 6 of the paper.
///
//===----------------------------------------------------------------------===//

#ifndef CGC_SUPPORT_SAMPLESERIES_H
#define CGC_SUPPORT_SAMPLESERIES_H

#include "support/SpinLock.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <mutex>
#include <vector>

namespace cgc {

/// Collects double samples and answers aggregate queries. All methods are
/// thread-safe; samples are kept so percentiles could be added later.
class SampleSeries {
public:
  /// Appends one observation.
  void add(double Sample) {
    SpinLockGuard Guard(Lock);
    Samples.push_back(Sample);
  }

  /// Number of observations recorded.
  size_t count() const {
    SpinLockGuard Guard(Lock);
    return Samples.size();
  }

  /// Arithmetic mean, or 0 when empty.
  double mean() const {
    SpinLockGuard Guard(Lock);
    return meanLocked();
  }

  /// Largest observation, or 0 when empty.
  double max() const {
    SpinLockGuard Guard(Lock);
    double Max = 0.0;
    for (double S : Samples)
      if (S > Max)
        Max = S;
    return Max;
  }

  /// Smallest observation, or 0 when empty.
  double min() const {
    SpinLockGuard Guard(Lock);
    if (Samples.empty())
      return 0.0;
    double Min = Samples.front();
    for (double S : Samples)
      if (S < Min)
        Min = S;
    return Min;
  }

  /// Sum of all observations.
  double sum() const {
    SpinLockGuard Guard(Lock);
    double Sum = 0.0;
    for (double S : Samples)
      Sum += S;
    return Sum;
  }

  /// Population standard deviation, or 0 when fewer than two samples.
  double stddev() const {
    SpinLockGuard Guard(Lock);
    if (Samples.size() < 2)
      return 0.0;
    double Mean = meanLocked();
    double Var = 0.0;
    for (double S : Samples)
      Var += (S - Mean) * (S - Mean);
    return std::sqrt(Var / static_cast<double>(Samples.size()));
  }

  /// Copies out the raw samples (for custom reductions in benches).
  std::vector<double> snapshot() const {
    SpinLockGuard Guard(Lock);
    return Samples;
  }

  /// The \p Q quantile (0 <= Q <= 1) by nearest-rank, or 0 when empty.
  /// percentile(0.99) is the p99.
  double percentile(double Q) const {
    SpinLockGuard Guard(Lock);
    if (Samples.empty())
      return 0.0;
    std::vector<double> Sorted = Samples;
    std::sort(Sorted.begin(), Sorted.end());
    double Rank = Q * static_cast<double>(Sorted.size() - 1);
    size_t Index = static_cast<size_t>(Rank);
    if (Index + 1 >= Sorted.size())
      return Sorted.back();
    double Frac = Rank - static_cast<double>(Index);
    return Sorted[Index] * (1.0 - Frac) + Sorted[Index + 1] * Frac;
  }

  /// Discards all samples.
  void reset() {
    SpinLockGuard Guard(Lock);
    Samples.clear();
  }

private:
  double meanLocked() const {
    if (Samples.empty())
      return 0.0;
    double Sum = 0.0;
    for (double S : Samples)
      Sum += S;
    return Sum / static_cast<double>(Samples.size());
  }

  mutable SpinLock Lock;
  std::vector<double> Samples;
};

} // namespace cgc

#endif // CGC_SUPPORT_SAMPLESERIES_H
