//===- Fences.cpp - Instrumented memory fences ----------------------------===//

#include "support/Fences.h"

using namespace cgc;

const char *cgc::fenceSiteName(FenceSite Site) {
  switch (Site) {
  case FenceSite::AllocCacheFlush:
    return "alloc-cache-flush";
  case FenceSite::TracerBatch:
    return "tracer-batch";
  case FenceSite::PacketPublish:
    return "packet-publish";
  case FenceSite::CardTableHandshake:
    return "card-table-handshake";
  case FenceSite::StopTheWorld:
    return "stop-the-world";
  case FenceSite::NaivePerObjectAlloc:
    return "naive-per-object-alloc";
  case FenceSite::NaivePerWriteBarrier:
    return "naive-per-write-barrier";
  case FenceSite::NaivePerObjectTrace:
    return "naive-per-object-trace";
  case FenceSite::NumSites:
    break;
  }
  return "unknown";
}

uint64_t FenceCounters::totalRealFences() const {
  uint64_t Total = 0;
  for (unsigned I = 0; I < static_cast<unsigned>(FenceSite::NaivePerObjectAlloc);
       ++I)
    Total += Counts[I].load(std::memory_order_relaxed);
  return Total;
}

uint64_t FenceCounters::totalNaiveFences() const {
  uint64_t Total = 0;
  for (unsigned I = static_cast<unsigned>(FenceSite::NaivePerObjectAlloc);
       I < NumSites; ++I)
    Total += Counts[I].load(std::memory_order_relaxed);
  return Total;
}

void FenceCounters::reset() {
  for (auto &C : Counts)
    C.store(0, std::memory_order_relaxed);
}

FenceCounters &cgc::fenceCounters() {
  static FenceCounters Counters;
  return Counters;
}
