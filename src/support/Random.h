//===- Random.h - Fast deterministic PRNG -----------------------*- C++ -*-===//
///
/// \file
/// A small, fast, seedable PRNG (splitmix64 + xorshift) for workload
/// generators. Deterministic given a seed so tests are reproducible.
///
//===----------------------------------------------------------------------===//

#ifndef CGC_SUPPORT_RANDOM_H
#define CGC_SUPPORT_RANDOM_H

#include <cassert>
#include <cstdint>

namespace cgc {

/// xorshift128+ generator seeded via splitmix64.
class Random {
public:
  explicit Random(uint64_t Seed = 0x9e3779b97f4a7c15ULL) {
    uint64_t X = Seed;
    S0 = splitmix(X);
    S1 = splitmix(X);
    if (S0 == 0 && S1 == 0)
      S1 = 1;
  }

  /// Uniform 64-bit value.
  uint64_t next() {
    uint64_t A = S0, B = S1;
    S0 = B;
    A ^= A << 23;
    A ^= A >> 17;
    A ^= B ^ (B >> 26);
    S1 = A;
    return A + B;
  }

  /// Uniform value in [0, Bound). \p Bound must be nonzero.
  uint64_t nextBelow(uint64_t Bound) {
    assert(Bound != 0 && "empty range");
    return next() % Bound;
  }

  /// Uniform value in [Lo, Hi] inclusive.
  uint64_t nextInRange(uint64_t Lo, uint64_t Hi) {
    assert(Lo <= Hi && "inverted range");
    return Lo + nextBelow(Hi - Lo + 1);
  }

  /// Uniform double in [0, 1).
  double nextDouble() {
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// True with probability \p P.
  bool nextBool(double P) { return nextDouble() < P; }

private:
  static uint64_t splitmix(uint64_t &X) {
    X += 0x9e3779b97f4a7c15ULL;
    uint64_t Z = X;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    return Z ^ (Z >> 31);
  }

  uint64_t S0, S1;
};

} // namespace cgc

#endif // CGC_SUPPORT_RANDOM_H
