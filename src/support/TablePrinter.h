//===- TablePrinter.h - Fixed-width table output ----------------*- C++ -*-===//
///
/// \file
/// Minimal fixed-width table printer used by the benchmark harnesses to
/// reproduce the paper's tables/figure series in textual form.
///
//===----------------------------------------------------------------------===//

#ifndef CGC_SUPPORT_TABLEPRINTER_H
#define CGC_SUPPORT_TABLEPRINTER_H

#include <cstdio>
#include <string>
#include <vector>

namespace cgc {

/// Accumulates rows of strings and prints them with aligned columns.
class TablePrinter {
public:
  /// Creates a table with the given column headers.
  explicit TablePrinter(std::vector<std::string> Headers);

  /// Appends a row; missing cells render empty, extra cells are dropped.
  void addRow(std::vector<std::string> Cells);

  /// Formats a double with \p Precision fraction digits.
  static std::string num(double Value, int Precision = 1);

  /// Formats an integer.
  static std::string num(uint64_t Value);

  /// Formats a ratio as a percentage string like "12.3%".
  static std::string percent(double Ratio, int Precision = 1);

  /// Writes the table to \p Out (defaults to stdout).
  void print(std::FILE *Out = stdout) const;

private:
  std::vector<std::string> Headers;
  std::vector<std::vector<std::string>> Rows;
};

} // namespace cgc

#endif // CGC_SUPPORT_TABLEPRINTER_H
