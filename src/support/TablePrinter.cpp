//===- TablePrinter.cpp - Fixed-width table output -------------------------===//

#include "support/TablePrinter.h"

#include <algorithm>
#include <cinttypes>

using namespace cgc;

TablePrinter::TablePrinter(std::vector<std::string> Headers)
    : Headers(std::move(Headers)) {}

void TablePrinter::addRow(std::vector<std::string> Cells) {
  Cells.resize(Headers.size());
  Rows.push_back(std::move(Cells));
}

std::string TablePrinter::num(double Value, int Precision) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.*f", Precision, Value);
  return Buf;
}

std::string TablePrinter::num(uint64_t Value) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%" PRIu64, Value);
  return Buf;
}

std::string TablePrinter::percent(double Ratio, int Precision) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.*f%%", Precision, Ratio * 100.0);
  return Buf;
}

void TablePrinter::print(std::FILE *Out) const {
  std::vector<size_t> Widths(Headers.size());
  for (size_t I = 0; I < Headers.size(); ++I)
    Widths[I] = Headers[I].size();
  for (const auto &Row : Rows)
    for (size_t I = 0; I < Row.size(); ++I)
      Widths[I] = std::max(Widths[I], Row[I].size());

  auto printRow = [&](const std::vector<std::string> &Cells) {
    for (size_t I = 0; I < Cells.size(); ++I)
      std::fprintf(Out, "%s%-*s", I ? "  " : "", static_cast<int>(Widths[I]),
                   Cells[I].c_str());
    std::fprintf(Out, "\n");
  };

  printRow(Headers);
  size_t Total = 0;
  for (size_t W : Widths)
    Total += W + 2;
  for (size_t I = 0; I + 2 < Total; ++I)
    std::fputc('-', Out);
  std::fputc('\n', Out);
  for (const auto &Row : Rows)
    printRow(Row);
  std::fflush(Out);
}
