//===- Fences.h - Instrumented memory fences --------------------*- C++ -*-===//
///
/// \file
/// Instrumented memory-fence entry points for the collector.
///
/// The paper (Section 5) keeps weak-ordering correctness while issuing as
/// few multi-cycle fence instructions as possible: one fence per block of
/// small objects allocated, one fence per work packet published, one fence
/// per group of objects examined by a tracer, and zero fences in the write
/// barrier. On the reproduction host (x86/TSO) a fence's reordering effect
/// cannot be observed, so in addition to issuing a real
/// std::atomic_thread_fence we count every fence per call-site category.
/// The fence-count tables produced by bench/ablation_fences reproduce the
/// paper's claim ("significantly fewer fences") quantitatively.
///
//===----------------------------------------------------------------------===//

#ifndef CGC_SUPPORT_FENCES_H
#define CGC_SUPPORT_FENCES_H

#include <array>
#include <atomic>
#include <cstdint>

namespace cgc {

/// Why a fence was issued. Each enumerator is one of the batching points
/// described in Section 5 of the paper (or the naive scheme simulated for
/// the ablation benchmark).
enum class FenceSite : unsigned {
  /// One fence when a full allocation cache publishes its allocation bits
  /// (Section 5.2, mutator side, step 2).
  AllocCacheFlush,
  /// One fence after a tracer has sampled the allocation bits of all
  /// entries of an input packet (Section 5.2, tracer side, step 3).
  TracerBatch,
  /// One fence before an output work packet is returned to the shared
  /// pool (Section 5.1).
  PacketPublish,
  /// One fence per mutator acknowledged during the card-table cleaning
  /// handshake (Section 5.3, step 2).
  CardTableHandshake,
  /// Fences that are part of stopping/starting the world.
  StopTheWorld,
  /// Ablation only: the naive scheme's fence after every single object
  /// allocation (never issued by the real collector; counted when the
  /// naive-fence simulation knob is on).
  NaivePerObjectAlloc,
  /// Ablation only: the naive scheme's fence per write barrier.
  NaivePerWriteBarrier,
  /// Ablation only: the naive scheme's fence per object traced.
  NaivePerObjectTrace,
  NumSites
};

/// Returns a human-readable name for \p Site.
const char *fenceSiteName(FenceSite Site);

/// Global per-site fence counters. Relaxed increments; read by benches.
class FenceCounters {
public:
  static constexpr unsigned NumSites =
      static_cast<unsigned>(FenceSite::NumSites);

  /// Adds one issued fence at \p Site.
  void record(FenceSite Site) {
    Counts[static_cast<unsigned>(Site)].fetch_add(1,
                                                  std::memory_order_relaxed);
  }

  /// Counts recorded fences at \p Site since the last reset.
  uint64_t count(FenceSite Site) const {
    return Counts[static_cast<unsigned>(Site)].load(
        std::memory_order_relaxed);
  }

  /// Sum over every real (non-ablation) site.
  uint64_t totalRealFences() const;

  /// Sum over the simulated naive sites.
  uint64_t totalNaiveFences() const;

  /// Zeroes all counters.
  void reset();

private:
  std::array<std::atomic<uint64_t>, NumSites> Counts{};
};

/// Process-wide fence counters.
FenceCounters &fenceCounters();

/// Issues a sequentially consistent hardware fence and records it under
/// \p Site.
inline void fence(FenceSite Site) {
  std::atomic_thread_fence(std::memory_order_seq_cst);
  fenceCounters().record(Site);
}

/// Records a fence the naive scheme would have issued, without paying for
/// it. Used by the fence ablation to compare batched vs per-operation
/// schemes on identical executions.
inline void recordNaiveFence(FenceSite Site) { fenceCounters().record(Site); }

} // namespace cgc

#endif // CGC_SUPPORT_FENCES_H
