//===- SpinLock.h - Tiny test-and-test-and-set lock -------------*- C++ -*-===//
///
/// \file
/// A minimal spin lock for short critical sections (free-list access,
/// registry snapshots). Satisfies the Lockable named requirement so it
/// works with std::lock_guard.
///
//===----------------------------------------------------------------------===//

#ifndef CGC_SUPPORT_SPINLOCK_H
#define CGC_SUPPORT_SPINLOCK_H

#include <atomic>
#include <thread>

namespace cgc {

/// Test-and-test-and-set spin lock that yields while contended. On the
/// single-core reproduction host yielding (rather than pure spinning) is
/// essential for forward progress.
class SpinLock {
public:
  void lock() {
    for (;;) {
      if (!Flag.exchange(true, std::memory_order_acquire))
        return;
      while (Flag.load(std::memory_order_relaxed))
        std::this_thread::yield();
    }
  }

  bool try_lock() {
    return !Flag.load(std::memory_order_relaxed) &&
           !Flag.exchange(true, std::memory_order_acquire);
  }

  void unlock() { Flag.store(false, std::memory_order_release); }

private:
  std::atomic<bool> Flag{false};
};

} // namespace cgc

#endif // CGC_SUPPORT_SPINLOCK_H
