//===- SpinLock.h - Tiny test-and-test-and-set lock -------------*- C++ -*-===//
///
/// \file
/// A minimal spin lock for short critical sections (free-list access,
/// registry snapshots), annotated as a Clang Thread Safety capability,
/// plus the scoped guard the rest of the tree must use (cgc-lint rule R4
/// bans `std::lock_guard<SpinLock>`, whose acquire/release the analysis
/// cannot see through).
///
//===----------------------------------------------------------------------===//

#ifndef CGC_SUPPORT_SPINLOCK_H
#define CGC_SUPPORT_SPINLOCK_H

#include "support/Annotations.h"

#include <atomic>
#include <mutex>
#include <thread>

namespace cgc {

/// Test-and-test-and-set spin lock that yields while contended. On the
/// single-core reproduction host yielding (rather than pure spinning) is
/// essential for forward progress.
class CGC_CAPABILITY("mutex") SpinLock {
public:
  void lock() CGC_ACQUIRE() {
    for (;;) {
      if (!Flag.exchange(true, std::memory_order_acquire))
        return;
      while (Flag.load(std::memory_order_relaxed))
        std::this_thread::yield();
    }
  }

  bool try_lock() CGC_TRY_ACQUIRE(true) {
    return !Flag.load(std::memory_order_relaxed) &&
           !Flag.exchange(true, std::memory_order_acquire);
  }

  void unlock() CGC_RELEASE() { Flag.store(false, std::memory_order_release); }

private:
  CGC_ATOMIC_DOC("acquire exchange / release store; the lock itself")
  std::atomic<bool> Flag{false};
};

/// RAII guard for SpinLock, visible to the thread-safety analysis. The
/// adopt overload takes ownership of an already-held lock (used after a
/// successful try_lock).
class CGC_SCOPED_CAPABILITY SpinLockGuard {
public:
  explicit SpinLockGuard(SpinLock &L) CGC_ACQUIRE(L) : Lock(L) { Lock.lock(); }
  SpinLockGuard(SpinLock &L, std::adopt_lock_t) CGC_REQUIRES(L) : Lock(L) {}
  ~SpinLockGuard() CGC_RELEASE() { Lock.unlock(); }

  SpinLockGuard(const SpinLockGuard &) = delete;
  SpinLockGuard &operator=(const SpinLockGuard &) = delete;

private:
  SpinLock &Lock;
};

} // namespace cgc

#endif // CGC_SUPPORT_SPINLOCK_H
