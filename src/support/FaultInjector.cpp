//===- FaultInjector.cpp - Deterministic fault injection ----------------------//

#include "support/FaultInjector.h"

#include <chrono>
#include <thread>

using namespace cgc;

const char *cgc::faultSiteName(FaultSite Site) {
  switch (Site) {
  case FaultSite::PacketAcquireInput:
    return "packet-acquire-input";
  case FaultSite::PacketAcquireOutput:
    return "packet-acquire-output";
  case FaultSite::PacketAcquireEmpty:
    return "packet-acquire-empty";
  case FaultSite::PacketCas:
    return "packet-cas";
  case FaultSite::AllocCacheRefill:
    return "alloc-cache-refill";
  case FaultSite::AllocCacheFlush:
    return "alloc-cache-flush";
  case FaultSite::FreeListRefill:
    return "freelist-refill";
  case FaultSite::FreeListAllocate:
    return "freelist-allocate";
  case FaultSite::CardCleanBegin:
    return "card-clean-begin";
  case FaultSite::CardCleanStep:
    return "card-clean-step";
  case FaultSite::TracerStep:
    return "tracer-step";
  case FaultSite::MarkerSteal:
    return "marker-steal";
  case FaultSite::WorkerDispatch:
    return "worker-dispatch";
  case FaultSite::CompactorTargetAlloc:
    return "compactor-target-alloc";
  case FaultSite::MutatorPollSkip:
    return "mutator-poll-skip";
  case FaultSite::IdleTransitionStall:
    return "idle-transition-stall";
  case FaultSite::MutatorDetach:
    return "mutator-detach";
  case FaultSite::NumSites:
    break;
  }
  return "unknown";
}

uint32_t FaultInjector::burstLength(FaultSite S) const {
  SpinLockGuard Guard(PlanLock);
  return Plan.Sites[static_cast<unsigned>(S)].BurstLength;
}

void FaultInjector::reconfigure(const FaultPlan &NewPlan) {
  {
    SpinLockGuard Guard(PlanLock);
    Plan = NewPlan;
  }
  // Publish the armed flag last so a racing fast-path that sees the flag
  // reads the new plan under the lock.
  Armed.store(NewPlan.Enabled, std::memory_order_release);
}

uint64_t FaultInjector::totalInjected() const {
  uint64_t Sum = 0;
  for (const auto &C : Injected)
    Sum += C.load(std::memory_order_relaxed);
  return Sum;
}

/// splitmix64 finalizer: a well-mixed pure function of its input.
static uint64_t mix64(uint64_t Z) {
  Z += 0x9e3779b97f4a7c15ULL;
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
  return Z ^ (Z >> 31);
}

/// Deterministic uniform draw in [0, 1) for visit \p N of site \p I.
static double drawUniform(uint64_t Seed, unsigned I, uint64_t N) {
  uint64_t H = mix64(Seed ^ mix64((static_cast<uint64_t>(I) + 1) *
                                  0xd6e8feb86659fd93ULL + N));
  return static_cast<double>(H >> 11) * (1.0 / 9007199254740992.0);
}

bool FaultInjector::shouldFailSlow(FaultSite S) {
  unsigned I = static_cast<unsigned>(S);
  uint64_t N = Visits[I].fetch_add(1, std::memory_order_relaxed) + 1;
  FaultSiteConfig Config;
  uint64_t Seed;
  {
    SpinLockGuard Guard(PlanLock);
    Config = Plan.Sites[I];
    Seed = Plan.Seed;
  }
  bool Hit = false;
  if (Config.EveryNth != 0 && N % Config.EveryNth == 0)
    Hit = true;
  else if (Config.Probability > 0.0 &&
           drawUniform(Seed, I, N) < Config.Probability)
    Hit = true;
  if (Hit)
    Injected[I].fetch_add(1, std::memory_order_relaxed);
  return Hit;
}

void FaultInjector::perturbSlow(FaultSite S) {
  unsigned I = static_cast<unsigned>(S);
  FaultSiteConfig Config;
  {
    SpinLockGuard Guard(PlanLock);
    Config = Plan.Sites[I];
  }
  if (Config.YieldCount == 0 && Config.StallMicros == 0)
    return;
  Perturbed[I].fetch_add(1, std::memory_order_relaxed);
  for (uint32_t Y = 0; Y < Config.YieldCount; ++Y)
    std::this_thread::yield();
  if (Config.StallMicros != 0)
    std::this_thread::sleep_for(
        std::chrono::microseconds(Config.StallMicros));
}
