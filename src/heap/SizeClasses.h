//===- SizeClasses.h - Static size-class table and FASTLOOKUP ---*- C++ -*-===//
///
/// \file
/// The static size-class geometry of the llheap-style allocation fast
/// path (DESIGN.md §16). Small allocations are rounded up to one of a
/// fixed set of class sizes and served from per-thread segregated
/// chunk caches (AllocationCache); the mapping from a request size to
/// its class is a single constexpr table lookup indexed by granule
/// count — llheap's FASTLOOKUP, O(1) with no loops or branches on the
/// allocation path.
///
/// Class sizes are granule multiples from the minimum object size up
/// to MaxSizeClassBytes, spaced so internal fragmentation stays below
/// ~33% (power-of-two steps with midpoints). Requests above the table
/// fall back to the bump-pointer TLAB path unchanged.
///
//===----------------------------------------------------------------------===//

#ifndef CGC_HEAP_SIZECLASSES_H
#define CGC_HEAP_SIZECLASSES_H

#include "heap/ObjectModel.h"

#include <array>
#include <cstddef>
#include <cstdint>

namespace cgc {

/// The class sizes, ascending. The smallest class is the minimum object
/// size; each object carved from a class chunk is header-initialized to
/// exactly the class size, so sweep's object walk stays consistent.
inline constexpr std::array<uint16_t, 12> SizeClassSizes = {
    16, 32, 48, 64, 96, 128, 192, 256, 384, 512, 768, 1024};

inline constexpr size_t NumSizeClasses = SizeClassSizes.size();

/// Largest request the class path serves; bigger small objects keep
/// using the bump-pointer allocation cache.
inline constexpr size_t MaxSizeClassBytes = SizeClassSizes.back();

static_assert(SizeClassSizes.front() >= Object::MinObjectBytes,
              "smallest class must hold a minimum object");
static_assert(MaxSizeClassBytes % GranuleBytes == 0, "classes are granular");

namespace size_class_detail {
constexpr auto buildSizeClassLookup() {
  // Entry G maps a request of G granules (G * GranuleBytes bytes) to the
  // index of the first class that fits it.
  std::array<uint8_t, MaxSizeClassBytes / GranuleBytes + 1> Table{};
  size_t Class = 0;
  for (size_t G = 0; G < Table.size(); ++G) {
    while (Class < NumSizeClasses && SizeClassSizes[Class] < G * GranuleBytes)
      ++Class;
    Table[G] = static_cast<uint8_t>(Class);
  }
  return Table;
}
} // namespace size_class_detail

/// FASTLOOKUP: granule-indexed request-size -> class-index table.
inline constexpr auto SizeClassLookup = size_class_detail::buildSizeClassLookup();

/// Class index for a granule-aligned request of \p TotalBytes
/// (1 <= TotalBytes <= MaxSizeClassBytes).
constexpr unsigned sizeClassFor(size_t TotalBytes) {
  return SizeClassLookup[(TotalBytes + GranuleBytes - 1) / GranuleBytes];
}

/// Chunk size of class \p Class.
constexpr size_t sizeClassBytes(unsigned Class) {
  return SizeClassSizes[Class];
}

} // namespace cgc

#endif // CGC_HEAP_SIZECLASSES_H
