//===- FreeList.cpp - Segregated free-space manager ----------------------------//

#include "heap/FreeList.h"

#include <algorithm>
#include <cassert>

using namespace cgc;

void FreeList::insertLargeLocked(uint8_t *Start, size_t Size) {
  auto [It, Inserted] = Large.emplace(Start, Size);
  assert(Inserted && "duplicate large range");
  static_cast<void>(Inserted);
  LargeBySize.emplace(Size, Start);
  static_cast<void>(It);
  noteRangeTracked(Size);
}

void FreeList::eraseLargeLocked(std::map<uint8_t *, size_t>::iterator It) {
  auto Range = LargeBySize.equal_range(It->second);
  for (auto SizeIt = Range.first; SizeIt != Range.second; ++SizeIt)
    if (SizeIt->second == It->first) {
      LargeBySize.erase(SizeIt);
      break;
    }
  noteRangeUntracked(It->second);
  Large.erase(It);
}

void FreeList::addRange(uint8_t *Start, size_t Size) {
  // Below the bin granularity the range is not worth tracking (no
  // object fits anyway); the next sweep reclaims it from the bitmap.
  if (Size < BinGranuleBytes)
    return;
  SpinLockGuard Guard(Lock);
  LockAcquisitions.fetch_add(1, std::memory_order_relaxed);
  FreeByteCount.fetch_add(Size, std::memory_order_relaxed);

  if (Size < BinThresholdBytes) {
    Bins[binIndex(Size)].emplace_back(Start, static_cast<uint32_t>(Size));
    ++SmallRangeCount;
    noteRangeTracked(Size);
    return;
  }

  // Coalesce with adjacent LARGE ranges (small neighbours stay separate;
  // the next sweep re-derives maximal runs from the bitmap anyway).
  auto Next = Large.lower_bound(Start);
  if (Next != Large.begin()) {
    auto Prev = std::prev(Next);
    assert(Prev->first + Prev->second <= Start && "overlapping free ranges");
    if (Prev->first + Prev->second == Start) {
      Start = Prev->first;
      Size += Prev->second;
      eraseLargeLocked(Prev);
      Next = Large.lower_bound(Start);
    }
  }
  if (Next != Large.end()) {
    assert(Start + Size <= Next->first && "overlapping free ranges");
    if (Start + Size == Next->first) {
      Size += Next->second;
      eraseLargeLocked(Next);
    }
  }
  insertLargeLocked(Start, Size);
}

uint8_t *FreeList::takeLocked(uint8_t *Start, size_t RangeSize,
                              size_t Take) {
  assert(Take <= RangeSize && "taking more than the range holds");
  FreeByteCount.fetch_sub(Take, std::memory_order_relaxed);
  size_t Remainder = RangeSize - Take;
  if (Remainder == 0)
    return Start;
  if (Remainder < BinGranuleBytes) {
    // Too small to track: grant it with the block (the caller's object
    // headers don't cover it, so the next sweep reclaims it).
    FreeByteCount.fetch_sub(Remainder, std::memory_order_relaxed);
    return Start;
  }
  uint8_t *Rest = Start + Take;
  if (Remainder < BinThresholdBytes) {
    Bins[binIndex(Remainder)].emplace_back(
        Rest, static_cast<uint32_t>(Remainder));
    ++SmallRangeCount;
    noteRangeTracked(Remainder);
  } else {
    insertLargeLocked(Rest, Remainder);
  }
  return Start;
}

uint8_t *FreeList::allocate(size_t Size) {
  assert(Size > 0 && "empty allocation");
  SpinLockGuard Guard(Lock);
  LockAcquisitions.fetch_add(1, std::memory_order_relaxed);
  // Best fit among the large ranges.
  auto BySize = LargeBySize.lower_bound(Size);
  if (BySize != LargeBySize.end()) {
    auto It = Large.find(BySize->second);
    uint8_t *Start = It->first;
    size_t RangeSize = It->second;
    eraseLargeLocked(It);
    return takeLocked(Start, RangeSize, Size);
  }
  // Then the bins: the first class guaranteed to satisfy Size.
  if (Size < BinThresholdBytes) {
    for (size_t Class = (Size + BinGranuleBytes - 1) / BinGranuleBytes;
         Class < NumBins; ++Class) {
      auto &Bin = Bins[Class];
      if (Bin.empty())
        continue;
      auto [Start, RangeSize] = Bin.back();
      Bin.pop_back();
      --SmallRangeCount;
      noteRangeUntracked(RangeSize);
      return takeLocked(Start, RangeSize, Size);
    }
    // The floor class may still hold a large-enough entry.
    auto &Bin = Bins[binIndex(Size)];
    for (size_t I = 0; I < Bin.size(); ++I)
      if (Bin[I].second >= Size) {
        auto [Start, RangeSize] = Bin[I];
        Bin[I] = Bin.back();
        Bin.pop_back();
        --SmallRangeCount;
        noteRangeUntracked(RangeSize);
        return takeLocked(Start, RangeSize, Size);
      }
  }
  return nullptr;
}

uint8_t *FreeList::allocateUpTo(size_t MinSize, size_t MaxSize,
                                size_t &OutSize) {
  assert(MinSize > 0 && MinSize <= MaxSize && "bad refill bounds");
  SpinLockGuard Guard(Lock);
  LockAcquisitions.fetch_add(1, std::memory_order_relaxed);

  // Prefer a full-size grant from the large ranges (best fit).
  auto BySize = LargeBySize.lower_bound(MaxSize);
  if (BySize != LargeBySize.end()) {
    auto It = Large.find(BySize->second);
    uint8_t *Start = It->first;
    size_t RangeSize = It->second;
    eraseLargeLocked(It);
    OutSize = MaxSize;
    return takeLocked(Start, RangeSize, MaxSize);
  }
  // Otherwise the largest range that still satisfies MinSize, whole.
  if (!LargeBySize.empty()) {
    auto Last = std::prev(LargeBySize.end());
    if (Last->first >= MinSize) {
      auto It = Large.find(Last->second);
      uint8_t *Start = It->first;
      size_t RangeSize = It->second;
      eraseLargeLocked(It);
      OutSize = RangeSize;
      return takeLocked(Start, RangeSize, RangeSize);
    }
  }
  // Finally the bins, largest class first: grant the whole entry.
  for (size_t Class = NumBins; Class-- > 0;) {
    auto &Bin = Bins[Class];
    if (Bin.empty())
      continue;
    if (Class * BinGranuleBytes + (BinGranuleBytes - 1) < MinSize)
      break; // No smaller class can satisfy MinSize either.
    // Sizes within a class span BinGranuleBytes; find any entry that
    // satisfies MinSize (all do except in the boundary class).
    for (size_t I = Bin.size(); I-- > 0;) {
      if (Bin[I].second < MinSize)
        continue;
      auto [Start, RangeSize] = Bin[I];
      Bin[I] = Bin.back();
      Bin.pop_back();
      --SmallRangeCount;
      noteRangeUntracked(RangeSize);
      OutSize = RangeSize;
      return takeLocked(Start, RangeSize, RangeSize);
    }
  }
  return nullptr;
}

size_t FreeList::withdrawWithin(uint8_t *Lo, uint8_t *Hi) {
  std::vector<std::pair<uint8_t *, size_t>> Outside;
  size_t Withdrawn = 0;
  {
    SpinLockGuard Guard(Lock);
  LockAcquisitions.fetch_add(1, std::memory_order_relaxed);
    // Large ranges: the first candidate may straddle Lo from below.
    auto It = Large.lower_bound(Lo);
    if (It != Large.begin() && std::prev(It)->first + std::prev(It)->second > Lo)
      --It;
    while (It != Large.end() && It->first < Hi) {
      uint8_t *Start = It->first;
      size_t Size = It->second;
      auto Next = std::next(It);
      eraseLargeLocked(It);
      FreeByteCount.fetch_sub(Size, std::memory_order_relaxed);
      uint8_t *End = Start + Size;
      uint8_t *CutLo = std::max(Start, Lo);
      uint8_t *CutHi = std::min(End, Hi);
      Withdrawn += static_cast<size_t>(CutHi - CutLo);
      if (Start < Lo)
        Outside.emplace_back(Start, static_cast<size_t>(Lo - Start));
      if (End > Hi)
        Outside.emplace_back(Hi, static_cast<size_t>(End - Hi));
      It = Next;
    }
    // Bins: drop any entry intersecting the window (entries are small;
    // straddling pieces are abandoned until the next sweep).
    for (auto &Bin : Bins) {
      for (size_t I = 0; I < Bin.size();) {
        auto [Start, Size] = Bin[I];
        if (Start < Hi && Start + Size > Lo) {
          Withdrawn += Size;
          FreeByteCount.fetch_sub(Size, std::memory_order_relaxed);
          noteRangeUntracked(Size);
          Bin[I] = Bin.back();
          Bin.pop_back();
          --SmallRangeCount;
        } else {
          ++I;
        }
      }
    }
  }
  for (auto [Start, Size] : Outside)
    addRange(Start, Size);
  return Withdrawn;
}

FreeRangeStats FreeList::statsWithin(uint8_t *Lo, uint8_t *Hi) const {
  FreeRangeStats Stats;
  if (Lo >= Hi)
    return Stats;
  SpinLockGuard Guard(Lock);
  auto Note = [&Stats, Lo, Hi](uint8_t *Start, size_t Size) {
    uint8_t *End = Start + Size;
    if (Start >= Hi || End <= Lo)
      return;
    size_t Clipped =
        static_cast<size_t>(std::min(End, Hi) - std::max(Start, Lo));
    Stats.FreeBytes += Clipped;
    ++Stats.RangeCount;
    if (Clipped > Stats.LargestRange)
      Stats.LargestRange = Clipped;
  };
  // Large ranges: the first candidate may straddle Lo from below.
  auto It = Large.lower_bound(Lo);
  if (It != Large.begin() && std::prev(It)->first + std::prev(It)->second > Lo)
    --It;
  for (; It != Large.end() && It->first < Hi; ++It)
    Note(It->first, It->second);
  // Bins are unordered; scan them all (they are small by construction).
  for (const auto &Bin : Bins)
    for (const auto &[Start, Size] : Bin)
      Note(Start, Size);
  return Stats;
}

size_t FreeList::largestRange() const {
  SpinLockGuard Guard(Lock);
  if (!LargeBySize.empty())
    return std::prev(LargeBySize.end())->first;
  for (size_t Class = NumBins; Class-- > 0;) {
    size_t Largest = 0;
    for (const auto &[Start, Size] : Bins[Class])
      if (Size > Largest)
        Largest = Size;
    if (Largest)
      return Largest;
  }
  return 0;
}

size_t FreeList::numRanges() const {
  SpinLockGuard Guard(Lock);
  return Large.size() + SmallRangeCount;
}

void FreeList::clear() {
  SpinLockGuard Guard(Lock);
  LockAcquisitions.fetch_add(1, std::memory_order_relaxed);
  Large.clear();
  LargeBySize.clear();
  for (auto &Bin : Bins)
    Bin.clear();
  SmallRangeCount = 0;
  FreeByteCount.store(0, std::memory_order_relaxed);
  RefillableByteCount.store(0, std::memory_order_relaxed);
}

std::vector<std::pair<uint8_t *, size_t>> FreeList::snapshotRanges() const {
  SpinLockGuard Guard(Lock);
  std::vector<std::pair<uint8_t *, size_t>> Result;
  Result.reserve(Large.size() + SmallRangeCount);
  for (const auto &[Start, Size] : Large)
    Result.emplace_back(Start, Size);
  for (const auto &Bin : Bins)
    for (const auto &[Start, Size] : Bin)
      Result.emplace_back(Start, Size);
  std::sort(Result.begin(), Result.end());
  return Result;
}
