//===- CardTable.cpp - Card-marking write-barrier table ---------------------//

#include "heap/CardTable.h"

using namespace cgc;

CardTable::CardTable(const void *BaseAddr, size_t Size)
    : Base(static_cast<const uint8_t *>(BaseAddr)), SizeBytes(Size),
      NumCards((Size + CardBytes - 1) / CardBytes),
      Cards(new std::atomic<uint8_t>[NumCards]) {
  clearAll();
}

size_t CardTable::registerAndClearDirty(std::vector<uint32_t> &Registered) {
  size_t Found = 0;
  for (size_t I = 0; I < NumCards; ++I) {
    if (!Cards[I].load(std::memory_order_relaxed))
      continue;
    // exchange (not plain store) so a barrier store racing with the
    // registration is either observed now or leaves the card dirty for
    // the next pass.
    if (Cards[I].exchange(0, std::memory_order_relaxed)) {
      Registered.push_back(static_cast<uint32_t>(I));
      ++Found;
    }
  }
  return Found;
}

size_t CardTable::countDirty() const {
  size_t Count = 0;
  for (size_t I = 0; I < NumCards; ++I)
    if (Cards[I].load(std::memory_order_relaxed))
      ++Count;
  return Count;
}

void CardTable::clearAll() {
  for (size_t I = 0; I < NumCards; ++I)
    Cards[I].store(0, std::memory_order_relaxed);
}
