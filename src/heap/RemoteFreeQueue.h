//===- RemoteFreeQueue.h - Lock-free MPSC remote-free queue -----*- C++ -*-===//
///
/// \file
/// The ownership-return half of the allocation fast path (DESIGN.md
/// §16, llheap's remote-free design). When sweep or compaction
/// reclaims a sub-bin-threshold free run, pushing it onto the owning
/// shard's shared FreeList would take that shard's lock once per run —
/// the exact convoy the per-thread caches exist to avoid. Instead the
/// run is pushed onto the shard's RemoteFreeQueue: a Treiber-stack
/// MPSC queue of chunk overlays written into the free memory itself.
/// Producers are the parallel/lazy sweepers and the compactor's
/// rebuild; the consumer is whichever mutator refills from the shard
/// next (its class-refill drains the queue straight into its size-class
/// cache, lock-free), the allocation ladder's stranded-memory reclaim,
/// or a detach with no successor.
///
/// takeAll() is a single exchange and is safe to call from any thread;
/// "single consumer" is a drain-affinity convention (the shard's
/// preferred mutator), not a safety requirement. Chunk payloads are
/// published by the release push and read after the acquire exchange.
///
/// The whole structure is dropped (reset()) inside every sweep pause:
/// the bitwise sweep re-derives all free runs from the mark bits, so
/// parked chunks must not survive into the next generation (they would
/// be double-owned once the sweep re-inserts them).
///
//===----------------------------------------------------------------------===//

#ifndef CGC_HEAP_REMOTEFREEQUEUE_H
#define CGC_HEAP_REMOTEFREEQUEUE_H

#include "support/Annotations.h"
#include "support/Atomics.h"

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace cgc {

/// Intrusive list node written into the first bytes of a parked free
/// chunk. The chunk's allocation and mark bits are clear, so nothing
/// (tracer, conservative scan, verifier) reads the memory while parked.
struct RemoteFreeChunk {
  RemoteFreeChunk *Next;
  size_t SizeBytes;
};

/// Lock-free Treiber stack of free chunks pending return to one shard.
class RemoteFreeQueue {
public:
  /// Smallest chunk the queue accepts: must hold the overlay node and
  /// match the free list's bin granularity (anything smaller would be
  /// dropped by FreeList::addRange on drain anyway).
  static constexpr size_t MinChunkBytes = 64;

  RemoteFreeQueue() = default;
  RemoteFreeQueue(const RemoteFreeQueue &) = delete;
  RemoteFreeQueue &operator=(const RemoteFreeQueue &) = delete;

  /// Parks [Start, Start + Size). Called by sweepers and the compactor
  /// concurrently with mutators; wait-free except for CAS retries.
  CGC_NO_SAFEPOINT void push(uint8_t *Start, size_t Size) {
    auto *Chunk = reinterpret_cast<RemoteFreeChunk *>(Start);
    Chunk->SizeBytes = Size;
    atomicCasLoop(
        Head, std::memory_order_relaxed, std::memory_order_release,
        std::memory_order_relaxed,
        [&](RemoteFreeChunk *Old) -> std::optional<RemoteFreeChunk *> {
          Chunk->Next = Old;
          return Chunk;
        });
    QueuedBytes.fetch_add(Size, std::memory_order_relaxed);
  }

  /// Detaches and returns the whole chunk list (LIFO order), or nullptr
  /// when the queue is empty. The caller owns every returned chunk.
  CGC_NO_SAFEPOINT RemoteFreeChunk *takeAll() {
    RemoteFreeChunk *List = Head.exchange(nullptr, std::memory_order_acquire);
    if (!List)
      return nullptr;
    size_t Taken = 0;
    for (RemoteFreeChunk *C = List; C; C = C->Next)
      Taken += C->SizeBytes;
    QueuedBytes.fetch_sub(Taken, std::memory_order_relaxed);
    return List;
  }

  /// Advisory bytes currently parked (pacer-visible free-space input).
  size_t queuedBytes() const {
    return QueuedBytes.load(std::memory_order_relaxed);
  }

  /// Drops all parked chunks without returning them (sweep pause: the
  /// bitwise sweep re-derives the memory from the mark bits).
  void reset() {
    Head.store(nullptr, std::memory_order_relaxed);
    QueuedBytes.store(0, std::memory_order_relaxed);
  }

private:
  CGC_ATOMIC_DOC("Treiber head; producers release-push, consumers "
                 "acquire-exchange (publishes the chunk overlays)")
  std::atomic<RemoteFreeChunk *> Head{nullptr};
  CGC_ATOMIC_DOC("advisory parked-byte aggregate for the pacer; relaxed, "
                 "momentarily overshoots during takeAll")
  std::atomic<size_t> QueuedBytes{0};
};

} // namespace cgc

#endif // CGC_HEAP_REMOTEFREEQUEUE_H
