//===- ShardedFreeList.cpp - Address-partitioned free-space manager ----------//

#include "heap/ShardedFreeList.h"

#include <algorithm>
#include <cassert>
#include <thread>

using namespace cgc;

unsigned ShardedFreeList::resolveShardCount(unsigned Requested,
                                            size_t HeapBytes,
                                            size_t MinShardBytes) {
  if (Requested == 0) {
    unsigned Hw = std::thread::hardware_concurrency();
    Requested = Hw == 0 ? 1 : (Hw < 8 ? Hw : 8);
  }
  // Round down to a power of two (clears the lowest set bit until only
  // the highest remains).
  while (Requested & (Requested - 1))
    Requested &= Requested - 1;
  size_t Floor = MinShardBytes > 4096 ? MinShardBytes : 4096;
  while (Requested > 1 && HeapBytes / Requested < Floor)
    Requested >>= 1;
  return Requested;
}

ShardedFreeList::ShardedFreeList(uint8_t *Base, size_t SizeBytes,
                                 unsigned NumShards, FaultInjector *FI,
                                 size_t RefillThresholdBytes)
    : Base(Base), Size(SizeBytes), FI(FI) {
  NumShards = resolveShardCount(NumShards, SizeBytes, /*MinShardBytes=*/4096);
  // Page-aligned spans: shard boundaries never split a granule, and the
  // last shard absorbs the (page-rounded) remainder.
  ShardSpan = (Size + NumShards - 1) / NumShards;
  ShardSpan = (ShardSpan + 4095) & ~size_t{4095};
  Shards.reserve(NumShards);
  for (unsigned I = 0; I < NumShards; ++I)
    Shards.push_back(std::make_unique<FreeList>(RefillThresholdBytes));
}

void ShardedFreeList::addRange(uint8_t *Start, size_t Bytes) {
  while (Bytes > 0) {
    size_t Index = shardIndexFor(Start);
    uint8_t *End = shardEnd(Index);
    size_t Piece = static_cast<size_t>(End - Start);
    if (Piece > Bytes)
      Piece = Bytes;
    Shards[Index]->addRange(Start, Piece);
    Start += Piece;
    Bytes -= Piece;
  }
}

uint8_t *ShardedFreeList::allocate(size_t Bytes, size_t PreferredShard) {
  if (FI && FI->shouldFail(FaultSite::FreeListAllocate))
    return nullptr; // Simulated transient exhaustion; callers escalate.
  size_t N = Shards.size();
  for (size_t I = 0; I < N; ++I) {
    FreeList &S = *Shards[(PreferredShard + I) % N];
    // Relaxed pre-check: a shard whose total free count cannot cover the
    // request has no single range that can either. Racing inserts are
    // covered by the caller's collect-and-retry loop.
    if (S.freeBytes() < Bytes)
      continue;
    if (uint8_t *P = S.allocate(Bytes))
      return P;
  }
  return nullptr;
}

uint8_t *ShardedFreeList::allocateUpTo(size_t MinSize, size_t MaxSize,
                                       size_t &OutSize,
                                       size_t PreferredShard) {
  if (FI && FI->shouldFail(FaultSite::FreeListRefill))
    return nullptr; // Simulated transient exhaustion; callers escalate.
  size_t N = Shards.size();
  if (N == 1) // Exact legacy single-list behavior.
    return Shards[0]->allocateUpTo(MinSize, MaxSize, OutSize);
  // Pass 1: a full-size grant from any shard beats a partial grant from
  // the preferred one — otherwise affinity would shrink caches while
  // other shards still hold whole spans.
  for (size_t I = 0; I < N; ++I) {
    FreeList &S = *Shards[(PreferredShard + I) % N];
    if (S.freeBytes() < MaxSize)
      continue;
    if (uint8_t *P = S.allocateUpTo(MaxSize, MaxSize, OutSize))
      return P;
  }
  // Pass 2: partial grants, preferred shard first.
  for (size_t I = 0; I < N; ++I) {
    FreeList &S = *Shards[(PreferredShard + I) % N];
    if (S.freeBytes() < MinSize)
      continue;
    if (uint8_t *P = S.allocateUpTo(MinSize, MaxSize, OutSize))
      return P;
  }
  return nullptr;
}

size_t ShardedFreeList::freeBytes() const {
  size_t Sum = 0;
  for (const auto &S : Shards)
    Sum += S->freeBytes();
  return Sum;
}

size_t ShardedFreeList::refillableFreeBytes() const {
  size_t Sum = 0;
  for (const auto &S : Shards)
    Sum += S->refillableFreeBytes();
  return Sum;
}

uint64_t ShardedFreeList::lockAcquisitions() const {
  uint64_t Sum = 0;
  for (const auto &S : Shards)
    Sum += S->lockAcquisitions();
  return Sum;
}

size_t ShardedFreeList::largestRange() const {
  size_t Largest = 0;
  for (const auto &S : Shards)
    Largest = std::max(Largest, S->largestRange());
  return Largest;
}

size_t ShardedFreeList::numRanges() const {
  size_t Sum = 0;
  for (const auto &S : Shards)
    Sum += S->numRanges();
  return Sum;
}

void ShardedFreeList::clear() {
  for (const auto &S : Shards)
    S->clear();
}

size_t ShardedFreeList::withdrawWithin(uint8_t *Lo, uint8_t *Hi) {
  if (Lo < Base)
    Lo = Base;
  if (Hi > Base + Size)
    Hi = Base + Size;
  if (Lo >= Hi)
    return 0;
  // Per-shard ranges never extend outside their shard, so each shard
  // overlapping the window handles it (and re-adds straddling outside
  // parts) independently.
  size_t First = shardIndexFor(Lo);
  size_t Last = shardIndexFor(Hi - 1);
  size_t Withdrawn = 0;
  for (size_t I = First; I <= Last; ++I)
    Withdrawn += Shards[I]->withdrawWithin(Lo, Hi);
  return Withdrawn;
}

FreeRangeStats ShardedFreeList::statsWithin(uint8_t *Lo, uint8_t *Hi) const {
  FreeRangeStats Stats;
  if (Lo < Base)
    Lo = Base;
  if (Hi > Base + Size)
    Hi = Base + Size;
  if (Lo >= Hi)
    return Stats;
  size_t First = shardIndexFor(Lo);
  size_t Last = shardIndexFor(Hi - 1);
  for (size_t I = First; I <= Last; ++I)
    Stats.merge(Shards[I]->statsWithin(Lo, Hi));
  return Stats;
}

std::vector<std::pair<uint8_t *, size_t>>
ShardedFreeList::snapshotRanges() const {
  std::vector<std::pair<uint8_t *, size_t>> Result;
  for (const auto &S : Shards) {
    auto Part = S->snapshotRanges();
    Result.insert(Result.end(), Part.begin(), Part.end());
  }
  return Result;
}
