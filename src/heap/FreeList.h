//===- FreeList.h - One shard of the segregated free-space manager -*- C++ -*-===//
///
/// \file
/// One shard of the heap's free-space manager (see ShardedFreeList.h
/// for the address partition that owns these). A shard feeds
/// allocation-cache refills and large-object allocation for its span
/// of the heap. Bitwise sweep (Section 2.2) rebuilds it every cycle
/// from the mark bit vector, which shapes the design:
///
///  - Large ranges (>= BinThresholdBytes) live in an address-ordered
///    map (coalescing with adjacent large ranges, so multi-chunk free
///    spans merge) plus a size index for O(log n) best-fit allocation.
///  - Small ranges go to segregated per-size-class bins with O(1)
///    push/pop and no coalescing: fragmentation among small ranges is
///    transient, because the next sweep re-derives maximal free runs
///    from the bitmap regardless of how this cycle's list was carved.
///
/// This keeps the parallel sweep's insertion cost near O(1) per range
/// and the refill path away from linear first-fit scans — standing in
/// for the compaction-avoidance machinery of the paper's base collector.
///
/// A shard's operations are guarded by its own lock, touched only on
/// slow paths (refill, large allocation, sweep insertion). With one
/// shard this degenerates to the original design — a single lock
/// standing in for the JVM's global heap lock; with N shards the slow
/// paths of different heap spans proceed concurrently.
///
//===----------------------------------------------------------------------===//

#ifndef CGC_HEAP_FREELIST_H
#define CGC_HEAP_FREELIST_H

#include "support/Annotations.h"
#include "support/SpinLock.h"

#include <array>
#include <cstddef>
#include <cstdint>
#include <map>
#include <utility>
#include <vector>

namespace cgc {

/// Aggregate shape of the free space inside an address window; the
/// compactor's area-selection policy scores candidate areas from these
/// (many small ranges and no dominant large one = fragmented = worth
/// evacuating).
struct FreeRangeStats {
  /// Free bytes tracked inside the window (ranges clipped to it).
  size_t FreeBytes = 0;
  /// Number of tracked ranges intersecting the window.
  size_t RangeCount = 0;
  /// Largest single clipped range inside the window.
  size_t LargestRange = 0;

  void merge(const FreeRangeStats &Other) {
    FreeBytes += Other.FreeBytes;
    RangeCount += Other.RangeCount;
    if (Other.LargestRange > LargestRange)
      LargestRange = Other.LargestRange;
  }
};

/// Segregated, sweep-rebuilt free list.
class FreeList {
public:
  /// Ranges at least this big go to the coalescing address map; smaller
  /// ones go to the segregated bins.
  static constexpr size_t BinThresholdBytes = 4096;

  /// Bin granularity; bin I holds ranges of
  /// [64 * I, 64 * I + 63] bytes (I >= 1).
  static constexpr size_t BinGranuleBytes = 64;
  static constexpr size_t NumBins = BinThresholdBytes / BinGranuleBytes;

  /// \p RefillThresholdBytes tunes the refillable-bytes counter: only
  /// ranges at least this big count as refillable (able to serve any
  /// allocation-cache refill regardless of the request's MinSize). 0
  /// makes refillableFreeBytes() identical to freeBytes().
  explicit FreeList(size_t RefillThresholdBytes = 0)
      : RefillThreshold(RefillThresholdBytes) {}

  /// Inserts [Start, Start + Size). Large ranges merge with adjacent
  /// large ranges; small ranges are binned unmerged.
  void addRange(uint8_t *Start, size_t Size);

  /// Allocates exactly \p Size bytes (best fit; the remainder of the
  /// chosen range stays free). Returns nullptr when no range fits.
  uint8_t *allocate(size_t Size);

  /// Allocates at least \p MinSize and at most \p MaxSize bytes,
  /// preferring the full \p MaxSize (allocation-cache refill: a nearly
  /// full heap can still hand out partial caches). On success stores
  /// the granted size in \p OutSize.
  uint8_t *allocateUpTo(size_t MinSize, size_t MaxSize, size_t &OutSize);

  /// Total free bytes currently tracked.
  size_t freeBytes() const {
    return FreeByteCount.load(std::memory_order_relaxed);
  }

  /// Free bytes sitting in ranges large enough (>= RefillThreshold) to
  /// serve an allocation-cache refill. A fragmented shard can hold many
  /// free bytes none of which are refillable — the pacer's kickoff must
  /// look at this number, not freeBytes() (DESIGN.md §9 stranding).
  size_t refillableFreeBytes() const {
    return RefillableByteCount.load(std::memory_order_relaxed);
  }

  /// Number of times a mutating operation (insert, allocate, refill,
  /// withdraw, clear) acquired this shard's lock — the contention
  /// currency the allocation fast path exists to save. Monotonic;
  /// benches read deltas.
  uint64_t lockAcquisitions() const {
    return LockAcquisitions.load(std::memory_order_relaxed);
  }

  /// Size of the largest single free range.
  size_t largestRange() const;

  /// Number of discrete free ranges.
  size_t numRanges() const;

  /// Drops all ranges (start of a sweep rebuild).
  void clear();

  /// Withdraws every tracked byte inside [Lo, Hi): ranges fully inside
  /// are dropped; ranges straddling a boundary keep their outside
  /// part(s). Used by the incremental compactor so evacuation targets
  /// are never allocated inside the evacuation area. Returns the bytes
  /// withdrawn.
  size_t withdrawWithin(uint8_t *Lo, uint8_t *Hi);

  /// Fragmentation statistics for [Lo, Hi): tracked ranges are clipped
  /// to the window and summarized. O(log n + ranges intersecting the
  /// window) for the large map plus O(small ranges) for the bins — the
  /// compactor calls this once per candidate area per cycle, off every
  /// hot path.
  FreeRangeStats statsWithin(uint8_t *Lo, uint8_t *Hi) const;

  /// Copies out all (start, size) ranges, address ordered (verifier and
  /// tests).
  std::vector<std::pair<uint8_t *, size_t>> snapshotRanges() const;

private:
  static size_t binIndex(size_t Size) { return Size / BinGranuleBytes; }

  /// Refillable accounting: called for every range entering/leaving the
  /// tracked set (the sub-granule crumbs takeLocked abandons never were
  /// tracked). Counter updates stay inside the shard lock; the relaxed
  /// atomic is only for cross-thread readers of the aggregate.
  void noteRangeTracked(size_t Size) {
    if (Size >= RefillThreshold)
      RefillableByteCount.fetch_add(Size, std::memory_order_relaxed);
  }
  void noteRangeUntracked(size_t Size) {
    if (Size >= RefillThreshold)
      RefillableByteCount.fetch_sub(Size, std::memory_order_relaxed);
  }

  /// Takes [Start, Start+Size) out of the map (both indices); caller
  /// holds the lock and re-adds any remainder.
  void eraseLargeLocked(std::map<uint8_t *, size_t>::iterator It)
      CGC_REQUIRES(Lock);
  void insertLargeLocked(uint8_t *Start, size_t Size) CGC_REQUIRES(Lock);
  uint8_t *takeLocked(uint8_t *Start, size_t RangeSize, size_t Take)
      CGC_REQUIRES(Lock);

  mutable SpinLock Lock;
  /// Start address -> size, ranges >= BinThresholdBytes, coalesced.
  std::map<uint8_t *, size_t> Large CGC_GUARDED_BY(Lock);
  /// Size -> start address index over Large (multimap: sizes repeat).
  std::multimap<size_t, uint8_t *> LargeBySize CGC_GUARDED_BY(Lock);
  /// Segregated small ranges: (start, exact size) per size class.
  std::array<std::vector<std::pair<uint8_t *, uint32_t>>, NumBins>
      Bins CGC_GUARDED_BY(Lock);
  CGC_ATOMIC_DOC("written under Lock; relaxed cross-thread aggregate reads")
  std::atomic<size_t> FreeByteCount{0};
  CGC_ATOMIC_DOC("written under Lock; relaxed cross-thread aggregate reads")
  std::atomic<size_t> RefillableByteCount{0};
  CGC_ATOMIC_DOC("written under Lock; relaxed bench/aggregate reads")
  std::atomic<uint64_t> LockAcquisitions{0};
  size_t SmallRangeCount CGC_GUARDED_BY(Lock) = 0;
  /// Immutable after construction.
  const size_t RefillThreshold;
};

} // namespace cgc

#endif // CGC_HEAP_FREELIST_H
