//===- HeapSpace.cpp - The managed heap region -------------------------------//

#include "heap/HeapSpace.h"

#include <cassert>
#include <cstdlib>

using namespace cgc;

// aligned_alloc requires the size to be a multiple of the alignment.
static size_t roundUpToPage(size_t Bytes) {
  return (Bytes + 4095) & ~size_t{4095};
}

HeapSpace::HeapSpace(size_t SizeBytes, unsigned FreeListShards,
                     FaultInjector *FI, size_t RefillThresholdBytes,
                     bool RouteRemoteFrees)
    : Base(static_cast<uint8_t *>(
          std::aligned_alloc(4096, roundUpToPage(SizeBytes)))),
      Size(roundUpToPage(SizeBytes)), MarkBitsV(Base, Size),
      AllocBitsV(Base, Size), CardsV(Base, Size),
      FreeListV(Base, Size, FreeListShards, FI, RefillThresholdBytes),
      RouteRemoteFreesV(RouteRemoteFrees) {
  assert(Base && "heap reservation failed");
  RemoteQueuesV.reserve(FreeListV.numShards());
  for (unsigned I = 0; I < FreeListV.numShards(); ++I)
    RemoteQueuesV.push_back(std::make_unique<RemoteFreeQueue>());
  FreeListV.addRange(Base, Size);
}

HeapSpace::~HeapSpace() { std::free(Base); }

size_t HeapSpace::drainRemoteQueue(size_t Shard) {
  size_t Moved = 0;
  RemoteFreeChunk *Chunk = RemoteQueuesV[Shard]->takeAll();
  while (Chunk) {
    RemoteFreeChunk *Next = Chunk->Next;
    size_t ChunkSize = Chunk->SizeBytes;
    FreeListV.addRange(reinterpret_cast<uint8_t *>(Chunk), ChunkSize);
    Moved += ChunkSize;
    Chunk = Next;
  }
  return Moved;
}

size_t HeapSpace::drainAllRemoteQueues() {
  size_t Moved = 0;
  for (size_t I = 0; I < RemoteQueuesV.size(); ++I)
    Moved += drainRemoteQueue(I);
  return Moved;
}
