//===- HeapSpace.cpp - The managed heap region -------------------------------//

#include "heap/HeapSpace.h"

#include <cassert>
#include <cstdlib>

using namespace cgc;

// aligned_alloc requires the size to be a multiple of the alignment.
static size_t roundUpToPage(size_t Bytes) {
  return (Bytes + 4095) & ~size_t{4095};
}

HeapSpace::HeapSpace(size_t SizeBytes, unsigned FreeListShards,
                     FaultInjector *FI, size_t RefillThresholdBytes)
    : Base(static_cast<uint8_t *>(
          std::aligned_alloc(4096, roundUpToPage(SizeBytes)))),
      Size(roundUpToPage(SizeBytes)), MarkBitsV(Base, Size),
      AllocBitsV(Base, Size), CardsV(Base, Size),
      FreeListV(Base, Size, FreeListShards, FI, RefillThresholdBytes) {
  assert(Base && "heap reservation failed");
  FreeListV.addRange(Base, Size);
}

HeapSpace::~HeapSpace() { std::free(Base); }
