//===- HeapSpace.h - The managed heap region --------------------*- C++ -*-===//
///
/// \file
/// Owns the reserved heap memory and the metadata structures the
/// collector needs: the mark bit vector, the allocation bit vector (one
/// bit per 8 bytes each, as in the paper), the card table and the free
/// list. Also provides the conservative-reference validity test used for
/// stack scanning (a word is treated as a reference only if it points at
/// a granule whose allocation bit is set, Section 5.2).
///
//===----------------------------------------------------------------------===//

#ifndef CGC_HEAP_HEAPSPACE_H
#define CGC_HEAP_HEAPSPACE_H

#include "heap/BitVector8.h"
#include "heap/CardTable.h"
#include "heap/ObjectModel.h"
#include "heap/RemoteFreeQueue.h"
#include "heap/ShardedFreeList.h"

#include <memory>
#include <vector>

namespace cgc {

/// The managed heap: one contiguous region plus side metadata.
class HeapSpace {
public:
  /// Reserves a heap of \p SizeBytes (rounded up to the granule size) and
  /// places the whole region on the free list, partitioned into
  /// \p FreeListShards address shards (0 = auto, 1 = legacy single list;
  /// see ShardedFreeList::resolveShardCount). \p FI (optional) arms the
  /// free-space manager's fault-injection sites.
  /// \p RefillThresholdBytes is forwarded to the free-space manager's
  /// refillable-bytes accounting (0 = refillable == free).
  /// \p RouteRemoteFrees enables the fast path's ownership return:
  /// releaseRange() parks small reclaimed runs on the owning shard's
  /// lock-free remote-free queue instead of the shared bins
  /// (DESIGN.md §16); off, releaseRange() is plain addRange().
  explicit HeapSpace(size_t SizeBytes, unsigned FreeListShards = 1,
                     FaultInjector *FI = nullptr,
                     size_t RefillThresholdBytes = 0,
                     bool RouteRemoteFrees = false);
  ~HeapSpace();

  HeapSpace(const HeapSpace &) = delete;
  HeapSpace &operator=(const HeapSpace &) = delete;

  /// First byte of the heap.
  uint8_t *base() const { return Base; }

  /// Total heap size in bytes.
  size_t sizeBytes() const { return Size; }

  /// One past the last byte of the heap.
  uint8_t *limit() const { return Base + Size; }

  /// Whether \p Addr lies inside the heap region.
  bool contains(const void *Addr) const {
    const uint8_t *P = static_cast<const uint8_t *>(Addr);
    return P >= Base && P < Base + Size;
  }

  /// Conservative-scan filter: true when \p Word looks like a reference
  /// to an allocated object — in range, granule aligned, allocation bit
  /// set. (A stale stack slot can still pass; that only retains garbage,
  /// never frees a live object, exactly as with the JVM's conservative
  /// stack scan.)
  bool isPlausibleObject(uintptr_t Word) const {
    if (Word % GranuleBytes != 0)
      return false;
    const void *P = reinterpret_cast<const void *>(Word);
    if (!contains(P))
      return false;
    return AllocBitsV.test(P);
  }

  BitVector8 &markBits() { return MarkBitsV; }
  const BitVector8 &markBits() const { return MarkBitsV; }
  BitVector8 &allocBits() { return AllocBitsV; }
  const BitVector8 &allocBits() const { return AllocBitsV; }
  CardTable &cards() { return CardsV; }
  const CardTable &cards() const { return CardsV; }
  ShardedFreeList &freeList() { return FreeListV; }
  const ShardedFreeList &freeList() const { return FreeListV; }

  /// Free bytes currently on the free list (aggregate over all shards,
  /// summed from the relaxed per-shard counters) plus bytes parked in
  /// the remote-free queues — queued chunks are free memory a refill
  /// can drain, so hiding them would make the pacer kick off late.
  size_t freeBytes() const {
    return FreeListV.freeBytes() + remoteQueuedBytes();
  }

  /// Free bytes in ranges big enough to serve an allocation-cache
  /// refill (the pacer's stranding-aware kickoff input; <= freeBytes()).
  /// Remote-queued chunks count: the class-refill path consumes them
  /// directly, so to the allocator they are as good as refillable
  /// (see GcCore::pacerVisibleFreeBytes for the cache-side half).
  size_t refillableFreeBytes() const {
    return FreeListV.refillableFreeBytes() + remoteQueuedBytes();
  }

  /// Bytes neither on the free list nor queued (allocated or unswept).
  size_t occupiedBytes() const { return Size - freeBytes(); }

  /// --- Remote-free ownership return (DESIGN.md §16) -------------------

  /// Whether releaseRange() routes small runs to the remote queues.
  bool remoteRoutingEnabled() const { return RouteRemoteFreesV; }

  /// The queue collecting remote frees for shard \p Shard.
  RemoteFreeQueue &remoteQueue(size_t Shard) { return *RemoteQueuesV[Shard]; }

  /// Bytes currently parked across all remote-free queues.
  size_t remoteQueuedBytes() const {
    size_t Sum = 0;
    for (const auto &Q : RemoteQueuesV)
      Sum += Q->queuedBytes();
    return Sum;
  }

  /// Returns reclaimed memory [Start, Start + Size) to the free-space
  /// manager. With routing enabled, runs small enough for the
  /// segregated bins that sit wholly inside one shard are pushed onto
  /// that shard's remote-free queue (lock-free; drained by the shard's
  /// preferred mutator's next class refill); everything else takes the
  /// classic locked addRange path. Sweep and compaction call this for
  /// every reclaimed run.
  void releaseRange(uint8_t *Start, size_t Size) {
    if (RouteRemoteFreesV && Size >= RemoteFreeQueue::MinChunkBytes &&
        Size < FreeList::BinThresholdBytes) {
      size_t Shard = FreeListV.shardIndexFor(Start);
      if (FreeListV.shardIndexFor(Start + Size - 1) == Shard) {
        RemoteQueuesV[Shard]->push(Start, Size);
        return;
      }
    }
    FreeListV.addRange(Start, Size);
  }

  /// Drains shard \p Shard's remote queue onto its free list (ladder
  /// stranded-memory reclaim; detach without a successor). Returns the
  /// bytes moved.
  size_t drainRemoteQueue(size_t Shard);

  /// Drains every remote queue onto the free lists. Returns bytes moved.
  size_t drainAllRemoteQueues();

  /// Drops all queued chunks (sweep pause only: the bitwise sweep
  /// re-derives every parked run from the mark bits, and surviving
  /// entries would be double-owned after the re-insert).
  void resetRemoteQueues() {
    for (auto &Q : RemoteQueuesV)
      Q->reset();
  }

  /// Enumerates marked objects whose header lies in [From, To): calls
  /// \p Fn(Object*) for each granule that has both its allocation bit and
  /// its mark bit set. Used by card cleaning.
  template <typename FnT>
  void forEachMarkedObjectIn(const void *From, const void *To,
                             FnT Fn) const {
    AllocBitsV.forEachSetInRange(From, To, [&](uint8_t *Granule) {
      if (MarkBitsV.test(Granule))
        Fn(reinterpret_cast<Object *>(Granule));
      return true;
    });
  }

private:
  uint8_t *Base;
  size_t Size;
  BitVector8 MarkBitsV;
  BitVector8 AllocBitsV;
  CardTable CardsV;
  ShardedFreeList FreeListV;
  /// One remote-free queue per shard (heap-owned so a queue can never
  /// outlive or predate the chunks parked on it); heap-allocated so
  /// queues sit on separate cache lines.
  std::vector<std::unique_ptr<RemoteFreeQueue>> RemoteQueuesV;
  const bool RouteRemoteFreesV;
};

} // namespace cgc

#endif // CGC_HEAP_HEAPSPACE_H
