//===- HeapSpace.h - The managed heap region --------------------*- C++ -*-===//
///
/// \file
/// Owns the reserved heap memory and the metadata structures the
/// collector needs: the mark bit vector, the allocation bit vector (one
/// bit per 8 bytes each, as in the paper), the card table and the free
/// list. Also provides the conservative-reference validity test used for
/// stack scanning (a word is treated as a reference only if it points at
/// a granule whose allocation bit is set, Section 5.2).
///
//===----------------------------------------------------------------------===//

#ifndef CGC_HEAP_HEAPSPACE_H
#define CGC_HEAP_HEAPSPACE_H

#include "heap/BitVector8.h"
#include "heap/CardTable.h"
#include "heap/ObjectModel.h"
#include "heap/ShardedFreeList.h"

#include <memory>

namespace cgc {

/// The managed heap: one contiguous region plus side metadata.
class HeapSpace {
public:
  /// Reserves a heap of \p SizeBytes (rounded up to the granule size) and
  /// places the whole region on the free list, partitioned into
  /// \p FreeListShards address shards (0 = auto, 1 = legacy single list;
  /// see ShardedFreeList::resolveShardCount). \p FI (optional) arms the
  /// free-space manager's fault-injection sites.
  /// \p RefillThresholdBytes is forwarded to the free-space manager's
  /// refillable-bytes accounting (0 = refillable == free).
  explicit HeapSpace(size_t SizeBytes, unsigned FreeListShards = 1,
                     FaultInjector *FI = nullptr,
                     size_t RefillThresholdBytes = 0);
  ~HeapSpace();

  HeapSpace(const HeapSpace &) = delete;
  HeapSpace &operator=(const HeapSpace &) = delete;

  /// First byte of the heap.
  uint8_t *base() const { return Base; }

  /// Total heap size in bytes.
  size_t sizeBytes() const { return Size; }

  /// One past the last byte of the heap.
  uint8_t *limit() const { return Base + Size; }

  /// Whether \p Addr lies inside the heap region.
  bool contains(const void *Addr) const {
    const uint8_t *P = static_cast<const uint8_t *>(Addr);
    return P >= Base && P < Base + Size;
  }

  /// Conservative-scan filter: true when \p Word looks like a reference
  /// to an allocated object — in range, granule aligned, allocation bit
  /// set. (A stale stack slot can still pass; that only retains garbage,
  /// never frees a live object, exactly as with the JVM's conservative
  /// stack scan.)
  bool isPlausibleObject(uintptr_t Word) const {
    if (Word % GranuleBytes != 0)
      return false;
    const void *P = reinterpret_cast<const void *>(Word);
    if (!contains(P))
      return false;
    return AllocBitsV.test(P);
  }

  BitVector8 &markBits() { return MarkBitsV; }
  const BitVector8 &markBits() const { return MarkBitsV; }
  BitVector8 &allocBits() { return AllocBitsV; }
  const BitVector8 &allocBits() const { return AllocBitsV; }
  CardTable &cards() { return CardsV; }
  const CardTable &cards() const { return CardsV; }
  ShardedFreeList &freeList() { return FreeListV; }
  const ShardedFreeList &freeList() const { return FreeListV; }

  /// Free bytes currently on the free list (aggregate over all shards,
  /// summed from the relaxed per-shard counters).
  size_t freeBytes() const { return FreeListV.freeBytes(); }

  /// Free bytes in ranges big enough to serve an allocation-cache
  /// refill (the pacer's stranding-aware kickoff input; <= freeBytes()).
  size_t refillableFreeBytes() const {
    return FreeListV.refillableFreeBytes();
  }

  /// Bytes not on the free list (allocated or unswept).
  size_t occupiedBytes() const { return Size - freeBytes(); }

  /// Enumerates marked objects whose header lies in [From, To): calls
  /// \p Fn(Object*) for each granule that has both its allocation bit and
  /// its mark bit set. Used by card cleaning.
  template <typename FnT>
  void forEachMarkedObjectIn(const void *From, const void *To,
                             FnT Fn) const {
    AllocBitsV.forEachSetInRange(From, To, [&](uint8_t *Granule) {
      if (MarkBitsV.test(Granule))
        Fn(reinterpret_cast<Object *>(Granule));
      return true;
    });
  }

private:
  uint8_t *Base;
  size_t Size;
  BitVector8 MarkBitsV;
  BitVector8 AllocBitsV;
  CardTable CardsV;
  ShardedFreeList FreeListV;
};

} // namespace cgc

#endif // CGC_HEAP_HEAPSPACE_H
