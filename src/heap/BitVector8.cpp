//===- BitVector8.cpp - One bit per 8-byte granule --------------------------//

#include "heap/BitVector8.h"

#include <bit>

using namespace cgc;

BitVector8::BitVector8(const void *BaseAddr, size_t SizeBytes)
    : Base(static_cast<const uint8_t *>(BaseAddr)),
      NumGranules(SizeBytes / GranuleBytes),
      NumWords((NumGranules + 63) / 64),
      Words(new std::atomic<uint64_t>[NumWords]) {
  assert(SizeBytes % GranuleBytes == 0 && "heap size not granular");
  clearAll();
}

void BitVector8::clearAll() {
  for (size_t I = 0; I < NumWords; ++I)
    Words[I].store(0, std::memory_order_relaxed);
}

void BitVector8::clearRange(const void *From, const void *To) {
  if (From >= To)
    return;
  size_t First = granuleIndex(From);
  // To is exclusive; the last granule cleared starts at To - GranuleBytes.
  size_t Last = granuleIndex(static_cast<const uint8_t *>(To) - GranuleBytes);
  size_t FirstWord = First >> 6, LastWord = Last >> 6;
  if (FirstWord == LastWord) {
    uint64_t Mask = 0;
    for (size_t B = First & 63; B <= (Last & 63); ++B)
      Mask |= 1ull << B;
    Words[FirstWord].fetch_and(~Mask, std::memory_order_relaxed);
    return;
  }
  uint64_t HeadMask = ~0ull << (First & 63);
  Words[FirstWord].fetch_and(~HeadMask, std::memory_order_relaxed);
  for (size_t W = FirstWord + 1; W < LastWord; ++W)
    Words[W].store(0, std::memory_order_relaxed);
  uint64_t TailMask = (Last & 63) == 63 ? ~0ull
                                        : ((1ull << ((Last & 63) + 1)) - 1);
  Words[LastWord].fetch_and(~TailMask, std::memory_order_relaxed);
}

size_t BitVector8::countInRange(const void *From, const void *To) const {
  size_t Count = 0;
  const uint8_t *Cur = static_cast<const uint8_t *>(From);
  forEachSetInRange(Cur, To, [&Count](uint8_t *) {
    ++Count;
    return true;
  });
  return Count;
}

uint8_t *BitVector8::findPrevSet(const void *Before) const {
  const uint8_t *P = static_cast<const uint8_t *>(Before);
  if (P <= Base)
    return nullptr;
  size_t Last = granuleIndex(P - GranuleBytes);
  size_t Word = Last >> 6;
  uint64_t Bits = Words[Word].load(std::memory_order_relaxed);
  // Mask off bits above Last.
  unsigned Shift = static_cast<unsigned>(63 - (Last & 63));
  Bits = (Bits << Shift) >> Shift;
  for (;;) {
    if (Bits) {
      size_t Index = (Word << 6) + (63 - static_cast<size_t>(
                                             std::countl_zero(Bits)));
      return const_cast<uint8_t *>(Base) + Index * GranuleBytes;
    }
    if (Word == 0)
      return nullptr;
    --Word;
    Bits = Words[Word].load(std::memory_order_relaxed);
  }
}

uint8_t *BitVector8::findNextSet(const void *From, const void *To) const {
  const uint8_t *FromP = static_cast<const uint8_t *>(From);
  const uint8_t *ToP = static_cast<const uint8_t *>(To);
  if (FromP >= ToP)
    return nullptr;
  size_t First = granuleIndex(FromP);
  size_t End = granuleIndex(ToP - GranuleBytes) + 1;
  size_t Word = First >> 6;
  uint64_t Bits = Words[Word].load(std::memory_order_relaxed);
  Bits &= ~0ull << (First & 63);
  for (;;) {
    if (Bits) {
      size_t Index = (Word << 6) +
                     static_cast<size_t>(std::countr_zero(Bits));
      if (Index >= End)
        return nullptr;
      return const_cast<uint8_t *>(Base) + Index * GranuleBytes;
    }
    ++Word;
    if ((Word << 6) >= End)
      return nullptr;
    Bits = Words[Word].load(std::memory_order_relaxed);
  }
}
