//===- ShardedFreeList.h - Address-partitioned free-space manager -*- C++ -*-===//
///
/// \file
/// The heap's free-space manager, an address partition of independent
/// FreeList shards. The single global free-list lock was the one
/// serialization point left in an otherwise parallel collector: every
/// allocation-cache refill, large allocation and parallel-sweep
/// insertion funneled through it. Sharding removes the convoy:
///
///  - The heap is split into NumShards (a power of two) contiguous,
///    page-aligned spans; shard I owns addresses
///    [Base + I * span, Base + (I+1) * span). Each shard is a complete
///    FreeList (own lock, segregated bins, coalescing large-range map).
///  - Ranges are split at shard boundaries on insert, so a range is
///    always owned by exactly one shard and coalescing never has to
///    look across a lock boundary. Parallel sweep workers therefore
///    contend only when their chunks map to the same shard.
///  - Allocation is shard-affine: each mutator carries a preferred
///    shard (assigned round-robin at attach) and refills from it;
///    when the preferred shard cannot satisfy the request the search
///    steals from the other shards in ring order before declaring
///    exhaustion.
///  - Aggregate queries (freeBytes, largestRange, numRanges) combine
///    per-shard O(1)/O(log n) state — freeBytes sums the shards'
///    relaxed counters, so the pacer's kickoff and progress formulas
///    (Section 3) see the same aggregate count as with one list.
///    snapshotRanges() (address-ordered across shards) exists for the
///    verifier and tests only.
///
/// NumShards = 1 degenerates to the exact legacy single-list behavior
/// (one shard spanning the heap, every call forwarded verbatim), kept
/// as the A/B comparison baseline.
///
//===----------------------------------------------------------------------===//

#ifndef CGC_HEAP_SHARDEDFREELIST_H
#define CGC_HEAP_SHARDEDFREELIST_H

#include "heap/FreeList.h"
#include "support/FaultInjector.h"

#include <memory>
#include <vector>

namespace cgc {

/// Address-partitioned collection of FreeList shards.
class ShardedFreeList {
public:
  /// Builds the partition over [Base, Base + SizeBytes). \p NumShards
  /// is resolved via resolveShardCount (0 = auto). \p FI (optional)
  /// arms the transient-allocation-failure injection sites.
  /// \p RefillThresholdBytes is forwarded to every shard: only ranges
  /// at least this big count toward refillableFreeBytes() (0 = count
  /// everything, i.e. refillable == free).
  ShardedFreeList(uint8_t *Base, size_t SizeBytes, unsigned NumShards,
                  FaultInjector *FI = nullptr,
                  size_t RefillThresholdBytes = 0);

  /// Resolves a requested shard count: 0 = auto (min(hardware
  /// concurrency, 8)); any value is rounded down to a power of two and
  /// halved until every shard spans at least \p MinShardBytes (and at
  /// least one page).
  static unsigned resolveShardCount(unsigned Requested, size_t HeapBytes,
                                    size_t MinShardBytes);

  unsigned numShards() const { return static_cast<unsigned>(Shards.size()); }

  /// Bytes spanned by each shard (the last shard may span less when the
  /// heap size is not a multiple).
  size_t shardSpanBytes() const { return ShardSpan; }

  /// Index of the shard owning \p Addr (clamped into range; only
  /// meaningful for heap addresses).
  size_t shardIndexFor(const void *Addr) const {
    size_t Offset =
        static_cast<size_t>(static_cast<const uint8_t *>(Addr) - Base);
    size_t Index = Offset / ShardSpan;
    return Index < Shards.size() ? Index : Shards.size() - 1;
  }

  /// Direct shard access (verifier, tests, benches).
  FreeList &shard(size_t I) { return *Shards[I]; }
  const FreeList &shard(size_t I) const { return *Shards[I]; }

  /// Inserts [Start, Start + Size), split at shard boundaries so each
  /// piece lands in the shard owning its addresses. Only the owning
  /// shard's lock is taken per piece.
  void addRange(uint8_t *Start, size_t Size);

  /// Allocates exactly \p Size bytes, trying \p PreferredShard first
  /// and then stealing from the other shards in ring order.
  uint8_t *allocate(size_t Size, size_t PreferredShard = 0);

  /// Allocation-cache refill: at least \p MinSize, at most \p MaxSize,
  /// preferring a full-size grant. The search is two-pass so affinity
  /// never downgrades the grant: first a full MaxSize from any shard
  /// (preferred first), then the best partial grant (preferred first).
  uint8_t *allocateUpTo(size_t MinSize, size_t MaxSize, size_t &OutSize,
                        size_t PreferredShard = 0);

  /// Total free bytes: sum of the shards' relaxed per-shard counters.
  /// (Monotonic consistency is not needed: the pacer formulas tolerate
  /// the same slack a single relaxed counter already had.)
  size_t freeBytes() const;

  /// Free bytes sitting in ranges big enough to serve a refill, summed
  /// over the shards (per-shard values via shard(I).refillableFreeBytes()).
  /// This is the stranding-aware number the pacer's kickoff consumes: a
  /// fragmented shard can hold plenty of raw free bytes that cannot
  /// refill any allocation cache (DESIGN.md §9/§10).
  size_t refillableFreeBytes() const;

  /// Shard-lock acquisitions summed over all shards (relaxed per-shard
  /// counters; benches read deltas per allocation).
  uint64_t lockAcquisitions() const;

  /// Largest single free range: max over the shards' O(log n) per-shard
  /// answers. Never builds a snapshot.
  size_t largestRange() const;

  /// Number of discrete free ranges: sum of the shards' O(1) counts.
  size_t numRanges() const;

  /// Drops all ranges in every shard (start of a sweep rebuild).
  void clear();

  /// Withdraws every tracked byte inside [Lo, Hi) from the shards the
  /// window overlaps. Returns the bytes withdrawn.
  size_t withdrawWithin(uint8_t *Lo, uint8_t *Hi);

  /// Fragmentation statistics for [Lo, Hi), merged across the shards
  /// the window overlaps. A free run split at a shard boundary counts
  /// as one range per shard — consistent with how the shards actually
  /// track (and can hand out) the space, which is what the compactor's
  /// fragmentation scoring wants to see.
  FreeRangeStats statsWithin(uint8_t *Lo, uint8_t *Hi) const;

  /// Copies out all (start, size) ranges, address ordered across shards
  /// (shards are address-ordered and each shard's snapshot is sorted).
  /// Verifier and tests only — O(ranges) copy.
  std::vector<std::pair<uint8_t *, size_t>> snapshotRanges() const;

private:
  /// One past the last byte shard \p Index owns.
  uint8_t *shardEnd(size_t Index) const {
    size_t End = (Index + 1) * ShardSpan;
    return Base + (End < Size ? End : Size);
  }

  uint8_t *Base;
  size_t Size;
  size_t ShardSpan;
  FaultInjector *FI;
  /// Heap-allocated so shards sit on separate cache lines.
  std::vector<std::unique_ptr<FreeList>> Shards;
};

} // namespace cgc

#endif // CGC_HEAP_SHARDEDFREELIST_H
