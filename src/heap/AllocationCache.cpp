//===- AllocationCache.cpp - Per-thread allocation cache ---------------------//

#include "heap/AllocationCache.h"

#include "heap/ShardedFreeList.h"

using namespace cgc;

void AllocationCache::retire(FreeList &FL) {
  assert(!hasUnflushedObjects() && "retiring cache with unpublished objects");
  if (!CacheStart) {
    return;
  }
  if (Cur < End)
    FL.addRange(Cur, static_cast<size_t>(End - Cur));
  CacheStart = Cur = FlushedTo = End = nullptr;
}

void AllocationCache::retire(ShardedFreeList &FL) {
  assert(!hasUnflushedObjects() && "retiring cache with unpublished objects");
  if (!CacheStart) {
    return;
  }
  if (Cur < End)
    FL.addRange(Cur, static_cast<size_t>(End - Cur));
  CacheStart = Cur = FlushedTo = End = nullptr;
}
