//===- AllocationCache.cpp - Per-thread allocation cache ---------------------//

#include "heap/AllocationCache.h"

#include "heap/ShardedFreeList.h"

#include <algorithm>

using namespace cgc;

size_t AllocationCache::flushClassLists(ShardedFreeList &FL) {
  std::vector<std::pair<uint8_t *, size_t>> Chunks;
  for (unsigned Class = 0; Class < NumSizeClasses; ++Class) {
    for (uint8_t *Start : ClassChunks[Class])
      Chunks.emplace_back(Start, sizeClassBytes(Class));
    ClassChunks[Class].clear();
  }
  size_t Flushed = CachedClassBytesV.load(std::memory_order_relaxed);
  CachedClassBytesV.store(0, std::memory_order_relaxed);
  if (Chunks.empty())
    return 0;
  // Coalesce before insertion: chunks carved from one refill are
  // address-adjacent, and merged runs clear the free list's minimum
  // tracked size where individual sub-64 B chunks would be dropped.
  std::sort(Chunks.begin(), Chunks.end());
  uint8_t *RunStart = Chunks.front().first;
  size_t RunSize = Chunks.front().second;
  for (size_t I = 1; I < Chunks.size(); ++I) {
    auto [Start, Size] = Chunks[I];
    if (RunStart + RunSize == Start) {
      RunSize += Size;
      continue;
    }
    FL.addRange(RunStart, RunSize);
    RunStart = Start;
    RunSize = Size;
  }
  FL.addRange(RunStart, RunSize);
  return Flushed;
}

void AllocationCache::retire(FreeList &FL) {
  assert(!hasUnflushedObjects() && "retiring cache with unpublished objects");
  if (!CacheStart) {
    return;
  }
  if (Cur < End)
    FL.addRange(Cur, static_cast<size_t>(End - Cur));
  CacheStart = Cur = FlushedTo = End = nullptr;
}

void AllocationCache::retire(ShardedFreeList &FL) {
  assert(!hasUnflushedObjects() && "retiring cache with unpublished objects");
  if (!CacheStart) {
    return;
  }
  if (Cur < End)
    FL.addRange(Cur, static_cast<size_t>(End - Cur));
  CacheStart = Cur = FlushedTo = End = nullptr;
}
