//===- ObjectModel.h - Heap object layout -----------------------*- C++ -*-===//
///
/// \file
/// The object model of the simulated Java-like heap.
///
/// Every object is 8-byte aligned and laid out as:
///
///   [ 8-byte header | NumRefs reference slots (8 bytes each) | payload ]
///
/// The header records the total object size, the number of reference
/// slots and a workload-defined class id. Keeping all references in a
/// prefix of the object (an explicit reference layout) plays the role of
/// the JVM's per-class pointer maps: the tracer can enumerate a live
/// object's outgoing references without any type system.
///
/// Reference slots are read and written through std::atomic_ref with
/// relaxed ordering: during the concurrent phase tracer threads read
/// slots that mutators are concurrently writing, exactly as in the paper,
/// and the required orderings are established by the explicit fence
/// protocols of Section 5, not by the individual accesses.
///
//===----------------------------------------------------------------------===//

#ifndef CGC_HEAP_OBJECTMODEL_H
#define CGC_HEAP_OBJECTMODEL_H

#include "support/Annotations.h"

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>

namespace cgc {

/// Number of bytes covered by one mark/allocation bit.
constexpr size_t GranuleBytes = 8;

/// A heap object. Instances live only inside the managed heap; the class
/// just overlays accessors on the raw memory.
class Object {
public:
  /// Size of the object header in bytes.
  static constexpr size_t HeaderBytes = 8;

  /// Smallest legal object: header plus one granule.
  static constexpr size_t MinObjectBytes = HeaderBytes + GranuleBytes;

  /// Total size in bytes needed for an object with \p PayloadBytes of
  /// non-reference data and \p NumRefs reference slots, rounded up to the
  /// granule size.
  static size_t requiredSize(size_t PayloadBytes, unsigned NumRefs) {
    size_t Raw = HeaderBytes + static_cast<size_t>(NumRefs) * 8 + PayloadBytes;
    size_t Rounded = (Raw + GranuleBytes - 1) & ~(GranuleBytes - 1);
    return Rounded < MinObjectBytes ? MinObjectBytes : Rounded;
  }

  /// Initializes the header of a freshly allocated object and zeroes its
  /// reference slots (so a concurrent tracer can never read junk refs).
  CGC_NO_SAFEPOINT void initialize(uint32_t TotalBytes, uint16_t Refs,
                                   uint16_t Class) {
    assert(TotalBytes % GranuleBytes == 0 && "object size not granular");
    assert(TotalBytes >= HeaderBytes + Refs * 8ull && "refs do not fit");
    SizeBytes = TotalBytes;
    NumRefs = Refs;
    ClassId = Class;
    std::memset(refArray(), 0, static_cast<size_t>(Refs) * 8);
  }

  /// Total size of this object in bytes (header + refs + payload).
  uint32_t sizeBytes() const { return SizeBytes; }

  /// Number of reference slots.
  uint16_t numRefs() const { return NumRefs; }

  /// Workload-defined class id.
  uint16_t classId() const { return ClassId; }

  /// Reads reference slot \p I (relaxed; safe against concurrent stores).
  CGC_NO_SAFEPOINT Object *loadRef(unsigned I) const {
    assert(I < NumRefs && "ref slot out of range");
    std::atomic_ref<uintptr_t> Slot(
        const_cast<Object *>(this)->refArray()[I]);
    return reinterpret_cast<Object *>(Slot.load(std::memory_order_relaxed));
  }

  /// Writes reference slot \p I without a write barrier.
  ///
  /// THE BARRIER CONTRACT (the single source of truth; GcHeap::writeRef
  /// and cgc-mole rule M2 both reference it):
  ///
  /// During the concurrent phase the card cleaner only re-scans objects
  /// whose card was dirtied after tracing visited them. A reference
  /// stored without dirtying the holder's card is therefore invisible
  /// to concurrent marking: if it is the only path to the target, the
  /// target is freed while reachable. This is silent corruption, not a
  /// crash at the store site.
  ///
  /// A raw (card-less) store is permissible in exactly three places:
  ///
  ///   1. Here, and in GcHeap::writeRef, which wraps it with the
  ///      card-dirtying barrier (store slot, then dirty — Section 5.3).
  ///   2. Initialization of a not-yet-published object: until the
  ///      allocating thread publishes the object (stores a reference to
  ///      it through writeRef, or roots it), no tracer can have visited
  ///      it, so there is no visit to invalidate.
  ///   3. The compactor's slot fix-up (gc/Compactor.*), which rewrites
  ///      references while their holders are pinned or the world is
  ///      stopped, under the collector's own ordering.
  ///
  /// Everything else must go through GcHeap::writeRef. cgc-mole flags
  /// any other call site as M2; CGC_GC_UNSAFE_OK (with a written
  /// reason) is the audited escape hatch for new collector-internal
  /// sites.
  CGC_NO_SAFEPOINT void storeRefRaw(unsigned I, Object *Value) {
    assert(I < NumRefs && "ref slot out of range");
    std::atomic_ref<uintptr_t> Slot(refArray()[I]);
    Slot.store(reinterpret_cast<uintptr_t>(Value), std::memory_order_relaxed);
  }

  /// Start of the non-reference payload.
  uint8_t *payload() {
    return reinterpret_cast<uint8_t *>(refArray() + NumRefs);
  }
  const uint8_t *payload() const {
    return const_cast<Object *>(this)->payload();
  }

  /// Size of the non-reference payload in bytes.
  size_t payloadBytes() const {
    return SizeBytes - HeaderBytes - static_cast<size_t>(NumRefs) * 8;
  }

  /// Address one past the end of the object.
  uint8_t *end() { return reinterpret_cast<uint8_t *>(this) + SizeBytes; }

private:
  uintptr_t *refArray() {
    return reinterpret_cast<uintptr_t *>(reinterpret_cast<uint8_t *>(this) +
                                         HeaderBytes);
  }
  const uintptr_t *refArray() const {
    return const_cast<Object *>(this)->refArray();
  }

  uint32_t SizeBytes;
  uint16_t NumRefs;
  uint16_t ClassId;
};

static_assert(sizeof(Object) == Object::HeaderBytes,
              "object header must be exactly one granule");

} // namespace cgc

#endif // CGC_HEAP_OBJECTMODEL_H
