//===- AllocationCache.h - Per-thread allocation cache ----------*- C++ -*-===//
///
/// \file
/// Per-thread allocation cache (TLAB) implementing the batched
/// allocation-bit protocol of Section 5.2: a mutator bump-allocates and
/// initializes small objects privately; when the cache is exhausted (or a
/// safepoint / stack scan demands it) it performs ONE fence and then sets
/// the allocation bits of all objects allocated since the previous flush.
/// Until its allocation bit is set an object is invisible to conservative
/// stack scanning and is deferred by the tracer's safety check.
///
//===----------------------------------------------------------------------===//

#ifndef CGC_HEAP_ALLOCATIONCACHE_H
#define CGC_HEAP_ALLOCATIONCACHE_H

#include "heap/BitVector8.h"
#include "heap/ObjectModel.h"
#include "support/Annotations.h"
#include "support/FaultInjector.h"
#include "support/Fences.h"

#include <cassert>
#include <cstdint>

namespace cgc {

class FreeList;
class ShardedFreeList;

/// Bump-pointer allocation cache with deferred allocation-bit publishing.
class AllocationCache {
public:
  /// A cache starts empty; assignRange() arms it.
  AllocationCache() = default;

  /// Arms the cache with the fresh range [Start, Start + Size).
  /// The previous range must have been retired first.
  void assignRange(uint8_t *Start, size_t Size) {
    assert(!CacheStart && "previous cache range not retired");
    CacheStart = Start;
    Cur = Start;
    FlushedTo = Start;
    End = Start + Size;
  }

  /// Whether the cache currently owns a range.
  bool hasRange() const { return CacheStart != nullptr; }

  /// Bytes still available for bump allocation.
  size_t remainingBytes() const { return static_cast<size_t>(End - Cur); }

  /// Bytes handed out since the range was assigned.
  size_t usedBytes() const { return static_cast<size_t>(Cur - CacheStart); }

  /// Allocates and header-initializes an object of \p TotalBytes with
  /// \p NumRefs reference slots. Returns nullptr when the cache cannot
  /// satisfy the request (caller refills). Does NOT set the allocation
  /// bit — that happens in batch at flushAllocBits(). Pure bump pointer:
  /// never polls, never hands control to the collector.
  CGC_NO_SAFEPOINT Object *allocate(size_t TotalBytes, uint16_t NumRefs,
                                    uint16_t ClassId) {
    assert(TotalBytes % GranuleBytes == 0 && "unaligned allocation");
    if (static_cast<size_t>(End - Cur) < TotalBytes)
      return nullptr;
    Object *Obj = reinterpret_cast<Object *>(Cur);
    Cur += TotalBytes;
    Obj->initialize(static_cast<uint32_t>(TotalBytes), NumRefs, ClassId);
    return Obj;
  }

  /// Attaches the heap's fault injector so chaos mode can stretch the
  /// window between the flush fence and the bit publication.
  void setFaultInjector(FaultInjector *Injector) { FI = Injector; }

  /// Section 5.2 mutator steps 2-3: one fence, then publish the
  /// allocation bits of every object allocated since the last flush.
  /// Returns the number of objects published.
  size_t flushAllocBits(BitVector8 &AllocBits) {
    if (FlushedTo == Cur)
      return 0;
    fence(FenceSite::AllocCacheFlush);
    if (FI)
      FI->maybePerturb(FaultSite::AllocCacheFlush);
    size_t Published = 0;
    uint8_t *P = FlushedTo;
    while (P < Cur) {
      Object *Obj = reinterpret_cast<Object *>(P);
      // Release publication (pairs with the tracer's acquire sample):
      // redundant with the batch fence above on hardware, but TSan
      // cannot see fence ordering — see BitVector8::setRelease.
      AllocBits.setRelease(Obj);
      P += Obj->sizeBytes();
      ++Published;
    }
    assert(P == Cur && "object walk overran the bump pointer");
    FlushedTo = Cur;
    return Published;
  }

  /// Releases the cache's unused tail back to \p FL and forgets the
  /// range. Allocation bits must already be flushed by the caller (the
  /// tail itself carries no bits). Used when the world stops for sweep.
  void retire(FreeList &FL);

  /// Sharded variant: the tail goes back to the shard owning its
  /// addresses (a refill never crosses a shard boundary, but the
  /// sharded insert handles splitting regardless).
  void retire(ShardedFreeList &FL);

  /// Drops the range without recycling the tail (heap teardown).
  void reset() {
    CacheStart = Cur = FlushedTo = End = nullptr;
  }

  /// Whether there are allocated objects whose bits are not yet published.
  bool hasUnflushedObjects() const { return FlushedTo != Cur; }

private:
  uint8_t *CacheStart = nullptr;
  uint8_t *Cur = nullptr;
  uint8_t *FlushedTo = nullptr;
  uint8_t *End = nullptr;
  FaultInjector *FI = nullptr;
};

} // namespace cgc

#endif // CGC_HEAP_ALLOCATIONCACHE_H
