//===- AllocationCache.h - Per-thread allocation cache ----------*- C++ -*-===//
///
/// \file
/// Per-thread allocation cache (TLAB) implementing the batched
/// allocation-bit protocol of Section 5.2: a mutator bump-allocates and
/// initializes small objects privately; when the cache is exhausted (or a
/// safepoint / stack scan demands it) it performs ONE fence and then sets
/// the allocation bits of all objects allocated since the previous flush.
/// Until its allocation bit is set an object is invisible to conservative
/// stack scanning and is deferred by the tracer's safety check.
///
//===----------------------------------------------------------------------===//

#ifndef CGC_HEAP_ALLOCATIONCACHE_H
#define CGC_HEAP_ALLOCATIONCACHE_H

#include "heap/BitVector8.h"
#include "heap/ObjectModel.h"
#include "heap/SizeClasses.h"
#include "support/Annotations.h"
#include "support/FaultInjector.h"
#include "support/Fences.h"

#include <array>
#include <atomic>
#include <cassert>
#include <cstdint>
#include <vector>

namespace cgc {

class FreeList;
class ShardedFreeList;

/// Bump-pointer allocation cache with deferred allocation-bit publishing.
///
/// When the heap runs with FastPathSizeClasses the cache additionally
/// holds per-size-class chunk lists (DESIGN.md §16): small allocations
/// pop an exact-class chunk in O(1) and their allocation bits join the
/// same batched publish (PendingPublish rides flushAllocBits' single
/// fence). The bump range keeps serving mid-size objects unchanged.
class AllocationCache {
public:
  /// A cache starts empty; assignRange() arms it.
  AllocationCache() = default;

  /// Arms the cache with the fresh range [Start, Start + Size).
  /// The previous range must have been retired first.
  void assignRange(uint8_t *Start, size_t Size) {
    assert(!CacheStart && "previous cache range not retired");
    CacheStart = Start;
    Cur = Start;
    FlushedTo = Start;
    End = Start + Size;
  }

  /// Whether the cache currently owns a range.
  bool hasRange() const { return CacheStart != nullptr; }

  /// Bytes still available for bump allocation.
  size_t remainingBytes() const { return static_cast<size_t>(End - Cur); }

  /// Bytes handed out since the range was assigned.
  size_t usedBytes() const { return static_cast<size_t>(Cur - CacheStart); }

  /// Allocates and header-initializes an object of \p TotalBytes with
  /// \p NumRefs reference slots. Returns nullptr when the cache cannot
  /// satisfy the request (caller refills). Does NOT set the allocation
  /// bit — that happens in batch at flushAllocBits(). Pure bump pointer:
  /// never polls, never hands control to the collector.
  CGC_NO_SAFEPOINT Object *allocate(size_t TotalBytes, uint16_t NumRefs,
                                    uint16_t ClassId) {
    assert(TotalBytes % GranuleBytes == 0 && "unaligned allocation");
    if (static_cast<size_t>(End - Cur) < TotalBytes)
      return nullptr;
    Object *Obj = reinterpret_cast<Object *>(Cur);
    Cur += TotalBytes;
    Obj->initialize(static_cast<uint32_t>(TotalBytes), NumRefs, ClassId);
    return Obj;
  }

  /// Attaches the heap's fault injector so chaos mode can stretch the
  /// window between the flush fence and the bit publication.
  void setFaultInjector(FaultInjector *Injector) { FI = Injector; }

  /// Section 5.2 mutator steps 2-3: one fence, then publish the
  /// allocation bits of every object allocated since the last flush —
  /// the bump range's block and the size-class path's pending objects
  /// share the one fence. Returns the number of objects published.
  size_t flushAllocBits(BitVector8 &AllocBits) {
    if (FlushedTo == Cur && PendingPublish.empty())
      return 0;
    fence(FenceSite::AllocCacheFlush);
    if (FI)
      FI->maybePerturb(FaultSite::AllocCacheFlush);
    size_t Published = 0;
    uint8_t *P = FlushedTo;
    while (P < Cur) {
      Object *Obj = reinterpret_cast<Object *>(P);
      // Release publication (pairs with the tracer's acquire sample):
      // redundant with the batch fence above on hardware, but TSan
      // cannot see fence ordering — see BitVector8::setRelease.
      AllocBits.setRelease(Obj);
      P += Obj->sizeBytes();
      ++Published;
    }
    assert(P == Cur && "object walk overran the bump pointer");
    FlushedTo = Cur;
    for (Object *Obj : PendingPublish)
      AllocBits.setRelease(Obj);
    Published += PendingPublish.size();
    PendingPublish.clear();
    return Published;
  }

  /// --- Size-class fast path (DESIGN.md §16) --------------------------

  /// Pops a chunk of \p Class, header-initializes it to the class size
  /// and queues its allocation bit for the next flush. Returns nullptr
  /// when the class list is empty (caller refills). Pure list pop:
  /// never polls, never hands control to the collector.
  CGC_NO_SAFEPOINT Object *allocateClass(unsigned Class, uint16_t NumRefs,
                                         uint16_t ClassId) {
    auto &List = ClassChunks[Class];
    if (List.empty())
      return nullptr;
    uint8_t *Start = List.back();
    List.pop_back();
    size_t CS = sizeClassBytes(Class);
    CachedClassBytesV.store(
        CachedClassBytesV.load(std::memory_order_relaxed) - CS,
        std::memory_order_relaxed);
    Object *Obj = reinterpret_cast<Object *>(Start);
    Obj->initialize(static_cast<uint32_t>(CS), NumRefs, ClassId);
    PendingPublish.push_back(Obj);
    return Obj;
  }

  /// Whether class \p Class has no cached chunks.
  bool classEmpty(unsigned Class) const { return ClassChunks[Class].empty(); }

  /// Adds one chunk of exactly sizeClassBytes(Class) to \p Class
  /// (refill carve or remote-queue drain; owner thread only).
  CGC_NO_SAFEPOINT void pushClassChunk(unsigned Class, uint8_t *Start) {
    ClassChunks[Class].push_back(Start);
    CachedClassBytesV.store(CachedClassBytesV.load(std::memory_order_relaxed) +
                                sizeClassBytes(Class),
                            std::memory_order_relaxed);
  }

  /// Free bytes currently parked in the class lists. Owner-maintained;
  /// other threads (pacer aggregation) read racily.
  size_t cachedClassBytes() const {
    return CachedClassBytesV.load(std::memory_order_relaxed);
  }

  /// Whether the pending-publish batch has hit its cap: the owner must
  /// flushAllocBits before allocating further class objects, bounding
  /// how long a class-path object can stay invisible to stack scans.
  bool pendingPublishFull() const {
    return PendingPublish.size() >= MaxPendingPublish;
  }

  /// Returns every cached class chunk to \p FL, coalescing adjacent
  /// chunks first so sub-bin-granule classes survive the free list's
  /// minimum-range filter where possible (unmergeable sub-64 B chunks
  /// go dark until the next sweep, like any other crumb). Returns the
  /// bytes that left the class lists. Used by the allocation ladder's
  /// stranded-memory reclaim and by thread detach.
  size_t flushClassLists(ShardedFreeList &FL);

  /// Releases the cache's unused tail back to \p FL and forgets the
  /// range. Allocation bits must already be flushed by the caller (the
  /// tail itself carries no bits). Used when the world stops for sweep.
  void retire(FreeList &FL);

  /// Sharded variant: the tail goes back to the shard owning its
  /// addresses (a refill never crosses a shard boundary, but the
  /// sharded insert handles splitting regardless).
  void retire(ShardedFreeList &FL);

  /// Drops the range and the class lists without recycling anything
  /// (sweep pause — the bitwise sweep re-derives all of it from the
  /// mark bits — and heap teardown).
  void reset() {
    CacheStart = Cur = FlushedTo = End = nullptr;
    for (auto &List : ClassChunks)
      List.clear();
    CachedClassBytesV.store(0, std::memory_order_relaxed);
    PendingPublish.clear();
  }

  /// Whether there are allocated objects whose bits are not yet published.
  bool hasUnflushedObjects() const {
    return FlushedTo != Cur || !PendingPublish.empty();
  }

private:
  /// Class-path publish batch cap: one fence per this many objects.
  static constexpr size_t MaxPendingPublish = 512;

  uint8_t *CacheStart = nullptr;
  uint8_t *Cur = nullptr;
  uint8_t *FlushedTo = nullptr;
  uint8_t *End = nullptr;
  FaultInjector *FI = nullptr;
  /// Per-class chunk stacks; every entry is exactly its class size.
  std::array<std::vector<uint8_t *>, NumSizeClasses> ClassChunks;
  /// Class objects allocated since the last flushAllocBits.
  std::vector<Object *> PendingPublish;
  CGC_ATOMIC_DOC("owner stores relaxed; pacer aggregation reads racily")
  std::atomic<size_t> CachedClassBytesV{0};
};

} // namespace cgc

#endif // CGC_HEAP_ALLOCATIONCACHE_H
