//===- CardTable.h - Card-marking write-barrier table -----------*- C++ -*-===//
///
/// \file
/// Card table for the mostly-concurrent write barrier (Section 2).
///
/// The heap is divided into 512-byte cards (the paper's card size). The
/// write barrier dirties the card of the written object's header with a
/// plain byte store and deliberately no fence; the fence-free correctness
/// protocol of Section 5.3 (register dirty cards, force mutator fences,
/// then clean the registered cards) is implemented by gc/CardCleaner on
/// top of the registration primitive provided here.
///
//===----------------------------------------------------------------------===//

#ifndef CGC_HEAP_CARDTABLE_H
#define CGC_HEAP_CARDTABLE_H

#include "support/Annotations.h"

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace cgc {

/// Dirty-card table over a fixed heap range.
class CardTable {
public:
  /// Bytes of heap covered by one card (the paper uses 512).
  static constexpr size_t CardBytes = 512;

  /// Creates a clean table covering [Base, Base + SizeBytes).
  CardTable(const void *Base, size_t SizeBytes);

  /// Number of cards in the table.
  size_t numCards() const { return NumCards; }

  /// Index of the card containing \p Addr.
  size_t cardIndexFor(const void *Addr) const {
    const uint8_t *P = static_cast<const uint8_t *>(Addr);
    assert(P >= Base && static_cast<size_t>(P - Base) < SizeBytes &&
           "address outside card table range");
    return static_cast<size_t>(P - Base) / CardBytes;
  }

  /// First heap address covered by card \p Index.
  uint8_t *cardStart(size_t Index) const {
    assert(Index < NumCards && "card index out of range");
    return const_cast<uint8_t *>(Base) + Index * CardBytes;
  }

  /// One past the last heap address covered by card \p Index.
  uint8_t *cardEnd(size_t Index) const {
    size_t EndOffset = (Index + 1) * CardBytes;
    if (EndOffset > SizeBytes)
      EndOffset = SizeBytes;
    return const_cast<uint8_t *>(Base) + EndOffset;
  }

  /// Write-barrier store: dirties the card containing \p Addr. A plain
  /// relaxed byte store — no fence, per Section 5.3. Never safepoints:
  /// GcHeap::writeRef's CGC_NO_SAFEPOINT guarantee depends on it.
  CGC_NO_SAFEPOINT void dirty(const void *Addr) {
    Cards[cardIndexFor(Addr)].store(1, std::memory_order_relaxed);
  }

  /// Whether card \p Index is currently dirty.
  bool isDirty(size_t Index) const {
    return Cards[Index].load(std::memory_order_relaxed) != 0;
  }

  /// Step 1 of the Section 5.3 cleaning protocol: scans the whole table,
  /// appends the indices of dirty cards to \p Registered and clears their
  /// dirty indicators. Returns the number of cards registered. Cards
  /// dirtied again after this call stay dirty for a later pass.
  size_t registerAndClearDirty(std::vector<uint32_t> &Registered);

  /// Counts currently dirty cards (relaxed snapshot).
  size_t countDirty() const;

  /// Clears the entire table (cycle initialization).
  void clearAll();

private:
  const uint8_t *Base;
  size_t SizeBytes;
  size_t NumCards;
  std::unique_ptr<std::atomic<uint8_t>[]> Cards;
};

} // namespace cgc

#endif // CGC_HEAP_CARDTABLE_H
