//===- BitVector8.h - One bit per 8-byte granule ----------------*- C++ -*-===//
///
/// \file
/// Bit vector mapping one bit to each 8-byte granule of the heap. Used
/// for both the mark bit vector and the allocation bit vector of the
/// paper (Section 2.1 and Section 5.2). Bit updates are atomic so that
/// many tracer and mutator threads can mark concurrently.
///
//===----------------------------------------------------------------------===//

#ifndef CGC_HEAP_BITVECTOR8_H
#define CGC_HEAP_BITVECTOR8_H

#include "heap/ObjectModel.h"

#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>

namespace cgc {

/// Atomic bitmap over a fixed heap range, one bit per granule.
class BitVector8 {
public:
  /// Creates a zeroed bitmap covering [Base, Base + SizeBytes).
  BitVector8(const void *Base, size_t SizeBytes);

  /// Atomically sets the bit for \p Addr; returns true if it was clear
  /// (i.e. this caller won the race). This is the mark operation.
  bool testAndSet(const void *Addr) {
    uint64_t Mask;
    std::atomic<uint64_t> &W = wordFor(Addr, Mask);
    if (W.load(std::memory_order_relaxed) & Mask)
      return false;
    return (W.fetch_or(Mask, std::memory_order_relaxed) & Mask) == 0;
  }

  /// Atomically sets the bit for \p Addr.
  void set(const void *Addr) {
    uint64_t Mask;
    wordFor(Addr, Mask).fetch_or(Mask, std::memory_order_relaxed);
  }

  /// Atomically sets the bit for \p Addr with release ordering: every
  /// store program-ordered before this call (an object's initializing
  /// writes) becomes visible to any thread that testAcquire()s the bit.
  /// This is the publication half of the Section 5.2 allocation-bit
  /// protocol. The batch fence in AllocationCache::flushAllocBits
  /// already provides this ordering on hardware; the release RMW costs
  /// nothing extra on TSO and, unlike a thread fence, is understood by
  /// ThreadSanitizer (GCC's TSan has no atomic_thread_fence support).
  void setRelease(const void *Addr) {
    uint64_t Mask;
    wordFor(Addr, Mask).fetch_or(Mask, std::memory_order_release);
  }

  /// Reads the bit for \p Addr (relaxed).
  bool test(const void *Addr) const {
    uint64_t Mask;
    return wordFor(Addr, Mask).load(std::memory_order_relaxed) & Mask;
  }

  /// Reads the bit for \p Addr with acquire ordering — the consumption
  /// half of the Section 5.2 protocol: a tracer that observes the bit
  /// set is guaranteed to see the object's initializing stores (pairs
  /// with setRelease; see that comment for why this exists alongside
  /// the tracer's batch fence).
  bool testAcquire(const void *Addr) const {
    uint64_t Mask;
    return wordFor(Addr, Mask).load(std::memory_order_acquire) & Mask;
  }

  /// Atomically clears the bit for \p Addr.
  void clear(const void *Addr) {
    uint64_t Mask;
    wordFor(Addr, Mask).fetch_and(~Mask, std::memory_order_relaxed);
  }

  /// Clears every bit covering [From, To). Boundary words are edited
  /// atomically so concurrent setters of neighbouring granules are safe.
  void clearRange(const void *From, const void *To);

  /// Zeroes the whole bitmap (not thread-safe against concurrent edits).
  void clearAll();

  /// Number of set bits covering [From, To) (relaxed snapshot).
  size_t countInRange(const void *From, const void *To) const;

  /// Address of the first set bit at or after \p From and before \p To,
  /// or nullptr when none.
  uint8_t *findNextSet(const void *From, const void *To) const;

  /// Address of the last set bit strictly before \p Before (and at or
  /// after the bitmap base), or nullptr when none. Used by the parallel
  /// sweeper to resolve objects spanning a chunk's leading edge.
  uint8_t *findPrevSet(const void *Before) const;

  /// Invokes \p Fn with the granule address of every set bit in
  /// [From, To), in address order. \p Fn returns false to stop early.
  template <typename FnT>
  void forEachSetInRange(const void *From, const void *To, FnT Fn) const {
    const uint8_t *Cur = static_cast<const uint8_t *>(From);
    const uint8_t *End = static_cast<const uint8_t *>(To);
    while (Cur < End) {
      uint8_t *Next = findNextSet(Cur, End);
      if (!Next)
        return;
      if (!Fn(Next))
        return;
      Cur = Next + GranuleBytes;
    }
  }

  /// The covered base address.
  const uint8_t *base() const { return Base; }

  /// Number of granules covered.
  size_t numGranules() const { return NumGranules; }

private:
  std::atomic<uint64_t> &wordFor(const void *Addr, uint64_t &Mask) {
    size_t Index = granuleIndex(Addr);
    Mask = 1ull << (Index & 63);
    return Words[Index >> 6];
  }
  const std::atomic<uint64_t> &wordFor(const void *Addr,
                                       uint64_t &Mask) const {
    return const_cast<BitVector8 *>(this)->wordFor(Addr, Mask);
  }

  size_t granuleIndex(const void *Addr) const {
    const uint8_t *P = static_cast<const uint8_t *>(Addr);
    assert(P >= Base && "address below bitmap range");
    size_t Offset = static_cast<size_t>(P - Base);
    assert(Offset / GranuleBytes < NumGranules &&
           "address above bitmap range");
    assert(Offset % GranuleBytes == 0 && "address not granule aligned");
    return Offset / GranuleBytes;
  }

  const uint8_t *Base;
  size_t NumGranules;
  size_t NumWords;
  std::unique_ptr<std::atomic<uint64_t>[]> Words;
};

} // namespace cgc

#endif // CGC_HEAP_BITVECTOR8_H
