//===- Warehouse.h - SPECjbb/pBOB-like transaction workload -----*- C++ -*-===//
///
/// \file
/// A warehouse-transaction workload with the GC-relevant shape of
/// SPECjbb2000 and pBOB (Section 6): per-thread live "order history"
/// rings that keep heap occupancy steady, a high allocation rate of
/// short-lived order trees, occasional mutation of old (already-marked)
/// objects to exercise the card-marking write barrier, and optional
/// per-transaction think time to simulate pBOB autoserver's processor
/// idle time. Thread count plays the role of warehouses × terminals.
///
//===----------------------------------------------------------------------===//

#ifndef CGC_WORKLOADS_WAREHOUSE_H
#define CGC_WORKLOADS_WAREHOUSE_H

#include "workloads/WorkloadResult.h"

#include <cstddef>
#include <cstdint>

namespace cgc {

class GcHeap;

/// Configuration of the warehouse workload.
struct WarehouseConfig {
  /// Concurrent transaction threads.
  unsigned Threads = 4;
  /// Run length (wall clock).
  uint64_t DurationMs = 2000;
  /// Live order trees retained per thread (sizes the live set).
  size_t LiveTreesPerThread = 64;
  /// Order lines per order.
  unsigned LinesPerOrder = 8;
  /// Payload bytes per order line.
  size_t LinePayloadBytes = 48;
  /// Payload bytes per order record.
  size_t OrderPayloadBytes = 64;
  /// Probability a transaction also rewires a slot of an old, retained
  /// tree (generates dirty cards on long-lived objects).
  double OldMutationProbability = 0.2;
  /// Per-transaction think time in microseconds (0 = none). Nonzero
  /// models pBOB autoserver's idle time; the thread enters an idle
  /// region while thinking.
  double ThinkMicros = 0;
  /// PRNG seed (per-thread seeds derive from it).
  uint64_t Seed = 0x5eed;

  /// Approximate heap bytes of one retained order tree.
  size_t treeBytes() const;
  /// Approximate steady-state live bytes of the whole run.
  size_t estimatedLiveBytes() const {
    return treeBytes() * LiveTreesPerThread * Threads;
  }
  /// Picks LiveTreesPerThread so the steady-state live set is about
  /// \p TargetLiveBytes.
  void sizeLiveSet(size_t TargetLiveBytes);
};

/// Runs warehouse transactions on a GcHeap.
class WarehouseWorkload {
public:
  WarehouseWorkload(GcHeap &Heap, const WarehouseConfig &Config)
      : Heap(Heap), Config(Config) {}

  /// Spawns the threads, runs for the configured duration, returns the
  /// aggregate result.
  WorkloadResult run();

private:
  void threadMain(unsigned Index, uint64_t DeadlineNs,
                  WorkloadResult &Result);

  GcHeap &Heap;
  WarehouseConfig Config;
};

} // namespace cgc

#endif // CGC_WORKLOADS_WAREHOUSE_H
