//===- KvServer.cpp - Memcache-like GC-heap key-value store -------------------//

#include "workloads/KvServer.h"

#include "runtime/GcHeap.h"
#include "support/Random.h"
#include "support/SpinLock.h"
#include "support/Timing.h"

#include <cassert>
#include <cstdio>
#include <cstring>
#include <thread>
#include <vector>

using namespace cgc;

namespace {

/// Workload class ids (debugging dumps).
enum KvClassId : uint16_t { CIdTable = 11, CIdEntry = 12, CIdValue = 13 };

/// Entry reference slots.
constexpr unsigned SlotNext = 0;
constexpr unsigned SlotValue = 1;
constexpr uint16_t NumEntryRefs = 2;

/// Entry payload: [0,8) key hash, [8,10) key length, [10, 10+len) key.
constexpr size_t EntryHeaderBytes = 10;

uint64_t mix64(uint64_t X) {
  X += 0x9e3779b97f4a7c15ULL;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ULL;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebULL;
  return X ^ (X >> 31);
}

void storeU64(uint8_t *P, uint64_t V) { std::memcpy(P, &V, 8); }
uint64_t loadU64(const uint8_t *P) {
  uint64_t V;
  std::memcpy(&V, P, 8);
  return V;
}

/// Fills a value payload from its (key hash, nonce) stamp: the first 16
/// bytes are the stamp itself, the rest a pseudo-random pattern derived
/// from it, so any stray write (or a reclaimed-and-reused object) fails
/// verification.
void stampValue(Object *Value, uint64_t KeyHash, uint64_t Nonce) {
  uint8_t *P = Value->payload();
  size_t N = Value->payloadBytes();
  assert(N >= KvStore::MinValueBytes && "value too small for the stamp");
  storeU64(P, KeyHash);
  storeU64(P + 8, Nonce);
  uint64_t Pattern = mix64(KeyHash ^ Nonce);
  for (size_t I = 16; I < N; ++I)
    P[I] = static_cast<uint8_t>(Pattern >> ((I % 8) * 8) ^ (I * 131));
}

bool verifyValue(const Object *Value, uint64_t KeyHash) {
  const uint8_t *P = Value->payload();
  size_t N = Value->payloadBytes();
  if (N < KvStore::MinValueBytes || loadU64(P) != KeyHash)
    return false;
  uint64_t Nonce = loadU64(P + 8);
  uint64_t Pattern = mix64(KeyHash ^ Nonce);
  for (size_t I = 16; I < N; ++I)
    if (P[I] != static_cast<uint8_t>(Pattern >> ((I % 8) * 8) ^ (I * 131)))
      return false;
  return true;
}

/// Writes the key into a fresh entry's payload (pre-publication, raw
/// payload writes need no barrier).
void writeEntryKey(Object *Entry, uint64_t Hash, const char *Key,
                   size_t KeyLen) {
  uint8_t *P = Entry->payload();
  storeU64(P, Hash);
  uint16_t Len = static_cast<uint16_t>(KeyLen);
  std::memcpy(P + 8, &Len, 2);
  std::memcpy(P + EntryHeaderBytes, Key, KeyLen);
}

bool entryMatches(const Object *Entry, uint64_t Hash, const char *Key,
                  size_t KeyLen) {
  const uint8_t *P = Entry->payload();
  if (loadU64(P) != Hash)
    return false;
  uint16_t Len;
  std::memcpy(&Len, P + 8, 2);
  return Len == KeyLen &&
         std::memcmp(P + EntryHeaderBytes, Key, KeyLen) == 0;
}

uint64_t entryHash(const Object *Entry) { return loadU64(Entry->payload()); }

unsigned roundUpPow2(unsigned V) {
  unsigned P = 1;
  while (P < V)
    P <<= 1;
  return P;
}

} // namespace

uint64_t cgc::kvHashKey(const char *Key, size_t KeyLen) {
  uint64_t H = 0xcbf29ce484222325ULL;
  for (size_t I = 0; I < KeyLen; ++I) {
    H ^= static_cast<uint8_t>(Key[I]);
    H *= 0x100000001b3ULL;
  }
  return H;
}

//===----------------------------------------------------------------------===//
// KvStore
//===----------------------------------------------------------------------===//

KvStore::KvStore(GcHeap &Heap, MutatorContext &OwnerCtx, size_t OwnerRootSlot,
                 const KvStoreConfig &Config)
    : Heap(Heap), Cfg(Config),
      NumStripes(std::min(roundUpPow2(Config.LockStripes ? Config.LockStripes
                                                         : 1),
                          roundUpPow2(Config.Buckets))) {
  assert(Cfg.Buckets >= 1 && Cfg.Buckets <= 60000 &&
         "buckets are ref slots of one object (uint16 count)");
  assert(Cfg.MaxEntries >= 1 && "empty store");
  Stripes.reset(new SpinLock[NumStripes]);
  Object *T = Heap.allocate(OwnerCtx, 0, static_cast<uint16_t>(Cfg.Buckets),
                            CIdTable);
  assert(T && "heap too small for the kv table");
  OwnerCtx.setRoot(OwnerRootSlot, T);
  Table = T;
}

KvStore::~KvStore() = default;

unsigned KvStore::bucketFor(uint64_t Hash) const {
  return static_cast<unsigned>(Hash % Cfg.Buckets);
}

SpinLock &KvStore::stripe(unsigned Bucket) const {
  return Stripes[Bucket & (NumStripes - 1)];
}

bool KvStore::set(MutatorContext &Ctx, const char *Key, size_t KeyLen,
                  size_t ValueBytes, uint64_t Nonce) {
  assert(KeyLen >= 1 && KeyLen <= Cfg.MaxKeyBytes && "key size out of range");
  uint64_t Hash = kvHashKey(Key, KeyLen);
  if (ValueBytes < MinValueBytes)
    ValueBytes = MinValueBytes;

  // Allocate value and entry BEFORE touching the table or any stripe:
  // allocation is a GC point, so the value must be anchored across the
  // entry's allocation (M1), and no GC point may run under a stripe
  // lock (M3).
  Object *Value = Heap.allocate(Ctx, ValueBytes, 0, CIdValue);
  if (!Value)
    return false;
  stampValue(Value, Hash, Nonce);
  Ctx.pushRoot(Value);
  Object *Entry =
      Heap.allocate(Ctx, EntryHeaderBytes + KeyLen, NumEntryRefs, CIdEntry);
  Ctx.popRoots(1);
  if (!Entry)
    return false;
  writeEntryKey(Entry, Hash, Key, KeyLen);
  // Publish the value into the (unpublished) entry through the barrier;
  // from here the entry subgraph is fully formed.
  Heap.writeRef(Ctx, Entry, SlotValue, Value);

  unsigned B = bucketFor(Hash);
  bool Inserted = false;
  {
    SpinLockGuard Guard(stripe(B));
    Object *Head = GcHeap::readRef(Table, B);
    Object *Existing = nullptr;
    for (Object *E = Head; E; E = GcHeap::readRef(E, SlotNext))
      if (entryMatches(E, Hash, Key, KeyLen)) {
        Existing = E;
        break;
      }
    if (Existing) {
      // Overwrite in place: the old value becomes garbage.
      Heap.writeRef(Ctx, Existing, SlotValue, Value);
    } else {
      Heap.writeRef(Ctx, Entry, SlotNext, Head);
      Heap.writeRef(Ctx, Table, B, Entry);
      EntryCount.fetch_add(1, std::memory_order_relaxed);
      Inserted = true;
    }
  }
  if (Inserted)
    evictOverflow(Ctx);
  return true;
}

KvStore::GetResult KvStore::get(const char *Key, size_t KeyLen) const {
  uint64_t Hash = kvHashKey(Key, KeyLen);
  unsigned B = bucketFor(Hash);
  SpinLockGuard Guard(stripe(B));
  for (Object *E = GcHeap::readRef(Table, B); E;
       E = GcHeap::readRef(E, SlotNext)) {
    if (!entryMatches(E, Hash, Key, KeyLen))
      continue;
    Object *Value = GcHeap::readRef(E, SlotValue);
    if (!Value || !verifyValue(Value, Hash))
      return GetResult::Corrupt;
    return GetResult::Hit;
  }
  return GetResult::Miss;
}

bool KvStore::del(MutatorContext &Ctx, const char *Key, size_t KeyLen) {
  uint64_t Hash = kvHashKey(Key, KeyLen);
  unsigned B = bucketFor(Hash);
  SpinLockGuard Guard(stripe(B));
  Object *Prev = nullptr;
  for (Object *E = GcHeap::readRef(Table, B); E;
       Prev = E, E = GcHeap::readRef(E, SlotNext)) {
    if (!entryMatches(E, Hash, Key, KeyLen))
      continue;
    Object *Next = GcHeap::readRef(E, SlotNext);
    if (Prev)
      Heap.writeRef(Ctx, Prev, SlotNext, Next);
    else
      Heap.writeRef(Ctx, Table, B, Next);
    EntryCount.fetch_sub(1, std::memory_order_relaxed);
    return true;
  }
  return false;
}

void KvStore::evictOverflow(MutatorContext &Ctx) {
  // Bounded: scan at most one full round of buckets per call; other
  // threads' concurrent evictions make up any shortfall on their sets.
  for (unsigned Tries = 0;
       Tries < Cfg.Buckets &&
       EntryCount.load(std::memory_order_relaxed) > Cfg.MaxEntries;
       ++Tries) {
    unsigned B = EvictCursor.fetch_add(1, std::memory_order_relaxed) %
                 Cfg.Buckets;
    SpinLockGuard Guard(stripe(B));
    Object *Head = GcHeap::readRef(Table, B);
    if (!Head)
      continue;
    // Unlink the tail (the bucket's oldest entry).
    Object *Prev = nullptr;
    Object *E = Head;
    for (Object *Next = GcHeap::readRef(E, SlotNext); Next;
         Next = GcHeap::readRef(E, SlotNext)) {
      Prev = E;
      E = Next;
    }
    if (Prev)
      Heap.writeRef(Ctx, Prev, SlotNext, nullptr);
    else
      Heap.writeRef(Ctx, Table, B, nullptr);
    EntryCount.fetch_sub(1, std::memory_order_relaxed);
    Evictions.fetch_add(1, std::memory_order_relaxed);
  }
}

bool KvStore::verifyBucket(unsigned Bucket, size_t *LiveSeen,
                           std::string *Error) const {
  auto fail = [&](const std::string &Why) {
    if (Error)
      *Error = "bucket " + std::to_string(Bucket) + ": " + Why;
    return false;
  };
  SpinLockGuard Guard(stripe(Bucket));
  size_t ChainLen = 0;
  for (Object *E = GcHeap::readRef(Table, Bucket); E;
       E = GcHeap::readRef(E, SlotNext)) {
    if (++ChainLen > Cfg.MaxEntries + 1)
      return fail("chain cycle or over-long chain");
    uint64_t Hash = entryHash(E);
    if (bucketFor(Hash) != Bucket)
      return fail("entry hashed to bucket " +
                  std::to_string(bucketFor(Hash)));
    Object *Value = GcHeap::readRef(E, SlotValue);
    if (!Value)
      return fail("entry without value");
    if (!verifyValue(Value, Hash))
      return fail("value failed its integrity stamp");
  }
  *LiveSeen += ChainLen;
  return true;
}

bool KvStore::verifyAll(std::string *Error) const {
  size_t LiveSeen = 0;
  for (unsigned B = 0; B < Cfg.Buckets; ++B)
    if (!verifyBucket(B, &LiveSeen, Error))
      return false;
  size_t Counted = EntryCount.load(std::memory_order_relaxed);
  if (LiveSeen != Counted) {
    if (Error)
      *Error = "entry count mismatch: walked " + std::to_string(LiveSeen) +
               ", counter says " + std::to_string(Counted);
    return false;
  }
  return true;
}

//===----------------------------------------------------------------------===//
// KvWorkload
//===----------------------------------------------------------------------===//

namespace {

/// Deterministic key text for index \p K: "key-<K>" zero-padded so key
/// lengths vary little and stay well under MaxKeyBytes.
size_t formatKey(char *Buf, size_t BufLen, size_t K) {
  int N = std::snprintf(Buf, BufLen, "key-%08zx", K);
  return N > 0 ? static_cast<size_t>(N) : 0;
}

} // namespace

bool cgc::kvServeOne(GcHeap &Heap, MutatorContext &Ctx, KvStore &Store,
                     const KvWorkloadConfig &Config, Random &Rng) {
  char Key[64];
  size_t KeyLen = formatKey(Key, sizeof(Key), Rng.nextBelow(Config.KeySpace));
  double Roll = Rng.nextDouble();
  if (Roll < Config.GetFraction)
    return Store.get(Key, KeyLen) != KvStore::GetResult::Corrupt;
  if (Roll < Config.GetFraction + Config.DeleteFraction) {
    Store.del(Ctx, Key, KeyLen);
    return true;
  }
  size_t ValueBytes = Config.MinValueBytes == Config.MaxValueBytes
                          ? Config.MinValueBytes
                          : Rng.nextInRange(Config.MinValueBytes,
                                            Config.MaxValueBytes);
  // Allocation failure is already a reported degradation (the ladder
  // never aborts); the request still counts as served.
  Store.set(Ctx, Key, KeyLen, ValueBytes, Rng.next());
  return true;
}

void KvWorkload::threadMain(unsigned Index, KvStore &Store,
                            uint64_t DeadlineNs, WorkloadResult &Result) {
  MutatorContext &Ctx = Heap.attachThread();
  Random Rng(Config.Seed * 0x9e3779b9u + Index * 7919u + 1);
  uint64_t Ops = 0;
  uint64_t StartAllocated = Ctx.BytesAllocated.load(std::memory_order_relaxed);
  bool Integrity = true;

  while (nowNanos() < DeadlineNs) {
    if (!kvServeOne(Heap, Ctx, Store, Config, Rng))
      Integrity = false;
    // Live-set bound: eviction keeps entries near MaxEntries; allow
    // one in-flight insert per thread of slack.
    if (Store.liveEntries() > Store.config().MaxEntries + Config.Threads)
      Integrity = false;
    Heap.safepointPoll(Ctx);
    ++Ops;
  }

  uint64_t Allocated =
      Ctx.BytesAllocated.load(std::memory_order_relaxed) - StartAllocated;
  Heap.detachThread(Ctx);

  std::atomic_ref<uint64_t>(Result.Transactions)
      .fetch_add(Ops, std::memory_order_relaxed);
  std::atomic_ref<uint64_t>(Result.BytesAllocated)
      .fetch_add(Allocated, std::memory_order_relaxed);
  if (!Integrity)
    std::atomic_ref<bool>(Result.IntegrityFailure)
        .store(true, std::memory_order_relaxed);
}

WorkloadResult KvWorkload::run() {
  WorkloadResult Result;
  Stopwatch Timer;

  MutatorContext &OwnerCtx = Heap.attachThread();
  OwnerCtx.reserveRoots(1);
  {
    KvStore Store(Heap, OwnerCtx, /*OwnerRootSlot=*/0, Config.Store);

    uint64_t DeadlineNs = nowNanos() + Config.DurationMs * 1000000ull;
    std::vector<std::thread> Threads;
    Threads.reserve(Config.Threads);
    // The owner thread parks in an idle region while serving threads
    // run (it performs no heap accesses until they join).
    Heap.enterIdle(OwnerCtx);
    for (unsigned I = 0; I < Config.Threads; ++I)
      Threads.emplace_back([this, I, &Store, DeadlineNs, &Result] {
        threadMain(I, Store, DeadlineNs, Result);
      });
    for (std::thread &T : Threads)
      T.join();
    Heap.exitIdle(OwnerCtx);

    std::string Error;
    if (!Store.verifyAll(&Error)) {
      std::fprintf(stderr, "kv integrity: %s\n", Error.c_str());
      Result.IntegrityFailure = true;
    }
    if (Store.liveEntries() > Config.Store.MaxEntries + Config.Threads)
      Result.IntegrityFailure = true;
  }
  OwnerCtx.setRoot(0, nullptr); // The table is garbage from here.
  Heap.detachThread(OwnerCtx);

  Result.DurationMs = Timer.elapsedMillis();
  return Result;
}
