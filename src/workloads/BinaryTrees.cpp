//===- BinaryTrees.cpp - GCBench-style deep-tree workload ----------------------//

#include "workloads/BinaryTrees.h"

#include "runtime/GcHeap.h"
#include "support/Random.h"
#include "support/Timing.h"

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

using namespace cgc;

namespace {

constexpr uint16_t CIdTreeNode = 30;

/// Node payload: [0..7] node value folded into the subtree checksum.
uint64_t nodeValue(const Object *Node) {
  uint64_t V;
  std::memcpy(&V, Node->payload(), 8);
  return V;
}

} // namespace

void BinaryTreesWorkload::threadMain(unsigned Index, uint64_t DeadlineNs,
                                     WorkloadResult &Result) {
  MutatorContext &Ctx = Heap.attachThread();
  Random Rng(Config.Seed * 2654435761u + Index + 1);
  // Root slots: 0 = long-lived tree, 1 = current churn tree, 2..3 =
  // build anchors (a bottom-up build keeps children rooted while their
  // parent is allocated).
  Ctx.reserveRoots(4);
  size_t Payload = 8 + Config.NodePayloadBytes;

  bool Exhausted = false;

  // Bottom-up recursive builder of a complete tree of \p Depth. Every
  // completed child is anchored on the shadow stack while its sibling
  // and parent are allocated (allocation is a GC point; under
  // compaction, unanchored children could be evacuated).
  auto buildTree = [&](unsigned Depth, auto &&Self) -> Object * {
    if (Exhausted)
      return nullptr;
    Object *Left = nullptr, *Right = nullptr;
    size_t Anchors = 0;
    if (Depth > 0) {
      Left = Self(Depth - 1, Self);
      if (Left) {
        Ctx.pushRoot(Left);
        ++Anchors;
      }
      Right = Self(Depth - 1, Self);
      if (Right) {
        Ctx.pushRoot(Right);
        ++Anchors;
      }
    }
    Object *Node = Heap.allocate(Ctx, Payload, 2, CIdTreeNode);
    if (!Node) {
      Exhausted = true;
      Ctx.popRoots(Anchors);
      return nullptr;
    }
    uint64_t V = Rng.next() >> 32;
    std::memcpy(Node->payload(), &V, 8);
    if (Left)
      Heap.writeRef(Ctx, Node, 0, Left);
    if (Right)
      Heap.writeRef(Ctx, Node, 1, Right);
    Ctx.popRoots(Anchors);
    return Node;
  };

  // Structural checksum: value + 3*left + 5*right, recursively.
  auto checksum = [&](const Object *Node, auto &&Self) -> uint64_t {
    if (!Node)
      return 0x9e37;
    uint64_t Sum = nodeValue(Node);
    Sum += 3 * Self(GcHeap::readRef(Node, 0), Self);
    Sum += 5 * Self(GcHeap::readRef(Node, 1), Self);
    return Sum;
  };

  // The long-lived tree.
  Object *LongLived = buildTree(Config.LongLivedDepth, buildTree);
  if (LongLived)
    Ctx.setRoot(0, LongLived);
  uint64_t LongLivedSum =
      LongLived ? checksum(LongLived, checksum) : 0;

  uint64_t Trees = 0;
  bool Corrupt = false;
  uint64_t StartAllocated =
      Ctx.BytesAllocated.load(std::memory_order_relaxed);

  while (!Exhausted && !Corrupt && nowNanos() < DeadlineNs) {
    unsigned Depth = static_cast<unsigned>(
        Rng.nextInRange(Config.MinDepth, Config.MaxDepth));
    Object *Tree = buildTree(Depth, buildTree);
    if (!Tree)
      break;
    // Verify then drop (short-lived): checksum twice so a GC-corrupted
    // subtree is caught while still rooted.
    Ctx.setRoot(1, Tree);
    uint64_t A = checksum(Tree, checksum);
    Heap.safepointPoll(Ctx);
    uint64_t B = checksum(Tree, checksum);
    if (A != B)
      Corrupt = true;
    Ctx.setRoot(1, nullptr);
    ++Trees;
    // Periodically re-verify the long-lived tree.
    if ((Trees & 63) == 0 && LongLived &&
        checksum(Ctx.getRoot(0), checksum) != LongLivedSum)
      Corrupt = true;
  }

  if (LongLived && checksum(Ctx.getRoot(0), checksum) != LongLivedSum)
    Corrupt = true;

  uint64_t Allocated =
      Ctx.BytesAllocated.load(std::memory_order_relaxed) - StartAllocated;
  Heap.detachThread(Ctx);

  std::atomic_ref<uint64_t>(Result.Transactions)
      .fetch_add(Trees, std::memory_order_relaxed);
  std::atomic_ref<uint64_t>(Result.BytesAllocated)
      .fetch_add(Allocated, std::memory_order_relaxed);
  if (Corrupt)
    std::atomic_ref<bool>(Result.IntegrityFailure)
        .store(true, std::memory_order_relaxed);
}

WorkloadResult BinaryTreesWorkload::run() {
  WorkloadResult Result;
  Stopwatch Timer;
  uint64_t DeadlineNs = nowNanos() + Config.DurationMs * 1000000ull;

  std::vector<std::thread> Threads;
  Threads.reserve(Config.Threads);
  for (unsigned I = 0; I < Config.Threads; ++I)
    Threads.emplace_back(
        [this, I, DeadlineNs, &Result] { threadMain(I, DeadlineNs, Result); });
  for (std::thread &T : Threads)
    T.join();

  Result.DurationMs = Timer.elapsedMillis();
  return Result;
}
