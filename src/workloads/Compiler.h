//===- Compiler.h - javac-like toy compiler workload ------------*- C++ -*-===//
///
/// \file
/// A single-threaded (by default) compiler workload standing in for
/// javac (Section 6.1's uniprocessor experiment): a real, if small,
/// expression-language compiler whose intermediate structures live on
/// the GC heap.
///
/// Each "compilation unit" generates random source text for a handful of
/// functions, lexes and recursive-descent parses it into a GC-allocated
/// AST (one heap object per node), folds constants, and emits a
/// stack-machine code object with a GC-allocated constant pool. The last
/// few compiled units are retained (like javac's symbol tables), so the
/// heap carries both a churning young population (tokens, ASTs) and a
/// steadier old one (code objects) — the occupancy shape the paper's 25
/// MB / 70% javac configuration exercises.
///
//===----------------------------------------------------------------------===//

#ifndef CGC_WORKLOADS_COMPILER_H
#define CGC_WORKLOADS_COMPILER_H

#include "workloads/WorkloadResult.h"

#include <cstddef>
#include <cstdint>

namespace cgc {

class GcHeap;

/// Configuration of the compiler workload.
struct CompilerConfig {
  /// Compiler threads (1 = the paper's javac setup).
  unsigned Threads = 1;
  /// Run length (wall clock).
  uint64_t DurationMs = 2000;
  /// Maximum expression nesting depth of generated functions.
  unsigned MaxExprDepth = 7;
  /// Functions per compilation unit.
  unsigned FunctionsPerUnit = 12;
  /// Compiled units retained per thread (the long-lived set).
  size_t RetainedUnits = 32;
  /// PRNG seed.
  uint64_t Seed = 0xc0de;
};

/// Runs compile transactions on a GcHeap.
class CompilerWorkload {
public:
  CompilerWorkload(GcHeap &Heap, const CompilerConfig &Config)
      : Heap(Heap), Config(Config) {}

  /// Spawns the threads, compiles until the deadline, returns the
  /// aggregate result. Transactions = compilation units completed.
  /// Sets IntegrityFailure if any compiled program, when interpreted,
  /// disagrees with direct evaluation of its AST.
  WorkloadResult run();

private:
  void threadMain(unsigned Index, uint64_t DeadlineNs,
                  WorkloadResult &Result);

  GcHeap &Heap;
  CompilerConfig Config;
};

} // namespace cgc

#endif // CGC_WORKLOADS_COMPILER_H
