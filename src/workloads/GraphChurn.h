//===- GraphChurn.h - Self-verifying random-graph workload ------*- C++ -*-===//
///
/// \file
/// A stress workload whose object graph checks itself: every node
/// carries a random nonce, and every edge records the nonce of the node
/// it points to. If the collector ever reclaims a live object (whose
/// memory is then reused), a traversal finds an edge whose recorded
/// nonce disagrees with the target's — the strongest end-to-end
/// soundness check the test suite has for the concurrent collector.
///
//===----------------------------------------------------------------------===//

#ifndef CGC_WORKLOADS_GRAPHCHURN_H
#define CGC_WORKLOADS_GRAPHCHURN_H

#include "workloads/WorkloadResult.h"

#include <cstddef>
#include <cstdint>

namespace cgc {

class GcHeap;

/// Configuration of the graph-churn workload.
struct GraphChurnConfig {
  unsigned Threads = 2;
  uint64_t DurationMs = 1000;
  /// Root slots (live subgraph anchors) per thread.
  size_t RootsPerThread = 128;
  /// Outgoing edges per node.
  unsigned OutDegree = 3;
  /// Payload bytes per node beyond the nonce table.
  size_t ExtraPayloadBytes = 24;
  /// Per-transaction probability of a full verification walk.
  double VerifyProbability = 0.05;
  uint64_t Seed = 0x6aaf;
};

/// Runs the self-verifying churn. Transactions = graph operations.
class GraphChurnWorkload {
public:
  GraphChurnWorkload(GcHeap &Heap, const GraphChurnConfig &Config)
      : Heap(Heap), Config(Config) {}

  WorkloadResult run();

private:
  void threadMain(unsigned Index, uint64_t DeadlineNs,
                  WorkloadResult &Result);

  GcHeap &Heap;
  GraphChurnConfig Config;
};

} // namespace cgc

#endif // CGC_WORKLOADS_GRAPHCHURN_H
