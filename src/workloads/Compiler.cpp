//===- Compiler.cpp - javac-like toy compiler workload -------------------------//

#include "workloads/Compiler.h"

#include "runtime/GcHeap.h"
#include "support/Random.h"
#include "support/Timing.h"

#include <atomic>
#include <cassert>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

using namespace cgc;

namespace {

/// GC class ids of the compiler's heap structures.
enum CompilerClassId : uint16_t {
  CIdToken = 10,
  CIdAst = 11,
  CIdCode = 12,
  CIdConstPool = 13,
  CIdBoxedInt = 14,
  CIdUnit = 15
};

/// Token kinds.
enum TokKind : uint8_t {
  TokNum,
  TokVar,
  TokPlus,
  TokMinus,
  TokStar,
  TokLParen,
  TokRParen,
  TokEnd
};

/// AST node kinds.
enum AstKind : uint8_t { AstNum, AstVar, AstAdd, AstSub, AstMul, AstNeg };

/// Stack-machine opcodes.
enum OpCode : uint8_t { OpConst, OpVar, OpAdd, OpSub, OpMul, OpNeg, OpHalt };

constexpr unsigned NumVars = 8;

/// Payload layout of tokens and AST nodes: [0] kind, [1] var index,
/// [8..15] 64-bit literal value.
struct NodeBits {
  static uint8_t kind(const Object *Obj) { return Obj->payload()[0]; }
  static uint8_t varIndex(const Object *Obj) { return Obj->payload()[1]; }
  static int64_t value(const Object *Obj) {
    int64_t V;
    std::memcpy(&V, Obj->payload() + 8, sizeof(V));
    return V;
  }
  static void set(Object *Obj, uint8_t Kind, uint8_t Var, int64_t Value) {
    Obj->payload()[0] = Kind;
    Obj->payload()[1] = Var;
    std::memcpy(Obj->payload() + 8, &Value, sizeof(Value));
  }
};

/// One thread's compiler instance. All intermediate structures (token
/// list, AST, code, constant pool) are GC objects; partial structures
/// are anchored on the context's shadow-stack roots.
class Compiler {
public:
  Compiler(GcHeap &Heap, MutatorContext &Ctx, Random &Rng)
      : Heap(Heap), Ctx(Ctx), Rng(Rng) {}

  /// Compiles one random function: returns the code object, and the
  /// directly evaluated expected value through \p Expected.
  /// Returns nullptr on heap exhaustion.
  Object *compileFunction(const int64_t Vars[NumVars], int64_t &Expected,
                          unsigned MaxDepth, bool &Corrupt);

  /// Executes a compiled code object on the stack machine.
  static int64_t interpret(const Object *Code, const int64_t Vars[NumVars]);

private:
  // --- Source generation ---
  void genExprSource(std::string &Out, unsigned Depth);

  // --- Lexing: source string -> GC token list ---
  Object *lex(const std::string &Source);
  Object *newToken(TokKind Kind, uint8_t Var, int64_t Value);

  // --- Parsing: token list -> GC AST ---
  Object *parseExpr();
  Object *parseTerm();
  Object *parseFactor();
  Object *newAst(AstKind Kind, uint8_t Var, int64_t Value, Object *Lhs,
                 Object *Rhs);
  uint8_t curKind() const { return Cur ? NodeBits::kind(Cur) : TokEnd; }
  void advance() { Cur = Cur ? GcHeap::readRef(Cur, 0) : nullptr; }

  // --- Constant folding (in-place, via barriered stores) ---
  Object *fold(Object *Node);

  // --- Direct evaluation (the oracle) ---
  static int64_t evalAst(const Object *Node, const int64_t Vars[NumVars]);

  // --- Code generation ---
  void emit(const Object *Node, std::vector<uint8_t> &Ops,
            std::vector<int64_t> &Consts);
  Object *makeCodeObject(const std::vector<uint8_t> &Ops,
                         const std::vector<int64_t> &Consts);

  GcHeap &Heap;
  MutatorContext &Ctx;
  Random &Rng;
  Object *Cur = nullptr;  // Parser cursor into the token list (rooted
                          // via the list head on the shadow stack).
  size_t PushedRoots = 0; // Shadow-stack bookkeeping for one function.
  bool Failed = false;    // Heap exhaustion flag.

  Object *anchored(Object *Obj) {
    if (!Obj) {
      Failed = true;
      return nullptr;
    }
    Ctx.pushRoot(Obj);
    ++PushedRoots;
    return Obj;
  }
};

void Compiler::genExprSource(std::string &Out, unsigned Depth) {
  if (Depth == 0 || Rng.nextBool(0.3)) {
    if (Rng.nextBool(0.5)) {
      Out += std::to_string(Rng.nextBelow(1000));
    } else {
      Out += 'x';
      Out += static_cast<char>('0' + Rng.nextBelow(NumVars));
    }
    return;
  }
  switch (Rng.nextBelow(4)) {
  case 0:
    Out += '(';
    genExprSource(Out, Depth - 1);
    Out += '+';
    genExprSource(Out, Depth - 1);
    Out += ')';
    break;
  case 1:
    Out += '(';
    genExprSource(Out, Depth - 1);
    Out += '-';
    genExprSource(Out, Depth - 1);
    Out += ')';
    break;
  case 2:
    Out += '(';
    genExprSource(Out, Depth - 1);
    Out += '*';
    genExprSource(Out, Depth - 1);
    Out += ')';
    break;
  default:
    Out += '-';
    Out += '(';
    genExprSource(Out, Depth - 1);
    Out += ')';
    break;
  }
}

Object *Compiler::newToken(TokKind Kind, uint8_t Var, int64_t Value) {
  Object *Tok = Heap.allocate(Ctx, 16, 1, CIdToken);
  if (!Tok)
    return nullptr;
  NodeBits::set(Tok, Kind, Var, Value);
  return Tok;
}

Object *Compiler::lex(const std::string &Source) {
  Object *Head = nullptr;
  Object *Tail = nullptr;
  auto append = [&](TokKind Kind, uint8_t Var, int64_t Value) {
    Object *Tok = newToken(Kind, Var, Value);
    if (!Tok) {
      Failed = true;
      return false;
    }
    // Anchor every token: the parser cursor walks the list across
    // allocation (GC) points, and under incremental compaction only
    // stack-anchored objects are pinned.
    anchored(Tok);
    if (Head)
      Heap.writeRef(Ctx, Tail, 0, Tok);
    else
      Head = Tok;
    Tail = Tok;
    return true;
  };

  size_t I = 0;
  while (I < Source.size() && !Failed) {
    char C = Source[I];
    if (C >= '0' && C <= '9') {
      int64_t V = 0;
      while (I < Source.size() && Source[I] >= '0' && Source[I] <= '9')
        V = V * 10 + (Source[I++] - '0');
      append(TokNum, 0, V);
      continue;
    }
    ++I;
    switch (C) {
    case 'x':
      append(TokVar, static_cast<uint8_t>(Source[I++] - '0'), 0);
      break;
    case '+':
      append(TokPlus, 0, 0);
      break;
    case '-':
      append(TokMinus, 0, 0);
      break;
    case '*':
      append(TokStar, 0, 0);
      break;
    case '(':
      append(TokLParen, 0, 0);
      break;
    case ')':
      append(TokRParen, 0, 0);
      break;
    default:
      assert(false && "unexpected character in generated source");
    }
  }
  if (!Failed)
    append(TokEnd, 0, 0);
  // cgc-mole: allow(M1): Head was pinned via anchored() inside append
  return Head;
}

Object *Compiler::newAst(AstKind Kind, uint8_t Var, int64_t Value,
                         Object *Lhs, Object *Rhs) {
  Object *Node = Heap.allocate(Ctx, 16, 2, CIdAst);
  if (!Node) {
    Failed = true;
    return nullptr;
  }
  NodeBits::set(Node, Kind, Var, Value);
  // The operands survived the allocation above because every parse
  // call returns them through anchored(): the shadow stack pins them.
  // cgc-mole: allow(M1): Lhs pinned by anchored() shadow stack
  if (Lhs)
    Heap.writeRef(Ctx, Node, 0, Lhs);
  // cgc-mole: allow(M1): Rhs pinned by anchored() shadow stack
  if (Rhs)
    Heap.writeRef(Ctx, Node, 1, Rhs);
  return anchored(Node);
}

Object *Compiler::parseFactor() {
  if (Failed)
    return nullptr;
  switch (curKind()) {
  case TokNum: {
    int64_t V = NodeBits::value(Cur);
    advance();
    return newAst(AstNum, 0, V, nullptr, nullptr);
  }
  case TokVar: {
    uint8_t Var = NodeBits::varIndex(Cur);
    advance();
    return newAst(AstVar, Var, 0, nullptr, nullptr);
  }
  case TokMinus: {
    advance();
    Object *Sub = parseFactor();
    return Sub ? newAst(AstNeg, 0, 0, Sub, nullptr) : nullptr;
  }
  case TokLParen: {
    advance();
    Object *Inner = parseExpr();
    assert(curKind() == TokRParen && "unbalanced parentheses");
    advance();
    return Inner;
  }
  default:
    assert(false && "unexpected token in factor");
    return nullptr;
  }
}

Object *Compiler::parseTerm() {
  Object *Lhs = parseFactor();
  while (Lhs && curKind() == TokStar) {
    advance();
    Object *Rhs = parseFactor();
    if (!Rhs)
      return nullptr;
    Lhs = newAst(AstMul, 0, 0, Lhs, Rhs);
  }
  return Lhs;
}

Object *Compiler::parseExpr() {
  Object *Lhs = parseTerm();
  while (Lhs && (curKind() == TokPlus || curKind() == TokMinus)) {
    AstKind Kind = curKind() == TokPlus ? AstAdd : AstSub;
    advance();
    Object *Rhs = parseTerm();
    if (!Rhs)
      return nullptr;
    Lhs = newAst(Kind, 0, 0, Lhs, Rhs);
  }
  return Lhs;
}

Object *Compiler::fold(Object *Node) {
  if (!Node || Failed)
    return Node;
  uint8_t Kind = NodeBits::kind(Node);
  if (Kind == AstNum || Kind == AstVar)
    return Node;
  Object *Lhs = fold(GcHeap::readRef(Node, 0));
  // cgc-mole: allow(M1): Node pinned by anchored() since newAst
  Object *Rhs = fold(GcHeap::readRef(Node, 1));
  // Rewire (barriered stores into a possibly-marked object). Lhs/Rhs
  // are themselves anchored() nodes, so they survived the folds above.
  // cgc-mole: allow(M1): Lhs pinned by anchored() shadow stack
  if (Lhs)
    Heap.writeRef(Ctx, Node, 0, Lhs);
  // cgc-mole: allow(M1): Rhs pinned by anchored() shadow stack
  if (Rhs)
    Heap.writeRef(Ctx, Node, 1, Rhs);
  auto isNum = [](Object *N) { return N && NodeBits::kind(N) == AstNum; };
  if (Kind == AstNeg && isNum(Lhs))
    return newAst(AstNum, 0, -NodeBits::value(Lhs), nullptr, nullptr);
  // cgc-mole: allow(M1): Lhs/Rhs pinned by anchored() shadow stack
  if (isNum(Lhs) && isNum(Rhs)) {
    int64_t A = NodeBits::value(Lhs), B = NodeBits::value(Rhs);
    int64_t V = Kind == AstAdd   ? A + B
                : Kind == AstSub ? A - B
                                 : A * B;
    return newAst(AstNum, 0, V, nullptr, nullptr);
  }
  return Node;
}

int64_t Compiler::evalAst(const Object *Node, const int64_t Vars[NumVars]) {
  switch (NodeBits::kind(Node)) {
  case AstNum:
    return NodeBits::value(Node);
  case AstVar:
    return Vars[NodeBits::varIndex(Node)];
  case AstNeg:
    return -evalAst(GcHeap::readRef(Node, 0), Vars);
  case AstAdd:
    return evalAst(GcHeap::readRef(Node, 0), Vars) +
           evalAst(GcHeap::readRef(Node, 1), Vars);
  case AstSub:
    return evalAst(GcHeap::readRef(Node, 0), Vars) -
           evalAst(GcHeap::readRef(Node, 1), Vars);
  case AstMul:
    return evalAst(GcHeap::readRef(Node, 0), Vars) *
           evalAst(GcHeap::readRef(Node, 1), Vars);
  }
  assert(false && "corrupt AST node kind");
  return 0;
}

void Compiler::emit(const Object *Node, std::vector<uint8_t> &Ops,
                    std::vector<int64_t> &Consts) {
  switch (NodeBits::kind(Node)) {
  case AstNum:
    assert(Consts.size() < 256 && "constant pool exceeds 8-bit indices");
    Ops.push_back(OpConst);
    Ops.push_back(static_cast<uint8_t>(Consts.size()));
    Consts.push_back(NodeBits::value(Node));
    break;
  case AstVar:
    Ops.push_back(OpVar);
    Ops.push_back(NodeBits::varIndex(Node));
    break;
  case AstNeg:
    emit(GcHeap::readRef(Node, 0), Ops, Consts);
    Ops.push_back(OpNeg);
    break;
  case AstAdd:
  case AstSub:
  case AstMul:
    emit(GcHeap::readRef(Node, 0), Ops, Consts);
    emit(GcHeap::readRef(Node, 1), Ops, Consts);
    Ops.push_back(static_cast<uint8_t>(NodeBits::kind(Node) == AstAdd ? OpAdd
                                       : NodeBits::kind(Node) == AstSub
                                           ? OpSub
                                           : OpMul));
    break;
  default:
    assert(false && "corrupt AST node kind");
  }
}

Object *Compiler::makeCodeObject(const std::vector<uint8_t> &Ops,
                                 const std::vector<int64_t> &Consts) {
  Object *Pool = Heap.allocate(Ctx, 0,
                               static_cast<uint16_t>(Consts.size()),
                               CIdConstPool);
  if (!Pool) {
    Failed = true;
    return nullptr;
  }
  anchored(Pool);
  for (size_t I = 0; I < Consts.size(); ++I) {
    Object *Box = Heap.allocate(Ctx, 8, 0, CIdBoxedInt);
    if (!Box) {
      Failed = true;
      return nullptr;
    }
    std::memcpy(Box->payload(), &Consts[I], 8);
    // cgc-mole: allow(M1): Pool was anchored() right after allocation
    Heap.writeRef(Ctx, Pool, static_cast<unsigned>(I), Box);
  }
  Object *Code = Heap.allocate(Ctx, Ops.size(), 1, CIdCode);
  if (!Code) {
    Failed = true;
    return nullptr;
  }
  std::memcpy(Code->payload(), Ops.data(), Ops.size());
  Heap.writeRef(Ctx, Code, 0, Pool);
  // Anchor: the caller holds the result in a local across the Unit
  // allocation (a GC point); nothing else references the code object
  // yet.
  return anchored(Code);
}

int64_t Compiler::interpret(const Object *Code,
                            const int64_t Vars[NumVars]) {
  const Object *Pool = GcHeap::readRef(Code, 0);
  const uint8_t *Ops = Code->payload();
  int64_t Stack[256];
  int Top = -1;
  for (size_t PC = 0;; ++PC) {
    switch (Ops[PC]) {
    case OpConst: {
      const Object *Box = GcHeap::readRef(Pool, Ops[++PC]);
      int64_t V;
      std::memcpy(&V, Box->payload(), 8);
      Stack[++Top] = V;
      break;
    }
    case OpVar:
      Stack[++Top] = Vars[Ops[++PC]];
      break;
    case OpAdd:
      Stack[Top - 1] = Stack[Top - 1] + Stack[Top];
      --Top;
      break;
    case OpSub:
      Stack[Top - 1] = Stack[Top - 1] - Stack[Top];
      --Top;
      break;
    case OpMul:
      Stack[Top - 1] = Stack[Top - 1] * Stack[Top];
      --Top;
      break;
    case OpNeg:
      Stack[Top] = -Stack[Top];
      break;
    case OpHalt:
      assert(Top == 0 && "stack imbalance in compiled code");
      return Stack[0];
    default:
      assert(false && "corrupt opcode");
      return 0;
    }
  }
}

Object *Compiler::compileFunction(const int64_t Vars[NumVars],
                                  int64_t &Expected, unsigned MaxDepth,
                                  bool &Corrupt) {
  PushedRoots = 0;
  Failed = false;

  std::string Source;
  genExprSource(Source, 1 + Rng.nextBelow(MaxDepth));

  Object *Tokens = lex(Source);
  Object *Ast = nullptr;
  Object *Code = nullptr;
  if (Tokens && !Failed) {
    Cur = Tokens;
    Ast = parseExpr();
    assert(Failed || curKind() == TokEnd);
  }
  if (Ast && !Failed)
    Ast = fold(Ast);
  if (Ast && !Failed) {
    Expected = evalAst(Ast, Vars);
    std::vector<uint8_t> Ops;
    std::vector<int64_t> Consts;
    emit(Ast, Ops, Consts);
    Ops.push_back(OpHalt);
    Code = makeCodeObject(Ops, Consts);
  }
  if (Code && !Failed) {
    // End-to-end check: the compiled program must agree with the oracle.
    if (interpret(Code, Vars) != Expected)
      Corrupt = true;
    // Retain the AST with the code (javac keeps symbol tables and
    // attributed trees): the long-lived set stays pointer-rich, which
    // is what makes the paper's javac marking expensive.
    Object *Unit = Heap.allocate(Ctx, 0, 2, CIdUnit);
    if (Unit) {
      // cgc-mole: allow(M1): Code pinned by anchored() in makeCodeObject
      Heap.writeRef(Ctx, Unit, 0, Code);
      // cgc-mole: allow(M1): Ast pinned by anchored() at construction
      Heap.writeRef(Ctx, Unit, 1, Ast);
      // Anchor the result before unwinding the shadow stack.
      Ctx.pushRoot(Unit);
      Ctx.popRoots(PushedRoots + 1);
      Ctx.pushRoot(Unit);
      // Caller pops this final anchor after storing it in a fixed root.
      return Unit;
    }
  }
  Ctx.popRoots(PushedRoots);
  return nullptr;
}

} // namespace

void CompilerWorkload::threadMain(unsigned Index, uint64_t DeadlineNs,
                                  WorkloadResult &Result) {
  MutatorContext &Ctx = Heap.attachThread();
  Random Rng(Config.Seed * 31 + Index + 1);
  size_t Ring = Config.RetainedUnits;
  // Fixed roots: Ring slots for retained units.
  Ctx.reserveRoots(Ring);

  Compiler TheCompiler(Heap, Ctx, Rng);
  uint64_t Units = 0;
  uint64_t StartAllocated =
      Ctx.BytesAllocated.load(std::memory_order_relaxed);
  bool Corrupt = false;
  size_t Slot = 0;

  while (nowNanos() < DeadlineNs && !Corrupt) {
    bool Exhausted = false;
    for (unsigned F = 0; F < Config.FunctionsPerUnit; ++F) {
      int64_t Vars[NumVars];
      for (auto &V : Vars)
        V = static_cast<int64_t>(Rng.nextBelow(100));
      int64_t Expected = 0;
      Object *Code = TheCompiler.compileFunction(Vars, Expected,
                                                 Config.MaxExprDepth, Corrupt);
      if (!Code) {
        Exhausted = true;
        break;
      }
      // Retain the unit's last function (stands in for symbol tables).
      Ctx.setRoot(Slot, Code);
      Ctx.popRoots(1);
      Slot = (Slot + 1) % Ring;
    }
    if (Exhausted)
      break;
    Heap.safepointPoll(Ctx);
    ++Units;
  }

  uint64_t Allocated =
      Ctx.BytesAllocated.load(std::memory_order_relaxed) - StartAllocated;
  Heap.detachThread(Ctx);

  std::atomic_ref<uint64_t>(Result.Transactions)
      .fetch_add(Units, std::memory_order_relaxed);
  std::atomic_ref<uint64_t>(Result.BytesAllocated)
      .fetch_add(Allocated, std::memory_order_relaxed);
  if (Corrupt)
    std::atomic_ref<bool>(Result.IntegrityFailure)
        .store(true, std::memory_order_relaxed);
}

WorkloadResult CompilerWorkload::run() {
  WorkloadResult Result;
  Stopwatch Timer;
  uint64_t DeadlineNs = nowNanos() + Config.DurationMs * 1000000ull;

  std::vector<std::thread> Threads;
  Threads.reserve(Config.Threads);
  for (unsigned I = 0; I < Config.Threads; ++I)
    Threads.emplace_back(
        [this, I, DeadlineNs, &Result] { threadMain(I, DeadlineNs, Result); });
  for (std::thread &T : Threads)
    T.join();

  Result.DurationMs = Timer.elapsedMillis();
  return Result;
}
