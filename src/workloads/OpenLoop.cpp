//===- OpenLoop.cpp - Open-loop request load driver ---------------------------//

#include "workloads/OpenLoop.h"

#include "runtime/GcHeap.h"
#include "support/Timing.h"

#include <cassert>
#include <chrono>
#include <cmath>
#include <thread>

using namespace cgc;

InterArrivalGen::InterArrivalGen(ArrivalKind Kind, double RatePerSec,
                                 uint64_t Seed)
    : Kind(Kind), MeanGap(RatePerSec > 0 ? 1e9 / RatePerSec : 1e9), Rng(Seed) {}

uint64_t InterArrivalGen::nextGapNanos() {
  double Gap = MeanGap;
  if (Kind == ArrivalKind::Exponential) {
    // Inverse-CDF sampling; nextDouble() is in [0,1) so the log argument
    // stays strictly positive.
    double U = Rng.nextDouble();
    Gap = -std::log(1.0 - U) * MeanGap;
  }
  double Exact = Gap + Carry;
  if (Exact < 0)
    Exact = 0;
  uint64_t Whole = static_cast<uint64_t>(Exact);
  Carry = Exact - static_cast<double>(Whole);
  return Whole;
}

void LatencyBuffer::drainInto(PauseHistogram &Latency,
                              PauseHistogram &Service) const {
  for (const RequestSample &S : Samples) {
    Latency.record(S.DoneNanos - S.SchedNanos);
    Service.record(S.DoneNanos - S.SendNanos);
  }
}

std::vector<uint64_t> OpenLoopOutcome::openLoopLatencies() const {
  std::vector<uint64_t> All;
  for (const LatencyBuffer &B : Buffers)
    for (size_t I = 0; I < B.size(); ++I)
      All.push_back(B.openLoopLatencyNanos(I));
  return All;
}

std::vector<uint64_t> OpenLoopOutcome::sendTimeLatencies() const {
  std::vector<uint64_t> All;
  for (const LatencyBuffer &B : Buffers)
    for (size_t I = 0; I < B.size(); ++I)
      All.push_back(B.sendTimeLatencyNanos(I));
  return All;
}

void OpenLoopOutcome::drainInto(MetricsRegistry &Metrics) const {
  PauseHistogram &Latency = Metrics.histogram(PauseMetric::RequestLatency);
  PauseHistogram &Service = Metrics.histogram(PauseMetric::RequestService);
  for (const LatencyBuffer &B : Buffers)
    B.drainInto(Latency, Service);
  RequestCounters &R = Metrics.requests();
  R.Scheduled.fetch_add(Counters.Scheduled, std::memory_order_relaxed);
  R.Completed.fetch_add(Counters.Completed, std::memory_order_relaxed);
  R.Failed.fetch_add(Counters.Failed, std::memory_order_relaxed);
  R.LateStarts.fetch_add(Counters.LateStarts, std::memory_order_relaxed);
  R.DroppedSamples.fetch_add(Counters.DroppedSamples,
                             std::memory_order_relaxed);
}

void OpenLoopDriver::waitUntil(uint64_t TargetNanos, MutatorContext *Ctx) {
  for (;;) {
    uint64_t Now = nowNanos();
    if (Now >= TargetNanos)
      return;
    uint64_t Remain = TargetNanos - Now;
    if (Heap && Ctx && Remain > Config.IdleSleepThresholdNanos) {
      // Long wait: sleep it off as an idle (GC-stopped) thread, leaving
      // the threshold's worth of slack to spin-absorb sleep overshoot.
      Heap->enterIdle(*Ctx);
      std::this_thread::sleep_for(
          std::chrono::nanoseconds(Remain - Config.IdleSleepThresholdNanos));
      Heap->exitIdle(*Ctx);
      continue;
    }
    if (Heap && Ctx)
      Heap->safepointPoll(*Ctx);
    else if (Remain > 200000)
      // Heap-less (generator-test) mode: don't burn a core on megasecond
      // spins, but keep the last stretch a spin for schedule fidelity.
      std::this_thread::sleep_for(std::chrono::nanoseconds(Remain - 100000));
  }
}

void OpenLoopDriver::clientMain(unsigned Index, uint64_t StartNanos,
                                uint64_t DeadlineNanos,
                                const ServiceFn &Service,
                                LatencyBuffer &Buffer,
                                RequestCounters &Counters) {
  MutatorContext *Ctx = nullptr;
  if (Heap)
    Ctx = &Heap->attachThread();

  unsigned Clients = Config.Clients > 0 ? Config.Clients : 1;
  InterArrivalGen Gen(Config.Kind,
                      Config.OfferedPerSec / static_cast<double>(Clients),
                      Config.Seed + (Index + 1) * 0x9e3779b97f4a7c15ULL);

  // The schedule advances by generator gaps only — never by service
  // completion. A request whose slot passed while we were still serving
  // its predecessor starts late and is charged from SchedNanos anyway;
  // that is the whole point (coordinated omission).
  uint64_t Sched = StartNanos + Gen.nextGapNanos();
  uint64_t Seq = 0;
  while (Sched < DeadlineNanos) {
    Counters.Scheduled.fetch_add(1, std::memory_order_relaxed);
    if (nowNanos() < Sched)
      waitUntil(Sched, Ctx);
    else
      Counters.LateStarts.fetch_add(1, std::memory_order_relaxed);

    RequestSample S;
    S.SchedNanos = Sched;
    uint64_t Send = nowNanos();
    S.SendNanos = Send > Sched ? Send : Sched;
    S.Ok = Service(Ctx, Index, Seq);
    S.DoneNanos = nowNanos();

    Counters.Completed.fetch_add(1, std::memory_order_relaxed);
    if (!S.Ok)
      Counters.Failed.fetch_add(1, std::memory_order_relaxed);
    if (!Buffer.record(S))
      Counters.DroppedSamples.fetch_add(1, std::memory_order_relaxed);

    Sched += Gen.nextGapNanos();
    ++Seq;
    if (Heap && Ctx)
      Heap->safepointPoll(*Ctx);
  }

  if (Heap)
    Heap->detachThread(*Ctx);
}

OpenLoopOutcome OpenLoopDriver::run(const ServiceFn &Service) {
  assert(!Clock::isFaked() &&
         "OpenLoopDriver spin-waits on the clock; a ManualClock would hang");

  unsigned Clients = Config.Clients > 0 ? Config.Clients : 1;
  size_t Cap = Config.MaxSamplesPerClient;
  if (Cap == 0) {
    double PerClient = Config.OfferedPerSec / static_cast<double>(Clients);
    double Expected =
        PerClient * static_cast<double>(Config.DurationMs) / 1000.0;
    double Sized = Expected * 2.0 + 1024.0;
    if (Sized < 1024.0)
      Sized = 1024.0;
    if (Sized > static_cast<double>(1u << 22))
      Sized = static_cast<double>(1u << 22);
    Cap = static_cast<size_t>(Sized);
  }

  OpenLoopOutcome Out;
  Out.OfferedPerSec = Config.OfferedPerSec;
  Out.Buffers.reserve(Clients);
  for (unsigned I = 0; I < Clients; ++I)
    Out.Buffers.emplace_back(Cap);

  RequestCounters Counters;
  uint64_t StartNanos = nowNanos();
  uint64_t DeadlineNanos = StartNanos + Config.DurationMs * 1000000ull;

  std::vector<std::thread> Threads;
  Threads.reserve(Clients);
  for (unsigned I = 0; I < Clients; ++I)
    Threads.emplace_back([this, I, StartNanos, DeadlineNanos, &Service, &Out,
                          &Counters] {
      clientMain(I, StartNanos, DeadlineNanos, Service, Out.Buffers[I],
                 Counters);
    });
  for (std::thread &T : Threads)
    T.join();

  uint64_t EndNanos = nowNanos();
  Out.Counters = Counters.snapshot();
  Out.DurationMs = nanosToMillis(EndNanos - StartNanos);
  double Seconds = static_cast<double>(EndNanos - StartNanos) / 1e9;
  Out.AchievedPerSec =
      Seconds > 0 ? static_cast<double>(Out.Counters.Completed) / Seconds : 0;
  return Out;
}
