//===- WorkloadResult.h - Common workload reporting -------------*- C++ -*-===//
///
/// \file
/// Result summary shared by all workload drivers.
///
//===----------------------------------------------------------------------===//

#ifndef CGC_WORKLOADS_WORKLOADRESULT_H
#define CGC_WORKLOADS_WORKLOADRESULT_H

#include <cstdint>

namespace cgc {

/// Aggregated outcome of a workload run.
struct WorkloadResult {
  /// Completed transactions across all threads.
  uint64_t Transactions = 0;
  /// Wall-clock duration of the run in milliseconds.
  double DurationMs = 0;
  /// Total bytes allocated by the workload threads.
  uint64_t BytesAllocated = 0;
  /// Set by verifying workloads when an integrity check failed.
  bool IntegrityFailure = false;

  /// Transactions per second (the throughput score).
  double throughput() const {
    return DurationMs <= 0 ? 0
                           : static_cast<double>(Transactions) * 1000.0 /
                                 DurationMs;
  }
};

} // namespace cgc

#endif // CGC_WORKLOADS_WORKLOADRESULT_H
