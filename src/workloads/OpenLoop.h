//===- OpenLoop.h - Open-loop request load driver ---------------*- C++ -*-===//
///
/// \file
/// An open-loop load driver for request-latency measurement under a GC
/// (DESIGN.md §15): N client threads issue requests on seeded
/// exponential or fixed inter-arrival schedules that are *decoupled
/// from service completion*. Each request's latency is measured from
/// its SCHEDULED start, not from when the client finally got around to
/// sending it — a request whose slot was delayed (by a GC pause, by a
/// slow predecessor) is charged all the queueing it suffered. This is
/// the standard defense against coordinated omission: a closed-loop
/// measurement silently stops sampling exactly when the system is at
/// its worst, and tests/openloop_gen_test.cpp locks the distinction in.
///
/// Per-request timestamps land in pre-sized per-client buffers (no
/// allocation, no lock on the request path) and are drained into the
/// observability layer's PauseHistograms (RequestLatency /
/// RequestService) after the run.
///
//===----------------------------------------------------------------------===//

#ifndef CGC_WORKLOADS_OPENLOOP_H
#define CGC_WORKLOADS_OPENLOOP_H

#include "observe/MetricsRegistry.h"
#include "support/Random.h"

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

namespace cgc {

class GcHeap;
class MutatorContext;

/// Inter-arrival schedule shapes.
enum class ArrivalKind {
  /// Constant gap 1/rate (deterministic pacing).
  Fixed,
  /// Exponential gaps with mean 1/rate (Poisson arrivals — the standard
  /// open-server model).
  Exponential
};

/// Seeded inter-arrival generator: a deterministic stream of gaps whose
/// mean is 1/rate. Same seed, same schedule — the tests rely on it.
/// Sub-nanosecond remainders are carried so the long-run rate is exact
/// for Fixed and unbiased for Exponential.
class InterArrivalGen {
public:
  InterArrivalGen(ArrivalKind Kind, double RatePerSec, uint64_t Seed);

  /// The next gap in nanoseconds.
  uint64_t nextGapNanos();

  /// Mean gap the generator targets (1e9 / rate).
  double meanGapNanos() const { return MeanGap; }

private:
  ArrivalKind Kind;
  double MeanGap;
  double Carry = 0;
  Random Rng;
};

/// One request's life: scheduled slot, actual send, completion.
/// SendNanos >= SchedNanos always (a client never sends early); the
/// open-loop latency is Done - Sched, the pure service time Done - Send.
struct RequestSample {
  uint64_t SchedNanos = 0;
  uint64_t SendNanos = 0;
  uint64_t DoneNanos = 0;
  bool Ok = true;
};

/// Pre-sized per-client sample buffer: record() never allocates past
/// construction and never blocks; overflow is counted, not resized (a
/// measurement path that allocates on the GC-free side would perturb
/// exactly what it measures).
class LatencyBuffer {
public:
  explicit LatencyBuffer(size_t Capacity) { Samples.reserve(Capacity); }

  /// Appends \p S; returns false (and counts a drop) when full.
  bool record(const RequestSample &S) {
    if (Samples.size() == Samples.capacity()) {
      ++DroppedV;
      return false;
    }
    Samples.push_back(S);
    return true;
  }

  size_t size() const { return Samples.size(); }
  uint64_t dropped() const { return DroppedV; }
  const RequestSample &operator[](size_t I) const { return Samples[I]; }

  /// Open-loop latency of sample \p I (completion minus scheduled start).
  uint64_t openLoopLatencyNanos(size_t I) const {
    return Samples[I].DoneNanos - Samples[I].SchedNanos;
  }
  /// Send-time ("closed-loop-style") latency: completion minus actual
  /// send. Kept ONLY so the coordinated-omission regression can show
  /// what this metric hides; never report it as request latency.
  uint64_t sendTimeLatencyNanos(size_t I) const {
    return Samples[I].DoneNanos - Samples[I].SendNanos;
  }

  /// Drains every sample into the two histograms (open-loop latency
  /// into \p Latency, service time into \p Service).
  void drainInto(PauseHistogram &Latency, PauseHistogram &Service) const;

private:
  std::vector<RequestSample> Samples;
  uint64_t DroppedV = 0;
};

/// Open-loop run configuration.
struct OpenLoopConfig {
  /// Client threads; the offered load is split evenly across them.
  unsigned Clients = 2;
  /// Aggregate offered load in requests per second.
  double OfferedPerSec = 5000;
  ArrivalKind Kind = ArrivalKind::Exponential;
  /// Scheduling horizon: no request is scheduled past start + duration
  /// (requests already scheduled still complete).
  uint64_t DurationMs = 1000;
  /// Per-client schedules derive from this seed.
  uint64_t Seed = 0x09e71007;
  /// Per-client sample-buffer capacity; 0 sizes it from the offered
  /// rate and duration with 2x headroom (clamped to [1024, 1<<22]).
  size_t MaxSamplesPerClient = 0;
  /// Waits longer than this sleep inside an idle region (the thread
  /// counts as stopped for GC handshakes); shorter waits spin with
  /// safepoint polls. Not meaningful when no heap is attached.
  uint64_t IdleSleepThresholdNanos = 2000000;
};

/// Everything one open-loop run produced.
struct OpenLoopOutcome {
  std::vector<LatencyBuffer> Buffers; // one per client
  RequestCounters::Snapshot Counters;
  double OfferedPerSec = 0;
  /// Completed requests over the measured wall-clock window.
  double AchievedPerSec = 0;
  double DurationMs = 0;

  /// All open-loop latencies, concatenated across clients (for
  /// reference-sort checks; unsorted).
  std::vector<uint64_t> openLoopLatencies() const;
  /// All send-time latencies (the coordinated-omission comparison).
  std::vector<uint64_t> sendTimeLatencies() const;

  /// Drains every buffer into \p Metrics: RequestLatency and
  /// RequestService histograms plus the request counters.
  void drainInto(MetricsRegistry &Metrics) const;
};

/// Runs the open-loop schedule against a service callback.
///
/// With a non-null heap, each client thread attaches a mutator context,
/// polls while spin-waiting for its next slot, brackets long waits with
/// enterIdle/exitIdle, and detaches at the end; the callback does its
/// heap work through the provided context. With a null heap (generator
/// tests) the context is null and waits are plain spins.
///
/// Requires the real clock: the driver spin-waits on nowNanos(), which
/// never advances under a test ManualClock.
class OpenLoopDriver {
public:
  /// Serves one request; returns success. \p Client is the client
  /// thread index, \p Index the per-client request sequence number.
  using ServiceFn =
      std::function<bool(MutatorContext *Ctx, unsigned Client,
                         uint64_t Index)>;

  OpenLoopDriver(GcHeap *Heap, const OpenLoopConfig &Config)
      : Heap(Heap), Config(Config) {}

  /// Spawns the clients, runs the schedule to its horizon, joins, and
  /// aggregates. One run per driver instance.
  OpenLoopOutcome run(const ServiceFn &Service);

private:
  void clientMain(unsigned Index, uint64_t StartNanos, uint64_t DeadlineNanos,
                  const ServiceFn &Service, LatencyBuffer &Buffer,
                  RequestCounters &Counters);
  void waitUntil(uint64_t TargetNanos, MutatorContext *Ctx);

  GcHeap *Heap;
  OpenLoopConfig Config;
};

} // namespace cgc

#endif // CGC_WORKLOADS_OPENLOOP_H
