//===- BinaryTrees.h - GCBench-style deep-tree workload ---------*- C++ -*-===//
///
/// \file
/// The classic binary-trees GC benchmark shape (Boehm's GCBench): build
/// complete binary trees of varying depth, keep a long-lived tree and a
/// large array alive, and churn short-lived trees. Complements the
/// warehouse workload with deep, pointer-dense structures — the
/// worst case for mark-stack depth and the shape where the work-packet
/// mechanism's bounded breadth-first behaviour matters most.
///
//===----------------------------------------------------------------------===//

#ifndef CGC_WORKLOADS_BINARYTREES_H
#define CGC_WORKLOADS_BINARYTREES_H

#include "workloads/WorkloadResult.h"

#include <cstddef>
#include <cstdint>

namespace cgc {

class GcHeap;

/// Configuration of the binary-trees workload.
struct BinaryTreesConfig {
  unsigned Threads = 2;
  uint64_t DurationMs = 2000;
  /// Depth of the long-lived tree each thread retains.
  unsigned LongLivedDepth = 14;
  /// Depth range of the short-lived churn trees.
  unsigned MinDepth = 4;
  unsigned MaxDepth = 12;
  /// Payload bytes per node beyond the checksum.
  size_t NodePayloadBytes = 8;
  uint64_t Seed = 0x7ee5;
};

/// Runs tree churn; Transactions = trees built. Sets IntegrityFailure
/// when a retained tree's structural checksum changes.
class BinaryTreesWorkload {
public:
  BinaryTreesWorkload(GcHeap &Heap, const BinaryTreesConfig &Config)
      : Heap(Heap), Config(Config) {}

  WorkloadResult run();

private:
  void threadMain(unsigned Index, uint64_t DeadlineNs,
                  WorkloadResult &Result);

  GcHeap &Heap;
  BinaryTreesConfig Config;
};

} // namespace cgc

#endif // CGC_WORKLOADS_BINARYTREES_H
