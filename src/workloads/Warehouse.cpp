//===- Warehouse.cpp - SPECjbb/pBOB-like transaction workload ------------------//

#include "workloads/Warehouse.h"

#include "runtime/GcHeap.h"
#include "support/Random.h"
#include "support/Timing.h"

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

using namespace cgc;

namespace {
/// Workload class ids (for debugging dumps).
enum WarehouseClassId : uint16_t {
  CIdOrder = 1,
  CIdLineArray = 2,
  CIdLine = 3
};
} // namespace

size_t WarehouseConfig::treeBytes() const {
  size_t Order = Object::requiredSize(OrderPayloadBytes, 1);
  size_t Array = Object::requiredSize(0, static_cast<uint16_t>(LinesPerOrder));
  size_t Line = Object::requiredSize(LinePayloadBytes, 1);
  return Order + Array + Line * LinesPerOrder;
}

void WarehouseConfig::sizeLiveSet(size_t TargetLiveBytes) {
  size_t PerThread = TargetLiveBytes / (Threads ? Threads : 1);
  size_t Trees = PerThread / treeBytes();
  LiveTreesPerThread = Trees < 4 ? 4 : Trees;
}

void WarehouseWorkload::threadMain(unsigned Index, uint64_t DeadlineNs,
                                   WorkloadResult &Result) {
  MutatorContext &Ctx = Heap.attachThread();
  Random Rng(Config.Seed * 0x9e3779b9u + Index * 7919u + 1);
  size_t Ring = Config.LiveTreesPerThread;
  Ctx.reserveRoots(Ring + 2); // Ring slots + scratch slots.

  uint64_t Ops = 0;
  uint64_t StartAllocated = Ctx.BytesAllocated.load(std::memory_order_relaxed);
  size_t Slot = 0;

  auto newLine = [&]() {
    return Heap.allocate(Ctx, Config.LinePayloadBytes, 1, CIdLine);
  };

  while (nowNanos() < DeadlineNs) {
    // Build one order tree (the transaction's fresh allocation).
    Object *Order = Heap.allocate(Ctx, Config.OrderPayloadBytes, 1, CIdOrder);
    if (!Order)
      break; // Heap exhausted: treat as end of run.
    Ctx.setRoot(Ring, Order); // Scratch root keeps the tree alive while
                              // it is under construction.
    Object *Lines = Heap.allocate(
        Ctx, 0, static_cast<uint16_t>(Config.LinesPerOrder), CIdLineArray);
    if (!Lines)
      break;
    // Root the array too: it is held in a local across the per-line
    // allocations (GC points), and only direct root referents are
    // pinned against incremental compaction.
    Ctx.setRoot(Ring + 1, Lines);
    Heap.writeRef(Ctx, Order, 0, Lines);
    for (unsigned I = 0; I < Config.LinesPerOrder; ++I) {
      Object *Line = newLine();
      if (!Line)
        break;
      Heap.writeRef(Ctx, Lines, I, Line);
    }

    // Retire the oldest tree in the ring: it becomes garbage.
    Ctx.setRoot(Slot, Order);
    Ctx.setRoot(Ring, nullptr);
    Ctx.setRoot(Ring + 1, nullptr);
    Slot = (Slot + 1) % Ring;

    // Occasionally rewire an old, retained tree — a store into an
    // object that is likely already marked, dirtying its card. The
    // fresh line is allocated FIRST: allocation is a GC point, and with
    // incremental compaction enabled a reference held in a local across
    // a GC point could be evacuated (only objects referenced directly
    // from the simulated stack are pinned).
    if (Rng.nextBool(Config.OldMutationProbability)) {
      Object *Fresh = newLine();
      Object *Victim = Fresh ? Ctx.getRoot(Rng.nextBelow(Ring)) : nullptr;
      if (Victim) {
        Object *VictimLines = GcHeap::readRef(Victim, 0);
        if (VictimLines && VictimLines->numRefs() > 0)
          Heap.writeRef(Ctx, VictimLines,
                        static_cast<unsigned>(
                            Rng.nextBelow(VictimLines->numRefs())),
                        Fresh);
      }
    }

    if (Config.ThinkMicros > 0) {
      Heap.enterIdle(Ctx);
      std::this_thread::sleep_for(std::chrono::microseconds(
          static_cast<int64_t>(Config.ThinkMicros)));
      Heap.exitIdle(Ctx);
    }

    Heap.safepointPoll(Ctx);
    ++Ops;
  }

  uint64_t Allocated =
      Ctx.BytesAllocated.load(std::memory_order_relaxed) - StartAllocated;
  Heap.detachThread(Ctx);

  static_cast<void>(Index);
  // Result fields are atomically accumulated by the caller via fetch_add
  // on plain members is not possible; use atomic refs.
  std::atomic_ref<uint64_t>(Result.Transactions)
      .fetch_add(Ops, std::memory_order_relaxed);
  std::atomic_ref<uint64_t>(Result.BytesAllocated)
      .fetch_add(Allocated, std::memory_order_relaxed);
}

WorkloadResult WarehouseWorkload::run() {
  WorkloadResult Result;
  Stopwatch Timer;
  uint64_t DeadlineNs = nowNanos() + Config.DurationMs * 1000000ull;

  std::vector<std::thread> Threads;
  Threads.reserve(Config.Threads);
  for (unsigned I = 0; I < Config.Threads; ++I)
    Threads.emplace_back(
        [this, I, DeadlineNs, &Result] { threadMain(I, DeadlineNs, Result); });
  for (std::thread &T : Threads)
    T.join();

  Result.DurationMs = Timer.elapsedMillis();
  return Result;
}
