//===- GraphChurn.cpp - Self-verifying random-graph workload -------------------//

#include "workloads/GraphChurn.h"

#include "runtime/GcHeap.h"
#include "support/Random.h"
#include "support/Timing.h"

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

using namespace cgc;

namespace {

constexpr uint16_t CIdGraphNode = 20;

/// Node payload: [0..7] own nonce, then OutDegree expected child nonces,
/// then extra payload bytes.
struct NodeView {
  static uint64_t nonce(const Object *Node) {
    uint64_t V;
    std::memcpy(&V, Node->payload(), 8);
    return V;
  }
  static void setNonce(Object *Node, uint64_t V) {
    std::memcpy(Node->payload(), &V, 8);
  }
  static uint64_t edgeNonce(const Object *Node, unsigned I) {
    uint64_t V;
    std::memcpy(&V, Node->payload() + 8 + 8 * I, 8);
    return V;
  }
  static void setEdgeNonce(Object *Node, unsigned I, uint64_t V) {
    std::memcpy(Node->payload() + 8 + 8 * I, &V, 8);
  }
};

} // namespace

void GraphChurnWorkload::threadMain(unsigned Index, uint64_t DeadlineNs,
                                    WorkloadResult &Result) {
  MutatorContext &Ctx = Heap.attachThread();
  Random Rng(Config.Seed + Index * 0x9e3779b9u + 1);
  size_t NumRoots = Config.RootsPerThread;
  Ctx.reserveRoots(NumRoots);
  size_t PayloadBytes = 8 + 8 * Config.OutDegree + Config.ExtraPayloadBytes;

  auto newNode = [&]() -> Object * {
    Object *Node = Heap.allocate(Ctx, PayloadBytes,
                                 static_cast<uint16_t>(Config.OutDegree),
                                 CIdGraphNode);
    if (!Node)
      return nullptr;
    NodeView::setNonce(Node, Rng.next() | 1);
    // The payload is not zeroed by the allocator: null edges must read
    // back a zero recorded nonce.
    for (unsigned I = 0; I < Config.OutDegree; ++I)
      NodeView::setEdgeNonce(Node, I, 0);
    return Node;
  };

  // Every edge store records the target's nonce BEFORE the barriered
  // reference store, mirroring the paper's write-barrier ordering
  // (payload first, then reference, then card).
  auto link = [&](Object *From, unsigned Slot, Object *To) {
    NodeView::setEdgeNonce(From, Slot, To ? NodeView::nonce(To) : 0);
    Heap.writeRef(Ctx, From, Slot, To);
  };

  // A bounded traversal validating every edge's recorded nonce.
  auto verifyFrom = [&](Object *Start) -> bool {
    Object *Stack[64];
    int Top = 0;
    Stack[Top++] = Start;
    int Budget = 256;
    while (Top > 0 && Budget-- > 0) {
      Object *Node = Stack[--Top];
      for (unsigned I = 0; I < Config.OutDegree; ++I) {
        Object *Child = GcHeap::readRef(Node, I);
        uint64_t Recorded = NodeView::edgeNonce(Node, I);
        if (!Child) {
          if (Recorded != 0)
            return false;
          continue;
        }
        if (NodeView::nonce(Child) != Recorded)
          return false;
        if (Top < 64)
          Stack[Top++] = Child;
      }
    }
    return true;
  };

  uint64_t Ops = 0;
  uint64_t StartAllocated =
      Ctx.BytesAllocated.load(std::memory_order_relaxed);
  bool Corrupt = false;
  bool Exhausted = false;

  // Seed the roots.
  for (size_t I = 0; I < NumRoots && !Exhausted; ++I) {
    Object *Node = newNode();
    if (!Node) {
      Exhausted = true;
      break;
    }
    Ctx.setRoot(I, Node);
  }

  while (!Exhausted && !Corrupt && nowNanos() < DeadlineNs) {
    switch (Rng.nextBelow(4)) {
    case 0: { // New node wired to existing nodes, replacing a root.
      Object *Node = newNode();
      if (!Node) {
        Exhausted = true;
        break;
      }
      // Anchor before wiring: link() reads other roots but Node itself
      // is otherwise unreachable.
      size_t Slot = Rng.nextBelow(NumRoots);
      Ctx.setRoot(Slot, Node);
      for (unsigned I = 0; I < Config.OutDegree; ++I)
        if (Rng.nextBool(0.7)) {
          Object *Target = Ctx.getRoot(Rng.nextBelow(NumRoots));
          if (Target)
            link(Node, I, Target);
        }
      break;
    }
    case 1: { // Rewire an edge of an existing (old) node.
      Object *Node = Ctx.getRoot(Rng.nextBelow(NumRoots));
      Object *Target = Ctx.getRoot(Rng.nextBelow(NumRoots));
      if (Node && Target)
        link(Node, static_cast<unsigned>(Rng.nextBelow(Config.OutDegree)),
             Target);
      break;
    }
    case 2: { // Grow a chain hanging off a root (young garbage when the
              // root is later replaced). Allocate first: allocation is a
              // GC point, and a root re-read afterwards stays valid even
              // if the collector compacted (root referents are pinned).
      Object *Fresh = newNode();
      if (!Fresh) {
        Exhausted = true;
        break;
      }
      Object *Node = Ctx.getRoot(Rng.nextBelow(NumRoots));
      if (!Node)
        break;
      // Fresh is unreachable until linked; no GC point intervenes.
      link(Node, static_cast<unsigned>(Rng.nextBelow(Config.OutDegree)),
           Fresh);
      break;
    }
    default: { // Verification walk.
      if (Rng.nextBool(Config.VerifyProbability * 4)) {
        Object *Start = Ctx.getRoot(Rng.nextBelow(NumRoots));
        if (Start && !verifyFrom(Start))
          Corrupt = true;
      }
      break;
    }
    }
    Heap.safepointPoll(Ctx);
    ++Ops;
  }

  // Final full verification of every root's subgraph.
  for (size_t I = 0; I < NumRoots && !Corrupt; ++I)
    if (Object *Root = Ctx.getRoot(I))
      if (!verifyFrom(Root))
        Corrupt = true;

  uint64_t Allocated =
      Ctx.BytesAllocated.load(std::memory_order_relaxed) - StartAllocated;
  Heap.detachThread(Ctx);

  std::atomic_ref<uint64_t>(Result.Transactions)
      .fetch_add(Ops, std::memory_order_relaxed);
  std::atomic_ref<uint64_t>(Result.BytesAllocated)
      .fetch_add(Allocated, std::memory_order_relaxed);
  if (Corrupt)
    std::atomic_ref<bool>(Result.IntegrityFailure)
        .store(true, std::memory_order_relaxed);
}

WorkloadResult GraphChurnWorkload::run() {
  WorkloadResult Result;
  Stopwatch Timer;
  uint64_t DeadlineNs = nowNanos() + Config.DurationMs * 1000000ull;

  std::vector<std::thread> Threads;
  Threads.reserve(Config.Threads);
  for (unsigned I = 0; I < Config.Threads; ++I)
    Threads.emplace_back(
        [this, I, DeadlineNs, &Result] { threadMain(I, DeadlineNs, Result); });
  for (std::thread &T : Threads)
    T.join();

  Result.DurationMs = Timer.elapsedMillis();
  return Result;
}
