//===- KvServer.h - Memcache-like GC-heap key-value store -------*- C++ -*-===//
///
/// \file
/// A memcache-like get/set/delete key-value store living entirely on
/// the GC heap — the request-serving workload behind the open-loop
/// latency benches (DESIGN.md §15). The hash table is one GC object
/// whose reference slots are the buckets; each bucket is a chain of
/// entry objects carrying the string key in their payload, a reference
/// to a variably-sized value object, and the chain link. Table churn is
/// bounded: past MaxEntries, sets evict from a round-robin bucket
/// cursor, so garbage is produced at a controllable rate while the live
/// set stays put.
///
/// Every value payload is stamped from (key hash, caller nonce), so a
/// get can verify end-to-end that the collector neither reclaimed nor
/// corrupted a live value — the same self-checking discipline as
/// GraphChurn's edge nonces.
///
/// Concurrency: bucket chains are guarded by striped spin locks. No
/// operation allocates (a GC point) while holding a stripe — sets
/// allocate their entry and value objects first, anchored on the
/// shadow stack, then link under the lock (cgc-mole rules M1/M3).
///
//===----------------------------------------------------------------------===//

#ifndef CGC_WORKLOADS_KVSERVER_H
#define CGC_WORKLOADS_KVSERVER_H

#include "support/Annotations.h"
#include "workloads/WorkloadResult.h"

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

namespace cgc {

class GcHeap;
class MutatorContext;
class Object;
class Random;
class SpinLock;

/// Configuration of one KvStore instance.
struct KvStoreConfig {
  /// Hash buckets (reference slots of the table object; <= 60000).
  unsigned Buckets = 1024;
  /// Live-entry bound: sets past this evict from a round-robin bucket
  /// cursor before inserting, keeping the live set (and thus the churn
  /// rate for a given set rate) controllable.
  size_t MaxEntries = 4096;
  /// Largest accepted key, in bytes.
  size_t MaxKeyBytes = 64;
  /// Lock stripes guarding the bucket chains (rounded up to a power of
  /// two, capped at Buckets).
  unsigned LockStripes = 64;
};

/// A concurrent hash table of string keys to variably-sized values, all
/// on the GC heap. Thread-safe: any attached mutator thread may call
/// get/set/del concurrently. The creating thread must keep the root
/// slot given to the constructor set for the store's lifetime (it pins
/// the table object).
class KvStore {
public:
  /// Result of a get: Corrupt means the entry existed but its value
  /// failed the integrity stamp — the collector broke something.
  enum class GetResult { Hit, Miss, Corrupt };

  /// Allocates the table object through \p OwnerCtx and roots it in
  /// \p OwnerRootSlot (which must stay set while the store lives).
  KvStore(GcHeap &Heap, MutatorContext &OwnerCtx, size_t OwnerRootSlot,
          const KvStoreConfig &Config);
  ~KvStore();

  KvStore(const KvStore &) = delete;
  KvStore &operator=(const KvStore &) = delete;

  /// Inserts or overwrites \p Key with a fresh value of \p ValueBytes
  /// payload stamped from \p Nonce. Returns false only when the heap is
  /// exhausted (allocation failed after the whole degradation ladder).
  bool set(MutatorContext &Ctx, const char *Key, size_t KeyLen,
           size_t ValueBytes, uint64_t Nonce);

  /// Looks up \p Key and integrity-checks the value payload.
  GetResult get(const char *Key, size_t KeyLen) const;

  /// Removes \p Key; returns whether it was present.
  bool del(MutatorContext &Ctx, const char *Key, size_t KeyLen);

  /// Current number of live entries (racy read; exact when quiescent).
  size_t liveEntries() const {
    return EntryCount.load(std::memory_order_relaxed);
  }

  /// Entries evicted by the churn bound so far.
  uint64_t evictions() const {
    return Evictions.load(std::memory_order_relaxed);
  }

  /// Full-table integrity walk: every entry hashes to its bucket, every
  /// value verifies against its stamp, and the entry count matches.
  /// Returns false and fills \p Error on the first violation. Call from
  /// an attached thread while no other thread mutates the store.
  bool verifyAll(std::string *Error = nullptr) const;

  const KvStoreConfig &config() const { return Cfg; }

  /// Smallest value payload (the integrity stamp must fit).
  static constexpr size_t MinValueBytes = 16;

private:
  unsigned bucketFor(uint64_t Hash) const;
  SpinLock &stripe(unsigned Bucket) const;
  /// Evicts tail entries from round-robin buckets until the live count
  /// is back under MaxEntries (bounded scan; never takes two stripes).
  void evictOverflow(MutatorContext &Ctx);
  bool verifyBucket(unsigned Bucket, size_t *LiveSeen,
                    std::string *Error) const;

  GcHeap &Heap;
  const KvStoreConfig Cfg;
  const unsigned NumStripes; // power of two <= Buckets
  /// The table object; pinned via the owner's root slot, so the raw
  /// pointer stays valid across compactions.
  Object *Table;
  std::unique_ptr<SpinLock[]> Stripes;
  CGC_ATOMIC_DOC("relaxed live-entry count; ops add/sub, reports read racily")
  std::atomic<size_t> EntryCount{0};
  CGC_ATOMIC_DOC("relaxed eviction counter")
  std::atomic<uint64_t> Evictions{0};
  CGC_ATOMIC_DOC("relaxed round-robin eviction cursor")
  mutable std::atomic<unsigned> EvictCursor{0};
};

/// FNV-1a hash of a key (exposed so tests can pre-place collisions).
uint64_t kvHashKey(const char *Key, size_t KeyLen);

/// Configuration of the closed-loop KvStore exercise workload (the
/// open-loop latency driver lives in workloads/OpenLoop.h and is wired
/// to a KvStore by bench/openloop_kv.cpp; this workload is the
/// correctness/soak shape used by the test matrix).
struct KvWorkloadConfig {
  unsigned Threads = 3;
  uint64_t DurationMs = 1000;
  /// Distinct keys the request mix draws from.
  size_t KeySpace = 8192;
  /// Value payload bounds (uniform per set).
  size_t MinValueBytes = 32;
  size_t MaxValueBytes = 512;
  /// Request mix: gets, deletes, remainder sets.
  double GetFraction = 0.70;
  double DeleteFraction = 0.05;
  KvStoreConfig Store;
  uint64_t Seed = 0x6eed5;
};

/// Hammers a KvStore from N threads with a get/set/delete mix, then
/// runs the full-table integrity walk. Transactions = requests served;
/// IntegrityFailure set on any Corrupt get, failed walk, or live-set
/// bound violation.
class KvWorkload {
public:
  KvWorkload(GcHeap &Heap, const KvWorkloadConfig &Config)
      : Heap(Heap), Config(Config) {}

  WorkloadResult run();

private:
  void threadMain(unsigned Index, KvStore &Store, uint64_t DeadlineNs,
                  WorkloadResult &Result);

  GcHeap &Heap;
  KvWorkloadConfig Config;
};

/// One request of the standard kv mix against \p Store: rolls the op
/// from \p Rng per \p Config's fractions and executes it. Returns false
/// on an integrity violation (Corrupt get) — allocation failure on a
/// set counts as served (the degradation ladder already reported it).
/// Shared by KvWorkload's threads and the open-loop bench driver so the
/// two measure the same per-request work.
bool kvServeOne(GcHeap &Heap, MutatorContext &Ctx, KvStore &Store,
                const KvWorkloadConfig &Config, Random &Rng);

} // namespace cgc

#endif // CGC_WORKLOADS_KVSERVER_H
