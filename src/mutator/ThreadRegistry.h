//===- ThreadRegistry.h - Safepoints and handshakes -------------*- C++ -*-===//
///
/// \file
/// Tracks attached mutator threads and implements the two cooperation
/// protocols the collector needs:
///
///  1. Stop-the-world safepoints: no safe points are required for
///     correctness of the write barrier or stack scanning (Section 2.2),
///     so mutators simply park at their next poll; threads in Idle
///     regions count as stopped immediately.
///
///  2. The ragged fence handshake of Section 5.3 step 2 ("force all
///     mutators to execute a fence, e.g., stop each one individually"):
///     a global epoch is bumped; each running thread fences and
///     acknowledges at its next poll; threads that are parked or idle
///     are quiescent (their last transition fenced) and count as
///     acknowledged.
///
//===----------------------------------------------------------------------===//

#ifndef CGC_MUTATOR_THREADREGISTRY_H
#define CGC_MUTATOR_THREADREGISTRY_H

#include "mutator/MutatorContext.h"
#include "support/Annotations.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

namespace cgc {

class BitVector8;

/// Registry of attached mutators plus the safepoint/handshake machinery.
class ThreadRegistry {
public:
  /// Adds \p Ctx to the registry. Caller must ensure no collection is in
  /// progress (the runtime holds the collection lock).
  void attach(MutatorContext *Ctx);

  /// Removes \p Ctx. Same locking requirement as attach().
  void detach(MutatorContext *Ctx);

  /// Number of attached threads.
  size_t numThreads() const;

  /// Runs \p Fn on every attached context (under the registry lock).
  void forEach(const std::function<void(MutatorContext &)> &Fn);

  /// --- Polling (mutator side) ----------------------------------------

  /// Cooperation point called by mutators on every allocation and inside
  /// workload loops. Acknowledges pending fence handshakes (flushing the
  /// allocation cache first so deferred objects become traceable) and
  /// parks while a stop-the-world is in progress. \p AllocBits is the
  /// heap's allocation bit vector.
  void poll(MutatorContext &Ctx, BitVector8 &AllocBits);

  /// Marks the start of an idle region (no heap access allowed inside).
  void enterIdle(MutatorContext &Ctx);

  /// Ends an idle region; parks first if a stop-the-world is active.
  void exitIdle(MutatorContext &Ctx, BitVector8 &AllocBits);

  /// --- Stop the world (collector side) -------------------------------

  /// Requests a stop and blocks until every attached thread except
  /// \p Self is parked or idle. \p Self may be null (collector-internal
  /// thread). Only one stop may be in progress (the runtime's collection
  /// lock serializes initiators). While waiting, \p Self keeps
  /// acknowledging fence handshakes so a concurrent card-cleaning
  /// registrar cannot deadlock against the initiator.
  void stopTheWorld(MutatorContext *Self, BitVector8 &AllocBits);

  /// Releases a stop; parked threads resume.
  void resumeTheWorld();

  /// Whether a stop is currently requested.
  bool stopRequested() const {
    return StopRequested.load(std::memory_order_acquire);
  }

  /// --- Ragged fence handshake (collector side) ------------------------

  /// Bumps the handshake epoch and blocks until every attached thread
  /// has fenced (directly, or implicitly by being parked/idle).
  /// \p Self (may be null) acknowledges inline.
  void requestFenceHandshake(MutatorContext *Self, BitVector8 &AllocBits);

private:
  void acknowledgeHandshake(MutatorContext &Ctx, BitVector8 &AllocBits);
  void park(MutatorContext &Ctx);

  mutable SpinLock ThreadsLock;
  std::vector<MutatorContext *> Threads CGC_GUARDED_BY(ThreadsLock);

  CGC_ATOMIC_DOC("initiator stores; mutators acquire-poll at safepoints")
  std::atomic<bool> StopRequested{false};
  CGC_ATOMIC_DOC("registrar bumps (release); mutators acquire-compare at poll")
  std::atomic<uint64_t> HandshakeEpoch{0};

  std::mutex ParkMutex;
  std::condition_variable ParkCV;
};

} // namespace cgc

#endif // CGC_MUTATOR_THREADREGISTRY_H
