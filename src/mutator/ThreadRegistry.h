//===- ThreadRegistry.h - Safepoints and handshakes -------------*- C++ -*-===//
///
/// \file
/// Tracks attached mutator threads and implements the two cooperation
/// protocols the collector needs:
///
///  1. Stop-the-world safepoints: no safe points are required for
///     correctness of the write barrier or stack scanning (Section 2.2),
///     so mutators simply park at their next poll; threads in Idle
///     regions count as stopped immediately.
///
///  2. The ragged fence handshake of Section 5.3 step 2 ("force all
///     mutators to execute a fence, e.g., stop each one individually"):
///     a global epoch is bumped; each running thread fences and
///     acknowledges at its next poll; threads that are parked or idle
///     are quiescent (their last transition fenced) and count as
///     acknowledged.
///
/// ## Stall defense (DESIGN.md §13)
///
/// Both protocols lean entirely on mutator cooperation, so a thread
/// stuck in a syscall or refusing to poll would stall them forever.
/// When configured with grace periods (configureStallDefense, wired from
/// GcOptions), the waits become deadline-aware:
///
///  * stopTheWorld keeps waiting (there is no safe way to proceed
///    without the world actually stopped) but, each elapsed grace
///    period, identifies the exact still-running contexts, records
///    typed StallReports and HandshakeStall events, and bumps a warning
///    counter the watchdog and flight recorder can read.
///
///  * requestFenceHandshake returns CooperationResult::Timeout past its
///    grace period instead of spinning forever; the caller must fail
///    its pass and recirculate (CardCleaner keeps its registration
///    pending; the deferred-packet redistribution simply retries
///    later). A non-Running thread counts as quiescent only when its
///    TransitionSeq seqlock proves the state transition — and its
///    fence — completed; a thread caught mid-transition is a laggard.
///
/// Every wait's entry latency is recorded into the observer's StwEntry /
/// FenceHandshake pause histograms, so stall regressions show up in the
/// bench JSON long before a timeout fires.
///
//===----------------------------------------------------------------------===//

#ifndef CGC_MUTATOR_THREADREGISTRY_H
#define CGC_MUTATOR_THREADREGISTRY_H

#include "mutator/MutatorContext.h"
#include "support/Annotations.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

namespace cgc {

class BitVector8;
class FaultInjector;
class GcObserver;

/// Why a deadline-aware cooperation wait returned.
enum class CooperationResult {
  /// Every thread cooperated (or is provably quiescent).
  Ok,
  /// The grace period elapsed with laggards outstanding; the caller
  /// must fail its pass and retry later — never silently proceed.
  Timeout
};

/// Which cooperation protocol a stall was detected in.
enum class StallProtocol : uint8_t { StopTheWorld = 0, FenceHandshake = 1 };

/// One laggard observed past a cooperation grace period. Reports carry
/// copied data, never context pointers: a report must stay valid after
/// the laggard detaches (the detach-mid-handshake case).
struct StallReport {
  /// nowNanos() at detection.
  uint64_t TimeNs = 0;
  /// debugId() of the laggard context.
  uint32_t DebugId = 0;
  /// Protocol the laggard stalled.
  StallProtocol Protocol = StallProtocol::StopTheWorld;
  /// Execution state at detection.
  ExecState State = ExecState::Running;
  /// Nanoseconds since the laggard's last cooperation point.
  uint64_t PollAgeNanos = 0;
  /// Fence handshakes the laggard is behind (0 for stop-the-world).
  uint64_t AckLagEpochs = 0;
};

/// Registry of attached mutators plus the safepoint/handshake machinery.
class ThreadRegistry {
public:
  /// Capacity of the lock-free context snapshot table the flight
  /// recorder walks (threads beyond this are tracked normally but do
  /// not appear in crash dumps).
  static constexpr unsigned MaxSnapshotSlots = 64;
  /// Capacity of the stall-report ring (drop-oldest).
  static constexpr unsigned StallRingSize = 32;

  /// Arms the deadline-aware waits. \p StwGraceNanos / \p
  /// FenceGraceNanos of 0 disable the respective deadline (legacy
  /// unbounded waits). \p FI (optional) arms the non-cooperation
  /// injection sites; \p Obs (optional) receives HandshakeStall events
  /// and the StwEntry / FenceHandshake latency histograms. Call before
  /// threads attach (the runtime configures it at heap construction).
  void configureStallDefense(uint64_t StwGraceNanos, uint64_t FenceGraceNanos,
                             FaultInjector *FI, GcObserver *Obs);

  /// Adds \p Ctx to the registry and assigns its debug id. Caller must
  /// ensure no collection is in progress (the runtime holds the
  /// collection lock).
  void attach(MutatorContext *Ctx);

  /// Removes \p Ctx. Same locking requirement as attach().
  void detach(MutatorContext *Ctx);

  /// Number of attached threads.
  size_t numThreads() const;

  /// Runs \p Fn on every attached context (under the registry lock).
  void forEach(const std::function<void(MutatorContext &)> &Fn);

  /// --- Polling (mutator side) ----------------------------------------

  /// Cooperation point called by mutators on every allocation and inside
  /// workload loops. Acknowledges pending fence handshakes (flushing the
  /// allocation cache first so deferred objects become traceable) and
  /// parks while a stop-the-world is in progress. \p AllocBits is the
  /// heap's allocation bit vector.
  CGC_SAFEPOINT void poll(MutatorContext &Ctx, BitVector8 &AllocBits);

  /// Marks the start of an idle region (no heap access allowed inside).
  CGC_SAFEPOINT void enterIdle(MutatorContext &Ctx);

  /// Ends an idle region; parks first if a stop-the-world is active.
  CGC_SAFEPOINT void exitIdle(MutatorContext &Ctx, BitVector8 &AllocBits);

  /// --- Stop the world (collector side) -------------------------------

  /// Requests a stop and blocks until every attached thread except
  /// \p Self is parked or idle. \p Self may be null (collector-internal
  /// thread). Only one stop may be in progress (the runtime's collection
  /// lock serializes initiators). While waiting, \p Self keeps
  /// acknowledging fence handshakes so a concurrent card-cleaning
  /// registrar cannot deadlock against the initiator. Deadline-aware:
  /// past each elapsed StwGrace period the still-running laggards are
  /// reported (see the file header) while the wait continues.
  CGC_SAFEPOINT void stopTheWorld(MutatorContext *Self, BitVector8 &AllocBits);

  /// Releases a stop; parked threads resume.
  CGC_SAFEPOINT void resumeTheWorld();

  /// Whether a stop is currently requested.
  bool stopRequested() const {
    return StopRequested.load(std::memory_order_acquire);
  }

  /// --- Ragged fence handshake (collector side) ------------------------

  /// Bumps the handshake epoch and blocks until every attached thread
  /// has fenced (directly, or provably-quiescent by a completed
  /// transition out of Running). \p Self (may be null) acknowledges
  /// inline. Returns Timeout once the fence grace period elapses with
  /// unacknowledged threads outstanding (never with the grace disabled);
  /// the caller must treat the fence as NOT executed and recirculate.
  CGC_SAFEPOINT CooperationResult
  requestFenceHandshake(MutatorContext *Self, BitVector8 &AllocBits);

  /// --- Stall-defense introspection ------------------------------------

  /// Stop-the-world grace periods that elapsed with laggards running.
  uint64_t stwStallWarnings() const {
    return StwStallWarningsV.load(std::memory_order_relaxed);
  }
  /// Fence handshakes that returned Timeout.
  uint64_t fenceTimeouts() const {
    return FenceTimeoutsV.load(std::memory_order_relaxed);
  }
  /// Total stall reports recorded (ring may have dropped old ones).
  uint64_t stallReportCount() const {
    return StallCursor.load(std::memory_order_acquire);
  }
  /// The most recent stall reports, newest first (racy snapshot; exact
  /// when no wait is currently reporting).
  std::vector<StallReport> recentStalls() const;

  /// --- Flight-recorder access (async-signal-safe) ---------------------

  /// Runs \p Fn over the lock-free context snapshot table. Safe from a
  /// signal handler: no locks, pointer slots are published with release
  /// stores and cleared before a context is destroyed (detach holds the
  /// collection lock, so a crash dump racing detach reads either the
  /// live context or null). Fn must itself be signal-safe.
  template <typename FnT> void forEachSnapshotSlot(FnT Fn) const {
    for (unsigned I = 0; I < MaxSnapshotSlots; ++I)
      if (MutatorContext *Ctx =
              SnapshotSlots[I].load(std::memory_order_acquire))
        Fn(*Ctx);
  }

  /// Reads stall-report ring entry \p I (0 = oldest slot position) into
  /// \p Out without locks; may be torn while a reporter races (crash
  /// dumps accept that). Returns false for a never-written slot.
  bool readStallSlot(unsigned I, StallReport &Out) const;

  /// Current handshake epoch (for reports).
  uint64_t handshakeEpoch() const {
    return HandshakeEpoch.load(std::memory_order_acquire);
  }

private:
  CGC_SAFEPOINT void acknowledgeHandshake(MutatorContext &Ctx,
                                          BitVector8 &AllocBits);
  CGC_SAFEPOINT void park(MutatorContext &Ctx);
  /// Whether \p Ctx is provably quiescent: non-Running with an even,
  /// unchanged TransitionSeq around the state read.
  static bool stableNonRunning(MutatorContext &Ctx);
  /// Stamps \p Ctx's cooperation timestamp.
  static void stampPoll(MutatorContext &Ctx);
  /// Records one laggard into the stall ring + observer event stream.
  void reportStall(MutatorContext &Ctx, StallProtocol Protocol,
                   uint64_t NowNs, uint64_t Epoch);

  mutable SpinLock ThreadsLock;
  std::vector<MutatorContext *> Threads CGC_GUARDED_BY(ThreadsLock);

  CGC_ATOMIC_DOC("initiator stores; mutators acquire-poll at safepoints")
  std::atomic<bool> StopRequested{false};
  CGC_ATOMIC_DOC("registrar bumps (release); mutators acquire-compare at poll")
  std::atomic<uint64_t> HandshakeEpoch{0};

  std::mutex ParkMutex;
  std::condition_variable ParkCV;

  /// --- Stall defense --------------------------------------------------

  // Configured once at heap construction, before any thread attaches
  // (plain fields; read-only afterwards).
  uint64_t StwGraceNanos = 0;
  uint64_t FenceGraceNanos = 0;
  FaultInjector *FI = nullptr;
  GcObserver *Obs = nullptr;

  CGC_ATOMIC_DOC("attach bumps relaxed; ids are never reused")
  std::atomic<uint32_t> NextDebugId{1};
  CGC_ATOMIC_DOC("initiators add relaxed; tests/watchdog read racily")
  std::atomic<uint64_t> StwStallWarningsV{0};
  CGC_ATOMIC_DOC("initiators add relaxed; watchdog strike check reads racily")
  std::atomic<uint64_t> FenceTimeoutsV{0};

  // Stall-report ring: plain atomic words (4 per report) so the crash
  // handler can read it without locks; reporters claim slots with a
  // fetch_add cursor. Torn reads are possible and accepted (post-mortem
  // data); quiescent readers (tests) see exact values.
  CGC_ATOMIC_DOC("reporter claims slot via cursor; relaxed word stores")
  std::atomic<uint64_t> StallWords[StallRingSize * 4] = {};
  CGC_ATOMIC_DOC("reporters fetch_add release; readers acquire")
  std::atomic<uint64_t> StallCursor{0};

  // Lock-free context snapshot table for the flight recorder: attach
  // publishes a slot (release), detach clears it. The crash handler
  // never takes ThreadsLock.
  CGC_ATOMIC_DOC("attach CAS-publishes, detach clears; handler acquire-scans")
  std::atomic<MutatorContext *> SnapshotSlots[MaxSnapshotSlots] = {};
};

} // namespace cgc

#endif // CGC_MUTATOR_THREADREGISTRY_H
