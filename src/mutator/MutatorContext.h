//===- MutatorContext.h - Per-mutator-thread state --------------*- C++ -*-===//
///
/// \file
/// Per-thread mutator state: the allocation cache, the simulated thread
/// stack (a root array scanned conservatively), the work-packet trace
/// context used when the thread performs an increment of collection
/// work, safepoint/handshake state, and per-cycle pacing counters.
///
//===----------------------------------------------------------------------===//

#ifndef CGC_MUTATOR_MUTATORCONTEXT_H
#define CGC_MUTATOR_MUTATORCONTEXT_H

#include "heap/AllocationCache.h"
#include "support/Annotations.h"
#include "support/SpinLock.h"
#include "workpackets/TraceContext.h"

#include <atomic>
#include <cstdint>
#include <vector>

namespace cgc {

class Object;

/// Execution state visible to the collector.
enum class ExecState : uint8_t {
  /// Executing mutator code; must poll to cooperate with the collector.
  Running,
  /// Parked at a safepoint, waiting for the world to resume.
  AtSafepoint,
  /// In an idle region (think time, blocking I/O simulation): performs
  /// no heap accesses and counts as stopped for safepoints/handshakes.
  Idle
};

/// All per-thread state the collector interacts with.
class MutatorContext {
public:
  explicit MutatorContext(PacketPool &Pool) : Trace(Pool) {}

  MutatorContext(const MutatorContext &) = delete;
  MutatorContext &operator=(const MutatorContext &) = delete;

  /// --- Simulated thread stack (conservative roots) -----------------

  /// Sizes the root array to \p N slots (all null).
  void reserveRoots(size_t N) {
    SpinLockGuard Guard(RootsLock);
    Roots.assign(N, 0);
  }

  /// Stores \p Value in root slot \p I. No write barrier: stacks are
  /// rescanned during the final stop-the-world phase, exactly as in the
  /// paper. Rooting primitives never safepoint — cgc-mole rule M1
  /// depends on that (an anchoring call must not itself be a hazard).
  CGC_NO_SAFEPOINT void setRoot(size_t I, Object *Value) {
    SpinLockGuard Guard(RootsLock);
    Roots[I] = reinterpret_cast<uintptr_t>(Value);
  }

  /// Reads root slot \p I.
  Object *getRoot(size_t I) const {
    SpinLockGuard Guard(RootsLock);
    return reinterpret_cast<Object *>(Roots[I]);
  }

  /// Number of root slots.
  size_t numRoots() const {
    SpinLockGuard Guard(RootsLock);
    return Roots.size();
  }

  /// Writes a raw (possibly non-reference) word into a root slot; used by
  /// tests to exercise the conservative filter.
  void setRootWord(size_t I, uintptr_t Word) {
    SpinLockGuard Guard(RootsLock);
    Roots[I] = Word;
  }

  /// Shadow-stack style roots appended after the fixed slots: anchors
  /// objects under construction (e.g. a parser's partial ASTs) exactly
  /// like values on a real thread stack would.
  CGC_NO_SAFEPOINT void pushRoot(Object *Value) {
    SpinLockGuard Guard(RootsLock);
    Roots.push_back(reinterpret_cast<uintptr_t>(Value));
  }

  /// Pops the \p N most recently pushed shadow-stack roots.
  CGC_NO_SAFEPOINT void popRoots(size_t N) {
    SpinLockGuard Guard(RootsLock);
    assert(Roots.size() >= N && "popping more roots than pushed");
    Roots.resize(Roots.size() - N);
  }

  /// Runs \p Fn over a snapshot of the root words while holding the root
  /// lock (so a concurrent scanner sees a consistent vector).
  template <typename FnT> void withRoots(FnT Fn) const {
    SpinLockGuard Guard(RootsLock);
    Fn(Roots);
  }

  /// --- Collector-visible state --------------------------------------

  AllocationCache &cache() { return Cache; }
  TraceContext &trace() { return Trace; }

  /// Free-list shard this thread refills from first (assigned
  /// round-robin at attach); other shards are stolen from only when it
  /// is exhausted, so refills of different threads rarely share a lock.
  unsigned preferredShard() const { return PreferredShardV; }
  void setPreferredShard(unsigned Shard) { PreferredShardV = Shard; }

  ExecState state() const {
    return static_cast<ExecState>(State.load(std::memory_order_acquire));
  }
  void setState(ExecState S) {
    State.store(static_cast<uint8_t>(S), std::memory_order_release);
  }

  /// Small registry-assigned id used in stall reports and the flight
  /// recorder (stable for the context's lifetime; contexts are reported
  /// by id, never by pointer, so a report outlives a detached thread).
  uint32_t debugId() const { return DebugIdV; }
  void setDebugId(uint32_t Id) { DebugIdV = Id; }

  /// Handshake epoch this thread has acknowledged.
  CGC_ATOMIC_DOC("owner stores release at poll; registrar acquire-scans")
  std::atomic<uint64_t> HandshakeAck{0};

  /// Collection cycle number whose stack scan this thread has completed
  /// (0 = never). Claimed with compare-exchange by whichever participant
  /// performs the scan.
  CGC_ATOMIC_DOC("claimed by acq_rel CAS from owner or background scanner")
  std::atomic<uint64_t> StackScanCycle{0};

  /// Bytes of small-object allocation performed (monotonic).
  CGC_ATOMIC_DOC("owner adds relaxed; reporting reads racily")
  std::atomic<uint64_t> BytesAllocated{0};

  /// Number of transactions/operations completed; maintained by
  /// workloads for throughput reporting.
  CGC_ATOMIC_DOC("owner adds relaxed; reporting reads racily")
  std::atomic<uint64_t> OpsCompleted{0};

  /// --- Cooperation-stall defense state -------------------------------

  /// nowNanos() of this thread's most recent cooperation point (poll
  /// acknowledgement, park, idle transition; polls stamp on a stride to
  /// keep the allocation fast path clock-free). The timed handshake
  /// initiators read it to compute a laggard's poll age.
  CGC_ATOMIC_DOC("owner stores relaxed; stall reporters read racily")
  std::atomic<uint64_t> LastPollNanos{0};

  /// Execution-state transition seqlock: odd while the owner is inside
  /// an enterIdle/exitIdle/park state transition, even when stable. A
  /// handshake initiator counts a non-Running thread as quiescent only
  /// when it reads an even, unchanged sequence around the state read —
  /// the state transition (and its fence) provably completed. A thread
  /// stalled mid-transition is treated as a laggard, never silently
  /// quiescent.
  CGC_ATOMIC_DOC("owner acq_rel increments; initiators acquire-read pairs")
  std::atomic<uint64_t> TransitionSeq{0};

  /// Owner-only poll bookkeeping (no atomicity needed): stride counter
  /// for LastPollNanos stamping, and the remaining length of an active
  /// fault-injected non-cooperation burst (FaultSite::MutatorPollSkip).
  uint32_t PollStride = 0;
  uint32_t SkipPollsRemaining = 0;

private:
  AllocationCache Cache;
  TraceContext Trace;
  unsigned PreferredShardV = 0;
  uint32_t DebugIdV = 0;
  mutable SpinLock RootsLock;
  std::vector<uintptr_t> Roots CGC_GUARDED_BY(RootsLock);
  CGC_ATOMIC_DOC("owner stores release; collector acquire-reads at stops")
  std::atomic<uint8_t> State{static_cast<uint8_t>(ExecState::Running)};
};

} // namespace cgc

#endif // CGC_MUTATOR_MUTATORCONTEXT_H
