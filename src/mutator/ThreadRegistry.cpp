//===- ThreadRegistry.cpp - Safepoints and handshakes ------------------------//

#include "mutator/ThreadRegistry.h"

#include "heap/BitVector8.h"
#include "support/Fences.h"

#include <algorithm>
#include <cassert>
#include <thread>

using namespace cgc;

void ThreadRegistry::attach(MutatorContext *Ctx) {
  SpinLockGuard Guard(ThreadsLock);
  assert(std::find(Threads.begin(), Threads.end(), Ctx) == Threads.end() &&
         "context attached twice");
  // A freshly attached thread has acknowledged everything so far.
  Ctx->HandshakeAck.store(HandshakeEpoch.load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
  Threads.push_back(Ctx);
}

void ThreadRegistry::detach(MutatorContext *Ctx) {
  SpinLockGuard Guard(ThreadsLock);
  auto It = std::find(Threads.begin(), Threads.end(), Ctx);
  assert(It != Threads.end() && "detaching unknown context");
  Threads.erase(It);
}

size_t ThreadRegistry::numThreads() const {
  SpinLockGuard Guard(ThreadsLock);
  return Threads.size();
}

void ThreadRegistry::forEach(const std::function<void(MutatorContext &)> &Fn) {
  SpinLockGuard Guard(ThreadsLock);
  for (MutatorContext *Ctx : Threads)
    Fn(*Ctx);
}

void ThreadRegistry::poll(MutatorContext &Ctx, BitVector8 &AllocBits) {
  if (Ctx.HandshakeAck.load(std::memory_order_relaxed) !=
      HandshakeEpoch.load(std::memory_order_acquire))
    acknowledgeHandshake(Ctx, AllocBits);
  if (StopRequested.load(std::memory_order_acquire)) {
    // Publish allocation bits before parking so the collector can treat
    // every allocated object as visible while the world is stopped.
    Ctx.cache().flushAllocBits(AllocBits);
    park(Ctx);
  }
}

void ThreadRegistry::acknowledgeHandshake(MutatorContext &Ctx,
                                          BitVector8 &AllocBits) {
  uint64_t Epoch = HandshakeEpoch.load(std::memory_order_acquire);
  Ctx.cache().flushAllocBits(AllocBits);
  fence(FenceSite::CardTableHandshake);
  Ctx.HandshakeAck.store(Epoch, std::memory_order_release);
}

void ThreadRegistry::park(MutatorContext &Ctx) {
  fence(FenceSite::StopTheWorld);
  std::unique_lock<std::mutex> Lock(ParkMutex);
  Ctx.setState(ExecState::AtSafepoint);
  ParkCV.wait(Lock, [this] {
    return !StopRequested.load(std::memory_order_acquire);
  });
  Ctx.setState(ExecState::Running);
}

void ThreadRegistry::enterIdle(MutatorContext &Ctx) {
  assert(Ctx.state() == ExecState::Running && "nested idle region");
  fence(FenceSite::StopTheWorld);
  Ctx.setState(ExecState::Idle);
}

void ThreadRegistry::exitIdle(MutatorContext &Ctx, BitVector8 &AllocBits) {
  assert(Ctx.state() == ExecState::Idle && "not in an idle region");
  // Do not come back to life in the middle of a stop-the-world.
  if (StopRequested.load(std::memory_order_acquire)) {
    std::unique_lock<std::mutex> Lock(ParkMutex);
    ParkCV.wait(Lock, [this] {
      return !StopRequested.load(std::memory_order_acquire);
    });
  }
  Ctx.setState(ExecState::Running);
  // A stop that began in the race window above is handled by this poll
  // (and by every later poll the running code performs).
  poll(Ctx, AllocBits);
}

void ThreadRegistry::stopTheWorld(MutatorContext *Self,
                                  BitVector8 &AllocBits) {
  assert(!StopRequested.load(std::memory_order_relaxed) &&
         "stop already in progress");
  StopRequested.store(true, std::memory_order_seq_cst);
  fence(FenceSite::StopTheWorld);
  for (;;) {
    // Keep cooperating with a concurrent fence handshake: its registrar
    // may be one of the threads we are waiting to see parked.
    if (Self && Self->HandshakeAck.load(std::memory_order_relaxed) !=
                    HandshakeEpoch.load(std::memory_order_acquire))
      acknowledgeHandshake(*Self, AllocBits);
    bool AllStopped = true;
    {
      SpinLockGuard Guard(ThreadsLock);
      for (MutatorContext *Ctx : Threads) {
        if (Ctx == Self)
          continue;
        if (Ctx->state() == ExecState::Running) {
          AllStopped = false;
          break;
        }
      }
    }
    if (AllStopped)
      return;
    std::this_thread::yield();
  }
}

void ThreadRegistry::resumeTheWorld() {
  assert(StopRequested.load(std::memory_order_relaxed) &&
         "no stop in progress");
  {
    std::lock_guard<std::mutex> Lock(ParkMutex);
    StopRequested.store(false, std::memory_order_seq_cst);
  }
  ParkCV.notify_all();
}

void ThreadRegistry::requestFenceHandshake(MutatorContext *Self,
                                           BitVector8 &AllocBits) {
  uint64_t Epoch = HandshakeEpoch.fetch_add(1, std::memory_order_seq_cst) + 1;
  fence(FenceSite::CardTableHandshake);
  if (Self)
    acknowledgeHandshake(*Self, AllocBits);
  for (;;) {
    bool Done = true;
    {
      SpinLockGuard Guard(ThreadsLock);
      for (MutatorContext *Ctx : Threads) {
        if (Ctx->HandshakeAck.load(std::memory_order_acquire) >= Epoch)
          continue;
        // Parked and idle threads performed a fence on their way out of
        // Running and do no stores until they return; they count as
        // acknowledged.
        if (Ctx->state() != ExecState::Running)
          continue;
        Done = false;
        break;
      }
    }
    if (Done)
      return;
    std::this_thread::yield();
  }
}
