//===- ThreadRegistry.cpp - Safepoints and handshakes ------------------------//

#include "mutator/ThreadRegistry.h"

#include "heap/BitVector8.h"
#include "observe/Observe.h"
#include "support/FaultInjector.h"
#include "support/Fences.h"
#include "support/Timing.h"

#include <algorithm>
#include <cassert>
#include <thread>

using namespace cgc;

/// Execution-state transitions are bracketed by the context's
/// TransitionSeq seqlock: odd while mid-transition, even when stable.
/// The acq_rel entry increment orders it before the state store; the
/// release exit increment publishes the completed transition.
static void beginTransition(MutatorContext &Ctx) {
  Ctx.TransitionSeq.fetch_add(1, std::memory_order_acq_rel);
}
static void endTransition(MutatorContext &Ctx) {
  Ctx.TransitionSeq.fetch_add(1, std::memory_order_release);
}

void ThreadRegistry::stampPoll(MutatorContext &Ctx) {
  Ctx.LastPollNanos.store(nowNanos(), std::memory_order_relaxed);
}

bool ThreadRegistry::stableNonRunning(MutatorContext &Ctx) {
  uint64_t Seq = Ctx.TransitionSeq.load(std::memory_order_acquire);
  if (Seq & 1)
    return false; // mid-transition: the fence ordering is not proven yet
  if (Ctx.state() == ExecState::Running)
    return false;
  // Unchanged even sequence around the state read: the transition out
  // of Running — including its fence — provably completed.
  return Ctx.TransitionSeq.load(std::memory_order_acquire) == Seq;
}

void ThreadRegistry::configureStallDefense(uint64_t StwGrace,
                                           uint64_t FenceGrace,
                                           FaultInjector *Injector,
                                           GcObserver *Observer) {
  assert(numThreads() == 0 && "configure before threads attach");
  StwGraceNanos = StwGrace;
  FenceGraceNanos = FenceGrace;
  FI = Injector;
  Obs = Observer;
}

void ThreadRegistry::attach(MutatorContext *Ctx) {
  SpinLockGuard Guard(ThreadsLock);
  assert(std::find(Threads.begin(), Threads.end(), Ctx) == Threads.end() &&
         "context attached twice");
  Ctx->setDebugId(NextDebugId.fetch_add(1, std::memory_order_relaxed));
  // A freshly attached thread has acknowledged everything so far.
  Ctx->HandshakeAck.store(HandshakeEpoch.load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
  stampPoll(*Ctx);
  Threads.push_back(Ctx);
  // Publish a flight-recorder snapshot slot (best effort: a full table
  // means this context is simply absent from crash dumps). This is a
  // slot scan, not a same-location retry loop: each CAS targets a
  // different slot exactly once. cgc-lint: allow(R3)
  for (unsigned I = 0; I < MaxSnapshotSlots; ++I) {
    MutatorContext *Expected = nullptr; // cgc-lint: allow(R3)
    if (SnapshotSlots[I].compare_exchange_strong(Expected, Ctx,
                                                 std::memory_order_release,
                                                 std::memory_order_relaxed))
      break;
  }
}

void ThreadRegistry::detach(MutatorContext *Ctx) {
  SpinLockGuard Guard(ThreadsLock);
  auto It = std::find(Threads.begin(), Threads.end(), Ctx);
  assert(It != Threads.end() && "detaching unknown context");
  Threads.erase(It);
  // Slot scan, one CAS per distinct slot (see attach). cgc-lint: allow(R3)
  for (unsigned I = 0; I < MaxSnapshotSlots; ++I) {
    MutatorContext *Expected = Ctx; // cgc-lint: allow(R3)
    if (SnapshotSlots[I].compare_exchange_strong(Expected, nullptr,
                                                 std::memory_order_acq_rel,
                                                 std::memory_order_relaxed))
      break;
  }
}

size_t ThreadRegistry::numThreads() const {
  SpinLockGuard Guard(ThreadsLock);
  return Threads.size();
}

void ThreadRegistry::forEach(const std::function<void(MutatorContext &)> &Fn) {
  SpinLockGuard Guard(ThreadsLock);
  for (MutatorContext *Ctx : Threads)
    Fn(*Ctx);
}

void ThreadRegistry::poll(MutatorContext &Ctx, BitVector8 &AllocBits) {
  // Chaos: a non-cooperative mutator skips this cooperation point
  // entirely — no acknowledgement, no park, no timestamp. A hit with a
  // configured burst keeps THIS thread non-cooperative for its next
  // BurstLength visits (a thread wedged in a syscall does not draw a
  // fresh decision every poll).
  if (__builtin_expect(Ctx.SkipPollsRemaining > 0, 0)) {
    --Ctx.SkipPollsRemaining;
    return;
  }
  if (FI && FI->shouldFail(FaultSite::MutatorPollSkip)) {
    Ctx.SkipPollsRemaining = FI->burstLength(FaultSite::MutatorPollSkip);
    return;
  }
  // Strided timestamp: polls run on the allocation fast path, so the
  // clock is read on every 32nd visit only (laggard detection operates
  // on grace periods many orders of magnitude longer). Slow cooperation
  // points (acks, parks, idle transitions) always stamp.
  if ((++Ctx.PollStride & 31u) == 0)
    stampPoll(Ctx);
  if (Ctx.HandshakeAck.load(std::memory_order_relaxed) !=
      HandshakeEpoch.load(std::memory_order_acquire))
    acknowledgeHandshake(Ctx, AllocBits);
  if (StopRequested.load(std::memory_order_acquire)) {
    // Publish allocation bits before parking so the collector can treat
    // every allocated object as visible while the world is stopped.
    Ctx.cache().flushAllocBits(AllocBits);
    park(Ctx);
  }
}

void ThreadRegistry::acknowledgeHandshake(MutatorContext &Ctx,
                                          BitVector8 &AllocBits) {
  uint64_t Epoch = HandshakeEpoch.load(std::memory_order_acquire);
  Ctx.cache().flushAllocBits(AllocBits);
  fence(FenceSite::CardTableHandshake);
  Ctx.HandshakeAck.store(Epoch, std::memory_order_release);
  stampPoll(Ctx);
}

void ThreadRegistry::park(MutatorContext &Ctx) {
  fence(FenceSite::StopTheWorld);
  stampPoll(Ctx);
  std::unique_lock<std::mutex> Lock(ParkMutex);
  beginTransition(Ctx);
  Ctx.setState(ExecState::AtSafepoint);
  endTransition(Ctx);
  for (;;) {
    ParkCV.wait(Lock, [this] {
      return !StopRequested.load(std::memory_order_acquire);
    });
    beginTransition(Ctx);
    Ctx.setState(ExecState::Running);
    endTransition(Ctx);
    // Same Dekker handoff as exitIdle(): a stop that began between the
    // resume and this unpark either observes Running or is observed by
    // the load below — otherwise this thread could leave the safepoint
    // while a new stop still counts it parked.
    fence(FenceSite::StopTheWorld);
    if (!StopRequested.load(std::memory_order_seq_cst))
      break;
    beginTransition(Ctx);
    Ctx.setState(ExecState::AtSafepoint);
    endTransition(Ctx);
  }
  stampPoll(Ctx);
}

void ThreadRegistry::enterIdle(MutatorContext &Ctx) {
  assert(Ctx.state() == ExecState::Running && "nested idle region");
  stampPoll(Ctx);
  beginTransition(Ctx);
  // Chaos: stretch the mid-transition window so handshake initiators
  // observe a thread caught between execution states.
  if (FI)
    FI->maybePerturb(FaultSite::IdleTransitionStall);
  fence(FenceSite::StopTheWorld);
  Ctx.setState(ExecState::Idle);
  endTransition(Ctx);
}

void ThreadRegistry::exitIdle(MutatorContext &Ctx, BitVector8 &AllocBits) {
  assert(Ctx.state() == ExecState::Idle && "not in an idle region");
  // Do not come back to life in the middle of a stop-the-world. The
  // wait keeps the transition seqlock even (state is still Idle, which
  // is provably quiescent) — a blocked exitIdle must not read as a
  // stalled transition.
  for (;;) {
    if (StopRequested.load(std::memory_order_acquire)) {
      std::unique_lock<std::mutex> Lock(ParkMutex);
      ParkCV.wait(Lock, [this] {
        return !StopRequested.load(std::memory_order_acquire);
      });
    }
    beginTransition(Ctx);
    if (FI)
      FI->maybePerturb(FaultSite::IdleTransitionStall);
    Ctx.setState(ExecState::Running);
    endTransition(Ctx);
    // Dekker handoff with stopTheWorld(): each side orders its store
    // before a sequentially consistent fence before its load, so either
    // the initiator observes the Running state (and waits for this
    // thread to park) or the load below observes the stop. Without it,
    // a stop that began after the wait above could complete with this
    // thread still counted quiescent-as-Idle — and the collector would
    // sweep this context's allocation cache concurrently with the
    // flush in this thread's first poll.
    fence(FenceSite::StopTheWorld);
    if (!StopRequested.load(std::memory_order_seq_cst))
      break;
    // A stop slipped in: revert to the provably quiescent state without
    // touching the heap (in particular, no allocation-cache flush — the
    // initiator may already own this context's cache) and wait for the
    // resume.
    beginTransition(Ctx);
    Ctx.setState(ExecState::Idle);
    endTransition(Ctx);
  }
  stampPoll(Ctx);
  // A stop that begins from here on observes Running (the fence above
  // proves it) and is handled by this poll or any later one.
  poll(Ctx, AllocBits);
}

void ThreadRegistry::reportStall(MutatorContext &Ctx, StallProtocol Protocol,
                                 uint64_t NowNs, uint64_t Epoch) {
  uint64_t Last = Ctx.LastPollNanos.load(std::memory_order_relaxed);
  uint64_t PollAge = NowNs > Last ? NowNs - Last : 0;
  uint64_t Ack = Ctx.HandshakeAck.load(std::memory_order_acquire);
  uint64_t AckLag =
      Protocol == StallProtocol::FenceHandshake && Epoch > Ack ? Epoch - Ack
                                                               : 0;
  uint64_t Meta = uint64_t(Ctx.debugId()) |
                  (uint64_t(static_cast<uint8_t>(Protocol)) << 32) |
                  (uint64_t(static_cast<uint8_t>(Ctx.state())) << 40);
  uint64_t Slot =
      StallCursor.fetch_add(1, std::memory_order_acq_rel) % StallRingSize;
  std::atomic<uint64_t> *W = &StallWords[Slot * 4];
  W[0].store(NowNs, std::memory_order_relaxed);
  W[1].store(Meta, std::memory_order_relaxed);
  W[2].store(PollAge, std::memory_order_relaxed);
  W[3].store(AckLag, std::memory_order_release);
  CGC_OBS_EVENT_P(Obs, HandshakeStall, Ctx.debugId(), PollAge);
}

static StallReport decodeStall(uint64_t T, uint64_t Meta, uint64_t PollAge,
                               uint64_t AckLag) {
  StallReport R;
  R.TimeNs = T;
  R.DebugId = static_cast<uint32_t>(Meta & 0xffffffffu);
  R.Protocol = static_cast<StallProtocol>((Meta >> 32) & 0xff);
  R.State = static_cast<ExecState>((Meta >> 40) & 0xff);
  R.PollAgeNanos = PollAge;
  R.AckLagEpochs = AckLag;
  return R;
}

std::vector<StallReport> ThreadRegistry::recentStalls() const {
  uint64_t End = StallCursor.load(std::memory_order_acquire);
  uint64_t N = End < StallRingSize ? End : StallRingSize;
  std::vector<StallReport> Out;
  Out.reserve(N);
  for (uint64_t I = 1; I <= N; ++I) {
    uint64_t Slot = (End - I) % StallRingSize;
    const std::atomic<uint64_t> *W = &StallWords[Slot * 4];
    Out.push_back(decodeStall(W[0].load(std::memory_order_relaxed),
                              W[1].load(std::memory_order_relaxed),
                              W[2].load(std::memory_order_relaxed),
                              W[3].load(std::memory_order_acquire)));
  }
  return Out;
}

bool ThreadRegistry::readStallSlot(unsigned I, StallReport &Out) const {
  if (I >= StallRingSize)
    return false;
  const std::atomic<uint64_t> *W = &StallWords[I * 4];
  uint64_t T = W[0].load(std::memory_order_relaxed);
  uint64_t Meta = W[1].load(std::memory_order_relaxed);
  if (T == 0 && Meta == 0)
    return false; // never written
  Out = decodeStall(T, Meta, W[2].load(std::memory_order_relaxed),
                    W[3].load(std::memory_order_relaxed));
  return true;
}

void ThreadRegistry::stopTheWorld(MutatorContext *Self,
                                  BitVector8 &AllocBits) {
  assert(!StopRequested.load(std::memory_order_relaxed) &&
         "stop already in progress");
  StopRequested.store(true, std::memory_order_seq_cst);
  fence(FenceSite::StopTheWorld);
  uint64_t StartNs = nowNanos();
  // Deadline-aware wait: there is no safe way to proceed without the
  // world actually stopped, so laggards are reported (not skipped) each
  // elapsed grace period while the wait continues. The watchdog and the
  // flight recorder read the reports; tests assert the attribution.
  uint64_t NextWarnNs = StwGraceNanos ? StartNs + StwGraceNanos : 0;
  for (;;) {
    // Keep cooperating with a concurrent fence handshake: its registrar
    // may be one of the threads we are waiting to see parked.
    if (Self && Self->HandshakeAck.load(std::memory_order_relaxed) !=
                    HandshakeEpoch.load(std::memory_order_acquire))
      acknowledgeHandshake(*Self, AllocBits);
    bool AllStopped = true;
    {
      SpinLockGuard Guard(ThreadsLock);
      for (MutatorContext *Ctx : Threads) {
        if (Ctx == Self)
          continue;
        if (Ctx->state() == ExecState::Running) {
          AllStopped = false;
          break;
        }
      }
    }
    if (AllStopped)
      break;
    if (NextWarnNs) {
      uint64_t Now = nowNanos();
      if (Now >= NextWarnNs) {
        {
          SpinLockGuard Guard(ThreadsLock);
          for (MutatorContext *Ctx : Threads)
            if (Ctx != Self && Ctx->state() == ExecState::Running)
              reportStall(*Ctx, StallProtocol::StopTheWorld, Now, 0);
        }
        StwStallWarningsV.fetch_add(1, std::memory_order_relaxed);
        NextWarnNs += StwGraceNanos;
      }
    }
    std::this_thread::yield();
  }
  CGC_OBS_PAUSE_P(Obs, StwEntry, nowNanos() - StartNs);
}

void ThreadRegistry::resumeTheWorld() {
  assert(StopRequested.load(std::memory_order_relaxed) &&
         "no stop in progress");
  {
    std::lock_guard<std::mutex> Lock(ParkMutex);
    StopRequested.store(false, std::memory_order_seq_cst);
  }
  ParkCV.notify_all();
}

CooperationResult
ThreadRegistry::requestFenceHandshake(MutatorContext *Self,
                                      BitVector8 &AllocBits) {
  uint64_t Epoch = HandshakeEpoch.fetch_add(1, std::memory_order_seq_cst) + 1;
  fence(FenceSite::CardTableHandshake);
  if (Self)
    acknowledgeHandshake(*Self, AllocBits);
  uint64_t StartNs = nowNanos();
  uint64_t DeadlineNs = FenceGraceNanos ? StartNs + FenceGraceNanos : 0;
  for (;;) {
    bool Done = true;
    {
      SpinLockGuard Guard(ThreadsLock);
      for (MutatorContext *Ctx : Threads) {
        if (Ctx->HandshakeAck.load(std::memory_order_acquire) >= Epoch)
          continue;
        // Parked and idle threads performed a fence on their way out of
        // Running and do no stores until they return; they count as
        // acknowledged — but only when the transition seqlock proves
        // the exit from Running completed. A thread caught
        // mid-transition is a laggard, never silently quiescent.
        if (stableNonRunning(*Ctx))
          continue;
        Done = false;
        break;
      }
    }
    if (Done) {
      CGC_OBS_PAUSE_P(Obs, FenceHandshake, nowNanos() - StartNs);
      return CooperationResult::Ok;
    }
    if (DeadlineNs) {
      uint64_t Now = nowNanos();
      if (Now >= DeadlineNs) {
        // Attribute the timeout to the exact unacknowledged contexts,
        // then fail the pass: the caller recirculates and retries.
        {
          SpinLockGuard Guard(ThreadsLock);
          for (MutatorContext *Ctx : Threads)
            if (Ctx->HandshakeAck.load(std::memory_order_acquire) < Epoch &&
                !stableNonRunning(*Ctx))
              reportStall(*Ctx, StallProtocol::FenceHandshake, Now, Epoch);
        }
        FenceTimeoutsV.fetch_add(1, std::memory_order_relaxed);
        return CooperationResult::Timeout;
      }
    }
    std::this_thread::yield();
  }
}
