//===- TraceContext.h - Per-participant packet pair -------------*- C++ -*-===//
///
/// \file
/// A tracing participant's view of the packet pool (Section 4.1): one
/// input packet (pop only) and one output packet (push only), with the
/// replacement rules that make termination detection sound (get the new
/// packet first, only then return the old one — Section 4.3) and the
/// overflow path (swap input/output once; if both are full, the caller
/// falls back to mark-and-dirty-card).
///
/// Incremental collection means any mutator can become a tracing
/// participant for one increment; a TraceContext is cheap to carry in
/// each mutator context and in each background thread.
///
//===----------------------------------------------------------------------===//

#ifndef CGC_WORKPACKETS_TRACECONTEXT_H
#define CGC_WORKPACKETS_TRACECONTEXT_H

#include "workpackets/PacketPool.h"

#include <cassert>

namespace cgc {

/// Result of attempting to queue an object for tracing.
enum class PushResult {
  /// Queued successfully.
  Ok,
  /// Both packets full and the pool exhausted: the caller must apply the
  /// overflow treatment (object stays marked; dirty its card).
  Overflow
};

/// Input/output packet pair for one tracing participant.
class TraceContext {
public:
  explicit TraceContext(PacketPool &Pool) : Pool(Pool) {}

  ~TraceContext() {
    assert(!holdsPackets() && "trace context destroyed holding packets");
  }

  TraceContext(const TraceContext &) = delete;
  TraceContext &operator=(const TraceContext &) = delete;

  /// Pops the next object to trace, replacing an exhausted input packet
  /// from the pool (and recycling a non-empty output packet through the
  /// pool when that is the only work left). Returns nullptr when no
  /// input work can be obtained — the participant should move on to
  /// other tasks (card cleaning, stack scans) or finish its increment.
  Object *popWork() {
    if (!ensureInputWork())
      return nullptr;
    return Input->pop();
  }

  /// Makes the input packet non-empty (refilling from the pool if
  /// needed) without popping. Lets the tracer run the Section 5.2 batch
  /// classification over a whole input packet. Returns false when no
  /// input work can be obtained.
  bool ensureInputWork() {
    if (Input && !Input->empty())
      return true;
    return refillInput();
  }

  /// Queues \p Obj for tracing.
  PushResult pushWork(Object *Obj) {
    if (Output && !Output->full()) {
      Output->push(Obj);
      return PushResult::Ok;
    }
    if (!replaceOutput())
      return PushResult::Overflow;
    Output->push(Obj);
    return PushResult::Ok;
  }

  /// Queues \p Obj on the deferred side packet (allocation bit not yet
  /// visible, Section 5.2). Returns false when no empty packet could be
  /// obtained; the caller then applies the overflow treatment.
  bool pushDeferred(Object *Obj) {
    if (DeferredPkt && DeferredPkt->full()) {
      Pool.putDeferred(DeferredPkt);
      DeferredPkt = nullptr;
    }
    if (!DeferredPkt) {
      DeferredPkt = Pool.getEmpty();
      if (!DeferredPkt)
        return false;
    }
    DeferredPkt->push(Obj);
    return true;
  }

  /// Returns every held packet to the pool. Must be called at the end of
  /// each tracing increment so starved packets do not sit captive in an
  /// idle thread (and so termination can be detected).
  void release() {
    if (Input) {
      Pool.put(Input);
      Input = nullptr;
    }
    if (Output) {
      Pool.put(Output);
      Output = nullptr;
    }
    if (DeferredPkt) {
      if (DeferredPkt->empty())
        Pool.put(DeferredPkt);
      else
        Pool.putDeferred(DeferredPkt);
      DeferredPkt = nullptr;
    }
  }

  /// Whether any packet is currently held.
  bool holdsPackets() const { return Input || Output || DeferredPkt; }

  /// The current input packet (tracer batch scan needs direct access).
  WorkPacket *input() { return Input; }

private:
  /// Gets a non-empty input packet, following the get-then-put rule.
  bool refillInput() {
    if (WorkPacket *NewIn = Pool.getInput()) {
      if (Input)
        Pool.put(Input);
      Input = NewIn;
      return true;
    }
    // The only remaining work may be sitting in our own output packet:
    // publish it and compete for it like everyone else (keeps input and
    // output strictly separated, Section 4.1).
    if (Output && !Output->empty()) {
      Pool.put(Output);
      Output = nullptr;
      if (WorkPacket *NewIn = Pool.getInput()) {
        if (Input)
          Pool.put(Input);
        Input = NewIn;
        return true;
      }
    }
    return false;
  }

  /// Makes Output pushable; implements the swap exception of Section 4.3.
  bool replaceOutput() {
    WorkPacket *NewOut = Pool.getOutput();
    if (NewOut && NewOut->full()) {
      // The lowest-occupancy packet available is totally full — treat as
      // no packet (put it straight back).
      Pool.put(NewOut);
      NewOut = nullptr;
    }
    if (NewOut) {
      if (Output)
        Pool.put(Output);
      Output = NewOut;
      return true;
    }
    // Swap exception: reuse free space in the input packet.
    if (Input && !Input->full()) {
      WorkPacket *Tmp = Input;
      Input = Output;
      Output = Tmp;
      return Output && !Output->full();
    }
    return false;
  }

  PacketPool &Pool;
  WorkPacket *Input = nullptr;
  WorkPacket *Output = nullptr;
  WorkPacket *DeferredPkt = nullptr;
};

} // namespace cgc

#endif // CGC_WORKPACKETS_TRACECONTEXT_H
