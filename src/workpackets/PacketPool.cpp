//===- PacketPool.cpp - Occupancy-classified packet sub-pools ---------------//

#include "workpackets/PacketPool.h"

#include "observe/Observe.h"
#include "support/Atomics.h"
#include "support/Fences.h"

#include <cassert>

using namespace cgc;

namespace {

/// Maps the pool's internal sub-pool kind to the stable event id.
PacketSubPool eventSubPool(int Kind) {
  switch (Kind) {
  case 0:
    return PacketSubPool::Empty;
  case 1:
    return PacketSubPool::NonEmpty;
  case 2:
    return PacketSubPool::AlmostFull;
  default:
    return PacketSubPool::Deferred;
  }
}

} // namespace

PacketPool::PacketPool(uint32_t NumPackets, FaultInjector *FI, GcObserver *Obs)
    : NumPackets(NumPackets), Packets(new WorkPacket[NumPackets]), FI(FI),
      Obs(Obs) {
  assert(NumPackets > 0 && "pool needs at least one packet");
  for (uint32_t I = 0; I < NumPackets; ++I)
    pushTo(Empty, &Packets[I]);
  EmptyCount.store(NumPackets, std::memory_order_relaxed);
  resetStats();
}

void PacketPool::pushTo(SubPool &SP, WorkPacket *Packet) {
  uint32_t Index = static_cast<uint32_t>(Packet - Packets.get());
  // Treiber push through the shared retry skeleton (R3): link the packet
  // to the observed head, bump the ABA tag, release-publish.
  atomicCasLoop(
      SP.Head, std::memory_order_relaxed, std::memory_order_release,
      std::memory_order_relaxed,
      [&](TaggedHead Old) -> std::optional<TaggedHead> {
        Packet->Next.store(headIndex(Old), std::memory_order_relaxed);
        return makeHead(Index + 1, static_cast<uint32_t>(Old >> 32) + 1);
      },
      [&] {
        if (FI)
          FI->maybePerturb(FaultSite::PacketCas);
        SyncOps.fetch_add(1, std::memory_order_relaxed);
      });
}

WorkPacket *PacketPool::popFrom(SubPool &SP) {
  // Treiber pop: reading Packet->Next for a packet another thread may
  // concurrently pop-and-repush is safe because a stale link makes the
  // tagged CAS fail (the tag advanced), never corrupts the stack. The
  // link is atomic (relaxed) purely to keep that read defined.
  std::optional<TaggedHead> Popped = atomicCasLoop(
      SP.Head, std::memory_order_acquire, std::memory_order_acquire,
      std::memory_order_acquire,
      [&](TaggedHead Old) -> std::optional<TaggedHead> {
        uint32_t IndexPlus1 = headIndex(Old);
        if (IndexPlus1 == 0)
          return std::nullopt; // Stack observed empty: give up.
        WorkPacket *Packet = &Packets[IndexPlus1 - 1];
        return makeHead(Packet->Next.load(std::memory_order_relaxed),
                        static_cast<uint32_t>(Old >> 32) + 1);
      },
      [&] {
        if (FI)
          FI->maybePerturb(FaultSite::PacketCas);
        SyncOps.fetch_add(1, std::memory_order_relaxed);
      });
  if (!Popped)
    return nullptr;
  return &Packets[headIndex(*Popped) - 1];
}

WorkPacket *PacketPool::takeFrom(SubPoolKind Kind) {
  SubPool *SP = nullptr;
  switch (Kind) {
  case SPEmpty:
    SP = &Empty;
    break;
  case SPNonEmpty:
    SP = &NonEmpty;
    break;
  case SPAlmostFull:
    SP = &AlmostFull;
    break;
  case SPDeferred:
    SP = &Deferred;
    break;
  }
  WorkPacket *Packet = popFrom(*SP);
  if (!Packet)
    return nullptr;
  counterFor(Kind).fetch_sub(1, std::memory_order_release);
  SyncOps.fetch_add(1, std::memory_order_relaxed);
  noteGotPacket(Packet);
  // Exclusively held from here until put(): plain store is race-free.
  Packet->TakenFrom = static_cast<uint8_t>(eventSubPool(Kind));
  CGC_OBS_EVENT_P(Obs, PacketGet, Packet->TakenFrom, Packet->count());
  return Packet;
}

void PacketPool::noteGotPacket(const WorkPacket *Packet) {
  // Busy = held by threads + queued non-empty: the upper bound on the
  // packets the mechanism needs at once (Section 6.3).
  uint64_t Busy = PacketsInUse.fetch_add(1, std::memory_order_relaxed) + 1 +
                  NonEmptyCount.load(std::memory_order_relaxed) +
                  AlmostFullCount.load(std::memory_order_relaxed) +
                  DeferredCount.load(std::memory_order_relaxed);
  atomicStoreMax(PacketsInUseWatermark, Busy);
  if (Packet->count())
    SlotsQueued.fetch_sub(Packet->count(), std::memory_order_relaxed);
}

void PacketPool::notePutPacket(const WorkPacket *Packet) {
  PacketsInUse.fetch_sub(1, std::memory_order_relaxed);
  if (!Packet->count())
    return;
  int64_t Slots =
      SlotsQueued.fetch_add(Packet->count(), std::memory_order_relaxed) +
      Packet->count();
  if (Slots > 0)
    atomicStoreMax(SlotsWatermark, static_cast<uint64_t>(Slots));
}

bool PacketPool::injectAcquireFault(FaultSite Site,
                                    PacketAcquireStatus *Status) {
  if (!FI || !FI->shouldFail(Site))
    return false;
  InjectedGets.fetch_add(1, std::memory_order_relaxed);
  FailedGets.fetch_add(1, std::memory_order_relaxed);
  if (Status)
    *Status = PacketAcquireStatus::Injected;
  return true;
}

WorkPacket *PacketPool::getInput(PacketAcquireStatus *Status) {
  if (injectAcquireFault(FaultSite::PacketAcquireInput, Status))
    return nullptr;
  // Highest possible occupancy range first (Section 4.2).
  if (WorkPacket *Packet = takeFrom(SPAlmostFull)) {
    if (Status)
      *Status = PacketAcquireStatus::Ok;
    return Packet;
  }
  if (WorkPacket *Packet = takeFrom(SPNonEmpty)) {
    if (Status)
      *Status = PacketAcquireStatus::Ok;
    return Packet;
  }
  FailedGets.fetch_add(1, std::memory_order_relaxed);
  if (Status)
    *Status = PacketAcquireStatus::Exhausted;
  return nullptr;
}

WorkPacket *PacketPool::getOutput(PacketAcquireStatus *Status) {
  if (injectAcquireFault(FaultSite::PacketAcquireOutput, Status))
    return nullptr;
  // Lowest possible occupancy range first (Section 4.2).
  if (WorkPacket *Packet = takeFrom(SPEmpty)) {
    if (Status)
      *Status = PacketAcquireStatus::Ok;
    return Packet;
  }
  if (WorkPacket *Packet = takeFrom(SPNonEmpty)) {
    if (Status)
      *Status = PacketAcquireStatus::Ok;
    return Packet;
  }
  if (WorkPacket *Packet = takeFrom(SPAlmostFull)) {
    if (Status)
      *Status = PacketAcquireStatus::Ok;
    return Packet;
  }
  FailedGets.fetch_add(1, std::memory_order_relaxed);
  if (Status)
    *Status = PacketAcquireStatus::Exhausted;
  return nullptr;
}

WorkPacket *PacketPool::getEmpty(PacketAcquireStatus *Status) {
  if (injectAcquireFault(FaultSite::PacketAcquireEmpty, Status))
    return nullptr;
  if (WorkPacket *Packet = takeFrom(SPEmpty)) {
    if (Status)
      *Status = PacketAcquireStatus::Ok;
    return Packet;
  }
  FailedGets.fetch_add(1, std::memory_order_relaxed);
  if (Status)
    *Status = PacketAcquireStatus::Exhausted;
  return nullptr;
}

void PacketPool::put(WorkPacket *Packet) {
  assert(Packet && "null packet");
  // Section 5.1: one fence before publishing a packet that carries work,
  // so entry stores cannot be reordered after the head-pointer store.
  if (Packet->count())
    fence(FenceSite::PacketPublish);
  notePutPacket(Packet);
  SubPoolKind Kind = classify(Packet);
  // Capture observability fields while still exclusively held: after
  // pushTo another thread may re-acquire and mutate the packet.
  uint32_t ObsCount = Packet->count();
  uint8_t ObsFrom = Packet->TakenFrom;
  switch (Kind) {
  case SPEmpty:
    pushTo(Empty, Packet);
    break;
  case SPNonEmpty:
    pushTo(NonEmpty, Packet);
    break;
  case SPAlmostFull:
    pushTo(AlmostFull, Packet);
    break;
  case SPDeferred:
    assert(false && "classify never yields Deferred");
    break;
  }
  counterFor(Kind).fetch_add(1, std::memory_order_release);
  SyncOps.fetch_add(1, std::memory_order_relaxed);
  CGC_OBS_EVENT_P(Obs, PacketPut, static_cast<uint8_t>(eventSubPool(Kind)),
                  ObsCount);
  if (ObsFrom != static_cast<uint8_t>(eventSubPool(Kind)))
    CGC_OBS_EVENT_P(Obs, PacketTransition, ObsFrom,
                    static_cast<uint8_t>(eventSubPool(Kind)));
}

void PacketPool::putDeferred(WorkPacket *Packet) {
  assert(Packet && !Packet->empty() && "deferred packet must carry work");
  fence(FenceSite::PacketPublish);
  notePutPacket(Packet);
  uint32_t ObsCount = Packet->count();
  uint8_t ObsFrom = Packet->TakenFrom;
  pushTo(Deferred, Packet);
  DeferredCount.fetch_add(1, std::memory_order_release);
  SyncOps.fetch_add(1, std::memory_order_relaxed);
  CGC_OBS_EVENT_P(Obs, PacketPut,
                  static_cast<uint8_t>(PacketSubPool::Deferred), ObsCount);
  CGC_OBS_EVENT_P(Obs, PacketTransition, ObsFrom,
                  static_cast<uint8_t>(PacketSubPool::Deferred));
}

size_t PacketPool::redistributeDeferred() {
  size_t Moved = 0;
  while (WorkPacket *Packet = takeFrom(SPDeferred)) {
    put(Packet);
    ++Moved;
  }
  return Moved;
}

PacketPoolStats PacketPool::stats() const {
  PacketPoolStats S;
  S.SyncOps = SyncOps.load(std::memory_order_relaxed);
  S.PacketsInUseWatermark =
      PacketsInUseWatermark.load(std::memory_order_relaxed);
  S.SlotsInUseWatermark = SlotsWatermark.load(std::memory_order_relaxed);
  S.FailedGets = FailedGets.load(std::memory_order_relaxed);
  S.InjectedGets = InjectedGets.load(std::memory_order_relaxed);
  return S;
}

void PacketPool::resetStats() {
  SyncOps.store(0, std::memory_order_relaxed);
  FailedGets.store(0, std::memory_order_relaxed);
  InjectedGets.store(0, std::memory_order_relaxed);
  PacketsInUseWatermark.store(0, std::memory_order_relaxed);
  SlotsWatermark.store(0, std::memory_order_relaxed);
}

bool PacketPool::verifyAllReturned() const {
  return EmptyCount.load(std::memory_order_relaxed) == NumPackets &&
         NonEmptyCount.load(std::memory_order_relaxed) == 0 &&
         AlmostFullCount.load(std::memory_order_relaxed) == 0 &&
         DeferredCount.load(std::memory_order_relaxed) == 0 &&
         PacketsInUse.load(std::memory_order_relaxed) == 0;
}
