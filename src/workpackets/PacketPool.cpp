//===- PacketPool.cpp - Occupancy-classified packet sub-pools ---------------//

#include "workpackets/PacketPool.h"

#include "support/Fences.h"

#include <cassert>

using namespace cgc;

PacketPool::PacketPool(uint32_t NumPackets, FaultInjector *FI)
    : NumPackets(NumPackets), Packets(new WorkPacket[NumPackets]), FI(FI) {
  assert(NumPackets > 0 && "pool needs at least one packet");
  for (uint32_t I = 0; I < NumPackets; ++I)
    pushTo(Empty, &Packets[I]);
  EmptyCount.store(NumPackets, std::memory_order_relaxed);
  resetStats();
}

void PacketPool::pushTo(SubPool &SP, WorkPacket *Packet) {
  uint32_t Index = static_cast<uint32_t>(Packet - Packets.get());
  TaggedHead Old = SP.Head.load(std::memory_order_relaxed);
  for (;;) {
    if (FI)
      FI->maybePerturb(FaultSite::PacketCas);
    Packet->Next = headIndex(Old);
    TaggedHead New = makeHead(Index + 1, static_cast<uint32_t>(Old >> 32) + 1);
    SyncOps.fetch_add(1, std::memory_order_relaxed);
    if (SP.Head.compare_exchange_weak(Old, New, std::memory_order_release,
                                      std::memory_order_relaxed))
      return;
  }
}

WorkPacket *PacketPool::popFrom(SubPool &SP) {
  TaggedHead Old = SP.Head.load(std::memory_order_acquire);
  for (;;) {
    if (FI)
      FI->maybePerturb(FaultSite::PacketCas);
    uint32_t IndexPlus1 = headIndex(Old);
    if (IndexPlus1 == 0)
      return nullptr;
    WorkPacket *Packet = &Packets[IndexPlus1 - 1];
    TaggedHead New =
        makeHead(Packet->Next, static_cast<uint32_t>(Old >> 32) + 1);
    SyncOps.fetch_add(1, std::memory_order_relaxed);
    if (SP.Head.compare_exchange_weak(Old, New, std::memory_order_acquire,
                                      std::memory_order_acquire))
      return Packet;
  }
}

WorkPacket *PacketPool::takeFrom(SubPoolKind Kind) {
  SubPool *SP = nullptr;
  switch (Kind) {
  case SPEmpty:
    SP = &Empty;
    break;
  case SPNonEmpty:
    SP = &NonEmpty;
    break;
  case SPAlmostFull:
    SP = &AlmostFull;
    break;
  case SPDeferred:
    SP = &Deferred;
    break;
  }
  WorkPacket *Packet = popFrom(*SP);
  if (!Packet)
    return nullptr;
  counterFor(Kind).fetch_sub(1, std::memory_order_release);
  SyncOps.fetch_add(1, std::memory_order_relaxed);
  noteGotPacket(Packet);
  return Packet;
}

void PacketPool::noteGotPacket(const WorkPacket *Packet) {
  // Busy = held by threads + queued non-empty: the upper bound on the
  // packets the mechanism needs at once (Section 6.3).
  uint64_t Busy = PacketsInUse.fetch_add(1, std::memory_order_relaxed) + 1 +
                  NonEmptyCount.load(std::memory_order_relaxed) +
                  AlmostFullCount.load(std::memory_order_relaxed) +
                  DeferredCount.load(std::memory_order_relaxed);
  uint64_t Watermark = PacketsInUseWatermark.load(std::memory_order_relaxed);
  while (Busy > Watermark &&
         !PacketsInUseWatermark.compare_exchange_weak(
             Watermark, Busy, std::memory_order_relaxed))
    ;
  if (Packet->count())
    SlotsQueued.fetch_sub(Packet->count(), std::memory_order_relaxed);
}

void PacketPool::notePutPacket(const WorkPacket *Packet) {
  PacketsInUse.fetch_sub(1, std::memory_order_relaxed);
  if (!Packet->count())
    return;
  int64_t Slots =
      SlotsQueued.fetch_add(Packet->count(), std::memory_order_relaxed) +
      Packet->count();
  uint64_t Watermark = SlotsWatermark.load(std::memory_order_relaxed);
  while (Slots > 0 && static_cast<uint64_t>(Slots) > Watermark &&
         !SlotsWatermark.compare_exchange_weak(
             Watermark, static_cast<uint64_t>(Slots),
             std::memory_order_relaxed))
    ;
}

bool PacketPool::injectAcquireFault(FaultSite Site,
                                    PacketAcquireStatus *Status) {
  if (!FI || !FI->shouldFail(Site))
    return false;
  InjectedGets.fetch_add(1, std::memory_order_relaxed);
  FailedGets.fetch_add(1, std::memory_order_relaxed);
  if (Status)
    *Status = PacketAcquireStatus::Injected;
  return true;
}

WorkPacket *PacketPool::getInput(PacketAcquireStatus *Status) {
  if (injectAcquireFault(FaultSite::PacketAcquireInput, Status))
    return nullptr;
  // Highest possible occupancy range first (Section 4.2).
  if (WorkPacket *Packet = takeFrom(SPAlmostFull)) {
    if (Status)
      *Status = PacketAcquireStatus::Ok;
    return Packet;
  }
  if (WorkPacket *Packet = takeFrom(SPNonEmpty)) {
    if (Status)
      *Status = PacketAcquireStatus::Ok;
    return Packet;
  }
  FailedGets.fetch_add(1, std::memory_order_relaxed);
  if (Status)
    *Status = PacketAcquireStatus::Exhausted;
  return nullptr;
}

WorkPacket *PacketPool::getOutput(PacketAcquireStatus *Status) {
  if (injectAcquireFault(FaultSite::PacketAcquireOutput, Status))
    return nullptr;
  // Lowest possible occupancy range first (Section 4.2).
  if (WorkPacket *Packet = takeFrom(SPEmpty)) {
    if (Status)
      *Status = PacketAcquireStatus::Ok;
    return Packet;
  }
  if (WorkPacket *Packet = takeFrom(SPNonEmpty)) {
    if (Status)
      *Status = PacketAcquireStatus::Ok;
    return Packet;
  }
  if (WorkPacket *Packet = takeFrom(SPAlmostFull)) {
    if (Status)
      *Status = PacketAcquireStatus::Ok;
    return Packet;
  }
  FailedGets.fetch_add(1, std::memory_order_relaxed);
  if (Status)
    *Status = PacketAcquireStatus::Exhausted;
  return nullptr;
}

WorkPacket *PacketPool::getEmpty(PacketAcquireStatus *Status) {
  if (injectAcquireFault(FaultSite::PacketAcquireEmpty, Status))
    return nullptr;
  if (WorkPacket *Packet = takeFrom(SPEmpty)) {
    if (Status)
      *Status = PacketAcquireStatus::Ok;
    return Packet;
  }
  FailedGets.fetch_add(1, std::memory_order_relaxed);
  if (Status)
    *Status = PacketAcquireStatus::Exhausted;
  return nullptr;
}

void PacketPool::put(WorkPacket *Packet) {
  assert(Packet && "null packet");
  // Section 5.1: one fence before publishing a packet that carries work,
  // so entry stores cannot be reordered after the head-pointer store.
  if (Packet->count())
    fence(FenceSite::PacketPublish);
  notePutPacket(Packet);
  SubPoolKind Kind = classify(Packet);
  switch (Kind) {
  case SPEmpty:
    pushTo(Empty, Packet);
    break;
  case SPNonEmpty:
    pushTo(NonEmpty, Packet);
    break;
  case SPAlmostFull:
    pushTo(AlmostFull, Packet);
    break;
  case SPDeferred:
    assert(false && "classify never yields Deferred");
    break;
  }
  counterFor(Kind).fetch_add(1, std::memory_order_release);
  SyncOps.fetch_add(1, std::memory_order_relaxed);
}

void PacketPool::putDeferred(WorkPacket *Packet) {
  assert(Packet && !Packet->empty() && "deferred packet must carry work");
  fence(FenceSite::PacketPublish);
  notePutPacket(Packet);
  pushTo(Deferred, Packet);
  DeferredCount.fetch_add(1, std::memory_order_release);
  SyncOps.fetch_add(1, std::memory_order_relaxed);
}

size_t PacketPool::redistributeDeferred() {
  size_t Moved = 0;
  while (WorkPacket *Packet = takeFrom(SPDeferred)) {
    put(Packet);
    ++Moved;
  }
  return Moved;
}

PacketPoolStats PacketPool::stats() const {
  PacketPoolStats S;
  S.SyncOps = SyncOps.load(std::memory_order_relaxed);
  S.PacketsInUseWatermark =
      PacketsInUseWatermark.load(std::memory_order_relaxed);
  S.SlotsInUseWatermark = SlotsWatermark.load(std::memory_order_relaxed);
  S.FailedGets = FailedGets.load(std::memory_order_relaxed);
  S.InjectedGets = InjectedGets.load(std::memory_order_relaxed);
  return S;
}

void PacketPool::resetStats() {
  SyncOps.store(0, std::memory_order_relaxed);
  FailedGets.store(0, std::memory_order_relaxed);
  InjectedGets.store(0, std::memory_order_relaxed);
  PacketsInUseWatermark.store(0, std::memory_order_relaxed);
  SlotsWatermark.store(0, std::memory_order_relaxed);
}

bool PacketPool::verifyAllReturned() const {
  return EmptyCount.load(std::memory_order_relaxed) == NumPackets &&
         NonEmptyCount.load(std::memory_order_relaxed) == 0 &&
         AlmostFullCount.load(std::memory_order_relaxed) == 0 &&
         DeferredCount.load(std::memory_order_relaxed) == 0 &&
         PacketsInUse.load(std::memory_order_relaxed) == 0;
}
