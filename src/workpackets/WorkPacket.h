//===- WorkPacket.h - Fixed-capacity mark-stack packet ----------*- C++ -*-===//
///
/// \file
/// A work packet (Section 4): a small fixed-capacity mark stack. A
/// packet is owned by at most one thread at a time; while owned, its
/// entries and count are accessed without synchronization. Ownership is
/// transferred through the PacketPool's lock-free sub-pool lists, and the
/// publish fence of Section 5.1 orders entry stores before the packet
/// pointer store.
///
//===----------------------------------------------------------------------===//

#ifndef CGC_WORKPACKETS_WORKPACKET_H
#define CGC_WORKPACKETS_WORKPACKET_H

#include <atomic>
#include <cassert>
#include <cstdint>

namespace cgc {

class Object;

/// One packet: a bounded LIFO of objects awaiting tracing.
class WorkPacket {
public:
  /// Entries per packet; the paper's packets hold up to 493 entries.
  static constexpr uint32_t Capacity = 493;

  /// Number of queued objects.
  uint32_t count() const { return Count; }

  /// Whether no objects are queued.
  bool empty() const { return Count == 0; }

  /// Whether no more objects fit.
  bool full() const { return Count == Capacity; }

  /// Whether the packet is at least half full (the paper's Almost Full
  /// classification boundary).
  bool almostFull() const { return Count >= Capacity / 2; }

  /// Pushes \p Obj; the packet must not be full.
  void push(Object *Obj) {
    assert(!full() && "push on full packet");
    Entries[Count++] = Obj;
  }

  /// Pops the most recently pushed object; the packet must not be empty.
  Object *pop() {
    assert(!empty() && "pop on empty packet");
    return Entries[--Count];
  }

  /// Reads entry \p I without removing it (tracer batch safety scan).
  Object *peek(uint32_t I) const {
    assert(I < Count && "peek out of range");
    return Entries[I];
  }

  /// Drops all entries.
  void clear() { Count = 0; }

private:
  friend class PacketPool;

  /// Intrusive link for the owning sub-pool list: (index of next packet
  /// + 1), or 0 for end-of-list. Only touched inside pool CAS sections,
  /// but atomic nonetheless: a Treiber pop may read the link of a packet
  /// that a concurrent pop-and-repush is relinking. The stale value is
  /// always discarded (the tagged-head CAS fails), so relaxed accesses
  /// suffice — the atomic only keeps the benign race defined.
  std::atomic<uint32_t> Next{0};
  uint32_t Count = 0;
  /// Sub-pool the packet was last acquired from (a PacketSubPool value;
  /// observability only). Written by the pool while the packet is
  /// exclusively held, so plain storage is race-free.
  uint8_t TakenFrom = 0;
  Object *Entries[Capacity];
};

} // namespace cgc

#endif // CGC_WORKPACKETS_WORKPACKET_H
