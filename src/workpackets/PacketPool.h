//===- PacketPool.h - Occupancy-classified packet sub-pools -----*- C++ -*-===//
///
/// \file
/// The global work-packet pool (Sections 4.1-4.3).
///
/// Packets circulate between threads through sub-pools classified by
/// occupancy:
///   - Empty:       0 entries
///   - Non-empty:   less than 50% full
///   - Almost full: at least 50% full (including totally full)
///   - Deferred:    packets holding objects whose allocation bits were
///                  not yet visible to a tracer (Section 5.2); these do
///                  not circulate until redistributeDeferred() is called.
///
/// Each sub-pool is a lock-free Treiber stack of packet indices; the
/// head word carries a monotonically increasing tag to defeat ABA (the
/// paper cites the z/Architecture unique-ID technique). Each sub-pool
/// keeps an approximate packet counter, updated after each put/get, and
/// tracing termination is detected when the Empty pool's counter equals
/// the total number of packets (Section 4.3).
///
//===----------------------------------------------------------------------===//

#ifndef CGC_WORKPACKETS_PACKETPOOL_H
#define CGC_WORKPACKETS_PACKETPOOL_H

#include "support/Annotations.h"
#include "support/FaultInjector.h"
#include "workpackets/WorkPacket.h"

#include <atomic>
#include <cstdint>
#include <memory>

namespace cgc {

class GcObserver;

/// Why a packet acquire handed back nullptr (the typed status of the
/// pool-exhaustion path — callers used to have to guess from context).
enum class PacketAcquireStatus : uint8_t {
  /// A packet was returned.
  Ok,
  /// No eligible packet exists in any searched sub-pool: genuine
  /// exhaustion; the caller must take the overflow/deferral fallback.
  Exhausted,
  /// Fault injection denied the acquire (chaos mode); the pool itself
  /// may hold packets.
  Injected
};

/// Approximate per-sub-pool packet counts (observability gauges; the
/// counters trail the stack operations, so a racing snapshot can be
/// momentarily off by the number of in-flight put/get operations).
struct PacketPoolOccupancy {
  uint32_t Empty = 0;
  uint32_t NonEmpty = 0;
  uint32_t AlmostFull = 0;
  uint32_t Deferred = 0;
};

/// Aggregate statistics for the load-balancing evaluation (Section 6.3).
struct PacketPoolStats {
  /// CAS/atomic synchronization operations spent on get/put.
  uint64_t SyncOps = 0;
  /// Number of get operations denied by fault injection.
  uint64_t InjectedGets = 0;
  /// High-water mark of packets simultaneously busy: held by a thread
  /// or sitting non-empty in a sub-pool (the paper's upper bound on the
  /// memory the mechanism needs).
  uint64_t PacketsInUseWatermark = 0;
  /// High-water mark of queued entries (lower bound on needed memory).
  uint64_t SlotsInUseWatermark = 0;
  /// Number of get operations that found no packet.
  uint64_t FailedGets = 0;
};

/// The shared pool of work packets.
class PacketPool {
public:
  /// Creates \p NumPackets empty packets, all in the Empty sub-pool.
  /// \p FI (optional) arms the pool's fault-injection sites; \p Obs
  /// (optional) receives packet get/put/transition events.
  explicit PacketPool(uint32_t NumPackets, FaultInjector *FI = nullptr,
                      GcObserver *Obs = nullptr);

  PacketPool(const PacketPool &) = delete;
  PacketPool &operator=(const PacketPool &) = delete;

  /// Total number of packets.
  uint32_t numPackets() const { return NumPackets; }

  /// Gets an input packet: highest-occupancy sub-pool first (Almost full,
  /// then Non-empty). Returns nullptr when no tracing work is available;
  /// \p Status (optional) says whether that was genuine exhaustion or an
  /// injected fault.
  WorkPacket *getInput(PacketAcquireStatus *Status = nullptr);

  /// Gets an output packet: lowest-occupancy sub-pool first (Empty, then
  /// Non-empty, then Almost full — which may hand back a full packet, a
  /// rare case the caller treats as overflow). Returns nullptr when no
  /// packet is available at all; \p Status reports why.
  WorkPacket *getOutput(PacketAcquireStatus *Status = nullptr);

  /// Gets a guaranteed-empty packet (deferred-object side packet).
  /// Returns nullptr when the Empty sub-pool is drained; \p Status
  /// reports why — the caller takes the mark-and-dirty-card fallback.
  WorkPacket *getEmpty(PacketAcquireStatus *Status = nullptr);

  /// Returns \p Packet to the sub-pool matching its occupancy. Performs
  /// the Section 5.1 publish fence when the packet carries entries.
  void put(WorkPacket *Packet);

  /// Parks \p Packet in the Deferred sub-pool (Section 5.2).
  void putDeferred(WorkPacket *Packet);

  /// Moves every Deferred packet back into circulation so deferred
  /// objects get another chance to be traced. Returns packets moved.
  size_t redistributeDeferred();

  /// Whether any packets are parked in the Deferred sub-pool.
  bool hasDeferred() const {
    return DeferredCount.load(std::memory_order_relaxed) != 0;
  }

  /// Termination test: every packet is empty and in the Empty sub-pool
  /// (up to the benign counter races discussed in Section 4.3).
  bool allPacketsEmptyAndIdle() const {
    return EmptyCount.load(std::memory_order_acquire) == NumPackets;
  }

  /// Approximate number of packets currently available as input work.
  size_t approxInputPackets() const {
    return NonEmptyCount.load(std::memory_order_relaxed) +
           AlmostFullCount.load(std::memory_order_relaxed);
  }

  /// Approximate sub-pool occupancy snapshot (observability gauges).
  PacketPoolOccupancy occupancy() const {
    PacketPoolOccupancy O;
    O.Empty = EmptyCount.load(std::memory_order_relaxed);
    O.NonEmpty = NonEmptyCount.load(std::memory_order_relaxed);
    O.AlmostFull = AlmostFullCount.load(std::memory_order_relaxed);
    O.Deferred = DeferredCount.load(std::memory_order_relaxed);
    return O;
  }

  /// Snapshot of the accumulated statistics.
  PacketPoolStats stats() const;

  /// Zeroes statistics (watermarks and counters).
  void resetStats();

  /// Asserts every packet is back and empty, and resets per-cycle state.
  /// Called between collection cycles in tests.
  bool verifyAllReturned() const;

private:
  /// Tagged head of a Treiber stack: low 32 bits = index + 1 (0 = empty),
  /// high 32 bits = ABA tag.
  using TaggedHead = uint64_t;

  static constexpr uint32_t headIndex(TaggedHead H) {
    return static_cast<uint32_t>(H & 0xffffffffu);
  }
  static TaggedHead makeHead(uint32_t IndexPlus1, uint32_t Tag) {
    return (static_cast<uint64_t>(Tag) << 32) | IndexPlus1;
  }

  struct SubPool {
    CGC_ATOMIC_DOC("Treiber head; tagged CAS by all threads, Section 4.1")
    std::atomic<TaggedHead> Head{0};
  };

  enum SubPoolKind { SPEmpty, SPNonEmpty, SPAlmostFull, SPDeferred };

  void pushTo(SubPool &SP, WorkPacket *Packet);
  WorkPacket *popFrom(SubPool &SP);

  std::atomic<uint32_t> &counterFor(SubPoolKind Kind) {
    switch (Kind) {
    case SPEmpty:
      return EmptyCount;
    case SPNonEmpty:
      return NonEmptyCount;
    case SPAlmostFull:
      return AlmostFullCount;
    case SPDeferred:
      return DeferredCount;
    }
    __builtin_unreachable();
  }

  SubPoolKind classify(const WorkPacket *Packet) const {
    if (Packet->empty())
      return SPEmpty;
    return Packet->almostFull() ? SPAlmostFull : SPNonEmpty;
  }

  WorkPacket *takeFrom(SubPoolKind Kind);
  void noteGotPacket(const WorkPacket *Packet);
  void notePutPacket(const WorkPacket *Packet);

  /// True when fault injection denies this acquire; records the typed
  /// status and the statistics.
  bool injectAcquireFault(FaultSite Site, PacketAcquireStatus *Status);

  uint32_t NumPackets;
  std::unique_ptr<WorkPacket[]> Packets;
  FaultInjector *FI;
  GcObserver *Obs;

  SubPool Empty, NonEmpty, AlmostFull, Deferred;
  /// Sub-pool counters trail the stack operations (updated after each
  /// push/pop), so they race benignly with them — exactly the Section
  /// 4.3 design. The Empty counter's acquire read is the termination
  /// test; see tests/packet_model_check.cpp for why the trailing
  /// updates cannot overstate it into a false termination.
  CGC_ATOMIC_DOC("all threads add/sub after push/pop; acquire termination read")
  std::atomic<uint32_t> EmptyCount{0};
  CGC_ATOMIC_DOC("all threads add/sub after push/pop; relaxed approx reads")
  std::atomic<uint32_t> NonEmptyCount{0};
  CGC_ATOMIC_DOC("all threads add/sub after push/pop; relaxed approx reads")
  std::atomic<uint32_t> AlmostFullCount{0};
  CGC_ATOMIC_DOC("all threads add/sub after push/pop; relaxed hasDeferred read")
  std::atomic<uint32_t> DeferredCount{0};

  // Statistics.
  CGC_ATOMIC_DOC("relaxed counter, all threads; snapshot in stats()")
  std::atomic<uint64_t> SyncOps{0};
  CGC_ATOMIC_DOC("relaxed counter, all threads; snapshot in stats()")
  std::atomic<uint64_t> FailedGets{0};
  CGC_ATOMIC_DOC("relaxed counter, all threads; snapshot in stats()")
  std::atomic<uint64_t> InjectedGets{0};
  CGC_ATOMIC_DOC("relaxed counter, all threads; feeds the busy watermark")
  std::atomic<uint32_t> PacketsInUse{0};
  CGC_ATOMIC_DOC("monotonic max via atomicStoreMax, relaxed")
  std::atomic<uint64_t> PacketsInUseWatermark{0};
  CGC_ATOMIC_DOC("relaxed counter, all threads; feeds the slots watermark")
  std::atomic<int64_t> SlotsQueued{0};
  CGC_ATOMIC_DOC("monotonic max via atomicStoreMax, relaxed")
  std::atomic<uint64_t> SlotsWatermark{0};
};

} // namespace cgc

#endif // CGC_WORKPACKETS_PACKETPOOL_H
