//===- Pacer.h - Kickoff and progress formulas ------------------*- C++ -*-===//
///
/// \file
/// The metering of concurrent collection work (Section 3).
///
/// Kickoff (once per cycle): a new concurrent phase starts when free
/// memory drops below (L + M) / K0, where L predicts the memory to be
/// traced, M predicts the memory on dirty cards to be rescanned, and K0
/// is the desired allocator tracing rate. L and M are exponential
/// smoothing averages of their actual values in past cycles.
///
/// Progress (each allocation-cache refill / large allocation): the
/// current rate is K = (M + L - T) / F with T the bytes traced so far and
/// F the current free memory; a negative numerator means the predictions
/// were too low and K is clamped to Kmax (typically 2 K0). The smoothed
/// background tracing rate Best is subtracted (background threads may be
/// doing the work for free), and when K still exceeds K0 — tracing is
/// behind schedule — the corrective term C inflates it:
/// K + (K - K0) * C.
///
//===----------------------------------------------------------------------===//

#ifndef CGC_GC_PACER_H
#define CGC_GC_PACER_H

#include "gc/GcOptions.h"
#include "support/Annotations.h"
#include "support/Smoothing.h"
#include "support/SpinLock.h"

#include <atomic>
#include <cstdint>

namespace cgc {

class GcObserver;

/// Implements the kickoff and progress formulas plus Best accounting.
class Pacer {
public:
  /// \p Obs (optional) receives a PacerWindow event each time a Best
  /// measurement window closes.
  Pacer(const GcOptions &Options, size_t HeapBytes, GcObserver *Obs = nullptr);

  /// Free-memory threshold that triggers a new concurrent phase:
  /// (L + M) / K0, scaled by GcOptions::KickoffHeadroom (> 1 starts
  /// cycles earlier for request-latency headroom).
  size_t kickoffThresholdBytes() const;

  /// Kickoff decision. \p RefillableFreeBytes must be the free bytes
  /// actually able to serve allocation-cache refills (HeapSpace::
  /// refillableFreeBytes()), not the raw aggregate: a fragmented shard
  /// set can hold free bytes no refill can use, and paging the cycle
  /// off the raw number starts it too late (DESIGN.md §9 stranding).
  bool shouldKickoff(size_t RefillableFreeBytes) const {
    return RefillableFreeBytes <= kickoffThresholdBytes();
  }

  /// The current tracing rate K for a mutator increment, given \p
  /// TracedBytes traced so far this cycle and \p FreeBytes currently
  /// free. Applies the Kmax clamp, the Best subtraction and the
  /// corrective term. Never negative.
  double currentRate(uint64_t TracedBytes, uint64_t FreeBytes) const;

  /// Tracing work (bytes) a mutator owes for allocating \p AllocBytes.
  size_t workFor(size_t AllocBytes, uint64_t TracedBytes,
                 uint64_t FreeBytes) const {
    return static_cast<size_t>(currentRate(TracedBytes, FreeBytes) *
                               static_cast<double>(AllocBytes));
  }

  /// Records mutator allocation (feeds the Best measurement window).
  void noteAllocation(size_t Bytes);

  /// Records background tracing progress (feeds Best).
  void noteBackgroundTrace(size_t Bytes);

  /// Folds the cycle's actual traced volume and dirty-card volume into
  /// the L and M predictions.
  void endCycle(uint64_t ActualTracedBytes, uint64_t ActualDirtyCardBytes);

  /// Current smoothed predictions (for tests and logging).
  double estimateL() const;
  double estimateM() const;
  double estimateBest() const;

  /// Raw Best-window counters. Async-signal-safe (single relaxed loads;
  /// the smoothed estimates above take a lock and must not be read from
  /// a crash handler) — the flight recorder dumps these instead.
  uint64_t windowAllocatedBytes() const {
    return WindowAllocated.load(std::memory_order_relaxed);
  }
  uint64_t windowBgTracedBytes() const {
    return WindowBgTraced.load(std::memory_order_relaxed);
  }

private:
  const double K0;
  const double Kmax;
  const double C;
  const double KickoffHeadroom;
  GcObserver *Obs;
  mutable SpinLock Lock;
  ExponentialAverage LEst CGC_GUARDED_BY(Lock);
  ExponentialAverage MEst CGC_GUARDED_BY(Lock);
  ExponentialAverage BestEst CGC_GUARDED_BY(Lock);

  /// Best measurement window (Section 3.2): B is re-evaluated every time
  /// mutators allocate WindowBytes.
  static constexpr uint64_t WindowBytes = 256u << 10;
  CGC_ATOMIC_DOC("mutators add, window closer exchanges; relaxed counter")
  std::atomic<uint64_t> WindowAllocated{0};
  CGC_ATOMIC_DOC("tracers add, window closer exchanges; relaxed counter")
  std::atomic<uint64_t> WindowBgTraced{0};
};

} // namespace cgc

#endif // CGC_GC_PACER_H
