//===- Compactor.cpp - Incremental (area) compaction ---------------------------//

#include "gc/Compactor.h"

#include "mutator/ThreadRegistry.h"

#include <cassert>

using namespace cgc;

void Compactor::armForCycle() {
  assert(!Armed.load(std::memory_order_relaxed) &&
         "previous evacuation not finished");
  if (AreaBytes == 0 || AreaBytes >= Heap.sizeBytes())
    return;
  uint8_t *Start = Heap.base() + NextAreaOffset;
  uint8_t *End = Start + AreaBytes;
  if (End > Heap.limit())
    End = Heap.limit();
  NextAreaOffset += AreaBytes;
  if (NextAreaOffset >= Heap.sizeBytes())
    NextAreaOffset = 0;

  {
    SpinLockGuard Guard(SlotsLock);
    Slots.clear();
  }
  AreaStart.store(Start, std::memory_order_relaxed);
  AreaEnd.store(End, std::memory_order_relaxed);
  Armed.store(true, std::memory_order_release);
}

void Compactor::disarm() {
  Armed.store(false, std::memory_order_release);
  AreaStart.store(nullptr, std::memory_order_relaxed);
  AreaEnd.store(nullptr, std::memory_order_relaxed);
  SpinLockGuard Guard(SlotsLock);
  Slots.clear();
}

Compactor::Stats Compactor::evacuate(ThreadRegistry &Registry) {
  Stats Result;
  uint8_t *Lo = AreaStart.load(std::memory_order_relaxed);
  uint8_t *Hi = AreaEnd.load(std::memory_order_relaxed);
  if (!Lo) {
    disarm();
    return Result;
  }

  // Evacuation targets must lie outside the area.
  Heap.freeList().withdrawWithin(Lo, Hi);

  // 1. Pin every area object referenced from a (conservatively scanned)
  //    thread stack: those slots cannot be updated.
  std::unordered_set<Object *> Pinned;
  Registry.forEach([&](MutatorContext &Ctx) {
    Ctx.withRoots([&](const std::vector<uintptr_t> &Roots) {
      for (uintptr_t Word : Roots) {
        if (!Heap.isPlausibleObject(Word))
          continue;
        uint8_t *P = reinterpret_cast<uint8_t *>(Word);
        if (P >= Lo && P < Hi)
          Pinned.insert(reinterpret_cast<Object *>(P));
      }
    });
  });
  Result.PinnedObjects = Pinned.size();

  // 2. Choose targets for every live (marked) unpinned object in the
  //    area. Nothing is copied yet: the recorded slots still point at
  //    the old locations, including slots inside objects that will
  //    themselves move.
  std::unordered_map<Object *, Object *> Forwarding;
  Heap.markBits().forEachSetInRange(Lo, Hi, [&](uint8_t *Granule) {
    Object *Obj = reinterpret_cast<Object *>(Granule);
    assert(Heap.allocBits().test(Obj) && "marked non-object in evac area");
    if (Pinned.count(Obj))
      return true;
    // Objects straddling the area's end still move as a whole (their
    // header is inside).
    uint8_t *Target = Heap.freeList().allocate(Obj->sizeBytes());
    if (!Target) {
      ++Result.FailedObjects;
      return true;
    }
    assert(!(Target >= Lo && Target < Hi) &&
           "evacuation target inside the area");
    Forwarding.emplace(Obj, reinterpret_cast<Object *>(Target));
    return true;
  });

  // 3. Fix up the recorded slots in place (before any copy, so moving
  //    holders copy already-fixed slot values).
  {
    SpinLockGuard Guard(SlotsLock);
    Result.SlotRecords = Slots.size();
    for (auto [Holder, Index] : Slots) {
      if (!Heap.markBits().test(Holder))
        continue; // The holder died; its memory was already swept.
      Object *Value = Holder->loadRef(Index);
      auto It = Forwarding.find(Value);
      if (It == Forwarding.end())
        continue; // Null, rewritten, pinned, or failed-to-move.
      Holder->storeRefRaw(Index, It->second);
      ++Result.SlotsFixed;
    }
  }

  // 4. Copy the objects and transfer their bitmap bits.
  for (auto [Old, New] : Forwarding) {
    uint32_t Size = Old->sizeBytes();
    std::memcpy(New, Old, Size);
    Heap.allocBits().set(New);
    Heap.markBits().set(New);
    Heap.allocBits().clear(Old);
    Heap.markBits().clear(Old);
    Result.EvacuatedBytes += Size;
    ++Result.EvacuatedObjects;
  }

  // 5. Rebuild the area's free space: everything except the objects
  //    that stayed (pinned or failed) is free now. A mini bitwise sweep
  //    over the area derives the maximal runs; a live object straddling
  //    in from before the area keeps its extent.
  uint8_t *Pos = Lo;
  if (uint8_t *PrevMarked = Heap.markBits().findPrevSet(Lo)) {
    uint8_t *PrevEnd = reinterpret_cast<Object *>(PrevMarked)->end();
    if (PrevEnd > Pos)
      Pos = PrevEnd;
  }
  while (Pos < Hi) {
    uint8_t *NextLive = Heap.markBits().findNextSet(Pos, Hi);
    uint8_t *RunEnd = NextLive ? NextLive : Hi;
    if (RunEnd > Pos) {
      Heap.allocBits().clearRange(Pos, RunEnd);
      Heap.freeList().addRange(Pos, static_cast<size_t>(RunEnd - Pos));
    }
    if (!NextLive)
      break;
    Pos = reinterpret_cast<Object *>(NextLive)->end();
  }

  disarm();
  return Result;
}
