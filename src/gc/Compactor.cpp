//===- Compactor.cpp - Parallel fragmentation-guided compaction ---------------//

#include "gc/Compactor.h"

#include "gc/Sweeper.h"
#include "gc/WorkerPool.h"
#include "mutator/ThreadRegistry.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <functional>
#include <unordered_map>
#include <unordered_set>

using namespace cgc;

//===----------------------------------------------------------------------===//
// Per-thread slot buffers (the GcObserver ring-cache idiom)
//===----------------------------------------------------------------------===//

namespace {

std::atomic<uint64_t> NextCompactorId{1};
std::atomic<uint64_t> NextRecorderThreadId{1};

uint64_t recorderThreadId() {
  thread_local uint64_t Id =
      NextRecorderThreadId.fetch_add(1, std::memory_order_relaxed);
  return Id;
}

/// Which compactor the cached pointer belongs to; a stale cache (other
/// instance, or table exhausted for this thread) re-resolves through
/// the slow path.
struct SlotBufferCache {
  uint64_t CompactorId = 0;
  std::vector<Compactor::SlotRecord> *Buf = nullptr;
  bool Exhausted = false;
};

thread_local SlotBufferCache Cache;

} // namespace

Compactor::Compactor(HeapSpace &Heap, size_t AreaBytes, FaultInjector *FI)
    : Heap(Heap), AreaBytes(AreaBytes), FI(FI),
      CompactorId(NextCompactorId.fetch_add(1, std::memory_order_relaxed)) {}

std::vector<Compactor::SlotRecord> *Compactor::threadSlotBuffer() {
  if (Cache.CompactorId == CompactorId)
    return Cache.Exhausted ? nullptr : Cache.Buf;
  return createSlotBufferSlow();
}

std::vector<Compactor::SlotRecord> *Compactor::createSlotBufferSlow() {
  uint64_t Owner = recorderThreadId();
  SpinLockGuard Guard(SlotsLock);
  // This thread may already own a buffer here (its cache was repointed
  // at another compactor in between); reuse it instead of burning a slot.
  uint32_t N = NumSlotBuffers.load(std::memory_order_relaxed);
  for (uint32_t I = 0; I < N; ++I)
    if (SlotBuffers[I] && SlotBuffers[I]->OwnerThread == Owner) {
      Cache = {CompactorId, &SlotBuffers[I]->Records, false};
      return Cache.Buf;
    }
  if (N >= MaxSlotBuffers) {
    Cache = {CompactorId, nullptr, true};
    return nullptr;
  }
  SlotBuffers[N] = std::make_unique<SlotBuffer>();
  SlotBuffers[N]->OwnerThread = Owner;
  Cache = {CompactorId, &SlotBuffers[N]->Records, false};
  NumSlotBuffers.store(N + 1, std::memory_order_relaxed);
  return Cache.Buf;
}

void Compactor::clearSlotsLocked() {
  uint32_t N = NumSlotBuffers.load(std::memory_order_relaxed);
  for (uint32_t I = 0; I < N; ++I)
    if (SlotBuffers[I])
      SlotBuffers[I]->Records.clear();
  OverflowSlots.clear();
}

//===----------------------------------------------------------------------===//
// Area-selection policy
//===----------------------------------------------------------------------===//

double Compactor::fragmentationScore(const FreeRangeStats &F,
                                     size_t AreaBytes) {
  // Evacuating an area turns it into one contiguous free block (minus
  // pins), so the benefit is the contiguity recovered — the gap between
  // the area size and the largest free range it holds today — plus a
  // small per-range bonus (every extra range is refill overhead the
  // area imposes). The cost is copying the live bytes out. Score =
  // benefit - cost; strictly increasing in FreeBytes and RangeCount,
  // strictly decreasing in LargestRange. An already-contiguous (e.g.
  // fully free) area scores near zero; a fully live one scores deeply
  // negative. The coefficients only need to order areas sensibly; they
  // are not tuned against a benchmark.
  double Contiguity = static_cast<double>(AreaBytes) -
                      static_cast<double>(F.LargestRange);
  double LiveBytes = F.FreeBytes < AreaBytes
                         ? static_cast<double>(AreaBytes - F.FreeBytes)
                         : 0.0;
  return Contiguity + 64.0 * static_cast<double>(F.RangeCount) -
         0.5 * LiveBytes;
}

size_t Compactor::selectArea(const std::vector<FreeRangeStats> &Candidates,
                             size_t AreaBytes, size_t SkipIndex) {
  size_t Best = SIZE_MAX;
  double BestScore = 0.0;
  for (size_t I = 0; I < Candidates.size(); ++I) {
    if (I == SkipIndex)
      continue;
    const FreeRangeStats &F = Candidates[I];
    // No tracked free range = nothing measurable to defragment (either
    // fully live, or the free list is empty this generation); leave it
    // to the rotation fallback.
    if (F.RangeCount == 0)
      continue;
    double Score = fragmentationScore(F, AreaBytes);
    if (Best == SIZE_MAX || Score > BestScore) {
      Best = I;
      BestScore = Score;
    }
  }
  return Best;
}

void Compactor::armWindow(uint8_t *Lo, uint8_t *Hi) {
  {
    SpinLockGuard Guard(SlotsLock);
    clearSlotsLocked();
  }
  // Bounds first: recordSlot is only reachable once inEvacArea sees a
  // non-null window, and Armed's release fences the whole publication.
  AreaStart.store(Lo, std::memory_order_relaxed);
  AreaEnd.store(Hi, std::memory_order_relaxed);
  Armed.store(true, std::memory_order_release);
}

void Compactor::armForCycle() {
  assert(!Armed.load(std::memory_order_relaxed) &&
         "previous evacuation not finished");
  if (Armed.load(std::memory_order_relaxed))
    disarm(); // Release builds: recover instead of corrupting state.
  if (AreaBytes == 0 || AreaBytes >= Heap.sizeBytes())
    return;

  size_t NumAreas = (Heap.sizeBytes() + AreaBytes - 1) / AreaBytes;
  std::vector<FreeRangeStats> Candidates;
  Candidates.reserve(NumAreas);
  for (size_t I = 0; I < NumAreas; ++I) {
    uint8_t *Lo = Heap.base() + I * AreaBytes;
    uint8_t *Hi = std::min(Lo + AreaBytes, Heap.limit());
    Candidates.push_back(Heap.freeList().statsWithin(Lo, Hi));
  }
  LastAreasScored = NumAreas;

  size_t Skip = LastAreaPinnedHeavy && NumAreas > 1 ? LastAreaIndex : SIZE_MAX;
  size_t Pick = selectArea(Candidates, AreaBytes, Skip);
  if (Pick == SIZE_MAX) {
    // Nothing scoreable (typically an empty free list): blind rotation,
    // as before fragmentation guidance existed.
    Pick = NextAreaOffset / AreaBytes;
    if (Pick == Skip)
      Pick = (Pick + 1) % NumAreas;
    NextAreaOffset += AreaBytes;
    if (NextAreaOffset >= Heap.sizeBytes())
      NextAreaOffset = 0;
  }
  LastAreaIndex = Pick;

  uint8_t *Start = Heap.base() + Pick * AreaBytes;
  uint8_t *End = std::min(Start + AreaBytes, Heap.limit());
  armWindow(Start, End);
}

void Compactor::armAreaForTest(uint8_t *Lo, uint8_t *Hi) {
  assert(!Armed.load(std::memory_order_relaxed) && "already armed");
  LastAreasScored = 0;
  LastAreaIndex = static_cast<size_t>(Lo - Heap.base()) /
                  (AreaBytes ? AreaBytes : Heap.sizeBytes());
  armWindow(Lo, Hi);
}

void Compactor::disarm() {
  Armed.store(false, std::memory_order_release);
  AreaStart.store(nullptr, std::memory_order_relaxed);
  AreaEnd.store(nullptr, std::memory_order_relaxed);
  SpinLockGuard Guard(SlotsLock);
  clearSlotsLocked();
}

//===----------------------------------------------------------------------===//
// Parallel evacuation
//===----------------------------------------------------------------------===//

namespace {

/// Runs \p Job on all pool participants, or inline when no pool.
void runJob(WorkerPool *Workers, const std::function<void(unsigned)> &Job) {
  if (Workers)
    Workers->runParallel(Job);
  else
    Job(0);
}

} // namespace

Compactor::Stats Compactor::evacuate(ThreadRegistry &Registry,
                                     WorkerPool *Workers, Sweeper *Sweep) {
  Stats Result;
  Result.AreasScored = LastAreasScored;
  uint8_t *Lo = AreaStart.load(std::memory_order_relaxed);
  uint8_t *Hi = AreaEnd.load(std::memory_order_relaxed);
  if (!Lo) {
    disarm();
    return Result;
  }

  // Evacuation targets must lie outside the area. The sweeper's
  // exclusion window keeps in-area ranges out of the free list for the
  // whole sweep generation; this withdraw stays as defense in depth
  // against ranges inserted before the window was latched.
  Heap.freeList().withdrawWithin(Lo, Hi);

  unsigned Participants = Workers ? Workers->numParticipants() : 1;

  // 1. Pin every area object referenced from a (conservatively scanned)
  //    thread stack: those slots cannot be updated. Mutators are
  //    partitioned across workers by an atomic cursor.
  std::vector<MutatorContext *> Mutators;
  Registry.forEach([&](MutatorContext &Ctx) { Mutators.push_back(&Ctx); });
  std::vector<std::vector<Object *>> PinnedPer(Participants);
  std::atomic<size_t> PinCursor{0};
  runJob(Workers, [&](unsigned W) {
    for (;;) {
      size_t I = PinCursor.fetch_add(1, std::memory_order_relaxed);
      if (I >= Mutators.size())
        break;
      Mutators[I]->withRoots([&](const std::vector<uintptr_t> &Roots) {
        for (uintptr_t Word : Roots) {
          if (!Heap.isPlausibleObject(Word))
            continue;
          uint8_t *P = reinterpret_cast<uint8_t *>(Word);
          if (P >= Lo && P < Hi)
            PinnedPer[W].push_back(reinterpret_cast<Object *>(P));
        }
      });
    }
  });
  std::unordered_set<Object *> Pinned;
  for (const auto &Part : PinnedPer)
    Pinned.insert(Part.begin(), Part.end());
  Result.PinnedObjects = Pinned.size();

  // 2. Choose targets for every live (marked) unpinned object in the
  //    area. Nothing is copied yet: the recorded slots still point at
  //    the old locations, including slots inside objects that will
  //    themselves move. The area is split into one contiguous sub-range
  //    per participant (a header belongs to exactly one sub-range) and
  //    each worker allocates shard-affine, so workers evacuate into
  //    "their" free-list shards instead of convoying on one lock.
  struct Move {
    Object *Old;
    Object *New;
  };
  std::vector<std::vector<Move>> MovesPer(Participants);
  std::vector<uint64_t> FailedPer(Participants, 0);
  size_t Span = static_cast<size_t>(Hi - Lo);
  size_t SubBytes = (Span / Participants + GranuleBytes - 1) &
                    ~(size_t{GranuleBytes} - 1);
  if (SubBytes == 0)
    SubBytes = GranuleBytes;
  size_t NumShards = Heap.freeList().numShards();
  runJob(Workers, [&](unsigned W) {
    uint8_t *SubLo = Lo + W * SubBytes;
    if (SubLo >= Hi)
      return;
    uint8_t *SubHi = W + 1 == Participants ? Hi : std::min(Hi, SubLo + SubBytes);
    size_t Preferred = (static_cast<size_t>(W) * NumShards) / Participants;
    Heap.markBits().forEachSetInRange(SubLo, SubHi, [&](uint8_t *Granule) {
      Object *Obj = reinterpret_cast<Object *>(Granule);
      assert(Heap.allocBits().test(Obj) && "marked non-object in evac area");
      if (Pinned.count(Obj))
        return true;
      if (FI && FI->shouldFail(FaultSite::CompactorTargetAlloc)) {
        ++FailedPer[W]; // Simulated exhaustion: the object stays put.
        return true;
      }
      // Objects straddling the area's end still move as a whole (their
      // header is inside).
      uint8_t *Target = Heap.freeList().allocate(Obj->sizeBytes(), Preferred);
      if (!Target) {
        ++FailedPer[W];
        return true;
      }
      if (Target >= Lo && Target < Hi) {
        // Must be impossible (area withdrawn + sweep exclusion window);
        // in release builds treat it as a failed move rather than
        // corrupt the heap. The range is lost until the next sweep.
        assert(false && "evacuation target inside the area");
        ++FailedPer[W];
        return true;
      }
      MovesPer[W].push_back({Obj, reinterpret_cast<Object *>(Target)});
      return true;
    });
  });

  std::vector<Move> Moves;
  std::unordered_map<Object *, Object *> Forwarding;
  size_t NumMoves = 0;
  for (const auto &Part : MovesPer)
    NumMoves += Part.size();
  Moves.reserve(NumMoves);
  Forwarding.reserve(NumMoves);
  // A moved object whose extent crosses Hi leaves a tail beyond the
  // area; step 5 must return it to the free list (at most one exists:
  // only the last object in the area can straddle out).
  uint8_t *MovedStraddleEnd = nullptr;
  for (unsigned W = 0; W < Participants; ++W) {
    Result.FailedObjects += FailedPer[W];
    for (const Move &M : MovesPer[W]) {
      Moves.push_back(M);
      Forwarding.emplace(M.Old, M.New);
      uint8_t *OldEnd = M.Old->end();
      if (OldEnd > Hi && OldEnd > MovedStraddleEnd)
        MovedStraddleEnd = OldEnd;
    }
  }

  // 3. Merge the per-thread slot records and fix them up in place,
  //    before any copy, so moving holders copy already-fixed slot
  //    values. Fixup is idempotent (same old value maps to the same new
  //    address), so duplicate records across chunks are harmless.
  std::vector<SlotRecord> AllSlots;
  {
    SpinLockGuard Guard(SlotsLock);
    size_t Total = OverflowSlots.size();
    uint32_t N = NumSlotBuffers.load(std::memory_order_relaxed);
    for (uint32_t I = 0; I < N; ++I)
      if (SlotBuffers[I])
        Total += SlotBuffers[I]->Records.size();
    AllSlots.reserve(Total);
    AllSlots.insert(AllSlots.end(), OverflowSlots.begin(),
                    OverflowSlots.end());
    for (uint32_t I = 0; I < N; ++I)
      if (SlotBuffers[I])
        AllSlots.insert(AllSlots.end(), SlotBuffers[I]->Records.begin(),
                        SlotBuffers[I]->Records.end());
  }
  Result.SlotRecords = AllSlots.size();
  std::atomic<size_t> SlotCursor{0};
  std::atomic<uint64_t> SlotsFixed{0};
  constexpr size_t SlotChunk = 1024;
  runJob(Workers, [&](unsigned) {
    uint64_t Fixed = 0;
    for (;;) {
      size_t Begin = SlotCursor.fetch_add(SlotChunk, std::memory_order_relaxed);
      if (Begin >= AllSlots.size())
        break;
      size_t End = std::min(Begin + SlotChunk, AllSlots.size());
      for (size_t I = Begin; I < End; ++I) {
        auto [Holder, Index] = AllSlots[I];
        if (!Heap.markBits().test(Holder))
          continue; // The holder died; its memory was already swept.
        Object *Value = Holder->loadRef(Index);
        auto It = Forwarding.find(Value);
        if (It == Forwarding.end())
          continue; // Null, rewritten, pinned, or failed-to-move.
        Holder->storeRefRaw(Index, It->second);
        ++Fixed;
      }
    }
    SlotsFixed.fetch_add(Fixed, std::memory_order_relaxed);
  });
  Result.SlotsFixed = SlotsFixed.load(std::memory_order_relaxed);

  // 4. Copy the objects and transfer their bitmap bits. Targets are
  //    disjoint freshly allocated ranges and the bit vectors' ops are
  //    atomic, so moves copy in parallel without coordination.
  std::atomic<size_t> CopyCursor{0};
  std::atomic<uint64_t> CopiedObjects{0}, CopiedBytes{0};
  constexpr size_t CopyChunk = 64;
  runJob(Workers, [&](unsigned) {
    uint64_t Objects = 0, Bytes = 0;
    for (;;) {
      size_t Begin = CopyCursor.fetch_add(CopyChunk, std::memory_order_relaxed);
      if (Begin >= Moves.size())
        break;
      size_t End = std::min(Begin + CopyChunk, Moves.size());
      for (size_t I = Begin; I < End; ++I) {
        Object *Old = Moves[I].Old, *New = Moves[I].New;
        uint32_t Size = Old->sizeBytes();
        std::memcpy(New, Old, Size);
        Heap.allocBits().set(New);
        Heap.markBits().set(New);
        Heap.allocBits().clear(Old);
        Heap.markBits().clear(Old);
        Bytes += Size;
        ++Objects;
      }
    }
    CopiedObjects.fetch_add(Objects, std::memory_order_relaxed);
    CopiedBytes.fetch_add(Bytes, std::memory_order_relaxed);
  });
  Result.EvacuatedObjects = CopiedObjects.load(std::memory_order_relaxed);
  Result.EvacuatedBytes = CopiedBytes.load(std::memory_order_relaxed);

  // 5. Rebuild the area's free space: everything except the objects
  //    that stayed (pinned or failed) is free now. A mini bitwise sweep
  //    over the area derives the maximal runs; a live object straddling
  //    in from before the area keeps its extent. Serial: it is one
  //    area's worth of bitmap, and the free-list inserts would all
  //    contend on the same shard anyway.
  uint8_t *Pos = Lo;
  if (uint8_t *PrevMarked = Heap.markBits().findPrevSet(Lo)) {
    uint8_t *PrevEnd = reinterpret_cast<Object *>(PrevMarked)->end();
    if (PrevEnd > Pos)
      Pos = PrevEnd;
  }
  while (Pos < Hi) {
    uint8_t *NextLive = Heap.markBits().findNextSet(Pos, Hi);
    uint8_t *RunEnd = NextLive ? NextLive : Hi;
    if (RunEnd > Pos) {
      Heap.allocBits().clearRange(Pos, RunEnd);
      // Same routing as sweep: small rebuilt runs go to the owning
      // shard's remote-free queue when the fast path is on.
      Heap.releaseRange(Pos, static_cast<size_t>(RunEnd - Pos));
    }
    if (!NextLive)
      break;
    Pos = reinterpret_cast<Object *>(NextLive)->end();
  }

  // 5b. A moved straddler's tail [Hi, old end) was live when the
  //     outside sweep passed it, so nobody else returns it. Add the
  //     pieces whose owning sweep chunks are already done; chunks the
  //     lazy sweep has not reached yet will re-derive the tail from the
  //     now-clear mark bit themselves (adding those here would
  //     double-insert the range).
  if (MovedStraddleEnd) {
    uint8_t *P = Hi;
    while (P < MovedStraddleEnd) {
      uint8_t *PieceEnd = MovedStraddleEnd;
      if (Sweep) {
        uint8_t *ChunkEnd =
            Heap.base() +
            ((static_cast<size_t>(P - Heap.base()) / Sweeper::ChunkBytes) + 1) *
                Sweeper::ChunkBytes;
        PieceEnd = std::min(PieceEnd, ChunkEnd);
      }
      if (!Sweep || !Sweep->sweepPendingAt(P))
        Heap.releaseRange(P, static_cast<size_t>(PieceEnd - P));
      P = PieceEnd;
    }
  }

  // Cooldown bookkeeping: conservative stack pins rarely clear within
  // one cycle, so a pinned-heavy area is skipped on the next arm.
  LastAreaPinnedHeavy = Result.PinnedObjects >= PinnedHeavyThreshold;

  disarm();
  return Result;
}
