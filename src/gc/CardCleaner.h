//===- CardCleaner.h - Dirty-card registration and cleaning -----*- C++ -*-===//
///
/// \file
/// Card cleaning (Sections 2.1 and 5.3): scanning dirty cards and
/// collecting roots for further tracing.
///
/// A cleaning pass follows the fence-free write-barrier protocol:
///   1. Register: scan the card table, record dirty cards in a side
///      list and clear their dirty indicators.
///   2. Force every mutator to execute a fence (ragged handshake), so
///      all reference stores performed before step 1 are visible.
///   3. Clean the registered cards: push every MARKED object whose
///      header lies on the card back onto the work packets for
///      retracing. (Objects are found via the mark bit vector, so a
///      marked object whose allocation bit is not yet published is still
///      re-queued; the tracer's deferral protocol handles its safety.)
///
/// Policy (Section 2.1): each card is cleaned at most once per pass,
/// cleaning is deferred while other tracing work exists, and the default
/// is a single concurrent pass (footnote 2: a second pass reduces pause
/// time further — configurable). The final stop-the-world phase runs one
/// more pass with the world stopped.
///
//===----------------------------------------------------------------------===//

#ifndef CGC_GC_CARDCLEANER_H
#define CGC_GC_CARDCLEANER_H

#include "heap/HeapSpace.h"
#include "support/FaultInjector.h"
#include "support/SpinLock.h"
#include "workpackets/TraceContext.h"

#include <atomic>
#include <cstdint>
#include <vector>

namespace cgc {

class GcObserver;
class MutatorContext;
class ThreadRegistry;

/// Coordinates card-cleaning passes across all tracing participants.
class CardCleaner {
public:
  /// \p FI (optional) arms the cleaner's fault-injection sites; they
  /// only ever fire during concurrent passes — the final stop-the-world
  /// pass must make progress unconditionally. \p Obs (optional)
  /// receives pass and slice events.
  CardCleaner(HeapSpace &Heap, ThreadRegistry &Registry,
              FaultInjector *FI = nullptr, GcObserver *Obs = nullptr)
      : Heap(Heap), Registry(Registry), FI(FI), Obs(Obs) {}

  /// Resets pass state for a new collection cycle allowing
  /// \p ConcurrentPasses concurrent passes.
  void beginCycle(unsigned ConcurrentPasses);

  /// Attempts to start the next concurrent pass: registers dirty cards
  /// and performs the mutator fence handshake. Returns true when a pass
  /// was started and cards are available to clean. Returns false when a
  /// pass is already active, the pass budget is exhausted, or no cards
  /// were dirty (an empty registration still consumes a pass).
  /// Never blocks on another registrar (try-lock), so spinning callers
  /// cannot stall the handshake.
  ///
  /// When the fence handshake times out (a mutator refused to
  /// cooperate), the pass is NOT started: the registered cards stay
  /// unpublished (no cleaner may scan them — the fence ordering is
  /// unproven) and pending, and later calls retry just the handshake.
  /// The cards are never lost: beginFinalPass() carries a pending
  /// registration over, and the world-stopped final pass needs no
  /// handshake.
  bool tryBeginConcurrentPass(MutatorContext *Self);

  /// Whether a registration is waiting on a timed-out fence handshake.
  bool fencePending() const {
    return PendingFence.load(std::memory_order_relaxed);
  }

  /// Registers remaining dirty cards with the world stopped (the final
  /// pass; no handshake needed, but the registrar fences for fidelity).
  /// Returns the number of cards registered.
  size_t beginFinalPass();

  /// Claims and cleans up to \p MaxCards registered cards, pushing their
  /// marked objects through \p Ctx. Returns cards cleaned (0 = pass
  /// drained or none active).
  size_t cleanSome(TraceContext &Ctx, size_t MaxCards);

  /// Whether every registered card of the current pass has been cleaned.
  bool currentPassDrained() const {
    return Cleaned.load(std::memory_order_acquire) ==
           RegisteredCount.load(std::memory_order_acquire);
  }

  /// Whether the concurrent phase owes no more card cleaning: all
  /// budgeted passes started and the last one drained.
  bool concurrentCleaningComplete() const {
    return PassesStarted.load(std::memory_order_acquire) >=
               PassBudget.load(std::memory_order_relaxed) &&
           currentPassDrained();
  }

  /// Cards registered but not yet cleaned (the "Cards Left" ingredient).
  size_t registeredNotCleaned() const {
    return RegisteredCount.load(std::memory_order_relaxed) -
           Cleaned.load(std::memory_order_relaxed);
  }

  uint64_t cleanedConcurrent() const {
    return CleanedConcurrent.load(std::memory_order_relaxed);
  }
  uint64_t cleanedFinal() const {
    return CleanedFinal.load(std::memory_order_relaxed);
  }
  /// Total cards registered over the cycle (concurrent + final).
  uint64_t totalRegistered() const {
    return TotalRegistered.load(std::memory_order_relaxed);
  }

private:
  /// Pushes every marked object starting on card \p Index for retracing.
  void cleanCard(TraceContext &Ctx, uint32_t Index);

  HeapSpace &Heap;
  ThreadRegistry &Registry;
  FaultInjector *FI;
  GcObserver *Obs;

  SpinLock RegistrarLock;
  std::vector<uint32_t> Registered;
  std::atomic<size_t> RegisteredCount{0};
  std::atomic<size_t> NextIndex{0};
  std::atomic<size_t> Cleaned{0};

  /// Latched by beginCycle() (under the collect lock) and read without
  /// it by the background/watchdog completeness probes; relaxed is
  /// enough — a transiently stale budget only delays one probe, the
  /// finish path re-checks under the collect lock.
  std::atomic<unsigned> PassBudget{1};
  std::atomic<unsigned> PassesStarted{0};
  std::atomic<bool> FinalMode{false};
  /// Registration completed but its fence handshake timed out; the pass
  /// is unpublished (RegisteredCount still 0) and not counted against
  /// the budget until a retried handshake succeeds.
  std::atomic<bool> PendingFence{false};

  std::atomic<uint64_t> CleanedConcurrent{0};
  std::atomic<uint64_t> CleanedFinal{0};
  std::atomic<uint64_t> TotalRegistered{0};
};

} // namespace cgc

#endif // CGC_GC_CARDCLEANER_H
