//===- GcStats.cpp - Per-cycle collection statistics -------------------------//

#include "gc/GcStats.h"

#include "support/TablePrinter.h"

using namespace cgc;

const char *cgc::escalationRungName(EscalationRung Rung) {
  switch (Rung) {
  case EscalationRung::RefillRetry:
    return "refill-retry";
  case EscalationRung::SweepFinish:
    return "sweep-finish";
  case EscalationRung::StwFinish:
    return "stw-finish";
  case EscalationRung::FullStw:
    return "full-stw";
  case EscalationRung::AllocationFailure:
    return "allocation-failure";
  case EscalationRung::NumRungs:
    break;
  }
  return "unknown";
}

EscalationCounts GcStatsCollector::escalations() const {
  EscalationCounts Counts;
  for (unsigned I = 0; I < Counts.Rungs.size(); ++I)
    Counts.Rungs[I] = Escalations[I].load(std::memory_order_relaxed);
  Counts.WatchdogTrips = WatchdogTripsV.load(std::memory_order_relaxed);
  Counts.HandshakeAborts = HandshakeAbortsV.load(std::memory_order_relaxed);
  return Counts;
}

void GcStatsCollector::printEscalations(std::FILE *Out) const {
  EscalationCounts Counts = escalations();
  TablePrinter Table({"degradation rung", "count"});
  for (unsigned I = 0; I < Counts.Rungs.size(); ++I)
    Table.addRow({escalationRungName(static_cast<EscalationRung>(I)),
                  TablePrinter::num(Counts.Rungs[I])});
  Table.addRow({"watchdog-trips", TablePrinter::num(Counts.WatchdogTrips)});
  Table.addRow(
      {"handshake-aborts", TablePrinter::num(Counts.HandshakeAborts)});
  Table.print(Out);
}

GcAggregates GcAggregates::compute(const std::vector<CycleRecord> &Records) {
  GcAggregates A;
  A.NumCycles = Records.size();
  if (Records.empty())
    return A;
  for (const CycleRecord &R : Records) {
    double MarkMs = R.FinalCardCleanMs + R.StackRescanMs + R.FinalMarkMs;
    A.AvgPauseMs += R.PauseMs;
    A.AvgMarkMs += MarkMs;
    A.AvgSweepMs += R.SweepMs;
    A.AvgLiveBytesAfter += static_cast<double>(R.LiveBytesAfter);
    A.AvgCardsCleanedFinal += static_cast<double>(R.CardsCleanedFinal);
    A.AvgCardsCleanedConcurrent +=
        static_cast<double>(R.CardsCleanedConcurrent);
    if (R.PauseMs > A.MaxPauseMs)
      A.MaxPauseMs = R.PauseMs;
    if (MarkMs > A.MaxMarkMs)
      A.MaxMarkMs = MarkMs;
  }
  double N = static_cast<double>(Records.size());
  A.AvgPauseMs /= N;
  A.AvgMarkMs /= N;
  A.AvgSweepMs /= N;
  A.AvgLiveBytesAfter /= N;
  A.AvgCardsCleanedFinal /= N;
  A.AvgCardsCleanedConcurrent /= N;
  return A;
}
