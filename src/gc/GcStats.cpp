//===- GcStats.cpp - Per-cycle collection statistics -------------------------//

#include "gc/GcStats.h"

using namespace cgc;

GcAggregates GcAggregates::compute(const std::vector<CycleRecord> &Records) {
  GcAggregates A;
  A.NumCycles = Records.size();
  if (Records.empty())
    return A;
  for (const CycleRecord &R : Records) {
    double MarkMs = R.FinalCardCleanMs + R.StackRescanMs + R.FinalMarkMs;
    A.AvgPauseMs += R.PauseMs;
    A.AvgMarkMs += MarkMs;
    A.AvgSweepMs += R.SweepMs;
    A.AvgLiveBytesAfter += static_cast<double>(R.LiveBytesAfter);
    A.AvgCardsCleanedFinal += static_cast<double>(R.CardsCleanedFinal);
    A.AvgCardsCleanedConcurrent +=
        static_cast<double>(R.CardsCleanedConcurrent);
    if (R.PauseMs > A.MaxPauseMs)
      A.MaxPauseMs = R.PauseMs;
    if (MarkMs > A.MaxMarkMs)
      A.MaxMarkMs = MarkMs;
  }
  double N = static_cast<double>(Records.size());
  A.AvgPauseMs /= N;
  A.AvgMarkMs /= N;
  A.AvgSweepMs /= N;
  A.AvgLiveBytesAfter /= N;
  A.AvgCardsCleanedFinal /= N;
  A.AvgCardsCleanedConcurrent /= N;
  return A;
}
