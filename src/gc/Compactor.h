//===- Compactor.h - Parallel fragmentation-guided compaction ---*- C++ -*-===//
///
/// \file
/// Incremental compaction (Section 2.3): full compaction of a large
/// heap cannot fit in a short pause, but one area per cycle can be
/// evacuated while the world is already stopped. Following the paper:
///
///  - an area is chosen before the start of the (concurrent) mark
///    phase;
///  - all pointers into the area are tracked during marking, both in
///    the concurrent and the stop-the-world phases (the tracer calls
///    recordSlot for every reference it scans that lands in the area);
///  - after sweep, the live objects are evacuated out of the area and
///    the recorded references are fixed up.
///
/// Objects referenced from thread stacks are pinned in place: the
/// stacks are scanned conservatively, so their slots cannot be updated
/// (the Lang-Dupont heritage the paper cites [24]).
///
/// Area selection is fragmentation-guided, like the production system
/// the paper describes: candidate areas are scored from the sharded
/// free list's per-window statistics (free bytes, range count, largest
/// range — ShardedFreeList::statsWithin) and the most fragmented area
/// wins. The scoring and argmax are pure static functions, unit-testable
/// without a heap. When no candidate shows reclaimable fragmentation
/// (e.g. the free list was cleared for a lazy sweep generation) the
/// selector falls back to the old blind rotation. An area whose last
/// evacuation was pinned-heavy is skipped for one cycle: conservative
/// stack roots usually persist across adjacent cycles, so immediately
/// re-evacuating around the same pins wastes the pause budget.
///
/// Evacuation itself is parallel on the collector's WorkerPool: the pin
/// scan, target selection, slot fixup and object copy are each
/// partitioned across the workers (serial when no pool is supplied).
/// Target allocation is shard-affine — worker W allocates from free-list
/// shard floor(W * numShards / participants) first — so workers evacuate
/// into "their" shards and do not convoy on one shard lock.
///
/// recordSlot, the tracer hot path, is lock-free: each recording thread
/// appends to its own slot vector (discovered via a thread-local cache
/// keyed by a process-unique compactor id, the same idiom as
/// GcObserver's per-thread event rings) and evacuate merges the vectors
/// once, inside the pause.
///
//===----------------------------------------------------------------------===//

#ifndef CGC_GC_COMPACTOR_H
#define CGC_GC_COMPACTOR_H

#include "heap/HeapSpace.h"
#include "support/Annotations.h"
#include "support/FaultInjector.h"
#include "support/SpinLock.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

namespace cgc {

class Sweeper;
class ThreadRegistry;
class WorkerPool;

/// Evacuates one heap area per collection cycle.
class Compactor {
public:
  /// Per-thread recorded-slot storage; see recordSlot.
  using SlotRecord = std::pair<Object *, uint32_t>;

  /// An evacuation that pins at least this many objects marks the area
  /// pinned-heavy: the selector skips it on the next arm (conservative
  /// stack roots rarely clear within one cycle).
  static constexpr uint64_t PinnedHeavyThreshold = 4;

  /// Cap on distinct recording threads with their own slot vector;
  /// threads beyond the cap fall back to a shared locked vector.
  static constexpr uint32_t MaxSlotBuffers = 64;

  /// \p FI (optional) arms the failed-move injection site at evacuation
  /// target allocation.
  Compactor(HeapSpace &Heap, size_t AreaBytes, FaultInjector *FI = nullptr);

  /// Selects the next evacuation area (called at cycle initialization,
  /// before any marking): scores every AreaBytes-aligned candidate
  /// window from the free list's fragmentation statistics and arms the
  /// best one (rotation fallback when nothing is scoreable).
  void armForCycle();

  /// Arms exactly [Lo, Hi) regardless of policy (tests and benches that
  /// exercise the evacuation mechanics need a deterministic area).
  void armAreaForTest(uint8_t *Lo, uint8_t *Hi);

  /// Drops the area without evacuating (cycle ended abnormally).
  void disarm();

  /// Whether an evacuation area is active this cycle.
  bool armed() const { return Armed.load(std::memory_order_acquire); }

  /// Hot-path filter used by the tracer: true when tracking is on and
  /// \p Addr lies in the evacuation area.
  bool inEvacArea(const void *Addr) const {
    // AreaStart stays null while disarmed, so the two compares suffice.
    const uint8_t *P = static_cast<const uint8_t *>(Addr);
    return P >= AreaStart.load(std::memory_order_relaxed) &&
           P < AreaEnd.load(std::memory_order_relaxed);
  }

  /// Records that slot \p Index of \p Holder held a reference into the
  /// area when the tracer scanned it. Thread-safe and lock-free on the
  /// steady state (own-thread vector append); duplicates are fine
  /// (fix-up re-validates every slot).
  void recordSlot(Object *Holder, uint32_t Index) {
    if (std::vector<SlotRecord> *Buf = threadSlotBuffer()) {
      Buf->emplace_back(Holder, Index);
      return;
    }
    // Buffer table full: shared overflow path, correctness over speed.
    SpinLockGuard Guard(SlotsLock);
    OverflowSlots.emplace_back(Holder, Index);
  }

  /// Outcome of one evacuation.
  struct Stats {
    uint64_t AreasScored = 0; ///< Candidates scored by the last arm.
    uint64_t EvacuatedObjects = 0;
    uint64_t EvacuatedBytes = 0;
    uint64_t PinnedObjects = 0;
    uint64_t FailedObjects = 0; ///< No space outside the area.
    uint64_t SlotRecords = 0;
    uint64_t SlotsFixed = 0;
  };

  /// Evacuates the armed area. Must run with the world stopped and no
  /// sweeper active, after the sweep made target space available (the
  /// free list is the source of target memory and the mark bits
  /// identify the area's live objects). Parallel on \p Workers when
  /// supplied, serial otherwise. \p Sweep (optional) tells the rebuild
  /// which straddler-tail chunks the lazy sweep still owns. Disarms
  /// afterwards.
  Stats evacuate(ThreadRegistry &Registry, WorkerPool *Workers = nullptr,
                 Sweeper *Sweep = nullptr);

  /// The area armed for this cycle (tests).
  std::pair<uint8_t *, uint8_t *> area() const {
    return {AreaStart.load(std::memory_order_relaxed),
            AreaEnd.load(std::memory_order_relaxed)};
  }

  // --- Area-selection policy, pure and unit-testable in isolation. ---

  /// Fragmentation score of one candidate area: higher = more worth
  /// evacuating. Strictly increasing in FreeBytes and RangeCount,
  /// strictly decreasing in LargestRange (a window whose free space is
  /// one big range needs no compaction) and in live bytes
  /// (AreaBytes - FreeBytes: denser areas cost more copying per byte
  /// recovered).
  static double fragmentationScore(const FreeRangeStats &F, size_t AreaBytes);

  /// Index of the best-scoring candidate, excluding \p SkipIndex
  /// (SIZE_MAX = exclude nothing). Candidates without any tracked free
  /// range are not scoreable; returns SIZE_MAX when no candidate is
  /// (callers fall back to rotation).
  static size_t selectArea(const std::vector<FreeRangeStats> &Candidates,
                           size_t AreaBytes, size_t SkipIndex);

private:
  struct SlotBuffer {
    uint64_t OwnerThread = 0;
    std::vector<SlotRecord> Records;
  };

  /// This thread's slot vector, creating/caching it on first use;
  /// nullptr when the buffer table is full (caller takes the overflow
  /// path).
  std::vector<SlotRecord> *threadSlotBuffer();
  std::vector<SlotRecord> *createSlotBufferSlow();

  /// Common arming tail: clears slot storage, publishes [Lo, Hi).
  void armWindow(uint8_t *Lo, uint8_t *Hi);
  void clearSlotsLocked() CGC_REQUIRES(SlotsLock);

  HeapSpace &Heap;
  const size_t AreaBytes;
  FaultInjector *FI;
  /// Process-unique id keying the thread-local slot-buffer cache (two
  /// Compactor instances never alias each other's cached pointers).
  const uint64_t CompactorId;

  /// Single-threaded state, touched only by the collector master thread
  /// (arm at cycle init, evacuate in the pause).
  size_t NextAreaOffset = 0;
  size_t LastAreaIndex = SIZE_MAX;
  bool LastAreaPinnedHeavy = false;
  uint64_t LastAreasScored = 0;

  CGC_ATOMIC_DOC("relaxed bounds for the tracer's inEvacArea filter; "
                 "null while disarmed, published before Armed's release")
  std::atomic<uint8_t *> AreaStart{nullptr};
  CGC_ATOMIC_DOC("relaxed bounds for the tracer's inEvacArea filter")
  std::atomic<uint8_t *> AreaEnd{nullptr};
  CGC_ATOMIC_DOC("release on arm/disarm, acquire in armed(); orders the "
                 "area bounds and cleared slot storage before observers")
  std::atomic<bool> Armed{false};

  CGC_ATOMIC_DOC("next free SlotBuffers index; monotonic, bounded by "
                 "MaxSlotBuffers; writes under SlotsLock, relaxed reads")
  std::atomic<uint32_t> NumSlotBuffers{0};
  mutable SpinLock SlotsLock;
  /// Buffer table guarded by SlotsLock for creation/merge/clear; the
  /// owning thread appends through its cached pointer without the lock
  /// (same publication discipline as GcObserver's ring table: creation
  /// happens-before any append, merges run at the pause when recording
  /// threads are quiescent).
  std::unique_ptr<SlotBuffer> SlotBuffers[MaxSlotBuffers]
      CGC_GUARDED_BY(SlotsLock);
  std::vector<SlotRecord> OverflowSlots CGC_GUARDED_BY(SlotsLock);
};

} // namespace cgc

#endif // CGC_GC_COMPACTOR_H
