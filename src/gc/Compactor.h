//===- Compactor.h - Incremental (area) compaction --------------*- C++ -*-===//
///
/// \file
/// Incremental compaction (Section 2.3): full compaction of a large
/// heap cannot fit in a short pause, but one area per cycle can be
/// evacuated while the world is already stopped. Following the paper:
///
///  - an area is chosen before the start of the (concurrent) mark
///    phase;
///  - all pointers into the area are tracked during marking, both in
///    the concurrent and the stop-the-world phases (the tracer calls
///    recordSlot for every reference it scans that lands in the area);
///  - after sweep, the live objects are evacuated out of the area and
///    the recorded references are fixed up.
///
/// Objects referenced from thread stacks are pinned in place: the
/// stacks are scanned conservatively, so their slots cannot be updated
/// (the Lang-Dupont heritage the paper cites [24]).
///
/// Area selection rotates through the heap (the production system
/// picks fragmented areas; rotation keeps this reproduction simple and
/// still bounds per-pause compaction work).
///
//===----------------------------------------------------------------------===//

#ifndef CGC_GC_COMPACTOR_H
#define CGC_GC_COMPACTOR_H

#include "heap/HeapSpace.h"
#include "support/SpinLock.h"

#include <atomic>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace cgc {

class ThreadRegistry;

/// Evacuates one heap area per collection cycle.
class Compactor {
public:
  Compactor(HeapSpace &Heap, size_t AreaBytes)
      : Heap(Heap), AreaBytes(AreaBytes) {}

  /// Selects the next evacuation area (called at cycle initialization,
  /// before any marking).
  void armForCycle();

  /// Drops the area without evacuating (cycle ended abnormally).
  void disarm();

  /// Whether an evacuation area is active this cycle.
  bool armed() const { return Armed.load(std::memory_order_acquire); }

  /// Hot-path filter used by the tracer: true when tracking is on and
  /// \p Addr lies in the evacuation area.
  bool inEvacArea(const void *Addr) const {
    // AreaStart stays null while disarmed, so the two compares suffice.
    const uint8_t *P = static_cast<const uint8_t *>(Addr);
    return P >= AreaStart.load(std::memory_order_relaxed) &&
           P < AreaEnd.load(std::memory_order_relaxed);
  }

  /// Records that slot \p Index of \p Holder held a reference into the
  /// area when the tracer scanned it. Thread-safe; duplicates are fine
  /// (fix-up re-validates every slot).
  void recordSlot(Object *Holder, uint32_t Index) {
    SpinLockGuard Guard(SlotsLock);
    Slots.emplace_back(Holder, Index);
  }

  /// Outcome of one evacuation.
  struct Stats {
    uint64_t EvacuatedObjects = 0;
    uint64_t EvacuatedBytes = 0;
    uint64_t PinnedObjects = 0;
    uint64_t FailedObjects = 0; ///< No space outside the area.
    uint64_t SlotRecords = 0;
    uint64_t SlotsFixed = 0;
  };

  /// Evacuates the armed area. Must run with the world stopped, after
  /// the sweep (the free list is the source of target memory and the
  /// mark bits identify the area's live objects). Disarms afterwards.
  Stats evacuate(ThreadRegistry &Registry);

  /// The area armed for this cycle (tests).
  std::pair<uint8_t *, uint8_t *> area() const {
    return {AreaStart.load(std::memory_order_relaxed),
            AreaEnd.load(std::memory_order_relaxed)};
  }

private:
  HeapSpace &Heap;
  const size_t AreaBytes;
  size_t NextAreaOffset = 0;

  std::atomic<uint8_t *> AreaStart{nullptr};
  std::atomic<uint8_t *> AreaEnd{nullptr};
  std::atomic<bool> Armed{false};

  SpinLock SlotsLock;
  std::vector<std::pair<Object *, uint32_t>> Slots;
};

} // namespace cgc

#endif // CGC_GC_COMPACTOR_H
