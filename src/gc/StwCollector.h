//===- StwCollector.h - Baseline parallel stop-the-world GC -----*- C++ -*-===//
///
/// \file
/// The paper's baseline: the mature parallel stop-the-world mark-sweep
/// collector. A cycle runs entirely inside one pause: stop all threads,
/// scan every stack, drain the marking in parallel, bitwise-sweep in
/// parallel. (This reproduction uses work packets for the parallel STW
/// marking too — the paper's conclusion proposes exactly that; the
/// traditional stealing-mark-stack balancer is kept as an ablation in
/// StealingMarker.)
///
//===----------------------------------------------------------------------===//

#ifndef CGC_GC_STWCOLLECTOR_H
#define CGC_GC_STWCOLLECTOR_H

#include "gc/CollectorBase.h"

namespace cgc {

/// Parallel stop-the-world mark-sweep collector.
class StwCollector : public CollectorBase {
public:
  explicit StwCollector(GcCore &Core) : CollectorBase(Core) {}

  void onAllocationSlowPath(MutatorContext &Ctx, size_t Bytes) override;
  void collectNow(MutatorContext *Ctx) override;
};

} // namespace cgc

#endif // CGC_GC_STWCOLLECTOR_H
