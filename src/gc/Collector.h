//===- Collector.h - Abstract collector interface ---------------*- C++ -*-===//
///
/// \file
/// The interface the runtime's allocation paths program against. Two
/// implementations exist: StwCollector (the paper's baseline parallel
/// stop-the-world mark-sweep) and ConcurrentCollector (the paper's
/// parallel incremental mostly-concurrent collector).
///
//===----------------------------------------------------------------------===//

#ifndef CGC_GC_COLLECTOR_H
#define CGC_GC_COLLECTOR_H

#include "support/Annotations.h"

#include <cstddef>

namespace cgc {

class MutatorContext;

/// Abstract collector driven by the runtime's allocation slow paths.
class Collector {
public:
  virtual ~Collector();

  /// Called on every allocation-cache refill and large-object allocation
  /// BEFORE memory is taken, with the number of bytes about to be
  /// allocated. This is where kickoff checks and incremental tracing
  /// increments happen (Section 3).
  CGC_SAFEPOINT virtual void onAllocationSlowPath(MutatorContext &Ctx,
                                                  size_t Bytes) = 0;

  /// Allocation failed: run (or finish) a full collection cycle.
  /// Collapses onto an already-running collection when one completes in
  /// the meantime. \p Ctx may be null for non-mutator callers.
  CGC_SAFEPOINT virtual void collectNow(MutatorContext *Ctx) = 0;

  /// Whether the concurrent tracing phase is currently active.
  virtual bool concurrentPhaseActive() const { return false; }

  /// Stops helper threads; must be called before tearing down GcCore.
  virtual void shutdown() {}
};

} // namespace cgc

#endif // CGC_GC_COLLECTOR_H
