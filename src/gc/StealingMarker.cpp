//===- StealingMarker.cpp - Traditional mark-stack load balancer ---------------//

#include "gc/StealingMarker.h"

#include "gc/WorkerPool.h"

#include <cassert>
#include <mutex>
#include <thread>

using namespace cgc;

StealingMarker::StealingMarker(HeapSpace &Heap, unsigned NumWorkers,
                               FaultInjector *FI)
    : Heap(Heap), FI(FI) {
  assert(NumWorkers > 0 && "need at least one marker");
  States.reserve(NumWorkers);
  for (unsigned I = 0; I < NumWorkers; ++I)
    States.push_back(std::make_unique<WorkerState>());
}

void StealingMarker::addRoot(Object *Obj) {
  if (!Heap.markBits().testAndSet(Obj))
    return;
  // Round-robin the roots over the workers' stealable queues.
  static_cast<void>(SyncOps.fetch_add(1, std::memory_order_relaxed));
  WorkerState &W = *States[Obj->sizeBytes() % States.size()];
  SpinLockGuard Guard(W.QueueLock);
  W.Stealable.push_back(Obj);
}

void StealingMarker::pushWork(WorkerState &W, Object *Obj) {
  if (W.Private.size() < PrivateTarget) {
    W.Private.push_back(Obj);
    return;
  }
  // Expose a batch of the excess for stealing (Endo-style shared queue).
  SpinLockGuard Guard(W.QueueLock);
  SyncOps.fetch_add(1, std::memory_order_relaxed);
  W.Stealable.push_back(Obj);
  for (size_t I = 0; I < ExposeBatch && W.Private.size() > PrivateTarget / 2;
       ++I) {
    W.Stealable.push_back(W.Private.back());
    W.Private.pop_back();
  }
}

bool StealingMarker::stealFor(unsigned Index) {
  WorkerState &Self = *States[Index];
  unsigned N = static_cast<unsigned>(States.size());
  if (FI)
    FI->maybePerturb(FaultSite::MarkerSteal);
  for (unsigned Offset = 1; Offset <= N; ++Offset) {
    WorkerState &Victim = *States[(Index + Offset) % N];
    SpinLockGuard Guard(Victim.QueueLock);
    SyncOps.fetch_add(1, std::memory_order_relaxed);
    if (Victim.Stealable.empty())
      continue;
    // Take half the victim's exposed work.
    size_t Take = (Victim.Stealable.size() + 1) / 2;
    for (size_t I = 0; I < Take; ++I) {
      Self.Private.push_back(Victim.Stealable.back());
      Victim.Stealable.pop_back();
    }
    Steals.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  return false;
}

void StealingMarker::workerMark(unsigned Index) {
  WorkerState &W = *States[Index];
  uint64_t Traced = 0;
  for (;;) {
    if (W.Private.empty()) {
      // Pull back own exposed work first, then steal.
      {
        SpinLockGuard Guard(W.QueueLock);
        SyncOps.fetch_add(1, std::memory_order_relaxed);
        while (!W.Stealable.empty()) {
          W.Private.push_back(W.Stealable.back());
          W.Stealable.pop_back();
        }
      }
      if (W.Private.empty() && !stealFor(Index)) {
        // Termination protocol: declare hunger; finish when everyone is
        // hungry and all queues are empty.
        W.Hungry.store(true, std::memory_order_release);
        NumHungry.fetch_add(1, std::memory_order_acq_rel);
        bool Done = false;
        while (W.Private.empty()) {
          if (NumHungry.load(std::memory_order_acquire) == States.size()) {
            bool AnyWork = false;
            for (auto &S : States) {
              SpinLockGuard Guard(S->QueueLock);
              if (!S->Stealable.empty())
                AnyWork = true;
            }
            if (!AnyWork) {
              Done = true;
              break;
            }
          }
          if (stealFor(Index))
            break;
          std::this_thread::yield();
        }
        if (Done)
          break; // Stay counted hungry: exited workers must keep the
                 // all-hungry condition satisfiable for the others.
        NumHungry.fetch_sub(1, std::memory_order_acq_rel);
        W.Hungry.store(false, std::memory_order_release);
        continue;
      }
    }
    Object *Obj = W.Private.back();
    W.Private.pop_back();
    for (unsigned I = 0, N = Obj->numRefs(); I < N; ++I) {
      Object *Child = Obj->loadRef(I);
      if (Child && Heap.markBits().testAndSet(Child))
        pushWork(W, Child);
    }
    Traced += Obj->sizeBytes();
  }
  TracedBytes.fetch_add(Traced, std::memory_order_relaxed);
}

uint64_t StealingMarker::markParallel(WorkerPool &Workers) {
  assert(Workers.numParticipants() == States.size() &&
         "worker count mismatch");
  TracedBytes.store(0, std::memory_order_relaxed);
  Workers.runParallel([this](unsigned Index) { workerMark(Index); });
  return TracedBytes.load(std::memory_order_relaxed);
}
