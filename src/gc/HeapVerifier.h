//===- HeapVerifier.h - Reachability and invariant checks -------*- C++ -*-===//
///
/// \file
/// Heap invariant checker used by tests and (optionally) inside every
/// final pause. Computes the reachable set from every thread's roots and
/// checks:
///  - every reachable object lies in the heap, is granule aligned, has a
///    published allocation bit and a sane header;
///  - (post-mark) every reachable object is marked;
///  - free-list ranges carry no allocation bits and never overlap
///    reachable objects.
///
/// Must run while the world is quiescent (inside a pause, or in
/// single-threaded tests).
///
//===----------------------------------------------------------------------===//

#ifndef CGC_GC_HEAPVERIFIER_H
#define CGC_GC_HEAPVERIFIER_H

#include "heap/HeapSpace.h"

#include <cstdint>
#include <string>

namespace cgc {

class ThreadRegistry;

/// Outcome of a verification run.
struct VerifyResult {
  bool Ok = true;
  std::string Error;
  uint64_t ReachableObjects = 0;
  uint64_t ReachableBytes = 0;
};

/// Stateless verifier over a quiescent heap.
class HeapVerifier {
public:
  explicit HeapVerifier(HeapSpace &Heap) : Heap(Heap) {}

  /// Full check from all roots. \p CheckMarks requires every reachable
  /// object to be marked (valid between mark completion and the next
  /// cycle's initialization).
  VerifyResult verify(ThreadRegistry &Registry, bool CheckMarks);

private:
  bool checkObject(const Object *Obj, VerifyResult &Result) const;

  HeapSpace &Heap;
};

} // namespace cgc

#endif // CGC_GC_HEAPVERIFIER_H
