//===- Pacer.cpp - Kickoff and progress formulas ------------------------------//

#include "gc/Pacer.h"

#include "observe/Observe.h"

#include <algorithm>

using namespace cgc;

Pacer::Pacer(const GcOptions &Options, size_t HeapBytes, GcObserver *Obs)
    : K0(Options.TracingRate), Kmax(Options.kmax()), C(Options.CorrectiveC),
      KickoffHeadroom(Options.KickoffHeadroom > 0 ? Options.KickoffHeadroom
                                                  : 1.0),
      Obs(Obs),
      LEst(Options.SeedLFraction * static_cast<double>(HeapBytes),
           Options.SmoothingAlpha),
      MEst(Options.SeedMFraction * static_cast<double>(HeapBytes),
           Options.SmoothingAlpha),
      BestEst(0.0, Options.SmoothingAlpha) {}

size_t Pacer::kickoffThresholdBytes() const {
  SpinLockGuard Guard(Lock);
  double Threshold = (LEst.value() + MEst.value()) / K0 * KickoffHeadroom;
  return Threshold <= 0 ? 0 : static_cast<size_t>(Threshold);
}

double Pacer::currentRate(uint64_t TracedBytes, uint64_t FreeBytes) const {
  double L, M, Best;
  {
    SpinLockGuard Guard(Lock);
    L = LEst.value();
    M = MEst.value();
    Best = BestEst.value();
  }
  double F = static_cast<double>(std::max<uint64_t>(FreeBytes, 1));
  double K = (M + L - static_cast<double>(TracedBytes)) / F;
  // Negative numerator: L or M were underestimated; use Kmax.
  if (K < 0)
    K = Kmax;
  // Background threads may already be covering the schedule.
  K -= Best;
  if (K <= 0)
    return 0.0;
  // Behind schedule: apply the corrective term.
  if (K > K0)
    K = K + (K - K0) * C;
  return std::min(K, Kmax);
}

void Pacer::noteAllocation(size_t Bytes) {
  uint64_t Total =
      WindowAllocated.fetch_add(Bytes, std::memory_order_relaxed) + Bytes;
  if (Total < WindowBytes)
    return;
  // Close the window: compute B = background traced / allocated and fold
  // it into Best. Racy double-closing only produces an extra (harmless)
  // sample.
  uint64_t Allocated = WindowAllocated.exchange(0, std::memory_order_relaxed);
  uint64_t BgTraced = WindowBgTraced.exchange(0, std::memory_order_relaxed);
  if (Allocated == 0)
    return;
  CGC_OBS_EVENT_P(Obs, PacerWindow, BgTraced, Allocated);
  double B = static_cast<double>(BgTraced) / static_cast<double>(Allocated);
  SpinLockGuard Guard(Lock);
  BestEst.addSample(B);
}

void Pacer::noteBackgroundTrace(size_t Bytes) {
  WindowBgTraced.fetch_add(Bytes, std::memory_order_relaxed);
}

void Pacer::endCycle(uint64_t ActualTracedBytes,
                     uint64_t ActualDirtyCardBytes) {
  SpinLockGuard Guard(Lock);
  LEst.addSample(static_cast<double>(ActualTracedBytes));
  MEst.addSample(static_cast<double>(ActualDirtyCardBytes));
}

double Pacer::estimateL() const {
  SpinLockGuard Guard(Lock);
  return LEst.value();
}

double Pacer::estimateM() const {
  SpinLockGuard Guard(Lock);
  return MEst.value();
}

double Pacer::estimateBest() const {
  SpinLockGuard Guard(Lock);
  return BestEst.value();
}
