//===- CollectorBase.h - Shared stop-the-world machinery --------*- C++ -*-===//
///
/// \file
/// Machinery shared by both collectors: acquiring the collection lock
/// while staying responsive to safepoints, cycle initialization, the
/// fully parallel stop-the-world completion (final card cleaning, stack
/// rescans, marking drain, bitwise sweep — Section 2.2), and cycle
/// record bookkeeping.
///
//===----------------------------------------------------------------------===//

#ifndef CGC_GC_COLLECTORBASE_H
#define CGC_GC_COLLECTORBASE_H

#include "gc/Collector.h"
#include "gc/GcCore.h"

namespace cgc {

/// Base class implementing the phases both collectors share.
class CollectorBase : public Collector {
public:
  explicit CollectorBase(GcCore &Core) : C(Core) {}

protected:
  /// Acquires the collection lock, polling (and possibly parking) while
  /// waiting so a concurrent stop-the-world can proceed. Returns false
  /// when a full cycle completed while waiting (the caller's reason to
  /// collect is gone).
  bool acquireCollectLock(MutatorContext *Ctx, uint64_t ObservedCompleted);

  /// Cycle initialization (Section 2.1): completes any pending lazy
  /// sweep, clears mark bits and the card table, resets the tracer and
  /// cleaner, and bumps the cycle number. Caller holds the collect lock.
  void initializeCycle(unsigned ConcurrentCleaningPasses);

  /// Conservatively scans every attached thread's roots into \p Ctx's
  /// packets and stamps their StackScanCycle.
  void scanAllStacks(TraceContext &Ctx);

  /// Runs the parallel final marking with the world stopped: repeated
  /// final card-cleaning passes (overflows re-dirty cards, so the loop
  /// runs until no dirty card remains) interleaved with packet draining.
  /// Accumulates times into \p Record.
  void parallelFinalMark(CycleRecord &Record);

  /// Retires every thread's allocation cache and sweeps (eagerly in
  /// parallel, or arms lazy sweep per options). Fills the sweep/live
  /// fields of \p Record.
  void sweepWorld(CycleRecord &Record);

  /// One parallel drain step used by parallelFinalMark.
  void drainAllPackets();

  /// A complete collection cycle inside a single pause (the baseline
  /// collector's cycle; also the degenerate cycle the concurrent
  /// collector runs when an allocation fails before kickoff). Caller
  /// holds the collect lock.
  void runFullStwCycle(MutatorContext *Ctx);

  /// Feeds a finished cycle's record into the observability layer:
  /// pause histograms (total pause and its decomposition) and the
  /// per-cycle gauges (K actual vs. target, Best, pool occupancy,
  /// floating garbage). No-op when Observe is off.
  void recordCycleObservability(const CycleRecord &Record);

  GcCore &C;
};

} // namespace cgc

#endif // CGC_GC_COLLECTORBASE_H
