//===- ConcurrentCollector.cpp - The paper's CGC -------------------------------//

#include "gc/ConcurrentCollector.h"

#include "support/Timing.h"

#include <cassert>
#include <chrono>

using namespace cgc;

ConcurrentCollector::ConcurrentCollector(GcCore &Core)
    : CollectorBase(Core), LastPauseEndNs(nowNanos()) {
  BgThreads.reserve(C.Options.BackgroundThreads);
  for (unsigned I = 0; I < C.Options.BackgroundThreads; ++I)
    BgThreads.emplace_back([this] { backgroundLoop(); });
  if (C.Options.CycleWatchdog)
    Watchdog = std::thread([this] { watchdogLoop(); });
}

ConcurrentCollector::~ConcurrentCollector() { shutdown(); }

void ConcurrentCollector::shutdown() {
  if (ShuttingDown.exchange(true, std::memory_order_acq_rel))
    return;
  for (std::thread &T : BgThreads)
    T.join();
  BgThreads.clear();
  if (Watchdog.joinable())
    Watchdog.join();
}

void ConcurrentCollector::onAllocationSlowPath(MutatorContext &Ctx,
                                               size_t Bytes) {
  C.Pace.noteAllocation(Bytes);
  bool WasIdle = C.phase() == GcPhase::Idle;
  if (WasIdle) {
    AllocPreBytes.fetch_add(Bytes, std::memory_order_relaxed);
    // Kickoff paces off *refillable* free bytes: raw free can stay above
    // the threshold while every shard is too fragmented to refill a
    // cache (DESIGN.md §9 stranding), which would start the cycle only
    // at allocation failure. The aggregate includes bytes parked in
    // size-class caches and remote-free queues — allocatable memory the
    // free lists no longer see (DESIGN.md §16).
    if (C.Pace.shouldKickoff(C.pacerVisibleFreeBytes()))
      tryStartCycle(&Ctx);
  }
  if (C.phase() == GcPhase::Concurrent) {
    if (!WasIdle)
      AllocConcurrentBytes.fetch_add(Bytes, std::memory_order_relaxed);
    mutatorAssist(Ctx, Bytes);
    if (concurrentWorkComplete())
      finishCycle(&Ctx, /*DueToFailure=*/false);
  }
}

void ConcurrentCollector::collectNow(MutatorContext *Ctx) {
  finishCycle(Ctx, /*DueToFailure=*/true);
}

void ConcurrentCollector::tryStartCycle(MutatorContext *Ctx) {
  // try_lock: if someone is collecting or starting, our trigger is moot.
  if (!C.CollectMutex.try_lock())
    return;
  if (C.phase() != GcPhase::Idle) {
    C.CollectMutex.unlock();
    return;
  }

  initializeCycle(C.Options.ConcurrentCleaningPasses);

  Cur = CycleRecord();
  Cur.Concurrent = true;
  Cur.CycleNumber = C.CycleNumber.load(std::memory_order_relaxed);
  uint64_t Now = nowNanos();
  Cur.PreConcurrentMs = nanosToMillis(Now - LastPauseEndNs);
  Cur.BytesAllocatedPreConcurrent =
      AllocPreBytes.exchange(0, std::memory_order_relaxed);
  AllocConcurrentBytes.store(0, std::memory_order_relaxed);
  BgTracedBytes.store(0, std::memory_order_relaxed);
  AuxWorkBytes.store(0, std::memory_order_relaxed);
  TracingFactors.reset();
  SyncOpsAtCycleStart = C.Pool.stats().SyncOps;
  PhaseStartNs = Now;

  // Publishing the phase wakes the background threads and switches every
  // allocation slow path into assist mode.
  C.setPhase(GcPhase::Concurrent);
  CGC_OBS_EVENT(C.Obs, CycleKickoff, Cur.CycleNumber,
                C.pacerVisibleFreeBytes());
  C.CollectMutex.unlock();
}

void ConcurrentCollector::scanRootsOf(MutatorContext &Victim,
                                      TraceContext &Ctx) {
  Victim.withRoots([&](const std::vector<uintptr_t> &Roots) {
    for (uintptr_t Word : Roots)
      C.Trace.markConservativeWord(Ctx, Word);
  });
}

void ConcurrentCollector::mutatorAssist(MutatorContext &Ctx, size_t Bytes) {
  uint64_t Cycle = C.CycleNumber.load(std::memory_order_acquire);

  // First allocation of this cycle: scan the thread's own stack
  // (Section 2.1), publishing its own allocation bits first so its own
  // fresh objects pass the conservative filter.
  uint64_t Seen = Ctx.StackScanCycle.load(std::memory_order_relaxed);
  if (Seen < Cycle &&
      Ctx.StackScanCycle.compare_exchange_strong(Seen, Cycle,
                                                 std::memory_order_acq_rel,
                                                 std::memory_order_relaxed)) {
    Ctx.cache().flushAllocBits(C.Heap.allocBits());
    scanRootsOf(Ctx, Ctx.trace());
  }

  size_t Budget = C.Pace.workFor(Bytes, C.Trace.cycleTracedBytes(),
                                 C.Heap.freeBytes());
  if (Budget == 0) {
    Ctx.trace().release();
    return;
  }

  CGC_OBS_EVENT(C.Obs, IncTraceBegin, Budget, Cycle);
  uint64_t QuantumStartNs = CGC_OBS_NOW(C.Obs);
  size_t Traced = 0;
  int DryRounds = 4;
  while (Traced < Budget) {
    size_t Step = C.Trace.traceWork(Ctx.trace(), Budget - Traced,
                                    /*CheckAllocBits=*/true,
                                    /*AbortOnStopRequest=*/true);
    Traced += Step;
    if (C.Registry.stopRequested() || C.phase() != GcPhase::Concurrent)
      break;
    if (Traced >= Budget)
      break;
    // Starved for packet work: the auxiliary tasks (stack scans, card
    // cleaning) are collection work too and count against the budget
    // (card scanning is the formula's M component). Only genuinely dry
    // rounds end the increment early, recording an underfilled tracing
    // factor (Section 6.3).
    size_t Aux = auxiliaryWork(&Ctx, Ctx.trace());
    if (Aux > 1) {
      Traced += Aux;
      AuxWorkBytes.fetch_add(Aux, std::memory_order_relaxed);
      C.Trace.addTracedBytes(Aux);
      continue;
    }
    if (Aux == 0 && Step == 0 && --DryRounds < 0)
      break;
  }
  TracingFactors.add(static_cast<double>(Traced) /
                     static_cast<double>(Budget));
  CGC_OBS_EVENT(C.Obs, IncTraceEnd, Traced, Budget);
  if (QuantumStartNs)
    CGC_OBS_PAUSE(C.Obs, IncQuantum, nowNanos() - QuantumStartNs);
  Ctx.trace().release();
}

size_t ConcurrentCollector::scanOneUnscannedStack(TraceContext &Ctx) {
  uint64_t Cycle = C.CycleNumber.load(std::memory_order_acquire);
  size_t Work = 0;
  // The scan runs inside the registry iteration: forEach holds the
  // registrar lock, which detach() must take before the context can be
  // freed, so a concurrently detaching victim stays alive until its
  // scan completes. (Letting a captured pointer escape the iteration
  // was a use-after-free against detach-during-cycle; the scan itself
  // is bounded — one roots vector — and everything it calls is
  // lock-free, so spinning waiters see only a short delay.)
  C.Registry.forEach([&](MutatorContext &M) {
    if (Work)
      return;
    uint64_t Seen = M.StackScanCycle.load(std::memory_order_relaxed);
    if (Seen < Cycle &&
        M.StackScanCycle.compare_exchange_strong(Seen, Cycle,
                                                 std::memory_order_acq_rel,
                                                 std::memory_order_relaxed)) {
      // The victim keeps running; unpublished objects it holds are
      // caught by the final rescan ("threads that never allocate").
      scanRootsOf(M, Ctx);
      CGC_OBS_EVENT(C.Obs, StackScan, M.numRoots(), Cycle);
      Work = M.numRoots() * 8 + 1;
    }
  });
  return Work;
}

bool ConcurrentCollector::allStacksScanned() {
  uint64_t Cycle = C.CycleNumber.load(std::memory_order_acquire);
  bool All = true;
  C.Registry.forEach([&](MutatorContext &M) {
    if (M.StackScanCycle.load(std::memory_order_acquire) < Cycle)
      All = false;
  });
  return All;
}

size_t ConcurrentCollector::auxiliaryWork(MutatorContext *Self,
                                          TraceContext &Ctx) {
  // 1. Stacks before cards: stack roots are tracing work, and cleaning
  //    is deferred as long as other work exists (Section 2.1).
  if (size_t Scanned = scanOneUnscannedStack(Ctx))
    return Scanned;
  // 2. Clean registered cards of the active pass. Card scanning is the
  //    progress formula's "M" work, so it is credited at card size.
  if (size_t Cards = C.Cleaner.cleanSome(Ctx, 16))
    return Cards * CardTable::CardBytes;
  // 3. Start the next cleaning pass (registration + fence handshake).
  if (C.Cleaner.tryBeginConcurrentPass(Self))
    return 1;
  // 4. Give deferred objects another chance: force the allocation bits
  //    out with a handshake, then recirculate the Deferred pool. A
  //    handshake timeout means the bits may still be unpublished —
  //    recirculating would retrace objects whose allocation bits the
  //    tracer cannot see yet, so skip; a later visit retries.
  if (C.Pool.hasDeferred() && C.Pool.approxInputPackets() == 0 &&
      !C.Registry.stopRequested()) {
    if (C.Registry.requestFenceHandshake(Self, C.Heap.allocBits()) !=
        CooperationResult::Ok)
      return 0;
    return C.Pool.redistributeDeferred() != 0 ? 1 : 0;
  }
  return 0;
}

bool ConcurrentCollector::concurrentWorkComplete() {
  if (C.phase() != GcPhase::Concurrent)
    return false;
  if (!allStacksScanned())
    return false;
  if (!C.Cleaner.concurrentCleaningComplete())
    return false;
  if (C.Pool.hasDeferred())
    return false;
  return C.Pool.allPacketsEmptyAndIdle();
}

void ConcurrentCollector::pauseBackground(MutatorContext *Self) {
  BgPause.store(true, std::memory_order_seq_cst);
  while (ActiveBg.load(std::memory_order_acquire) != 0) {
    // A background thread may be mid fence-handshake (as a registrar),
    // waiting for every mutator — including this one — to acknowledge.
    if (Self)
      C.Registry.poll(*Self, C.Heap.allocBits());
    std::this_thread::yield();
  }
}

void ConcurrentCollector::finishCycle(MutatorContext *Ctx,
                                      bool DueToFailure) {
  uint64_t Observed = C.CompletedCycles.load(std::memory_order_acquire);
  if (!acquireCollectLock(Ctx, Observed))
    return;
  if (C.CompletedCycles.load(std::memory_order_acquire) != Observed) {
    C.CollectMutex.unlock();
    return;
  }

  if (C.phase() != GcPhase::Concurrent) {
    // Allocation failure with no cycle running: degenerate full STW
    // cycle (the kickoff mispredicted). Background threads must be
    // parked like in the normal finish: the lazy-sweep soak otherwise
    // races the cycle's sweep arming and the compactor's evacuation
    // (its stop-request check is a benign TOCTOU only while no cycle
    // is inside a pause).
    pauseBackground(Ctx);
    runFullStwCycle(Ctx);
    LastPauseEndNs = nowNanos();
    AllocPreBytes.store(0, std::memory_order_relaxed);
    BgPause.store(false, std::memory_order_release);
    C.CollectMutex.unlock();
    return;
  }

  CycleRecord Record = Cur;
  Record.CompletedConcurrently = !DueToFailure;
  Record.ConcurrentPhaseMs = nanosToMillis(nowNanos() - PhaseStartNs);
  if (DueToFailure) {
    // "Cards Left": what the concurrent phase still had to clean.
    Record.CardsLeftAtFailure =
        C.Cleaner.registeredNotCleaned() +
        (C.Cleaner.concurrentCleaningComplete()
             ? 0
             : C.Heap.cards().countDirty());
  } else {
    Record.FreeAtConcurrentCompletion = C.Heap.freeBytes();
  }

  pauseBackground(Ctx);
  CGC_OBS_EVENT(C.Obs, StwBegin, Record.CycleNumber, DueToFailure ? 1 : 0);
  Stopwatch Pause;
  C.Registry.stopTheWorld(Ctx, C.Heap.allocBits());
  Record.StopMs = Pause.elapsedMillis();

  Record.BytesTracedConcurrent = C.Trace.cycleTracedBytes();

  // Publish every cache's allocation bits (quiescent world).
  C.Registry.forEach([this](MutatorContext &M) {
    M.cache().flushAllocBits(C.Heap.allocBits());
  });

  // Rescan all thread stacks (Section 2.2).
  Stopwatch ScanTimer;
  {
    TraceContext RootCtx(C.Pool);
    scanAllStacks(RootCtx);
    RootCtx.release();
  }
  Record.StackRescanMs = ScanTimer.elapsedMillis();

  parallelFinalMark(Record);
  Record.BytesTracedFinal =
      C.Trace.cycleTracedBytes() - Record.BytesTracedConcurrent;

  sweepWorld(Record);
  Record.PauseMs = Pause.elapsedMillis();

  // Fold the cycle's actual values into the predictions (Section 3.1).
  // T included the auxiliary (card-scan) work for pacing; the L sample
  // must not, since M predicts that share separately.
  uint64_t TotalTraced = C.Trace.cycleTracedBytes();
  uint64_t Aux = AuxWorkBytes.load(std::memory_order_relaxed);
  C.Pace.endCycle(TotalTraced > Aux ? TotalTraced - Aux : 0,
                  C.Cleaner.totalRegistered() * CardTable::CardBytes);

  Record.CardsCleanedConcurrent = C.Cleaner.cleanedConcurrent();
  Record.CardsCleanedFinal = C.Cleaner.cleanedFinal();
  Record.DeferredObjects = C.Trace.deferredCount();
  Record.Overflows = C.Trace.overflowCount();
  Record.SyncOps = C.Pool.stats().SyncOps - SyncOpsAtCycleStart;
  Record.BytesTracedByBackground =
      BgTracedBytes.load(std::memory_order_relaxed);
  Record.BytesAllocatedConcurrent =
      AllocConcurrentBytes.load(std::memory_order_relaxed);
  Record.TracingFactorMean = TracingFactors.mean();
  Record.TracingFactorStddev = TracingFactors.stddev();
  Record.TracingIncrements = TracingFactors.count();

  CGC_OBS_EVENT(C.Obs, StwEnd, Record.CycleNumber,
                static_cast<uint64_t>(Record.PauseMs * 1e6));
  recordCycleObservability(Record);
  C.setPhase(GcPhase::Idle);
  C.Stats.addCycle(Record);
  CGC_OBS_EVENT(C.Obs, CycleComplete, Record.CycleNumber,
                Record.CompletedConcurrently ? 1 : 0);
  C.CompletedCycles.fetch_add(1, std::memory_order_release);
  LastPauseEndNs = nowNanos();
  AllocPreBytes.store(0, std::memory_order_relaxed);
  C.Registry.resumeTheWorld();
  BgPause.store(false, std::memory_order_release);
  C.CollectMutex.unlock();
}

void ConcurrentCollector::watchdogLoop() {
  uint64_t LastProgress = 0;
  unsigned StallTicks = 0, LagTicks = 0;
  // Fence-timeout count at the start of the supervised concurrent phase
  // (UINT64_MAX = not currently supervising one).
  uint64_t FenceBase = UINT64_MAX;
  while (!ShuttingDown.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(
        std::chrono::microseconds(C.Options.WatchdogIntervalMicros));
    if (C.phase() != GcPhase::Concurrent ||
        BgPause.load(std::memory_order_acquire)) {
      // No concurrent phase to supervise (BgPause means someone is
      // already finishing it): start fresh next time one runs.
      StallTicks = LagTicks = 0;
      FenceBase = UINT64_MAX;
      continue;
    }
    if (concurrentWorkComplete()) {
      // Tracing terminated but nobody noticed yet (every mutator sits in
      // think time, background threads disabled): finish it ourselves.
      finishCycle(nullptr, /*DueToFailure=*/false);
      continue;
    }
    // Strike escalation (DESIGN.md §13): a mutator refusing to fence
    // makes every handshake of this cycle time out; past the strike
    // limit, abort to the STW finish — the safepoint protocol needs no
    // acknowledgements and completes once the thread polls or blocks,
    // where the handshake protocol would wedge the cycle forever.
    if (uint64_t Limit = C.Options.HandshakeStrikeLimit) {
      uint64_t Timeouts = C.Registry.fenceTimeouts();
      if (FenceBase == UINT64_MAX)
        FenceBase = Timeouts;
      if (Timeouts - FenceBase >= Limit) {
        StallTicks = LagTicks = 0;
        LastProgress = 0;
        C.Stats.noteHandshakeAbort();
        C.Stats.noteEscalation(EscalationRung::StwFinish);
        CGC_OBS_EVENT(C.Obs, HandshakeAbort, Timeouts - FenceBase, Limit);
        FenceBase = UINT64_MAX;
        finishCycle(nullptr, /*DueToFailure=*/true);
        continue;
      }
    }
    uint64_t Traced = C.Trace.cycleTracedBytes();
    uint64_t Progress =
        Traced + C.Cleaner.cleanedConcurrent() + C.Trace.deferredCount();
    if (Progress == LastProgress) {
      ++StallTicks;
    } else {
      StallTicks = 0;
      LastProgress = Progress;
    }
    double K = C.Pace.currentRate(Traced, C.Heap.freeBytes());
    // Lag detection watches the pacer-visible aggregate for the same
    // reason the kickoff does: stranded fragmented shards must count as
    // pressure, but bytes parked in size-class caches and remote-free
    // queues must not — they are allocatable, and ignoring them would
    // misdiagnose a healthy fast-path heap as a stall.
    bool Behind = K >= C.Options.kmax() - 1e-9 &&
                  C.pacerVisibleFreeBytes() <
                      C.Pace.kickoffThresholdBytes() / 4;
    LagTicks = Behind ? LagTicks + 1 : 0;
    if (StallTicks >= C.Options.WatchdogStallTicks ||
        LagTicks >= C.Options.WatchdogLagTicks) {
      StallTicks = LagTicks = 0;
      LastProgress = 0;
      FenceBase = UINT64_MAX;
      C.Stats.noteWatchdogTrip();
      C.Stats.noteEscalation(EscalationRung::StwFinish);
      finishCycle(nullptr, /*DueToFailure=*/true);
    }
  }
}

void ConcurrentCollector::backgroundLoop() {
  while (!ShuttingDown.load(std::memory_order_acquire)) {
    if (BgPause.load(std::memory_order_acquire) ||
        C.phase() != GcPhase::Concurrent) {
      // Section 7: lazy sweeping is spread between mutators and idle
      // low-priority background threads. Soak up pending sweep work
      // while no concurrent phase is running.
      if (!BgPause.load(std::memory_order_acquire) &&
          C.Sweep.lazySweepPending() && !C.Registry.stopRequested()) {
        ActiveBg.fetch_add(1, std::memory_order_acquire);
        if (!BgPause.load(std::memory_order_acquire) &&
            !C.Registry.stopRequested())
          C.Sweep.sweepUntilFree(256u << 10);
        ActiveBg.fetch_sub(1, std::memory_order_release);
        continue;
      }
      std::this_thread::sleep_for(std::chrono::microseconds(200));
      continue;
    }
    ActiveBg.fetch_add(1, std::memory_order_acquire);
    if (BgPause.load(std::memory_order_acquire) ||
        C.phase() != GcPhase::Concurrent) {
      ActiveBg.fetch_sub(1, std::memory_order_release);
      continue;
    }

    size_t Traced = 0;
    size_t Aux = 0;
    {
      TraceContext Ctx(C.Pool);
      Traced = C.Trace.traceWork(Ctx, C.Options.BackgroundQuantumBytes,
                                 /*CheckAllocBits=*/true,
                                 /*AbortOnStopRequest=*/true);
      if (Traced == 0 && !C.Registry.stopRequested() &&
          !BgPause.load(std::memory_order_acquire))
        Aux = auxiliaryWork(nullptr, Ctx);
      Ctx.release();
    }
    ActiveBg.fetch_sub(1, std::memory_order_release);

    if (Aux > 1) {
      AuxWorkBytes.fetch_add(Aux, std::memory_order_relaxed);
      C.Trace.addTracedBytes(Aux);
    }
    if (Traced != 0 || Aux > 1) {
      C.Pace.noteBackgroundTrace(Traced + (Aux > 1 ? Aux : 0));
      BgTracedBytes.fetch_add(Traced, std::memory_order_relaxed);
      CGC_OBS_EVENT(C.Obs, BackgroundQuantum, Traced, Aux > 1 ? Aux : 0);
      continue;
    }
    if (Aux == 0) {
      if (concurrentWorkComplete()) {
        finishCycle(nullptr, /*DueToFailure=*/false);
        continue;
      }
      // Low priority: back off instead of burning mutator cycles.
      std::this_thread::sleep_for(std::chrono::microseconds(500));
    }
  }
}
