//===- ConcurrentCollector.h - The paper's CGC ------------------*- C++ -*-===//
///
/// \file
/// The parallel, incremental, mostly concurrent collector (the paper's
/// contribution).
///
/// Cycle state machine: Idle → (free memory falls below the kickoff
/// threshold at an allocation slow path) Concurrent → (tracing
/// termination detected, or an allocation fails) final stop-the-world
/// phase → sweep → Idle.
///
/// During the concurrent phase:
///  - each mutator scans its own stack at its first allocation of the
///    cycle, and performs a tracing increment sized by the progress
///    formula on every cache refill / large allocation;
///  - low-priority background threads soak up idle time doing the same
///    work, accounted through the pacer's Best estimate;
///  - starved participants scan not-yet-scanned stacks, then clean
///    registered dirty cards, then start a new cleaning pass
///    (registration + mutator fence handshake), then give deferred
///    packets another chance;
///  - termination is detected when every stack is scanned, the budgeted
///    cleaning passes are drained, no deferred packets remain and the
///    Empty pool's counter equals the total packet count (Section 4.3).
///
//===----------------------------------------------------------------------===//

#ifndef CGC_GC_CONCURRENTCOLLECTOR_H
#define CGC_GC_CONCURRENTCOLLECTOR_H

#include "gc/CollectorBase.h"
#include "support/SampleSeries.h"

#include <thread>
#include <vector>

namespace cgc {

/// The mostly-concurrent collector.
class ConcurrentCollector : public CollectorBase {
public:
  explicit ConcurrentCollector(GcCore &Core);
  ~ConcurrentCollector() override;

  void onAllocationSlowPath(MutatorContext &Ctx, size_t Bytes) override;
  void collectNow(MutatorContext *Ctx) override;
  bool concurrentPhaseActive() const override {
    return C.phase() == GcPhase::Concurrent;
  }
  void shutdown() override;

  /// Termination test for the concurrent phase (public for tests).
  bool concurrentWorkComplete();

  /// Explicit kickoff: starts a concurrent cycle now if the collector is
  /// idle (no-op otherwise). Normal kickoff waits for free memory to
  /// cross the Section 3.1 threshold, which a fragmented or sharded
  /// free list can fail to reach before allocation fails outright;
  /// tests and benches use this to open a cycle deterministically.
  void startConcurrentCycle(MutatorContext *Ctx) { tryStartCycle(Ctx); }

private:
  void tryStartCycle(MutatorContext *Ctx);
  void mutatorAssist(MutatorContext &Ctx, size_t Bytes);
  /// Starved-participant fallback work. Returns the bytes of collection
  /// work performed (cards scanned count at card size — the "M" work of
  /// the progress formula; stack scans at word granularity), zero when
  /// no progress was possible. \p Self may be null (background
  /// threads).
  size_t auxiliaryWork(MutatorContext *Self, TraceContext &Ctx);
  /// Returns scanned root words (0 = no unscanned stack found).
  size_t scanOneUnscannedStack(TraceContext &Ctx);
  bool allStacksScanned();
  void scanRootsOf(MutatorContext &Victim, TraceContext &Ctx);
  /// Ends the cycle with the final stop-the-world phase; runs a full
  /// degenerate STW cycle instead when no cycle is active.
  void finishCycle(MutatorContext *Ctx, bool DueToFailure);

  void backgroundLoop();
  /// Stops background tracing; \p Self (may be null) keeps acknowledging
  /// fence handshakes while waiting so a registrar background thread can
  /// finish its pass.
  void pauseBackground(MutatorContext *Self);

  /// Cycle watchdog (Options.CycleWatchdog): samples the concurrent
  /// phase every WatchdogIntervalMicros and escalates to the STW finish
  /// when (a) tracing, card cleaning and deferral counts all stay flat
  /// for WatchdogStallTicks samples (a stalled participant), or (b) the
  /// progress formula stays pegged at Kmax with free memory under a
  /// quarter of the kickoff threshold for WatchdogLagTicks samples (the
  /// tracer cannot catch up even at the clamp).
  void watchdogLoop();

  // Per-cycle accounting (mutated under the collect lock or with
  // relaxed atomics).
  std::atomic<uint64_t> AllocPreBytes{0};
  std::atomic<uint64_t> AllocConcurrentBytes{0};
  std::atomic<uint64_t> BgTracedBytes{0};
  /// Auxiliary (stack-scan / card-scan) work bytes credited into T.
  std::atomic<uint64_t> AuxWorkBytes{0};
  SampleSeries TracingFactors;
  CycleRecord Cur;
  uint64_t PhaseStartNs = 0;
  uint64_t LastPauseEndNs = 0;
  uint64_t SyncOpsAtCycleStart = 0;

  // Background threads.
  std::vector<std::thread> BgThreads;
  std::atomic<bool> ShuttingDown{false};
  std::atomic<bool> BgPause{false};
  std::atomic<int> ActiveBg{0};

  // Cycle watchdog.
  std::thread Watchdog;
};

} // namespace cgc

#endif // CGC_GC_CONCURRENTCOLLECTOR_H
