//===- WorkerPool.cpp - Persistent GC worker threads --------------------------//

#include "gc/WorkerPool.h"

using namespace cgc;

WorkerPool::WorkerPool(unsigned NumWorkers, FaultInjector *FI) : FI(FI) {
  Workers.reserve(NumWorkers);
  for (unsigned I = 0; I < NumWorkers; ++I)
    Workers.emplace_back([this, I] { workerMain(I + 1); });
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    ShuttingDown = true;
  }
  WorkCV.notify_all();
  for (std::thread &T : Workers)
    T.join();
}

void WorkerPool::runParallel(const std::function<void(unsigned)> &Job) {
  if (FI && FI->shouldFail(FaultSite::WorkerDispatch)) {
    // Degraded dispatch: run every participant index serially on the
    // caller. Each index runs exactly once, so the job's work partition
    // is preserved — only the parallelism is lost.
    for (unsigned I = 0; I < numParticipants(); ++I)
      Job(I);
    return;
  }
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    CurrentJob = &Job;
    Remaining = numWorkers();
    ++JobGeneration;
  }
  WorkCV.notify_all();
  Job(0); // The caller participates as index 0.
  std::unique_lock<std::mutex> Lock(Mutex);
  DoneCV.wait(Lock, [this] { return Remaining == 0; });
  CurrentJob = nullptr;
}

void WorkerPool::workerMain(unsigned Index) {
  uint64_t SeenGeneration = 0;
  for (;;) {
    const std::function<void(unsigned)> *Job = nullptr;
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      WorkCV.wait(Lock, [&] {
        return ShuttingDown || JobGeneration != SeenGeneration;
      });
      if (ShuttingDown)
        return;
      SeenGeneration = JobGeneration;
      Job = CurrentJob;
    }
    if (FI)
      FI->maybePerturb(FaultSite::WorkerDispatch);
    (*Job)(Index);
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      if (--Remaining == 0)
        DoneCV.notify_all();
    }
  }
}
