//===- FlightRecorder.cpp - Signal-safe GC crash dump -------------------------//

#include "gc/FlightRecorder.h"

#include "gc/GcCore.h"
#include "support/SigSafe.h"
#include "support/Timing.h"

#include <atomic>
#include <csignal>

using namespace cgc;

namespace {

/// Registered heaps (lock-free: install CAS-publishes, uninstall
/// clears; the handler acquire-scans).
std::atomic<GcCore *> Cores[FlightRecorder::MaxCores] = {};
std::atomic<int> OutFd{2};
std::atomic<unsigned> InstalledCount{0};
/// Reentrancy guard: a fault inside the dump must not recurse.
std::atomic<bool> Dumping{false};

struct sigaction PrevSegv;
struct sigaction PrevAbrt;

const char *execStateName(ExecState S) {
  switch (S) {
  case ExecState::Running:
    return "running";
  case ExecState::AtSafepoint:
    return "safepoint";
  case ExecState::Idle:
    return "idle";
  }
  return "?";
}

void writeField(int Fd, const char *Key, uint64_t Value) {
  sigSafeWriteStr(Fd, " ");
  sigSafeWriteStr(Fd, Key);
  sigSafeWriteStr(Fd, "=");
  sigSafeWriteDec(Fd, Value);
}

void dumpCore(GcCore *Core, int Fd, int Signal) {
  sigSafeWriteStr(Fd, "=== cgc flight recorder (signal ");
  sigSafeWriteDec(Fd, static_cast<uint64_t>(Signal));
  sigSafeWriteStr(Fd, ") ===\n");

  // Cycle state.
  sigSafeWriteStr(Fd, "heap=");
  sigSafeWriteHex(Fd, reinterpret_cast<uintptr_t>(Core));
  sigSafeWriteStr(Fd, " phase=");
  sigSafeWriteStr(Fd,
                  Core->phase() == GcPhase::Concurrent ? "concurrent" : "idle");
  writeField(Fd, "cycle", Core->CycleNumber.load(std::memory_order_relaxed));
  writeField(Fd, "completed",
             Core->CompletedCycles.load(std::memory_order_relaxed));
  sigSafeWriteStr(Fd, "\n");

  // Cooperation-protocol state.
  ThreadRegistry &Reg = Core->Registry;
  uint64_t Epoch = Reg.handshakeEpoch();
  sigSafeWriteStr(Fd, "registry");
  writeField(Fd, "epoch", Epoch);
  writeField(Fd, "stop_requested", Reg.stopRequested() ? 1 : 0);
  writeField(Fd, "stw_warnings", Reg.stwStallWarnings());
  writeField(Fd, "fence_timeouts", Reg.fenceTimeouts());
  writeField(Fd, "stall_reports", Reg.stallReportCount());
  sigSafeWriteStr(Fd, "\n");

  // Per-thread cooperation table (lock-free snapshot slots).
  uint64_t Now = nowNanos();
  Reg.forEachSnapshotSlot([&](MutatorContext &Ctx) {
    uint64_t Ack = Ctx.HandshakeAck.load(std::memory_order_relaxed);
    uint64_t Last = Ctx.LastPollNanos.load(std::memory_order_relaxed);
    sigSafeWriteStr(Fd, "thread");
    writeField(Fd, "id", Ctx.debugId());
    sigSafeWriteStr(Fd, " state=");
    sigSafeWriteStr(Fd, execStateName(Ctx.state()));
    writeField(Fd, "ack", Ack);
    writeField(Fd, "ack_lag", Epoch > Ack ? Epoch - Ack : 0);
    writeField(Fd, "poll_age_ns", Now > Last ? Now - Last : 0);
    writeField(Fd, "transition_seq",
               Ctx.TransitionSeq.load(std::memory_order_relaxed));
    writeField(Fd, "scan_cycle",
               Ctx.StackScanCycle.load(std::memory_order_relaxed));
    writeField(Fd, "alloc_bytes",
               Ctx.BytesAllocated.load(std::memory_order_relaxed));
    sigSafeWriteStr(Fd, "\n");
  });

  // Stall-report ring (may contain entries from finished cycles; the
  // timestamps tell them apart).
  for (unsigned I = 0; I < ThreadRegistry::StallRingSize; ++I) {
    StallReport R;
    if (!Reg.readStallSlot(I, R))
      continue;
    sigSafeWriteStr(Fd, "stall");
    writeField(Fd, "t", R.TimeNs);
    writeField(Fd, "id", R.DebugId);
    sigSafeWriteStr(Fd, " proto=");
    sigSafeWriteStr(Fd, R.Protocol == StallProtocol::FenceHandshake ? "fence"
                                                                    : "stw");
    sigSafeWriteStr(Fd, " state=");
    sigSafeWriteStr(Fd, execStateName(R.State));
    writeField(Fd, "poll_age_ns", R.PollAgeNanos);
    writeField(Fd, "ack_lag", R.AckLagEpochs);
    sigSafeWriteStr(Fd, "\n");
  }

  // Pacer window counters (the smoothed estimates live behind a lock
  // the crashing thread might hold; the raw windows are atomic).
  sigSafeWriteStr(Fd, "pacer");
  writeField(Fd, "window_alloc", Core->Pace.windowAllocatedBytes());
  writeField(Fd, "window_bg_traced", Core->Pace.windowBgTracedBytes());
  sigSafeWriteStr(Fd, "\n");

  // Degradation-ladder counters.
  sigSafeWriteStr(Fd, "ladder");
  for (unsigned I = 0; I < static_cast<unsigned>(EscalationRung::NumRungs);
       ++I) {
    sigSafeWriteStr(Fd, " ");
    sigSafeWriteStr(Fd, escalationRungName(static_cast<EscalationRung>(I)));
    sigSafeWriteStr(Fd, "=");
    sigSafeWriteDec(Fd,
                    Core->Stats.escalationCount(static_cast<EscalationRung>(I)));
  }
  writeField(Fd, "watchdog-trips", Core->Stats.watchdogTrips());
  writeField(Fd, "handshake-aborts", Core->Stats.handshakeAborts());
  sigSafeWriteStr(Fd, "\n");

  // Tail of every observe event ring (empty unless Options.Observe).
  for (uint32_t RingI = 0; RingI < GcObserver::MaxRings; ++RingI) {
    const EventRing *Ring = Core->Obs.ringAt(RingI);
    if (!Ring)
      break;
    sigSafeWriteStr(Fd, "ring");
    writeField(Fd, "tid", Ring->ownerThreadId());
    writeField(Fd, "pushed", Ring->pushedCount());
    sigSafeWriteStr(Fd, "\n");
    Ring->peekTail(8, [&](const EventRecord &R) {
      sigSafeWriteStr(Fd, "ev");
      writeField(Fd, "t", R.TimeNs);
      writeField(Fd, "tid", R.ThreadId);
      sigSafeWriteStr(Fd, " kind=");
      sigSafeWriteStr(Fd, eventKindName(R.Kind));
      writeField(Fd, "a0", R.Arg0);
      writeField(Fd, "a1", R.Arg1);
      sigSafeWriteStr(Fd, "\n");
    });
  }

  sigSafeWriteStr(Fd, "=== end cgc flight recorder ===\n");
}

void handleFatalSignal(int Sig) {
  if (!Dumping.exchange(true, std::memory_order_acq_rel)) {
    int Fd = OutFd.load(std::memory_order_relaxed);
    for (unsigned I = 0; I < FlightRecorder::MaxCores; ++I)
      if (GcCore *Core = Cores[I].load(std::memory_order_acquire))
        dumpCore(Core, Fd, Sig);
    // Leave Dumping set: if the process somehow survives the re-raise,
    // a second fault must not dump again over a half-dead heap.
  }
  // Restore the saved disposition and re-raise, so the process dies
  // exactly as it would have without us (the signal is blocked while
  // this handler runs; it delivers on return).
  struct sigaction *Prev = Sig == SIGSEGV ? &PrevSegv : &PrevAbrt;
  sigaction(Sig, Prev, nullptr);
  raise(Sig);
}

} // namespace

void FlightRecorder::install(GcCore *Core, int Fd) {
  OutFd.store(Fd, std::memory_order_relaxed);
  // Slot scan, one CAS per distinct slot. cgc-lint: allow(R3)
  for (unsigned I = 0; I < MaxCores; ++I) {
    GcCore *Expected = nullptr; // cgc-lint: allow(R3)
    if (Cores[I].compare_exchange_strong(Expected, Core,
                                         std::memory_order_release,
                                         std::memory_order_relaxed))
      break;
  }
  if (InstalledCount.fetch_add(1, std::memory_order_acq_rel) == 0) {
    struct sigaction SA;
    sigemptyset(&SA.sa_mask);
    SA.sa_flags = 0;
    SA.sa_handler = handleFatalSignal;
    sigaction(SIGSEGV, &SA, &PrevSegv);
    sigaction(SIGABRT, &SA, &PrevAbrt);
  }
}

void FlightRecorder::uninstall(GcCore *Core) {
  // Slot scan, one CAS per distinct slot. cgc-lint: allow(R3)
  for (unsigned I = 0; I < MaxCores; ++I) {
    GcCore *Expected = Core; // cgc-lint: allow(R3)
    if (Cores[I].compare_exchange_strong(Expected, nullptr,
                                         std::memory_order_acq_rel,
                                         std::memory_order_relaxed))
      break;
  }
  if (InstalledCount.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    sigaction(SIGSEGV, &PrevSegv, nullptr);
    sigaction(SIGABRT, &PrevAbrt, nullptr);
  }
}

void FlightRecorder::dumpNow(GcCore *Core, int Fd, int Signal) {
  dumpCore(Core, Fd, Signal);
}
