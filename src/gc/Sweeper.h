//===- Sweeper.h - Parallel bitwise sweep -----------------------*- C++ -*-===//
///
/// \file
/// Bitwise sweep (Section 2.2): reclaims unused storage in time
/// essentially proportional to the number of live objects by finding
/// ranges of unmarked memory in the mark bit vector. The heap is divided
/// into fixed chunks claimed by workers through an atomic cursor; a
/// sweeping thread resolves objects spanning its chunk's leading edge by
/// scanning the mark bits backwards. Reclaimed ranges are inserted into
/// the free-list shard owning their addresses (split at shard
/// boundaries), so N sweep workers contend only when their chunks map
/// to the same shard; within a shard, free ranges still coalesce across
/// chunk boundaries in the address-ordered large map. Allocation bits
/// of reclaimed ranges are cleared so conservative scanning cannot
/// resurrect dead memory.
///
/// Lazy sweep (the paper's future work, Section 7): the sweep is taken
/// out of the pause and performed incrementally at allocation time, with
/// completion forced before the next cycle begins.
///
//===----------------------------------------------------------------------===//

#ifndef CGC_GC_SWEEPER_H
#define CGC_GC_SWEEPER_H

#include "heap/HeapSpace.h"
#include "support/Annotations.h"

#include <atomic>
#include <cstdint>
#include <thread>

namespace cgc {

class GcObserver;
class WorkerPool;

/// Parallel / lazy bitwise sweeper over a HeapSpace.
class Sweeper {
public:
  /// Heap bytes swept as one unit.
  static constexpr size_t ChunkBytes = 1u << 20;

  /// \p Obs (optional) receives a SweepSlice event per lazy-sweep call
  /// that reclaims memory.
  explicit Sweeper(HeapSpace &Heap, GcObserver *Obs = nullptr);

  /// Full STW sweep: clears the free list and rebuilds it from the mark
  /// bit vector, in parallel on \p Workers (may be null for serial).
  /// Returns the total live bytes found.
  uint64_t sweepAll(WorkerPool *Workers);

  /// Arms lazy sweeping: clears the free list and resets the chunk
  /// cursor; chunks are swept on demand by sweepUntilFree.
  void armLazySweep();

  /// Whether lazily swept chunks remain.
  bool lazySweepPending() const {
    return LazyActive.load(std::memory_order_acquire);
  }

  /// Lazy-sweeps chunks until at least \p FreeBytesWanted have been
  /// reclaimed by this call or the heap is fully swept. Returns bytes
  /// reclaimed by this call.
  uint64_t sweepUntilFree(size_t FreeBytesWanted);

  /// Sweeps all remaining chunks (forced completion before a new cycle).
  void finishLazySweep();

  /// Latches [Lo, Hi) — the compactor's armed evacuation area — as this
  /// sweep generation's exclusion window: reclaim (bit clearing and
  /// free-list insertion) is clipped to outside it. The armed area
  /// belongs to the compactor, whose post-evacuation rebuild is the
  /// only writer of its free ranges; without the window a late lazy
  /// chunk sweep could re-insert (or double-insert) area ranges after
  /// evacuation and hand the compactor an in-area target. Call before
  /// arming the sweep (armLazySweep / sweepAll) and leave it latched
  /// until the next generation starts; (nullptr, nullptr) clears it.
  void setEvacuationExclusion(uint8_t *Lo, uint8_t *Hi) {
    ExclLo.store(Lo, std::memory_order_relaxed);
    ExclHi.store(Hi, std::memory_order_relaxed);
  }

  /// Whether the lazy sweep has not yet reached the chunk owning
  /// \p Addr (so that chunk's free ranges are still un-derived). Only
  /// meaningful while no sweeper is actively mid-chunk — i.e. inside
  /// the pause, where the compactor uses it to decide which
  /// straddler-tail pieces it must return to the free list itself.
  bool sweepPendingAt(const void *Addr) const {
    if (!LazyActive.load(std::memory_order_acquire))
      return false;
    size_t Index =
        static_cast<size_t>(static_cast<const uint8_t *>(Addr) - Heap.base()) /
        ChunkBytes;
    return Index >= Cursor.load(std::memory_order_relaxed);
  }

  /// Live bytes found by the last completed sweep.
  uint64_t liveBytes() const {
    return LiveBytesFound.load(std::memory_order_relaxed);
  }

private:
  /// Sweeps chunk \p Index; adds free ranges to the free list; returns
  /// {freed bytes, live bytes}.
  struct ChunkResult {
    uint64_t FreedBytes = 0;
    uint64_t LiveBytes = 0;
  };
  ChunkResult sweepChunk(size_t Index);

  /// First position in chunk \p Index not covered by a live object
  /// spanning in from an earlier chunk.
  uint8_t *chunkSweepStart(size_t Index) const;

  HeapSpace &Heap;
  size_t NumChunks;
  GcObserver *Obs;
  std::atomic<size_t> Cursor{0};
  std::atomic<bool> LazyActive{false};
  std::atomic<int> ActiveSweepers{0};
  std::atomic<uint64_t> LiveBytesFound{0};
  CGC_ATOMIC_DOC("evacuation-exclusion bounds; stored before the sweep "
                 "generation is armed (ordered by LazyActive's release / "
                 "runParallel's dispatch), relaxed reads per chunk")
  std::atomic<uint8_t *> ExclLo{nullptr};
  CGC_ATOMIC_DOC("see ExclLo")
  std::atomic<uint8_t *> ExclHi{nullptr};
};

} // namespace cgc

#endif // CGC_GC_SWEEPER_H
