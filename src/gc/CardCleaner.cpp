//===- CardCleaner.cpp - Dirty-card registration and cleaning -----------------//

#include "gc/CardCleaner.h"

#include "mutator/ThreadRegistry.h"
#include "observe/Observe.h"
#include "support/Atomics.h"
#include "support/Fences.h"

#include <cassert>
#include <mutex>

using namespace cgc;

void CardCleaner::beginCycle(unsigned ConcurrentPasses) {
  SpinLockGuard Guard(RegistrarLock);
  Registered.clear();
  RegisteredCount.store(0, std::memory_order_relaxed);
  NextIndex.store(0, std::memory_order_relaxed);
  Cleaned.store(0, std::memory_order_relaxed);
  PassBudget.store(ConcurrentPasses, std::memory_order_relaxed);
  PassesStarted.store(0, std::memory_order_relaxed);
  FinalMode.store(false, std::memory_order_relaxed);
  PendingFence.store(false, std::memory_order_relaxed);
  CleanedConcurrent.store(0, std::memory_order_relaxed);
  CleanedFinal.store(0, std::memory_order_relaxed);
  TotalRegistered.store(0, std::memory_order_relaxed);
}

bool CardCleaner::tryBeginConcurrentPass(MutatorContext *Self) {
  if (FinalMode.load(std::memory_order_relaxed))
    return false;
  // Simulated registration denial: cards stay dirty, a later attempt (or
  // the final pass) picks them up. Callers already treat false as "no
  // pass now" and retry, so this never loses work.
  if (FI && FI->shouldFail(FaultSite::CardCleanBegin))
    return false;
  if (PassesStarted.load(std::memory_order_acquire) >=
      PassBudget.load(std::memory_order_relaxed))
    return false;
  // try_lock, never block: a spinning registrar-in-waiting would stall
  // the current registrar's fence handshake.
  if (!RegistrarLock.try_lock())
    return false;
  SpinLockGuard Guard(RegistrarLock, std::adopt_lock);
  if (FinalMode.load(std::memory_order_relaxed))
    return false;

  // A previous registration is waiting on a timed-out fence handshake:
  // retry just the handshake. Its cards are already cleared from the
  // table (they must not be re-registered) but unpublished — no cleaner
  // may scan them until the fence ordering is proven.
  if (PendingFence.load(std::memory_order_relaxed)) {
    // RegistrarLock only serializes would-be registrars, and they all
    // use try_lock (above) — a mutator acknowledging this handshake
    // never touches it, so the fence cannot deadlock against the held
    // lock. cgc-mole: allow(M3): try_lock-only registrar lock
    if (Registry.requestFenceHandshake(Self, Heap.allocBits()) !=
        CooperationResult::Ok)
      return false; // still pending; recirculate again
    PendingFence.store(false, std::memory_order_relaxed);
    RegisteredCount.store(Registered.size(), std::memory_order_release);
    PassesStarted.fetch_add(1, std::memory_order_release);
    CGC_OBS_EVENT_P(Obs, CardCleanPass, Registered.size(), 0);
    return true;
  }

  if (PassesStarted.load(std::memory_order_relaxed) >=
          PassBudget.load(std::memory_order_relaxed) ||
      !currentPassDrained())
    return false;

  // Step 1: register and clear dirty indicators.
  Registered.clear();
  Cleaned.store(0, std::memory_order_relaxed);
  NextIndex.store(0, std::memory_order_relaxed);
  RegisteredCount.store(0, std::memory_order_release);
  Heap.cards().registerAndClearDirty(Registered);
  TotalRegistered.fetch_add(Registered.size(), std::memory_order_relaxed);

  bool HaveWork = !Registered.empty();
  if (HaveWork) {
    // Step 2: force all mutators to execute a fence before any cleaner
    // scans the registered cards. A timeout keeps the registration
    // pending and the pass un-started (see the header).
    // cgc-mole: allow(M3): as above — only try_lock registrars contend
    if (Registry.requestFenceHandshake(Self, Heap.allocBits()) !=
        CooperationResult::Ok) {
      PendingFence.store(true, std::memory_order_relaxed);
      return false;
    }
    RegisteredCount.store(Registered.size(), std::memory_order_release);
  }
  PassesStarted.fetch_add(1, std::memory_order_release);
  CGC_OBS_EVENT_P(Obs, CardCleanPass, Registered.size(), 0);
  return HaveWork;
}

size_t CardCleaner::beginFinalPass() {
  SpinLockGuard Guard(RegistrarLock);
  // May be called repeatedly: overflows during the final drain re-dirty
  // cards, and the caller loops until none remain.
  FinalMode.store(true, std::memory_order_relaxed);

  // Cards registered by an interrupted concurrent pass were cleared from
  // the table but never cleaned — carry them over (world is stopped, so
  // no cleaner is mid-card). A pending-fence registration was never
  // published (RegisteredCount is still 0) but its cards are just as
  // cleared-and-uncleaned: carry the full vector.
  size_t Count = PendingFence.load(std::memory_order_relaxed)
                     ? Registered.size()
                     : RegisteredCount.load(std::memory_order_relaxed);
  PendingFence.store(false, std::memory_order_relaxed);
  size_t Claimed = NextIndex.load(std::memory_order_relaxed);
  if (Claimed > Count)
    Claimed = Count;
  std::vector<uint32_t> Leftover(Registered.begin() + Claimed,
                                 Registered.begin() + Count);

  Registered = std::move(Leftover);
  Cleaned.store(0, std::memory_order_relaxed);
  NextIndex.store(0, std::memory_order_relaxed);
  RegisteredCount.store(0, std::memory_order_release);
  Heap.cards().registerAndClearDirty(Registered);
  TotalRegistered.fetch_add(Registered.size(), std::memory_order_relaxed);
  // Mutators are parked (each fenced on its way in); the collector-side
  // fence completes the protocol.
  fence(FenceSite::CardTableHandshake);
  RegisteredCount.store(Registered.size(), std::memory_order_release);
  CGC_OBS_EVENT_P(Obs, CardCleanPass, Registered.size(), 1);
  return Registered.size();
}

size_t CardCleaner::cleanSome(TraceContext &Ctx, size_t MaxCards) {
  size_t Done = 0;
  bool Final = FinalMode.load(std::memory_order_relaxed);
  // Concurrent passes only: the final pass loops until the card set is
  // drained, so an always-failing site here would loop forever.
  if (!Final && FI && FI->shouldFail(FaultSite::CardCleanStep))
    return 0; // Cleaner yields early; registered cards remain claimable.
  while (Done < MaxCards) {
    // Bounded CAS claim: NextIndex must never pass RegisteredCount.
    // An unconditional fetch_add would let cleaners invoked while no
    // pass is active (or during registration, while the count is still
    // zero) burn indices, permanently skipping cards whose dirty flags
    // the registration already cleared.
    size_t Count = RegisteredCount.load(std::memory_order_acquire);
    std::optional<size_t> I = atomicClaimBelow(NextIndex, Count);
    if (!I)
      break;
    cleanCard(Ctx, Registered[*I]);
    Cleaned.fetch_add(1, std::memory_order_release);
    if (Final)
      CleanedFinal.fetch_add(1, std::memory_order_relaxed);
    else
      CleanedConcurrent.fetch_add(1, std::memory_order_relaxed);
    ++Done;
  }
  if (Done)
    CGC_OBS_EVENT_P(Obs, CardCleanSlice, Done, registeredNotCleaned());
  return Done;
}

void CardCleaner::cleanCard(TraceContext &Ctx, uint32_t Index) {
  uint8_t *Start = Heap.cards().cardStart(Index);
  uint8_t *End = Heap.cards().cardEnd(Index);
  // Step 3: retrace the marked objects on the card by pushing them back
  // onto the work packets (card cleaning "collects roots for further
  // tracing", Section 2.1).
  Heap.markBits().forEachSetInRange(Start, End, [&](uint8_t *Granule) {
    Object *Obj = reinterpret_cast<Object *>(Granule);
    if (Ctx.pushWork(Obj) == PushResult::Overflow) {
      // Packet pool exhausted: leave the object's card dirty so a later
      // pass (or the final one) retraces it.
      Heap.cards().dirty(Obj);
    }
    return true;
  });
}
