//===- GcCore.h - Shared collector machinery bundle -------------*- C++ -*-===//
///
/// \file
/// Owns every subsystem both collectors build on: the heap, the packet
/// pool, the thread registry, the tracer, the card cleaner, the sweeper,
/// the STW worker pool, the pacer and the statistics sink — plus the
/// collection lock and cycle counters that serialize collection cycles
/// against each other and against thread attach/detach.
///
//===----------------------------------------------------------------------===//

#ifndef CGC_GC_GCCORE_H
#define CGC_GC_GCCORE_H

#include "gc/CardCleaner.h"
#include "gc/Compactor.h"
#include "gc/GcOptions.h"
#include "gc/GcStats.h"
#include "gc/Pacer.h"
#include "gc/Sweeper.h"
#include "gc/Tracer.h"
#include "gc/WorkerPool.h"
#include "heap/HeapSpace.h"
#include "mutator/ThreadRegistry.h"
#include "observe/Observe.h"
#include "workpackets/PacketPool.h"

#include <atomic>
#include <mutex>

namespace cgc {

/// Phase of the mostly-concurrent cycle state machine.
enum class GcPhase : int {
  /// No cycle in progress.
  Idle,
  /// Concurrent tracing phase is active.
  Concurrent
};

/// Bundle of all collector subsystems (one per GcHeap).
struct GcCore {
  explicit GcCore(const GcOptions &Opts)
      : Options(Opts), Inject(Opts.Faults),
        Obs(Opts.Observe, Opts.ObserveRingEvents),
        Heap(Opts.HeapBytes,
             // Clamp so every shard can hand out a whole allocation
             // cache; FreeListShards = 1 keeps the legacy single list.
             ShardedFreeList::resolveShardCount(
                 Opts.FreeListShards, Opts.HeapBytes, Opts.AllocCacheBytes),
             &Inject,
             // Ranges below the large-object threshold cannot be relied
             // on for cache refills, so they don't count as refillable
             // (the pacer's stranding-aware kickoff input, DESIGN.md §10).
             Opts.LargeObjectBytes,
             // Fast path: sweep/compaction park small reclaimed runs on
             // the owning shard's remote-free queue (DESIGN.md §16).
             Opts.FastPathSizeClasses),
        Pool(Opts.NumWorkPackets, &Inject, &Obs),
        Compact(Heap, Opts.EvacuationAreaBytes, &Inject),
        Trace(Heap, Pool, Registry, &Compact, Opts.NaiveFenceAccounting,
              &Inject, &Obs),
        Cleaner(Heap, Registry, &Inject, &Obs), Sweep(Heap, &Obs),
        Workers(Opts.GcWorkerThreads, &Inject),
        Pace(Opts, Heap.sizeBytes(), &Obs) {
    // Arm the registry's deadline-aware cooperation waits before any
    // thread can attach (DESIGN.md §13).
    Registry.configureStallDefense(
        uint64_t(Opts.StwGraceMicros) * 1000ull,
        uint64_t(Opts.FenceGraceMicros) * 1000ull, &Inject, &Obs);
  }

  GcOptions Options;
  /// Fault injector shared by every subsystem below (declared first so
  /// it outlives and predates them all). Disarmed unless Options.Faults
  /// enables chaos mode.
  FaultInjector Inject;
  /// Observability hub (declared before every subsystem that records
  /// into it, for the same lifetime reason as Inject). Disabled unless
  /// Options.Observe.
  GcObserver Obs;
  HeapSpace Heap;
  PacketPool Pool;
  ThreadRegistry Registry;
  Compactor Compact;
  Tracer Trace;
  CardCleaner Cleaner;
  Sweeper Sweep;
  WorkerPool Workers;
  Pacer Pace;
  GcStatsCollector Stats;

  /// Serializes collection cycles, thread attach/detach and heap
  /// teardown. Waiters must keep polling (they may have to park).
  std::mutex CollectMutex;

  /// Number of the cycle currently (or last) started; 0 = none yet.
  std::atomic<uint64_t> CycleNumber{0};
  /// Cycles fully completed (sweep done).
  std::atomic<uint64_t> CompletedCycles{0};
  /// Current phase.
  std::atomic<int> Phase{static_cast<int>(GcPhase::Idle)};

  GcPhase phase() const {
    return static_cast<GcPhase>(Phase.load(std::memory_order_acquire));
  }
  void setPhase(GcPhase P) {
    Phase.store(static_cast<int>(P), std::memory_order_release);
  }

  /// Free bytes as the pacer must see them: the free lists' refillable
  /// aggregate, the remote-free queues (both via the heap), plus bytes
  /// parked in per-thread size-class caches. Cached and queued chunks
  /// are memory the allocator will consume without ever touching the
  /// shared lists — invisible, they make free space look smaller than
  /// it is, kicking cycles off late and tripping the watchdog's lag
  /// check on a healthy heap.
  size_t pacerVisibleFreeBytes() {
    size_t Cached = 0;
    if (Options.FastPathSizeClasses)
      Registry.forEach([&Cached](MutatorContext &M) {
        Cached += M.cache().cachedClassBytes();
      });
    return Heap.refillableFreeBytes() + Cached;
  }
};

} // namespace cgc

#endif // CGC_GC_GCCORE_H
