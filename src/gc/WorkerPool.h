//===- WorkerPool.h - Persistent GC worker threads --------------*- C++ -*-===//
///
/// \file
/// A small pool of persistent worker threads used for the fully parallel
/// stop-the-world phases (final card cleaning, marking drain, bitwise
/// sweep — Section 2.2). Workers sleep between jobs; runParallel runs a
/// job on every worker plus the calling thread and blocks until all are
/// done.
///
//===----------------------------------------------------------------------===//

#ifndef CGC_GC_WORKERPOOL_H
#define CGC_GC_WORKERPOOL_H

#include "support/FaultInjector.h"

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace cgc {

/// Persistent thread pool with a fork-join runParallel primitive.
class WorkerPool {
public:
  /// Spawns \p NumWorkers threads (0 is allowed: runParallel then runs
  /// the job only on the caller). \p FI (optional) arms the dispatch
  /// injection site: a hit degrades runParallel to serial execution of
  /// every participant index on the caller — semantically equivalent,
  /// just slower (workers "unavailable").
  explicit WorkerPool(unsigned NumWorkers, FaultInjector *FI = nullptr);
  ~WorkerPool();

  WorkerPool(const WorkerPool &) = delete;
  WorkerPool &operator=(const WorkerPool &) = delete;

  /// Runs \p Job(ParticipantIndex) on every worker (indices 1..N) and on
  /// the calling thread (index 0); returns when all invocations finish.
  /// Not reentrant.
  void runParallel(const std::function<void(unsigned)> &Job);

  /// Number of worker threads (excluding the caller).
  unsigned numWorkers() const { return static_cast<unsigned>(Workers.size()); }

  /// Total participants in a runParallel call (workers + caller).
  unsigned numParticipants() const { return numWorkers() + 1; }

private:
  void workerMain(unsigned Index);

  FaultInjector *FI;
  std::vector<std::thread> Workers;
  std::mutex Mutex;
  std::condition_variable WorkCV;
  std::condition_variable DoneCV;
  const std::function<void(unsigned)> *CurrentJob = nullptr;
  uint64_t JobGeneration = 0;
  unsigned Remaining = 0;
  bool ShuttingDown = false;
};

} // namespace cgc

#endif // CGC_GC_WORKERPOOL_H
