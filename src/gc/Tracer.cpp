//===- Tracer.cpp - Parallel marking engine ----------------------------------//

#include "gc/Tracer.h"

#include "mutator/ThreadRegistry.h"
#include "observe/Observe.h"
#include "support/Fences.h"

#include <bitset>
#include <cstdio>
#include <cassert>

using namespace cgc;

void Tracer::beginCycle() {
  TracedBytes.store(0, std::memory_order_relaxed);
  Overflows.store(0, std::memory_order_relaxed);
  Deferred.store(0, std::memory_order_relaxed);
}

void Tracer::markAndQueue(TraceContext &Ctx, Object *Obj) {
  assert(Heap.contains(Obj) && "marking an object outside the heap");
  if (!Heap.markBits().testAndSet(Obj))
    return; // Already marked (another participant owns scanning it).
  if (Ctx.pushWork(Obj) == PushResult::Ok)
    return;
  // Overflow treatment (Section 4.3): the object stays marked; dirty its
  // card so card cleaning retraces it later.
  Heap.cards().dirty(Obj);
  uint64_t Total = Overflows.fetch_add(1, std::memory_order_relaxed) + 1;
  // Size 0: queueing never reads the object (its header may not be
  // visible yet under the Section 5.2 protocol).
  CGC_OBS_EVENT_P(Obs, Overflow, 0, Total);
}

size_t Tracer::scanObject(TraceContext &Ctx, Object *Obj) {
  if (NaiveFences)
    recordNaiveFence(FenceSite::NaivePerObjectTrace);
  unsigned NumRefs = Obj->numRefs();
  for (unsigned I = 0; I < NumRefs; ++I) {
    Object *Child = Obj->loadRef(I);
    if (!Child)
      continue;
#ifndef NDEBUG
    if (!Heap.contains(Child)) {
      std::fprintf(stderr,
                   "tracer: junk ref %p in slot %u of %p (off=%zu size=%u "
                   "refs=%u class=%u alloc=%d mark=%d)\n",
                   static_cast<void *>(Child), I, static_cast<void *>(Obj),
                   static_cast<size_t>(reinterpret_cast<uint8_t *>(Obj) -
                                       Heap.base()),
                   Obj->sizeBytes(), Obj->numRefs(), Obj->classId(),
                   Heap.allocBits().test(Obj), Heap.markBits().test(Obj));
      assert(false && "reference slot points outside the heap");
    }
#endif
    // Incremental compaction (Section 2.3): track every reference into
    // the evacuation area, during both concurrent and STW marking.
    if (Compact && Compact->inEvacArea(Child))
      Compact->recordSlot(Obj, I);
    markAndQueue(Ctx, Child);
  }
  size_t Size = Obj->sizeBytes();
  TracedBytes.fetch_add(Size, std::memory_order_relaxed);
  return Size;
}

size_t Tracer::traceWork(TraceContext &Ctx, size_t BudgetBytes,
                         bool CheckAllocBits, bool AbortOnStopRequest) {
  size_t Done = 0;
  // Safety classification of the current input packet's entries
  // (indices match the packet's LIFO positions).
  std::bitset<WorkPacket::Capacity> Safe;

  while (Done < BudgetBytes) {
    if (AbortOnStopRequest && Registry.stopRequested())
      break;
    if (FI && CheckAllocBits) {
      // Concurrent increments only (CheckAllocBits is false exactly when
      // the world is stopped, and the final drain must run to
      // completion): an injected hit ends the increment early so the
      // pacer falls behind and the watchdog/ladder paths get exercised.
      FI->maybePerturb(FaultSite::TracerStep);
      if (FI->shouldFail(FaultSite::TracerStep))
        break;
    }
    if (!Ctx.ensureInputWork())
      break;
    WorkPacket *In = Ctx.input();
    uint32_t N = In->count();
    if (CheckAllocBits) {
      // Section 5.2 tracer steps 2-3: sample every entry's allocation
      // bit, then one fence for the whole batch. The acquire sample
      // pairs with the allocator's release publication so the ordering
      // is also visible to TSan (see BitVector8::testAcquire).
      for (uint32_t I = 0; I < N; ++I)
        Safe[I] = Heap.allocBits().testAcquire(In->peek(I));
      fence(FenceSite::TracerBatch);
    }
    // Consume this batch (budget permitting). scanObject can trigger the
    // swap exception, which changes which packet is the input; the
    // classification is only valid for the packet it was taken on, so
    // stop and re-classify when that happens.
    while (Ctx.input() == In && !In->empty() && In->count() <= N &&
           Done < BudgetBytes) {
      uint32_t Index = In->count() - 1;
      Object *Obj = In->pop();
#ifndef NDEBUG
      // With the world stopped every cache is flushed: a queued object
      // without its allocation bit is a stale corpse (missed live
      // object in an earlier cycle).
      if (!CheckAllocBits && !Heap.allocBits().test(Obj)) {
        uint8_t *G = reinterpret_cast<uint8_t *>(Obj);
        uint8_t *PrevAlloc = Heap.allocBits().findPrevSet(G);
        std::fprintf(
            stderr,
            "tracer: corpse %p in final drain (off=%zu hdr=%016llx "
            "mark=%d; prev alloc granule %p (delta=%td) hdr=%016llx "
            "size=%u refs=%u class=%u mark=%d)\n",
            static_cast<void *>(Obj),
            static_cast<size_t>(G - Heap.base()),
            static_cast<unsigned long long>(
                *reinterpret_cast<uint64_t *>(G)),
            Heap.markBits().test(G), static_cast<void *>(PrevAlloc),
            PrevAlloc ? G - PrevAlloc : 0,
            PrevAlloc ? static_cast<unsigned long long>(
                            *reinterpret_cast<uint64_t *>(PrevAlloc))
                      : 0ull,
            PrevAlloc ? reinterpret_cast<Object *>(PrevAlloc)->sizeBytes()
                      : 0,
            PrevAlloc ? reinterpret_cast<Object *>(PrevAlloc)->numRefs() : 0,
            PrevAlloc ? reinterpret_cast<Object *>(PrevAlloc)->classId() : 0,
            PrevAlloc ? Heap.markBits().test(PrevAlloc) : 0);
        assert(false && "unallocated object queued during the final drain");
      }
#endif
      if (CheckAllocBits && !Safe[Index]) {
        // Allocation bit not visible: the object's initializing stores
        // may not be either. Defer it (Section 5.2 step 4).
        Deferred.fetch_add(1, std::memory_order_relaxed);
        if (!Ctx.pushDeferred(Obj)) {
          // No empty packet for the deferred side: fall back to the
          // overflow treatment; the object is already marked, so a dirty
          // card gets it retraced once its bits are published.
          Heap.cards().dirty(Obj);
          uint64_t Total = Overflows.fetch_add(1, std::memory_order_relaxed) + 1;
          // Size 0: the object's header may not be visible yet (that is
          // why it was deferred), so it must not be read here.
          CGC_OBS_EVENT_P(Obs, Overflow, 0, Total);
        }
        continue;
      }
      Done += scanObject(Ctx, Obj);
    }
  }
  return Done;
}
