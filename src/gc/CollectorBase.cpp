//===- CollectorBase.cpp - Shared stop-the-world machinery --------------------//

#include "gc/CollectorBase.h"

#include "gc/HeapVerifier.h"
#include "support/Timing.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <thread>

using namespace cgc;

Collector::~Collector() = default;

bool CollectorBase::acquireCollectLock(MutatorContext *Ctx,
                                       uint64_t ObservedCompleted) {
  while (!C.CollectMutex.try_lock()) {
    if (Ctx)
      C.Registry.poll(*Ctx, C.Heap.allocBits());
    std::this_thread::yield();
    if (C.CompletedCycles.load(std::memory_order_acquire) !=
        ObservedCompleted)
      return false; // Someone else finished a cycle for us.
  }
  return true;
}

void CollectorBase::initializeCycle(unsigned ConcurrentCleaningPasses) {
  // The previous cycle's lazy sweep must complete before its mark bits
  // are reused.
  C.Sweep.finishLazySweep();
  C.Heap.markBits().clearAll();
  C.Heap.cards().clearAll();
  C.Trace.beginCycle();
  C.Cleaner.beginCycle(ConcurrentCleaningPasses);
  uint64_t Cycle = C.CycleNumber.fetch_add(1, std::memory_order_release) + 1;
  // Incremental compaction: choose the area to evacuate before any
  // marking starts (Section 2.3). The fragmentation-guided selection
  // runs here because the free list is fully populated — the previous
  // generation's sweep (lazy or not) finished above. Under lazy sweep
  // the evacuation still happens inside the pause: sweepWorld sweeps
  // enough chunks in-pause for target space and excludes the armed
  // area from the whole sweep generation.
  if (C.Options.CompactEveryNCycles != 0 &&
      Cycle % C.Options.CompactEveryNCycles == 0)
    C.Compact.armForCycle();
}

void CollectorBase::scanAllStacks(TraceContext &Ctx) {
  uint64_t Cycle = C.CycleNumber.load(std::memory_order_relaxed);
  C.Registry.forEach([&](MutatorContext &M) {
    M.withRoots([&](const std::vector<uintptr_t> &Roots) {
      for (uintptr_t Word : Roots)
        C.Trace.markConservativeWord(Ctx, Word);
    });
    M.StackScanCycle.store(Cycle, std::memory_order_release);
  });
}

void CollectorBase::drainAllPackets() {
  C.Workers.runParallel([this](unsigned) {
    TraceContext Ctx(C.Pool);
    for (;;) {
      size_t Traced = C.Trace.traceWork(Ctx, 256u << 10,
                                        /*CheckAllocBits=*/false,
                                        /*AbortOnStopRequest=*/false);
      if (Traced != 0)
        continue;
      Ctx.release();
      if (C.Pool.allPacketsEmptyAndIdle())
        return;
      std::this_thread::yield();
    }
  });
}

void CollectorBase::parallelFinalMark(CycleRecord &Record) {
  // With the world stopped every cache has been flushed, so deferred
  // objects are safe to trace now: put them back in circulation.
  C.Pool.redistributeDeferred();

  for (;;) {
    Stopwatch CleanTimer;
    size_t Registered = C.Cleaner.beginFinalPass();
    if (Registered != 0) {
      C.Workers.runParallel([this](unsigned) {
        TraceContext Ctx(C.Pool);
        while (C.Cleaner.cleanSome(Ctx, 16) != 0)
          ;
        Ctx.release();
      });
    }
    Record.FinalCardCleanMs += CleanTimer.elapsedMillis();

    Stopwatch MarkTimer;
    drainAllPackets();
    Record.FinalMarkMs += MarkTimer.elapsedMillis();

    // Marking or cleaning overflows re-dirty cards; loop until none
    // remain (rare — requires packet-pool exhaustion).
    if (Registered == 0 && C.Heap.cards().countDirty() == 0)
      break;
  }
  assert(C.Pool.allPacketsEmptyAndIdle() && "packets left after final mark");
}

void CollectorBase::runFullStwCycle(MutatorContext *Ctx) {
  CycleRecord Record;
  Record.Concurrent = false;
  uint64_t SyncOpsBefore = C.Pool.stats().SyncOps;

  CGC_OBS_EVENT(C.Obs, StwBegin,
                C.CycleNumber.load(std::memory_order_relaxed) + 1, 2);
  Stopwatch Pause;
  C.Registry.stopTheWorld(Ctx, C.Heap.allocBits());
  Record.StopMs = Pause.elapsedMillis();

  initializeCycle(/*ConcurrentCleaningPasses=*/0);
  Record.CycleNumber = C.CycleNumber.load(std::memory_order_relaxed);

  // Publish every cache's allocation bits (threads are quiescent; parked
  // threads flushed on their way in, this covers the master and idlers).
  C.Registry.forEach([this](MutatorContext &M) {
    M.cache().flushAllocBits(C.Heap.allocBits());
  });

  Stopwatch ScanTimer;
  {
    TraceContext RootCtx(C.Pool);
    scanAllStacks(RootCtx);
    RootCtx.release();
  }
  Record.StackRescanMs = ScanTimer.elapsedMillis();

  // parallelFinalMark (not a bare drain): marking overflows under packet
  // pressure fall back to mark-and-dirty-card, and those cards must be
  // cleaned before sweeping — in a pure STW cycle just like in the
  // concurrent finish.
  parallelFinalMark(Record);
  Record.BytesTracedFinal = C.Trace.cycleTracedBytes();

  sweepWorld(Record);
  Record.PauseMs = Pause.elapsedMillis();
  Record.SyncOps = C.Pool.stats().SyncOps - SyncOpsBefore;

  CGC_OBS_EVENT(C.Obs, StwEnd, Record.CycleNumber,
                static_cast<uint64_t>(Record.PauseMs * 1e6));
  recordCycleObservability(Record);
  C.Stats.addCycle(Record);
  CGC_OBS_EVENT(C.Obs, CycleComplete, Record.CycleNumber, 0);
  C.CompletedCycles.fetch_add(1, std::memory_order_release);
  C.Registry.resumeTheWorld();
}

void CollectorBase::sweepWorld(CycleRecord &Record) {
  if (C.Options.VerifyEachCycle) {
    HeapVerifier Verifier(C.Heap);
    VerifyResult Result = Verifier.verify(C.Registry, /*CheckMarks=*/true);
    if (!Result.Ok) {
      std::fprintf(stderr,
                   "cgc: heap verification failed: %s\n"
                   "cgc: cycle=%llu overflows=%llu deferred=%llu "
                   "cleaned-conc=%llu cleaned-final=%llu dirty-now=%zu "
                   "pool-empty-idle=%d has-deferred=%d\n",
                   Result.Error.c_str(),
                   static_cast<unsigned long long>(
                       C.CycleNumber.load(std::memory_order_relaxed)),
                   static_cast<unsigned long long>(C.Trace.overflowCount()),
                   static_cast<unsigned long long>(C.Trace.deferredCount()),
                   static_cast<unsigned long long>(
                       C.Cleaner.cleanedConcurrent()),
                   static_cast<unsigned long long>(C.Cleaner.cleanedFinal()),
                   C.Heap.cards().countDirty(),
                   C.Pool.allPacketsEmptyAndIdle(), C.Pool.hasDeferred());
      std::abort();
    }
  }

  Stopwatch SweepTimer;
  // Every thread's cache is quiescent (world stopped) and flushed; drop
  // ownership so the sweep can reclaim the unused tails and parked
  // size-class chunks (they are unmarked memory the bitwise sweep
  // re-derives — flushing them to the free list here would double-own
  // every byte once the sweep re-inserts it).
  C.Registry.forEach([](MutatorContext &M) {
    assert(!M.cache().hasUnflushedObjects() && "unflushed cache at sweep");
    M.cache().reset();
  });
  // Same fate for the remote-free queues: parked chunks have clear mark
  // bits, so the sweep below re-derives them as free runs.
  C.Heap.resetRemoteQueues();

  // Latch the sweep generation's evacuation-exclusion window before the
  // sweep is armed: the armed area's bits and free ranges belong to the
  // compactor's rebuild, and a late lazy chunk must never re-insert
  // them (it could hand a future evacuation an in-area target, or
  // double-add the rebuilt ranges). The window deliberately persists
  // past disarm, until the next generation's sweepWorld replaces it.
  {
    auto [AreaLo, AreaHi] = C.Compact.area();
    C.Sweep.setEvacuationExclusion(AreaLo, AreaHi);
  }

  if (C.Options.LazySweep) {
    C.Sweep.armLazySweep();
    if (C.Compact.armed()) {
      // Evacuation targets come from the free list, which lazy arming
      // just cleared: sweep enough outside-area chunks in-pause to
      // cover the worst-case evacuation demand (the exclusion window
      // keeps every reclaimed range a valid target source).
      C.Sweep.sweepUntilFree(2 * C.Options.EvacuationAreaBytes);
    }
    Record.SweepMs = SweepTimer.elapsedMillis();
    // Live bytes are only known once the lazy sweep completes; report
    // the occupied estimate at pause end instead.
    Record.LiveBytesAfter = C.Heap.occupiedBytes();
    CGC_OBS_EVENT(C.Obs, SweepSlice, Record.LiveBytesAfter, 1);
  } else {
    Record.LiveBytesAfter = C.Sweep.sweepAll(&C.Workers);
    Record.SweepMs = SweepTimer.elapsedMillis();
    CGC_OBS_EVENT(C.Obs, SweepSlice, Record.LiveBytesAfter, 0);
  }

  if (C.Compact.armed()) {
    // "After sweep we evacuate the objects from the area and fix up the
    // references to the evacuated objects" (Section 2.3).
    Stopwatch CompactTimer;
    auto [AreaLo, AreaHi] = C.Compact.area();
    CGC_OBS_EVENT(C.Obs, CompactionBegin, Record.CycleNumber,
                  static_cast<uint64_t>(AreaHi - AreaLo));
    Compactor::Stats S =
        C.Compact.evacuate(C.Registry, &C.Workers, &C.Sweep);
    Record.CompactionMs = CompactTimer.elapsedMillis();
    Record.CompactionAreasScored = S.AreasScored;
    Record.EvacuatedObjects = S.EvacuatedObjects;
    Record.EvacuatedBytes = S.EvacuatedBytes;
    Record.PinnedObjects = S.PinnedObjects;
    Record.CompactionFailedMoves = S.FailedObjects;
    Record.CompactionSlotsFixed = S.SlotsFixed;
    CGC_OBS_EVENT(C.Obs, CompactionEnd, S.EvacuatedBytes,
                  S.PinnedObjects + S.FailedObjects);
    if (C.Options.VerifyEachCycle) {
      HeapVerifier Verifier(C.Heap);
      VerifyResult Result = Verifier.verify(C.Registry, /*CheckMarks=*/true);
      if (!Result.Ok) {
        std::fprintf(stderr,
                     "cgc: post-compaction verification failed: %s\n",
                     Result.Error.c_str());
        std::abort();
      }
    }
  }

  Record.FreeBytesAfter = C.Heap.freeBytes();
  Record.LargestFreeRangeAfter = C.Heap.freeList().largestRange();
  Record.HeapBytes = C.Heap.sizeBytes();
}

void CollectorBase::recordCycleObservability(const CycleRecord &Record) {
#if CGC_OBSERVE_COMPILED
  if (!C.Obs.enabled())
    return;
  auto ToNs = [](double Ms) {
    return Ms <= 0 ? 0ull : static_cast<uint64_t>(Ms * 1e6);
  };
  MetricsRegistry &M = C.Obs.metrics();
  M.histogram(PauseMetric::TotalPause).record(ToNs(Record.PauseMs));
  M.histogram(PauseMetric::FinalCardClean).record(ToNs(Record.FinalCardCleanMs));
  M.histogram(PauseMetric::FinalMark).record(ToNs(Record.FinalMarkMs));
  M.histogram(PauseMetric::Sweep).record(ToNs(Record.SweepMs));

  CycleGauges G;
  G.Cycle = Record.CycleNumber;
  G.Concurrent = Record.Concurrent ? 1 : 0;
  G.KTarget = C.Options.TracingRate;
  // Achieved tracing rate over the concurrent window (Table 1's "K").
  G.KActual = Record.BytesAllocatedConcurrent
                  ? static_cast<double>(Record.BytesTracedConcurrent) /
                        static_cast<double>(Record.BytesAllocatedConcurrent)
                  : 0.0;
  G.Best = C.Pace.estimateBest();
  PacketPoolOccupancy Occ = C.Pool.occupancy();
  G.PoolEmpty = Occ.Empty;
  G.PoolNonEmpty = Occ.NonEmpty;
  G.PoolAlmostFull = Occ.AlmostFull;
  G.PoolDeferred = Occ.Deferred;
  G.LiveAfterBytes = Record.LiveBytesAfter;
  G.HeapBytes = Record.HeapBytes;
  G.CompactionAreasScored = Record.CompactionAreasScored;
  G.CompactionEvacuatedBytes = Record.EvacuatedBytes;
  G.CompactionPinnedObjects = Record.PinnedObjects;
  G.CompactionFailedMoves = Record.CompactionFailedMoves;
  M.addCycleGauges(G);
#else
  (void)Record;
#endif
}
