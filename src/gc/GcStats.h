//===- GcStats.h - Per-cycle collection statistics --------------*- C++ -*-===//
///
/// \file
/// Per-cycle measurement records and their aggregation. Every metric in
/// the paper's evaluation (Section 6) is computed from these records:
/// pause times and their mark/sweep decomposition, cards cleaned
/// concurrently vs in the pause, premature-completion free space, cards
/// left at allocation failure, per-cycle allocation rates, tracing
/// factors and their fairness, and synchronization costs.
///
//===----------------------------------------------------------------------===//

#ifndef CGC_GC_GCSTATS_H
#define CGC_GC_GCSTATS_H

#include "support/SampleSeries.h"
#include "support/SpinLock.h"

#include <array>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <vector>

namespace cgc {

/// Rungs of the allocation-failure degradation ladder, in escalation
/// order (GcHeap::runAllocationLadder). The final stop-the-world finish
/// rung is also the cycle watchdog's escalation target.
enum class EscalationRung : unsigned {
  /// Rung 1: retry the refill (transient contention/injection).
  RefillRetry,
  /// Rung 2: finish the pending lazy sweep, then retry.
  SweepFinish,
  /// Rung 3: force the active concurrent cycle to its STW finish.
  StwFinish,
  /// Rung 4: run a full stop-the-world collection.
  FullStw,
  /// Rung 5: report AllocationFailure to the caller (never abort).
  AllocationFailure,
  NumRungs
};

/// Human-readable rung name.
const char *escalationRungName(EscalationRung Rung);

/// Snapshot of the escalation counters.
struct EscalationCounts {
  std::array<uint64_t, static_cast<unsigned>(EscalationRung::NumRungs)>
      Rungs{};
  uint64_t WatchdogTrips = 0;
  uint64_t HandshakeAborts = 0;

  uint64_t rung(EscalationRung R) const {
    return Rungs[static_cast<unsigned>(R)];
  }
};

/// Everything measured about one collection cycle.
struct CycleRecord {
  uint64_t CycleNumber = 0;
  /// True for a mostly-concurrent cycle, false for a pure STW cycle.
  bool Concurrent = false;
  /// True when concurrent tracing terminated before memory ran out.
  bool CompletedConcurrently = false;

  /// Total final stop-the-world pause, and its decomposition (ms).
  double PauseMs = 0;
  double StopMs = 0;
  double FinalCardCleanMs = 0;
  double StackRescanMs = 0;
  double FinalMarkMs = 0;
  double SweepMs = 0;

  /// Duration of the concurrent phase and of the preceding quiet period.
  double ConcurrentPhaseMs = 0;
  double PreConcurrentMs = 0;

  /// Card-cleaning work split.
  uint64_t CardsCleanedConcurrent = 0;
  uint64_t CardsCleanedFinal = 0;
  /// Cards the concurrent phase still had to clean when it was halted by
  /// an allocation failure ("Cards Left", Section 6.2).
  uint64_t CardsLeftAtFailure = 0;

  /// Free space remaining when concurrent tracing completed all its work
  /// ("Premature GC Free Space", Section 6.2). Zero if halted by failure.
  uint64_t FreeAtConcurrentCompletion = 0;

  /// Tracing volumes (bytes of objects scanned).
  uint64_t BytesTracedConcurrent = 0;
  uint64_t BytesTracedFinal = 0;
  uint64_t BytesTracedByBackground = 0;

  /// Allocation volumes in the two windows (bytes).
  uint64_t BytesAllocatedPreConcurrent = 0;
  uint64_t BytesAllocatedConcurrent = 0;

  /// Heap state after the sweep.
  uint64_t LiveBytesAfter = 0;
  uint64_t FreeBytesAfter = 0;
  uint64_t LargestFreeRangeAfter = 0;
  uint64_t HeapBytes = 0;

  /// Incremental compaction (when an area was evacuated this cycle).
  double CompactionMs = 0;
  uint64_t CompactionAreasScored = 0;
  uint64_t EvacuatedObjects = 0;
  uint64_t EvacuatedBytes = 0;
  uint64_t PinnedObjects = 0;
  uint64_t CompactionFailedMoves = 0;
  uint64_t CompactionSlotsFixed = 0;

  /// Weak-ordering / packet events.
  uint64_t DeferredObjects = 0;
  uint64_t Overflows = 0;
  uint64_t SyncOps = 0;

  /// Load-balancing quality of the cycle's tracing increments
  /// (Section 6.3): mean tracing factor and its standard deviation.
  double TracingFactorMean = 0;
  double TracingFactorStddev = 0;
  uint64_t TracingIncrements = 0;
};

/// Thread-safe container of cycle records.
class GcStatsCollector {
public:
  /// Appends a finished cycle's record.
  void addCycle(const CycleRecord &Record) {
    SpinLockGuard Guard(Lock);
    Cycles.push_back(Record);
  }

  /// Copies out all records.
  std::vector<CycleRecord> snapshot() const {
    SpinLockGuard Guard(Lock);
    return Cycles;
  }

  /// Number of completed cycles.
  size_t numCycles() const {
    SpinLockGuard Guard(Lock);
    return Cycles.size();
  }

  /// Clears all records and the escalation counters.
  void reset() {
    {
      SpinLockGuard Guard(Lock);
      Cycles.clear();
    }
    for (auto &C : Escalations)
      C.store(0, std::memory_order_relaxed);
    WatchdogTripsV.store(0, std::memory_order_relaxed);
    HandshakeAbortsV.store(0, std::memory_order_relaxed);
  }

  /// --- Degradation-ladder accounting ---------------------------------

  /// Records that the allocator escalated into \p Rung (counted on entry
  /// to the rung, whether or not the rung's remedy then succeeded).
  void noteEscalation(EscalationRung Rung) {
    Escalations[static_cast<unsigned>(Rung)].fetch_add(
        1, std::memory_order_relaxed);
  }

  /// Records one watchdog-forced STW finish.
  void noteWatchdogTrip() {
    WatchdogTripsV.fetch_add(1, std::memory_order_relaxed);
  }

  /// Records one cycle aborted to STW-finish because fence handshakes
  /// kept timing out (the cooperation-stall strike escalation).
  void noteHandshakeAbort() {
    HandshakeAbortsV.fetch_add(1, std::memory_order_relaxed);
  }

  uint64_t escalationCount(EscalationRung Rung) const {
    return Escalations[static_cast<unsigned>(Rung)].load(
        std::memory_order_relaxed);
  }

  uint64_t watchdogTrips() const {
    return WatchdogTripsV.load(std::memory_order_relaxed);
  }

  uint64_t handshakeAborts() const {
    return HandshakeAbortsV.load(std::memory_order_relaxed);
  }

  /// Snapshot of all escalation counters.
  EscalationCounts escalations() const;

  /// Prints the degradation-ladder table (one row per rung that fired,
  /// plus the watchdog) to \p Out.
  void printEscalations(std::FILE *Out) const;

private:
  mutable SpinLock Lock;
  std::vector<CycleRecord> Cycles;
  std::array<std::atomic<uint64_t>,
             static_cast<unsigned>(EscalationRung::NumRungs)>
      Escalations{};
  std::atomic<uint64_t> WatchdogTripsV{0};
  std::atomic<uint64_t> HandshakeAbortsV{0};
};

/// Aggregates over a set of cycle records (helper for the benches).
struct GcAggregates {
  size_t NumCycles = 0;
  double AvgPauseMs = 0;
  double MaxPauseMs = 0;
  /// Mark component of the pause: final card cleaning + stack rescan +
  /// final marking.
  double AvgMarkMs = 0;
  double MaxMarkMs = 0;
  double AvgSweepMs = 0;
  double AvgLiveBytesAfter = 0;
  double AvgCardsCleanedFinal = 0;
  double AvgCardsCleanedConcurrent = 0;

  /// Computes aggregates over \p Records.
  static GcAggregates compute(const std::vector<CycleRecord> &Records);
};

} // namespace cgc

#endif // CGC_GC_GCSTATS_H
