//===- Tracer.h - Parallel marking engine -----------------------*- C++ -*-===//
///
/// \file
/// The marking engine shared by every tracing participant (mutators
/// doing increments, background threads, STW workers).
///
/// markAndQueue sets the mark bit (atomic test-and-set) and queues the
/// object on the participant's output packet; a full pool triggers the
/// overflow treatment of Section 4.3 — the object stays marked and its
/// card is dirtied so card cleaning retraces it later.
///
/// traceWork consumes input packets with the allocation-bit safety
/// protocol of Section 5.2: the entries of an input packet are first
/// classified safe/unsafe by their allocation bits, ONE fence is issued,
/// then safe objects are scanned and unsafe ones are deferred to the
/// Deferred sub-pool (their header stores may not be visible yet).
///
//===----------------------------------------------------------------------===//

#ifndef CGC_GC_TRACER_H
#define CGC_GC_TRACER_H

#include "gc/Compactor.h"
#include "heap/HeapSpace.h"
#include "support/FaultInjector.h"
#include "workpackets/TraceContext.h"

#include <atomic>
#include <cstdint>

namespace cgc {

class GcObserver;
class ThreadRegistry;

/// Parallel marker over a HeapSpace using a PacketPool.
class Tracer {
public:
  /// \p FI (optional) arms the tracer-step injection site: an injected
  /// hit ends a tracing increment early (under-filling its budget), the
  /// way a mutator outrunning the tracer looks to the pacer. \p Obs
  /// (optional) receives overflow events.
  Tracer(HeapSpace &Heap, PacketPool &Pool, ThreadRegistry &Registry,
         Compactor *Compact = nullptr, bool NaiveFenceAccounting = false,
         FaultInjector *FI = nullptr, GcObserver *Obs = nullptr)
      : Heap(Heap), Pool(Pool), Registry(Registry), Compact(Compact),
        NaiveFences(NaiveFenceAccounting), FI(FI), Obs(Obs) {}

  /// Resets the per-cycle counters (call at cycle initialization).
  void beginCycle();

  /// Marks \p Obj if unmarked and queues it for scanning. Safe for any
  /// participant; \p Obj must be a real object start (callers validate
  /// conservative words first).
  void markAndQueue(TraceContext &Ctx, Object *Obj);

  /// Conservative root: treats \p Word as a reference only if it passes
  /// the heap's plausibility filter (range, alignment, allocation bit).
  void markConservativeWord(TraceContext &Ctx, uintptr_t Word) {
    if (Heap.isPlausibleObject(Word))
      markAndQueue(Ctx, reinterpret_cast<Object *>(Word));
  }

  /// Performs up to \p BudgetBytes of tracing using \p Ctx.
  ///
  /// \p CheckAllocBits enables the Section 5.2 deferral protocol (on
  /// during the concurrent phase; off during the final STW drain when
  /// every cache has been flushed).
  /// \p AbortOnStopRequest makes the loop return early when a
  /// stop-the-world has been requested (mutator increments must not
  /// delay the pause; STW workers pass false).
  /// Returns the number of object bytes scanned.
  size_t traceWork(TraceContext &Ctx, size_t BudgetBytes, bool CheckAllocBits,
                   bool AbortOnStopRequest);

  /// Scans one object's reference slots, marking and queueing children.
  /// Returns the object's size in bytes (the unit of tracing work).
  size_t scanObject(TraceContext &Ctx, Object *Obj);

  /// Total bytes traced since beginCycle (the progress formula's T).
  uint64_t cycleTracedBytes() const {
    return TracedBytes.load(std::memory_order_relaxed);
  }

  /// Adds externally performed tracing work to the cycle total.
  void addTracedBytes(uint64_t Bytes) {
    TracedBytes.fetch_add(Bytes, std::memory_order_relaxed);
  }

  uint64_t overflowCount() const {
    return Overflows.load(std::memory_order_relaxed);
  }
  uint64_t deferredCount() const {
    return Deferred.load(std::memory_order_relaxed);
  }

private:
  HeapSpace &Heap;
  PacketPool &Pool;
  ThreadRegistry &Registry;
  Compactor *Compact;
  const bool NaiveFences;
  FaultInjector *FI;
  GcObserver *Obs;

  std::atomic<uint64_t> TracedBytes{0};
  std::atomic<uint64_t> Overflows{0};
  std::atomic<uint64_t> Deferred{0};
};

} // namespace cgc

#endif // CGC_GC_TRACER_H
