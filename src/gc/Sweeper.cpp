//===- Sweeper.cpp - Parallel bitwise sweep -----------------------------------//

#include "gc/Sweeper.h"

#include "gc/WorkerPool.h"
#include "observe/Observe.h"

#include <cassert>

using namespace cgc;

/// Free ranges smaller than this stay dark (their allocation bits are
/// still cleared, so they can never be resurrected by a conservative
/// scan); they are reclaimed once a neighbouring object dies.
static constexpr size_t MinFreeRangeBytes = 64;

Sweeper::Sweeper(HeapSpace &Heap, GcObserver *Obs)
    : Heap(Heap),
      NumChunks((Heap.sizeBytes() + ChunkBytes - 1) / ChunkBytes), Obs(Obs) {}

uint8_t *Sweeper::chunkSweepStart(size_t Index) const {
  uint8_t *ChunkStart = Heap.base() + Index * ChunkBytes;
  if (Index == 0)
    return ChunkStart;
  uint8_t *PrevMarked = Heap.markBits().findPrevSet(ChunkStart);
  if (!PrevMarked)
    return ChunkStart;
  Object *Prev = reinterpret_cast<Object *>(PrevMarked);
  uint8_t *PrevEnd = Prev->end();
  return PrevEnd > ChunkStart ? PrevEnd : ChunkStart;
}

Sweeper::ChunkResult Sweeper::sweepChunk(size_t Index) {
  ChunkResult Result;
  uint8_t *ChunkEnd = Heap.base() + (Index + 1) * ChunkBytes;
  if (ChunkEnd > Heap.limit())
    ChunkEnd = Heap.limit();
  uint8_t *Pos = chunkSweepStart(Index);

  auto reclaimRaw = [&](uint8_t *From, uint8_t *To) {
    if (From >= To)
      return;
    Heap.allocBits().clearRange(From, To);
    size_t Size = static_cast<size_t>(To - From);
    if (Size >= MinFreeRangeBytes) {
      // Routed to the shard owning the addresses: small runs go to its
      // lock-free remote-free queue when the fast path is on, larger
      // (or straddling) runs split across the shards' locked lists.
      Heap.releaseRange(From, Size);
      Result.FreedBytes += Size;
    }
  };
  // The compactor's armed area is excluded for the whole generation:
  // its bits and free ranges are rebuilt by the evacuation itself, and
  // re-inserting them here could hand out in-area evacuation targets or
  // double-add the rebuilt ranges (see setEvacuationExclusion).
  uint8_t *XLo = ExclLo.load(std::memory_order_relaxed);
  uint8_t *XHi = ExclHi.load(std::memory_order_relaxed);
  auto reclaim = [&](uint8_t *From, uint8_t *To) {
    if (XLo < XHi && From < XHi && To > XLo) {
      reclaimRaw(From, XLo < From ? From : XLo);
      reclaimRaw(XHi > To ? To : XHi, To);
      return;
    }
    reclaimRaw(From, To);
  };

  while (Pos < ChunkEnd) {
    uint8_t *NextMarked = Heap.markBits().findNextSet(Pos, ChunkEnd);
    if (!NextMarked) {
      reclaim(Pos, ChunkEnd);
      break;
    }
    reclaim(Pos, NextMarked);
    Object *Live = reinterpret_cast<Object *>(NextMarked);
    Result.LiveBytes += Live->sizeBytes();
    Pos = Live->end(); // May extend past ChunkEnd; the next chunk's
                       // leading-edge resolution accounts for it.
  }
  return Result;
}

uint64_t Sweeper::sweepAll(WorkerPool *Workers) {
  Heap.freeList().clear();
  Cursor.store(0, std::memory_order_relaxed);
  LiveBytesFound.store(0, std::memory_order_relaxed);
  LazyActive.store(false, std::memory_order_relaxed);

  auto SweepJob = [this](unsigned) {
    uint64_t Live = 0;
    for (;;) {
      size_t Index = Cursor.fetch_add(1, std::memory_order_relaxed);
      if (Index >= NumChunks)
        break;
      Live += sweepChunk(Index).LiveBytes;
    }
    LiveBytesFound.fetch_add(Live, std::memory_order_relaxed);
  };

  if (Workers)
    Workers->runParallel(SweepJob);
  else
    SweepJob(0);
  return LiveBytesFound.load(std::memory_order_relaxed);
}

void Sweeper::armLazySweep() {
  Heap.freeList().clear();
  Cursor.store(0, std::memory_order_relaxed);
  LiveBytesFound.store(0, std::memory_order_relaxed);
  LazyActive.store(true, std::memory_order_release);
}

uint64_t Sweeper::sweepUntilFree(size_t FreeBytesWanted) {
  if (!LazyActive.load(std::memory_order_acquire))
    return 0;
  ActiveSweepers.fetch_add(1, std::memory_order_acquire);
  uint64_t Freed = 0;
  uint64_t Live = 0;
  for (;;) {
    size_t Index = Cursor.fetch_add(1, std::memory_order_relaxed);
    if (Index >= NumChunks) {
      LazyActive.store(false, std::memory_order_release);
      break;
    }
    ChunkResult R = sweepChunk(Index);
    Freed += R.FreedBytes;
    Live += R.LiveBytes;
    if (Freed >= FreeBytesWanted)
      break;
  }
  LiveBytesFound.fetch_add(Live, std::memory_order_relaxed);
  ActiveSweepers.fetch_sub(1, std::memory_order_release);
  if (Freed != 0)
    CGC_OBS_EVENT_P(Obs, SweepSlice, Freed, 1);
  return Freed;
}

void Sweeper::finishLazySweep() {
  while (LazyActive.load(std::memory_order_acquire))
    sweepUntilFree(SIZE_MAX);
  // A laggard sweeper may still be mid-chunk reading mark bits; the next
  // cycle must not clear them underneath it.
  while (ActiveSweepers.load(std::memory_order_acquire) != 0)
    std::this_thread::yield();
}
