//===- HeapVerifier.cpp - Reachability and invariant checks -------------------//

#include "gc/HeapVerifier.h"

#include "mutator/ThreadRegistry.h"

#include <cstdio>
#include <vector>

using namespace cgc;

bool HeapVerifier::checkObject(const Object *Obj,
                               VerifyResult &Result) const {
  char Buf[160];
  if (!Heap.contains(Obj) ||
      reinterpret_cast<uintptr_t>(Obj) % GranuleBytes != 0) {
    std::snprintf(Buf, sizeof(Buf), "object %p outside heap or misaligned",
                  static_cast<const void *>(Obj));
    Result.Error = Buf;
    return false;
  }
  if (!Heap.allocBits().test(Obj)) {
    std::snprintf(Buf, sizeof(Buf),
                  "reachable object %p has no allocation bit",
                  static_cast<const void *>(Obj));
    Result.Error = Buf;
    return false;
  }
  size_t Size = Obj->sizeBytes();
  const uint8_t *ObjAddr = reinterpret_cast<const uint8_t *>(Obj);
  if (Size < Object::MinObjectBytes || Size % GranuleBytes != 0 ||
      ObjAddr + Size > Heap.limit()) {
    std::snprintf(Buf, sizeof(Buf), "object %p has corrupt size %zu",
                  static_cast<const void *>(Obj), Size);
    Result.Error = Buf;
    return false;
  }
  if (Object::HeaderBytes + Obj->numRefs() * 8ull > Size) {
    std::snprintf(Buf, sizeof(Buf), "object %p refs overflow its size",
                  static_cast<const void *>(Obj));
    Result.Error = Buf;
    return false;
  }
  return true;
}

VerifyResult HeapVerifier::verify(ThreadRegistry &Registry, bool CheckMarks) {
  VerifyResult Result;
  BitVector8 Visited(Heap.base(), Heap.sizeBytes());
  // Each entry carries its referrer (null for roots) so a failure can
  // report where the missed object hangs.
  std::vector<std::pair<Object *, Object *>> Worklist;

  Registry.forEach([&](MutatorContext &Ctx) {
    Ctx.withRoots([&](const std::vector<uintptr_t> &Roots) {
      for (uintptr_t Word : Roots)
        if (Heap.isPlausibleObject(Word)) {
          Object *Obj = reinterpret_cast<Object *>(Word);
          if (Visited.testAndSet(Obj))
            Worklist.push_back({Obj, nullptr});
        }
    });
  });

  while (!Worklist.empty()) {
    auto [Obj, Parent] = Worklist.back();
    Worklist.pop_back();
    if (!checkObject(Obj, Result)) {
      Result.Ok = false;
      return Result;
    }
    if (CheckMarks && !Heap.markBits().test(Obj)) {
      char Buf[256];
      std::snprintf(
          Buf, sizeof(Buf),
          "reachable object %p is unmarked (size=%u refs=%u class=%u "
          "alloc=%d; parent=%p parent-mark=%d parent-class=%u "
          "parent-card-dirty=%d)",
          static_cast<void *>(Obj), Obj->sizeBytes(), Obj->numRefs(),
          Obj->classId(), Heap.allocBits().test(Obj),
          static_cast<void *>(Parent),
          Parent ? Heap.markBits().test(Parent) : 0,
          Parent ? Parent->classId() : 0,
          Parent ? Heap.cards().isDirty(Heap.cards().cardIndexFor(Parent))
                 : 0);
      Result.Error = Buf;
      Result.Ok = false;
      return Result;
    }
    ++Result.ReachableObjects;
    Result.ReachableBytes += Obj->sizeBytes();
    for (unsigned I = 0, N = Obj->numRefs(); I < N; ++I) {
      Object *Child = Obj->loadRef(I);
      if (Child && Visited.testAndSet(Child))
        Worklist.push_back({Child, Obj});
    }
  }

  // Per shard: free ranges must carry no allocation bits (nothing
  // reachable can live there given the check above) and must lie
  // entirely inside the shard owning them (inserts split at shard
  // boundaries; a crossing range would mean two shards' books overlap).
  const ShardedFreeList &FL = Heap.freeList();
  for (unsigned Shard = 0; Shard < FL.numShards(); ++Shard) {
    for (auto [Start, Size] : FL.shard(Shard).snapshotRanges()) {
      char Buf[128];
      if (Heap.allocBits().countInRange(Start, Start + Size) != 0) {
        std::snprintf(Buf, sizeof(Buf),
                      "free range %p+%zu contains allocation bits",
                      static_cast<void *>(Start), Size);
        Result.Error = Buf;
        Result.Ok = false;
        return Result;
      }
      if (FL.shardIndexFor(Start) != Shard ||
          FL.shardIndexFor(Start + Size - 1) != Shard) {
        std::snprintf(Buf, sizeof(Buf),
                      "free range %p+%zu crosses out of shard %u",
                      static_cast<void *>(Start), Size, Shard);
        Result.Error = Buf;
        Result.Ok = false;
        return Result;
      }
    }
  }
  return Result;
}
