//===- StwCollector.cpp - Baseline parallel stop-the-world GC ------------------//

#include "gc/StwCollector.h"

#include "support/Timing.h"

using namespace cgc;

void StwCollector::onAllocationSlowPath(MutatorContext &Ctx, size_t Bytes) {
  // The baseline does no work on allocation; it collects on failure.
}

void StwCollector::collectNow(MutatorContext *Ctx) {
  uint64_t Observed = C.CompletedCycles.load(std::memory_order_acquire);
  if (!acquireCollectLock(Ctx, Observed))
    return;
  if (C.CompletedCycles.load(std::memory_order_acquire) != Observed) {
    C.CollectMutex.unlock();
    return;
  }
  runFullStwCycle(Ctx);
  C.CollectMutex.unlock();
}
