//===- GcOptions.h - Collector configuration --------------------*- C++ -*-===//
///
/// \file
/// All tunables of the collector, with defaults matching the paper's
/// measurement configuration (Section 6): tracing rate 8.0, 1000 work
/// packets of 493 entries, 4 low-priority background threads, one
/// concurrent card-cleaning pass, 512-byte cards.
///
//===----------------------------------------------------------------------===//

#ifndef CGC_GC_GCOPTIONS_H
#define CGC_GC_GCOPTIONS_H

#include "support/FaultInjector.h"

#include <cstddef>
#include <cstdint>

namespace cgc {

/// Which collector the heap runs.
enum class CollectorKind {
  /// The baseline: parallel stop-the-world mark-sweep (the paper's STW).
  StopTheWorld,
  /// The paper's contribution: parallel, incremental, mostly concurrent
  /// mark-sweep (the paper's CGC).
  MostlyConcurrent
};

/// Collector configuration.
struct GcOptions {
  /// Managed heap size in bytes.
  size_t HeapBytes = 64ull << 20;

  /// Collector selection.
  CollectorKind Kind = CollectorKind::MostlyConcurrent;

  /// K0, the desired allocator tracing rate: bytes traced per byte
  /// allocated (Section 3.1; "typically 5 to 10", the paper measures
  /// with 8.0 by default).
  double TracingRate = 8.0;

  /// Kmax = KmaxFactor * K0, the clamp applied when the progress formula
  /// goes negative (Section 3.1, "typically 2 K0").
  double KmaxFactor = 2.0;

  /// The corrective term C applied when tracing falls behind schedule
  /// (Section 3.2: K + (K - K0) * C).
  double CorrectiveC = 2.0;

  /// Multiplier on the kickoff threshold (L + M) / K0: values above 1.0
  /// start concurrent cycles earlier, trading throughput (more cycles,
  /// more floating garbage) for request-latency headroom — with less of
  /// the heap outstanding when the final pause arrives, the pause is
  /// shorter and an open-loop latency SLO (bench/openloop_kv) is easier
  /// to hold. Values below 1.0 delay kickoff (throughput-biased).
  double KickoffHeadroom = 1.0;

  /// Alpha for the exponential smoothing of L, M and Best.
  double SmoothingAlpha = 0.5;

  /// Seeds for the first cycle's L and M predictions, as fractions of the
  /// heap size (no history exists yet).
  double SeedLFraction = 0.30;
  double SeedMFraction = 0.02;

  /// Number of work packets in the global pool.
  uint32_t NumWorkPackets = 1000;

  /// Low-priority background tracing threads (0 = pure incremental).
  unsigned BackgroundThreads = 4;

  /// Worker threads used for the parallel stop-the-world phases.
  unsigned GcWorkerThreads = 2;

  /// Concurrent card-cleaning passes (the paper uses 1 and notes in
  /// footnote 2 that a second pass further reduces pause time).
  unsigned ConcurrentCleaningPasses = 1;

  /// Number of address-partitioned free-list shards. 0 = auto
  /// (min(hardware_concurrency, 8), rounded down to a power of two and
  /// halved until every shard can span a whole allocation cache);
  /// 1 = the exact legacy single-list behavior (A/B baseline). Explicit
  /// values must be powers of two (asserted in GcHeap::create) and are
  /// subject to the same span clamp.
  unsigned FreeListShards = 0;

  /// Per-thread allocation cache (TLAB) size.
  size_t AllocCacheBytes = 32u << 10;

  /// llheap-style allocation fast path (DESIGN.md §16): requests up to
  /// MaxSizeClassBytes are rounded to a static size class (O(1)
  /// FASTLOOKUP) and served from per-thread segregated chunk caches;
  /// sweep/compaction return small reclaimed runs to the owning shard's
  /// lock-free remote-free queue, drained by the shard's mutators at
  /// refill time, instead of taking the shard lock per run. Off keeps
  /// the legacy bump-only path byte-exact (lockstep baseline).
  bool FastPathSizeClasses = false;

  /// Objects at least this big bypass the cache and are allocated
  /// directly from the free list.
  size_t LargeObjectBytes = 8u << 10;

  /// Defer the sweep out of the pause and perform it incrementally at
  /// allocation time (the paper's first future-work item, lazy sweep).
  bool LazySweep = false;

  /// Incremental compaction (Section 2.3): evacuate one area of this
  /// many bytes every CompactEveryNCycles cycles (0 disables). The
  /// area is chosen by fragmentation score over the sharded free
  /// list's per-window statistics. Composes with LazySweep: the pause
  /// sweeps just enough non-area chunks for target space, evacuates,
  /// and the rest of the sweep stays lazy (the armed area is excluded
  /// from the sweep generation — the evacuation rebuilds it).
  size_t EvacuationAreaBytes = 1u << 20;
  unsigned CompactEveryNCycles = 0;

  /// Run the reachability verifier inside every final pause (tests).
  bool VerifyEachCycle = false;

  /// Ablation: additionally count the fences a naive scheme would issue
  /// (one per object allocated / per write barrier / per object traced).
  bool NaiveFenceAccounting = false;

  /// Background thread tracing quantum in bytes.
  size_t BackgroundQuantumBytes = 64u << 10;

  /// Cycle watchdog: a low-priority thread that samples the concurrent
  /// phase and forces the STW finish when the tracer falls behind the
  /// pacer's progress formula or a background participant stalls.
  bool CycleWatchdog = true;

  /// Watchdog sample period (microseconds).
  unsigned WatchdogIntervalMicros = 2000;

  /// Consecutive no-progress samples (traced bytes, cleaned cards and
  /// deferrals all flat while a concurrent phase is active) that trip
  /// the watchdog's stall escalation.
  unsigned WatchdogStallTicks = 250;

  /// Consecutive samples with the progress formula pegged at Kmax while
  /// free memory sits below a quarter of the kickoff threshold — the
  /// tracer cannot catch up even at the clamp — that trip the watchdog's
  /// pacer-lag escalation.
  unsigned WatchdogLagTicks = 100;

  /// Cooperation-stall defense (DESIGN.md §13). Grace period before a
  /// stop-the-world wait starts attributing laggards (it keeps waiting —
  /// the world must actually stop — but reports the exact still-running
  /// contexts each elapsed grace period). 0 disables the deadline.
  unsigned StwGraceMicros = 500000;

  /// Grace period before a ragged fence handshake gives up and returns
  /// Timeout, failing the caller's pass (card-cleaning registrations
  /// recirculate; the watchdog counts the timeout toward the strike
  /// limit below). 0 disables the deadline.
  unsigned FenceGraceMicros = 500000;

  /// Fence-handshake timeouts within one concurrent cycle that make the
  /// watchdog abort the cycle to its STW finish (a non-cooperative
  /// mutator must not wedge the cycle forever; the stop-the-world
  /// safepoint needs no handshake acks and still completes once the
  /// thread polls or blocks). 0 disables the escalation.
  unsigned HandshakeStrikeLimit = 8;

  /// Install the signal-safe GC flight recorder: on SIGSEGV/SIGABRT (or
  /// a fatal assert) dump cycle phase, per-thread cooperation state,
  /// pacer/ladder counters and event-ring tails to FlightRecorderFd
  /// before re-raising. Off by default (tests and long soaks opt in).
  bool FlightRecorder = false;

  /// File descriptor the flight recorder writes to (2 = stderr).
  int FlightRecorderFd = 2;

  /// Fault-injection plan (chaos mode). Disabled by default: every
  /// injection site then costs one relaxed load behind a cold branch.
  FaultPlan Faults;

  /// Observability: record phase/packet/pause events into per-thread
  /// lock-free rings and aggregate pause histograms (src/observe/).
  /// Off by default; every instrumentation site then costs one
  /// predictable branch on a plain bool (or nothing at all when the
  /// tree is built with -DCGC_OBSERVE_COMPILED=0).
  bool Observe = false;

  /// Per-thread event-ring capacity in events (rounded up to a power
  /// of two). 16Ki events = 512 KiB per recording thread.
  uint32_t ObserveRingEvents = 1u << 14;

  /// Returns Kmax.
  double kmax() const { return KmaxFactor * TracingRate; }
};

} // namespace cgc

#endif // CGC_GC_GCOPTIONS_H
