//===- StealingMarker.h - Traditional mark-stack load balancer --*- C++ -*-===//
///
/// \file
/// The "traditional" parallel STW load balancer the paper compares work
/// packets against (Section 4.4): each worker owns a private mark stack
/// and exposes part of its excess work in an attached stealable queue, in
/// the style of Endo et al and Flood et al. Used only by the
/// bench/ablation_load_balancer comparison — the collectors themselves
/// use work packets.
///
//===----------------------------------------------------------------------===//

#ifndef CGC_GC_STEALINGMARKER_H
#define CGC_GC_STEALINGMARKER_H

#include "heap/HeapSpace.h"
#include "support/FaultInjector.h"
#include "support/SpinLock.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

namespace cgc {

class WorkerPool;

/// Parallel STW marker with private stacks + stealing.
class StealingMarker {
public:
  /// Creates a marker for \p NumWorkers participants. \p FI (optional)
  /// arms the steal-attempt perturbation site (scheduling chaos only).
  StealingMarker(HeapSpace &Heap, unsigned NumWorkers,
                 FaultInjector *FI = nullptr);

  /// Seeds root objects (single-threaded, before markParallel).
  void addRoot(Object *Obj);

  /// Runs the parallel mark to completion on \p Workers (whose
  /// participant count must match NumWorkers). Returns bytes traced.
  uint64_t markParallel(WorkerPool &Workers);

  /// Number of successful steals (for the comparison report).
  uint64_t stealCount() const {
    return Steals.load(std::memory_order_relaxed);
  }
  /// Synchronization operations on the stealable queues.
  uint64_t syncOps() const {
    return SyncOps.load(std::memory_order_relaxed);
  }

private:
  struct WorkerState {
    /// Private mark stack: no synchronization.
    std::vector<Object *> Private;
    /// Excess work exposed for stealing, guarded by a lock.
    SpinLock QueueLock;
    std::vector<Object *> Stealable;
    /// Whether this worker is hunting for work (termination protocol).
    std::atomic<bool> Hungry{false};
    char Padding[64];
  };

  /// How much private work a worker keeps before exposing the excess.
  static constexpr size_t PrivateTarget = 512;
  static constexpr size_t ExposeBatch = 128;

  void workerMark(unsigned Index);
  bool stealFor(unsigned Index);
  void pushWork(WorkerState &W, Object *Obj);

  HeapSpace &Heap;
  FaultInjector *FI;
  std::vector<std::unique_ptr<WorkerState>> States;
  std::atomic<uint64_t> TracedBytes{0};
  std::atomic<uint64_t> Steals{0};
  std::atomic<uint64_t> SyncOps{0};
  std::atomic<unsigned> NumHungry{0};
};

} // namespace cgc

#endif // CGC_GC_STEALINGMARKER_H
