//===- FlightRecorder.h - Signal-safe GC crash dump -------------*- C++ -*-===//
///
/// \file
/// A post-mortem flight recorder for the collector (DESIGN.md §13): on a
/// fatal signal (SIGSEGV, SIGABRT — which also covers failed asserts,
/// since assert() aborts) it writes a line-oriented snapshot of every
/// registered heap's GC state to a file descriptor, then re-raises the
/// signal so the process still dies with the original disposition (core
/// dumps, death-test harnesses and CI signal reporting keep working).
///
/// Everything the dump touches is async-signal-safe by construction:
///
///  * formatting uses write(2) via support/SigSafe.h — no stdio, no
///    malloc, no locale;
///  * GC state is read exclusively through lock-free structures built
///    for this purpose: the registry's context snapshot table and
///    stall-report ring, the observer's release-published event rings
///    (peekTail), the pacer's raw window counters, and the plain atomic
///    escalation/cycle counters. Locked state (pacer estimates, the
///    gauge log, free-list internals) is deliberately absent;
///  * reads racing live mutators may be torn — a crash dump reports a
///    best-effort snapshot, never blocks, and never deadlocks against
///    whatever the crashing thread held.
///
/// Report format (one record per line, `key=value` fields):
///
///   === cgc flight recorder (signal N) ===
///   heap=0x... phase=concurrent cycle=7 completed=6
///   registry epoch=42 stop_requested=0 stw_warnings=0 fence_timeouts=3
///   thread id=2 state=running ack=41 ack_lag=1 poll_age_ns=12345 ...
///   stall t=... id=2 proto=fence state=running poll_age_ns=... ack_lag=1
///   pacer window_alloc=... window_bg_traced=...
///   ladder refill-retry=0 ... watchdog-trips=1 handshake-aborts=1
///   ring tid=0 events=8
///   ev t=... tid=0 kind=cycle_kickoff a0=7 a1=123456
///   === end cgc flight recorder ===
///
//===----------------------------------------------------------------------===//

#ifndef CGC_GC_FLIGHTRECORDER_H
#define CGC_GC_FLIGHTRECORDER_H

namespace cgc {

struct GcCore;

/// Process-wide registry of heaps whose state is dumped on a fatal
/// signal. All methods are static: signal dispositions are process
/// state. Thread-safe; install/uninstall are cold.
class FlightRecorder {
public:
  /// Heaps that can be registered concurrently (more simply don't
  /// appear in dumps).
  static constexpr unsigned MaxCores = 8;

  /// Registers \p Core and, on the first registration, installs the
  /// SIGSEGV/SIGABRT handlers (previous dispositions are saved and
  /// re-raised into). \p Fd receives the report (last installer wins;
  /// one descriptor per process).
  static void install(GcCore *Core, int Fd);

  /// Unregisters \p Core; removing the last one restores the saved
  /// signal dispositions. Must be called before \p Core is destroyed.
  static void uninstall(GcCore *Core);

  /// Writes the report for \p Core to \p Fd immediately (test hook and
  /// debugging aid; also async-signal-safe). \p Signal is only echoed
  /// into the header, 0 = not a signal.
  static void dumpNow(GcCore *Core, int Fd, int Signal = 0);
};

} // namespace cgc

#endif // CGC_GC_FLIGHTRECORDER_H
