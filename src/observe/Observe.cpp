//===- Observe.cpp - Observer ring management and merge -------------------===//

#include "observe/Observe.h"

#include <algorithm>

using namespace cgc;

namespace {

/// Process-unique observer ids; id 0 is never handed out so a
/// zero-initialized thread_local cache never matches a live observer.
std::atomic<uint64_t> NextObserverId{1};

/// Process-wide small dense thread ids for event records (stable across
/// observers so merged traces from one process line up).
std::atomic<uint32_t> NextThreadId{1};

uint32_t observeThreadId() {
  thread_local uint32_t Tid =
      NextThreadId.fetch_add(1, std::memory_order_relaxed);
  return Tid;
}

/// Per-thread ring cache. Keyed by observer id, not pointer: a
/// destroyed-then-reallocated observer gets a fresh id, so the cache
/// can never serve a dangling ring.
struct RingCache {
  uint64_t ObsId = 0;
  EventRing *Ring = nullptr;
  bool Exhausted = false;
};
thread_local RingCache Cache;

} // namespace

GcObserver::GcObserver(bool Enabled, uint32_t RingCapacityEvents)
    : Enabled(Enabled), RingCapacity(RingCapacityEvents),
      ObserverId(NextObserverId.fetch_add(1, std::memory_order_relaxed)) {}

GcObserver::~GcObserver() = default;

EventRing *GcObserver::threadRing() {
  if (Cache.ObsId == ObserverId)
    return Cache.Exhausted ? nullptr : Cache.Ring;
  return createRingSlow(observeThreadId());
}

EventRing *GcObserver::createRingSlow(uint32_t Tid) {
  SpinLockGuard Guard(RingLock);
  uint32_t N = NumRings.load(std::memory_order_acquire);
  // This thread may already own a ring here (e.g. its cache was
  // repointed at another observer in between); reuse it.
  EventRing *Ring = nullptr;
  for (uint32_t I = 0; I < N; ++I) {
    if (Rings[I]->ownerThreadId() == Tid) {
      Ring = Rings[I].get();
      break;
    }
  }
  if (!Ring && N < MaxRings) {
    Rings[N] = std::make_unique<EventRing>(Tid, RingCapacity);
    Ring = Rings[N].get();
    NumRings.store(N + 1, std::memory_order_release);
  }
  Cache.ObsId = ObserverId;
  Cache.Ring = Ring;
  Cache.Exhausted = Ring == nullptr;
  return Ring;
}

std::vector<EventRecord> GcObserver::drainAll() {
  std::vector<EventRecord> All;
  {
    SpinLockGuard Guard(RingLock);
    uint32_t N = NumRings.load(std::memory_order_acquire);
    for (uint32_t I = 0; I < N; ++I)
      Rings[I]->drain(All);
  }
  std::stable_sort(All.begin(), All.end(),
                   [](const EventRecord &A, const EventRecord &B) {
                     return A.TimeNs < B.TimeNs;
                   });
  return All;
}

uint64_t GcObserver::droppedEvents() const {
  uint64_t Total = 0;
  SpinLockGuard Guard(RingLock);
  uint32_t N = NumRings.load(std::memory_order_acquire);
  for (uint32_t I = 0; I < N; ++I)
    Total += Rings[I]->droppedCount();
  return Total;
}

