//===- EventKind.cpp - Event vocabulary tables ----------------------------===//

#include "observe/EventKind.h"

using namespace cgc;

const char *cgc::eventKindName(EventKind Kind) {
  switch (Kind) {
  case EventKind::None:
    return "none";
  case EventKind::CycleKickoff:
    return "cycle_kickoff";
  case EventKind::CycleComplete:
    return "cycle_complete";
  case EventKind::IncTraceBegin:
    return "inc_trace";
  case EventKind::IncTraceEnd:
    return "inc_trace_end";
  case EventKind::BackgroundQuantum:
    return "background_quantum";
  case EventKind::CardCleanPass:
    return "card_clean_pass";
  case EventKind::CardCleanSlice:
    return "card_clean_slice";
  case EventKind::StwBegin:
    return "stw";
  case EventKind::StwEnd:
    return "stw_end";
  case EventKind::SweepSlice:
    return "sweep_slice";
  case EventKind::PacketGet:
    return "packet_get";
  case EventKind::PacketPut:
    return "packet_put";
  case EventKind::PacketTransition:
    return "packet_transition";
  case EventKind::AllocLadderRung:
    return "alloc_ladder_rung";
  case EventKind::Overflow:
    return "overflow";
  case EventKind::PacerWindow:
    return "pacer_window";
  case EventKind::StackScan:
    return "stack_scan";
  case EventKind::CompactionBegin:
    return "compaction";
  case EventKind::CompactionEnd:
    return "compaction_end";
  case EventKind::HandshakeStall:
    return "handshake_stall";
  case EventKind::HandshakeAbort:
    return "handshake_abort";
  case EventKind::NumKinds:
    break;
  }
  return "invalid";
}

EventPhase cgc::eventPhase(EventKind Kind) {
  switch (Kind) {
  case EventKind::IncTraceBegin:
  case EventKind::StwBegin:
  case EventKind::CompactionBegin:
    return EventPhase::Begin;
  case EventKind::IncTraceEnd:
  case EventKind::StwEnd:
  case EventKind::CompactionEnd:
    return EventPhase::End;
  default:
    return EventPhase::Instant;
  }
}

EventKind cgc::beginKindFor(EventKind EndKind) {
  switch (EndKind) {
  case EventKind::IncTraceEnd:
    return EventKind::IncTraceBegin;
  case EventKind::StwEnd:
    return EventKind::StwBegin;
  case EventKind::CompactionEnd:
    return EventKind::CompactionBegin;
  default:
    return EventKind::None;
  }
}
