//===- BenchJsonWriter.cpp - Machine-readable bench output ----------------===//

#include "observe/BenchJsonWriter.h"

#include "observe/Json.h"

#include <cassert>
#include <chrono>
#include <cmath>
#include <fstream>
#include <set>

using namespace cgc;

BenchJsonWriter::BenchJsonWriter(std::string BenchName)
    : Bench(std::move(BenchName)) {}

void BenchJsonWriter::declareUnit(const std::string &MetricKey,
                                  const std::string &Unit) {
  for (auto &Entry : Units)
    if (Entry.first == MetricKey) {
      Entry.second = Unit;
      return;
    }
  Units.emplace_back(MetricKey, Unit);
}

void BenchJsonWriter::beginRow(const std::string &Label) {
  Rows.push_back(Row{Label, {}, {}});
}

void BenchJsonWriter::addConfig(const std::string &Key, double Value) {
  assert(!Rows.empty() && "beginRow first");
  Rows.back().Config.emplace_back(Key, Value);
}

void BenchJsonWriter::addMetric(const std::string &Key, double Value,
                                const std::string &Unit) {
  assert(!Rows.empty() && "beginRow first");
  Rows.back().Metrics.emplace_back(Key, Value);
  if (!Unit.empty())
    declareUnit(Key, Unit);
}

std::string BenchJsonWriter::toJson() const {
  JsonWriter W;
  W.beginObject();
  W.key("schema");
  W.value("cgc-bench-v1");
  W.key("bench");
  W.value(Bench);
  W.key("unix_ms");
  W.value(static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count()));
  W.key("units");
  W.beginObject();
  for (const auto &Entry : Units) {
    W.key(Entry.first);
    W.value(Entry.second);
  }
  W.endObject();
  W.key("rows");
  W.beginArray();
  for (const Row &R : Rows) {
    W.beginObject();
    W.key("label");
    W.value(R.Label);
    W.key("config");
    W.beginObject();
    for (const auto &Entry : R.Config) {
      W.key(Entry.first);
      W.value(Entry.second);
    }
    W.endObject();
    W.key("metrics");
    W.beginObject();
    for (const auto &Entry : R.Metrics) {
      W.key(Entry.first);
      W.value(Entry.second);
    }
    W.endObject();
    W.endObject();
  }
  W.endArray();
  W.endObject();
  return W.str();
}

std::string BenchJsonWriter::writeFile(const std::string &Dir) const {
  std::string Path = Dir + "/BENCH_" + Bench + ".json";
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  if (!Out)
    return "";
  Out << toJson();
  if (!Out)
    return "";
  return Path;
}

bool cgc::validateBenchJson(const std::string &Text, std::string *Error) {
  auto Fail = [Error](const std::string &Msg) {
    if (Error)
      *Error = Msg;
    return false;
  };

  std::string ParseErr;
  auto Doc = JsonValue::parse(Text, &ParseErr);
  if (!Doc)
    return Fail("parse error: " + ParseErr);
  if (Doc->type() != JsonValue::Type::Object)
    return Fail("document is not an object");

  const JsonValue *Schema = Doc->get("schema");
  if (!Schema || Schema->type() != JsonValue::Type::String ||
      Schema->stringValue() != "cgc-bench-v1")
    return Fail("missing or wrong schema (want \"cgc-bench-v1\")");

  const JsonValue *Bench = Doc->get("bench");
  if (!Bench || Bench->type() != JsonValue::Type::String ||
      Bench->stringValue().empty())
    return Fail("missing bench name");

  const JsonValue *UnixMs = Doc->get("unix_ms");
  if (!UnixMs || UnixMs->type() != JsonValue::Type::Number ||
      UnixMs->numberValue() <= 0)
    return Fail("missing or non-positive unix_ms");

  const JsonValue *Units = Doc->get("units");
  if (!Units || Units->type() != JsonValue::Type::Object)
    return Fail("missing units object");
  for (const auto &Entry : Units->objectValue())
    if (Entry.second.type() != JsonValue::Type::String ||
        Entry.second.stringValue().empty())
      return Fail("unit for \"" + Entry.first + "\" is not a string");

  const JsonValue *Rows = Doc->get("rows");
  if (!Rows || Rows->type() != JsonValue::Type::Array)
    return Fail("missing rows array");
  if (Rows->arrayValue().empty())
    return Fail("rows array is empty");

  std::set<std::string> Labels;
  for (const JsonValue &Row : Rows->arrayValue()) {
    if (Row.type() != JsonValue::Type::Object)
      return Fail("row is not an object");
    const JsonValue *Label = Row.get("label");
    if (!Label || Label->type() != JsonValue::Type::String ||
        Label->stringValue().empty())
      return Fail("row missing label");
    if (!Labels.insert(Label->stringValue()).second)
      return Fail("duplicate row label \"" + Label->stringValue() + "\"");

    const JsonValue *Config = Row.get("config");
    if (!Config || Config->type() != JsonValue::Type::Object)
      return Fail("row \"" + Label->stringValue() + "\" missing config");
    for (const auto &Entry : Config->objectValue())
      if (Entry.second.type() != JsonValue::Type::Number)
        return Fail("config \"" + Entry.first + "\" is not numeric");

    const JsonValue *Metrics = Row.get("metrics");
    if (!Metrics || Metrics->type() != JsonValue::Type::Object)
      return Fail("row \"" + Label->stringValue() + "\" missing metrics");
    if (Metrics->objectValue().empty())
      return Fail("row \"" + Label->stringValue() + "\" has no metrics");
    for (const auto &Entry : Metrics->objectValue()) {
      if (Entry.second.type() != JsonValue::Type::Number ||
          !std::isfinite(Entry.second.numberValue()))
        return Fail("metric \"" + Entry.first + "\" is not a finite number");
      if (!Units->get(Entry.first))
        return Fail("metric \"" + Entry.first + "\" has no declared unit");
    }
  }
  return true;
}
