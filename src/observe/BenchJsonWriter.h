//===- BenchJsonWriter.h - Machine-readable bench output --------*- C++ -*-===//
///
/// \file
/// Stable machine-readable output for the bench/ binaries. Each bench
/// writes one `BENCH_<name>.json` document with schema "cgc-bench-v1":
///
/// \code{.json}
///   {
///     "schema":  "cgc-bench-v1",
///     "bench":   "fig1",
///     "unix_ms": 1722950000000,
///     "units":   { "pause_p50_ms": "ms", ... },   // unit per metric key
///     "rows": [
///       {
///         "label":   "warehouses=1",
///         "config":  { "heap_mb": 64, ... },      // numeric knobs
///         "metrics": { "pause_p50_ms": 1.8, ... } // numeric results
///       }
///     ]
///   }
/// \endcode
///
/// Row labels are unique per document; metric keys carry their unit as
/// a suffix (_ms, _mb, _per_s, ...) and the units map makes the suffix
/// explicit for downstream tooling. validateBenchJson() enforces the
/// schema and is what CI runs against emitted files.
///
//===----------------------------------------------------------------------===//

#ifndef CGC_OBSERVE_BENCHJSONWRITER_H
#define CGC_OBSERVE_BENCHJSONWRITER_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace cgc {

/// Accumulates bench rows and serializes the cgc-bench-v1 document.
class BenchJsonWriter {
public:
  /// \p BenchName is the short figure/table id ("fig1", "table1").
  explicit BenchJsonWriter(std::string BenchName);

  /// Declares a metric key with its unit ("ms", "mb", "count",
  /// "per_s", ...). Keys may also be declared implicitly by addMetric
  /// with a unit.
  void declareUnit(const std::string &MetricKey, const std::string &Unit);

  /// Starts a new result row; subsequent addConfig/addMetric calls
  /// apply to it.
  void beginRow(const std::string &Label);

  /// Adds a numeric configuration knob to the current row.
  void addConfig(const std::string &Key, double Value);

  /// Adds a numeric result to the current row; \p Unit (if non-empty)
  /// is recorded in the units map.
  void addMetric(const std::string &Key, double Value,
                 const std::string &Unit = "");

  /// Serializes the document.
  std::string toJson() const;

  /// Writes `BENCH_<bench>.json` into \p Dir (default: current
  /// directory). Returns the path written, or empty on I/O failure.
  std::string writeFile(const std::string &Dir = ".") const;

private:
  struct Row {
    std::string Label;
    std::vector<std::pair<std::string, double>> Config;
    std::vector<std::pair<std::string, double>> Metrics;
  };

  std::string Bench;
  std::vector<std::pair<std::string, std::string>> Units;
  std::vector<Row> Rows;
};

/// Validates a cgc-bench-v1 document: required keys with the right
/// types, schema string match, at least one row, unique row labels,
/// every metric numeric and finite, every metric key present in the
/// units map. Returns true when valid; otherwise fills \p Error.
bool validateBenchJson(const std::string &Text, std::string *Error);

} // namespace cgc

#endif // CGC_OBSERVE_BENCHJSONWRITER_H
