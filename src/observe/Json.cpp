//===- Json.cpp - Minimal JSON writer and parser --------------------------===//

#include "observe/Json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

using namespace cgc;

//===----------------------------------------------------------------------===//
// Writer
//===----------------------------------------------------------------------===//

std::string cgc::jsonEscape(const std::string &Str) {
  std::string Out;
  Out.reserve(Str.size());
  for (char C : Str) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

void JsonWriter::comma() {
  if (AfterKey) {
    AfterKey = false;
    return;
  }
  if (!NeedComma.empty()) {
    if (NeedComma.back())
      Out += ',';
    NeedComma.back() = true;
  }
}

void JsonWriter::beginObject() {
  comma();
  Out += '{';
  NeedComma.push_back(false);
}

void JsonWriter::endObject() {
  Out += '}';
  NeedComma.pop_back();
}

void JsonWriter::beginArray() {
  comma();
  Out += '[';
  NeedComma.push_back(false);
}

void JsonWriter::endArray() {
  Out += ']';
  NeedComma.pop_back();
}

void JsonWriter::key(const std::string &Name) {
  comma();
  Out += '"';
  Out += jsonEscape(Name);
  Out += "\":";
  AfterKey = true;
}

void JsonWriter::value(const std::string &Str) {
  comma();
  Out += '"';
  Out += jsonEscape(Str);
  Out += '"';
}

void JsonWriter::value(const char *Str) { value(std::string(Str)); }

void JsonWriter::value(double Num) {
  comma();
  // NaN/Inf are not representable in JSON; clamp to 0 so the document
  // always parses.
  if (!std::isfinite(Num))
    Num = 0.0;
  char Buf[40];
  std::snprintf(Buf, sizeof(Buf), "%.17g", Num);
  Out += Buf;
}

void JsonWriter::value(uint64_t Num) {
  comma();
  Out += std::to_string(Num);
}

void JsonWriter::value(int64_t Num) {
  comma();
  Out += std::to_string(Num);
}

void JsonWriter::value(bool Flag) {
  comma();
  Out += Flag ? "true" : "false";
}

void JsonWriter::valueNull() {
  comma();
  Out += "null";
}

//===----------------------------------------------------------------------===//
// Parser
//===----------------------------------------------------------------------===//

namespace {

class Parser {
public:
  Parser(const std::string &Text, std::string *Error)
      : Text(Text), Error(Error) {}

  std::unique_ptr<JsonValue> run() {
    auto V = std::make_unique<JsonValue>();
    if (!parseValue(*V))
      return nullptr;
    skipWs();
    if (Pos != Text.size()) {
      fail("trailing characters after document");
      return nullptr;
    }
    return V;
  }

private:
  void fail(const std::string &Msg) {
    if (Error && Error->empty())
      *Error = Msg + " (at byte " + std::to_string(Pos) + ")";
  }

  void skipWs() {
    while (Pos < Text.size() &&
           (Text[Pos] == ' ' || Text[Pos] == '\t' || Text[Pos] == '\n' ||
            Text[Pos] == '\r'))
      ++Pos;
  }

  bool consume(char C) {
    skipWs();
    if (Pos < Text.size() && Text[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  bool parseValue(JsonValue &V) {
    skipWs();
    if (Pos >= Text.size()) {
      fail("unexpected end of input");
      return false;
    }
    char C = Text[Pos];
    if (C == '{')
      return parseObject(V);
    if (C == '[')
      return parseArray(V);
    if (C == '"')
      return parseString(V);
    if (C == 't' || C == 'f')
      return parseBool(V);
    if (C == 'n')
      return parseNull(V);
    return parseNumber(V);
  }

  bool parseObject(JsonValue &V) {
    V.Ty = JsonValue::Type::Object;
    ++Pos; // '{'
    if (consume('}'))
      return true;
    for (;;) {
      JsonValue Key;
      skipWs();
      if (Pos >= Text.size() || Text[Pos] != '"') {
        fail("expected object key");
        return false;
      }
      if (!parseString(Key))
        return false;
      if (!consume(':')) {
        fail("expected ':' after key");
        return false;
      }
      JsonValue Member;
      if (!parseValue(Member))
        return false;
      V.Object.emplace(Key.Str, std::move(Member));
      if (consume(','))
        continue;
      if (consume('}'))
        return true;
      fail("expected ',' or '}' in object");
      return false;
    }
  }

  bool parseArray(JsonValue &V) {
    V.Ty = JsonValue::Type::Array;
    ++Pos; // '['
    if (consume(']'))
      return true;
    for (;;) {
      JsonValue Elem;
      if (!parseValue(Elem))
        return false;
      V.Array.push_back(std::move(Elem));
      if (consume(','))
        continue;
      if (consume(']'))
        return true;
      fail("expected ',' or ']' in array");
      return false;
    }
  }

  bool parseString(JsonValue &V) {
    V.Ty = JsonValue::Type::String;
    ++Pos; // '"'
    while (Pos < Text.size()) {
      char C = Text[Pos];
      if (C == '"') {
        ++Pos;
        return true;
      }
      if (C == '\\') {
        if (Pos + 1 >= Text.size()) {
          fail("truncated escape");
          return false;
        }
        char E = Text[Pos + 1];
        Pos += 2;
        switch (E) {
        case '"':
          V.Str += '"';
          break;
        case '\\':
          V.Str += '\\';
          break;
        case '/':
          V.Str += '/';
          break;
        case 'n':
          V.Str += '\n';
          break;
        case 'r':
          V.Str += '\r';
          break;
        case 't':
          V.Str += '\t';
          break;
        case 'b':
          V.Str += '\b';
          break;
        case 'f':
          V.Str += '\f';
          break;
        case 'u': {
          if (Pos + 4 > Text.size()) {
            fail("truncated \\u escape");
            return false;
          }
          unsigned Code = 0;
          for (int I = 0; I < 4; ++I) {
            char H = Text[Pos + static_cast<size_t>(I)];
            Code <<= 4;
            if (H >= '0' && H <= '9')
              Code |= static_cast<unsigned>(H - '0');
            else if (H >= 'a' && H <= 'f')
              Code |= static_cast<unsigned>(H - 'a' + 10);
            else if (H >= 'A' && H <= 'F')
              Code |= static_cast<unsigned>(H - 'A' + 10);
            else {
              fail("bad hex digit in \\u escape");
              return false;
            }
          }
          Pos += 4;
          // Only BMP escapes below 0x80 round-trip; others are replaced
          // (the exporters never emit non-ASCII).
          V.Str += Code < 0x80 ? static_cast<char>(Code) : '?';
          break;
        }
        default:
          fail("unknown escape");
          return false;
        }
        continue;
      }
      V.Str += C;
      ++Pos;
    }
    fail("unterminated string");
    return false;
  }

  bool parseBool(JsonValue &V) {
    V.Ty = JsonValue::Type::Bool;
    if (Text.compare(Pos, 4, "true") == 0) {
      V.Bool = true;
      Pos += 4;
      return true;
    }
    if (Text.compare(Pos, 5, "false") == 0) {
      V.Bool = false;
      Pos += 5;
      return true;
    }
    fail("bad literal");
    return false;
  }

  bool parseNull(JsonValue &V) {
    V.Ty = JsonValue::Type::Null;
    if (Text.compare(Pos, 4, "null") == 0) {
      Pos += 4;
      return true;
    }
    fail("bad literal");
    return false;
  }

  bool parseNumber(JsonValue &V) {
    V.Ty = JsonValue::Type::Number;
    size_t Start = Pos;
    if (Pos < Text.size() && Text[Pos] == '-')
      ++Pos;
    while (Pos < Text.size() &&
           (std::isdigit(static_cast<unsigned char>(Text[Pos])) ||
            Text[Pos] == '.' || Text[Pos] == 'e' || Text[Pos] == 'E' ||
            Text[Pos] == '+' || Text[Pos] == '-'))
      ++Pos;
    if (Pos == Start) {
      fail("expected value");
      return false;
    }
    char *EndPtr = nullptr;
    std::string Num = Text.substr(Start, Pos - Start);
    V.Number = std::strtod(Num.c_str(), &EndPtr);
    if (EndPtr != Num.c_str() + Num.size()) {
      fail("malformed number");
      return false;
    }
    return true;
  }

  const std::string &Text;
  std::string *Error;
  size_t Pos = 0;
};

} // namespace

const JsonValue *JsonValue::get(const std::string &Key) const {
  if (Ty != Type::Object)
    return nullptr;
  auto It = Object.find(Key);
  return It == Object.end() ? nullptr : &It->second;
}

std::unique_ptr<JsonValue> JsonValue::parse(const std::string &Text,
                                            std::string *Error) {
  std::string LocalErr;
  Parser P(Text, Error ? Error : &LocalErr);
  return P.run();
}
