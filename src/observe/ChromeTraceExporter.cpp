//===- ChromeTraceExporter.cpp - chrome://tracing JSON export -------------===//

#include "observe/ChromeTraceExporter.h"

#include "observe/Json.h"

#include <fstream>
#include <map>

using namespace cgc;

namespace {

void emitEvent(JsonWriter &W, const char *Name, const char *Phase,
               uint64_t TsMicros, uint32_t Tid, uint64_t Arg0, uint64_t Arg1,
               bool WithArgs) {
  W.beginObject();
  W.key("name");
  W.value(Name);
  W.key("ph");
  W.value(Phase);
  W.key("ts");
  W.value(TsMicros);
  W.key("pid");
  W.value(uint64_t(1));
  W.key("tid");
  W.value(uint64_t(Tid));
  if (WithArgs) {
    W.key("args");
    W.beginObject();
    W.key("a0");
    W.value(Arg0);
    W.key("a1");
    W.value(Arg1);
    W.endObject();
  }
  W.endObject();
}

} // namespace

std::string ChromeTraceExporter::toJson(const std::vector<EventRecord> &Events) {
  uint64_t Base = Events.empty() ? 0 : Events.front().TimeNs;
  uint64_t Last = Base;
  for (const EventRecord &E : Events) {
    if (E.TimeNs < Base)
      Base = E.TimeNs;
    if (E.TimeNs > Last)
      Last = E.TimeNs;
  }
  auto ToMicros = [Base](uint64_t Ns) { return (Ns - Base) / 1000; };

  JsonWriter W;
  W.beginObject();
  W.key("traceEvents");
  W.beginArray();

  // Per-thread stack of open Begin events, for orphan repair.
  std::map<uint32_t, std::vector<EventKind>> Open;

  for (const EventRecord &E : Events) {
    switch (eventPhase(E.Kind)) {
    case EventPhase::Begin:
      Open[E.ThreadId].push_back(E.Kind);
      emitEvent(W, eventKindName(E.Kind), "B", ToMicros(E.TimeNs), E.ThreadId,
                E.Arg0, E.Arg1, /*WithArgs=*/true);
      break;
    case EventPhase::End: {
      std::vector<EventKind> &Stack = Open[E.ThreadId];
      // Drop orphaned Ends (their Begin was overwritten in the ring or
      // mismatched); the trace format requires strict pairing.
      if (Stack.empty() || Stack.back() != beginKindFor(E.Kind))
        break;
      Stack.pop_back();
      emitEvent(W, eventKindName(beginKindFor(E.Kind)), "E",
                ToMicros(E.TimeNs), E.ThreadId, E.Arg0, E.Arg1,
                /*WithArgs=*/false);
      break;
    }
    case EventPhase::Instant:
      emitEvent(W, eventKindName(E.Kind), "i", ToMicros(E.TimeNs), E.ThreadId,
                E.Arg0, E.Arg1, /*WithArgs=*/true);
      break;
    }
  }

  // Close anything still open at the final timestamp so viewers load
  // the file without complaint.
  for (auto &Entry : Open) {
    std::vector<EventKind> &Stack = Entry.second;
    while (!Stack.empty()) {
      emitEvent(W, eventKindName(Stack.back()), "E", ToMicros(Last),
                Entry.first, 0, 0, /*WithArgs=*/false);
      Stack.pop_back();
    }
  }

  W.endArray();
  W.key("displayTimeUnit");
  W.value("ms");
  W.endObject();
  return W.str();
}

bool ChromeTraceExporter::writeFile(const std::string &Path,
                                    const std::vector<EventRecord> &Events) {
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  if (!Out)
    return false;
  Out << toJson(Events);
  return static_cast<bool>(Out);
}
