//===- Json.h - Minimal JSON writer and parser ------------------*- C++ -*-===//
///
/// \file
/// Just enough JSON for the exporters: a streaming writer that never
/// emits NaN/Inf (they are clamped to 0, keeping output standards-valid)
/// and a small recursive-descent parser used by the round-trip tests
/// and the bench-schema validator. No external dependencies.
///
//===----------------------------------------------------------------------===//

#ifndef CGC_OBSERVE_JSON_H
#define CGC_OBSERVE_JSON_H

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace cgc {

/// A parsed JSON value (tree-owning).
class JsonValue {
public:
  enum class Type { Null, Bool, Number, String, Array, Object };

  Type type() const { return Ty; }
  bool isNull() const { return Ty == Type::Null; }

  bool boolValue() const { return Bool; }
  double numberValue() const { return Number; }
  const std::string &stringValue() const { return Str; }
  const std::vector<JsonValue> &arrayValue() const { return Array; }
  const std::map<std::string, JsonValue> &objectValue() const { return Object; }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue *get(const std::string &Key) const;

  /// Parses \p Text; returns nullptr and sets \p Error on failure.
  static std::unique_ptr<JsonValue> parse(const std::string &Text,
                                          std::string *Error);

  Type Ty = Type::Null;
  bool Bool = false;
  double Number = 0;
  std::string Str;
  std::vector<JsonValue> Array;
  std::map<std::string, JsonValue> Object;
};

/// Streaming JSON writer producing compact output. Usage mirrors the
/// document structure: beginObject/key/value.../endObject.
class JsonWriter {
public:
  void beginObject();
  void endObject();
  void beginArray();
  void endArray();
  /// Starts an object member; follow with exactly one value call.
  void key(const std::string &Name);
  void value(const std::string &Str);
  void value(const char *Str);
  void value(double Num);
  void value(uint64_t Num);
  void value(int64_t Num);
  void value(int Num) { value(static_cast<int64_t>(Num)); }
  void value(bool Flag);
  void valueNull();

  /// The serialized document so far.
  const std::string &str() const { return Out; }

private:
  void comma();
  std::string Out;
  /// Whether the current nesting level already has an element.
  std::vector<bool> NeedComma;
  bool AfterKey = false;
};

/// JSON string escaping (quotes not included).
std::string jsonEscape(const std::string &Str);

} // namespace cgc

#endif // CGC_OBSERVE_JSON_H
