//===- EventKind.h - Observability event vocabulary -------------*- C++ -*-===//
///
/// \file
/// The fixed vocabulary of trace events emitted by the collector when
/// GcOptions::Observe is on. Kinds mirror the paper's phase structure
/// (Sections 2-4): cycle kickoff, incremental tracing quanta, background
/// quanta, card-cleaning passes, the final stop-the-world phase, sweep
/// slices, packet circulation, and the allocation degradation ladder.
///
/// Each kind documents its two payload words (Arg0/Arg1) next to the
/// enumerator; the Chrome-trace exporter maps kinds to begin/end pairs
/// or instants via eventPhase().
///
//===----------------------------------------------------------------------===//

#ifndef CGC_OBSERVE_EVENTKIND_H
#define CGC_OBSERVE_EVENTKIND_H

#include <cstdint>

namespace cgc {

/// What happened. Payload meanings are per-kind (documented inline).
enum class EventKind : uint16_t {
  /// Never emitted; a drained record of this kind indicates a bug.
  None = 0,

  // --- Cycle structure ------------------------------------------------
  /// A concurrent cycle started. Arg0 = cycle number, Arg1 = refillable
  /// free bytes at kickoff.
  CycleKickoff,
  /// A cycle's final pause finished and the cycle is complete.
  /// Arg0 = cycle number, Arg1 = 1 if tracing terminated concurrently.
  CycleComplete,

  // --- Tracing quanta ---------------------------------------------------
  /// A mutator's incremental tracing quantum begins. Arg0 = budget
  /// bytes from the progress formula, Arg1 = cycle number.
  IncTraceBegin,
  /// The matching end. Arg0 = bytes actually traced, Arg1 = budget.
  IncTraceEnd,
  /// One background-thread tracing quantum (instant, emitted on
  /// completion). Arg0 = packet-traced bytes, Arg1 = auxiliary bytes.
  BackgroundQuantum,

  // --- Card cleaning ----------------------------------------------------
  /// A card-cleaning pass was opened (registration + handshake done).
  /// Arg0 = cards registered, Arg1 = 1 for the final STW pass.
  CardCleanPass,
  /// A batch of registered cards was cleaned. Arg0 = cards cleaned,
  /// Arg1 = cards registered but not yet cleaned afterwards.
  CardCleanSlice,

  // --- The pause --------------------------------------------------------
  /// The final stop-the-world phase begins (world about to stop).
  /// Arg0 = cycle number, Arg1 = 0 concurrent-finish by termination,
  /// 1 concurrent-finish by allocation failure, 2 full STW cycle.
  StwBegin,
  /// The world resumed. Arg0 = cycle number, Arg1 = pause nanoseconds.
  StwEnd,

  // --- Sweep ------------------------------------------------------------
  /// A sweep unit completed. Arg0 = live bytes found (in-pause sweep)
  /// or bytes reclaimed (lazy slice), Arg1 = 1 when lazy/incremental.
  SweepSlice,

  // --- Work packets -----------------------------------------------------
  /// A packet left a sub-pool. Arg0 = sub-pool (PacketSubPool), Arg1 =
  /// entries in the packet.
  PacketGet,
  /// A packet was returned to a sub-pool. Arg0 = sub-pool, Arg1 =
  /// entries in the packet.
  PacketPut,
  /// A packet changed occupancy class between acquire and release, or
  /// moved to/from the Deferred pool. Arg0 = from sub-pool, Arg1 = to
  /// sub-pool.
  PacketTransition,

  // --- Degradation and overflow ----------------------------------------
  /// The allocator escalated into a degradation-ladder rung.
  /// Arg0 = EscalationRung, Arg1 = bytes wanted.
  AllocLadderRung,
  /// Packet-pool overflow treatment taken (mark + dirty card).
  /// Arg0 = reserved (0; the object header must not be read at the
  /// overflow site), Arg1 = total overflows so far this cycle.
  Overflow,

  // --- Pacer ------------------------------------------------------------
  /// The pacer closed a Best measurement window (Section 3.2).
  /// Arg0 = background-traced bytes in the window, Arg1 = allocated
  /// bytes in the window.
  PacerWindow,
  /// A not-yet-scanned mutator stack was scanned by a starved
  /// participant. Arg0 = root words scanned, Arg1 = cycle number.
  StackScan,

  // --- Compaction -------------------------------------------------------
  /// Evacuation of the armed area begins (inside the pause, after
  /// sweep). Arg0 = cycle number, Arg1 = armed area bytes.
  CompactionBegin,
  /// The matching end. Arg0 = bytes evacuated, Arg1 = objects left in
  /// place (pinned + failed moves).
  CompactionEnd,

  // --- Cooperation-stall defense ----------------------------------------
  /// A cooperation grace period elapsed with a laggard outstanding (one
  /// event per laggard per elapsed grace period). Arg0 = laggard
  /// debugId, Arg1 = nanoseconds since its last cooperation point.
  HandshakeStall,
  /// The watchdog aborted a concurrent cycle to STW-finish because fence
  /// handshakes kept timing out. Arg0 = fence timeouts this cycle,
  /// Arg1 = configured strike limit.
  HandshakeAbort,

  NumKinds
};

/// Sub-pool identifiers used in packet events (mirrors the pool's
/// occupancy classification; stable for the export schema).
enum class PacketSubPool : uint8_t { Empty = 0, NonEmpty, AlmostFull, Deferred };

/// How an event kind renders in a trace timeline.
enum class EventPhase : uint8_t {
  /// A point event.
  Instant,
  /// Opens a duration (must be closed by its End kind on the same
  /// thread).
  Begin,
  /// Closes the most recent unmatched Begin on the same thread.
  End
};

/// Stable name for export (never renamed once shipped in a schema).
const char *eventKindName(EventKind Kind);

/// Begin/End/Instant classification for timeline export.
EventPhase eventPhase(EventKind Kind);

/// The matching Begin kind for an End kind (None otherwise).
EventKind beginKindFor(EventKind EndKind);

} // namespace cgc

#endif // CGC_OBSERVE_EVENTKIND_H
