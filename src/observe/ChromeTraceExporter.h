//===- ChromeTraceExporter.h - chrome://tracing JSON export -----*- C++ -*-===//
///
/// \file
/// Converts a merged event stream into the Chrome Trace Event Format
/// (the JSON-array-of-events "traceEvents" flavour loadable in
/// chrome://tracing and Perfetto). Begin/End kinds become duration
/// pairs ("B"/"E"); everything else becomes an instant ("i").
///
/// The exporter repairs imperfect streams rather than asserting:
/// orphaned End events (their Begin was overwritten in the ring) are
/// dropped, and Begins left open at the end of the stream get a
/// synthetic End at the final timestamp, so the output always loads.
///
//===----------------------------------------------------------------------===//

#ifndef CGC_OBSERVE_CHROMETRACEEXPORTER_H
#define CGC_OBSERVE_CHROMETRACEEXPORTER_H

#include "observe/EventRing.h"

#include <string>
#include <vector>

namespace cgc {

class ChromeTraceExporter {
public:
  /// Serializes \p Events (timestamp-sorted, e.g. from
  /// GcObserver::drainAll) as a Chrome trace JSON document.
  /// Timestamps are rebased to the earliest event and converted to the
  /// format's microseconds.
  static std::string toJson(const std::vector<EventRecord> &Events);

  /// Convenience: writes toJson() to \p Path. Returns false on I/O
  /// failure.
  static bool writeFile(const std::string &Path,
                        const std::vector<EventRecord> &Events);
};

} // namespace cgc

#endif // CGC_OBSERVE_CHROMETRACEEXPORTER_H
