//===- EventRing.h - Per-thread lock-free event buffer ----------*- C++ -*-===//
///
/// \file
/// A fixed-capacity single-producer ring of 32-byte event records. Each
/// mutator / GC thread owns one ring and appends with plain relaxed
/// stores plus a single release store of the write cursor — no locks, no
/// allocation, no fences on the hot path. When the ring is full the
/// oldest records are overwritten (drop-oldest) and the drain accounts
/// for them exactly via cursor arithmetic.
///
/// ## Memory-order argument
///
/// Producer (owner thread only):
///   1. W = WriteCursor.load(relaxed)        — own cursor, no sync needed
///   2. four relaxed stores into Slots[W & Mask]
///   3. WriteCursor.store(W + 1, release)    — publishes step 2
///
/// Consumer (any thread, serialized externally by the observer's drain
/// lock):
///   1. End   = WriteCursor.load(acquire)    — sees slots of all i < End
///   2. Start = max(ReadCursor, End - Capacity)
///   3. relaxed-load slots for i in [Start, End)
///   4. Reload = WriteCursor.load(acquire)
///   5. discard any i < Reload - Capacity    — may have been overwritten
///      concurrently during step 3; everything kept is a torn-free
///      snapshot because the producer had not reached its slot again
///      before step 4's load.
///
/// The acquire at (1) pairs with the producer's release at (3): every
/// slot store for indices below End happens-before the consumer's slot
/// loads. A record being *overwritten* during step 3 is detected — not
/// prevented — by step 5: the producer must advance WriteCursor past
/// i + Capacity before re-storing slot i & Mask, so any torn read is at
/// an index the reload proves stale. Slots are std::atomic<uint64_t>
/// words, so even racing loads are not UB, merely discarded.
///
//===----------------------------------------------------------------------===//

#ifndef CGC_OBSERVE_EVENTRING_H
#define CGC_OBSERVE_EVENTRING_H

#include "observe/EventKind.h"
#include "support/Annotations.h"

#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>
#include <vector>

namespace cgc {

/// One drained trace record (the decoded, stable-layout view).
struct EventRecord {
  /// Monotonic timestamp from cgc::nowNanos().
  uint64_t TimeNs = 0;
  /// Observer-assigned id of the emitting thread.
  uint32_t ThreadId = 0;
  /// What happened.
  EventKind Kind = EventKind::None;
  /// Per-kind payload words (see EventKind.h).
  uint64_t Arg0 = 0;
  uint64_t Arg1 = 0;
};

/// Fixed-capacity drop-oldest SPSC event buffer. The owning thread
/// appends; drains may run concurrently from another thread (serialized
/// against *each other* by the caller, see GcObserver::drainAll).
class EventRing {
public:
  /// \p CapacityEvents is rounded up to a power of two, minimum 16.
  explicit EventRing(uint32_t OwnerThreadId, uint32_t CapacityEvents)
      : Owner(OwnerThreadId), Cap(roundUpPow2(CapacityEvents < 16
                                                  ? 16u
                                                  : CapacityEvents)),
        Mask(Cap - 1), Slots(new std::atomic<uint64_t>[size_t(Cap) * WordsPerEvent]) {
    for (uint64_t I = 0; I < uint64_t(Cap) * WordsPerEvent; ++I)
      Slots[I].store(0, std::memory_order_relaxed);
  }

  EventRing(const EventRing &) = delete;
  EventRing &operator=(const EventRing &) = delete;

  /// Appends one record. Owner thread only. One relaxed cursor load,
  /// four relaxed word stores, one release cursor store; never blocks,
  /// never allocates.
  void push(uint64_t TimeNs, EventKind Kind, uint64_t Arg0, uint64_t Arg1) {
    uint64_t W = WriteCursor.load(std::memory_order_relaxed);
    auto *Slot = &Slots[(W & Mask) * WordsPerEvent];
    Slot[0].store(TimeNs, std::memory_order_relaxed);
    Slot[1].store(packMeta(Owner, Kind), std::memory_order_relaxed);
    Slot[2].store(Arg0, std::memory_order_relaxed);
    Slot[3].store(Arg1, std::memory_order_relaxed);
    WriteCursor.store(W + 1, std::memory_order_release);
  }

  /// Drains every record still resident, appending to \p Out in push
  /// order. Returns the number of records dropped (overwritten before
  /// they could be read) since the previous drain. Callers must
  /// serialize concurrent drains of the same ring externally.
  uint64_t drain(std::vector<EventRecord> &Out) {
    uint64_t End = WriteCursor.load(std::memory_order_acquire);
    uint64_t Read = ReadCursor.load(std::memory_order_relaxed);
    uint64_t Start = Read;
    uint64_t Dropped = 0;
    if (End - Start > Cap) {
      Dropped = (End - Start) - Cap;
      Start = End - Cap;
    }
    size_t FirstKept = Out.size();
    for (uint64_t I = Start; I != End; ++I) {
      const auto *Slot = &Slots[(I & Mask) * WordsPerEvent];
      EventRecord R;
      R.TimeNs = Slot[0].load(std::memory_order_relaxed);
      uint64_t Meta = Slot[1].load(std::memory_order_relaxed);
      R.ThreadId = static_cast<uint32_t>(Meta >> 16);
      R.Kind = static_cast<EventKind>(Meta & 0xffff);
      R.Arg0 = Slot[2].load(std::memory_order_relaxed);
      R.Arg1 = Slot[3].load(std::memory_order_relaxed);
      Out.push_back(R);
    }
    // Records the producer may have overwritten while we were reading
    // are stale-by-reload: discard them and count them dropped.
    uint64_t Reload = WriteCursor.load(std::memory_order_acquire);
    if (Reload > Cap && Reload - Cap > Start) {
      uint64_t Stale = Reload - Cap - Start;
      if (Stale > End - Start)
        Stale = End - Start;
      Out.erase(Out.begin() + static_cast<ptrdiff_t>(FirstKept),
                Out.begin() + static_cast<ptrdiff_t>(FirstKept + Stale));
      Dropped += Stale;
    }
    ReadCursor.store(End, std::memory_order_relaxed);
    DroppedTotal.fetch_add(Dropped, std::memory_order_relaxed);
    return Dropped;
  }

  /// Runs \p Fn over (at most) the newest \p MaxEvents resident records,
  /// oldest-first, without consuming them (ReadCursor is untouched).
  /// Async-signal-safe: no locks, no allocation — the flight recorder
  /// calls this from a crash handler. Records racing the producer may be
  /// torn; crash dumps accept that.
  template <typename FnT> void peekTail(uint32_t MaxEvents, FnT Fn) const {
    uint64_t End = WriteCursor.load(std::memory_order_acquire);
    uint64_t N = End < MaxEvents ? End : MaxEvents;
    if (N > Cap)
      N = Cap;
    for (uint64_t I = End - N; I != End; ++I) {
      const auto *Slot = &Slots[(I & Mask) * WordsPerEvent];
      EventRecord R;
      R.TimeNs = Slot[0].load(std::memory_order_relaxed);
      uint64_t Meta = Slot[1].load(std::memory_order_relaxed);
      R.ThreadId = static_cast<uint32_t>(Meta >> 16);
      R.Kind = static_cast<EventKind>(Meta & 0xffff);
      R.Arg0 = Slot[2].load(std::memory_order_relaxed);
      R.Arg1 = Slot[3].load(std::memory_order_relaxed);
      Fn(R);
    }
  }

  /// Total records overwritten before being drained, over the ring's
  /// lifetime (updated at drain time).
  uint64_t droppedCount() const {
    return DroppedTotal.load(std::memory_order_relaxed);
  }

  /// Records pushed over the ring's lifetime.
  uint64_t pushedCount() const {
    return WriteCursor.load(std::memory_order_acquire);
  }

  /// Capacity in events after power-of-two rounding.
  uint32_t capacity() const { return Cap; }

  /// The observer-assigned thread id this ring records for.
  uint32_t ownerThreadId() const { return Owner; }

private:
  static constexpr uint32_t WordsPerEvent = 4; // 32 bytes per record

  static uint64_t packMeta(uint32_t Tid, EventKind Kind) {
    return (uint64_t(Tid) << 16) | uint64_t(static_cast<uint16_t>(Kind));
  }

  static uint32_t roundUpPow2(uint32_t V) {
    V -= 1;
    V |= V >> 1;
    V |= V >> 2;
    V |= V >> 4;
    V |= V >> 8;
    V |= V >> 16;
    return V + 1;
  }

  const uint32_t Owner;
  const uint32_t Cap;
  const uint64_t Mask;
  // Slot words are atomics so a concurrent drain racing an overwrite is
  // a detected stale read, never UB; all slot accesses are relaxed and
  // ordered solely through WriteCursor.
  CGC_ATOMIC_DOC("relaxed data words; publication ordered via WriteCursor")
  std::unique_ptr<std::atomic<uint64_t>[]> Slots;

  CGC_ATOMIC_DOC("producer release-store publishes slots; drains acquire")
  std::atomic<uint64_t> WriteCursor{0};
  CGC_ATOMIC_DOC("consumer-side progress; relaxed, drains are serialized")
  std::atomic<uint64_t> ReadCursor{0};
  CGC_ATOMIC_DOC("relaxed lifetime drop counter, written only at drain")
  std::atomic<uint64_t> DroppedTotal{0};
};

} // namespace cgc

#endif // CGC_OBSERVE_EVENTRING_H
