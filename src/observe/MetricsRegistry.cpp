//===- MetricsRegistry.cpp - Histogram math and gauge log -----------------===//

#include "observe/MetricsRegistry.h"

#include <cmath>

using namespace cgc;

static uint32_t floorLog2(uint64_t V) {
  uint32_t L = 0;
  while (V >>= 1)
    ++L;
  return L;
}

uint32_t PauseHistogram::bucketFor(uint64_t Nanos) {
  if (Nanos < (1ull << BaseShift))
    return static_cast<uint32_t>(Nanos >> (BaseShift - 3)); // 128 ns linear
  uint32_t Octave = floorLog2(Nanos) - BaseShift;
  if (Octave >= MaxOctaves)
    return NumBuckets - 1; // overflow bucket
  uint32_t Sub =
      static_cast<uint32_t>((Nanos >> (BaseShift - 3 + Octave)) & (SubBuckets - 1));
  return SubBuckets + Octave * SubBuckets + Sub;
}

uint64_t PauseHistogram::bucketLowerBound(uint32_t Bucket) {
  if (Bucket < SubBuckets)
    return uint64_t(Bucket) << (BaseShift - 3);
  if (Bucket >= NumBuckets - 1) // overflow bucket
    return 1ull << (BaseShift + MaxOctaves);
  uint32_t Octave = Bucket / SubBuckets - 1;
  uint32_t Sub = Bucket % SubBuckets;
  return (1ull << (BaseShift + Octave)) +
         (uint64_t(Sub) << (BaseShift - 3 + Octave));
}

uint64_t PauseHistogram::quantile(double Q) const {
  uint64_t N = count();
  if (N == 0)
    return 0;
  if (Q >= 1.0)
    return max();
  if (Q < 0.0)
    Q = 0.0;
  // Rank of the requested sample, 1-based: ceil(Q * N), at least 1.
  uint64_t Rank = static_cast<uint64_t>(std::ceil(Q * static_cast<double>(N)));
  if (Rank < 1)
    Rank = 1;
  uint64_t Seen = 0;
  for (uint32_t B = 0; B < NumBuckets; ++B) {
    Seen += Counts[B].load(std::memory_order_relaxed);
    if (Seen >= Rank)
      return bucketLowerBound(B);
  }
  return max(); // racing record(); fall back to the extreme
}

double PauseHistogram::meanNanos() const {
  uint64_t N = count();
  if (N == 0)
    return 0.0;
  return static_cast<double>(totalNanos()) / static_cast<double>(N);
}

const char *cgc::pauseMetricName(PauseMetric Metric) {
  switch (Metric) {
  case PauseMetric::TotalPause:
    return "total_pause";
  case PauseMetric::FinalCardClean:
    return "final_card_clean";
  case PauseMetric::FinalMark:
    return "final_mark";
  case PauseMetric::Sweep:
    return "sweep";
  case PauseMetric::IncQuantum:
    return "inc_quantum";
  case PauseMetric::StwEntry:
    return "stw_entry";
  case PauseMetric::FenceHandshake:
    return "fence_handshake";
  case PauseMetric::RequestLatency:
    return "request_latency";
  case PauseMetric::RequestService:
    return "request_service";
  case PauseMetric::NumMetrics:
    break;
  }
  return "invalid";
}

void MetricsRegistry::addCycleGauges(CycleGauges Gauges) {
  SpinLockGuard Guard(GaugeLock);
  if (Gauges.LiveAfterBytes < MinLiveAfter)
    MinLiveAfter = Gauges.LiveAfterBytes;
  Gauges.FloatingGarbageBytes = Gauges.LiveAfterBytes - MinLiveAfter;
  this->Gauges.push_back(Gauges);
}

std::vector<CycleGauges> MetricsRegistry::cycleGauges() const {
  SpinLockGuard Guard(GaugeLock);
  return Gauges;
}
