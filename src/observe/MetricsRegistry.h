//===- MetricsRegistry.h - Pause histograms and cycle gauges ----*- C++ -*-===//
///
/// \file
/// Aggregated metrics backing the paper's figures: log-scale pause-time
/// histograms (Figures 1-2 report pause distributions; we track
/// p50/p95/p99/max) and per-cycle gauges (Table 1's K actual vs. target,
/// the pacer's Best estimate, packet-pool occupancy, floating garbage).
///
/// PauseHistogram is HDR-style: 8 sub-buckets per power-of-two octave
/// above 1024 ns, 8 linear 128 ns buckets below. Relative quantile error
/// is bounded at 12.5% (one sub-bucket), and quantile(1.0) returns the
/// exact recorded maximum.
///
//===----------------------------------------------------------------------===//

#ifndef CGC_OBSERVE_METRICSREGISTRY_H
#define CGC_OBSERVE_METRICSREGISTRY_H

#include "support/Annotations.h"
#include "support/Atomics.h"
#include "support/SpinLock.h"

#include <atomic>
#include <cstdint>
#include <vector>

namespace cgc {

/// Fixed-bucket log-scale histogram of nanosecond durations. record()
/// is lock-free (one relaxed fetch_add plus a store-max); quantile
/// queries walk the bucket array and may race recording, returning a
/// slightly stale but internally consistent-enough answer for
/// reporting (tests query quiescent histograms).
class PauseHistogram {
public:
  /// 8 linear buckets below 1024 ns, then 8 sub-buckets per octave up
  /// to 2^41 ns (~36 min), plus one overflow bucket.
  static constexpr uint32_t SubBuckets = 8;
  static constexpr uint32_t BaseShift = 10;     // first octave at 1024 ns
  static constexpr uint32_t MaxOctaves = 32;    // up to ~2^41 ns
  static constexpr uint32_t NumBuckets =
      SubBuckets + MaxOctaves * SubBuckets + 1; // + overflow

  /// Bucket index for a value (exposed so tests can assert the
  /// bucket-equality contract: bucketFor(quantile(q)) equals the bucket
  /// of the reference-sorted quantile).
  static uint32_t bucketFor(uint64_t Nanos);

  /// Inclusive lower bound of a bucket, the value quantiles report.
  static uint64_t bucketLowerBound(uint32_t Bucket);

  /// Records one duration. Lock-free, any thread.
  void record(uint64_t Nanos) {
    Counts[bucketFor(Nanos)].fetch_add(1, std::memory_order_relaxed);
    TotalCount.fetch_add(1, std::memory_order_relaxed);
    TotalNanos.fetch_add(Nanos, std::memory_order_relaxed);
    atomicStoreMax(MaxNanos, Nanos);
  }

  /// Number of recorded samples.
  uint64_t count() const { return TotalCount.load(std::memory_order_relaxed); }

  /// Sum of all recorded durations.
  uint64_t totalNanos() const {
    return TotalNanos.load(std::memory_order_relaxed);
  }

  /// The exact largest recorded value (0 when empty).
  uint64_t max() const { return MaxNanos.load(std::memory_order_relaxed); }

  /// Value at quantile \p Q in [0,1]: the lower bound of the bucket
  /// holding the ceil(Q * count)-th sample, except quantile(1.0) which
  /// returns the exact max. 0 when empty.
  uint64_t quantile(double Q) const;

  /// Mean of recorded durations (0 when empty).
  double meanNanos() const;

private:
  CGC_ATOMIC_DOC("relaxed per-bucket sample counters")
  std::atomic<uint64_t> Counts[NumBuckets] = {};
  CGC_ATOMIC_DOC("relaxed total sample count")
  std::atomic<uint64_t> TotalCount{0};
  CGC_ATOMIC_DOC("relaxed sum of samples for mean()")
  std::atomic<uint64_t> TotalNanos{0};
  CGC_ATOMIC_DOC("monotonic max via atomicStoreMax")
  std::atomic<uint64_t> MaxNanos{0};
};

/// Which pause/duration distribution a sample belongs to.
enum class PauseMetric : uint8_t {
  /// Full stop-the-world pause of a cycle's final phase (Figures 1-2).
  TotalPause = 0,
  /// Final card-cleaning pass inside the pause.
  FinalCardClean,
  /// Final mark / termination trace inside the pause.
  FinalMark,
  /// In-pause sweep (non-lazy) or sweep-slice durations.
  Sweep,
  /// One mutator incremental-tracing quantum.
  IncQuantum,
  /// Stop-the-world entry latency: request to all-threads-parked
  /// (cooperation health; a stalling mutator shows up here first).
  StwEntry,
  /// Ragged fence-handshake completion latency (successful handshakes
  /// only; timeouts are counted separately by the registry).
  FenceHandshake,
  /// End-to-end request latency of a server workload, measured from the
  /// request's *scheduled* start time on an open-loop arrival schedule
  /// (DESIGN.md §15) — a request whose slot was delayed by a pause is
  /// charged the queueing it caused, so coordinated omission is
  /// accounted for rather than hidden.
  RequestLatency,
  /// Pure service time of the same requests (actual send to completion,
  /// no queueing): the gap between this and RequestLatency is the
  /// scheduling delay GC pauses impose on an open-loop client.
  RequestService,
  NumMetrics
};

/// Stable export key for a pause metric.
const char *pauseMetricName(PauseMetric Metric);

/// End-of-cycle snapshot gauges (one row per completed GC cycle).
struct CycleGauges {
  /// 1-based cycle number.
  uint64_t Cycle = 0;
  /// 1 if the cycle ran its tracing concurrently, 0 for full STW.
  uint32_t Concurrent = 0;
  /// The configured tracing-rate target K0.
  double KTarget = 0;
  /// Achieved tracing rate: bytes traced / bytes allocated during the
  /// concurrent phase (0 for STW cycles).
  double KActual = 0;
  /// The pacer's Best estimate (background bytes traced per allocated
  /// byte) at cycle end.
  double Best = 0;
  /// Packet-pool occupancy at cycle end, by sub-pool.
  uint64_t PoolEmpty = 0;
  uint64_t PoolNonEmpty = 0;
  uint64_t PoolAlmostFull = 0;
  uint64_t PoolDeferred = 0;
  /// Live bytes surviving the cycle.
  uint64_t LiveAfterBytes = 0;
  /// Heap size the cycle ran against.
  uint64_t HeapBytes = 0;
  /// Estimated floating garbage: this cycle's live-after minus the
  /// smallest live-after seen so far (objects that died during tracing
  /// but were conservatively retained). An approximation — the true
  /// figure needs a precise baseline collection — but monotone in the
  /// quantity the paper discusses (Section 2.2).
  uint64_t FloatingGarbageBytes = 0;
  /// Incremental compaction (all zero for cycles without an armed
  /// area). Candidate areas scored by the fragmentation-guided
  /// selector, bytes evacuated out of the chosen area, objects pinned
  /// by conservative stack roots, and moves abandoned for lack of
  /// target space.
  uint64_t CompactionAreasScored = 0;
  uint64_t CompactionEvacuatedBytes = 0;
  uint64_t CompactionPinnedObjects = 0;
  uint64_t CompactionFailedMoves = 0;
};

/// Request-level counters for the open-loop server workloads
/// (DESIGN.md §15). Recording is lock-free relaxed adds from client
/// threads; snapshot() reads racily (reports read quiescent counters).
struct RequestCounters {
  CGC_ATOMIC_DOC("clients add relaxed; reporting reads racily")
  std::atomic<uint64_t> Scheduled{0};
  CGC_ATOMIC_DOC("clients add relaxed; reporting reads racily")
  std::atomic<uint64_t> Completed{0};
  CGC_ATOMIC_DOC("clients add relaxed; reporting reads racily")
  std::atomic<uint64_t> Failed{0};
  /// Requests that missed their scheduled slot (the client was still
  /// serving an earlier request when the slot came due).
  CGC_ATOMIC_DOC("clients add relaxed; reporting reads racily")
  std::atomic<uint64_t> LateStarts{0};
  /// Latency samples dropped because a client's pre-sized buffer
  /// filled (quantiles then under-sample the tail; report it).
  CGC_ATOMIC_DOC("clients add relaxed; reporting reads racily")
  std::atomic<uint64_t> DroppedSamples{0};

  /// Plain-value snapshot for reporting.
  struct Snapshot {
    uint64_t Scheduled = 0;
    uint64_t Completed = 0;
    uint64_t Failed = 0;
    uint64_t LateStarts = 0;
    uint64_t DroppedSamples = 0;
  };
  Snapshot snapshot() const {
    Snapshot S;
    S.Scheduled = Scheduled.load(std::memory_order_relaxed);
    S.Completed = Completed.load(std::memory_order_relaxed);
    S.Failed = Failed.load(std::memory_order_relaxed);
    S.LateStarts = LateStarts.load(std::memory_order_relaxed);
    S.DroppedSamples = DroppedSamples.load(std::memory_order_relaxed);
    return S;
  }
};

/// Owns every histogram and the per-cycle gauge log for one collector
/// instance. Histogram recording is lock-free; the gauge log takes a
/// spin lock (once per cycle, cold).
class MetricsRegistry {
public:
  /// The histogram for \p Metric (always valid).
  PauseHistogram &histogram(PauseMetric Metric) {
    return Histograms[static_cast<size_t>(Metric)];
  }
  const PauseHistogram &histogram(PauseMetric Metric) const {
    return Histograms[static_cast<size_t>(Metric)];
  }

  /// Appends one end-of-cycle gauge row, deriving FloatingGarbageBytes
  /// from the live-after low-water mark.
  void addCycleGauges(CycleGauges Gauges);

  /// Snapshot of all gauge rows so far, in cycle order.
  std::vector<CycleGauges> cycleGauges() const;

  /// Per-request counters (open-loop server workloads).
  RequestCounters &requests() { return Requests; }
  const RequestCounters &requests() const { return Requests; }

private:
  PauseHistogram Histograms[static_cast<size_t>(PauseMetric::NumMetrics)];
  RequestCounters Requests;

  mutable SpinLock GaugeLock;
  CGC_GUARDED_BY(GaugeLock)
  std::vector<CycleGauges> Gauges;
  CGC_GUARDED_BY(GaugeLock)
  uint64_t MinLiveAfter = UINT64_MAX;
};

} // namespace cgc

#endif // CGC_OBSERVE_METRICSREGISTRY_H
