//===- Observe.h - Event observer and instrumentation macros ----*- C++ -*-===//
///
/// \file
/// GcObserver is the per-collector hub of the observability layer: it
/// hands each thread a private lock-free EventRing on first use, owns
/// the MetricsRegistry, and merges all rings into one timestamp-ordered
/// stream for export.
///
/// Instrumentation sites use the CGC_OBS_EVENT macros, which compile to
/// a single predictable branch on a plain bool when observability is
/// compiled in (GcOptions::Observe off ⇒ nothing else runs) and to an
/// empty statement — arguments unevaluated — when the tree is built
/// with -DCGC_OBSERVE_COMPILED=0.
///
//===----------------------------------------------------------------------===//

#ifndef CGC_OBSERVE_OBSERVE_H
#define CGC_OBSERVE_OBSERVE_H

#include "observe/EventRing.h"
#include "observe/MetricsRegistry.h"
#include "support/Annotations.h"
#include "support/SpinLock.h"
#include "support/Timing.h"

#include <atomic>
#include <memory>
#include <vector>

/// Compile-time gate. Building with -DCGC_OBSERVE_COMPILED=0 turns
/// every CGC_OBS_* macro into an empty statement with unevaluated
/// arguments; the observer object still exists (it is cheap and keeps
/// the API surface identical) but no instrumentation site touches it.
#ifndef CGC_OBSERVE_COMPILED
#define CGC_OBSERVE_COMPILED 1
#endif

namespace cgc {

/// Per-collector observability hub. Cheap when disabled: every
/// instrumentation site first tests the immutable `Enabled` bool.
/// Thread-safe: any thread may record; rings are created lazily under a
/// lock but appended to lock-free.
class GcObserver {
public:
  /// Hard cap on distinct recording threads; later threads lose their
  /// events (counted in lostThreadEvents()) rather than blocking.
  static constexpr uint32_t MaxRings = 64;

  /// \p Enabled mirrors GcOptions::Observe; \p RingCapacityEvents is
  /// per-thread (GcOptions::ObserveRingEvents).
  explicit GcObserver(bool Enabled, uint32_t RingCapacityEvents = 1u << 14);
  ~GcObserver();

  GcObserver(const GcObserver &) = delete;
  GcObserver &operator=(const GcObserver &) = delete;

  /// Whether event recording is on. Immutable after construction, so
  /// the hot-path check is a plain non-atomic load.
  bool enabled() const { return Enabled; }

  /// Records one event on the calling thread's ring (creating the ring
  /// on first use). Hot path after ring creation: one thread_local
  /// lookup, one clock read, four relaxed stores, one release store.
  void record(EventKind Kind, uint64_t Arg0, uint64_t Arg1) {
    if (!Enabled)
      return;
    EventRing *Ring = threadRing();
    if (!Ring) {
      LostThreadEvents.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    Ring->push(nowNanos(), Kind, Arg0, Arg1);
  }

  /// The aggregated metrics (histograms record lock-free regardless of
  /// Enabled; instrumentation sites gate on enabled() themselves).
  MetricsRegistry &metrics() { return Metrics; }
  const MetricsRegistry &metrics() const { return Metrics; }

  /// Drains every thread's ring and merges the records in timestamp
  /// order. Safe to call while producers are still recording (their
  /// newest events may miss the snapshot); concurrent drainAll calls
  /// serialize on an internal lock.
  std::vector<EventRecord> drainAll();

  /// Lifetime records overwritten before any drain saw them.
  uint64_t droppedEvents() const;

  /// Events discarded because more than MaxRings threads recorded.
  uint64_t lostThreadEvents() const {
    return LostThreadEvents.load(std::memory_order_relaxed);
  }

  /// Number of thread rings created so far.
  uint32_t ringCount() const {
    return NumRings.load(std::memory_order_acquire);
  }

  /// Handler-safe ring access for the flight recorder: ring \p I, or
  /// null when fewer rings exist. Never takes RingLock — the acquire
  /// load of the release-published ring count makes the slot's pointer
  /// store visible, and rings are never destroyed before the observer
  /// (whose destruction the crash handler cannot race: the recorder is
  /// uninstalled first).
  const EventRing *ringAt(uint32_t I) const CGC_NO_THREAD_SAFETY_ANALYSIS {
    if (I >= NumRings.load(std::memory_order_acquire))
      return nullptr;
    return Rings[I].get();
  }

private:
  /// The calling thread's ring for this observer, or nullptr when the
  /// ring table is full. Cached in a thread_local keyed by a
  /// process-unique observer id, so a thread touching two collector
  /// instances (or a re-created one) never reuses a stale pointer.
  EventRing *threadRing();
  EventRing *createRingSlow(uint32_t Tid);

  const bool Enabled;
  const uint32_t RingCapacity;
  /// Process-unique id for the thread_local ring cache.
  const uint64_t ObserverId;

  CGC_ATOMIC_DOC("ring-table publish count; release on create, acquire scan")
  std::atomic<uint32_t> NumRings{0};
  CGC_ATOMIC_DOC("relaxed counter of events from threads past MaxRings")
  std::atomic<uint64_t> LostThreadEvents{0};

  mutable SpinLock RingLock; // serializes ring creation and drainAll
  CGC_GUARDED_BY(RingLock)
  std::unique_ptr<EventRing> Rings[MaxRings];

  MetricsRegistry Metrics;
};

} // namespace cgc

#if CGC_OBSERVE_COMPILED

/// Record event \p KindSuffix (an EventKind enumerator name) on
/// observer reference \p Obs. Arguments are unevaluated unless the
/// observer is enabled.
#define CGC_OBS_EVENT(Obs, KindSuffix, A0, A1)                                 \
  do {                                                                         \
    if ((Obs).enabled())                                                       \
      (Obs).record(::cgc::EventKind::KindSuffix,                               \
                   static_cast<uint64_t>(A0), static_cast<uint64_t>(A1));      \
  } while (0)

/// Pointer form: \p ObsPtr may be null (site not wired up).
#define CGC_OBS_EVENT_P(ObsPtr, KindSuffix, A0, A1)                            \
  do {                                                                         \
    if ((ObsPtr) != nullptr && (ObsPtr)->enabled())                            \
      (ObsPtr)->record(::cgc::EventKind::KindSuffix,                           \
                       static_cast<uint64_t>(A0), static_cast<uint64_t>(A1));  \
  } while (0)

/// Record a duration sample into a pause histogram.
#define CGC_OBS_PAUSE(Obs, Metric, Nanos)                                      \
  do {                                                                         \
    if ((Obs).enabled())                                                       \
      (Obs).metrics()                                                          \
          .histogram(::cgc::PauseMetric::Metric)                               \
          .record(static_cast<uint64_t>(Nanos));                               \
  } while (0)

/// Pointer form of CGC_OBS_PAUSE: \p ObsPtr may be null.
#define CGC_OBS_PAUSE_P(ObsPtr, Metric, Nanos)                                 \
  do {                                                                         \
    if ((ObsPtr) != nullptr && (ObsPtr)->enabled())                            \
      (ObsPtr)->metrics()                                                      \
          .histogram(::cgc::PauseMetric::Metric)                               \
          .record(static_cast<uint64_t>(Nanos));                               \
  } while (0)

/// Timestamp for observability-only duration measurements: reads the
/// clock only when the observer is enabled, 0 otherwise (and a literal
/// 0 when instrumentation is compiled out, so dependent code folds
/// away).
#define CGC_OBS_NOW(Obs) ((Obs).enabled() ? ::cgc::nowNanos() : 0)

#else // !CGC_OBSERVE_COMPILED

// Arguments sit in unevaluated sizeof operands: no code is generated
// and no side effect runs, but variables used only for instrumentation
// do not trigger -Wunused warnings.
#define CGC_OBS_EVENT(Obs, KindSuffix, A0, A1)                                 \
  do {                                                                         \
    (void)sizeof(&(Obs));                                                      \
    (void)sizeof(A0);                                                          \
    (void)sizeof(A1);                                                          \
  } while (0)
#define CGC_OBS_EVENT_P(ObsPtr, KindSuffix, A0, A1)                            \
  do {                                                                         \
    (void)sizeof(ObsPtr);                                                      \
    (void)sizeof(A0);                                                          \
    (void)sizeof(A1);                                                          \
  } while (0)
#define CGC_OBS_PAUSE(Obs, Metric, Nanos)                                      \
  do {                                                                         \
    (void)sizeof(&(Obs));                                                      \
    (void)sizeof(Nanos);                                                       \
  } while (0)
#define CGC_OBS_PAUSE_P(ObsPtr, Metric, Nanos)                                 \
  do {                                                                         \
    (void)sizeof(ObsPtr);                                                      \
    (void)sizeof(Nanos);                                                       \
  } while (0)
#define CGC_OBS_NOW(Obs) 0ull

#endif // CGC_OBSERVE_COMPILED

#endif // CGC_OBSERVE_OBSERVE_H
