//===- GcHeap.cpp - Public heap runtime API ------------------------------------//

#include "runtime/GcHeap.h"

#include "gc/ConcurrentCollector.h"
#include "gc/FlightRecorder.h"
#include "gc/StwCollector.h"
#include "heap/SizeClasses.h"

#include <algorithm>
#include <cassert>
#include <thread>

using namespace cgc;

GcHeap::GcHeap(const GcOptions &Options)
    : Core(Options),
      BarrierEnabled(Options.Kind == CollectorKind::MostlyConcurrent) {
  if (Options.Kind == CollectorKind::MostlyConcurrent)
    Col = std::make_unique<ConcurrentCollector>(Core);
  else
    Col = std::make_unique<StwCollector>(Core);
  if (Options.FlightRecorder)
    FlightRecorder::install(&Core, Options.FlightRecorderFd);
}

std::unique_ptr<GcHeap> GcHeap::create(const GcOptions &Options) {
  assert(Options.HeapBytes >= (1u << 20) && "heap too small");
  assert(Options.LargeObjectBytes <= Options.AllocCacheBytes &&
         "large-object threshold must fit in a cache");
  assert(Options.AllocCacheBytes < Options.HeapBytes / 4 &&
         "allocation cache too large for the heap");
  assert(Options.NumWorkPackets >= 4 && "too few work packets");
  assert((Options.FreeListShards & (Options.FreeListShards - 1)) == 0 &&
         "FreeListShards must be 0 (auto) or a power of two");
  assert(Options.FreeListShards <= 64 && "too many free-list shards");
  return std::unique_ptr<GcHeap>(new GcHeap(Options));
}

GcHeap::~GcHeap() {
  // Unregister from the crash handler FIRST: a fatal signal during
  // teardown must not walk a half-destroyed core.
  if (Core.Options.FlightRecorder)
    FlightRecorder::uninstall(&Core);
  Col->shutdown();
  assert(Core.Registry.numThreads() == 0 &&
         "threads still attached at heap teardown");
}

MutatorContext &GcHeap::attachThread() {
  auto Owned = std::make_unique<MutatorContext>(Core.Pool);
  MutatorContext *Ctx = Owned.get();
  // Shard affinity: spread threads round-robin over the free-list
  // shards so their refills rarely meet on a lock.
  Ctx->setPreferredShard(NextShard.fetch_add(1, std::memory_order_relaxed) %
                         Core.Heap.freeList().numShards());
  Ctx->cache().setFaultInjector(&Core.Inject);
  // Appear stopped while blocking on the collection lock: a running GC
  // must not wait for a thread that is not cooperating yet.
  Ctx->setState(ExecState::Idle);
  {
    std::lock_guard<std::mutex> Lock(Core.CollectMutex);
    Core.Registry.attach(Ctx);
    SpinLockGuard Guard(ContextsLock);
    Contexts.push_back(std::move(Owned));
  }
  Core.Registry.exitIdle(*Ctx, Core.Heap.allocBits());
  return *Ctx;
}

void GcHeap::detachThread(MutatorContext &Ctx) {
  Core.Registry.poll(Ctx, Core.Heap.allocBits());
  // As with attach: count as stopped while waiting for the lock.
  Core.Registry.enterIdle(Ctx);
  {
    std::lock_guard<std::mutex> Lock(Core.CollectMutex);
    Ctx.cache().flushAllocBits(Core.Heap.allocBits());
    // Publish the size-class cache before the context dies: parked
    // chunks nobody else can see would otherwise leak until the next
    // sweep pause re-derived them.
    Ctx.cache().flushClassLists(Core.Heap.freeList());
    Ctx.cache().retire(Core.Heap.freeList());
    Core.Registry.detach(&Ctx);
    // Ownership hand-off for the shard's remote-free queue: a surviving
    // thread with the same preferred shard inherits it (its next class
    // refill drains the queue as usual); with no successor, drain it
    // now — nothing would consume it until a ladder reclaim or the next
    // sweep pause.
    if (Core.Heap.remoteRoutingEnabled()) {
      const unsigned Shard = Ctx.preferredShard();
      bool HasSuccessor = false;
      Core.Registry.forEach([&](MutatorContext &M) {
        if (M.preferredShard() == Shard)
          HasSuccessor = true;
      });
      if (!HasSuccessor)
        Core.Heap.drainRemoteQueue(Shard);
    }
    SpinLockGuard Guard(ContextsLock);
    auto It = std::find_if(
        Contexts.begin(), Contexts.end(),
        [&](const std::unique_ptr<MutatorContext> &P) { return P.get() == &Ctx; });
    assert(It != Contexts.end() && "detaching a context this heap does not own");
    Contexts.erase(It);
  }
}

bool GcHeap::refillCache(MutatorContext &Ctx, size_t MinBytes) {
  auto TryOnce = [&]() -> bool {
    // Simulated transient refill failure: the attempt fails before any
    // free-list traffic, so the ladder escalates deterministically.
    if (Core.Inject.shouldFail(FaultSite::AllocCacheRefill))
      return false;
    size_t Granted = 0;
    auto AllocUpTo = [&]() {
      return Core.Heap.freeList().allocateUpTo(
          MinBytes, Core.Options.AllocCacheBytes, Granted,
          Ctx.preferredShard());
    };
    uint8_t *Range = AllocUpTo();
    if (!Range && Core.Heap.remoteRoutingEnabled()) {
      // The owning shard's remote queue may hold exactly the runs the
      // lists lack (sweep routed them there); draining it is the bump
      // path's share of the ownership return.
      Core.Heap.drainRemoteQueue(Ctx.preferredShard());
      Range = AllocUpTo();
    }
    if (!Range && Core.Sweep.lazySweepPending()) {
      // Sweeping at allocation time is the lazy-sweep happy path, not an
      // escalation — only a refill that still fails afterwards climbs
      // the ladder.
      Core.Sweep.sweepUntilFree(Core.Options.AllocCacheBytes);
      if (Core.Heap.remoteRoutingEnabled())
        Core.Heap.drainRemoteQueue(Ctx.preferredShard());
      Range = AllocUpTo();
    }
    if (!Range)
      return false;
    // Assign BEFORE the pacing hook: the hook can run a full
    // collection, and memory not yet owned by a cache would be swept
    // back onto the free list (double ownership).
    Ctx.cache().assignRange(Range, Granted);
    // Pacing hook (Section 3): the kickoff check and the incremental
    // tracing increment are driven by the bytes actually granted — a
    // nearly full heap hands out partial caches, and each one only
    // owes tracing for its real size.
    Col->onAllocationSlowPath(Ctx, Granted);
    // A collection inside the hook may have reclaimed the fresh cache;
    // that attempt failed and the ladder retries.
    return Ctx.cache().hasRange();
  };
  return runAllocationLadder(Ctx, MinBytes, TryOnce);
}

Object *GcHeap::allocate(MutatorContext &Ctx, size_t PayloadBytes,
                         uint16_t NumRefs, uint16_t ClassId) {
  Core.Registry.poll(Ctx, Core.Heap.allocBits());
  size_t Total = Object::requiredSize(PayloadBytes, NumRefs);
  if (Core.Options.NaiveFenceAccounting)
    recordNaiveFence(FenceSite::NaivePerObjectAlloc);
  if (Total >= Core.Options.LargeObjectBytes)
    return allocateLarge(Ctx, Total, NumRefs, ClassId);
  if (Core.Options.FastPathSizeClasses && Total <= MaxSizeClassBytes)
    return allocateSizeClass(Ctx, Total, NumRefs, ClassId);

  if (Object *Obj = Ctx.cache().allocate(Total, NumRefs, ClassId)) {
    Ctx.BytesAllocated.fetch_add(Total, std::memory_order_relaxed);
    return Obj;
  }

  // Cache exhausted: publish its allocation bits (ONE fence for the
  // whole block of objects, Section 5.2), return the tail, refill.
  Ctx.cache().flushAllocBits(Core.Heap.allocBits());
  Ctx.cache().retire(Core.Heap.freeList());
  if (!refillCache(Ctx, Total))
    return nullptr; // Heap exhausted even after full collection.

  Object *Obj = Ctx.cache().allocate(Total, NumRefs, ClassId);
  assert(Obj && "fresh cache cannot satisfy the allocation it was sized for");
  Ctx.BytesAllocated.fetch_add(Total, std::memory_order_relaxed);
  return Obj;
}

/// Carves [Start, Start + Size) into class chunks, \p Class first and
/// then descending classes for the tail; a remainder below the smallest
/// class goes dark until the next sweep (like any other crumb).
static void carveIntoClasses(AllocationCache &Cache, unsigned Class,
                             uint8_t *Start, size_t Size) {
  const size_t CS = sizeClassBytes(Class);
  while (Size >= CS) {
    Cache.pushClassChunk(Class, Start);
    Start += CS;
    Size -= CS;
  }
  unsigned C = Class;
  while (Size >= SizeClassSizes.front()) {
    while (sizeClassBytes(C) > Size)
      --C;
    Cache.pushClassChunk(C, Start);
    Start += sizeClassBytes(C);
    Size -= sizeClassBytes(C);
  }
}

size_t GcHeap::drainRemoteIntoClasses(MutatorContext &Ctx, unsigned Class) {
  if (!Core.Heap.remoteRoutingEnabled())
    return 0;
  RemoteFreeChunk *Chunk =
      Core.Heap.remoteQueue(Ctx.preferredShard()).takeAll();
  size_t Drained = 0;
  while (Chunk) {
    // Read the overlay before carving: the chunk's memory is about to
    // become class chunks (and eventually object headers).
    RemoteFreeChunk *Next = Chunk->Next;
    size_t Size = Chunk->SizeBytes;
    carveIntoClasses(Ctx.cache(), Class, reinterpret_cast<uint8_t *>(Chunk),
                     Size);
    Drained += Size;
    Chunk = Next;
  }
  return Drained;
}

void GcHeap::reclaimStranded(MutatorContext &Ctx) {
  Ctx.cache().flushClassLists(Core.Heap.freeList());
  Core.Heap.drainAllRemoteQueues();
}

bool GcHeap::refillClass(MutatorContext &Ctx, unsigned Class) {
  const size_t CS = sizeClassBytes(Class);
  auto TryOnce = [&]() -> bool {
    // Same injection site as the bump refill: the attempt fails before
    // any free-list or queue traffic, so the ladder escalates
    // deterministically under chaos.
    if (Core.Inject.shouldFail(FaultSite::AllocCacheRefill))
      return false;
    // Ownership return first: the owning shard's remote queue feeds the
    // class lists without touching any lock.
    size_t Budget = drainRemoteIntoClasses(Ctx, Class);
    if (Ctx.cache().classEmpty(Class)) {
      // Batch refill: one locked grab of up to a whole cache's worth,
      // carved into class chunks — the same lock amortization as a
      // TLAB refill, spent once per ~AllocCacheBytes of allocation.
      size_t Granted = 0;
      uint8_t *Range = Core.Heap.freeList().allocateUpTo(
          CS, Core.Options.AllocCacheBytes, Granted, Ctx.preferredShard());
      if (!Range && Core.Sweep.lazySweepPending()) {
        Core.Sweep.sweepUntilFree(Core.Options.AllocCacheBytes);
        // The lazy sweep routes small runs to the queues; drain again.
        Budget += drainRemoteIntoClasses(Ctx, Class);
        if (Ctx.cache().classEmpty(Class))
          Range = Core.Heap.freeList().allocateUpTo(
              CS, Core.Options.AllocCacheBytes, Granted,
              Ctx.preferredShard());
      }
      if (Range) {
        carveIntoClasses(Ctx.cache(), Class, Range, Granted);
        Budget += Granted;
      }
    }
    if (Ctx.cache().classEmpty(Class))
      return false;
    // Pacing hook AFTER the chunks are cached (mirrors refillCache):
    // the hook can run a full collection, and memory not yet owned by
    // the cache would be swept back onto the free list. Drained and
    // granted bytes both owe tracing — each is fresh allocation
    // capacity this thread just claimed.
    Col->onAllocationSlowPath(Ctx, Budget);
    // A collection inside the hook may have reset the cache; that
    // attempt failed and the ladder retries.
    return !Ctx.cache().classEmpty(Class);
  };
  return runAllocationLadder(Ctx, CS, TryOnce);
}

Object *GcHeap::allocateSizeClass(MutatorContext &Ctx, size_t TotalBytes,
                                  uint16_t NumRefs, uint16_t ClassId) {
  unsigned Class = sizeClassFor(TotalBytes);
  Object *Obj = Ctx.cache().allocateClass(Class, NumRefs, ClassId);
  if (!Obj) {
    if (!refillClass(Ctx, Class))
      return nullptr; // Heap exhausted even after full collection.
    Obj = Ctx.cache().allocateClass(Class, NumRefs, ClassId);
    assert(Obj && "fresh class refill cannot satisfy its own class");
  }
  // Bound how long a class object can stay unpublished: one fence per
  // pending-publish batch, the class path's analogue of the bump
  // range's flush-on-exhaustion (Section 5.2).
  if (Ctx.cache().pendingPublishFull())
    Ctx.cache().flushAllocBits(Core.Heap.allocBits());
  Ctx.BytesAllocated.fetch_add(sizeClassBytes(Class),
                               std::memory_order_relaxed);
  return Obj;
}

Object *GcHeap::allocateLarge(MutatorContext &Ctx, size_t TotalBytes,
                              uint16_t NumRefs, uint16_t ClassId) {
  // Large allocations also drive the pacer (Section 3.1: increments run
  // "on allocations of large objects and allocation caches").
  Col->onAllocationSlowPath(Ctx, TotalBytes);
  uint8_t *Mem = nullptr;
  auto TryOnce = [&]() -> bool {
    Mem = Core.Heap.freeList().allocate(TotalBytes, Ctx.preferredShard());
    if (!Mem && Core.Sweep.lazySweepPending()) {
      Core.Sweep.sweepUntilFree(TotalBytes);
      Mem = Core.Heap.freeList().allocate(TotalBytes, Ctx.preferredShard());
    }
    return Mem != nullptr;
  };
  if (!runAllocationLadder(Ctx, TotalBytes, TryOnce))
    return nullptr;
  Object *Obj = reinterpret_cast<Object *>(Mem);
  Obj->initialize(static_cast<uint32_t>(TotalBytes), NumRefs, ClassId);
  // A large object is its own batch: one fence, then publish its bit.
  fence(FenceSite::AllocCacheFlush);
  Core.Heap.allocBits().set(Obj);
  Ctx.BytesAllocated.fetch_add(TotalBytes, std::memory_order_relaxed);
  return Obj;
}

void GcHeap::requestGC(MutatorContext *Ctx) { Col->collectNow(Ctx); }

VerifyResult GcHeap::verifyNow(MutatorContext *Ctx) {
  while (!Core.CollectMutex.try_lock()) {
    if (Ctx)
      Core.Registry.poll(*Ctx, Core.Heap.allocBits());
    std::this_thread::yield();
  }
  Core.Registry.stopTheWorld(Ctx, Core.Heap.allocBits());
  Core.Registry.forEach([this](MutatorContext &M) {
    M.cache().flushAllocBits(Core.Heap.allocBits());
  });
  HeapVerifier Verifier(Core.Heap);
  VerifyResult Result = Verifier.verify(Core.Registry, /*CheckMarks=*/false);
  Core.Registry.resumeTheWorld();
  Core.CollectMutex.unlock();
  return Result;
}
