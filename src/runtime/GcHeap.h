//===- GcHeap.h - Public heap runtime API -----------------------*- C++ -*-===//
///
/// \file
/// The library's public facade: a garbage-collected heap with per-thread
/// mutator contexts.
///
/// Typical use:
/// \code
///   GcOptions Opts;
///   Opts.HeapBytes = 64u << 20;
///   auto Heap = GcHeap::create(Opts);
///   MutatorContext &Ctx = Heap->attachThread();
///   Ctx.reserveRoots(8);
///   Object *Node = Heap->allocate(Ctx, /*PayloadBytes=*/32, /*NumRefs=*/2);
///   Ctx.setRoot(0, Node);                     // pin via simulated stack
///   Heap->writeRef(Ctx, Node, 0, Other);      // barriered ref store
///   Heap->detachThread(Ctx);
/// \endcode
///
/// Contract: every reference store into an object goes through
/// writeRef (the card-marking write barrier); object payloads are free
/// to be mutated directly. Each attached thread calls allocate /
/// safepointPoll regularly so the collector's handshakes make progress,
/// and brackets blocking/think periods with enterIdle / exitIdle.
///
//===----------------------------------------------------------------------===//

#ifndef CGC_RUNTIME_GCHEAP_H
#define CGC_RUNTIME_GCHEAP_H

#include "gc/Collector.h"
#include "gc/GcCore.h"
#include "gc/HeapVerifier.h"
#include "support/Annotations.h"

#include <memory>
#include <vector>

namespace cgc {

/// A garbage-collected heap (one per process is typical, many are fine).
class GcHeap {
public:
  /// Creates a heap with \p Options (validated with asserts).
  static std::unique_ptr<GcHeap> create(const GcOptions &Options);

  ~GcHeap();

  GcHeap(const GcHeap &) = delete;
  GcHeap &operator=(const GcHeap &) = delete;

  /// --- Thread management ---------------------------------------------

  /// Attaches the calling thread; returns its mutator context. The
  /// context is only valid on the attaching thread.
  CGC_SAFEPOINT MutatorContext &attachThread();

  /// Detaches; \p Ctx must belong to the calling thread and must not be
  /// used afterwards.
  CGC_SAFEPOINT void detachThread(MutatorContext &Ctx);

  /// --- Allocation and mutation ----------------------------------------

  /// Allocates an object with \p PayloadBytes of raw data and
  /// \p NumRefs reference slots (all null). Returns nullptr only when
  /// the heap is exhausted after the whole degradation ladder (retry,
  /// sweep finish, STW finish, full collections) — never aborts.
  /// Performs the incremental tracing increment of Section 3 on cache
  /// refills.
  CGC_SAFEPOINT Object *allocate(MutatorContext &Ctx, size_t PayloadBytes,
                                 uint16_t NumRefs, uint16_t ClassId = 0);

  /// Reference store with the card-marking write barrier: store the
  /// slot, then dirty the holder's card — no fence (Section 5.3).
  ///
  /// This is the ONLY sanctioned way for mutator/runtime code to store
  /// a reference into a heap object after initialization. The barrier
  /// contract lives with the raw primitive it wraps — see
  /// Object::storeRefRaw in heap/ObjectModel.h for the full statement
  /// of when a raw (card-less) store is permissible. cgc-mole rule M2
  /// enforces that contract tree-wide.
  ///
  /// The barrier itself never safepoints: callers may hold raw Object*
  /// across it (the CGC_NO_SAFEPOINT below is verified by cgc-mole).
  CGC_NO_SAFEPOINT void writeRef(MutatorContext &Ctx, Object *Holder,
                                 unsigned Slot, Object *Value) {
    Holder->storeRefRaw(Slot, Value);
    if (BarrierEnabled)
      Core.Heap.cards().dirty(Holder);
    if (Core.Options.NaiveFenceAccounting)
      recordNaiveFence(FenceSite::NaivePerWriteBarrier);
  }

  /// Reference load (no read barrier in this collector).
  CGC_NO_SAFEPOINT static Object *readRef(const Object *Holder,
                                          unsigned Slot) {
    return Holder->loadRef(Slot);
  }

  /// --- Cooperation ----------------------------------------------------

  /// Safepoint/handshake poll; call inside long loops that don't
  /// allocate.
  CGC_SAFEPOINT void safepointPoll(MutatorContext &Ctx) {
    Core.Registry.poll(Ctx, Core.Heap.allocBits());
  }

  /// Brackets a no-heap-access region (think time, simulated IO); the
  /// thread counts as stopped inside.
  CGC_SAFEPOINT void enterIdle(MutatorContext &Ctx) {
    Core.Registry.enterIdle(Ctx);
  }
  CGC_SAFEPOINT void exitIdle(MutatorContext &Ctx) {
    Core.Registry.exitIdle(Ctx, Core.Heap.allocBits());
  }

  /// --- Control and introspection ---------------------------------------

  /// Forces a full collection (finishing any concurrent phase).
  CGC_SAFEPOINT void requestGC(MutatorContext *Ctx);

  /// Stops the world and runs the reachability verifier.
  CGC_SAFEPOINT VerifyResult verifyNow(MutatorContext *Ctx);

  /// Per-cycle statistics.
  GcStatsCollector &stats() { return Core.Stats; }

  /// Free bytes currently on the free list.
  size_t freeBytes() const { return Core.Heap.freeBytes(); }

  /// Number of completed collection cycles.
  uint64_t completedCycles() const {
    return Core.CompletedCycles.load(std::memory_order_acquire);
  }

  const GcOptions &options() const { return Core.Options; }

  /// Direct access to the machinery (tests and benches).
  GcCore &core() { return Core; }
  Collector &collector() { return *Col; }

private:
  explicit GcHeap(const GcOptions &Options);

  CGC_SAFEPOINT Object *allocateLarge(MutatorContext &Ctx, size_t TotalBytes,
                                      uint16_t NumRefs, uint16_t ClassId);
  CGC_SAFEPOINT bool refillCache(MutatorContext &Ctx, size_t MinBytes);

  /// Size-class fast path (FastPathSizeClasses; DESIGN.md §16): pop an
  /// exact-class chunk from the per-thread cache, refilling the class
  /// from the owning shard's remote-free queue / free list on miss.
  CGC_SAFEPOINT Object *allocateSizeClass(MutatorContext &Ctx,
                                          size_t TotalBytes, uint16_t NumRefs,
                                          uint16_t ClassId);
  CGC_SAFEPOINT bool refillClass(MutatorContext &Ctx, unsigned Class);

  /// Drains the owning shard's remote-free queue into \p Ctx's class
  /// lists (lock-free ownership return), carving chunks for \p Class
  /// first. Returns the bytes drained.
  size_t drainRemoteIntoClasses(MutatorContext &Ctx, unsigned Class);

  /// Every rung's first remedy: flush the requesting thread's
  /// size-class cache and drain ALL remote-free queues back onto the
  /// free lists. Escalating to a sweep or stop-the-world while free
  /// memory sits parked would pay a pause for memory we already have
  /// (the PR 2/3 shard-stranding bug reborn one level up). No-op when
  /// the fast path never parked anything.
  void reclaimStranded(MutatorContext &Ctx);

  /// The graceful-degradation ladder behind every allocation slow path.
  /// \p TryOnce attempts the allocation (returning success) and is
  /// retried after each escalation rung's remedy, in order:
  ///   1. RefillRetry  — plain retry (transient contention/injection).
  ///   2. SweepFinish  — finish enough of the pending lazy sweep.
  ///   3. StwFinish    — force the active concurrent cycle to its
  ///                     stop-the-world finish (skipped when no
  ///                     concurrent phase is active).
  ///   4. FullStw      — full stop-the-world collection (twice: the
  ///                     first collection may complete a cycle whose
  ///                     sweep frees little; the second starts fresh).
  ///   5. AllocationFailure — give up and report to the caller; the
  ///                     heap never aborts on exhaustion.
  /// Each rung is counted in GcStats when escalated INTO (even when its
  /// remedy is a no-op), so tests observe a deterministic order. Every
  /// rung's remedy begins with reclaimStranded(): memory parked in the
  /// requesting thread's size-class cache or in any shard's remote-free
  /// queue is returned to the free lists before anything as heavy as a
  /// sweep or a stop-the-world runs on its behalf.
  template <typename TryFn>
  CGC_SAFEPOINT bool runAllocationLadder(MutatorContext &Ctx,
                                         size_t WantedBytes, TryFn TryOnce) {
    if (TryOnce())
      return true;
    noteRung(EscalationRung::RefillRetry, WantedBytes);
    reclaimStranded(Ctx);
    if (TryOnce())
      return true;
    noteRung(EscalationRung::SweepFinish, WantedBytes);
    reclaimStranded(Ctx);
    if (Core.Sweep.lazySweepPending()) {
      Core.Sweep.sweepUntilFree(WantedBytes);
      // A routing sweep parks small runs; make them refillable now.
      reclaimStranded(Ctx);
    }
    if (TryOnce())
      return true;
    if (Col->concurrentPhaseActive()) {
      noteRung(EscalationRung::StwFinish, WantedBytes);
      reclaimStranded(Ctx);
      Col->collectNow(&Ctx);
      if (TryOnce())
        return true;
    }
    for (int I = 0; I < 2; ++I) {
      noteRung(EscalationRung::FullStw, WantedBytes);
      reclaimStranded(Ctx);
      Col->collectNow(&Ctx);
      if (Core.Sweep.lazySweepPending())
        Core.Sweep.sweepUntilFree(WantedBytes);
      if (TryOnce())
        return true;
    }
    noteRung(EscalationRung::AllocationFailure, WantedBytes);
    return false;
  }

  /// Counts a ladder escalation in GcStats and mirrors it as an
  /// AllocLadderRung event.
  void noteRung(EscalationRung Rung, size_t WantedBytes) {
    Core.Stats.noteEscalation(Rung);
    CGC_OBS_EVENT(Core.Obs, AllocLadderRung, static_cast<unsigned>(Rung),
                  WantedBytes);
  }

  GcCore Core;
  std::unique_ptr<Collector> Col;
  const bool BarrierEnabled;
  /// Round-robin cursor for free-list shard affinity at attach.
  std::atomic<unsigned> NextShard{0};

  SpinLock ContextsLock;
  std::vector<std::unique_ptr<MutatorContext>> Contexts;
};

} // namespace cgc

#endif // CGC_RUNTIME_GCHEAP_H
