//===- main.cpp - cgc-mole CLI ------------------------------------------------//
///
/// \file
/// Usage: cgc-mole [--json] <src-root> [<src-root>...]
///
/// Runs the call-graph-aware GC-safety analysis (MoleCore.h) over every
/// .h/.cpp under each root. Prints one `file:line:col: [Rule] message`
/// line per unsuppressed finding (or, with --json, the full report as
/// JSON on stdout), plus a summary counting suppressed findings per
/// rule so accepted hazards stay visible. Exits non-zero if any finding
/// survives suppression.
///
//===----------------------------------------------------------------------===//

#include "MoleCore.h"

#include <cstdio>
#include <cstring>
#include <vector>

int main(int argc, char **argv) {
  bool Json = false;
  std::vector<const char *> Roots;
  for (int I = 1; I < argc; ++I) {
    if (std::strcmp(argv[I], "--json") == 0)
      Json = true;
    else
      Roots.push_back(argv[I]);
  }
  if (Roots.empty()) {
    std::fprintf(stderr, "usage: cgc-mole [--json] <src-root> [<src-root>...]\n");
    return 2;
  }
  cgcmole::Report All;
  for (const char *Root : Roots) {
    cgcmole::Report R = cgcmole::analyzeTree(Root);
    All.Findings.insert(All.Findings.end(), R.Findings.begin(),
                        R.Findings.end());
    All.Suppressed.insert(All.Suppressed.end(), R.Suppressed.begin(),
                          R.Suppressed.end());
    All.NumFunctions += R.NumFunctions;
    All.NumMaySafepoint += R.NumMaySafepoint;
  }
  if (Json) {
    std::fputs(cgcmole::reportToJson(All).c_str(), stdout);
  } else {
    for (const auto &F : All.Findings)
      std::fprintf(stderr, "%s\n", cgcmole::formatFinding(F).c_str());
  }
  std::string Suppressed;
  for (const auto &[Rule, N] : cgcmole::suppressedByRule(All))
    Suppressed += " " + Rule + "=" + std::to_string(N);
  if (Suppressed.empty())
    Suppressed = " none";
  std::fprintf(stderr,
               "cgc-mole: %zu function(s), %zu may-safepoint; suppressed:%s\n",
               All.NumFunctions, All.NumMaySafepoint, Suppressed.c_str());
  if (!All.Findings.empty()) {
    std::fprintf(stderr, "cgc-mole: %zu violation(s)\n", All.Findings.size());
    return 1;
  }
  if (!Json)
    std::printf("cgc-mole: clean\n");
  return 0;
}
