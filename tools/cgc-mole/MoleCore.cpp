//===- MoleCore.cpp - Call-graph-aware GC-safety analyzer ----------------===//
///
/// \file
/// Implementation of the cgc-mole analysis engine (see MoleCore.h for
/// the rule catalogue and DESIGN.md §14 for the analysis model). The
/// code is organized as the two phases described there: a whole-tree
/// index (classes, functions, named lambdas, call graph, safepoint
/// propagation) followed by per-function dataflow checks.
///
//===----------------------------------------------------------------------===//

#include "MoleCore.h"

#include "Lexer.h"

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace cgcmole {
namespace {

using cgclint::Lexed;
using cgclint::Token;

constexpr size_t NPOS = static_cast<size_t>(-1);

//===----------------------------------------------------------------------===//
// Token utilities
//===----------------------------------------------------------------------===//

/// Control-flow and operator keywords that can precede '(' without
/// being a call or a function name.
bool isStmtKeyword(const std::string &S) {
  static const std::set<std::string> K = {
      "if",       "for",    "while",   "switch",   "catch",  "do",
      "return",   "sizeof", "alignof", "decltype", "noexcept", "new",
      "delete",   "throw",  "static_assert", "alignas", "defined",
      "co_return", "co_await", "co_yield", "case", "goto", "else"};
  return K.count(S) != 0;
}

/// Type qualifiers / namespace heads skipped when extracting the
/// "simple name" of a declared type.
bool isTypeQualifier(const std::string &S) {
  static const std::set<std::string> K = {
      "const",   "volatile", "mutable", "static", "constexpr", "inline",
      "struct",  "class",    "typename", "unsigned", "signed", "register",
      "thread_local", "extern", "std", "cgc", "explicit", "virtual",
      "friend", "long", "short", "auto"};
  return K.count(S) != 0;
}

bool isCgcMacro(const std::string &S) { return S.rfind("CGC_", 0) == 0; }

/// Bidirectional bracket matching over the whole token stream. Match[I]
/// holds the index of the partner bracket, NPOS when unbalanced.
std::vector<size_t> matchBrackets(const std::vector<Token> &T) {
  std::vector<size_t> Match(T.size(), NPOS);
  std::vector<size_t> Paren, Brace, Square;
  for (size_t I = 0; I < T.size(); ++I) {
    if (T[I].Kind != Token::Punct || T[I].Text.size() != 1)
      continue;
    char C = T[I].Text[0];
    auto close = [&](std::vector<size_t> &Stack) {
      if (!Stack.empty()) {
        Match[I] = Stack.back();
        Match[Stack.back()] = I;
        Stack.pop_back();
      }
    };
    switch (C) {
    case '(': Paren.push_back(I); break;
    case '[': Square.push_back(I); break;
    case '{': Brace.push_back(I); break;
    case ')': close(Paren); break;
    case ']': close(Square); break;
    case '}': close(Brace); break;
    default: break;
    }
  }
  return Match;
}

//===----------------------------------------------------------------------===//
// Index data structures
//===----------------------------------------------------------------------===//

struct FileUnit {
  std::string Path;
  Lexed L;
  std::vector<size_t> Match;
  /// line -> rules suppressed on that line (and probed from the next).
  std::map<int, std::set<std::string>> Allowed;
};

struct ClassInfo {
  std::map<std::string, std::string> FieldTypes;    // field -> simple type
  std::map<std::string, std::string> MethodReturns; // method -> simple type
  std::set<std::string> MethodsSeen;                // declared or defined
};

struct CallSite {
  size_t TokIdx = 0;
  int Line = 0, Col = 1;
  std::string Simple;    // callee simple name
  std::string Target;    // "Class::name" / free-fn qual; "" = unresolved
  size_t ArgsEnd = 0;    // token index of the call's closing ')'
  int GuardCount = 0;    // SpinLockGuards held at the call site
  std::string GuardLock; // innermost guard's lock expression
  int GuardLine = 0;     // innermost guard's declaration line
};

struct FunctionDef {
  std::string Qual;   // "Class::name", "name", or "parent::lambdaName"
  std::string Simple; // unqualified name ("" for anonymous lambdas)
  size_t FileIdx = 0;
  int Line = 0, Col = 1;
  size_t ParamOpen = 0, ParamClose = 0; // '(' .. ')' token range
  size_t BodyBegin = 0, BodyEnd = 0;    // '{' .. '}' token range
  size_t DeclBegin = 0;                 // statement start (annotation scan)
  std::string EnclosingClass;           // "" for free functions
  bool Safepoint = false;               // CGC_SAFEPOINT on the definition
  bool NoSafepoint = false;             // CGC_NO_SAFEPOINT on the definition
  bool IsLambda = false;
  size_t Parent = NPOS;                      // enclosing def for lambdas
  std::vector<std::pair<size_t, size_t>> Masks; // child-lambda body ranges
  std::vector<size_t> Children;                 // child def indices
  std::map<std::string, std::string> VarTypes;  // params + locals
  std::set<std::string> ObjectPtrParams;        // params of type Object*
  std::vector<CallSite> Calls;
};

/// Built-in may-reach-safepoint seeds: the mutator poll, allocation and
/// the degradation ladder, and the cooperation-protocol entry points.
/// CGC_SAFEPOINT annotations extend this set; the list is kept here too
/// so the analysis never silently loses its anchors if an annotation is
/// dropped.
const std::set<std::string> &builtinSeeds() {
  static const std::set<std::string> S = {
      "GcHeap::allocate",       "GcHeap::allocateLarge",
      "GcHeap::refillCache",    "GcHeap::runAllocationLadder",
      "GcHeap::safepointPoll",  "GcHeap::enterIdle",
      "GcHeap::exitIdle",       "GcHeap::requestGC",
      "GcHeap::verifyNow",      "GcHeap::attachThread",
      "GcHeap::detachThread",   "ThreadRegistry::poll",
      "ThreadRegistry::enterIdle", "ThreadRegistry::exitIdle",
      "ThreadRegistry::stopTheWorld", "ThreadRegistry::resumeTheWorld",
      "ThreadRegistry::requestFenceHandshake", "ThreadRegistry::park",
      "Collector::collectNow",  "Collector::onAllocationSlowPath"};
  return S;
}

/// Simple names that count as may-safepoint even when the receiver
/// cannot be resolved: they are unique enough tree-wide that an
/// unresolved call by this name is a safepoint with high confidence.
/// (Deliberately NOT `allocate`/`poll`: those collide with the
/// free-list / cache layers, which never safepoint.)
bool isAlwaysSafepointName(const std::string &S) {
  static const std::set<std::string> K = {
      "safepointPoll",  "collectNow",       "requestFenceHandshake",
      "stopTheWorld",   "resumeTheWorld",   "onAllocationSlowPath",
      "runAllocationLadder", "park"};
  return K.count(S) != 0;
}

/// M1 is enforced where mutators live; collector internals trace
/// unanchored references by design (they run inside the protocol).
bool m1Enforced(const std::string &Path) {
  return Path.rfind("workloads/", 0) == 0 || Path.rfind("runtime/", 0) == 0 ||
         Path.rfind("mutator/", 0) == 0;
}

/// The documented raw-store sites (the barrier contract in
/// heap/ObjectModel.h): the definition itself, the write barrier that
/// wraps it, and the compactor (which fixes slots while the world is
/// stopped or the holder is pinned).
bool m2Allowed(const std::string &Path) {
  return Path == "heap/ObjectModel.h" || Path == "runtime/GcHeap.h" ||
         Path == "gc/Compactor.cpp" || Path == "gc/Compactor.h";
}

//===----------------------------------------------------------------------===//
// Analyzer
//===----------------------------------------------------------------------===//

class Analyzer {
public:
  explicit Analyzer(const std::vector<SourceFile> &Files) {
    for (const auto &SF : Files) {
      FileUnit U;
      U.Path = SF.RelPath;
      U.L = cgclint::lex(SF.Content);
      U.Match = matchBrackets(U.L.Toks);
      buildSuppressions(U);
      Units.push_back(std::move(U));
    }
  }

  Report run() {
    // Phase 1: index every file, then resolve vars and calls with the
    // complete class index in hand, then propagate the safepoint bit.
    for (size_t F = 0; F < Units.size(); ++F)
      walkDeclRegion(F, 0, Units[F].L.Toks.size(), "");
    for (size_t D = 0; D < Defs.size(); ++D)
      findLambdas(D);
    for (size_t D = 0; D < Defs.size(); ++D)
      collectVars(D);
    for (size_t D = 0; D < Defs.size(); ++D)
      extractCalls(D);
    buildNameIndexes();
    propagate();

    // Phase 2: per-function dataflow.
    Report R;
    R.NumFunctions = Defs.size();
    for (bool B : Tainted)
      R.NumMaySafepoint += B ? 1 : 0;
    for (size_t D = 0; D < Defs.size(); ++D) {
      checkNoSafepoint(D);
      checkRawStores(D);
      checkSafepointUnderLock(D);
      if (m1Enforced(Units[Defs[D].FileIdx].Path))
        checkLiveAcrossSafepoint(D);
    }
    std::sort(All.begin(), All.end(), [](const Finding &A, const Finding &B) {
      return std::tie(A.File, A.Line, A.Col, A.Rule, A.Message) <
             std::tie(B.File, B.Line, B.Col, B.Rule, B.Message);
    });
    for (Finding &F : All) {
      if (isSuppressed(F))
        R.Suppressed.push_back(std::move(F));
      else
        R.Findings.push_back(std::move(F));
    }
    return R;
  }

private:
  std::vector<FileUnit> Units;
  std::map<std::string, ClassInfo> Classes;
  std::vector<FunctionDef> Defs;
  std::map<std::string, size_t> DefsByQual;
  std::map<std::string, std::vector<size_t>> DefsBySimple;
  std::set<std::string> Seeds;            // qualified may-safepoint roots
  std::set<std::string> NoSafepointDecls; // qualified CGC_NO_SAFEPOINT decls
  std::vector<char> Tainted;              // per-def may-reach-safepoint bit
  std::vector<Finding> All;

  const std::vector<Token> &toks(size_t F) const { return Units[F].L.Toks; }

  //===--------------------------------------------------------------------===//
  // Suppressions
  //===--------------------------------------------------------------------===//

  void buildSuppressions(FileUnit &U) {
    for (const auto &C : U.L.Comments) {
      size_t Tag = C.Text.find("cgc-mole:");
      if (Tag == std::string::npos)
        continue;
      size_t Open = C.Text.find("allow(", Tag);
      if (Open == std::string::npos)
        continue;
      size_t Close = C.Text.find(')', Open);
      if (Close == std::string::npos)
        continue;
      std::stringstream SS(C.Text.substr(Open + 6, Close - Open - 6));
      std::string Rule;
      while (std::getline(SS, Rule, ',')) {
        Rule.erase(0, Rule.find_first_not_of(" \t"));
        Rule.erase(Rule.find_last_not_of(" \t") + 1);
        if (!Rule.empty())
          U.Allowed[C.Line].insert(Rule);
      }
    }
    // CGC_GC_UNSAFE_OK("reason") suppresses every mole rule on its
    // statement (its line, probed from the next line too).
    for (const Token &T : U.L.Toks)
      if (T.Kind == Token::Ident && T.Text == "CGC_GC_UNSAFE_OK")
        U.Allowed[T.Line].insert("all");
  }

  bool isSuppressed(const Finding &F) const {
    for (const FileUnit &U : Units) {
      if (U.Path != F.File)
        continue;
      for (int Line : {F.Line, F.Line - 1}) {
        auto It = U.Allowed.find(Line);
        if (It != U.Allowed.end() &&
            (It->second.count(F.Rule) || It->second.count("all")))
          return true;
      }
    }
    return false;
  }

  //===--------------------------------------------------------------------===//
  // Phase 1a: declaration-region walk (namespaces, classes, functions)
  //===--------------------------------------------------------------------===//

  /// Skips a `template <...>` header starting at \p I (the `template`
  /// token); returns the index just past the closing '>'.
  size_t skipTemplateHeader(size_t F, size_t I) const {
    const auto &T = toks(F);
    size_t J = I + 1;
    if (J >= T.size() || T[J].Text != "<")
      return I + 1;
    int Depth = 0;
    for (; J < T.size(); ++J) {
      if (T[J].Text == "<")
        ++Depth;
      else if (T[J].Text == ">" && --Depth == 0)
        return J + 1;
    }
    return J;
  }

  /// First ';' at group depth zero starting from \p I, jumping bracket
  /// groups via the match table. Returns the index of the ';' (or End).
  size_t findSemi(size_t F, size_t I, size_t End) const {
    const auto &T = toks(F);
    const auto &M = Units[F].Match;
    for (size_t J = I; J < End; ++J) {
      const std::string &X = T[J].Text;
      if (T[J].Kind != Token::Punct)
        continue;
      if (X == ";")
        return J;
      if ((X == "(" || X == "[" || X == "{") && M[J] != NPOS)
        J = M[J];
    }
    return End;
  }

  /// Simple type name of a declarator chain ending just before \p
  /// NameIdx (walking backwards over '*', '&', 'const' and template
  /// argument lists; unwraps unique_ptr/shared_ptr to the pointee).
  std::string typeBefore(size_t F, size_t NameIdx) const {
    const auto &T = toks(F);
    size_t J = NameIdx;
    while (J > 0) {
      --J;
      const std::string &X = T[J].Text;
      if (X == "*" || X == "&" || X == "const" || X == "volatile")
        continue;
      if (X == ">") { // template args: balance back to '<'
        int Depth = 1;
        while (J > 0 && Depth > 0) {
          --J;
          if (T[J].Text == ">")
            ++Depth;
          else if (T[J].Text == "<")
            --Depth;
        }
        size_t LtIdx = J;
        if (J == 0)
          return "";
        --J; // token before '<'
        if (T[J].Kind == Token::Ident &&
            (T[J].Text == "unique_ptr" || T[J].Text == "shared_ptr")) {
          // Pointee simple name: first identifier after '<' that is
          // not a namespace head.
          for (size_t K = LtIdx + 1; K < NameIdx; ++K)
            if (T[K].Kind == Token::Ident && !isTypeQualifier(T[K].Text))
              return T[K].Text;
          return "";
        }
        return T[J].Kind == Token::Ident ? T[J].Text : "";
      }
      if (T[J].Kind == Token::Ident)
        return T[J].Text;
      return "";
    }
    return "";
  }

  struct FnParse {
    enum { Def, Decl, Fail } Kind = Fail;
    size_t BodyOpen = 0, BodyClose = 0; // Def only
    size_t Terminal = 0;                // Decl: the ';'
  };

  /// Classifies the identifier at \p NameIdx (followed by '(') as a
  /// function definition, a declaration, or neither.
  FnParse tryFunction(size_t F, size_t NameIdx) const {
    const auto &T = toks(F);
    const auto &M = Units[F].Match;
    FnParse P;
    size_t Open = NameIdx + 1;
    if (Open >= T.size() || T[Open].Text != "(" || M[Open] == NPOS)
      return P;
    size_t K = M[Open] + 1;
    auto skipGroup = [&](size_t At) {
      return (At < T.size() && M[At] != NPOS) ? M[At] + 1 : At + 1;
    };
    while (K < T.size()) {
      const std::string &X = T[K].Text;
      if (T[K].Kind == Token::Ident) {
        if (X == "const" || X == "override" || X == "final" ||
            X == "mutable" || X == "volatile") {
          ++K;
          continue;
        }
        if (X == "noexcept") {
          ++K;
          if (K < T.size() && T[K].Text == "(")
            K = skipGroup(K);
          continue;
        }
        if (isCgcMacro(X)) {
          ++K;
          if (K < T.size() && T[K].Text == "(")
            K = skipGroup(K);
          continue;
        }
        return P; // unexpected identifier: not a function
      }
      if (X == "&") {
        ++K;
        continue;
      }
      if (X == "->") { // trailing return type
        ++K;
        while (K < T.size() &&
               (T[K].Kind == Token::Ident || T[K].Text == "::" ||
                T[K].Text == "*" || T[K].Text == "&" || T[K].Text == "<" ||
                T[K].Text == ">" || T[K].Text == ","))
          ++K;
        continue;
      }
      if (X == "{") {
        if (M[K] == NPOS)
          return P;
        P.Kind = FnParse::Def;
        P.BodyOpen = K;
        P.BodyClose = M[K];
        return P;
      }
      if (X == ";") {
        P.Kind = FnParse::Decl;
        P.Terminal = K;
        return P;
      }
      if (X == "=") {
        // Pure virtual / defaulted / deleted declaration.
        if (K + 1 < T.size() &&
            (T[K + 1].Text == "0" || T[K + 1].Text == "default" ||
             T[K + 1].Text == "delete")) {
          P.Kind = FnParse::Decl;
          P.Terminal = findSemi(F, K, T.size());
          return P;
        }
        return P;
      }
      if (X == ":") { // constructor initializer list
        ++K;
        while (K < T.size()) {
          while (K < T.size() &&
                 (T[K].Kind == Token::Ident || T[K].Text == "::" ||
                  T[K].Text == "<" || T[K].Text == ">"))
            ++K;
          if (K >= T.size() || (T[K].Text != "(" && T[K].Text != "{"))
            return P;
          K = skipGroup(K);
          if (K < T.size() && T[K].Text == ",") {
            ++K;
            continue;
          }
          break;
        }
        if (K < T.size() && T[K].Text == "{" && M[K] != NPOS) {
          P.Kind = FnParse::Def;
          P.BodyOpen = K;
          P.BodyClose = M[K];
        }
        return P;
      }
      return P;
    }
    return P;
  }

  /// Can the token before \p NameIdx legally precede a function name in
  /// a declaration? (Filters out calls in initializers and operators.)
  bool validDefPrev(size_t F, size_t NameIdx) const {
    if (NameIdx == 0)
      return true;
    const Token &P = toks(F)[NameIdx - 1];
    if (P.Kind == Token::Ident)
      return !isStmtKeyword(P.Text);
    const std::string &X = P.Text;
    return X == "*" || X == "&" || X == "::" || X == "~" || X == ";" ||
           X == "}" || X == "{" || X == ">" || X == ":";
  }

  bool rangeHasIdent(size_t F, size_t B, size_t E, const char *Name) const {
    const auto &T = toks(F);
    for (size_t I = B; I < E && I < T.size(); ++I)
      if (T[I].Kind == Token::Ident && T[I].Text == Name)
        return true;
    return false;
  }

  void recordDecl(size_t F, size_t StmtBegin, size_t NameIdx, size_t Terminal,
                  const std::string &Cls) {
    const auto &T = toks(F);
    if (Cls.empty())
      return;
    ClassInfo &CI = Classes[Cls];
    const std::string &Name = T[NameIdx].Text;
    CI.MethodsSeen.insert(Name);
    std::string Ret = typeBefore(F, NameIdx);
    if (!Ret.empty() && !CI.MethodReturns.count(Name))
      CI.MethodReturns[Name] = Ret;
    std::string Qual = Cls + "::" + Name;
    if (rangeHasIdent(F, StmtBegin, Terminal, "CGC_SAFEPOINT"))
      Seeds.insert(Qual);
    if (rangeHasIdent(F, StmtBegin, Terminal, "CGC_NO_SAFEPOINT"))
      NoSafepointDecls.insert(Qual);
  }

  void recordDef(size_t F, size_t StmtBegin, size_t NameIdx, const FnParse &P,
                 const std::string &Cls) {
    const auto &T = toks(F);
    FunctionDef D;
    D.FileIdx = F;
    D.Line = T[NameIdx].Line;
    D.Col = T[NameIdx].Col;
    D.Simple = T[NameIdx].Text;
    if (NameIdx > 0 && T[NameIdx - 1].Text == "~")
      D.Simple = "~" + D.Simple;
    // Out-of-line method: Class::name (use the last qualifier).
    std::string Encl = Cls;
    size_t Q = NameIdx - (D.Simple[0] == '~' ? 2 : 1);
    if (NameIdx >= 2 && T[Q + 1 - 1].Text == "::" && Q >= 1 &&
        T[Q - 1].Kind == Token::Ident && T[NameIdx - 1].Text != "~")
      Encl = T[Q - 1].Text;
    else if (D.Simple[0] == '~' && NameIdx >= 3 && T[NameIdx - 2].Text == "::")
      Encl = Cls; // out-of-line dtor: keep class from context if any
    D.EnclosingClass = Encl;
    D.Qual = Encl.empty() ? D.Simple : Encl + "::" + D.Simple;
    D.ParamOpen = NameIdx + 1;
    D.ParamClose = Units[F].Match[D.ParamOpen];
    D.BodyBegin = P.BodyOpen;
    D.BodyEnd = P.BodyClose;
    D.DeclBegin = StmtBegin;
    D.Safepoint = rangeHasIdent(F, StmtBegin, P.BodyOpen, "CGC_SAFEPOINT");
    D.NoSafepoint = rangeHasIdent(F, StmtBegin, P.BodyOpen, "CGC_NO_SAFEPOINT");
    if (!Encl.empty()) {
      ClassInfo &CI = Classes[Encl];
      CI.MethodsSeen.insert(D.Simple);
      std::string Ret = typeBefore(F, NameIdx);
      if (!Ret.empty() && !CI.MethodReturns.count(D.Simple))
        CI.MethodReturns[D.Simple] = Ret;
    }
    Defs.push_back(std::move(D));
  }

  void parseField(size_t F, size_t Begin, size_t End, const std::string &Cls) {
    const auto &T = toks(F);
    if (Cls.empty() || End <= Begin)
      return;
    // Field name: last identifier before the initializer / terminator.
    size_t NameIdx = NPOS;
    for (size_t I = Begin; I < End; ++I) {
      const std::string &X = T[I].Text;
      if (X == "=" || X == "{" || X == "[")
        break;
      if (T[I].Kind == Token::Ident && !isCgcMacro(X))
        NameIdx = I;
    }
    if (NameIdx == NPOS)
      return;
    std::string Ty = typeBefore(F, NameIdx);
    if (Ty.empty() || isTypeQualifier(Ty))
      return;
    Classes[Cls].FieldTypes[T[NameIdx].Text] = Ty;
  }

  /// Walks a namespace or class body region, indexing declarations.
  void walkDeclRegion(size_t F, size_t Begin, size_t End,
                      const std::string &Cls) {
    const auto &T = toks(F);
    const auto &M = Units[F].Match;
    size_t I = Begin;
    while (I < End) {
      const Token &Tok = T[I];
      if (Tok.Kind == Token::Punct) {
        if (Tok.Text == "{" && M[I] != NPOS) {
          I = M[I] + 1; // stray block (e.g. extern "C"): skip
          continue;
        }
        ++I;
        continue;
      }
      if (Tok.Kind != Token::Ident) {
        ++I;
        continue;
      }
      const std::string &X = Tok.Text;
      if ((X == "public" || X == "private" || X == "protected") &&
          I + 1 < End && T[I + 1].Text == ":") {
        I += 2;
        continue;
      }
      if (X == "template") {
        I = skipTemplateHeader(F, I);
        continue;
      }
      if (X == "using" || X == "typedef" || X == "friend" ||
          X == "static_assert") {
        I = findSemi(F, I, End) + 1;
        continue;
      }
      if (X == "namespace") {
        size_t J = I + 1;
        while (J < End && (T[J].Kind == Token::Ident || T[J].Text == "::"))
          ++J;
        if (J < End && T[J].Text == "{" && M[J] != NPOS) {
          walkDeclRegion(F, J + 1, M[J], "");
          I = M[J] + 1;
        } else {
          I = findSemi(F, I, End) + 1; // namespace alias
        }
        continue;
      }
      if (X == "enum") {
        size_t J = I + 1;
        while (J < End && T[J].Text != "{" && T[J].Text != ";")
          ++J;
        if (J < End && T[J].Text == "{" && M[J] != NPOS)
          J = M[J];
        I = findSemi(F, J, End) + 1;
        continue;
      }
      if (X == "class" || X == "struct" || X == "union") {
        // Find the name (skipping annotation macros), then the body.
        size_t J = I + 1;
        std::string Name;
        while (J < End) {
          if (T[J].Kind == Token::Ident) {
            if (isCgcMacro(T[J].Text) || T[J].Text == "alignas") {
              ++J;
              if (J < End && T[J].Text == "(" && M[J] != NPOS)
                J = M[J] + 1;
              continue;
            }
            Name = T[J].Text;
            ++J;
            break;
          }
          break;
        }
        // Scan to '{' (definition) or ';' (fwd decl / elaborated use).
        size_t K = J;
        while (K < End && T[K].Text != "{" && T[K].Text != ";" &&
               T[K].Text != "(" && T[K].Text != "=")
          ++K;
        if (K < End && T[K].Text == "{" && M[K] != NPOS && !Name.empty()) {
          Classes[Name]; // ensure the entry exists even if empty
          walkDeclRegion(F, K + 1, M[K], Name);
          I = findSemi(F, M[K], End) + 1;
        } else {
          I = findSemi(F, I, End) + 1;
        }
        continue;
      }
      // General statement: look for a function candidate; otherwise a
      // field (class scope) or a variable (namespace scope).
      size_t StmtBegin = I;
      size_t J = I;
      bool Consumed = false;
      while (J < End) {
        const std::string &Y = T[J].Text;
        if (T[J].Kind == Token::Punct) {
          if (Y == ";") {
            parseField(F, StmtBegin, J, Cls);
            I = J + 1;
            Consumed = true;
            break;
          }
          if (Y == "=") { // initializer: no defs past here
            size_t Semi = findSemi(F, J, End);
            parseField(F, StmtBegin, J, Cls);
            I = Semi + 1;
            Consumed = true;
            break;
          }
          if ((Y == "{" || Y == "[") && M[J] != NPOS) {
            J = M[J] + 1; // jump anonymous aggregate / attribute / init
            continue;
          }
          ++J;
          continue;
        }
        if (T[J].Kind == Token::Ident && J + 1 < End &&
            T[J + 1].Text == "(" && !isStmtKeyword(T[J].Text) &&
            !isCgcMacro(T[J].Text) && validDefPrev(F, J)) {
          FnParse P = tryFunction(F, J);
          if (P.Kind == FnParse::Def) {
            recordDef(F, StmtBegin, J, P, Cls);
            I = P.BodyClose + 1;
            if (I < End && T[I].Text == ";")
              ++I;
            Consumed = true;
            break;
          }
          if (P.Kind == FnParse::Decl) {
            recordDecl(F, StmtBegin, J, P.Terminal, Cls);
            I = P.Terminal + 1;
            Consumed = true;
            break;
          }
        }
        ++J;
      }
      if (!Consumed)
        I = (J >= End) ? End : J + 1;
    }
  }

  //===--------------------------------------------------------------------===//
  // Phase 1b: lambdas, variable types, call extraction
  //===--------------------------------------------------------------------===//

  bool masked(const FunctionDef &D, size_t I) const {
    for (const auto &[B, E] : D.Masks)
      if (I >= B && I <= E)
        return true;
    return false;
  }

  /// Parses a lambda introducer at \p LB (the '['). Returns {bodyOpen,
  /// bodyClose} or {NPOS, NPOS}.
  std::pair<size_t, size_t> lambdaBody(size_t F, size_t LB) const {
    const auto &T = toks(F);
    const auto &M = Units[F].Match;
    if (M[LB] == NPOS)
      return {NPOS, NPOS};
    size_t K = M[LB] + 1;
    if (K < T.size() && T[K].Text == "(") {
      if (M[K] == NPOS)
        return {NPOS, NPOS};
      K = M[K] + 1;
    }
    while (K < T.size()) {
      const std::string &X = T[K].Text;
      if (X == "mutable" || X == "noexcept" || X == "constexpr") {
        ++K;
        continue;
      }
      if (X == "->") {
        ++K;
        while (K < T.size() &&
               (T[K].Kind == Token::Ident || T[K].Text == "::" ||
                T[K].Text == "*" || T[K].Text == "&" || T[K].Text == "<" ||
                T[K].Text == ">"))
          ++K;
        continue;
      }
      break;
    }
    if (K < T.size() && T[K].Text == "{" && M[K] != NPOS)
      return {K, M[K]};
    return {NPOS, NPOS};
  }

  void findLambdas(size_t DefIdx) {
    size_t F = Defs[DefIdx].FileIdx;
    const auto &T = toks(F);
    size_t I = Defs[DefIdx].BodyBegin + 1;
    size_t End = Defs[DefIdx].BodyEnd;
    while (I < End) {
      if (masked(Defs[DefIdx], I)) {
        ++I;
        continue;
      }
      // Named lambda: auto Name = [...](...) ... { ... }
      if (T[I].Text == "auto" && I + 3 < End && T[I + 1].Kind == Token::Ident &&
          T[I + 2].Text == "=" && T[I + 3].Text == "[") {
        auto [BO, BC] = lambdaBody(F, I + 3);
        if (BO != NPOS) {
          addLambda(DefIdx, T[I + 1].Text, I + 3, BO, BC);
          I = BC + 1;
          continue;
        }
      }
      // Anonymous lambda: '[' not preceded by a postfix expression.
      if (T[I].Text == "[" &&
          (I == 0 || (toks(F)[I - 1].Kind != Token::Ident &&
                      toks(F)[I - 1].Text != ")" &&
                      toks(F)[I - 1].Text != "]"))) {
        auto [BO, BC] = lambdaBody(F, I);
        if (BO != NPOS) {
          addLambda(DefIdx, "", I, BO, BC);
          I = BC + 1;
          continue;
        }
      }
      ++I;
    }
  }

  void addLambda(size_t ParentIdx, const std::string &Name, size_t Intro,
                 size_t BodyOpen, size_t BodyClose) {
    FunctionDef &P = Defs[ParentIdx];
    size_t F = P.FileIdx;
    const auto &T = toks(F);
    FunctionDef D;
    D.FileIdx = F;
    D.Line = T[Intro].Line;
    D.Col = T[Intro].Col;
    D.Simple = Name;
    D.Qual = P.Qual + "::" +
             (Name.empty() ? "<lambda:" + std::to_string(T[Intro].Line) + ">"
                           : Name);
    D.EnclosingClass = P.EnclosingClass; // captures `this` conservatively
    size_t AfterIntro = Units[F].Match[Intro] + 1;
    if (AfterIntro < T.size() && T[AfterIntro].Text == "(") {
      D.ParamOpen = AfterIntro;
      D.ParamClose = Units[F].Match[AfterIntro];
    } else {
      D.ParamOpen = D.ParamClose = BodyOpen; // no parameter list
    }
    D.BodyBegin = BodyOpen;
    D.BodyEnd = BodyClose;
    D.DeclBegin = Intro;
    D.IsLambda = true;
    D.Parent = ParentIdx;
    P.Masks.push_back({Intro, BodyClose});
    P.Children.push_back(Defs.size());
    Defs.push_back(std::move(D));
    // Note: Defs may have reallocated; P reference is not used below.
  }

  void collectVars(size_t DefIdx) {
    FunctionDef &D = Defs[DefIdx];
    if (D.Parent != NPOS)
      D.VarTypes = Defs[D.Parent].VarTypes; // captured outer scope
    size_t F = D.FileIdx;
    const auto &T = toks(F);
    const auto &M = Units[F].Match;
    // Parameters.
    if (D.ParamClose > D.ParamOpen) {
      size_t PB = D.ParamOpen + 1;
      int Angle = 0;
      std::vector<std::pair<size_t, size_t>> Pieces;
      size_t PieceStart = PB;
      for (size_t I = PB; I < D.ParamClose; ++I) {
        const std::string &X = T[I].Text;
        if (X == "(" && M[I] != NPOS) {
          I = M[I];
          continue;
        }
        if (X == "<")
          ++Angle;
        else if (X == ">" && Angle > 0)
          --Angle;
        else if (X == "," && Angle == 0) {
          Pieces.push_back({PieceStart, I});
          PieceStart = I + 1;
        }
      }
      if (PieceStart < D.ParamClose)
        Pieces.push_back({PieceStart, D.ParamClose});
      for (auto [B, E] : Pieces) {
        size_t NameIdx = NPOS;
        for (size_t I = B; I < E; ++I) {
          if (T[I].Text == "=")
            break; // default argument
          if (T[I].Kind == Token::Ident && !isCgcMacro(T[I].Text))
            NameIdx = I;
        }
        if (NameIdx == NPOS)
          continue;
        std::string Ty = typeBefore(F, NameIdx);
        if (!Ty.empty() && !isTypeQualifier(Ty))
          D.VarTypes[T[NameIdx].Text] = Ty;
        // Object* parameter?
        bool SawObject = false;
        for (size_t I = B; I < NameIdx; ++I) {
          if (T[I].Kind == Token::Ident && T[I].Text == "Object")
            SawObject = true;
          else if (SawObject && T[I].Text == "*") {
            D.ObjectPtrParams.insert(T[NameIdx].Text);
            break;
          } else if (T[I].Kind == Token::Ident && T[I].Text != "const" &&
                     T[I].Text != "cgc" && T[I].Text != "volatile")
            SawObject = false;
          else if (T[I].Text != "::" && T[I].Text != "const")
            SawObject = SawObject && T[I].Text == "*";
        }
      }
    }
    // Locals: `Type [*&]* Name` at a statement-ish position.
    for (size_t I = D.BodyBegin + 1; I + 1 < D.BodyEnd; ++I) {
      if (masked(D, I))
        continue;
      if (T[I].Kind != Token::Ident || isStmtKeyword(T[I].Text) ||
          isCgcMacro(T[I].Text))
        continue;
      const Token &Prev = T[I - 1];
      bool StmtStart = Prev.Text == ";" || Prev.Text == "{" ||
                       Prev.Text == "}" || Prev.Text == "(" ||
                       Prev.Text == "," || Prev.Text == "const";
      if (!StmtStart)
        continue;
      // Walk the type: Ident (:: Ident)* (<...>)? [*&]* Name
      size_t J = I;
      while (J + 2 < D.BodyEnd && T[J + 1].Text == "::" &&
             T[J + 2].Kind == Token::Ident)
        J += 2;
      size_t K = J + 1;
      if (K < D.BodyEnd && T[K].Text == "<") {
        int Depth = 0;
        while (K < D.BodyEnd) {
          if (T[K].Text == "<")
            ++Depth;
          else if (T[K].Text == ">" && --Depth == 0) {
            ++K;
            break;
          }
          ++K;
        }
      }
      while (K < D.BodyEnd && (T[K].Text == "*" || T[K].Text == "&"))
        ++K;
      if (K >= D.BodyEnd || T[K].Kind != Token::Ident ||
          isStmtKeyword(T[K].Text) || K == I)
        continue;
      if (K + 1 >= D.BodyEnd)
        continue;
      const std::string &Follow = T[K + 1].Text;
      if (Follow != "=" && Follow != ";" && Follow != "(" && Follow != "{" &&
          Follow != "," && Follow != "[" && Follow != ":")
        continue;
      std::string Ty = typeBefore(F, K);
      if (!Ty.empty() && !isTypeQualifier(Ty) && !D.VarTypes.count(T[K].Text))
        D.VarTypes[T[K].Text] = Ty;
    }
  }

  std::string fieldType(const std::string &Cls, const std::string &Fld) const {
    auto It = Classes.find(Cls);
    if (It == Classes.end())
      return "";
    auto F = It->second.FieldTypes.find(Fld);
    return F == It->second.FieldTypes.end() ? "" : F->second;
  }

  std::string methodReturn(const std::string &Cls,
                           const std::string &Mth) const {
    auto It = Classes.find(Cls);
    if (It == Classes.end())
      return "";
    auto F = It->second.MethodReturns.find(Mth);
    return F == It->second.MethodReturns.end() ? "" : F->second;
  }

  bool classHasMethod(const std::string &Cls, const std::string &Mth) const {
    auto It = Classes.find(Cls);
    return It != Classes.end() && It->second.MethodsSeen.count(Mth) != 0;
  }

  /// Static class of the postfix expression ending at token \p J ("" if
  /// unknown). Depth-limited recursive chain resolution.
  std::string classOfExprEndingAt(const FunctionDef &D, size_t J,
                                  int Depth = 0) const {
    if (Depth > 8 || J == NPOS || J >= toks(D.FileIdx).size())
      return "";
    size_t F = D.FileIdx;
    const auto &T = toks(F);
    const auto &M = Units[F].Match;
    const std::string &X = T[J].Text;
    if (X == ")") {
      size_t Open = M[J];
      if (Open == NPOS || Open == 0)
        return "";
      size_t NameIdx = Open - 1;
      if (T[NameIdx].Kind != Token::Ident)
        return ""; // parenthesized expression or cast
      const std::string &Mth = T[NameIdx].Text;
      if (NameIdx >= 2 && (T[NameIdx - 1].Text == "." ||
                           T[NameIdx - 1].Text == "->")) {
        std::string C = classOfExprEndingAt(D, NameIdx - 2, Depth + 1);
        return C.empty() ? "" : methodReturn(C, Mth);
      }
      if (NameIdx >= 2 && T[NameIdx - 1].Text == "::")
        return methodReturn(T[NameIdx - 2].Text, Mth);
      if (!D.EnclosingClass.empty() && classHasMethod(D.EnclosingClass, Mth))
        return methodReturn(D.EnclosingClass, Mth);
      return "";
    }
    if (X == "]") {
      size_t Open = M[J];
      return Open == NPOS || Open == 0
                 ? ""
                 : classOfExprEndingAt(D, Open - 1, Depth + 1);
    }
    if (T[J].Kind == Token::Ident) {
      if (J >= 2 && (T[J - 1].Text == "." || T[J - 1].Text == "->")) {
        std::string C = classOfExprEndingAt(D, J - 2, Depth + 1);
        return C.empty() ? "" : fieldType(C, X);
      }
      if (J >= 1 && T[J - 1].Text == "::")
        return ""; // scoped constant / static — not a receiver we track
      if (X == "this")
        return D.EnclosingClass;
      auto V = D.VarTypes.find(X);
      if (V != D.VarTypes.end())
        return V->second;
      if (!D.EnclosingClass.empty()) {
        std::string FT = fieldType(D.EnclosingClass, X);
        if (!FT.empty())
          return FT;
      }
      return "";
    }
    return "";
  }

  /// Named-lambda lookup through the lexical parent chain.
  std::string findLambdaTarget(size_t DefIdx, const std::string &Name) const {
    size_t Cur = DefIdx;
    while (Cur != NPOS) {
      for (size_t C : Defs[Cur].Children)
        if (Defs[C].Simple == Name)
          return Defs[C].Qual;
      Cur = Defs[Cur].Parent;
    }
    return "";
  }

  void extractCalls(size_t DefIdx) {
    FunctionDef &D = Defs[DefIdx];
    size_t F = D.FileIdx;
    const auto &T = toks(F);
    const auto &M = Units[F].Match;
    struct GuardRec {
      int Depth;
      std::string Lock;
      int Line;
    };
    std::vector<GuardRec> Guards;
    int BraceDepth = 0;
    for (size_t I = D.BodyBegin + 1; I < D.BodyEnd; ++I) {
      if (masked(D, I)) {
        // Jump to the end of the mask region.
        size_t SkipTo = I;
        for (const auto &[B, E] : D.Masks)
          if (I >= B && I <= E)
            SkipTo = std::max(SkipTo, E);
        I = SkipTo;
        continue;
      }
      const std::string &X = T[I].Text;
      if (T[I].Kind == Token::Punct) {
        if (X == "{")
          ++BraceDepth;
        else if (X == "}") {
          while (!Guards.empty() && Guards.back().Depth == BraceDepth)
            Guards.pop_back();
          --BraceDepth;
        }
        continue;
      }
      if (T[I].Kind != Token::Ident)
        continue;
      // SpinLockGuard G(LockExpr[, std::adopt_lock]);
      if (X == "SpinLockGuard" && I + 2 < D.BodyEnd &&
          T[I + 1].Kind == Token::Ident && T[I + 2].Text == "(") {
        std::string Lock;
        for (size_t J = I + 3; J < D.BodyEnd; ++J) {
          const std::string &Y = T[J].Text;
          if (Y == "," || Y == ")")
            break;
          if (T[J].Kind == Token::Ident || Y == "." || Y == "->")
            Lock += Y;
        }
        Guards.push_back({BraceDepth, Lock, T[I].Line});
        continue;
      }
      if (I + 1 >= D.BodyEnd || T[I + 1].Text != "(" ||
          isStmtKeyword(X) || isCgcMacro(X))
        continue;
      // A declaration like `Foo Bar(...)` puts `Bar` before '(': skip
      // idents directly preceded by another ident (not a call).
      if (I > 0 && T[I - 1].Kind == Token::Ident &&
          !isStmtKeyword(T[I - 1].Text) && !isTypeQualifier(T[I - 1].Text) &&
          !isCgcMacro(T[I - 1].Text))
        continue;
      CallSite CS;
      CS.TokIdx = I;
      CS.Line = T[I].Line;
      CS.Col = T[I].Col;
      CS.Simple = X;
      CS.ArgsEnd = M[I + 1] == NPOS ? I + 1 : M[I + 1];
      CS.GuardCount = static_cast<int>(Guards.size());
      if (!Guards.empty()) {
        CS.GuardLock = Guards.back().Lock;
        CS.GuardLine = Guards.back().Line;
      }
      if (I >= 2 && T[I - 1].Text == "::") {
        const std::string &Q = T[I - 2].Text;
        CS.Target = Q + "::" + X;
      } else if (I >= 2 &&
                 (T[I - 1].Text == "." || T[I - 1].Text == "->")) {
        std::string C = classOfExprEndingAt(D, I - 2);
        if (!C.empty())
          CS.Target = C + "::" + X;
      } else {
        std::string L = findLambdaTarget(DefIdx, X);
        if (!L.empty())
          CS.Target = L;
        else if (!D.EnclosingClass.empty() &&
                 classHasMethod(D.EnclosingClass, X))
          CS.Target = D.EnclosingClass + "::" + X;
        // Unique free function fallback resolved in callVerdict via
        // the simple-name index.
      }
      D.Calls.push_back(std::move(CS));
    }
  }

  //===--------------------------------------------------------------------===//
  // Phase 1c: may-reach-safepoint propagation
  //===--------------------------------------------------------------------===//

  void buildNameIndexes() {
    for (size_t D = 0; D < Defs.size(); ++D) {
      if (!DefsByQual.count(Defs[D].Qual))
        DefsByQual[Defs[D].Qual] = D;
      if (!Defs[D].Simple.empty())
        DefsBySimple[Defs[D].Simple].push_back(D);
    }
    for (const std::string &S : builtinSeeds())
      Seeds.insert(S);
    for (size_t D = 0; D < Defs.size(); ++D) {
      if (Defs[D].Safepoint)
        Seeds.insert(Defs[D].Qual);
      if (Defs[D].NoSafepoint)
        NoSafepointDecls.insert(Defs[D].Qual);
    }
  }

  bool isNoSafepointQual(const std::string &Q) const {
    return NoSafepointDecls.count(Q) != 0;
  }

  /// Is this call may-safepoint under the current Tainted assignment?
  bool callVerdict(const CallSite &CS) const {
    if (!CS.Target.empty()) {
      if (isNoSafepointQual(CS.Target))
        return false;
      if (Seeds.count(CS.Target))
        return true;
      auto It = DefsByQual.find(CS.Target);
      if (It != DefsByQual.end())
        return Tainted[It->second] != 0;
      // External target (no definition in the tree): only the seed /
      // always-safepoint names count.
      return isAlwaysSafepointName(CS.Simple);
    }
    if (isAlwaysSafepointName(CS.Simple))
      return true;
    // Unresolved: taint only if every definition by this simple name is
    // tainted (so helpers shared with never-safepoint layers stay
    // quiet).
    auto It = DefsBySimple.find(CS.Simple);
    if (It == DefsBySimple.end() || It->second.empty())
      return false;
    for (size_t D : It->second)
      if (!Tainted[D])
        return false;
    return true;
  }

  void propagate() {
    Tainted.assign(Defs.size(), 0);
    bool Changed = true;
    while (Changed) {
      Changed = false;
      for (size_t D = 0; D < Defs.size(); ++D) {
        if (Tainted[D])
          continue;
        const FunctionDef &Def = Defs[D];
        if (Def.NoSafepoint || isNoSafepointQual(Def.Qual))
          continue; // propagation barrier (asserted separately)
        bool T = Def.Safepoint || Seeds.count(Def.Qual) != 0;
        if (!T)
          for (const CallSite &CS : Def.Calls)
            if (callVerdict(CS)) {
              T = true;
              break;
            }
        if (!T)
          for (size_t C : Def.Children)
            if (Tainted[C]) {
              T = true; // a lambda the function runs may safepoint
              break;
            }
        if (T) {
          Tainted[D] = 1;
          Changed = true;
        }
      }
    }
  }

  /// Human-readable chain from \p Target to a seed, e.g.
  /// " (safepoint path: a -> b -> GcHeap::allocate)".
  std::string witnessPath(const std::string &Target) const {
    std::string Cur = Target;
    std::vector<std::string> Path{Cur};
    for (int Hop = 0; Hop < 8; ++Hop) {
      if (Seeds.count(Cur))
        break;
      auto It = DefsByQual.find(Cur);
      if (It == DefsByQual.end())
        break;
      const FunctionDef &D = Defs[It->second];
      std::string Next;
      for (const CallSite &CS : D.Calls)
        if (callVerdict(CS)) {
          Next = CS.Target.empty() ? CS.Simple : CS.Target;
          break;
        }
      if (Next.empty()) {
        for (size_t C : D.Children)
          if (Tainted[C]) {
            Next = Defs[C].Qual;
            break;
          }
      }
      if (Next.empty() || Next == Cur)
        break;
      Path.push_back(Next);
      Cur = Next;
    }
    std::string Out = " (safepoint path: ";
    for (size_t I = 0; I < Path.size(); ++I)
      Out += (I ? " -> " : "") + Path[I];
    return Out + ")";
  }

  void report(const std::string &Rule, size_t FileIdx, int Line, int Col,
              std::string Msg) {
    All.push_back({Rule, Units[FileIdx].Path, Line, Col, std::move(Msg)});
  }

  //===--------------------------------------------------------------------===//
  // Phase 2 rules
  //===--------------------------------------------------------------------===//

  void checkNoSafepoint(size_t DefIdx) {
    const FunctionDef &D = Defs[DefIdx];
    if (!D.NoSafepoint && !isNoSafepointQual(D.Qual))
      return;
    for (const CallSite &CS : D.Calls)
      if (callVerdict(CS)) {
        std::string Callee = CS.Target.empty() ? CS.Simple : CS.Target;
        report("NS", D.FileIdx, CS.Line, CS.Col,
               "'" + D.Qual + "' is CGC_NO_SAFEPOINT but calls may-safepoint "
               "'" + Callee + "'" + witnessPath(Callee));
      }
    for (size_t C : D.Children)
      if (Tainted[C])
        report("NS", D.FileIdx, Defs[C].Line, Defs[C].Col,
               "'" + D.Qual + "' is CGC_NO_SAFEPOINT but contains a "
               "may-safepoint lambda '" + Defs[C].Qual + "'" +
                   witnessPath(Defs[C].Qual));
  }

  void checkRawStores(size_t DefIdx) {
    const FunctionDef &D = Defs[DefIdx];
    const std::string &Path = Units[D.FileIdx].Path;
    if (m2Allowed(Path))
      return;
    for (const CallSite &CS : D.Calls)
      if (CS.Simple == "storeRefRaw" || CS.Simple == "setRefRaw")
        report("M2", D.FileIdx, CS.Line, CS.Col,
               "raw unbarriered store '" + CS.Simple + "' outside the "
               "documented barrier sites: the card table is never dirtied, "
               "so concurrent marking can lose the stored reference; use "
               "GcHeap::writeRef (barrier contract: heap/ObjectModel.h "
               "Object::storeRefRaw, runtime/GcHeap.h GcHeap::writeRef)");
  }

  void checkSafepointUnderLock(size_t DefIdx) {
    const FunctionDef &D = Defs[DefIdx];
    for (const CallSite &CS : D.Calls) {
      if (CS.GuardCount == 0 || !callVerdict(CS))
        continue;
      std::string Callee = CS.Target.empty() ? CS.Simple : CS.Target;
      report("M3", D.FileIdx, CS.Line, CS.Col,
             "may-safepoint call '" + Callee + "' while SpinLockGuard on '" +
                 CS.GuardLock + "' (line " + std::to_string(CS.GuardLine) +
                 ") is held: a safepoint here can park this thread with the "
                 "spinlock taken and deadlock the STW/handshake protocol" +
                 witnessPath(Callee));
    }
  }

  //===--------------------------------------------------------------------===//
  // M1: heap-ref locals live across safepoints
  //===--------------------------------------------------------------------===//

  void checkLiveAcrossSafepoint(size_t DefIdx) {
    const FunctionDef &D = Defs[DefIdx];
    size_t F = D.FileIdx;
    const auto &T = toks(F);
    struct VarState {
      bool Committed = false; // has a committed (visible) value
      bool Anchored = false;  // rooted via setRoot/pushRoot since last write
      bool Pending = false;   // a write in the current statement
      bool Reported = false;
      std::string HazardCallee; // tainted call crossed since last write
      int HazardLine = 0;
      size_t HazardFrom = 0; // uses past this token index are stale
    };
    std::map<std::string, VarState> Vars;
    for (const std::string &P : D.ObjectPtrParams)
      Vars[P].Committed = true;

    // Calls by token index for the linear walk.
    std::map<size_t, const CallSite *> CallAt;
    for (const CallSite &CS : D.Calls)
      CallAt[CS.TokIdx] = &CS;

    auto commitPending = [&]() {
      for (auto &[Name, V] : Vars)
        if (V.Pending) {
          V.Pending = false;
          V.Committed = true;
          V.Anchored = false;
          V.HazardCallee.clear();
        }
    };
    auto useOf = [&](const std::string &Name, size_t TokIdx, int Line,
                     int Col) {
      VarState &V = Vars[Name];
      // Arguments of the hazard call itself are evaluated before the
      // callee can reach a safepoint, so only later uses are stale.
      if (!V.HazardCallee.empty() && !V.Reported && !V.Pending &&
          TokIdx > V.HazardFrom) {
        V.Reported = true;
        report("M1", F, Line, Col,
               "heap-ref local '" + Name + "' may be stale: it was live "
               "across may-safepoint call '" + V.HazardCallee + "' (line " +
                   std::to_string(V.HazardLine) + ") without being rooted; "
                   "compaction can move the referent — anchor it first "
                   "(Ctx.setRoot/Ctx.pushRoot) or re-read it from a root "
                   "after the GC point");
      }
    };

    size_t SkipUsesUntil = 0; // inside setRoot/pushRoot argument lists
    for (size_t I = D.BodyBegin + 1; I < D.BodyEnd; ++I) {
      if (masked(D, I)) {
        size_t SkipTo = I;
        for (const auto &[B, E] : D.Masks)
          if (I >= B && I <= E)
            SkipTo = std::max(SkipTo, E);
        I = SkipTo;
        continue;
      }
      const std::string &X = T[I].Text;
      if (T[I].Kind == Token::Punct) {
        if (X == ";" || X == "{" || X == "}")
          commitPending();
        continue;
      }
      if (T[I].Kind != Token::Ident)
        continue;

      // New tracked local: [const] [cgc::] Object * Name
      if (X == "Object" && I + 2 < D.BodyEnd && T[I + 1].Text == "*" &&
          T[I + 2].Kind == Token::Ident && T[I + 3].Text != "*") {
        const Token &Prev = T[I - 1];
        std::string P = Prev.Text;
        if (P == "const")
          P = T[I - 2].Text;
        if (P == "::")
          P = I >= 3 ? T[I - 3].Text : P; // cgc::Object — look further back
        if (P == ";" || P == "{" || P == "}" || P == "(" || P == "," ||
            P == "cgc" || P == "const") {
          VarState &V = Vars[T[I + 2].Text];
          V = VarState{};
          V.Pending = true; // commits at end of the declaration statement
          I += 2;
          continue;
        }
      }

      auto CallIt = CallAt.find(I);
      if (CallIt != CallAt.end()) {
        const CallSite &CS = *CallIt->second;
        if (CS.Simple == "setRoot" || CS.Simple == "pushRoot") {
          // Anchoring: names in the argument list become rooted. A
          // stale name being anchored is itself a use of a stale value.
          for (size_t J = I + 2; J < CS.ArgsEnd && J < D.BodyEnd; ++J) {
            if (T[J].Kind != Token::Ident || !Vars.count(T[J].Text))
              continue;
            VarState &V = Vars[T[J].Text];
            if (!V.HazardCallee.empty())
              useOf(T[J].Text, J, T[J].Line, T[J].Col);
            else if (!V.Pending)
              V.Anchored = true;
          }
          SkipUsesUntil = std::max(SkipUsesUntil, CS.ArgsEnd);
          continue;
        }
        if (callVerdict(CS)) {
          std::string Callee = CS.Target.empty() ? CS.Simple : CS.Target;
          for (auto &[Name, V] : Vars)
            if (V.Committed && !V.Anchored && !V.Pending &&
                V.HazardCallee.empty()) {
              V.HazardCallee = Callee;
              V.HazardLine = CS.Line;
              V.HazardFrom = CS.ArgsEnd;
            }
        }
        continue;
      }

      if (!Vars.count(X))
        continue;
      if (I < SkipUsesUntil)
        continue;
      // Write: Name = ... (not ==, !=, <=, >=, +=, ...).
      bool IsWrite = I + 2 < D.BodyEnd && T[I + 1].Text == "=" &&
                     T[I + 2].Text != "=";
      const std::string &PrevTx = T[I - 1].Text;
      if (IsWrite && PrevTx != "*" && PrevTx != "!" && PrevTx != "<" &&
          PrevTx != ">" && PrevTx != "=" && PrevTx != "+" && PrevTx != "-") {
        Vars[X].Pending = true;
        ++I; // skip the '='
        continue;
      }
      useOf(X, I, T[I].Line, T[I].Col);
    }
  }
};

//===----------------------------------------------------------------------===//
// Entry points
//===----------------------------------------------------------------------===//

} // namespace

Report analyze(const std::vector<SourceFile> &Files) {
  return Analyzer(Files).run();
}

Report analyzeTree(const std::string &SrcRoot) {
  namespace fs = std::filesystem;
  std::vector<SourceFile> Files;
  std::vector<fs::path> Paths;
  for (const auto &Entry : fs::recursive_directory_iterator(SrcRoot)) {
    if (!Entry.is_regular_file())
      continue;
    std::string Ext = Entry.path().extension().string();
    if (Ext == ".h" || Ext == ".cpp")
      Paths.push_back(Entry.path());
  }
  std::sort(Paths.begin(), Paths.end());
  for (const fs::path &P : Paths) {
    std::ifstream In(P);
    std::stringstream SS;
    SS << In.rdbuf();
    Files.push_back(
        {fs::relative(P, SrcRoot).generic_string(), SS.str()});
  }
  return analyze(Files);
}

std::string formatFinding(const Finding &F) {
  return F.File + ":" + std::to_string(F.Line) + ":" + std::to_string(F.Col) +
         ": [" + F.Rule + "] " + F.Message;
}

namespace {
std::string jsonEscape(const std::string &S) {
  std::string Out;
  for (char C : S) {
    if (C == '"' || C == '\\')
      Out += '\\';
    if (C == '\n') {
      Out += "\\n";
      continue;
    }
    Out += C;
  }
  return Out;
}

void appendFindings(std::string &Out, const std::vector<Finding> &Fs) {
  Out += "[";
  for (size_t I = 0; I < Fs.size(); ++I) {
    const Finding &F = Fs[I];
    Out += I ? ",\n    " : "\n    ";
    Out += "{\"file\": \"" + jsonEscape(F.File) + "\", \"line\": " +
           std::to_string(F.Line) + ", \"column\": " + std::to_string(F.Col) +
           ", \"rule\": \"" + F.Rule + "\", \"message\": \"" +
           jsonEscape(F.Message) + "\"}";
  }
  Out += Fs.empty() ? "]" : "\n  ]";
}
} // namespace

std::string reportToJson(const Report &R) {
  std::string Out = "{\n  \"findings\": ";
  appendFindings(Out, R.Findings);
  Out += ",\n  \"suppressed\": ";
  appendFindings(Out, R.Suppressed);
  Out += ",\n  \"stats\": {\"functions\": " + std::to_string(R.NumFunctions) +
         ", \"may_safepoint\": " + std::to_string(R.NumMaySafepoint) + "}\n}\n";
  return Out;
}

std::map<std::string, size_t> suppressedByRule(const Report &R) {
  std::map<std::string, size_t> Out;
  for (const Finding &F : R.Suppressed)
    ++Out[F.Rule];
  return Out;
}

} // namespace cgcmole
