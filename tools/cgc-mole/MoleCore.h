//===- MoleCore.h - Call-graph-aware GC-safety analyzer ---------*- C++ -*-===//
///
/// \file
/// The analysis engine behind `cgc-mole`, the tree-wide GC-safety
/// checker (DESIGN.md §14). It shares the token-level front end with
/// cgc-lint (tools/cgc-lint/Lexer.h — no libclang, both arms of every
/// #if analyzed) and runs in two phases:
///
/// Phase 1 — whole-tree index. Every function definition in the tree is
/// indexed (free functions, out-of-line and in-class methods, and named
/// lambdas, which are treated as nested functions). A call graph is
/// built with token-level receiver resolution (declared types of
/// locals/params/fields, unwrapping unique_ptr/shared_ptr, following
/// method-return types through chains like `Core.Heap.cards().dirty()`),
/// and a **may-reach-safepoint** bit is propagated to fixpoint from the
/// seed set: the mutator poll, GcHeap::allocate and the degradation
/// ladder, the fence-handshake / stop-the-world entry points, and
/// anything annotated CGC_SAFEPOINT. CGC_NO_SAFEPOINT is both a
/// propagation barrier and an assertion: a no-safepoint function whose
/// body calls a may-safepoint function is reported (rule NS) with the
/// witness chain to the seed.
///
/// Phase 2 — intra-procedural dataflow per function:
///
///   M1  a heap-reference local (`Object *`) is used across a call to a
///       may-safepoint function without being anchored in the mutator
///       roots first (Ctx.setRoot / Ctx.pushRoot). Under compaction the
///       referent may have moved; the stale pointer is a use-after-move.
///       Enforced in mutator-facing code (workloads/, runtime/,
///       mutator/); collector internals trace unanchored by design.
///   M2  a call to the raw unbarriered store (Object::storeRefRaw)
///       outside the documented barrier/collector sites. Raw stores
///       skip the card-table dirty mark, so the card cleaner never
///       re-scans the holder: the reference is invisible to concurrent
///       marking (a lost object, not a crash — see the barrier contract
///       in heap/ObjectModel.h and GcHeap::writeRef).
///   M3  a call to a may-safepoint function while a SpinLockGuard is
///       held. A safepoint inside the guard can park this thread with
///       the spinlock held; if a GC worker (or the STW protocol) needs
///       that lock the system deadlocks.
///
/// Suppression: `// cgc-mole: allow(M1[,M3|all]): reason` on the
/// finding's line or the line above, or the CGC_GC_UNSAFE_OK("reason")
/// annotation on the statement. Suppressed findings are counted and
/// reported so drift stays visible.
///
//===----------------------------------------------------------------------===//

#ifndef CGC_TOOLS_MOLECORE_H
#define CGC_TOOLS_MOLECORE_H

#include <map>
#include <string>
#include <vector>

namespace cgcmole {

/// One source file handed to the in-memory entry point. RelPath must be
/// tree-relative with '/' separators (rules M1/M2 are path-sensitive).
struct SourceFile {
  std::string RelPath;
  std::string Content;
};

/// One finding. Rule is "M1", "M2", "M3" or "NS". Line/Col are 1-based.
struct Finding {
  std::string Rule;
  std::string File;
  int Line = 0;
  int Col = 1;
  std::string Message;
};

/// Analysis result: the surviving findings, the suppressed ones (kept
/// separate so the CLI can count them per rule), and index statistics.
struct Report {
  std::vector<Finding> Findings;   // unsuppressed — these fail the build
  std::vector<Finding> Suppressed; // suppressed, with justification on file
  size_t NumFunctions = 0;         // functions indexed (incl. named lambdas)
  size_t NumMaySafepoint = 0;      // of those, may-reach-safepoint
};

/// Analyzes a set of files as one program (the in-memory entry point
/// the selftest and the seeded-mutation tests drive).
Report analyze(const std::vector<SourceFile> &Files);

/// Walks \p SrcRoot recursively, analyzing every .h/.cpp file as one
/// program. Paths in the result are relative to \p SrcRoot.
Report analyzeTree(const std::string &SrcRoot);

/// Formats a finding as "file:line:col: [Rule] message" (the format the
/// CI problem matcher in .github/problem-matchers/ parses).
std::string formatFinding(const Finding &F);

/// Renders a report as JSON: {"findings": [...], "suppressed": [...],
/// "stats": {...}} with file/line/column per finding (the `--json` CLI
/// mode).
std::string reportToJson(const Report &R);

/// Suppressed-finding counts keyed by rule (for the CLI summary line).
std::map<std::string, size_t> suppressedByRule(const Report &R);

} // namespace cgcmole

#endif // CGC_TOOLS_MOLECORE_H
