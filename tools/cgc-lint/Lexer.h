//===- Lexer.h - Shared analyzer tokenizer ----------------------*- C++ -*-===//
///
/// \file
/// The token-level front end shared by the repo's in-tree analyzers:
/// `cgc-lint` (tools/cgc-lint, concurrency discipline, DESIGN.md §10)
/// and `cgc-mole` (tools/cgc-mole, GC-safety call-graph analysis,
/// DESIGN.md §14). It is deliberately not a C++ parser: comments,
/// string literals and preprocessor lines are stripped, identifiers,
/// numbers and punctuation survive with 1-based line/column positions,
/// and comments are preserved on the side so each analyzer can parse
/// its own suppression syntax out of them.
///
/// Because preprocessor lines are skipped (not evaluated), both arms of
/// every #if land in the token stream — analyses over the lexed stream
/// are build-configuration independent, which is exactly what the
/// `-DCGC_OBSERVE=OFF` CI job relies on.
///
//===----------------------------------------------------------------------===//

#ifndef CGC_TOOLS_LEXER_H
#define CGC_TOOLS_LEXER_H

#include <cctype>
#include <string>
#include <vector>

namespace cgclint {

/// One lexed token. Line and Col are 1-based.
struct Token {
  enum KindT { Ident, Punct, Number, Str } Kind;
  std::string Text;
  int Line = 0;
  int Col = 0;
};

/// A comment's text and the line it starts on (analyzers mine these for
/// `<tool>: allow(...)` suppressions).
struct Comment {
  int Line = 0;
  std::string Text;
};

/// The lexed form of one translation unit.
struct Lexed {
  std::vector<Token> Toks;
  std::vector<Comment> Comments;
};

inline bool lexIdentStart(char C) {
  return std::isalpha(static_cast<unsigned char>(C)) || C == '_';
}
inline bool lexIdentChar(char C) {
  return std::isalnum(static_cast<unsigned char>(C)) || C == '_';
}

/// Tokenizes \p S. Never fails: unterminated constructs run to EOF.
inline Lexed lex(const std::string &S) {
  Lexed L;
  int Line = 1;
  size_t LineStart = 0; // byte offset of the current line's first char
  bool AtLineStart = true;
  size_t I = 0, N = S.size();
  auto bump = [&](char C, size_t At) {
    if (C == '\n') {
      ++Line;
      LineStart = At + 1;
      AtLineStart = true;
    }
  };
  auto col = [&](size_t At) { return static_cast<int>(At - LineStart) + 1; };
  while (I < N) {
    char C = S[I];
    if (C == '\n') {
      bump(C, I);
      ++I;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(C))) {
      ++I;
      continue;
    }
    // Preprocessor directive: skip the whole (possibly continued) line.
    if (C == '#' && AtLineStart) {
      while (I < N) {
        if (S[I] == '\\' && I + 1 < N && S[I + 1] == '\n') {
          bump('\n', I + 1);
          I += 2;
          continue;
        }
        if (S[I] == '\n')
          break;
        ++I;
      }
      continue;
    }
    AtLineStart = false;
    // Line comment.
    if (C == '/' && I + 1 < N && S[I + 1] == '/') {
      size_t End = S.find('\n', I);
      if (End == std::string::npos)
        End = N;
      L.Comments.push_back({Line, S.substr(I, End - I)});
      I = End;
      continue;
    }
    // Block comment.
    if (C == '/' && I + 1 < N && S[I + 1] == '*') {
      int StartLine = Line;
      size_t End = S.find("*/", I + 2);
      if (End == std::string::npos)
        End = N;
      else
        End += 2;
      L.Comments.push_back({StartLine, S.substr(I, End - I)});
      for (size_t J = I; J < End; ++J)
        bump(S[J], J);
      AtLineStart = false;
      I = End;
      continue;
    }
    // Raw string literal R"delim( ... )delim".
    if (C == 'R' && I + 1 < N && S[I + 1] == '"' &&
        (L.Toks.empty() || L.Toks.back().Text != "\"")) {
      size_t DelimEnd = S.find('(', I + 2);
      if (DelimEnd != std::string::npos) {
        std::string Close = ")" + S.substr(I + 2, DelimEnd - I - 2) + "\"";
        size_t End = S.find(Close, DelimEnd);
        if (End == std::string::npos)
          End = N;
        else
          End += Close.size();
        int StartCol = col(I);
        L.Toks.push_back({Token::Str, "<raw>", Line, StartCol});
        for (size_t J = I; J < End; ++J)
          bump(S[J], J);
        AtLineStart = false;
        I = End;
        continue;
      }
    }
    // String / char literal.
    if (C == '"' || C == '\'') {
      char Quote = C;
      size_t J = I + 1;
      while (J < N && S[J] != Quote) {
        if (S[J] == '\\')
          ++J;
        ++J;
      }
      L.Toks.push_back({Token::Str, "<lit>", Line, col(I)});
      I = (J < N) ? J + 1 : N;
      continue;
    }
    if (lexIdentStart(C)) {
      size_t J = I + 1;
      while (J < N && lexIdentChar(S[J]))
        ++J;
      L.Toks.push_back({Token::Ident, S.substr(I, J - I), Line, col(I)});
      I = J;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(C))) {
      size_t J = I + 1;
      while (J < N && (lexIdentChar(S[J]) || S[J] == '.' || S[J] == '\''))
        ++J;
      L.Toks.push_back({Token::Number, S.substr(I, J - I), Line, col(I)});
      I = J;
      continue;
    }
    // Two-character puncts the analyses care about.
    if (I + 1 < N) {
      char D = S[I + 1];
      if ((C == '-' && D == '>') || (C == ':' && D == ':')) {
        L.Toks.push_back({Token::Punct, std::string() + C + D, Line, col(I)});
        I += 2;
        continue;
      }
    }
    L.Toks.push_back({Token::Punct, std::string(1, C), Line, col(I)});
    ++I;
  }
  return L;
}

/// Index of the token holding the ')' matching the '(' at \p OpenIdx,
/// or Toks.size() if unbalanced.
inline size_t matchParen(const std::vector<Token> &Toks, size_t OpenIdx) {
  int Depth = 0;
  for (size_t I = OpenIdx; I < Toks.size(); ++I) {
    if (Toks[I].Kind != Token::Punct)
      continue;
    if (Toks[I].Text == "(")
      ++Depth;
    else if (Toks[I].Text == ")" && --Depth == 0)
      return I;
  }
  return Toks.size();
}

} // namespace cgclint

#endif // CGC_TOOLS_LEXER_H
