//===- main.cpp - cgc-lint CLI ------------------------------------------------//
///
/// \file
/// Usage: cgc-lint <src-root> [<src-root>...]
///
/// Lints every .h/.cpp under each root against the concurrency
/// discipline (see LintCore.h). Prints one line per finding and exits
/// non-zero if any finding survives suppression.
///
//===----------------------------------------------------------------------===//

#include "LintCore.h"

#include <cstdio>

int main(int argc, char **argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: cgc-lint <src-root> [<src-root>...]\n");
    return 2;
  }
  size_t Total = 0;
  for (int I = 1; I < argc; ++I) {
    auto Violations = cgclint::lintTree(argv[I]);
    for (const auto &V : Violations)
      std::fprintf(stderr, "%s\n", cgclint::formatViolation(V).c_str());
    Total += Violations.size();
  }
  if (Total) {
    std::fprintf(stderr, "cgc-lint: %zu violation(s)\n", Total);
    return 1;
  }
  std::printf("cgc-lint: clean\n");
  return 0;
}
