//===- main.cpp - cgc-lint CLI ------------------------------------------------//
///
/// \file
/// Usage: cgc-lint [--json] <src-root> [<src-root>...]
///
/// Lints every .h/.cpp under each root against the concurrency
/// discipline (see LintCore.h). Prints one `file:line:col: [Rule]
/// message` line per finding (or, with --json, a JSON findings array on
/// stdout) and exits non-zero if any finding survives suppression.
///
//===----------------------------------------------------------------------===//

#include "LintCore.h"

#include <cstdio>
#include <cstring>
#include <vector>

int main(int argc, char **argv) {
  bool Json = false;
  std::vector<const char *> Roots;
  for (int I = 1; I < argc; ++I) {
    if (std::strcmp(argv[I], "--json") == 0)
      Json = true;
    else
      Roots.push_back(argv[I]);
  }
  if (Roots.empty()) {
    std::fprintf(stderr, "usage: cgc-lint [--json] <src-root> [<src-root>...]\n");
    return 2;
  }
  std::vector<cgclint::LintViolation> All;
  for (const char *Root : Roots) {
    auto Violations = cgclint::lintTree(Root);
    All.insert(All.end(), Violations.begin(), Violations.end());
  }
  if (Json) {
    std::fputs(cgclint::violationsToJson(All).c_str(), stdout);
  } else {
    for (const auto &V : All)
      std::fprintf(stderr, "%s\n", cgclint::formatViolation(V).c_str());
  }
  if (!All.empty()) {
    std::fprintf(stderr, "cgc-lint: %zu violation(s)\n", All.size());
    return 1;
  }
  if (!Json)
    std::printf("cgc-lint: clean\n");
  return 0;
}
