//===- LintCore.cpp - Concurrency-discipline lint rules ----------------------//

#include "LintCore.h"

#include "Lexer.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

using namespace cgclint;

namespace {

/// Line -> rules suppressed by a `cgc-lint: allow(...)` comment there.
using SuppressionMap = std::map<int, std::set<std::string>>;

void recordSuppression(SuppressionMap &Allowed, const std::string &Comment,
                       int Line) {
  const std::string Key = "cgc-lint:";
  size_t At = Comment.find(Key);
  if (At == std::string::npos)
    return;
  size_t Open = Comment.find("allow(", At);
  if (Open == std::string::npos)
    return;
  size_t Close = Comment.find(')', Open);
  if (Close == std::string::npos)
    return;
  std::string Rules = Comment.substr(Open + 6, Close - Open - 6);
  std::stringstream SS(Rules);
  std::string Rule;
  while (std::getline(SS, Rule, ',')) {
    Rule.erase(std::remove_if(Rule.begin(), Rule.end(), ::isspace),
               Rule.end());
    if (!Rule.empty())
      Allowed[Line].insert(Rule);
  }
}

//===----------------------------------------------------------------------===//
// Shared helpers
//===----------------------------------------------------------------------===//

bool startsWith(const std::string &S, const char *Prefix) {
  return S.rfind(Prefix, 0) == 0;
}

struct RuleContext {
  const std::string &Path;
  const Lexed &L;
  const SuppressionMap &Allowed;
  std::vector<LintViolation> &Out;

  bool suppressed(const std::string &Rule, int Line) const {
    for (int Probe : {Line, Line - 1}) {
      auto It = Allowed.find(Probe);
      if (It == Allowed.end())
        continue;
      if (It->second.count(Rule) || It->second.count("all"))
        return true;
    }
    return false;
  }

  void report(const std::string &Rule, const Token &At,
              const std::string &Msg) {
    if (!suppressed(Rule, At.Line))
      Out.push_back({Rule, Path, At.Line, At.Col, Msg});
  }
};

//===----------------------------------------------------------------------===//
// R1: explicit memory orders on every atomic access
//===----------------------------------------------------------------------===//

const std::set<std::string> &atomicOps() {
  static const std::set<std::string> Ops = {
      "load",          "store",
      "exchange",      "fetch_add",
      "fetch_sub",     "fetch_and",
      "fetch_or",      "fetch_xor",
      "test_and_set",  "compare_exchange_weak",
      "compare_exchange_strong"};
  return Ops;
}

void checkR1(RuleContext &C) {
  const auto &T = C.L.Toks;
  for (size_t I = 0; I + 2 < T.size(); ++I) {
    if (T[I].Kind != Token::Punct || (T[I].Text != "." && T[I].Text != "->"))
      continue;
    if (T[I + 1].Kind != Token::Ident || !atomicOps().count(T[I + 1].Text))
      continue;
    if (T[I + 2].Kind != Token::Punct || T[I + 2].Text != "(")
      continue;
    size_t Close = matchParen(T, I + 2);
    // Count memory_order arguments at the call's own depth only, so an
    // inner atomic call's order cannot vouch for the outer call.
    int Depth = 0, Orders = 0;
    for (size_t J = I + 2; J <= Close && J < T.size(); ++J) {
      if (T[J].Kind == Token::Punct) {
        if (T[J].Text == "(")
          ++Depth;
        else if (T[J].Text == ")")
          --Depth;
        continue;
      }
      if (Depth == 1 && T[J].Kind == Token::Ident &&
          startsWith(T[J].Text, "memory_order"))
        ++Orders;
    }
    const std::string &Op = T[I + 1].Text;
    int Needed = startsWith(Op, "compare_exchange") ? 2 : 1;
    if (Orders < Needed)
      C.report("R1", T[I + 1],
               Op + "() without " + (Needed == 2 ? "success+failure " : "") +
                   "explicit std::memory_order (implicit seq_cst)");
  }
}

//===----------------------------------------------------------------------===//
// R2: fences only at the Section-5 sites
//===----------------------------------------------------------------------===//

/// Files where raw atomic_thread_fence may appear (the one wrapper).
bool rawFenceAllowed(const std::string &Path) {
  return Path == "support/Fences.h" || Path == "support/Fences.cpp";
}

/// The documented Section-5 fence allowlist: (file, FenceSite) pairs.
/// Everything else — most importantly the write barrier
/// (heap/CardTable.h) and the allocation fast path — must stay fence
/// free (paper Sections 5.1-5.3; DESIGN.md §10 maps each entry).
const std::set<std::pair<std::string, std::string>> &fenceAllowlist() {
  static const std::set<std::pair<std::string, std::string>> A = {
      {"heap/AllocationCache.h", "AllocCacheFlush"},   // 5.2 cache flush
      {"runtime/GcHeap.cpp", "AllocCacheFlush"},       // 5.2 large object
      {"workpackets/PacketPool.cpp", "PacketPublish"}, // 5.1 packet publish
      {"gc/Tracer.cpp", "TracerBatch"},                // 5.1 tracer batch
      {"gc/CardCleaner.cpp", "CardTableHandshake"},    // 5.3 registrar
      {"mutator/ThreadRegistry.cpp", "CardTableHandshake"}, // 5.3 ack
      {"mutator/ThreadRegistry.cpp", "StopTheWorld"},  // park/resume edges
  };
  return A;
}

void checkR2(RuleContext &C) {
  const auto &T = C.L.Toks;
  bool FastPathFile = startsWith(C.Path, "heap/CardTable");
  for (size_t I = 0; I < T.size(); ++I) {
    if (T[I].Kind != Token::Ident)
      continue;
    if (T[I].Text == "atomic_thread_fence" || T[I].Text == "atomic_signal_fence") {
      if (!rawFenceAllowed(C.Path))
        C.report("R2", T[I],
                 "raw " + T[I].Text +
                     " outside support/Fences.h (use fence(FenceSite::...))");
      continue;
    }
    if (T[I].Text != "fence")
      continue;
    if (I + 1 >= T.size() || T[I + 1].Kind != Token::Punct ||
        T[I + 1].Text != "(")
      continue;
    // Don't confuse a member/qualified name ending in ...fence — only a
    // bare call (or one qualified with cgc::) counts.
    if (I > 0 && T[I - 1].Kind == Token::Punct &&
        (T[I - 1].Text == "." || T[I - 1].Text == "->"))
      continue;
    if (rawFenceAllowed(C.Path))
      continue; // The wrapper's own declaration/definition.
    size_t Close = matchParen(T, I + 1);
    // Find the FenceSite::Name literal inside the argument list.
    std::string Site;
    for (size_t J = I + 2; J + 2 < T.size() && J < Close; ++J)
      if (T[J].Kind == Token::Ident && T[J].Text == "FenceSite" &&
          T[J + 1].Text == "::" && T[J + 2].Kind == Token::Ident) {
        Site = T[J + 2].Text;
        break;
      }
    if (Site.empty()) {
      C.report("R2", T[I],
               "fence() with a non-literal site: spell fence(FenceSite::X) "
               "so the allowlist can check it");
      continue;
    }
    if (!fenceAllowlist().count({C.Path, Site})) {
      std::string Msg = "fence(FenceSite::" + Site + ") is not on the "
                        "Section-5 allowlist for " + C.Path;
      if (FastPathFile)
        Msg = "fence in the write-barrier/card-table fast path — the "
              "paper's Section 5 discipline requires this path fence free";
      C.report("R2", T[I], Msg);
    }
  }
}

//===----------------------------------------------------------------------===//
// R3: CAS retry loops only via the shared support/ helpers
//===----------------------------------------------------------------------===//

void checkR3(RuleContext &C) {
  if (startsWith(C.Path, "support/"))
    return; // The helpers themselves live here.
  const auto &T = C.L.Toks;
  struct Scope {
    char Kind; // '(' or '{'
    bool Loop;
  };
  std::vector<Scope> Stack;
  bool PendingLoopHead = false; // saw for/while, waiting for its '('
  bool PendingLoopBody = false; // loop head closed, waiting for body
  auto inLoop = [&]() {
    if (PendingLoopBody)
      return true;
    for (const Scope &S : Stack)
      if (S.Loop)
        return true;
    return false;
  };
  for (const Token &Tok : T) {
    if (Tok.Kind == Token::Ident) {
      if (Tok.Text == "for" || Tok.Text == "while")
        PendingLoopHead = true;
      else if (Tok.Text == "do")
        PendingLoopBody = true;
      else if (startsWith(Tok.Text, "compare_exchange") && inLoop())
        C.report("R3", Tok,
                 "hand-rolled " + Tok.Text +
                     " retry loop: use atomicCasLoop/atomicStoreMax/"
                     "atomicClaimBelow from support/Atomics.h");
      continue;
    }
    if (Tok.Kind != Token::Punct)
      continue;
    const std::string &P = Tok.Text;
    if (P == "(") {
      Stack.push_back({'(', PendingLoopHead});
      PendingLoopHead = false;
    } else if (P == ")") {
      while (!Stack.empty() && Stack.back().Kind != '(')
        Stack.pop_back();
      if (!Stack.empty()) {
        if (Stack.back().Loop)
          PendingLoopBody = true;
        Stack.pop_back();
      }
    } else if (P == "{") {
      Stack.push_back({'{', PendingLoopBody});
      PendingLoopBody = false;
    } else if (P == "}") {
      while (!Stack.empty() && Stack.back().Kind != '{')
        Stack.pop_back();
      if (!Stack.empty())
        Stack.pop_back();
    } else if (P == ";" && PendingLoopBody) {
      // Single-statement loop body (no braces) ends here.
      PendingLoopBody = false;
    }
  }
}

//===----------------------------------------------------------------------===//
// R4: documented atomics in component headers; SpinLockGuard only
//===----------------------------------------------------------------------===//

/// Headers whose every std::atomic member must carry CGC_ATOMIC_DOC or
/// CGC_GUARDED_BY: the components the paper's protocols live in.
bool annotatedHeader(const std::string &Path) {
  static const std::set<std::string> Headers = {
      "support/SpinLock.h",    "heap/FreeList.h",
      "heap/ShardedFreeList.h", "heap/RemoteFreeQueue.h",
      "workpackets/PacketPool.h",
      "mutator/ThreadRegistry.h", "mutator/MutatorContext.h",
      "gc/Pacer.h",            "gc/Compactor.h",
      "observe/EventRing.h",   "observe/Observe.h",
      "observe/MetricsRegistry.h"};
  return Headers.count(Path) != 0;
}

void checkR4(RuleContext &C) {
  const auto &T = C.L.Toks;
  // R4b (tree-wide): std::lock_guard<SpinLock> is invisible to the
  // thread-safety analysis; SpinLockGuard is the annotated equivalent.
  for (size_t I = 0; I + 3 < T.size(); ++I)
    if (T[I].Kind == Token::Ident && T[I].Text == "lock_guard" &&
        T[I + 1].Text == "<" && T[I + 2].Kind == Token::Ident &&
        T[I + 2].Text == "SpinLock")
      C.report("R4", T[I],
               "std::lock_guard<SpinLock> bypasses the thread-safety "
               "analysis: use cgc::SpinLockGuard");

  if (!annotatedHeader(C.Path))
    return;
  // R4a: scan declaration fragments (token runs between ; { }) for
  // atomic members lacking a CGC_ATOMIC_DOC / CGC_GUARDED_BY claim.
  size_t Start = 0;
  for (size_t I = 0; I <= T.size(); ++I) {
    bool Boundary =
        I == T.size() || (T[I].Kind == Token::Punct &&
                          (T[I].Text == ";" || T[I].Text == "{" ||
                           T[I].Text == "}"));
    if (!Boundary)
      continue;
    // Fragment [Start, I).
    bool HasAtomicType = false, HasClaim = false, LooksLikeFunction = false;
    size_t AtomicTok = 0;
    for (size_t J = Start; J + 1 < I; ++J) {
      if (T[J].Kind != Token::Ident)
        continue;
      if (startsWith(T[J].Text, "CGC_")) {
        if (T[J].Text == "CGC_ATOMIC_DOC" || T[J].Text == "CGC_GUARDED_BY")
          HasClaim = true;
        // Skip the macro's own parenthesized argument.
        if (J + 1 < I && T[J + 1].Text == "(") {
          size_t Close = matchParen(T, J + 1);
          J = Close < I ? Close : I - 1;
        }
        continue;
      }
      if (T[J].Text == "atomic" && J + 1 < I && T[J + 1].Text == "<") {
        HasAtomicType = true;
        AtomicTok = J;
        continue;
      }
      if (J + 1 < I && T[J + 1].Kind == Token::Punct && T[J + 1].Text == "(")
        LooksLikeFunction = true; // signature, not a member declaration
    }
    if (HasAtomicType && !LooksLikeFunction && !HasClaim)
      C.report("R4", T[AtomicTok],
               "std::atomic member in a core component header without "
               "CGC_ATOMIC_DOC/CGC_GUARDED_BY (who touches it, and why "
               "these orders suffice?)");
    Start = I + 1;
  }
}

} // namespace

//===----------------------------------------------------------------------===//
// Entry points
//===----------------------------------------------------------------------===//

std::vector<LintViolation> cgclint::lintSource(const std::string &RelPath,
                                               const std::string &Content) {
  Lexed L = lex(Content);
  SuppressionMap Allowed;
  for (const Comment &Cm : L.Comments)
    recordSuppression(Allowed, Cm.Text, Cm.Line);
  std::vector<LintViolation> Out;
  RuleContext C{RelPath, L, Allowed, Out};
  checkR1(C);
  checkR2(C);
  checkR3(C);
  checkR4(C);
  std::sort(Out.begin(), Out.end(),
            [](const LintViolation &A, const LintViolation &B) {
              if (A.File != B.File)
                return A.File < B.File;
              if (A.Line != B.Line)
                return A.Line < B.Line;
              return A.Rule < B.Rule;
            });
  return Out;
}

std::vector<LintViolation> cgclint::lintTree(const std::string &SrcRoot) {
  namespace fs = std::filesystem;
  std::vector<std::string> Files;
  for (const auto &Entry : fs::recursive_directory_iterator(SrcRoot)) {
    if (!Entry.is_regular_file())
      continue;
    std::string Ext = Entry.path().extension().string();
    if (Ext != ".h" && Ext != ".cpp")
      continue;
    Files.push_back(
        fs::relative(Entry.path(), SrcRoot).generic_string());
  }
  std::sort(Files.begin(), Files.end());
  std::vector<LintViolation> Out;
  for (const std::string &Rel : Files) {
    std::ifstream In(fs::path(SrcRoot) / Rel);
    std::stringstream SS;
    SS << In.rdbuf();
    auto Part = lintSource(Rel, SS.str());
    Out.insert(Out.end(), Part.begin(), Part.end());
  }
  return Out;
}

std::string cgclint::formatViolation(const LintViolation &V) {
  return V.File + ":" + std::to_string(V.Line) + ":" + std::to_string(V.Col) +
         ": [" + V.Rule + "] " + V.Message;
}

std::string cgclint::violationsToJson(const std::vector<LintViolation> &Vs) {
  auto Escape = [](const std::string &S) {
    std::string Out;
    for (char C : S) {
      if (C == '"' || C == '\\')
        Out += '\\';
      if (C == '\n') {
        Out += "\\n";
        continue;
      }
      Out += C;
    }
    return Out;
  };
  std::string Out = "[";
  for (size_t I = 0; I < Vs.size(); ++I) {
    const LintViolation &V = Vs[I];
    if (I)
      Out += ",";
    Out += "\n  {\"file\": \"" + Escape(V.File) +
           "\", \"line\": " + std::to_string(V.Line) +
           ", \"column\": " + std::to_string(V.Col) + ", \"rule\": \"" +
           Escape(V.Rule) + "\", \"message\": \"" + Escape(V.Message) + "\"}";
  }
  Out += Vs.empty() ? "]\n" : "\n]\n";
  return Out;
}
