//===- LintCore.h - Concurrency-discipline lint rules -----------*- C++ -*-===//
///
/// \file
/// The rule engine behind `cgc-lint`, the build-time enforcement of the
/// repo's concurrency discipline (DESIGN.md §10). A token-level scanner
/// (comments/strings/preprocessor stripped, no libclang) checks:
///
///   R1  every std::atomic load/store/RMW spells an explicit
///       memory_order (two for compare_exchange); no implicit seq_cst.
///   R2  fences only at the Section-5 sites: raw atomic_thread_fence
///       only inside support/Fences.h, and fence(FenceSite::X) calls
///       only at the documented (file, site) pairs. A fence in the
///       write barrier or card-table fast path is a build error.
///   R3  no hand-rolled compare_exchange retry loops outside support/
///       (use atomicCasLoop / atomicStoreMax / atomicClaimBelow).
///   R4  concurrency documentation: every std::atomic member in the
///       core component headers carries CGC_ATOMIC_DOC or
///       CGC_GUARDED_BY, and std::lock_guard<SpinLock> is banned
///       tree-wide in favour of the analysis-visible SpinLockGuard.
///
/// Suppression: a comment `cgc-lint: allow(R2)` (comma-separated rules,
/// or `all`) suppresses findings on its own line and the next one.
///
/// The library is separate from the CLI so tests/lint_selftest.cpp can
/// drive the rules over fixture snippets.
///
//===----------------------------------------------------------------------===//

#ifndef CGC_TOOLS_LINTCORE_H
#define CGC_TOOLS_LINTCORE_H

#include <string>
#include <vector>

namespace cgclint {

/// One finding. Line and column numbers are 1-based.
struct LintViolation {
  std::string Rule; // "R1".."R4"
  std::string File; // path as passed in (tree-relative for lintTree)
  int Line = 0;
  int Col = 1;
  std::string Message;
};

/// Lints one translation unit. \p RelPath must be the path relative to
/// the source root with '/' separators (rules R2/R3/R4 are
/// path-sensitive); \p Content is the file's text.
std::vector<LintViolation> lintSource(const std::string &RelPath,
                                      const std::string &Content);

/// Walks \p SrcRoot recursively, linting every .h/.cpp file. Paths in
/// the result are relative to \p SrcRoot.
std::vector<LintViolation> lintTree(const std::string &SrcRoot);

/// Formats a finding as "file:line:col: [Rule] message" (the format the
/// CI problem matcher in .github/problem-matchers/ parses).
std::string formatViolation(const LintViolation &V);

/// Renders findings as a JSON array of {file, line, column, rule,
/// message} objects (the `--json` CLI mode).
std::string violationsToJson(const std::vector<LintViolation> &Vs);

} // namespace cgclint

#endif // CGC_TOOLS_LINTCORE_H
