//===- quickstart.cpp - smallest end-to-end GcHeap program ---------------------//
///
/// \file
/// Walks through the whole public API in one page: create a heap running
/// the mostly-concurrent collector, attach the thread, allocate objects,
/// wire references through the write barrier, pin data via the simulated
/// stack, let the collector reclaim garbage, and read the per-cycle
/// statistics.
///
//===----------------------------------------------------------------------===//

#include "runtime/GcHeap.h"

#include <cstdio>

using namespace cgc;

int main() {
  // 1. Configure and create the heap. The defaults mirror the paper's
  //    measurement setup: tracing rate 8, 1000 work packets, 4
  //    background threads, one concurrent card-cleaning pass.
  GcOptions Options;
  Options.HeapBytes = 32u << 20;
  Options.Kind = CollectorKind::MostlyConcurrent;
  auto Heap = GcHeap::create(Options);

  // 2. Attach the current thread and give it a simulated stack of four
  //    root slots. Anything referenced (directly or transitively) from a
  //    root survives collection.
  MutatorContext &Ctx = Heap->attachThread();
  Ctx.reserveRoots(4);

  // 3. Allocate a little linked list. allocate() takes payload bytes and
  //    a reference-slot count; reference stores go through writeRef (the
  //    card-marking write barrier).
  Object *Head = nullptr;
  for (int I = 0; I < 5; ++I) {
    Object *Node = Heap->allocate(Ctx, /*PayloadBytes=*/8, /*NumRefs=*/1);
    Node->payload()[0] = static_cast<uint8_t>('A' + I);
    if (Head)
      Heap->writeRef(Ctx, Node, 0, Head);
    Head = Node;
    Ctx.setRoot(0, Head); // Keep the list rooted while building it.
  }

  std::printf("list:");
  for (Object *N = Ctx.getRoot(0); N; N = GcHeap::readRef(N, 0))
    std::printf(" %c", N->payload()[0]);
  std::printf("\n");

  // 4. Churn garbage until the collector has to work. Allocation slow
  //    paths drive the concurrent cycle automatically (kickoff +
  //    incremental tracing increments).
  while (Heap->completedCycles() < 2)
    Heap->allocate(Ctx, 64, 0);

  // 5. The rooted list survived every collection.
  std::printf("after %llu collection cycles the list is still:",
              static_cast<unsigned long long>(Heap->completedCycles()));
  for (Object *N = Ctx.getRoot(0); N; N = GcHeap::readRef(N, 0))
    std::printf(" %c", N->payload()[0]);
  std::printf("\n");

  // 6. Inspect per-cycle statistics (the same records the benchmark
  //    harnesses aggregate into the paper's tables).
  auto Records = Heap->stats().snapshot();
  for (const CycleRecord &R : Records)
    std::printf("cycle %llu: %s pause %.2f ms (mark %.2f, sweep %.2f), "
                "live after %.1f MB\n",
                static_cast<unsigned long long>(R.CycleNumber),
                R.Concurrent ? "concurrent" : "stw       ", R.PauseMs,
                R.FinalCardCleanMs + R.StackRescanMs + R.FinalMarkMs,
                R.SweepMs,
                static_cast<double>(R.LiveBytesAfter) / (1 << 20));

  Heap->detachThread(Ctx);
  return 0;
}
