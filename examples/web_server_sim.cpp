//===- web_server_sim.cpp - the paper's motivating scenario --------------------//
///
/// \file
/// The workload the paper's introduction motivates: a multithreaded
/// server (many more mutator threads than processors) that must give
/// clients fast responses. Runs the same warehouse-transaction load
/// twice — once on the baseline stop-the-world collector, once on the
/// mostly-concurrent collector — and reports what a latency-sensitive
/// operator cares about: max/avg pause ("worst response-time hiccup")
/// and throughput.
///
/// Usage: web_server_sim [threads] [seconds] [heap-mb]
///
//===----------------------------------------------------------------------===//

#include "runtime/GcHeap.h"
#include "support/SampleSeries.h"
#include "support/TablePrinter.h"
#include "workloads/Warehouse.h"

#include <cstdio>
#include <cstdlib>

using namespace cgc;

namespace {

struct RunReport {
  double Throughput;
  GcAggregates Gc;
  double P95PauseMs = 0;
};

RunReport serve(CollectorKind Kind, unsigned Threads, uint64_t Millis,
                size_t HeapBytes) {
  GcOptions Options;
  Options.Kind = Kind;
  Options.HeapBytes = HeapBytes;
  auto Heap = GcHeap::create(Options);

  WarehouseConfig Config;
  Config.Threads = Threads;
  Config.DurationMs = Millis;
  Config.ThinkMicros = 100; // Clients "think" between requests.
  Config.sizeLiveSet(static_cast<size_t>(0.6 * HeapBytes));

  WarehouseWorkload Server(*Heap, Config);
  WorkloadResult Result = Server.run();

  RunReport Report;
  Report.Throughput = Result.throughput();
  auto Records = Heap->stats().snapshot();
  Report.Gc = GcAggregates::compute(Records);
  SampleSeries Pauses;
  for (const CycleRecord &R : Records)
    Pauses.add(R.PauseMs);
  Report.P95PauseMs = Pauses.percentile(0.95);
  return Report;
}

} // namespace

int main(int argc, char **argv) {
  unsigned Threads = argc > 1 ? std::atoi(argv[1]) : 8;
  uint64_t Millis = (argc > 2 ? std::atoi(argv[2]) : 4) * 1000ull;
  size_t HeapBytes = (argc > 3 ? std::atoi(argv[3]) : 48) << 20;

  std::printf("simulated web application server: %u worker threads, "
              "%zu MB heap, %llu s per collector\n\n",
              Threads, HeapBytes >> 20,
              static_cast<unsigned long long>(Millis / 1000));

  RunReport Stw = serve(CollectorKind::StopTheWorld, Threads, Millis,
                        HeapBytes);
  RunReport Cgc = serve(CollectorKind::MostlyConcurrent, Threads, Millis,
                        HeapBytes);

  TablePrinter Table({"collector", "requests/s", "GCs", "max pause ms",
                      "p95 pause ms", "avg pause ms", "avg mark ms"});
  Table.addRow({"stop-the-world", TablePrinter::num(Stw.Throughput, 0),
                TablePrinter::num(static_cast<uint64_t>(Stw.Gc.NumCycles)),
                TablePrinter::num(Stw.Gc.MaxPauseMs, 1),
                TablePrinter::num(Stw.P95PauseMs, 1),
                TablePrinter::num(Stw.Gc.AvgPauseMs, 1),
                TablePrinter::num(Stw.Gc.AvgMarkMs, 1)});
  Table.addRow({"mostly-concurrent", TablePrinter::num(Cgc.Throughput, 0),
                TablePrinter::num(static_cast<uint64_t>(Cgc.Gc.NumCycles)),
                TablePrinter::num(Cgc.Gc.MaxPauseMs, 1),
                TablePrinter::num(Cgc.P95PauseMs, 1),
                TablePrinter::num(Cgc.Gc.AvgPauseMs, 1),
                TablePrinter::num(Cgc.Gc.AvgMarkMs, 1)});
  Table.print();

  if (Stw.Gc.NumCycles && Cgc.Gc.NumCycles)
    std::printf("\npause reduction: max %.0f%%, avg %.0f%% "
                "(throughput cost %.0f%%)\n",
                100.0 * (1 - Cgc.Gc.MaxPauseMs / Stw.Gc.MaxPauseMs),
                100.0 * (1 - Cgc.Gc.AvgPauseMs / Stw.Gc.AvgPauseMs),
                100.0 * (1 - Cgc.Throughput / Stw.Throughput));
  return 0;
}
