//===- pause_timeline.cpp - visualize cycles and pause decomposition -----------//
///
/// \file
/// Runs a bursty server load and renders a text timeline of every
/// collection cycle: when it ran, how the pause decomposes (stop /
/// card cleaning / stack rescan / mark / sweep / compaction), how long
/// the concurrent phase lasted, and the pause percentiles an operator
/// would alert on. A compact way to *see* the paper's claim: the
/// mostly-concurrent collector turns a few long bars into many short
/// ones.
///
/// Usage: pause_timeline [stw|cgc] [seconds] [heap-mb]
///
//===----------------------------------------------------------------------===//

#include "runtime/GcHeap.h"
#include "support/SampleSeries.h"
#include "workloads/Warehouse.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

using namespace cgc;

namespace {

/// A proportional bar of width <= MaxCols.
std::string bar(double Value, double FullScale, int MaxCols, char Fill) {
  int Cols = FullScale > 0
                 ? static_cast<int>(Value / FullScale * MaxCols + 0.5)
                 : 0;
  if (Cols > MaxCols)
    Cols = MaxCols;
  return std::string(static_cast<size_t>(Cols), Fill);
}

} // namespace

int main(int argc, char **argv) {
  bool UseCgc = argc < 2 || std::strcmp(argv[1], "stw") != 0;
  uint64_t Millis = (argc > 2 ? std::atoi(argv[2]) : 3) * 1000ull;
  size_t HeapBytes = static_cast<size_t>(argc > 3 ? std::atoi(argv[3]) : 48)
                     << 20;

  GcOptions Options;
  Options.Kind =
      UseCgc ? CollectorKind::MostlyConcurrent : CollectorKind::StopTheWorld;
  Options.HeapBytes = HeapBytes;
  Options.BackgroundThreads = UseCgc ? 1 : 0;
  auto Heap = GcHeap::create(Options);

  WarehouseConfig Config;
  Config.Threads = 6;
  Config.DurationMs = Millis;
  Config.sizeLiveSet(static_cast<size_t>(0.6 * HeapBytes));
  WarehouseWorkload Workload(*Heap, Config);
  WorkloadResult Result = Workload.run();

  auto Records = Heap->stats().snapshot();
  std::printf("%s collector, %zu MB heap: %llu cycles over %.1f s, "
              "%.0f tx/s\n\n",
              UseCgc ? "mostly-concurrent" : "stop-the-world",
              HeapBytes >> 20,
              static_cast<unsigned long long>(Records.size()),
              Result.DurationMs / 1000.0, Result.throughput());

  double MaxPause = 0;
  for (const CycleRecord &R : Records)
    if (R.PauseMs > MaxPause)
      MaxPause = R.PauseMs;

  std::printf("cycle  conc-phase  pause(ms)  "
              "|stop|cards|stacks|mark|sweep|compact|  scaled to max "
              "%.1f ms\n",
              MaxPause);
  SampleSeries Pauses;
  for (const CycleRecord &R : Records) {
    Pauses.add(R.PauseMs);
    std::string Bars;
    Bars += bar(R.StopMs, MaxPause, 40, 's');
    Bars += bar(R.FinalCardCleanMs, MaxPause, 40, 'c');
    Bars += bar(R.StackRescanMs, MaxPause, 40, 'r');
    Bars += bar(R.FinalMarkMs, MaxPause, 40, 'M');
    Bars += bar(R.SweepMs, MaxPause, 40, 'W');
    Bars += bar(R.CompactionMs, MaxPause, 40, 'X');
    std::printf("%5llu  %7.1f ms  %8.2f   %s\n",
                static_cast<unsigned long long>(R.CycleNumber),
                R.ConcurrentPhaseMs, R.PauseMs, Bars.c_str());
  }

  std::printf("\npause percentiles: p50 %.2f ms, p95 %.2f ms, p99 %.2f ms, "
              "max %.2f ms\n",
              Pauses.percentile(0.50), Pauses.percentile(0.95),
              Pauses.percentile(0.99), MaxPause);
  std::printf("legend: s=stop the world, c=final card cleaning, r=stack "
              "rescan, M=final mark, W=sweep, X=compaction\n");
  return 0;
}
