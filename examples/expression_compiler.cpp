//===- expression_compiler.cpp - a compiler hosted on the GC heap --------------//
///
/// \file
/// A small arithmetic-expression compiler whose ASTs and emitted code
/// objects live on the garbage-collected heap — the javac-like scenario
/// of the paper's evaluation, as a user-facing program.
///
/// Pass expressions as arguments (variables a..h are bound to 1..8):
///
///   expression_compiler '1+2*3' '(a+b)*c-4'
///
/// Without arguments it compiles a built-in set, then stress-compiles
/// generated expressions to show the collector at work.
///
//===----------------------------------------------------------------------===//

#include "runtime/GcHeap.h"
#include "support/Random.h"

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

using namespace cgc;

namespace {

enum NodeKind : uint16_t { KNum = 1, KVar, KAdd, KSub, KMul };

/// AST nodes: classId = NodeKind, two ref slots, 8-byte payload holding
/// the literal value or variable index.
class ExprCompiler {
public:
  ExprCompiler(GcHeap &Heap, MutatorContext &Ctx) : Heap(Heap), Ctx(Ctx) {}

  /// Parses \p Source into a GC-hosted AST; nullptr on syntax error.
  /// The AST is anchored on the shadow stack; the caller pops
  /// anchorCount() roots when done with it.
  Object *parse(const std::string &Source) {
    Src = Source.c_str();
    Anchors = 0;
    Object *Ast = parseSum();
    if (*Src != '\0') {
      std::fprintf(stderr, "error: trailing input at '%s'\n", Src);
      return nullptr;
    }
    return Ast;
  }

  size_t anchorCount() const { return Anchors; }

  /// Emits a postfix "bytecode" string for display.
  static void disassemble(const Object *Node, std::string &Out) {
    int64_t V;
    std::memcpy(&V, Node->payload(), 8);
    switch (Node->classId()) {
    case KNum:
      Out += std::to_string(V) + " ";
      return;
    case KVar:
      Out += static_cast<char>('a' + V);
      Out += " ";
      return;
    case KAdd:
    case KSub:
    case KMul:
      disassemble(GcHeap::readRef(Node, 0), Out);
      disassemble(GcHeap::readRef(Node, 1), Out);
      Out += Node->classId() == KAdd ? "add "
             : Node->classId() == KSub ? "sub "
                                       : "mul ";
      return;
    }
  }

  /// Evaluates the AST with variables a..h bound to 1..8.
  static int64_t eval(const Object *Node) {
    int64_t V;
    std::memcpy(&V, Node->payload(), 8);
    switch (Node->classId()) {
    case KNum:
      return V;
    case KVar:
      return V + 1;
    case KAdd:
      return eval(GcHeap::readRef(Node, 0)) + eval(GcHeap::readRef(Node, 1));
    case KSub:
      return eval(GcHeap::readRef(Node, 0)) - eval(GcHeap::readRef(Node, 1));
    case KMul:
      return eval(GcHeap::readRef(Node, 0)) * eval(GcHeap::readRef(Node, 1));
    }
    return 0;
  }

private:
  Object *makeNode(NodeKind Kind, int64_t Value, Object *Lhs, Object *Rhs) {
    Object *Node = Heap.allocate(Ctx, 8, 2, Kind);
    if (!Node)
      return nullptr;
    std::memcpy(Node->payload(), &Value, 8);
    if (Lhs)
      Heap.writeRef(Ctx, Node, 0, Lhs);
    if (Rhs)
      Heap.writeRef(Ctx, Node, 1, Rhs);
    Ctx.pushRoot(Node); // Anchor partial trees against the collector.
    ++Anchors;
    return Node;
  }

  Object *parseSum() {
    Object *Lhs = parseProduct();
    while (Lhs && (*Src == '+' || *Src == '-')) {
      char Op = *Src++;
      Object *Rhs = parseProduct();
      if (!Rhs)
        return nullptr;
      Lhs = makeNode(Op == '+' ? KAdd : KSub, 0, Lhs, Rhs);
    }
    return Lhs;
  }

  Object *parseProduct() {
    Object *Lhs = parseAtom();
    while (Lhs && *Src == '*') {
      ++Src;
      Object *Rhs = parseAtom();
      if (!Rhs)
        return nullptr;
      Lhs = makeNode(KMul, 0, Lhs, Rhs);
    }
    return Lhs;
  }

  Object *parseAtom() {
    if (*Src == '(') {
      ++Src;
      Object *Inner = parseSum();
      if (!Inner || *Src != ')') {
        std::fprintf(stderr, "error: expected ')' at '%s'\n", Src);
        return nullptr;
      }
      ++Src;
      return Inner;
    }
    if (*Src >= '0' && *Src <= '9') {
      int64_t V = 0;
      while (*Src >= '0' && *Src <= '9')
        V = V * 10 + (*Src++ - '0');
      return makeNode(KNum, V, nullptr, nullptr);
    }
    if (*Src >= 'a' && *Src <= 'h')
      return makeNode(KVar, *Src++ - 'a', nullptr, nullptr);
    std::fprintf(stderr, "error: unexpected character '%c'\n", *Src);
    return nullptr;
  }

  GcHeap &Heap;
  MutatorContext &Ctx;
  const char *Src = nullptr;
  size_t Anchors = 0;
};

std::string randomExpression(Random &Rng, int Depth) {
  if (Depth == 0 || Rng.nextBool(0.35))
    return Rng.nextBool(0.5)
               ? std::to_string(Rng.nextBelow(100))
               : std::string(1, static_cast<char>('a' + Rng.nextBelow(8)));
  const char *Ops[] = {"+", "-", "*"};
  return "(" + randomExpression(Rng, Depth - 1) +
         Ops[Rng.nextBelow(3)] + randomExpression(Rng, Depth - 1) + ")";
}

} // namespace

int main(int argc, char **argv) {
  GcOptions Options;
  Options.HeapBytes = 24u << 20;
  Options.BackgroundThreads = 1; // The paper's uniprocessor javac setup.
  auto Heap = GcHeap::create(Options);
  MutatorContext &Ctx = Heap->attachThread();

  std::vector<std::string> Sources;
  for (int I = 1; I < argc; ++I)
    Sources.push_back(argv[I]);
  if (Sources.empty())
    Sources = {"1+2*3", "(a+b)*c", "10*(h-3)+f*f"};

  ExprCompiler Compiler(*Heap, Ctx);
  for (const std::string &Source : Sources) {
    Object *Ast = Compiler.parse(Source);
    if (!Ast) {
      Ctx.popRoots(Compiler.anchorCount());
      continue;
    }
    std::string Code;
    ExprCompiler::disassemble(Ast, Code);
    std::printf("%-20s => [%s] = %lld   (a..h = 1..8)\n", Source.c_str(),
                Code.c_str(),
                static_cast<long long>(ExprCompiler::eval(Ast)));
    Ctx.popRoots(Compiler.anchorCount()); // AST becomes garbage.
  }

  // Stress phase: compile generated expressions until the collector has
  // run a few cycles, verifying each result against a re-evaluation.
  std::printf("\nstress-compiling generated expressions...\n");
  Random Rng(2026);
  uint64_t Compiled = 0;
  while (Heap->completedCycles() < 3) {
    std::string Source = randomExpression(Rng, 6);
    Object *Ast = Compiler.parse(Source);
    if (!Ast)
      break;
    int64_t First = ExprCompiler::eval(Ast);
    int64_t Second = ExprCompiler::eval(Ast);
    if (First != Second) {
      std::fprintf(stderr, "MISCOMPILE: AST changed under GC!\n");
      return 1;
    }
    Ctx.popRoots(Compiler.anchorCount());
    ++Compiled;
  }
  std::printf("compiled %llu expressions across %llu GC cycles; "
              "all results stable\n",
              static_cast<unsigned long long>(Compiled),
              static_cast<unsigned long long>(Heap->completedCycles()));

  Heap->detachThread(Ctx);
  return 0;
}
