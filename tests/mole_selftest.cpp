//===- mole_selftest.cpp - cgc-mole analyzer self-test ------------------------//
///
/// \file
/// Drives the cgc-mole analysis engine (tools/cgc-mole/MoleCore.h) over
/// the fixture files in tests/mole_fixtures/ and checks that each rule
/// fires exactly where the fixtures say it should — and nowhere else.
///
/// Fixture format:
///   - line 1: `// fixture-as: <relpath>` — the tree-relative path the
///     fixture is analyzed as (M1 enforcement and the M2 allowlist are
///     path-sensitive).
///   - `// expect(M1)` on a line declares one expected finding there;
///     `expect(M1,M3)` declares several.
///   - `// expect-suppressed(M2)` declares an expected SUPPRESSED
///     finding (the escape-hatch fixtures).
///
/// On top of the fixtures, three seeded mutations of the real sources
/// check end-to-end sensitivity: un-rooting a live local (M1), bypassing
/// the write barrier (M2), and polling under a spinlock (M3) must each
/// produce a new finding when the whole tree is re-analyzed.
///
//===----------------------------------------------------------------------===//

#include "MoleCore.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace {

namespace fs = std::filesystem;
using cgcmole::Finding;
using cgcmole::Report;
using cgcmole::SourceFile;

using Marks = std::multiset<std::pair<std::string, int>>; // (rule, line)

struct Fixture {
  std::string FileName;  // fixture file name, for messages
  std::string AnalyzeAs; // tree-relative path from the directive
  std::string Content;
  Marks Expected;
  Marks ExpectedSuppressed;
};

/// Collects `marker(R1,R2)` occurrences on \p Line into \p Out.
void collectMarks(const std::string &Line, const std::string &Marker,
                  int LineNo, Marks &Out) {
  size_t At = Line.find(Marker);
  if (At == std::string::npos)
    return;
  size_t Close = Line.find(')', At);
  ASSERT_NE(Close, std::string::npos) << "unterminated " << Marker;
  std::stringstream RuleSS(
      Line.substr(At + Marker.size(), Close - At - Marker.size()));
  std::string Rule;
  while (std::getline(RuleSS, Rule, ','))
    Out.insert({Rule, LineNo});
}

std::vector<Fixture> loadFixtures() {
  std::vector<Fixture> Out;
  for (const auto &Entry : fs::directory_iterator(CGC_MOLE_FIXTURE_DIR)) {
    if (!Entry.is_regular_file())
      continue;
    Fixture F;
    F.FileName = Entry.path().filename().string();
    std::ifstream In(Entry.path());
    std::stringstream SS;
    SS << In.rdbuf();
    F.Content = SS.str();

    std::istringstream Lines(F.Content);
    std::string Line;
    int LineNo = 0;
    while (std::getline(Lines, Line)) {
      ++LineNo;
      if (LineNo == 1) {
        const std::string Directive = "// fixture-as: ";
        EXPECT_EQ(Line.rfind(Directive, 0), 0u)
            << F.FileName << ": first line must be '" << Directive
            << "<relpath>'";
        F.AnalyzeAs = Line.substr(Directive.size());
        continue;
      }
      // "expect-suppressed(" does not contain "expect(", so the two
      // markers never double-count.
      collectMarks(Line, "expect(", LineNo, F.Expected);
      collectMarks(Line, "expect-suppressed(", LineNo, F.ExpectedSuppressed);
    }
    Out.push_back(std::move(F));
  }
  std::sort(Out.begin(), Out.end(), [](const Fixture &A, const Fixture &B) {
    return A.FileName < B.FileName;
  });
  return Out;
}

std::string describe(const Marks &S) {
  std::string Out;
  for (const auto &[Rule, Line] : S)
    Out += "  " + Rule + " @ line " + std::to_string(Line) + "\n";
  return Out.empty() ? "  (none)\n" : Out;
}

Marks marksOf(const std::vector<Finding> &Fs) {
  Marks Out;
  for (const Finding &F : Fs)
    Out.insert({F.Rule, F.Line});
  return Out;
}

TEST(MoleSelfTest, FixturesMatchExactly) {
  auto Fixtures = loadFixtures();
  ASSERT_FALSE(Fixtures.empty()) << "no fixtures under " CGC_MOLE_FIXTURE_DIR;
  for (const Fixture &F : Fixtures) {
    Report R = cgcmole::analyze({{F.AnalyzeAs, F.Content}});
    for (const Finding &Fd : R.Findings)
      EXPECT_EQ(Fd.File, F.AnalyzeAs);
    EXPECT_EQ(marksOf(R.Findings), F.Expected)
        << F.FileName << " (as " << F.AnalyzeAs << ")\nexpected:\n"
        << describe(F.Expected) << "actual:\n"
        << describe(marksOf(R.Findings));
    EXPECT_EQ(marksOf(R.Suppressed), F.ExpectedSuppressed)
        << F.FileName << " (as " << F.AnalyzeAs << ") suppressed\nexpected:\n"
        << describe(F.ExpectedSuppressed) << "actual:\n"
        << describe(marksOf(R.Suppressed));
  }
}

TEST(MoleSelfTest, EveryRuleIsCoveredByAFixture) {
  std::set<std::string> Fired;
  std::set<std::string> Suppressed;
  for (const Fixture &F : loadFixtures()) {
    for (const auto &[Rule, Line] : F.Expected)
      Fired.insert(Rule);
    for (const auto &[Rule, Line] : F.ExpectedSuppressed)
      Suppressed.insert(Rule);
  }
  for (const char *Rule : {"M1", "M2", "M3", "NS"})
    EXPECT_TRUE(Fired.count(Rule)) << "no fixture exercises rule " << Rule;
  EXPECT_FALSE(Suppressed.empty()) << "no fixture exercises the escape hatch";
}

TEST(MoleSelfTest, SuppressedFindingsAreCountedPerRule) {
  for (const Fixture &F : loadFixtures()) {
    if (F.FileName != "escape_hatch.cpp")
      continue;
    Report R = cgcmole::analyze({{F.AnalyzeAs, F.Content}});
    auto ByRule = cgcmole::suppressedByRule(R);
    EXPECT_EQ(ByRule["M2"], 2u);
    EXPECT_TRUE(R.Findings.empty());
    return;
  }
  FAIL() << "escape_hatch.cpp fixture missing";
}

TEST(MoleSelfTest, FormatFinding) {
  Finding F{"M1", "workloads/X.cpp", 12, 7, "boom"};
  EXPECT_EQ(cgcmole::formatFinding(F), "workloads/X.cpp:12:7: [M1] boom");
}

TEST(MoleSelfTest, JsonOutput) {
  Report R;
  R.Findings.push_back({"M2", "gc/X.cpp", 3, 9, "a \"quoted\" msg"});
  R.NumFunctions = 5;
  R.NumMaySafepoint = 2;
  std::string Json = cgcmole::reportToJson(R);
  EXPECT_NE(Json.find("\"file\": \"gc/X.cpp\""), std::string::npos);
  EXPECT_NE(Json.find("\"line\": 3"), std::string::npos);
  EXPECT_NE(Json.find("\"column\": 9"), std::string::npos);
  EXPECT_NE(Json.find("\\\"quoted\\\""), std::string::npos);
  EXPECT_NE(Json.find("\"functions\": 5"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// The real tree: clean as-is, and sensitive to seeded bugs
//===----------------------------------------------------------------------===//

fs::path srcRoot() { return fs::path(CGC_MOLE_SRC_DIR); }

std::vector<SourceFile> loadTree() {
  std::vector<SourceFile> Files;
  std::vector<fs::path> Paths;
  for (const auto &Entry : fs::recursive_directory_iterator(srcRoot())) {
    if (!Entry.is_regular_file())
      continue;
    std::string Ext = Entry.path().extension().string();
    if (Ext == ".h" || Ext == ".cpp")
      Paths.push_back(Entry.path());
  }
  std::sort(Paths.begin(), Paths.end());
  for (const fs::path &P : Paths) {
    std::ifstream In(P);
    std::stringstream SS;
    SS << In.rdbuf();
    Files.push_back({fs::relative(P, srcRoot()).generic_string(), SS.str()});
  }
  return Files;
}

TEST(MoleSelfTest, TreeOnRealSourcesIsClean) {
  // The same invariant the `cgc_mole` ctest enforces, reachable from the
  // unit suite so a violating edit fails close to the change.
  ASSERT_TRUE(fs::exists(srcRoot())) << srcRoot();
  Report R = cgcmole::analyzeTree(srcRoot().string());
  for (const Finding &F : R.Findings)
    ADD_FAILURE() << cgcmole::formatFinding(F);
  EXPECT_GT(R.NumFunctions, 100u);
  EXPECT_GT(R.NumMaySafepoint, 10u);
}

/// Applies `s/Needle/Replacement/` (first occurrence) to \p RelPath in a
/// fresh copy of the tree and returns the re-analysis. Asserts the
/// needle exists so a refactor that moves it fails loudly here instead
/// of silently degrading the mutation test.
Report analyzeMutated(const std::string &RelPath, const std::string &Needle,
                      const std::string &Replacement) {
  std::vector<SourceFile> Files = loadTree();
  bool Applied = false;
  for (SourceFile &SF : Files) {
    if (SF.RelPath != RelPath)
      continue;
    size_t At = SF.Content.find(Needle);
    EXPECT_NE(At, std::string::npos)
        << RelPath << ": mutation needle not found: " << Needle;
    if (At == std::string::npos)
      break;
    SF.Content.replace(At, Needle.size(), Replacement);
    Applied = true;
  }
  EXPECT_TRUE(Applied) << RelPath << " not in tree";
  return cgcmole::analyze(Files);
}

size_t countRuleInFile(const Report &R, const std::string &Rule,
                       const std::string &File) {
  size_t N = 0;
  for (const Finding &F : R.Findings)
    if (F.Rule == Rule && F.File == File)
      ++N;
  return N;
}

TEST(MoleSelfTest, MutationUnrootedLocalIsCaught) {
  // Drop the shadow-stack anchor on `Left` in the bottom-up tree
  // builder: the local is then live, unrooted, across the parent's
  // allocation — the exact bug class M1 exists for.
  Report R = analyzeMutated("workloads/BinaryTrees.cpp",
                            "Ctx.pushRoot(Left);", ";");
  EXPECT_GE(countRuleInFile(R, "M1", "workloads/BinaryTrees.cpp"), 1u)
      << "un-rooting a live local must produce an M1 finding";
}

TEST(MoleSelfTest, MutationBarrierBypassIsCaught) {
  // Replace the barriered edge store with the raw primitive: concurrent
  // marking would lose the reference.
  Report R = analyzeMutated("workloads/GraphChurn.cpp",
                            "Heap.writeRef(Ctx, From, Slot, To);",
                            "From->storeRefRaw(Slot, To);");
  EXPECT_GE(countRuleInFile(R, "M2", "workloads/GraphChurn.cpp"), 1u)
      << "bypassing the write barrier must produce an M2 finding";
}

TEST(MoleSelfTest, MutationSafepointUnderLockIsCaught) {
  // Force a collection while holding the contexts spinlock in
  // attachThread: parking there would deadlock the STW protocol.
  Report R = analyzeMutated("runtime/GcHeap.cpp",
                            "SpinLockGuard Guard(ContextsLock);\n"
                            "    Contexts.push_back(std::move(Owned));",
                            "SpinLockGuard Guard(ContextsLock);\n"
                            "    Col->collectNow(Ctx);\n"
                            "    Contexts.push_back(std::move(Owned));");
  EXPECT_GE(countRuleInFile(R, "M3", "runtime/GcHeap.cpp"), 1u)
      << "a may-safepoint call under a SpinLockGuard must produce M3";
}

} // namespace
