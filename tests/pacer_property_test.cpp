//===- pacer_property_test.cpp - formula invariants across configs ---------------//
///
/// Property sweeps over the pacer configuration grid (K0 x Kmax x C):
/// invariants of Section 3's formulas that must hold for any sane
/// configuration.
///
//===----------------------------------------------------------------------===//

#include "gc/Pacer.h"

#include <gtest/gtest.h>

#include <string>
#include <tuple>

using namespace cgc;

namespace {

struct PacerPoint {
  double K0;
  double KmaxFactor;
  double C;
};

class PacerGrid : public ::testing::TestWithParam<PacerPoint> {
protected:
  static constexpr size_t HeapBytes = 64u << 20;
  GcOptions options() const {
    GcOptions Opts;
    Opts.HeapBytes = HeapBytes;
    Opts.TracingRate = GetParam().K0;
    Opts.KmaxFactor = GetParam().KmaxFactor;
    Opts.CorrectiveC = GetParam().C;
    return Opts;
  }
};

TEST_P(PacerGrid, RateBoundedByKmax) {
  Pacer P(options(), HeapBytes);
  double Kmax = GetParam().K0 * GetParam().KmaxFactor;
  for (uint64_t Traced = 0; Traced < (64u << 20);
       Traced += 7u << 20)
    for (uint64_t Free = 4096; Free < (64u << 20); Free = Free * 4 + 1) {
      double K = P.currentRate(Traced, Free);
      EXPECT_GE(K, 0.0);
      EXPECT_LE(K, Kmax + 1e-9);
    }
}

TEST_P(PacerGrid, RateMonotoneDecreasingInTracedWork) {
  // More work done => never owe a higher rate (at fixed free memory),
  // except for the negative-numerator Kmax clamp at the very end.
  Pacer P(options(), HeapBytes);
  uint64_t Free = 8u << 20;
  double Budget = P.estimateL() + P.estimateM();
  double Prev = P.currentRate(0, Free);
  for (double Frac = 0.1; Frac <= 0.99; Frac += 0.1) {
    double K = P.currentRate(static_cast<uint64_t>(Budget * Frac), Free);
    EXPECT_LE(K, Prev + 1e-9) << "at fraction " << Frac;
    Prev = K;
  }
}

TEST_P(PacerGrid, RateIsK0AtTheKickoffPoint) {
  Pacer P(options(), HeapBytes);
  size_t Threshold = P.kickoffThresholdBytes();
  double K = P.currentRate(0, Threshold);
  double K0 = GetParam().K0;
  // K = (L+M)/((L+M)/K0) = K0 exactly (up to integer truncation).
  EXPECT_NEAR(K, K0, 0.05 * K0 + 0.1);
}

TEST_P(PacerGrid, BehindScheduleRateExceedsOnSchedule) {
  Pacer P(options(), HeapBytes);
  size_t Threshold = P.kickoffThresholdBytes();
  if (Threshold < 8)
    GTEST_SKIP() << "degenerate threshold";
  double OnSchedule = P.currentRate(0, Threshold);
  double Behind = P.currentRate(0, Threshold / 2);
  EXPECT_GE(Behind, OnSchedule - 1e-9);
}

TEST_P(PacerGrid, SmoothedEstimatesTrackSamples) {
  Pacer P(options(), HeapBytes);
  for (int I = 0; I < 30; ++I)
    P.endCycle(10u << 20, 1u << 20);
  EXPECT_NEAR(P.estimateL(), static_cast<double>(10u << 20), 1024);
  EXPECT_NEAR(P.estimateM(), static_cast<double>(1u << 20), 1024);
  double K0 = GetParam().K0;
  EXPECT_NEAR(static_cast<double>(P.kickoffThresholdBytes()),
              (10.0 + 1.0) * (1u << 20) / K0, 4096);
}

TEST_P(PacerGrid, BackgroundCoverageDrivesRateToZero) {
  Pacer P(options(), HeapBytes);
  // Feed windows where background tracing far outpaces allocation.
  for (int I = 0; I < 8; ++I) {
    P.noteBackgroundTrace(512u << 20);
    P.noteAllocation(1u << 20);
  }
  size_t Threshold = P.kickoffThresholdBytes();
  EXPECT_DOUBLE_EQ(P.currentRate(0, Threshold ? Threshold : 1), 0.0);
}

std::string pacerName(const ::testing::TestParamInfo<PacerPoint> &Info) {
  auto Fmt = [](double V) {
    std::string S = std::to_string(V);
    for (char &Ch : S)
      if (Ch == '.' || Ch == '-')
        Ch = '_';
    return S.substr(0, 4);
  };
  return "K" + Fmt(Info.param.K0) + "F" + Fmt(Info.param.KmaxFactor) + "C" +
         Fmt(Info.param.C);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PacerGrid,
    ::testing::Values(PacerPoint{1.0, 2.0, 2.0}, PacerPoint{4.0, 2.0, 2.0},
                      PacerPoint{8.0, 2.0, 2.0}, PacerPoint{10.0, 2.0, 2.0},
                      PacerPoint{8.0, 1.5, 2.0}, PacerPoint{8.0, 4.0, 2.0},
                      PacerPoint{8.0, 2.0, 0.5}, PacerPoint{8.0, 2.0, 4.0},
                      PacerPoint{5.0, 3.0, 1.0}),
    pacerName);

} // namespace
