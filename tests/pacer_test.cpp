//===- pacer_test.cpp - kickoff/progress formula units --------------------------//

#include "gc/Pacer.h"
#include "runtime/GcHeap.h"

#include <gtest/gtest.h>

using namespace cgc;

namespace {

GcOptions baseOptions() {
  GcOptions Opts;
  Opts.HeapBytes = 100 << 20;
  Opts.TracingRate = 8.0;   // K0
  Opts.KmaxFactor = 2.0;    // Kmax = 16
  Opts.CorrectiveC = 2.0;
  Opts.SmoothingAlpha = 0.5;
  Opts.SeedLFraction = 0.30;
  Opts.SeedMFraction = 0.02;
  return Opts;
}

TEST(PacerTest, KickoffThresholdFromSeeds) {
  GcOptions Opts = baseOptions();
  Pacer P(Opts, Opts.HeapBytes);
  double L = 0.30 * Opts.HeapBytes;
  double M = 0.02 * Opts.HeapBytes;
  EXPECT_EQ(P.kickoffThresholdBytes(),
            static_cast<size_t>((L + M) / 8.0));
}

TEST(PacerTest, KickoffHeadroomScalesThreshold) {
  GcOptions Opts = baseOptions();
  Pacer Base(Opts, Opts.HeapBytes);
  Opts.KickoffHeadroom = 2.0;
  Pacer Early(Opts, Opts.HeapBytes);
  // Headroom 2 starts the cycle at twice the free-memory threshold:
  // earlier kickoff buys request-latency headroom in the SLO benches.
  EXPECT_EQ(Early.kickoffThresholdBytes(), 2 * Base.kickoffThresholdBytes());
  size_t Between =
      Base.kickoffThresholdBytes() + (Base.kickoffThresholdBytes() / 2);
  EXPECT_FALSE(Base.shouldKickoff(Between));
  EXPECT_TRUE(Early.shouldKickoff(Between));
  // Zero/negative headroom is nonsense; the pacer normalizes it to 1.
  Opts.KickoffHeadroom = 0.0;
  Pacer Degenerate(Opts, Opts.HeapBytes);
  EXPECT_EQ(Degenerate.kickoffThresholdBytes(), Base.kickoffThresholdBytes());
}

TEST(PacerTest, ProgressFormulaBasic) {
  GcOptions Opts = baseOptions();
  Pacer P(Opts, Opts.HeapBytes);
  double L = P.estimateL(), M = P.estimateM();
  uint64_t Traced = 0;
  uint64_t Free = static_cast<uint64_t>((L + M) / 8.0); // At kickoff.
  // K = (M + L - T) / F = K0 at the kickoff point.
  EXPECT_NEAR(P.currentRate(Traced, Free), 8.0, 1e-6);
  // Halfway through tracing with the same free memory, K halves.
  EXPECT_NEAR(P.currentRate(static_cast<uint64_t>((L + M) / 2), Free), 4.0,
              1e-6);
  // All predicted work done: no more tracing required.
  EXPECT_DOUBLE_EQ(P.currentRate(static_cast<uint64_t>(L + M), Free), 0.0);
}

TEST(PacerTest, NegativeNumeratorClampsToKmax) {
  GcOptions Opts = baseOptions();
  Pacer P(Opts, Opts.HeapBytes);
  double L = P.estimateL(), M = P.estimateM();
  // Traced more than predicted: underestimation; K = Kmax.
  uint64_t Traced = static_cast<uint64_t>(L + M) + 1000;
  EXPECT_DOUBLE_EQ(P.currentRate(Traced, 1 << 20), 16.0);
}

TEST(PacerTest, CorrectiveTermWhenBehindSchedule) {
  GcOptions Opts = baseOptions();
  Pacer P(Opts, Opts.HeapBytes);
  double L = P.estimateL(), M = P.estimateM();
  // Free memory is half of what the kickoff point assumed: K = 2 K0 > K0,
  // so the corrective term applies: K + (K - K0) * C = 16 + 8*2 = 32,
  // clamped to Kmax = 16.
  uint64_t Free = static_cast<uint64_t>((L + M) / 16.0);
  EXPECT_DOUBLE_EQ(P.currentRate(0, Free), 16.0);
  // Mildly behind (K = 1.25 K0 = 10): 10 + 2*2 = 14, under Kmax.
  uint64_t Free2 = static_cast<uint64_t>((L + M) / 10.0);
  EXPECT_NEAR(P.currentRate(0, Free2), 14.0, 0.01);
}

TEST(PacerTest, BackgroundRateSubtracted) {
  GcOptions Opts = baseOptions();
  Pacer P(Opts, Opts.HeapBytes);
  // Feed a Best window: background traced 3 bytes per allocated byte.
  P.noteBackgroundTrace(3u << 20);
  P.noteAllocation(1u << 20); // Window (256 KB) closes during this call.
  EXPECT_NEAR(P.estimateBest(), 3.0, 1e-6);
  double L = P.estimateL(), M = P.estimateM();
  uint64_t Free = static_cast<uint64_t>((L + M) / 8.0);
  // Raw K = 8, minus Best 3 -> 5.
  EXPECT_NEAR(P.currentRate(0, Free), 5.0, 1e-6);
  // Background covering everything: zero mutator tracing.
  P.noteBackgroundTrace(40u << 20);
  P.noteAllocation(1u << 20);
  EXPECT_GT(P.estimateBest(), 8.0);
  EXPECT_DOUBLE_EQ(P.currentRate(0, Free), 0.0);
}

TEST(PacerTest, EndCycleFoldsSmoothedSamples) {
  GcOptions Opts = baseOptions();
  Pacer P(Opts, Opts.HeapBytes);
  P.endCycle(10 << 20, 1 << 20);
  // First sample replaces the seed.
  EXPECT_DOUBLE_EQ(P.estimateL(), static_cast<double>(10 << 20));
  EXPECT_DOUBLE_EQ(P.estimateM(), static_cast<double>(1 << 20));
  P.endCycle(20 << 20, 3 << 20);
  EXPECT_DOUBLE_EQ(P.estimateL(), static_cast<double>(15 << 20));
  EXPECT_DOUBLE_EQ(P.estimateM(), static_cast<double>(2 << 20));
  // Threshold tracks the new estimates.
  EXPECT_EQ(P.kickoffThresholdBytes(),
            static_cast<size_t>((15.0 + 2.0) * (1 << 20) / 8.0));
}

TEST(PacerTest, WorkForScalesWithAllocation) {
  GcOptions Opts = baseOptions();
  Pacer P(Opts, Opts.HeapBytes);
  double L = P.estimateL(), M = P.estimateM();
  uint64_t Free = static_cast<uint64_t>((L + M) / 8.0);
  EXPECT_EQ(P.workFor(1000, 0, Free), 8000u);
  EXPECT_EQ(P.workFor(0, 0, Free), 0u);
}

TEST(PacerTest, TracingRateOneStartsImmediately) {
  // At tracing rate 1 the threshold is L + M, which exceeds the free
  // space right after a collection on a 60%-occupied heap — the paper's
  // observation that TR1 starts the concurrent phase immediately.
  GcOptions Opts = baseOptions();
  Opts.TracingRate = 1.0;
  Pacer P(Opts, Opts.HeapBytes);
  P.endCycle(60 << 20, 2 << 20); // Live 60 MB of 100 MB heap.
  EXPECT_GE(P.kickoffThresholdBytes(), 40u << 20);
}

TEST(PacerTest, RateNeverNegative) {
  GcOptions Opts = baseOptions();
  Pacer P(Opts, Opts.HeapBytes);
  P.noteBackgroundTrace(100u << 20);
  P.noteAllocation(1u << 20);
  for (uint64_t Traced : {0ull, 1ull << 20, 100ull << 20})
    for (uint64_t Free : {1ull << 10, 1ull << 20, 50ull << 20})
      EXPECT_GE(P.currentRate(Traced, Free), 0.0);
}

//===----------------------------------------------------------------------===//
// Shard-stranding awareness: kickoff keys off refillable free bytes
//===----------------------------------------------------------------------===//

TEST(PacerTest, ShouldKickoffComparesAgainstThreshold) {
  GcOptions Opts = baseOptions();
  Pacer P(Opts, Opts.HeapBytes);
  size_t T = P.kickoffThresholdBytes();
  ASSERT_GT(T, 0u);
  EXPECT_FALSE(P.shouldKickoff(T + 1));
  EXPECT_TRUE(P.shouldKickoff(T));
  EXPECT_TRUE(P.shouldKickoff(0));
}

TEST(PacerTest, FragmentationKicksOffWhileRawFreeLooksHealthy) {
  // The regression the refillable counter exists for: a heap whose free
  // bytes sit in sub-refill fragments. Judged by raw free space the
  // pacer would wait; judged by refillable space it must start now,
  // because mutators cannot refill their caches from fragments and
  // would otherwise slam into allocation failure before tracing ends.
  GcOptions Opts = baseOptions();
  Pacer P(Opts, Opts.HeapBytes);
  size_t T = P.kickoffThresholdBytes();
  size_t RawFree = 2 * T + (1u << 20); // comfortably above threshold
  size_t Refillable = T / 2;           // but almost none of it usable
  EXPECT_FALSE(P.shouldKickoff(RawFree))
      << "sanity: raw free alone would not trigger";
  EXPECT_TRUE(P.shouldKickoff(Refillable))
      << "fragmented heap must trigger kickoff";
}

/// --- Pacer-visible accounting with the size-class fast path -----------
///
/// The fast path parks free memory in two places the free lists cannot
/// see: per-thread size-class caches and per-shard remote-free queues.
/// Both are still allocation capacity. If the pacer's kickoff input
/// missed them, a cache-heavy steady state would look like imminent
/// exhaustion and kick cycles off early and often (and the watchdog
/// would cry laggard on a healthy heap). These are the regressions for
/// that accounting.

TEST(PacerAccountingTest, ClassCacheBytesStayPacerVisible) {
  GcOptions Opts;
  Opts.HeapBytes = 8u << 20;
  Opts.Kind = CollectorKind::StopTheWorld;
  Opts.FastPathSizeClasses = true;
  auto Heap = GcHeap::create(Opts);
  MutatorContext &Ctx = Heap->attachThread();

  GcCore &Core = Heap->core();
  const size_t VisibleBefore = Core.pacerVisibleFreeBytes();

  // One small allocation triggers a batch class refill that parks a
  // cache's worth of chunks out of the free lists.
  ASSERT_NE(Heap->allocate(Ctx, 16, 0), nullptr);
  const size_t Cached = Ctx.cache().cachedClassBytes();
  ASSERT_GT(Cached, 0u) << "refill must park chunks in the class cache";

  // The raw refillable counter no longer sees the parked bytes...
  EXPECT_LE(Core.Heap.refillableFreeBytes() + Cached, VisibleBefore);
  // ...but the pacer-visible aggregate still does: it may only have
  // shrunk by what was actually handed to objects, never by the whole
  // parked batch.
  const size_t VisibleAfter = Core.pacerVisibleFreeBytes();
  EXPECT_EQ(VisibleAfter,
            Core.Heap.refillableFreeBytes() + Cached);
  // Allowance covers the one object handed out plus carve crumbs —
  // far below the full parked batch, so this fails if the aggregate
  // ever degrades to the raw refillable counter.
  EXPECT_GE(VisibleAfter + 4096, VisibleBefore)
      << "pacer lost sight of parked cache bytes";

  Heap->detachThread(Ctx);
}

TEST(PacerAccountingTest, RemoteQueueBytesStayPacerVisible) {
  // HeapSpace level: bytes routed to a shard's remote-free queue must
  // keep counting in freeBytes() and refillableFreeBytes(), which feed
  // the pacer's kickoff decision and the watchdog's lag check.
  HeapSpace Heap(1u << 20, /*FreeListShards=*/2, nullptr,
                 /*RefillThresholdBytes=*/0, /*RouteRemoteFrees=*/true);
  const size_t Total = Heap.freeBytes();

  size_t Granted = 0;
  uint8_t *P = Heap.freeList().allocateUpTo(64, 1024, Granted, 0);
  ASSERT_NE(P, nullptr);
  EXPECT_EQ(Heap.freeBytes(), Total - Granted);

  Heap.releaseRange(P, Granted); // Routes to the owning shard's queue.
  ASSERT_GT(Heap.remoteQueuedBytes(), 0u) << "range must be queued";
  EXPECT_EQ(Heap.freeBytes(), Total)
      << "queued bytes fell out of freeBytes()";
  EXPECT_EQ(Heap.refillableFreeBytes(), Total)
      << "queued bytes fell out of refillableFreeBytes()";
}

} // namespace
