//===- soak_test.cpp - mixed-workload endurance ----------------------------------//
///
/// A longer mixed run: warehouse transactions, graph churn and compiler
/// threads share one heap with the mostly-concurrent collector,
/// compaction every few cycles and per-cycle verification. Anything the
/// focused tests miss in cross-feature interaction tends to surface
/// here.
///
//===----------------------------------------------------------------------===//

#include "TestSeed.h"
#include "runtime/GcHeap.h"
#include "workloads/BinaryTrees.h"
#include "workloads/Compiler.h"
#include "workloads/GraphChurn.h"
#include "workloads/Warehouse.h"

#include <gtest/gtest.h>

#include <thread>

using namespace cgc;

namespace {

TEST(SoakTest, MixedWorkloadsShareOneHeap) {
  // Per-workload seeds derive from one base seed so a single CGC_SEED
  // value reproduces the whole run.
  uint64_t Seed = testSeed(0x5eed, "SoakTest.MixedWorkloadsShareOneHeap");
  ScopedSeedLog SeedLog(Seed, "SoakTest.MixedWorkloadsShareOneHeap");
  GcOptions Opts;
  Opts.Kind = CollectorKind::MostlyConcurrent;
  Opts.HeapBytes = 24u << 20;
  Opts.BackgroundThreads = 2;
  Opts.GcWorkerThreads = 2;
  Opts.CompactEveryNCycles = 3;
  Opts.EvacuationAreaBytes = 1u << 20;
  Opts.VerifyEachCycle = true;
  auto Heap = GcHeap::create(Opts);

  constexpr uint64_t Millis = 4000;

  WarehouseConfig WConfig;
  WConfig.Threads = 2;
  WConfig.DurationMs = Millis;
  WConfig.Seed = Seed;
  WConfig.sizeLiveSet(6u << 20);
  WarehouseWorkload Warehouse(*Heap, WConfig);

  GraphChurnConfig GConfig;
  GConfig.Threads = 2;
  GConfig.DurationMs = Millis;
  GConfig.Seed = Seed + 1;
  GraphChurnWorkload Graph(*Heap, GConfig);

  CompilerConfig CConfig;
  CConfig.Threads = 1;
  CConfig.DurationMs = Millis;
  CConfig.RetainedUnits = 4000;
  CConfig.Seed = Seed + 2;
  CompilerWorkload Compiler(*Heap, CConfig);

  BinaryTreesConfig BConfig;
  BConfig.Threads = 1;
  BConfig.DurationMs = Millis;
  BConfig.LongLivedDepth = 11;
  BConfig.Seed = Seed + 3;
  BinaryTreesWorkload Trees(*Heap, BConfig);

  WorkloadResult WR, GR, CR, BR;
  std::thread T1([&] { WR = Warehouse.run(); });
  std::thread T2([&] { GR = Graph.run(); });
  std::thread T3([&] { CR = Compiler.run(); });
  std::thread T4([&] { BR = Trees.run(); });
  T1.join();
  T2.join();
  T3.join();
  T4.join();

  EXPECT_FALSE(WR.IntegrityFailure);
  EXPECT_FALSE(GR.IntegrityFailure) << "graph nonce mismatch";
  EXPECT_FALSE(CR.IntegrityFailure) << "miscompiled expression";
  EXPECT_FALSE(BR.IntegrityFailure) << "tree checksum changed";
  EXPECT_GT(WR.Transactions, 0u);
  EXPECT_GT(GR.Transactions, 0u);
  EXPECT_GT(CR.Transactions, 0u);
  EXPECT_GT(BR.Transactions, 0u);
  EXPECT_GE(Heap->completedCycles(), 3u);

  uint64_t Evacuated = 0;
  bool AnyConcurrent = false;
  for (const CycleRecord &R : Heap->stats().snapshot()) {
    Evacuated += R.EvacuatedObjects;
    AnyConcurrent |= R.Concurrent;
  }
  EXPECT_TRUE(AnyConcurrent);
  EXPECT_GT(Evacuated, 0u);

  VerifyResult V = Heap->verifyNow(nullptr);
  EXPECT_TRUE(V.Ok) << V.Error;
  EXPECT_EQ(V.ReachableObjects, 0u) << "all workloads detached";
}

} // namespace
