//===- bitvector_test.cpp - mark/allocation bit vector units -------------------//

#include "heap/BitVector8.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <thread>
#include <vector>

using namespace cgc;

namespace {

/// Fixture owning an aligned fake heap region.
class BitVectorTest : public ::testing::Test {
protected:
  static constexpr size_t HeapBytes = 1u << 16;
  void SetUp() override {
    Mem.reset(static_cast<uint8_t *>(std::aligned_alloc(4096, HeapBytes)));
    Bits = std::make_unique<BitVector8>(Mem.get(), HeapBytes);
  }
  uint8_t *addr(size_t GranuleIndex) {
    return Mem.get() + GranuleIndex * GranuleBytes;
  }
  struct FreeDeleter {
    void operator()(uint8_t *P) const { std::free(P); }
  };
  std::unique_ptr<uint8_t, FreeDeleter> Mem;
  std::unique_ptr<BitVector8> Bits;
};

TEST_F(BitVectorTest, TestAndSetWinsOnce) {
  EXPECT_FALSE(Bits->test(addr(5)));
  EXPECT_TRUE(Bits->testAndSet(addr(5)));
  EXPECT_FALSE(Bits->testAndSet(addr(5)));
  EXPECT_TRUE(Bits->test(addr(5)));
  EXPECT_FALSE(Bits->test(addr(4)));
  EXPECT_FALSE(Bits->test(addr(6)));
}

TEST_F(BitVectorTest, SetAndClear) {
  Bits->set(addr(100));
  EXPECT_TRUE(Bits->test(addr(100)));
  Bits->clear(addr(100));
  EXPECT_FALSE(Bits->test(addr(100)));
}

TEST_F(BitVectorTest, ClearAll) {
  for (size_t I = 0; I < 100; I += 7)
    Bits->set(addr(I));
  Bits->clearAll();
  for (size_t I = 0; I < 100; ++I)
    EXPECT_FALSE(Bits->test(addr(I)));
}

TEST_F(BitVectorTest, FindNextSetWithinWord) {
  Bits->set(addr(10));
  EXPECT_EQ(Bits->findNextSet(addr(0), addr(64)), addr(10));
  EXPECT_EQ(Bits->findNextSet(addr(10), addr(64)), addr(10));
  EXPECT_EQ(Bits->findNextSet(addr(11), addr(64)), nullptr);
}

TEST_F(BitVectorTest, FindNextSetAcrossWords) {
  Bits->set(addr(200));
  EXPECT_EQ(Bits->findNextSet(addr(0), addr(4096)), addr(200));
  // Bit exactly at range end is excluded.
  EXPECT_EQ(Bits->findNextSet(addr(0), addr(200)), nullptr);
  EXPECT_EQ(Bits->findNextSet(addr(0), addr(201)), addr(200));
}

TEST_F(BitVectorTest, FindPrevSet) {
  EXPECT_EQ(Bits->findPrevSet(addr(100)), nullptr);
  Bits->set(addr(3));
  Bits->set(addr(70));
  EXPECT_EQ(Bits->findPrevSet(addr(100)), addr(70));
  EXPECT_EQ(Bits->findPrevSet(addr(70)), addr(3));
  EXPECT_EQ(Bits->findPrevSet(addr(4)), addr(3));
  EXPECT_EQ(Bits->findPrevSet(addr(3)), nullptr);
  EXPECT_EQ(Bits->findPrevSet(Mem.get()), nullptr);
}

TEST_F(BitVectorTest, ClearRangeWithinWord) {
  for (size_t I = 0; I < 64; ++I)
    Bits->set(addr(I));
  Bits->clearRange(addr(10), addr(20));
  for (size_t I = 0; I < 64; ++I)
    EXPECT_EQ(Bits->test(addr(I)), I < 10 || I >= 20) << I;
}

TEST_F(BitVectorTest, ClearRangeAcrossWords) {
  for (size_t I = 0; I < 300; ++I)
    Bits->set(addr(I));
  Bits->clearRange(addr(50), addr(250));
  for (size_t I = 0; I < 300; ++I)
    EXPECT_EQ(Bits->test(addr(I)), I < 50 || I >= 250) << I;
}

TEST_F(BitVectorTest, ClearRangeEmptyAndWordAligned) {
  Bits->set(addr(64));
  Bits->clearRange(addr(64), addr(64)); // Empty range: no-op.
  EXPECT_TRUE(Bits->test(addr(64)));
  Bits->clearRange(addr(64), addr(128)); // Exactly one word.
  EXPECT_FALSE(Bits->test(addr(64)));
}

TEST_F(BitVectorTest, CountInRange) {
  Bits->set(addr(1));
  Bits->set(addr(65));
  Bits->set(addr(130));
  EXPECT_EQ(Bits->countInRange(addr(0), addr(200)), 3u);
  EXPECT_EQ(Bits->countInRange(addr(2), addr(130)), 1u);
  EXPECT_EQ(Bits->countInRange(addr(2), addr(131)), 2u);
}

TEST_F(BitVectorTest, ForEachSetInRangeOrderAndEarlyStop) {
  Bits->set(addr(5));
  Bits->set(addr(7));
  Bits->set(addr(300));
  std::vector<uint8_t *> Seen;
  Bits->forEachSetInRange(addr(0), addr(4096), [&](uint8_t *P) {
    Seen.push_back(P);
    return true;
  });
  ASSERT_EQ(Seen.size(), 3u);
  EXPECT_EQ(Seen[0], addr(5));
  EXPECT_EQ(Seen[1], addr(7));
  EXPECT_EQ(Seen[2], addr(300));

  size_t Count = 0;
  Bits->forEachSetInRange(addr(0), addr(4096), [&](uint8_t *) {
    ++Count;
    return Count < 2; // Early stop after two.
  });
  EXPECT_EQ(Count, 2u);
}

TEST_F(BitVectorTest, ConcurrentTestAndSetExactlyOneWinner) {
  constexpr int NumThreads = 4;
  constexpr size_t NumGranules = 2048;
  std::vector<int> Wins(NumThreads, 0);
  std::vector<std::thread> Threads;
  for (int T = 0; T < NumThreads; ++T)
    Threads.emplace_back([&, T] {
      for (size_t I = 0; I < NumGranules; ++I)
        if (Bits->testAndSet(addr(I)))
          ++Wins[T];
    });
  for (auto &Th : Threads)
    Th.join();
  int Total = 0;
  for (int W : Wins)
    Total += W;
  EXPECT_EQ(Total, static_cast<int>(NumGranules));
  for (size_t I = 0; I < NumGranules; ++I)
    EXPECT_TRUE(Bits->test(addr(I)));
}

/// Property sweep: clearRange leaves exactly the complement set, for a
/// grid of (start, length) combinations crossing word boundaries.
class ClearRangeSweep
    : public BitVectorTest,
      public ::testing::WithParamInterface<std::pair<size_t, size_t>> {};

TEST_P(ClearRangeSweep, ComplementPreserved) {
  auto [Start, Len] = GetParam();
  for (size_t I = 0; I < 512; ++I)
    Bits->set(addr(I));
  Bits->clearRange(addr(Start), addr(Start + Len));
  for (size_t I = 0; I < 512; ++I)
    EXPECT_EQ(Bits->test(addr(I)), I < Start || I >= Start + Len) << I;
}

INSTANTIATE_TEST_SUITE_P(
    Boundaries, ClearRangeSweep,
    ::testing::Values(std::pair<size_t, size_t>{0, 1},
                      std::pair<size_t, size_t>{0, 64},
                      std::pair<size_t, size_t>{1, 63},
                      std::pair<size_t, size_t>{63, 1},
                      std::pair<size_t, size_t>{63, 2},
                      std::pair<size_t, size_t>{64, 64},
                      std::pair<size_t, size_t>{60, 200},
                      std::pair<size_t, size_t>{127, 130},
                      std::pair<size_t, size_t>{0, 512},
                      std::pair<size_t, size_t>{511, 1}));

} // namespace
