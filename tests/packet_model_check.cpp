//===- packet_model_check.cpp - Packet-protocol model checker -----------------//
///
/// \file
/// Exhaustive interleaving exploration of an abstract model of the
/// work-packet protocol (PacketPool + the drain/termination logic in
/// CollectorBase::drainAllPackets / parallelFinalMark), checking the
/// Section 4.3 termination claim:
///
///   termination is declared iff every packet is empty and no published
///   reference has been lost.
///
/// The model captures exactly the races the real code exhibits:
///
///  - Each sub-pool (Empty / Non-empty / Almost-full / Deferred) is a
///    LIFO stack; push and pop are single atomic steps (the real Treiber
///    CAS is linearizable, and the ABA tag makes it behave like one).
///  - The per-sub-pool counters TRAIL the stack operations: pop and its
///    fetch_sub, push and its fetch_add, are separate micro-steps, so
///    counters transiently disagree with stack membership — the benign
///    races the paper describes. (They can even go transiently negative,
///    hence signed counters here; the real uint32 wraps, which is
///    equally != NumPackets.)
///  - The Section 5.1 publish fence is an explicit step: entries written
///    into a held packet are "unpublished" (visible only to the writer)
///    until the fence publishes them. A consumer that pops the packet
///    sees only published entries. Disabling the fence models the lost-
///    reference bug the paper's fence discipline exists to prevent.
///  - Packet-pool exhaustion takes the mark-and-dirty-card fallback: the
///    entry leaves the packet system into a dirty-card counter and is
///    re-injected by the cleaner before (or between) drain rounds,
///    mirroring the parallelFinalMark outer loop.
///  - Mutator-side deferral: a flusher actor acquires an Empty side
///    packet, fills it, and parks it in Deferred; the controller
///    redistributes Deferred before the drain, as the real collector
///    does after the final handshake.
///  - Termination: a worker holding nothing that finds both input
///    probes empty reads EmptyCount (one atomic load) and declares done
///    iff it equals NumPackets. Reads are gated to the STW drain phase
///    (after the flusher handshake + redistribution), as in the real
///    final mark. All-workers-declared with dirty cards pending loops
///    back through re-injection, like the parallelFinalMark loop.
///
/// Simplifications (all conservative for the checked property):
///  - Output acquisition tries only the Empty sub-pool before the
///    overflow fallback (the real getOutput also tries Non-empty /
///    Almost-full; that only reduces overflows).
///  - A consumer never observes another thread's unpublished entries
///    (real hardware may eventually show them; "never" is the worst
///    case for losing work, and same-thread re-pops are rare).
///
/// Checked properties over the FULL reachable state space:
///  - Safety: in every state where all workers have declared, no packet
///    holds a published or unpublished entry (dirty cards are allowed:
///    the outer loop re-injects them and rolls the workers back in).
///  - Liveness (existential): a terminal success state — all declared,
///    no dirty cards, controller finished — is reachable.
///
/// Mutation smoke tests flip one protocol rule at a time and assert the
/// checker notices: NoPublishFence (skip Section 5.1 publish),
/// DeferredCountsAsEmpty (putDeferred bumps EmptyCount — corrupts the
/// termination counter), SkipRedistribute (deferred packets never
/// return to circulation before the final drain).
///
//===----------------------------------------------------------------------===//

#include <array>
#include <cstdint>
#include <cstring>
#include <string>
#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

namespace {

constexpr int MaxP = 4;  // packets
constexpr int MaxW = 3;  // drain workers
constexpr int Cap = 3;   // entries per packet; almost-full at >= 2

enum Mutation : uint8_t {
  None,
  NoPublishFence,        // put/putDeferred skip the Section 5.1 publish
  DeferredCountsAsEmpty, // putDeferred's trailing inc hits EmptyCount
  SkipRedistribute       // controller never redistributes Deferred
};

struct Config {
  int Workers = 2;
  int Packets = 3;
  int RootEntries = 2;   // pre-published entries in packet 0
  int SpawnBudget = 2;   // how many child entries tracing may create
  int FlushBatches = 1;  // side-packet fills by the mutator flusher
  int FillPerBatch = 1;  // entries per flush
  Mutation Mut = None;
};

enum Pool : uint8_t { PE = 0, PN = 1, PA = 2, PD = 3 };

// Worker program counters. put = push and trailing inc as separate
// steps; acquisition = pop and trailing dec as separate steps.
enum WPc : uint8_t {
  WIdle,        // probe Almost-full
  WTriedAF,     // probe Non-empty
  WDecIn,       // trailing fetch_sub for the input pop
  WProcess,     // consume published entries from held input
  WPlaceChild,  // route one spawned child to an output packet
  WDecOut,      // trailing fetch_sub for the output pop
  WPutInPush,   // push exhausted input to its sub-pool
  WPutInInc,    // trailing fetch_add for that push
  WPutOutFence, // Section 5.1 publish before pushing the output
  WPutOutPush,
  WPutOutInc,
  WMaybeDeclare, // both probes failed: read EmptyCount once
  WDone
};

enum FPc : uint8_t { FIdle, FDecE, FFill, FFence, FPush, FInc, FDone };

enum CPc : uint8_t {
  CWait,       // handshake: wait for the flusher to quiesce
  CRedist,     // pop Deferred until empty
  CRedistDec,
  CRedistPush,
  CRedistInc,
  CInject,     // re-inject dirty cards; then flip to the drain phase
  CInjDec,
  CInjFill,
  CInjFence,
  CInjPush,
  CInjInc,
  CDone
};

// Byte-only POD: no padding, so memcmp/byte-hash are exact.
struct Worker {
  uint8_t Pc = WIdle;
  uint8_t HeldIn = 0;  // packet index + 1, 0 = none
  uint8_t HeldOut = 0;
  uint8_t PendPool = 0;   // sub-pool for the trailing dec/inc step
  uint8_t PendChild = 0;  // a spawned child still needs placing
  bool operator<(const Worker &O) const {
    return std::memcmp(this, &O, sizeof(Worker)) < 0;
  }
};

struct State {
  uint8_t Pub[MaxP] = {};    // published entries
  uint8_t Unpub[MaxP] = {};  // written but not yet fence-published
  uint8_t Stack[4][MaxP] = {};
  uint8_t Size[4] = {};
  int8_t Count[4] = {};      // trailing sub-pool counters
  uint8_t Dirty = 0;         // entries parked via mark-and-dirty-card
  uint8_t Spawn = 0;         // remaining spawn budget
  uint8_t Drain = 0;         // 0 = concurrent phase, 1 = STW drain
  uint8_t FPcV = FIdle, FHeld = 0, FBatches = 0;
  uint8_t CPcV = CWait, CHeld = 0, CPend = 0;
  Worker W[MaxW];

  bool operator==(const State &O) const {
    return std::memcmp(this, &O, sizeof(State)) == 0;
  }
};

static_assert(sizeof(State) ==
                  2 * MaxP + 4 * MaxP + 4 + 4 + 1 + 1 + 1 + 3 + 3 +
                      MaxW * sizeof(Worker),
              "State must stay padding-free for hashing");

struct StateHash {
  size_t operator()(const State &S) const {
    const uint8_t *B = reinterpret_cast<const uint8_t *>(&S);
    uint64_t H = 1469598103934665603ull;
    for (size_t I = 0; I < sizeof(State); ++I) {
      H ^= B[I];
      H *= 1099511628211ull;
    }
    return static_cast<size_t>(H);
  }
};

struct Result {
  size_t States = 0;
  bool CompletionReachable = false;
  std::vector<std::string> Violations;
};

class Model {
public:
  explicit Model(const Config &C) : C(C) {}

  Result run() {
    State Init;
    // Packet 0 carries the pre-published root entries (the STW stack
    // scan precedes concurrent tracing); everything else starts Empty.
    for (int I = 0; I < C.Packets; ++I) {
      if (I == 0 && C.RootEntries > 0) {
        Init.Pub[0] = static_cast<uint8_t>(C.RootEntries);
        push(Init, classify(Init.Pub[0]), 0);
        ++Init.Count[classify(Init.Pub[0])];
      } else {
        push(Init, PE, static_cast<uint8_t>(I));
        ++Init.Count[PE];
      }
    }
    Init.Spawn = static_cast<uint8_t>(C.SpawnBudget);
    Init.FBatches = static_cast<uint8_t>(C.FlushBatches);

    canonicalize(Init);
    Seen.insert(Init);
    std::vector<State> Stack{Init};
    while (!Stack.empty()) {
      State S = Stack.back();
      Stack.pop_back();
      ++R.States;
      inspect(S);
      Succ.clear();
      expand(S);
      for (State &N : Succ) {
        canonicalize(N);
        if (Seen.insert(N).second)
          Stack.push_back(N);
      }
    }
    return R;
  }

private:
  static uint8_t classify(int Entries) {
    if (Entries == 0)
      return PE;
    return Entries * 2 >= Cap ? PA : PN;
  }

  static void push(State &S, uint8_t Pool, uint8_t Idx) {
    S.Stack[Pool][S.Size[Pool]++] = Idx;
  }
  /// Pops the stack top into \p Idx; false when empty. One atomic step,
  /// like the real tagged CAS.
  static bool pop(State &S, uint8_t Pool, uint8_t &Idx) {
    if (S.Size[Pool] == 0)
      return false;
    Idx = S.Stack[Pool][--S.Size[Pool]];
    return true;
  }

  void canonicalize(State &S) const {
    // Workers run identical programs: sorting their sub-states merges
    // symmetric interleavings.
    std::sort(S.W, S.W + C.Workers);
  }

  bool allDeclared(const State &S) const {
    for (int I = 0; I < C.Workers; ++I)
      if (S.W[I].Pc != WDone)
        return false;
    return true;
  }

  int packetEntries(const State &S) const {
    int Total = 0;
    for (int I = 0; I < C.Packets; ++I)
      Total += S.Pub[I] + S.Unpub[I];
    return Total;
  }

  void inspect(const State &S) {
    if (!allDeclared(S))
      return;
    if (int Left = packetEntries(S); Left != 0 && R.Violations.size() < 8)
      R.Violations.push_back(
          "termination declared with " + std::to_string(Left) +
          " entr(ies) still in packets (EmptyCount=" +
          std::to_string(S.Count[PE]) + ")");
    if (S.Dirty == 0 && S.CPcV == CDone)
      R.CompletionReachable = true;
  }

  void emit(const State &N) { Succ.push_back(N); }

  void expand(const State &S) {
    for (int I = 0; I < C.Workers; ++I)
      expandWorker(S, I);
    expandFlusher(S);
    expandController(S);
  }

  void publish(State &S, uint8_t Packet) const {
    if (C.Mut != NoPublishFence) {
      S.Pub[Packet] = static_cast<uint8_t>(S.Pub[Packet] + S.Unpub[Packet]);
      S.Unpub[Packet] = 0;
    }
  }

  void expandWorker(const State &S, int I) {
    const Worker &W = S.W[I];
    State N = S;
    Worker &V = N.W[I];
    uint8_t Idx = 0;
    switch (W.Pc) {
    case WIdle: // getInput, highest occupancy first: probe Almost-full.
      if (pop(N, PA, Idx)) {
        V.HeldIn = Idx + 1;
        V.PendPool = PA;
        V.Pc = WDecIn;
      } else {
        V.Pc = WTriedAF;
      }
      emit(N);
      break;
    case WTriedAF:
      if (pop(N, PN, Idx)) {
        V.HeldIn = Idx + 1;
        V.PendPool = PN;
        V.Pc = WDecIn;
      } else {
        V.Pc = WMaybeDeclare;
      }
      emit(N);
      break;
    case WDecIn:
      --N.Count[W.PendPool];
      V.Pc = WProcess;
      emit(N);
      break;
    case WProcess: {
      uint8_t P = W.HeldIn - 1;
      if (S.Pub[P] == 0) {
        // The consumer sees only published entries; an exhausted-looking
        // packet goes back (possibly still carrying unpublished limbo —
        // exactly the bug the fence prevents).
        V.Pc = WPutInPush;
        emit(N);
        break;
      }
      // Consume one entry, spawning no child...
      --N.Pub[P];
      V.Pc = WProcess;
      emit(N);
      // ...or consume it and spawn one child (separate branch).
      if (S.Spawn > 0) {
        State M = S;
        Worker &U = M.W[I];
        --M.Pub[P];
        --M.Spawn;
        U.PendChild = 1;
        U.Pc = WPlaceChild;
        emit(M);
      }
      break;
    }
    case WPlaceChild: {
      if (W.HeldOut != 0) {
        uint8_t O = W.HeldOut - 1;
        if (S.Pub[O] + S.Unpub[O] < Cap) {
          ++N.Unpub[O]; // plain store; published at the put fence
          V.PendChild = 0;
          V.Pc = WProcess;
        } else {
          V.Pc = WPutOutFence; // full: put it, then come back
        }
        emit(N);
        break;
      }
      if (pop(N, PE, Idx)) {
        V.HeldOut = Idx + 1;
        V.PendPool = PE;
        V.Pc = WDecOut;
      } else {
        // Pool exhausted: mark-and-dirty-card fallback (Section 5.2).
        ++N.Dirty;
        V.PendChild = 0;
        V.Pc = WProcess;
      }
      emit(N);
      break;
    }
    case WDecOut:
      --N.Count[PE];
      V.Pc = WPlaceChild;
      emit(N);
      break;
    case WPutInPush: {
      uint8_t P = W.HeldIn - 1;
      V.PendPool = classify(S.Pub[P]); // putter sees its own view
      push(N, V.PendPool, P);
      V.HeldIn = 0;
      V.Pc = WPutInInc;
      emit(N);
      break;
    }
    case WPutInInc:
      ++N.Count[W.PendPool];
      V.Pc = (W.HeldOut != 0) ? WPutOutFence : WIdle;
      emit(N);
      break;
    case WPutOutFence:
      publish(N, W.HeldOut - 1);
      V.Pc = WPutOutPush;
      emit(N);
      break;
    case WPutOutPush: {
      uint8_t O = W.HeldOut - 1;
      // The putter's own writes are visible to itself regardless of the
      // fence, so classification uses the true count.
      V.PendPool = classify(S.Pub[O] + S.Unpub[O]);
      push(N, V.PendPool, O);
      V.HeldOut = 0;
      V.Pc = WPutOutInc;
      emit(N);
      break;
    }
    case WPutOutInc:
      ++N.Count[W.PendPool];
      V.Pc = W.PendChild ? WPlaceChild : WIdle;
      emit(N);
      break;
    case WMaybeDeclare:
      // One atomic load of EmptyCount, only meaningful during the STW
      // drain (the concurrent phase's reads only pace the collector).
      if (S.Drain && S.CPcV == CDone && S.Count[PE] == C.Packets)
        V.Pc = WDone;
      else
        V.Pc = WIdle;
      emit(N);
      break;
    case WDone:
      break;
    }
  }

  void expandFlusher(const State &S) {
    State N = S;
    uint8_t Idx = 0;
    switch (S.FPcV) {
    case FIdle:
      if (S.FBatches == 0) {
        N.FPcV = FDone;
        emit(N);
        break;
      }
      if (pop(N, PE, Idx)) { // getEmpty: side packet for deferred objects
        N.FHeld = Idx + 1;
        N.FPcV = FDecE;
      } else {
        // Empty pool drained: mark-and-dirty-card fallback.
        N.Dirty = static_cast<uint8_t>(N.Dirty + C.FillPerBatch);
        --N.FBatches;
      }
      emit(N);
      break;
    case FDecE:
      --N.Count[PE];
      N.FPcV = FFill;
      emit(N);
      break;
    case FFill:
      N.Unpub[S.FHeld - 1] =
          static_cast<uint8_t>(N.Unpub[S.FHeld - 1] + C.FillPerBatch);
      N.FPcV = FFence;
      emit(N);
      break;
    case FFence: // putDeferred always fences (the packet carries work)
      publish(N, S.FHeld - 1);
      N.FPcV = FPush;
      emit(N);
      break;
    case FPush:
      push(N, PD, S.FHeld - 1);
      N.FHeld = 0;
      N.FPcV = FInc;
      emit(N);
      break;
    case FInc:
      // Trailing counter update for putDeferred. The mutation routes it
      // to EmptyCount, silently inflating the termination counter.
      ++N.Count[C.Mut == DeferredCountsAsEmpty ? PE : PD];
      --N.FBatches;
      N.FPcV = FIdle;
      emit(N);
      break;
    case FDone:
      break;
    }
  }

  void expandController(const State &S) {
    State N = S;
    uint8_t Idx = 0;
    switch (S.CPcV) {
    case CWait: // the final handshake: all mutator flushers quiescent
      if (S.FPcV == FDone) {
        N.CPcV = (C.Mut == SkipRedistribute) ? CInject : CRedist;
        emit(N);
      }
      break;
    case CRedist:
      if (pop(N, PD, Idx)) {
        N.CHeld = Idx + 1;
        N.CPcV = CRedistDec;
      } else {
        N.CPcV = CInject;
      }
      emit(N);
      break;
    case CRedistDec:
      --N.Count[PD];
      N.CPcV = CRedistPush;
      emit(N);
      break;
    case CRedistPush:
      // put(): the controller classifies by what IT can see — only the
      // published entries (it did not write the deferred objects).
      N.CPend = classify(S.Pub[S.CHeld - 1]);
      push(N, N.CPend, S.CHeld - 1);
      N.CHeld = 0;
      N.CPcV = CRedistInc;
      emit(N);
      break;
    case CRedistInc:
      ++N.Count[S.CPend];
      N.CPcV = CRedist;
      emit(N);
      break;
    case CInject:
      if (S.Dirty == 0) {
        N.Drain = 1; // cleaning complete: enter the STW drain phase
        N.CPcV = CDone;
        emit(N);
        break;
      }
      if (pop(N, PE, Idx)) { // cleaner needs an output packet
        N.CHeld = Idx + 1;
        N.CPcV = CInjDec;
        emit(N);
      }
      // else: wait for workers to return a packet (no enabled step).
      break;
    case CInjDec:
      --N.Count[PE];
      N.CPcV = CInjFill;
      emit(N);
      break;
    case CInjFill: {
      uint8_t Take = static_cast<uint8_t>(S.Dirty < Cap ? S.Dirty : Cap);
      N.Dirty = static_cast<uint8_t>(N.Dirty - Take);
      N.Unpub[S.CHeld - 1] = static_cast<uint8_t>(N.Unpub[S.CHeld - 1] + Take);
      N.CPcV = CInjFence;
      emit(N);
      break;
    }
    case CInjFence:
      publish(N, S.CHeld - 1);
      N.CPcV = CInjPush;
      emit(N);
      break;
    case CInjPush:
      N.CPend = classify(S.Pub[S.CHeld - 1] + S.Unpub[S.CHeld - 1]);
      push(N, N.CPend, S.CHeld - 1);
      N.CHeld = 0;
      N.CPcV = CInjInc;
      emit(N);
      break;
    case CInjInc:
      ++N.Count[S.CPend];
      N.CPcV = CInject;
      emit(N);
      break;
    case CDone:
      // Overflows during the drain re-dirty cards; once every worker
      // has declared, loop them back through injection + another drain
      // round — the parallelFinalMark outer loop.
      if (S.Dirty != 0 && allDeclared(S)) {
        for (int I = 0; I < C.Workers; ++I)
          N.W[I] = Worker{};
        N.CPcV = CInject;
        emit(N);
      }
      break;
    }
  }

  Config C;
  Result R;
  std::unordered_set<State, StateHash> Seen;
  std::vector<State> Succ;
};

Result check(const Config &C) { return Model(C).run(); }

std::string summarize(const Result &R) {
  std::string Out = std::to_string(R.States) + " states; completion " +
                    (R.CompletionReachable ? "reachable" : "UNREACHABLE");
  for (const auto &V : R.Violations)
    Out += "\n  violation: " + V;
  return Out;
}

//===----------------------------------------------------------------------===//
// Unmutated protocol: exhaustive, no violations, completion reachable.
//===----------------------------------------------------------------------===//

TEST(PacketModelCheck, TwoWorkersThreePackets) {
  Config C;
  C.Workers = 2;
  C.Packets = 3;
  C.RootEntries = 2;
  C.SpawnBudget = 2;
  C.FlushBatches = 1;
  Result R = check(C);
  EXPECT_TRUE(R.Violations.empty()) << summarize(R);
  EXPECT_TRUE(R.CompletionReachable) << summarize(R);
  EXPECT_GT(R.States, 1000u);
}

TEST(PacketModelCheck, ThreeWorkersFourPackets) {
  Config C;
  C.Workers = 3;
  C.Packets = 4;
  C.RootEntries = 2;
  C.SpawnBudget = 2;
  C.FlushBatches = 1;
  Result R = check(C);
  EXPECT_TRUE(R.Violations.empty()) << summarize(R);
  EXPECT_TRUE(R.CompletionReachable) << summarize(R);
}

TEST(PacketModelCheck, DeferralAndOverflowPressure) {
  // Few packets + a big flush forces the Empty pool dry: exercises the
  // getEmpty failure path, dirty-card overflow, and re-injection.
  Config C;
  C.Workers = 2;
  C.Packets = 2;
  C.RootEntries = 2;
  C.SpawnBudget = 3;
  C.FlushBatches = 2;
  C.FillPerBatch = 2;
  Result R = check(C);
  EXPECT_TRUE(R.Violations.empty()) << summarize(R);
  EXPECT_TRUE(R.CompletionReachable) << summarize(R);
}

//===----------------------------------------------------------------------===//
// Mutation smoke tests: each flipped rule must be caught, either as a
// safety violation (declared with work outstanding) or as a liveness
// failure (completion unreachable).
//===----------------------------------------------------------------------===//

Config mutated(Mutation M) {
  Config C;
  C.Workers = 2;
  C.Packets = 3;
  C.RootEntries = 2;
  C.SpawnBudget = 2;
  C.FlushBatches = 1;
  C.Mut = M;
  return C;
}

TEST(PacketModelCheck, MutationNoPublishFenceIsCaught) {
  // Without the Section 5.1 fence, entries parked in a deferred packet
  // are invisible to the redistributing controller, which classifies
  // the packet Empty — the references are lost and termination is
  // declared anyway.
  Result R = check(mutated(NoPublishFence));
  EXPECT_FALSE(R.Violations.empty()) << summarize(R);
}

TEST(PacketModelCheck, MutationDeferredCountsAsEmptyIsCaught) {
  // Routing putDeferred's counter update into EmptyCount inflates the
  // termination counter: either a worker declares while the deferred
  // work is still circulating, or the counter never equals NumPackets
  // again and the drain cannot finish.
  Result R = check(mutated(DeferredCountsAsEmpty));
  EXPECT_TRUE(!R.Violations.empty() || !R.CompletionReachable)
      << summarize(R);
}

TEST(PacketModelCheck, MutationSkipRedistributeIsCaught) {
  // Deferred packets that never return to circulation keep EmptyCount
  // below NumPackets forever: the drain can never terminate.
  Result R = check(mutated(SkipRedistribute));
  EXPECT_FALSE(R.CompletionReachable) << summarize(R);
}

} // namespace
