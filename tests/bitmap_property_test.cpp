//===- bitmap_property_test.cpp - differential/property sweeps -------------------//
///
/// Randomized differential tests: BitVector8 and CardTable are checked
/// operation-by-operation against trivial reference models.
///
//===----------------------------------------------------------------------===//

#include "heap/BitVector8.h"
#include "heap/CardTable.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <vector>

using namespace cgc;

namespace {

class BitmapPropertyTest : public ::testing::TestWithParam<uint64_t> {
protected:
  static constexpr size_t HeapBytes = 32u << 10; // 4096 granules.
  BitmapPropertyTest() {
    Mem.reset(static_cast<uint8_t *>(std::aligned_alloc(4096, HeapBytes)));
  }
  uint8_t *addr(size_t Granule) { return Mem.get() + Granule * GranuleBytes; }
  struct FreeDeleter {
    void operator()(uint8_t *P) const { std::free(P); }
  };
  std::unique_ptr<uint8_t, FreeDeleter> Mem;
};

TEST_P(BitmapPropertyTest, MatchesReferenceModel) {
  constexpr size_t NumGranules = HeapBytes / GranuleBytes;
  BitVector8 Bits(Mem.get(), HeapBytes);
  std::vector<bool> Model(NumGranules, false);
  Random Rng(GetParam());

  for (int Step = 0; Step < 20000; ++Step) {
    switch (Rng.nextBelow(7)) {
    case 0: { // set
      size_t G = Rng.nextBelow(NumGranules);
      Bits.set(addr(G));
      Model[G] = true;
      break;
    }
    case 1: { // clear
      size_t G = Rng.nextBelow(NumGranules);
      Bits.clear(addr(G));
      Model[G] = false;
      break;
    }
    case 2: { // testAndSet
      size_t G = Rng.nextBelow(NumGranules);
      bool Won = Bits.testAndSet(addr(G));
      EXPECT_EQ(Won, !Model[G]);
      Model[G] = true;
      break;
    }
    case 3: { // test
      size_t G = Rng.nextBelow(NumGranules);
      EXPECT_EQ(Bits.test(addr(G)), Model[G]);
      break;
    }
    case 4: { // clearRange
      size_t A = Rng.nextBelow(NumGranules);
      size_t B = Rng.nextBelow(NumGranules);
      if (A > B)
        std::swap(A, B);
      Bits.clearRange(addr(A), addr(B));
      for (size_t G = A; G < B; ++G)
        Model[G] = false;
      break;
    }
    case 5: { // findNextSet over a random window
      size_t A = Rng.nextBelow(NumGranules);
      size_t B = Rng.nextBelow(NumGranules);
      if (A > B)
        std::swap(A, B);
      uint8_t *Found = Bits.findNextSet(addr(A), addr(B));
      size_t Expect = B;
      for (size_t G = A; G < B; ++G)
        if (Model[G]) {
          Expect = G;
          break;
        }
      if (Expect == B)
        EXPECT_EQ(Found, nullptr);
      else
        EXPECT_EQ(Found, addr(Expect));
      break;
    }
    default: { // findPrevSet
      size_t A = Rng.nextBelow(NumGranules) + 1;
      uint8_t *Found = Bits.findPrevSet(addr(A));
      uint8_t *Expect = nullptr;
      for (size_t G = A; G-- > 0;)
        if (Model[G]) {
          Expect = addr(G);
          break;
        }
      EXPECT_EQ(Found, Expect);
      break;
    }
    }
  }
  // Final count agreement.
  size_t ModelCount = 0;
  for (bool B : Model)
    if (B)
      ++ModelCount;
  EXPECT_EQ(Bits.countInRange(Mem.get(), Mem.get() + HeapBytes), ModelCount);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BitmapPropertyTest,
                         ::testing::Values(1u, 2u, 3u, 17u, 99u));

class CardTablePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CardTablePropertyTest, RegistrationNeverLosesACard) {
  constexpr size_t HeapBytes = 64u << 10;
  struct FreeDeleter {
    void operator()(uint8_t *P) const { std::free(P); }
  };
  std::unique_ptr<uint8_t, FreeDeleter> Mem(
      static_cast<uint8_t *>(std::aligned_alloc(4096, HeapBytes)));
  CardTable Cards(Mem.get(), HeapBytes);
  Random Rng(GetParam());
  std::vector<int> DirtyEvents(Cards.numCards(), 0);
  std::vector<int> Registered(Cards.numCards(), 0);

  std::vector<uint32_t> Out;
  for (int Round = 0; Round < 200; ++Round) {
    for (int I = 0; I < 50; ++I) {
      size_t Card = Rng.nextBelow(Cards.numCards());
      Cards.dirty(Cards.cardStart(Card));
      DirtyEvents[Card] = 1;
    }
    if (Rng.nextBool(0.3)) {
      Out.clear();
      Cards.registerAndClearDirty(Out);
      for (uint32_t Index : Out) {
        EXPECT_EQ(DirtyEvents[Index], 1) << "registered a clean card";
        Registered[Index] = 1;
        DirtyEvents[Index] = 0;
      }
    }
  }
  Out.clear();
  Cards.registerAndClearDirty(Out);
  for (uint32_t Index : Out) {
    Registered[Index] = 1;
    DirtyEvents[Index] = 0;
  }
  // Every dirtied card was eventually registered exactly while dirty.
  for (size_t I = 0; I < Cards.numCards(); ++I)
    EXPECT_EQ(DirtyEvents[I], 0) << "card " << I << " lost";
  EXPECT_EQ(Cards.countDirty(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CardTablePropertyTest,
                         ::testing::Values(5u, 6u, 7u));

} // namespace
