//===- openloop_gen_test.cpp - inter-arrival generators and CO regression ------//
///
/// The open-loop load machinery (workloads/OpenLoop.h): seeded
/// determinism of the inter-arrival generators, exponential-mean
/// convergence, and the coordinated-omission regression — a stalled
/// service MUST surface in scheduled-start latencies. The regression is
/// mutation-sensitive: replace SchedNanos with SendNanos in the latency
/// definition (the classic closed-loop mistake) and the stall vanishes
/// from p99, failing the test.
///
//===----------------------------------------------------------------------===//

#include "TestSeed.h"
#include "workloads/OpenLoop.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

using namespace cgc;

namespace {

std::vector<uint64_t> gaps(ArrivalKind Kind, double Rate, uint64_t Seed,
                           size_t N) {
  InterArrivalGen Gen(Kind, Rate, Seed);
  std::vector<uint64_t> Out;
  Out.reserve(N);
  for (size_t I = 0; I < N; ++I)
    Out.push_back(Gen.nextGapNanos());
  return Out;
}

TEST(InterArrivalGenTest, SameSeedSameSchedule) {
  uint64_t Seed = testSeed(0x0b5eed, "InterArrivalGenTest.SameSeed");
  for (ArrivalKind Kind : {ArrivalKind::Fixed, ArrivalKind::Exponential}) {
    std::vector<uint64_t> A = gaps(Kind, 10000, Seed, 5000);
    std::vector<uint64_t> B = gaps(Kind, 10000, Seed, 5000);
    EXPECT_EQ(A, B) << "same seed must replay the identical schedule";
  }
}

TEST(InterArrivalGenTest, DifferentSeedsDiverge) {
  std::vector<uint64_t> A = gaps(ArrivalKind::Exponential, 10000, 1, 1000);
  std::vector<uint64_t> B = gaps(ArrivalKind::Exponential, 10000, 2, 1000);
  EXPECT_NE(A, B);
}

TEST(InterArrivalGenTest, FixedRateIsExactLongRun) {
  // 3333 req/s has a non-integral nanosecond gap; the carry must keep
  // the long-run sum exact to within one nanosecond per sample bound.
  InterArrivalGen Gen(ArrivalKind::Fixed, 3333, 7);
  uint64_t Sum = 0;
  constexpr size_t N = 100000;
  for (size_t I = 0; I < N; ++I)
    Sum += Gen.nextGapNanos();
  double ExpectedSum = static_cast<double>(N) * 1e9 / 3333.0;
  EXPECT_NEAR(static_cast<double>(Sum), ExpectedSum, 2.0)
      << "fixed schedule drifted: carry accumulation is broken";
}

TEST(InterArrivalGenTest, ExponentialMeanConverges) {
  uint64_t Seed = testSeed(0xe9c0, "InterArrivalGenTest.ExponentialMean");
  InterArrivalGen Gen(ArrivalKind::Exponential, 50000, Seed);
  double Sum = 0;
  constexpr size_t N = 200000;
  for (size_t I = 0; I < N; ++I)
    Sum += static_cast<double>(Gen.nextGapNanos());
  double Mean = Sum / static_cast<double>(N);
  // Exponential CV is 1, so the sample-mean stderr at N=200k is ~0.22%
  // of the mean; 2% absorbs seed-to-seed variation with huge margin.
  EXPECT_NEAR(Mean, Gen.meanGapNanos(), 0.02 * Gen.meanGapNanos());
}

TEST(LatencyBufferTest, CapacityBoundsAndDropCounting) {
  LatencyBuffer Buffer(4);
  RequestSample S;
  for (int I = 0; I < 6; ++I) {
    S.SchedNanos = static_cast<uint64_t>(I);
    S.DoneNanos = S.SchedNanos + 100;
    bool Recorded = Buffer.record(S);
    EXPECT_EQ(Recorded, I < 4);
  }
  EXPECT_EQ(Buffer.size(), 4u);
  EXPECT_EQ(Buffer.dropped(), 2u);
}

/// The coordinated-omission regression. One client, FIXED 2000/s
/// schedule, ~400 ms horizon, and a service that stalls once for ~80 ms
/// mid-run. Open-loop accounting (Done - Sched) must charge the stall to
/// every request scheduled during it (~160 requests → p95/p99 in the
/// tens of ms). Send-time accounting (Done - Send) sees ONE slow sample
/// out of ~800 — invisible at p95. If someone "simplifies" the latency
/// definition to send-time, this test fails.
TEST(CoordinatedOmissionTest, StallSurfacesInScheduledStartQuantiles) {
  uint64_t Seed = testSeed(0xc001, "CoordinatedOmissionTest.Stall");
  ScopedSeedLog SeedLog(Seed, "CoordinatedOmissionTest.Stall");

  OpenLoopConfig Config;
  Config.Clients = 1;
  Config.OfferedPerSec = 2000;
  Config.Kind = ArrivalKind::Fixed;
  Config.DurationMs = 400;
  Config.Seed = Seed;

  OpenLoopDriver Driver(/*Heap=*/nullptr, Config);
  std::atomic<bool> Stalled{false};
  OpenLoopOutcome Out =
      Driver.run([&](MutatorContext *, unsigned, uint64_t Index) {
        // One ~80 ms stall a third of the way in (a GC pause stand-in).
        if (Index == 260 && !Stalled.exchange(true, std::memory_order_relaxed))
          std::this_thread::sleep_for(std::chrono::milliseconds(80));
        return true;
      });

  // The schedule is decoupled from service: ~2000/s * 0.4s slots were
  // scheduled regardless of the stall.
  EXPECT_NEAR(static_cast<double>(Out.Counters.Scheduled), 800.0, 80.0)
      << "schedule must advance by generator gaps, not by completions";
  EXPECT_EQ(Out.Counters.Completed, Out.Counters.Scheduled);
  // Every slot that came due during the stall started late.
  EXPECT_GT(Out.Counters.LateStarts, 100u);

  std::vector<uint64_t> OpenLoop = Out.openLoopLatencies();
  std::vector<uint64_t> SendTime = Out.sendTimeLatencies();
  ASSERT_EQ(OpenLoop.size(), SendTime.size());
  ASSERT_GT(OpenLoop.size(), 500u);

  auto quantile = [](std::vector<uint64_t> V, double Q) {
    std::sort(V.begin(), V.end());
    size_t Rank = static_cast<size_t>(Q * static_cast<double>(V.size() - 1));
    return V[Rank];
  };

  uint64_t OpenP95 = quantile(OpenLoop, 0.95);
  uint64_t OpenP99 = quantile(OpenLoop, 0.99);
  uint64_t SendP95 = quantile(SendTime, 0.95);

  // ~160 of ~800 requests queued behind the 80 ms stall: the open-loop
  // p95 (above the ~80% mark) must carry tens of ms.
  EXPECT_GT(OpenP95, 10u * 1000 * 1000)
      << "scheduled-start latency hides the stall: coordinated omission";
  EXPECT_GT(OpenP99, 30u * 1000 * 1000);
  // Send-time accounting sees one slow request in ~800 — p95 stays tiny.
  EXPECT_LT(SendP95, 5u * 1000 * 1000);
  // And the two must differ wildly — this is the mutation tripwire: with
  // latencies measured from SendNanos both sides collapse together.
  EXPECT_GT(OpenP95, 10 * SendP95)
      << "open-loop and send-time quantiles agree; latency is being "
         "measured from send time, not scheduled start";
}

TEST(OpenLoopDriverTest, AchievedTracksOfferedWhenUnloaded) {
  OpenLoopConfig Config;
  Config.Clients = 2;
  Config.OfferedPerSec = 4000;
  Config.Kind = ArrivalKind::Exponential;
  Config.DurationMs = 300;
  Config.Seed = testSeed(0xac1eed, "OpenLoopDriverTest.Achieved");

  OpenLoopDriver Driver(/*Heap=*/nullptr, Config);
  OpenLoopOutcome Out =
      Driver.run([](MutatorContext *, unsigned, uint64_t) { return true; });

  EXPECT_EQ(Out.Counters.Completed, Out.Counters.Scheduled);
  EXPECT_EQ(Out.Counters.Failed, 0u);
  EXPECT_EQ(Out.Counters.DroppedSamples, 0u);
  // A no-op service keeps up: achieved within 15% of offered.
  EXPECT_NEAR(Out.AchievedPerSec, Out.OfferedPerSec,
              0.15 * Out.OfferedPerSec);
  // SendNanos never precedes SchedNanos (the invariant quantile math
  // leans on: open-loop latency >= service latency, sample by sample).
  for (const LatencyBuffer &B : Out.Buffers)
    for (size_t I = 0; I < B.size(); ++I)
      EXPECT_GE(B.openLoopLatencyNanos(I), B.sendTimeLatencyNanos(I));
}

} // namespace
