//===- verifier_test.cpp - heap verifier units ---------------------------------//

#include "gc/HeapVerifier.h"

#include "mutator/ThreadRegistry.h"
#include "workpackets/PacketPool.h"

#include <gtest/gtest.h>

#include <memory>

using namespace cgc;

namespace {

class VerifierTest : public ::testing::Test {
protected:
  VerifierTest() : Heap(2u << 20), Pool(8), Ctx(Pool) {
    Registry.attach(&Ctx);
    Ctx.reserveRoots(8);
    Heap.freeList().clear(); // Tests plant objects manually.
  }
  ~VerifierTest() override { Registry.detach(&Ctx); }

  Object *plant(size_t Offset, uint32_t Size, uint16_t NumRefs) {
    Object *Obj = reinterpret_cast<Object *>(Heap.base() + Offset);
    Obj->initialize(Size, NumRefs, 0);
    Heap.allocBits().set(Obj);
    return Obj;
  }

  HeapSpace Heap;
  PacketPool Pool;
  ThreadRegistry Registry;
  MutatorContext Ctx;
};

TEST_F(VerifierTest, EmptyRootsVerifyClean) {
  HeapVerifier V(Heap);
  VerifyResult R = V.verify(Registry, false);
  EXPECT_TRUE(R.Ok);
  EXPECT_EQ(R.ReachableObjects, 0u);
}

TEST_F(VerifierTest, CountsReachableGraph) {
  Object *A = plant(0, 32, 2);
  Object *B = plant(64, 48, 0);
  Object *C = plant(128, 16, 0);
  plant(256, 16, 0); // Unreachable.
  A->storeRefRaw(0, B);
  A->storeRefRaw(1, C);
  Ctx.setRoot(0, A);
  HeapVerifier V(Heap);
  VerifyResult R = V.verify(Registry, false);
  EXPECT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.ReachableObjects, 3u);
  EXPECT_EQ(R.ReachableBytes, 32u + 48u + 16u);
}

TEST_F(VerifierTest, SharedAndCyclicStructuresCountedOnce) {
  Object *A = plant(0, 32, 2);
  Object *B = plant(64, 32, 2);
  A->storeRefRaw(0, B);
  A->storeRefRaw(1, B);  // Shared edge.
  B->storeRefRaw(0, A);  // Cycle.
  Ctx.setRoot(0, A);
  HeapVerifier V(Heap);
  VerifyResult R = V.verify(Registry, false);
  EXPECT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.ReachableObjects, 2u);
}

TEST_F(VerifierTest, MissingAllocationBitRejectedAsRoot) {
  // A root word pointing at memory with no allocation bit is filtered
  // by the conservative scan, not an error.
  Ctx.setRootWord(0, reinterpret_cast<uintptr_t>(Heap.base() + 512));
  HeapVerifier V(Heap);
  VerifyResult R = V.verify(Registry, false);
  EXPECT_TRUE(R.Ok);
  EXPECT_EQ(R.ReachableObjects, 0u);
}

TEST_F(VerifierTest, UnmarkedReachableFailsMarkCheck) {
  Object *A = plant(0, 32, 1);
  Object *B = plant(64, 32, 0);
  A->storeRefRaw(0, B);
  Ctx.setRoot(0, A);
  Heap.markBits().set(A); // B deliberately unmarked.
  HeapVerifier V(Heap);
  VerifyResult ROk = V.verify(Registry, false);
  EXPECT_TRUE(ROk.Ok);
  VerifyResult RBad = V.verify(Registry, true);
  EXPECT_FALSE(RBad.Ok);
  EXPECT_NE(RBad.Error.find("unmarked"), std::string::npos);
}

TEST_F(VerifierTest, CorruptSizeDetected) {
  Object *A = plant(0, 32, 0);
  Ctx.setRoot(0, A);
  // Smash the header size field (not granule aligned).
  reinterpret_cast<uint32_t *>(A)[0] = 13;
  HeapVerifier V(Heap);
  VerifyResult R = V.verify(Registry, false);
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("size"), std::string::npos);
}

TEST_F(VerifierTest, AllocationBitInsideFreeRangeDetected) {
  Object *A = plant(0, 32, 0);
  Ctx.setRoot(0, A);
  // A stale allocation bit inside a free range.
  Heap.allocBits().set(Heap.base() + 4096);
  Heap.freeList().addRange(Heap.base() + 4096, 1024);
  HeapVerifier V(Heap);
  VerifyResult R = V.verify(Registry, false);
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("free range"), std::string::npos);
}

TEST_F(VerifierTest, MultipleThreadsRootsAllScanned) {
  MutatorContext Other(Pool);
  Registry.attach(&Other);
  Other.reserveRoots(1);
  Object *A = plant(0, 32, 0);
  Object *B = plant(64, 32, 0);
  Ctx.setRoot(0, A);
  Other.setRoot(0, B);
  HeapVerifier V(Heap);
  VerifyResult R = V.verify(Registry, false);
  EXPECT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.ReachableObjects, 2u);
  Registry.detach(&Other);
}

} // namespace
