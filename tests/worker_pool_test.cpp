//===- worker_pool_test.cpp - fork-join pool units ------------------------------//

#include "gc/WorkerPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>

using namespace cgc;

namespace {

TEST(WorkerPoolTest, ZeroWorkersRunsOnCaller) {
  WorkerPool Pool(0);
  EXPECT_EQ(Pool.numWorkers(), 0u);
  EXPECT_EQ(Pool.numParticipants(), 1u);
  int Calls = 0;
  Pool.runParallel([&](unsigned Index) {
    EXPECT_EQ(Index, 0u);
    ++Calls;
  });
  EXPECT_EQ(Calls, 1);
}

TEST(WorkerPoolTest, AllParticipantsRunDistinctIndices) {
  WorkerPool Pool(3);
  std::atomic<unsigned> Mask{0};
  Pool.runParallel([&](unsigned Index) {
    Mask.fetch_or(1u << Index, std::memory_order_relaxed);
  });
  EXPECT_EQ(Mask.load(), 0b1111u);
}

TEST(WorkerPoolTest, RepeatedJobs) {
  WorkerPool Pool(2);
  std::atomic<int> Counter{0};
  for (int Round = 0; Round < 50; ++Round)
    Pool.runParallel([&](unsigned) {
      Counter.fetch_add(1, std::memory_order_relaxed);
    });
  EXPECT_EQ(Counter.load(), 50 * 3);
}

TEST(WorkerPoolTest, RunParallelIsABarrier) {
  WorkerPool Pool(3);
  std::atomic<int> Inside{0};
  std::atomic<int> benchmark_dummy{0};
  for (int Round = 0; Round < 20; ++Round) {
    Pool.runParallel([&](unsigned) {
      Inside.fetch_add(1, std::memory_order_relaxed);
      // Work of uneven duration.
      for (int I = 0; I < 1000; ++I)
        benchmark_dummy.fetch_add(1, std::memory_order_relaxed);
      Inside.fetch_sub(1, std::memory_order_relaxed);
    });
    EXPECT_EQ(Inside.load(), 0) << "runParallel returned with work active";
  }
}

TEST(WorkerPoolTest, SharedCursorPartitionsWork) {
  WorkerPool Pool(3);
  constexpr size_t NumItems = 10000;
  std::vector<std::atomic<int>> Hits(NumItems);
  std::atomic<size_t> Cursor{0};
  Pool.runParallel([&](unsigned) {
    for (;;) {
      size_t I = Cursor.fetch_add(1, std::memory_order_relaxed);
      if (I >= NumItems)
        return;
      Hits[I].fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (size_t I = 0; I < NumItems; ++I)
    EXPECT_EQ(Hits[I].load(), 1) << I;
}

} // namespace
