//===- kv_workload_test.cpp - KV store correctness under GC --------------------//
///
/// KvStore correctness on a live GC heap: get-after-set, delete,
/// overwrite, churn-eviction invariants and live-set bounds — under both
/// collectors, under forced compaction, and as a seeded multi-thread
/// soak. Every value carries an integrity stamp, so a Hit that verifies
/// proves the collector neither reclaimed nor moved-without-fixup a live
/// value.
///
//===----------------------------------------------------------------------===//

#include "TestSeed.h"
#include "runtime/GcHeap.h"
#include "workloads/KvServer.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

using namespace cgc;

namespace {

GcOptions kvHeap(CollectorKind Kind) {
  GcOptions Opts;
  Opts.Kind = Kind;
  Opts.HeapBytes = 12u << 20;
  Opts.GcWorkerThreads = 2;
  Opts.BackgroundThreads = 1;
  Opts.NumWorkPackets = 128;
  Opts.VerifyEachCycle = true;
  return Opts;
}

class KvOnBothCollectors : public ::testing::TestWithParam<CollectorKind> {};

TEST_P(KvOnBothCollectors, GetAfterSetDeleteOverwrite) {
  auto Heap = GcHeap::create(kvHeap(GetParam()));
  MutatorContext &Ctx = Heap->attachThread();
  Ctx.reserveRoots(1);
  {
    KvStoreConfig Config;
    Config.Buckets = 8; // force chains
    KvStore Store(*Heap, Ctx, 0, Config);

    EXPECT_EQ(Store.get("absent", 6), KvStore::GetResult::Miss);

    for (int I = 0; I < 200; ++I) {
      std::string Key = "k" + std::to_string(I);
      ASSERT_TRUE(Store.set(Ctx, Key.data(), Key.size(), 64 + I,
                            0xabc0 + static_cast<uint64_t>(I)));
    }
    for (int I = 0; I < 200; ++I) {
      std::string Key = "k" + std::to_string(I);
      EXPECT_EQ(Store.get(Key.data(), Key.size()), KvStore::GetResult::Hit)
          << Key;
    }
    EXPECT_EQ(Store.liveEntries(), 200u);

    // Overwrite replaces the value in place (no entry growth).
    ASSERT_TRUE(Store.set(Ctx, "k7", 2, 300, 0xfeed));
    EXPECT_EQ(Store.liveEntries(), 200u);
    EXPECT_EQ(Store.get("k7", 2), KvStore::GetResult::Hit);

    EXPECT_TRUE(Store.del(Ctx, "k7", 2));
    EXPECT_EQ(Store.get("k7", 2), KvStore::GetResult::Miss);
    EXPECT_FALSE(Store.del(Ctx, "k7", 2)) << "double delete reported present";
    EXPECT_EQ(Store.liveEntries(), 199u);

    std::string Error;
    EXPECT_TRUE(Store.verifyAll(&Error)) << Error;
  }
  Ctx.setRoot(0, nullptr);
  Heap->detachThread(Ctx);
}

TEST_P(KvOnBothCollectors, ChurnEvictionKeepsLiveSetBounded) {
  auto Heap = GcHeap::create(kvHeap(GetParam()));
  MutatorContext &Ctx = Heap->attachThread();
  Ctx.reserveRoots(1);
  {
    KvStoreConfig Config;
    Config.Buckets = 64;
    Config.MaxEntries = 128;
    KvStore Store(*Heap, Ctx, 0, Config);

    // 4000 distinct keys through a 128-entry bound: eviction must hold
    // the live set at the bound while churning entry + value garbage.
    for (int I = 0; I < 4000; ++I) {
      std::string Key = "churn" + std::to_string(I);
      ASSERT_TRUE(Store.set(Ctx, Key.data(), Key.size(), 48,
                            static_cast<uint64_t>(I)));
      ASSERT_LE(Store.liveEntries(), Config.MaxEntries)
          << "live set exceeded the churn bound at key " << I;
    }
    EXPECT_EQ(Store.liveEntries(), Config.MaxEntries);
    EXPECT_GT(Store.evictions(), 3000u);

    std::string Error;
    EXPECT_TRUE(Store.verifyAll(&Error)) << Error;
  }
  Ctx.setRoot(0, nullptr);
  Heap->detachThread(Ctx);
  EXPECT_GE(Heap->completedCycles(), 0u);
}

TEST_P(KvOnBothCollectors, WorkloadRunsWithIntegrity) {
  uint64_t Seed = testSeed(0x6eed5, "KvOnBothCollectors.WorkloadRuns");
  ScopedSeedLog SeedLog(Seed, "KvOnBothCollectors.WorkloadRuns");
  auto Heap = GcHeap::create(kvHeap(GetParam()));
  KvWorkloadConfig Config;
  Config.Threads = 3;
  Config.Seed = Seed;
  Config.Store.MaxEntries = 4096;
  // Work-bounded, not time-bounded: under a sanitizer the mutators run
  // an order of magnitude slower, so a fixed window may not allocate
  // enough to kick off a single cycle. Double the window until one
  // completes (each round's table becomes garbage, adding pressure).
  uint64_t Transactions = 0;
  for (uint64_t DurationMs = 800;; DurationMs *= 2) {
    Config.DurationMs = DurationMs;
    KvWorkload Workload(*Heap, Config);
    WorkloadResult Result = Workload.run();
    Transactions += Result.Transactions;
    ASSERT_FALSE(Result.IntegrityFailure)
        << "a KV get returned a corrupt value or the table walk failed";
    if (Heap->completedCycles() >= 1 || DurationMs >= 12800)
      break;
  }
  EXPECT_GT(Transactions, 1000u);
  EXPECT_GE(Heap->completedCycles(), 1u);
}

TEST_P(KvOnBothCollectors, WorkloadUnderForcedCompaction) {
  uint64_t Seed = testSeed(0x6eed6, "KvOnBothCollectors.UnderCompaction");
  ScopedSeedLog SeedLog(Seed, "KvOnBothCollectors.UnderCompaction");
  GcOptions Opts = kvHeap(GetParam());
  Opts.CompactEveryNCycles = 1;
  Opts.EvacuationAreaBytes = 1u << 20;
  auto Heap = GcHeap::create(Opts);
  KvWorkloadConfig Config;
  Config.Threads = 3;
  Config.Seed = Seed;
  // Same work-bounded retry as WorkloadRunsWithIntegrity: keep loading
  // until a cycle has actually evacuated objects (or a generous cap).
  uint64_t Evacuated = 0;
  for (uint64_t DurationMs = 800;; DurationMs *= 2) {
    Config.DurationMs = DurationMs;
    KvWorkload Workload(*Heap, Config);
    WorkloadResult Result = Workload.run();
    ASSERT_FALSE(Result.IntegrityFailure)
        << "compaction moved a KV object out from under the table";
    Evacuated = 0;
    for (const CycleRecord &R : Heap->stats().snapshot())
      Evacuated += R.EvacuatedObjects;
    if (Evacuated > 0 || DurationMs >= 12800)
      break;
  }
  EXPECT_GT(Evacuated, 0u) << "compaction never ran; test proved nothing";
}

INSTANTIATE_TEST_SUITE_P(BothCollectors, KvOnBothCollectors,
                         ::testing::Values(CollectorKind::StopTheWorld,
                                           CollectorKind::MostlyConcurrent),
                         [](const auto &Info) {
                           return Info.param == CollectorKind::StopTheWorld
                                      ? "Stw"
                                      : "Concurrent";
                         });

TEST(KvStoreTest, HashIsStableAndSpreads) {
  // FNV-1a reference values pin the hash so persisted collision fixtures
  // stay valid; distinct keys must not trivially collapse.
  EXPECT_EQ(kvHashKey("", 0), 0xcbf29ce484222325ull);
  EXPECT_NE(kvHashKey("a", 1), kvHashKey("b", 1));
  EXPECT_NE(kvHashKey("ab", 2), kvHashKey("ba", 2));
}

TEST(KvSoakTest, TightHeapSeededChurn) {
  // Small heap + small bound + many threads: constant eviction and
  // collection while gets verify stamps. One CGC_SEED reproduces.
  uint64_t Seed = testSeed(0xca05eed, "KvSoakTest.TightHeapSeededChurn");
  ScopedSeedLog SeedLog(Seed, "KvSoakTest.TightHeapSeededChurn");
  GcOptions Opts;
  Opts.Kind = CollectorKind::MostlyConcurrent;
  Opts.HeapBytes = 8u << 20;
  Opts.BackgroundThreads = 2;
  Opts.GcWorkerThreads = 2;
  Opts.CompactEveryNCycles = 3;
  Opts.EvacuationAreaBytes = 512u << 10;
  Opts.VerifyEachCycle = true;
  auto Heap = GcHeap::create(Opts);

  KvWorkloadConfig Config;
  Config.Threads = 4;
  Config.DurationMs = 2000;
  Config.Seed = Seed;
  Config.KeySpace = 4096;
  Config.MinValueBytes = 32;
  Config.MaxValueBytes = 1024;
  Config.Store.Buckets = 256;
  Config.Store.MaxEntries = 1024;
  KvWorkload Workload(*Heap, Config);
  WorkloadResult Result = Workload.run();
  EXPECT_GT(Result.Transactions, 2000u);
  EXPECT_FALSE(Result.IntegrityFailure);
  EXPECT_GE(Heap->completedCycles(), 2u);
}

} // namespace
