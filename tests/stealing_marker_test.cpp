//===- stealing_marker_test.cpp - traditional balancer ablation unit ----------//

#include "gc/StealingMarker.h"

#include "gc/WorkerPool.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <vector>

using namespace cgc;

namespace {

class StealingMarkerTest : public ::testing::Test {
protected:
  StealingMarkerTest() : Heap(8u << 20) { Heap.freeList().clear(); }

  /// Plants an allocated (unmarked) object.
  Object *plant(size_t Offset, uint16_t NumRefs) {
    Object *Obj = reinterpret_cast<Object *>(Heap.base() + Offset);
    Obj->initialize(
        static_cast<uint32_t>(Object::requiredSize(16, NumRefs)), NumRefs, 0);
    Heap.allocBits().set(Obj);
    return Obj;
  }

  HeapSpace Heap;
};

TEST_F(StealingMarkerTest, MarksLinkedList) {
  constexpr int Len = 1000;
  std::vector<Object *> Nodes;
  for (int I = 0; I < Len; ++I)
    Nodes.push_back(plant(static_cast<size_t>(I) * 64, 1));
  for (int I = 0; I + 1 < Len; ++I)
    Nodes[I]->storeRefRaw(0, Nodes[I + 1]);

  WorkerPool Workers(2);
  StealingMarker Marker(Heap, Workers.numParticipants());
  Marker.addRoot(Nodes[0]);
  uint64_t Traced = Marker.markParallel(Workers);
  EXPECT_EQ(Traced, static_cast<uint64_t>(Len) * Nodes[0]->sizeBytes());
  for (Object *N : Nodes)
    EXPECT_TRUE(Heap.markBits().test(N));
}

TEST_F(StealingMarkerTest, MarksRandomDag) {
  constexpr int NumNodes = 5000;
  Random Rng(7);
  std::vector<Object *> Nodes;
  for (int I = 0; I < NumNodes; ++I)
    Nodes.push_back(plant(static_cast<size_t>(I) * 64, 3));
  // Edges point backwards: acyclic, all reachable from the last node via
  // fan-in... instead root a prefix tree: each node points at up to 3
  // earlier nodes, and the LAST node alone cannot reach everything, so
  // root every node with no incoming edge. Simpler: root them all.
  for (int I = 1; I < NumNodes; ++I)
    for (unsigned E = 0; E < 3; ++E)
      Nodes[I]->storeRefRaw(E, Nodes[Rng.nextBelow(static_cast<uint64_t>(I))]);

  WorkerPool Workers(3);
  StealingMarker Marker(Heap, Workers.numParticipants());
  for (Object *N : Nodes)
    Marker.addRoot(N);
  Marker.markParallel(Workers);
  for (Object *N : Nodes)
    EXPECT_TRUE(Heap.markBits().test(N));
  EXPECT_GT(Marker.syncOps(), 0u);
}

TEST_F(StealingMarkerTest, SharedChildrenMarkedOnce) {
  Object *Root = plant(0, 2);
  Object *Shared = plant(64, 0);
  Root->storeRefRaw(0, Shared);
  Root->storeRefRaw(1, Shared);
  WorkerPool Workers(1);
  StealingMarker Marker(Heap, Workers.numParticipants());
  Marker.addRoot(Root);
  uint64_t Traced = Marker.markParallel(Workers);
  // Each object traced exactly once.
  EXPECT_EQ(Traced, Root->sizeBytes() + Shared->sizeBytes());
}

TEST_F(StealingMarkerTest, EmptyRootSetTerminates) {
  WorkerPool Workers(3);
  StealingMarker Marker(Heap, Workers.numParticipants());
  EXPECT_EQ(Marker.markParallel(Workers), 0u);
}

TEST_F(StealingMarkerTest, CyclesTerminate) {
  Object *A = plant(0, 1);
  Object *B = plant(64, 1);
  A->storeRefRaw(0, B);
  B->storeRefRaw(0, A);
  WorkerPool Workers(2);
  StealingMarker Marker(Heap, Workers.numParticipants());
  Marker.addRoot(A);
  EXPECT_EQ(Marker.markParallel(Workers), A->sizeBytes() + B->sizeBytes());
}

} // namespace
