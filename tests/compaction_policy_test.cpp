//===- compaction_policy_test.cpp - area-selection policy properties -----------//
//
// The compactor's fragmentation scoring and argmax are pure static
// functions (no heap, no locks); these are seeded property tests over
// randomly generated candidate statistics.
//
//===----------------------------------------------------------------------===//

#include "gc/Compactor.h"

#include <gtest/gtest.h>

#include <random>
#include <vector>

using namespace cgc;

namespace {

constexpr size_t AreaBytes = 1u << 20;

/// A random internally consistent candidate: at least one range, the
/// largest range no bigger than the free total, the free total no
/// bigger than the area.
FreeRangeStats randomStats(std::mt19937 &Rng) {
  FreeRangeStats F;
  F.RangeCount = std::uniform_int_distribution<size_t>(1, 64)(Rng);
  F.LargestRange =
      std::uniform_int_distribution<size_t>(2, AreaBytes / 2 / 64)(Rng) * 64;
  F.FreeBytes =
      std::uniform_int_distribution<size_t>(F.LargestRange, AreaBytes)(Rng);
  return F;
}

TEST(CompactionPolicy, ScorePrefersStrictlyMoreFragmented) {
  // Worsen one fragmentation axis while holding the others: the score
  // must strictly increase. (More free bytes at the same largest range
  // = more recoverable; more ranges = more refill overhead removed;
  // smaller largest range = less existing contiguity.)
  std::mt19937 Rng(0xc6c5eed);
  for (int Iter = 0; Iter < 2000; ++Iter) {
    FreeRangeStats A = randomStats(Rng);
    FreeRangeStats B = A;
    switch (Iter % 3) {
    case 0:
      if (B.FreeBytes + 4096 > AreaBytes)
        continue;
      B.FreeBytes += 4096;
      break;
    case 1:
      B.RangeCount += 1;
      break;
    case 2:
      B.LargestRange -= 64;
      break;
    }
    EXPECT_GT(Compactor::fragmentationScore(B, AreaBytes),
              Compactor::fragmentationScore(A, AreaBytes))
        << "axis " << Iter % 3 << ": FreeBytes=" << A.FreeBytes
        << " RangeCount=" << A.RangeCount
        << " LargestRange=" << A.LargestRange;
  }
}

TEST(CompactionPolicy, ScoreRanksShreddedAreaOverContiguousFreeArea) {
  // A fully free, fully contiguous area has nothing to recover; a
  // mostly live area whose free space is shredded into small ranges is
  // exactly what evacuation is for.
  FreeRangeStats Contiguous;
  Contiguous.FreeBytes = AreaBytes;
  Contiguous.RangeCount = 1;
  Contiguous.LargestRange = AreaBytes;

  FreeRangeStats Shredded;
  Shredded.FreeBytes = AreaBytes / 8;
  Shredded.RangeCount = 32;
  Shredded.LargestRange = 8192;

  EXPECT_GT(Compactor::fragmentationScore(Shredded, AreaBytes),
            Compactor::fragmentationScore(Contiguous, AreaBytes));
}

TEST(CompactionPolicy, SelectMatchesBruteForceArgmaxAndHonorsSkip) {
  std::mt19937 Rng(0x5eed);
  for (int Iter = 0; Iter < 500; ++Iter) {
    size_t N = std::uniform_int_distribution<size_t>(1, 12)(Rng);
    std::vector<FreeRangeStats> Candidates;
    for (size_t I = 0; I < N; ++I) {
      if (std::uniform_int_distribution<int>(0, 3)(Rng) == 0)
        Candidates.push_back(FreeRangeStats{}); // Unscoreable (no range).
      else
        Candidates.push_back(randomStats(Rng));
    }
    // Sometimes skip nothing, sometimes a real index.
    size_t Skip = std::uniform_int_distribution<int>(0, 1)(Rng)
                      ? SIZE_MAX
                      : std::uniform_int_distribution<size_t>(0, N - 1)(Rng);

    size_t Pick = Compactor::selectArea(Candidates, AreaBytes, Skip);

    // Brute-force reference with the same first-wins tie rule.
    size_t Want = SIZE_MAX;
    double WantScore = 0.0;
    for (size_t I = 0; I < N; ++I) {
      if (I == Skip || Candidates[I].RangeCount == 0)
        continue;
      double Score = Compactor::fragmentationScore(Candidates[I], AreaBytes);
      if (Want == SIZE_MAX || Score > WantScore) {
        Want = I;
        WantScore = Score;
      }
    }
    EXPECT_EQ(Pick, Want);
    if (Pick != SIZE_MAX) {
      EXPECT_NE(Pick, Skip) << "skipped (pinned-heavy) area re-selected";
      EXPECT_GT(Candidates[Pick].RangeCount, 0u);
    }
  }
}

TEST(CompactionPolicy, SelectReturnsSentinelWhenNothingScoreable) {
  // All-unscoreable (the empty free list of a fresh lazy-sweep
  // generation) and skip-hides-the-only-candidate both demand the
  // rotation fallback.
  std::vector<FreeRangeStats> Empty(4);
  EXPECT_EQ(Compactor::selectArea(Empty, AreaBytes, SIZE_MAX), SIZE_MAX);

  std::vector<FreeRangeStats> OneScoreable(3);
  OneScoreable[1].FreeBytes = 65536;
  OneScoreable[1].RangeCount = 4;
  OneScoreable[1].LargestRange = 16384;
  EXPECT_EQ(Compactor::selectArea(OneScoreable, AreaBytes, SIZE_MAX), 1u);
  EXPECT_EQ(Compactor::selectArea(OneScoreable, AreaBytes, 1), SIZE_MAX);
}

} // namespace
