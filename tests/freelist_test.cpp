//===- freelist_test.cpp - free list units -------------------------------------//

#include "heap/FreeList.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <thread>

using namespace cgc;

namespace {

class FreeListTest : public ::testing::Test {
protected:
  static constexpr size_t HeapBytes = 1u << 20;
  void SetUp() override {
    Mem.reset(static_cast<uint8_t *>(std::aligned_alloc(4096, HeapBytes)));
  }
  uint8_t *at(size_t Offset) { return Mem.get() + Offset; }
  struct FreeDeleter {
    void operator()(uint8_t *P) const { std::free(P); }
  };
  std::unique_ptr<uint8_t, FreeDeleter> Mem;
  FreeList List;
};

TEST_F(FreeListTest, EmptyList) {
  EXPECT_EQ(List.freeBytes(), 0u);
  EXPECT_EQ(List.numRanges(), 0u);
  EXPECT_EQ(List.largestRange(), 0u);
  EXPECT_EQ(List.allocate(16), nullptr);
}

TEST_F(FreeListTest, AddAndAllocateExact) {
  List.addRange(at(0), 1024);
  EXPECT_EQ(List.freeBytes(), 1024u);
  uint8_t *P = List.allocate(1024);
  EXPECT_EQ(P, at(0));
  EXPECT_EQ(List.freeBytes(), 0u);
}

TEST_F(FreeListTest, SplitLeavesRemainder) {
  List.addRange(at(0), 1024);
  uint8_t *P = List.allocate(256);
  EXPECT_EQ(P, at(0));
  EXPECT_EQ(List.freeBytes(), 768u);
  EXPECT_EQ(List.numRanges(), 1u);
  EXPECT_EQ(List.allocate(768), at(256));
}

TEST_F(FreeListTest, LargeRangesCoalesceWithPredecessor) {
  List.addRange(at(0), 8192);
  List.addRange(at(8192), 8192);
  EXPECT_EQ(List.numRanges(), 1u);
  EXPECT_EQ(List.largestRange(), 16384u);
}

TEST_F(FreeListTest, LargeRangesCoalesceWithSuccessor) {
  List.addRange(at(8192), 8192);
  List.addRange(at(0), 8192);
  EXPECT_EQ(List.numRanges(), 1u);
  EXPECT_EQ(List.largestRange(), 16384u);
}

TEST_F(FreeListTest, LargeRangesCoalesceBothSides) {
  List.addRange(at(0), 4096);
  List.addRange(at(8192), 4096);
  EXPECT_EQ(List.numRanges(), 2u);
  List.addRange(at(4096), 4096); // Bridges the gap.
  EXPECT_EQ(List.numRanges(), 1u);
  EXPECT_EQ(List.largestRange(), 12288u);
}

TEST_F(FreeListTest, SmallRangesAreBinnedUnmerged) {
  // Small ranges deliberately do not coalesce: the next sweep rebuilds
  // maximal runs from the mark bitmap anyway.
  List.addRange(at(0), 512);
  List.addRange(at(512), 512);
  EXPECT_EQ(List.numRanges(), 2u);
  EXPECT_EQ(List.freeBytes(), 1024u);
  EXPECT_EQ(List.largestRange(), 512u);
  // A request needing the combined size fails...
  EXPECT_EQ(List.allocate(1024), nullptr);
  // ...but each piece is individually allocatable.
  EXPECT_NE(List.allocate(512), nullptr);
  EXPECT_NE(List.allocate(512), nullptr);
}

TEST_F(FreeListTest, SubGranuleRangesAreDropped) {
  // Ranges below the bin granularity are untracked (the sweep reclaims
  // them); accounting must not include them.
  List.addRange(at(0), 32);
  EXPECT_EQ(List.freeBytes(), 0u);
  EXPECT_EQ(List.numRanges(), 0u);
}

TEST_F(FreeListTest, NonAdjacentStaysSeparate) {
  List.addRange(at(0), 512);
  List.addRange(at(1024), 512);
  EXPECT_EQ(List.numRanges(), 2u);
  EXPECT_EQ(List.freeBytes(), 1024u);
  // First fit on a size only the combined range could satisfy fails.
  EXPECT_EQ(List.allocate(1024), nullptr);
}

TEST_F(FreeListTest, AllocateUpToPrefersFullSize) {
  List.addRange(at(0), 4096);
  size_t Granted = 0;
  uint8_t *P = List.allocateUpTo(256, 1024, Granted);
  EXPECT_EQ(P, at(0));
  EXPECT_EQ(Granted, 1024u);
}

TEST_F(FreeListTest, AllocateUpToFallsBackToLargestFit) {
  List.addRange(at(0), 300);
  List.addRange(at(4096), 500);
  size_t Granted = 0;
  uint8_t *P = List.allocateUpTo(256, 1024, Granted);
  EXPECT_EQ(P, at(4096)); // The larger of the two fallbacks.
  EXPECT_EQ(Granted, 500u);
  // Below MinSize everywhere: fails.
  size_t G2 = 0;
  EXPECT_EQ(List.allocateUpTo(400, 1024, G2), nullptr);
  EXPECT_EQ(List.freeBytes(), 300u);
}

TEST_F(FreeListTest, SnapshotRangesOrdered) {
  List.addRange(at(2048), 128);
  List.addRange(at(0), 64);
  auto Ranges = List.snapshotRanges();
  ASSERT_EQ(Ranges.size(), 2u);
  EXPECT_EQ(Ranges[0].first, at(0));
  EXPECT_EQ(Ranges[0].second, 64u);
  EXPECT_EQ(Ranges[1].first, at(2048));
  EXPECT_EQ(Ranges[1].second, 128u);
}

TEST_F(FreeListTest, ClearDropsEverything) {
  List.addRange(at(0), 4096);
  List.clear();
  EXPECT_EQ(List.freeBytes(), 0u);
  EXPECT_EQ(List.numRanges(), 0u);
}

TEST_F(FreeListTest, RandomizedChurnPreservesAccounting) {
  // Property: freeBytes always equals the sum of snapshot ranges, and
  // ranges never overlap, across a random add/allocate interleaving.
  Random Rng(42);
  List.addRange(at(0), HeapBytes);
  std::vector<std::pair<uint8_t *, size_t>> Held;
  for (int I = 0; I < 2000; ++I) {
    if (Rng.nextBool(0.6) || Held.empty()) {
      size_t Want = 64 * (1 + Rng.nextBelow(64));
      if (uint8_t *P = List.allocate(Want)) {
        Held.emplace_back(P, Want);
      }
    } else {
      size_t Pick = Rng.nextBelow(Held.size());
      List.addRange(Held[Pick].first, Held[Pick].second);
      Held.erase(Held.begin() + Pick);
    }
  }
  auto Ranges = List.snapshotRanges();
  size_t Sum = 0;
  for (size_t I = 0; I < Ranges.size(); ++I) {
    Sum += Ranges[I].second;
    if (I + 1 < Ranges.size())
      EXPECT_LE(Ranges[I].first + Ranges[I].second, Ranges[I + 1].first);
  }
  EXPECT_EQ(Sum, List.freeBytes());
  // Returning everything restores the accounting (small ranges stay
  // binned unmerged; a sweep would re-coalesce from the bitmap).
  for (auto &[P, S] : Held)
    List.addRange(P, S);
  EXPECT_EQ(List.freeBytes(), HeapBytes);
}

TEST_F(FreeListTest, WithdrawWithinDropsInsideRanges) {
  List.addRange(at(0), 8192);          // Large, straddles Lo.
  List.addRange(at(16384), 512);       // Small, fully inside.
  List.addRange(at(64 * 1024), 8192);  // Large, fully outside.
  size_t Withdrawn = List.withdrawWithin(at(4096), at(32768));
  // 4 KB of the straddler plus the 512-byte bin entry.
  EXPECT_EQ(Withdrawn, 4096u + 512u);
  // The straddler's outside part survives.
  auto Ranges = List.snapshotRanges();
  ASSERT_EQ(Ranges.size(), 2u);
  EXPECT_EQ(Ranges[0].first, at(0));
  EXPECT_EQ(Ranges[0].second, 4096u);
  EXPECT_EQ(Ranges[1].first, at(64 * 1024));
  EXPECT_EQ(Ranges[1].second, 8192u);
  EXPECT_EQ(List.freeBytes(), 4096u + 8192u);
  // Nothing inside the window is allocatable any more.
  uint8_t *P = List.allocate(4096);
  EXPECT_TRUE(P == nullptr || P < at(4096) || P >= at(32768));
}

TEST_F(FreeListTest, WithdrawWithinStraddlingHighBoundary) {
  List.addRange(at(0), 65536);
  size_t Withdrawn = List.withdrawWithin(at(8192), at(16384));
  EXPECT_EQ(Withdrawn, 8192u);
  EXPECT_EQ(List.freeBytes(), 65536u - 8192u);
  auto Ranges = List.snapshotRanges();
  ASSERT_EQ(Ranges.size(), 2u);
  EXPECT_EQ(Ranges[0].first, at(0));
  EXPECT_EQ(Ranges[0].second, 8192u);
  EXPECT_EQ(Ranges[1].first, at(16384));
  EXPECT_EQ(Ranges[1].second, 65536u - 16384u);
}

TEST_F(FreeListTest, ConcurrentAllocatorsDisjointBlocks) {
  List.addRange(at(0), HeapBytes);
  constexpr int NumThreads = 4;
  std::vector<std::vector<uint8_t *>> Got(NumThreads);
  std::vector<std::thread> Threads;
  for (int T = 0; T < NumThreads; ++T)
    Threads.emplace_back([&, T] {
      for (int I = 0; I < 500; ++I)
        if (uint8_t *P = List.allocate(128))
          Got[T].push_back(P);
    });
  for (auto &Th : Threads)
    Th.join();
  std::vector<uint8_t *> All;
  for (auto &V : Got)
    All.insert(All.end(), V.begin(), V.end());
  std::sort(All.begin(), All.end());
  for (size_t I = 0; I + 1 < All.size(); ++I)
    EXPECT_GE(All[I + 1] - All[I], 128) << "overlapping allocations";
}

} // namespace
