//===- allocation_cache_test.cpp - TLAB / allocation-bit batching --------------//

#include "heap/AllocationCache.h"
#include "heap/FreeList.h"
#include "heap/HeapSpace.h"
#include "support/Fences.h"

#include <gtest/gtest.h>

using namespace cgc;

namespace {

class AllocationCacheTest : public ::testing::Test {
protected:
  AllocationCacheTest() : Heap(1u << 20) {}
  HeapSpace Heap;
  AllocationCache Cache;
};

TEST_F(AllocationCacheTest, StartsEmpty) {
  EXPECT_FALSE(Cache.hasRange());
  EXPECT_EQ(Cache.allocate(16, 0, 0), nullptr);
  EXPECT_FALSE(Cache.hasUnflushedObjects());
}

TEST_F(AllocationCacheTest, BumpAllocationWithinRange) {
  Cache.assignRange(Heap.base(), 4096);
  EXPECT_TRUE(Cache.hasRange());
  EXPECT_EQ(Cache.remainingBytes(), 4096u);
  Object *A = Cache.allocate(64, 2, 1);
  ASSERT_NE(A, nullptr);
  EXPECT_EQ(reinterpret_cast<uint8_t *>(A), Heap.base());
  EXPECT_EQ(A->sizeBytes(), 64u);
  EXPECT_EQ(A->numRefs(), 2u);
  Object *B = Cache.allocate(32, 0, 2);
  ASSERT_NE(B, nullptr);
  EXPECT_EQ(reinterpret_cast<uint8_t *>(B), Heap.base() + 64);
  EXPECT_EQ(Cache.usedBytes(), 96u);
  EXPECT_EQ(Cache.remainingBytes(), 4096u - 96);
}

TEST_F(AllocationCacheTest, ExhaustionReturnsNull) {
  Cache.assignRange(Heap.base(), 64);
  EXPECT_NE(Cache.allocate(48, 0, 0), nullptr);
  EXPECT_EQ(Cache.allocate(32, 0, 0), nullptr); // 16 left.
  EXPECT_NE(Cache.allocate(16, 0, 0), nullptr);
}

TEST_F(AllocationCacheTest, FlushPublishesBitsWithOneFence) {
  Cache.assignRange(Heap.base(), 4096);
  Object *A = Cache.allocate(64, 0, 0);
  Object *B = Cache.allocate(128, 1, 0);
  Object *C = Cache.allocate(16, 0, 0);
  EXPECT_TRUE(Cache.hasUnflushedObjects());
  EXPECT_FALSE(Heap.allocBits().test(A));

  fenceCounters().reset();
  EXPECT_EQ(Cache.flushAllocBits(Heap.allocBits()), 3u);
  EXPECT_EQ(fenceCounters().count(FenceSite::AllocCacheFlush), 1u);

  EXPECT_TRUE(Heap.allocBits().test(A));
  EXPECT_TRUE(Heap.allocBits().test(B));
  EXPECT_TRUE(Heap.allocBits().test(C));
  // Only object starts carry bits.
  EXPECT_FALSE(Heap.allocBits().test(reinterpret_cast<uint8_t *>(A) + 8));
  EXPECT_FALSE(Cache.hasUnflushedObjects());

  // A second flush with nothing new is free (no fence).
  fenceCounters().reset();
  EXPECT_EQ(Cache.flushAllocBits(Heap.allocBits()), 0u);
  EXPECT_EQ(fenceCounters().count(FenceSite::AllocCacheFlush), 0u);
}

TEST_F(AllocationCacheTest, IncrementalFlushOnlyNewObjects) {
  Cache.assignRange(Heap.base(), 4096);
  Cache.allocate(64, 0, 0);
  EXPECT_EQ(Cache.flushAllocBits(Heap.allocBits()), 1u);
  Cache.allocate(32, 0, 0);
  Cache.allocate(32, 0, 0);
  EXPECT_EQ(Cache.flushAllocBits(Heap.allocBits()), 2u);
}

TEST_F(AllocationCacheTest, RetireReturnsTailToFreeList) {
  FreeList FL;
  Cache.assignRange(Heap.base(), 4096);
  Cache.allocate(96, 0, 0);
  Cache.flushAllocBits(Heap.allocBits());
  Cache.retire(FL);
  EXPECT_FALSE(Cache.hasRange());
  EXPECT_EQ(FL.freeBytes(), 4096u - 96);
  auto Ranges = FL.snapshotRanges();
  ASSERT_EQ(Ranges.size(), 1u);
  EXPECT_EQ(Ranges[0].first, Heap.base() + 96);
}

TEST_F(AllocationCacheTest, RetireEmptyCacheIsNoop) {
  FreeList FL;
  Cache.retire(FL);
  EXPECT_EQ(FL.freeBytes(), 0u);
}

TEST_F(AllocationCacheTest, ResetDropsRangeSilently) {
  Cache.assignRange(Heap.base(), 256);
  Cache.allocate(64, 0, 0);
  Cache.flushAllocBits(Heap.allocBits());
  Cache.reset();
  EXPECT_FALSE(Cache.hasRange());
  // Reassign works after reset.
  Cache.assignRange(Heap.base() + 4096, 256);
  EXPECT_NE(Cache.allocate(64, 0, 0), nullptr);
}

} // namespace
