//===- observe_integration_test.cpp - end-to-end observability tests ----------//
///
/// Drives a real collector with GcOptions::Observe on and asserts the
/// event stream is well-formed: timestamps merge in order, STW sections
/// never nest, incremental-trace quanta pair up per thread, the K and
/// Best gauges are finite, and a generously sized ring drops nothing.
/// Also locks in the zero-cost contract: a deterministic workload run
/// with Observe off produces GcStats identical to the same run with
/// Observe on (instrumentation must never change collector behavior).
///
//===----------------------------------------------------------------------===//

#include "observe/Observe.h"
#include "runtime/GcHeap.h"
#include "workloads/GraphChurn.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <vector>

using namespace cgc;

namespace {

GcOptions observedOptions() {
  GcOptions Opts;
  Opts.Kind = CollectorKind::MostlyConcurrent;
  Opts.HeapBytes = 10u << 20;
  Opts.BackgroundThreads = 1;
  Opts.GcWorkerThreads = 2;
  Opts.VerifyEachCycle = true;
  Opts.Observe = true;
  Opts.ObserveRingEvents = 1u << 18; // generous: nothing may drop
  return Opts;
}

struct StreamShape {
  std::map<uint32_t, int> IncDepthPerTid;
  int StwDepth = 0;
  int MaxStwDepth = 0;
  uint64_t NumEvents = 0;
  uint64_t NumKickoffs = 0;
  uint64_t NumCompletes = 0;
  uint64_t NumStwPairs = 0;
};

StreamShape checkStream(const std::vector<EventRecord> &Events) {
  StreamShape S;
  uint64_t PrevTime = 0;
  for (const EventRecord &E : Events) {
    ++S.NumEvents;
    EXPECT_GE(E.TimeNs, PrevTime) << "merge not timestamp-ordered";
    PrevTime = E.TimeNs;
    EXPECT_NE(E.ThreadId, 0u);
    EXPECT_LT(static_cast<uint16_t>(E.Kind),
              static_cast<uint16_t>(EventKind::NumKinds));

    switch (E.Kind) {
    case EventKind::IncTraceBegin:
      EXPECT_EQ(S.IncDepthPerTid[E.ThreadId], 0)
          << "nested inc-trace quantum on tid " << E.ThreadId;
      ++S.IncDepthPerTid[E.ThreadId];
      break;
    case EventKind::IncTraceEnd:
      EXPECT_EQ(S.IncDepthPerTid[E.ThreadId], 1)
          << "inc-trace end without begin on tid " << E.ThreadId;
      --S.IncDepthPerTid[E.ThreadId];
      break;
    case EventKind::StwBegin:
      EXPECT_EQ(S.StwDepth, 0) << "stop-the-world sections nested";
      ++S.StwDepth;
      S.MaxStwDepth = std::max(S.MaxStwDepth, S.StwDepth);
      break;
    case EventKind::StwEnd:
      EXPECT_EQ(S.StwDepth, 1) << "stw end without begin";
      --S.StwDepth;
      ++S.NumStwPairs;
      break;
    case EventKind::CycleKickoff:
      ++S.NumKickoffs;
      break;
    case EventKind::CycleComplete:
      ++S.NumCompletes;
      break;
    default:
      break;
    }
  }
  return S;
}

TEST(ObserveIntegrationTest, GraphChurnStreamIsWellFormed) {
#if !CGC_OBSERVE_COMPILED
  GTEST_SKIP() << "instrumentation compiled out (CGC_OBSERVE=OFF)";
#endif
  GcOptions Opts = observedOptions();
  auto Heap = GcHeap::create(Opts);

  GraphChurnConfig Config;
  Config.Threads = 3;
  Config.DurationMs = 400;
  GraphChurnWorkload Workload(*Heap, Config);
  WorkloadResult Result = Workload.run();
  EXPECT_FALSE(Result.IntegrityFailure);

  // Force at least one full cycle so the stream always has STW pairs.
  MutatorContext &Ctx = Heap->attachThread();
  Heap->requestGC(&Ctx);
  Heap->detachThread(Ctx);

  GcObserver &Obs = Heap->core().Obs;
  EXPECT_TRUE(Obs.enabled());
  std::vector<EventRecord> Events = Obs.drainAll();
  ASSERT_FALSE(Events.empty());
  EXPECT_EQ(Obs.droppedEvents(), 0u) << "generous ring must not drop";
  EXPECT_EQ(Obs.lostThreadEvents(), 0u);

  StreamShape S = checkStream(Events);
  // All sections closed by the time the world is quiet.
  EXPECT_EQ(S.StwDepth, 0);
  for (const auto &Entry : S.IncDepthPerTid)
    EXPECT_EQ(Entry.second, 0) << "unclosed quantum on tid " << Entry.first;
  EXPECT_EQ(S.MaxStwDepth, 1);
  EXPECT_GE(S.NumStwPairs, 1u);
  EXPECT_GE(S.NumCompletes, 1u);
  // Every completed cycle was announced (kickoffs only cover concurrent
  // cycles, completes cover both).
  EXPECT_LE(S.NumKickoffs, S.NumCompletes);

  // Pause histograms saw every completed cycle.
  const MetricsRegistry &M = Obs.metrics();
  uint64_t Cycles = Heap->stats().numCycles();
  EXPECT_EQ(M.histogram(PauseMetric::TotalPause).count(), Cycles);
  EXPECT_GT(M.histogram(PauseMetric::TotalPause).max(), 0u);

  // Gauges: one row per cycle, finite K and Best, sane pool occupancy.
  std::vector<CycleGauges> Gauges = M.cycleGauges();
  ASSERT_EQ(Gauges.size(), Cycles);
  uint32_t TotalPackets = Opts.NumWorkPackets;
  for (const CycleGauges &G : Gauges) {
    EXPECT_GT(G.Cycle, 0u);
    EXPECT_GT(G.KTarget, 0.0);
    EXPECT_TRUE(std::isfinite(G.KActual));
    EXPECT_GE(G.KActual, 0.0);
    EXPECT_TRUE(std::isfinite(G.Best));
    EXPECT_GE(G.Best, 0.0);
    // At cycle end every packet sits in some sub-pool.
    EXPECT_EQ(G.PoolEmpty + G.PoolNonEmpty + G.PoolAlmostFull +
                  G.PoolDeferred,
              TotalPackets);
    EXPECT_EQ(G.HeapBytes, Opts.HeapBytes);
    EXPECT_LE(G.LiveAfterBytes, G.HeapBytes);
    EXPECT_LE(G.FloatingGarbageBytes, G.LiveAfterBytes);
  }
}

TEST(ObserveIntegrationTest, ObserveOffProducesNoEventsOrRings) {
  GcOptions Opts = observedOptions();
  Opts.Observe = false;
  auto Heap = GcHeap::create(Opts);

  GraphChurnConfig Config;
  Config.Threads = 2;
  Config.DurationMs = 150;
  GraphChurnWorkload Workload(*Heap, Config);
  EXPECT_FALSE(Workload.run().IntegrityFailure);

  GcObserver &Obs = Heap->core().Obs;
  EXPECT_FALSE(Obs.enabled());
  EXPECT_EQ(Obs.ringCount(), 0u);
  EXPECT_TRUE(Obs.drainAll().empty());
  EXPECT_EQ(Obs.metrics().histogram(PauseMetric::TotalPause).count(), 0u);
  EXPECT_TRUE(Obs.metrics().cycleGauges().empty());
}

/// A fixed, single-threaded allocation sequence whose GC behavior is
/// fully deterministic (STW collector, no background threads, no timing
/// dependence): the basis for the observe-on == observe-off comparison.
struct DeterministicStats {
  std::vector<CycleRecord> Cycles;
  uint64_t Escalations[static_cast<unsigned>(EscalationRung::NumRungs)] = {};
  bool AllocationFailed = false;
};

DeterministicStats runDeterministicWorkload(bool Observe) {
  GcOptions Opts;
  Opts.Kind = CollectorKind::StopTheWorld;
  Opts.HeapBytes = 4u << 20;
  Opts.GcWorkerThreads = 1;
  Opts.BackgroundThreads = 0;
  Opts.CycleWatchdog = false;
  Opts.VerifyEachCycle = true;
  Opts.Observe = Observe;

  auto Heap = GcHeap::create(Opts);
  MutatorContext &Ctx = Heap->attachThread();
  Ctx.reserveRoots(64);

  DeterministicStats Out;
  // Churn far past the heap size so several collections trigger purely
  // from allocation pressure; keep a rotating window live via roots.
  for (unsigned I = 0; I < 40000; ++I) {
    Object *Obj = Heap->allocate(Ctx, /*PayloadBytes=*/192, /*NumRefs=*/2);
    if (Obj == nullptr) {
      Out.AllocationFailed = true;
      break;
    }
    Ctx.setRoot(I % 64, Obj);
    if (I % 3 == 0)
      Heap->writeRef(Ctx, Obj, 0, Obj);
  }

  Out.Cycles = Heap->stats().snapshot();
  for (unsigned R = 0; R < static_cast<unsigned>(EscalationRung::NumRungs);
       ++R)
    Out.Escalations[R] =
        Heap->stats().escalationCount(static_cast<EscalationRung>(R));
  Heap->detachThread(Ctx);
  return Out;
}

TEST(ObserveIntegrationTest, ObserveDoesNotChangeCollectorBehavior) {
  DeterministicStats Off = runDeterministicWorkload(/*Observe=*/false);
  DeterministicStats On = runDeterministicWorkload(/*Observe=*/true);
  EXPECT_FALSE(Off.AllocationFailed);
  EXPECT_FALSE(On.AllocationFailed);

  // Identical cycle structure: same count and identical non-timing
  // fields cycle by cycle (timings differ run to run by nature).
  ASSERT_EQ(Off.Cycles.size(), On.Cycles.size());
  ASSERT_GE(Off.Cycles.size(), 2u) << "workload must trigger collections";
  for (size_t I = 0; I < Off.Cycles.size(); ++I) {
    EXPECT_EQ(Off.Cycles[I].CycleNumber, On.Cycles[I].CycleNumber);
    EXPECT_EQ(Off.Cycles[I].Concurrent, On.Cycles[I].Concurrent);
    EXPECT_EQ(Off.Cycles[I].LiveBytesAfter, On.Cycles[I].LiveBytesAfter);
    EXPECT_EQ(Off.Cycles[I].BytesTracedFinal, On.Cycles[I].BytesTracedFinal);
    EXPECT_EQ(Off.Cycles[I].HeapBytes, On.Cycles[I].HeapBytes);
  }
  for (unsigned R = 0; R < static_cast<unsigned>(EscalationRung::NumRungs);
       ++R)
    EXPECT_EQ(Off.Escalations[R], On.Escalations[R]) << "rung " << R;
}

} // namespace
