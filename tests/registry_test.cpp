//===- registry_test.cpp - safepoints and handshakes ---------------------------//

#include "mutator/ThreadRegistry.h"

#include "heap/BitVector8.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <thread>

using namespace cgc;

namespace {

class RegistryTest : public ::testing::Test {
protected:
  static constexpr size_t HeapBytes = 1u << 20;
  RegistryTest() : Pool(8) {
    Mem.reset(static_cast<uint8_t *>(std::aligned_alloc(4096, HeapBytes)));
    Bits = std::make_unique<BitVector8>(Mem.get(), HeapBytes);
  }
  struct FreeDeleter {
    void operator()(uint8_t *P) const { std::free(P); }
  };
  std::unique_ptr<uint8_t, FreeDeleter> Mem;
  std::unique_ptr<BitVector8> Bits;
  PacketPool Pool;
  ThreadRegistry Registry;
};

TEST_F(RegistryTest, AttachDetach) {
  MutatorContext Ctx(Pool);
  EXPECT_EQ(Registry.numThreads(), 0u);
  Registry.attach(&Ctx);
  EXPECT_EQ(Registry.numThreads(), 1u);
  int Seen = 0;
  Registry.forEach([&](MutatorContext &M) {
    EXPECT_EQ(&M, &Ctx);
    ++Seen;
  });
  EXPECT_EQ(Seen, 1);
  Registry.detach(&Ctx);
  EXPECT_EQ(Registry.numThreads(), 0u);
}

TEST_F(RegistryTest, StopTheWorldParksPollingThreads) {
  MutatorContext Worker(Pool);
  Registry.attach(&Worker);
  std::atomic<bool> Finish{false};
  std::atomic<uint64_t> Polls{0};
  std::thread T([&] {
    while (!Finish.load(std::memory_order_acquire)) {
      Registry.poll(Worker, *Bits);
      Polls.fetch_add(1, std::memory_order_relaxed);
    }
  });
  // Wait until the thread is demonstrably polling.
  while (Polls.load() < 100)
    std::this_thread::yield();

  Registry.stopTheWorld(nullptr, *Bits);
  EXPECT_EQ(Worker.state(), ExecState::AtSafepoint);
  uint64_t Frozen = Polls.load();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(Polls.load(), Frozen) << "thread ran through the stop";
  Registry.resumeTheWorld();
  while (Polls.load() == Frozen)
    std::this_thread::yield();

  Finish.store(true);
  T.join();
  Registry.detach(&Worker);
}

TEST_F(RegistryTest, IdleThreadsCountAsStopped) {
  MutatorContext Idler(Pool);
  Registry.attach(&Idler);
  Registry.enterIdle(Idler);
  // A stop completes instantly even though the idler never polls.
  Registry.stopTheWorld(nullptr, *Bits);
  Registry.resumeTheWorld();
  Registry.exitIdle(Idler, *Bits);
  EXPECT_EQ(Idler.state(), ExecState::Running);
  Registry.detach(&Idler);
}

TEST_F(RegistryTest, ExitIdleBlocksDuringStop) {
  MutatorContext Idler(Pool);
  Registry.attach(&Idler);
  Registry.enterIdle(Idler);
  Registry.stopTheWorld(nullptr, *Bits);
  std::atomic<bool> Exited{false};
  std::thread T([&] {
    Registry.exitIdle(Idler, *Bits);
    Exited.store(true, std::memory_order_release);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(Exited.load()) << "exitIdle returned mid-stop";
  Registry.resumeTheWorld();
  T.join();
  EXPECT_TRUE(Exited.load());
  Registry.detach(&Idler);
}

TEST_F(RegistryTest, FenceHandshakeWaitsForRunningThreads) {
  MutatorContext Worker(Pool);
  Registry.attach(&Worker);
  std::atomic<bool> StartPolling{false};
  std::atomic<bool> Finish{false};
  std::thread T([&] {
    while (!Finish.load(std::memory_order_acquire)) {
      if (StartPolling.load(std::memory_order_acquire))
        Registry.poll(Worker, *Bits);
      std::this_thread::yield();
    }
  });
  std::atomic<bool> HandshakeDone{false};
  std::thread Requester([&] {
    Registry.requestFenceHandshake(nullptr, *Bits);
    HandshakeDone.store(true, std::memory_order_release);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(HandshakeDone.load())
      << "handshake completed without the running thread's ack";
  StartPolling.store(true, std::memory_order_release);
  Requester.join();
  EXPECT_TRUE(HandshakeDone.load());
  Finish.store(true);
  T.join();
  Registry.detach(&Worker);
}

TEST_F(RegistryTest, HandshakeFlushesAllocationBits) {
  MutatorContext Worker(Pool);
  Registry.attach(&Worker);
  Worker.cache().assignRange(Mem.get(), 4096);
  Object *Obj = Worker.cache().allocate(64, 0, 0);
  ASSERT_NE(Obj, nullptr);
  EXPECT_FALSE(Bits->test(Obj));
  // Self-acknowledged handshake publishes the caller's bits.
  Registry.requestFenceHandshake(&Worker, *Bits);
  EXPECT_TRUE(Bits->test(Obj));
  Worker.cache().reset();
  Registry.detach(&Worker);
}

TEST_F(RegistryTest, HandshakeSkipsIdleAndParked) {
  MutatorContext Idler(Pool);
  Registry.attach(&Idler);
  Registry.enterIdle(Idler);
  // Completes without any cooperation from the idler.
  Registry.requestFenceHandshake(nullptr, *Bits);
  Registry.exitIdle(Idler, *Bits);
  Registry.detach(&Idler);
}

TEST_F(RegistryTest, PollAcknowledgesLatestEpochOnly) {
  MutatorContext Worker(Pool);
  Registry.attach(&Worker);
  uint64_t Before = Worker.HandshakeAck.load();
  std::thread Requester([&] { Registry.requestFenceHandshake(nullptr, *Bits); });
  // Poll until the handshake completes.
  while (true) {
    Registry.poll(Worker, *Bits);
    if (Worker.HandshakeAck.load() > Before)
      break;
    std::this_thread::yield();
  }
  Requester.join();
  EXPECT_EQ(Worker.HandshakeAck.load(), Before + 1);
  Registry.detach(&Worker);
}

TEST_F(RegistryTest, RootAccessorsLockConsistently) {
  MutatorContext Ctx(Pool);
  Ctx.reserveRoots(4);
  Ctx.setRoot(0, reinterpret_cast<Object *>(Mem.get()));
  Ctx.pushRoot(reinterpret_cast<Object *>(Mem.get() + 8));
  EXPECT_EQ(Ctx.numRoots(), 5u);
  int Count = 0;
  Ctx.withRoots([&](const std::vector<uintptr_t> &Roots) {
    Count = static_cast<int>(Roots.size());
  });
  EXPECT_EQ(Count, 5);
  Ctx.popRoots(1);
  EXPECT_EQ(Ctx.numRoots(), 4u);
  EXPECT_EQ(Ctx.getRoot(0), reinterpret_cast<Object *>(Mem.get()));
}

} // namespace
