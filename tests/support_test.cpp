//===- support_test.cpp - support library units --------------------------------//

#include "support/EnvKnob.h"
#include "support/Fences.h"
#include "support/Random.h"
#include "support/SampleSeries.h"
#include "support/Smoothing.h"
#include "support/SpinLock.h"
#include "support/TablePrinter.h"
#include "support/Timing.h"

#include <gtest/gtest.h>

#include <cstring>

#include <thread>
#include <vector>

using namespace cgc;

TEST(FencesTest, CountersPerSite) {
  fenceCounters().reset();
  fence(FenceSite::AllocCacheFlush);
  fence(FenceSite::AllocCacheFlush);
  fence(FenceSite::PacketPublish);
  EXPECT_EQ(fenceCounters().count(FenceSite::AllocCacheFlush), 2u);
  EXPECT_EQ(fenceCounters().count(FenceSite::PacketPublish), 1u);
  EXPECT_EQ(fenceCounters().count(FenceSite::TracerBatch), 0u);
  EXPECT_EQ(fenceCounters().totalRealFences(), 3u);
  EXPECT_EQ(fenceCounters().totalNaiveFences(), 0u);
}

TEST(FencesTest, NaiveSitesSeparated) {
  fenceCounters().reset();
  recordNaiveFence(FenceSite::NaivePerWriteBarrier);
  recordNaiveFence(FenceSite::NaivePerObjectAlloc);
  EXPECT_EQ(fenceCounters().totalRealFences(), 0u);
  EXPECT_EQ(fenceCounters().totalNaiveFences(), 2u);
  fenceCounters().reset();
  EXPECT_EQ(fenceCounters().totalNaiveFences(), 0u);
}

TEST(FencesTest, SiteNamesAreUnique) {
  for (unsigned I = 0; I < FenceCounters::NumSites; ++I)
    for (unsigned J = I + 1; J < FenceCounters::NumSites; ++J)
      EXPECT_STRNE(fenceSiteName(static_cast<FenceSite>(I)),
                   fenceSiteName(static_cast<FenceSite>(J)));
}

TEST(SmoothingTest, FirstSampleReplacesSeed) {
  ExponentialAverage Avg(100.0, 0.5);
  EXPECT_DOUBLE_EQ(Avg.value(), 100.0);
  EXPECT_FALSE(Avg.hasSample());
  Avg.addSample(10.0);
  EXPECT_DOUBLE_EQ(Avg.value(), 10.0);
  EXPECT_TRUE(Avg.hasSample());
}

TEST(SmoothingTest, ConvergesToConstantInput) {
  ExponentialAverage Avg(0.0, 0.5);
  for (int I = 0; I < 40; ++I)
    Avg.addSample(42.0);
  EXPECT_NEAR(Avg.value(), 42.0, 1e-9);
}

TEST(SmoothingTest, AlphaWeighting) {
  ExponentialAverage Avg(0.0, 0.25);
  Avg.addSample(100.0);
  Avg.addSample(0.0);
  // 0.25 * 0 + 0.75 * 100
  EXPECT_DOUBLE_EQ(Avg.value(), 75.0);
}

TEST(RandomTest, DeterministicGivenSeed) {
  Random A(7), B(7), C(8);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
  bool Differs = false;
  Random A2(7);
  for (int I = 0; I < 100; ++I)
    if (A2.next() != C.next())
      Differs = true;
  EXPECT_TRUE(Differs);
}

TEST(RandomTest, BoundsRespected) {
  Random Rng(123);
  for (int I = 0; I < 1000; ++I) {
    EXPECT_LT(Rng.nextBelow(17), 17u);
    uint64_t V = Rng.nextInRange(5, 9);
    EXPECT_GE(V, 5u);
    EXPECT_LE(V, 9u);
    double D = Rng.nextDouble();
    EXPECT_GE(D, 0.0);
    EXPECT_LT(D, 1.0);
  }
}

TEST(RandomTest, RoughlyUniform) {
  Random Rng(99);
  int Buckets[10] = {};
  for (int I = 0; I < 10000; ++I)
    ++Buckets[Rng.nextBelow(10)];
  for (int B : Buckets) {
    EXPECT_GT(B, 800);
    EXPECT_LT(B, 1200);
  }
}

TEST(SampleSeriesTest, Aggregates) {
  SampleSeries S;
  EXPECT_EQ(S.count(), 0u);
  EXPECT_DOUBLE_EQ(S.mean(), 0.0);
  S.add(2.0);
  S.add(4.0);
  S.add(6.0);
  EXPECT_EQ(S.count(), 3u);
  EXPECT_DOUBLE_EQ(S.mean(), 4.0);
  EXPECT_DOUBLE_EQ(S.max(), 6.0);
  EXPECT_DOUBLE_EQ(S.min(), 2.0);
  EXPECT_DOUBLE_EQ(S.sum(), 12.0);
  EXPECT_NEAR(S.stddev(), 1.632993, 1e-5);
  S.reset();
  EXPECT_EQ(S.count(), 0u);
}

TEST(SampleSeriesTest, Percentiles) {
  SampleSeries S;
  EXPECT_DOUBLE_EQ(S.percentile(0.5), 0.0);
  for (int I = 1; I <= 100; ++I)
    S.add(static_cast<double>(I));
  EXPECT_DOUBLE_EQ(S.percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(S.percentile(1.0), 100.0);
  EXPECT_NEAR(S.percentile(0.5), 50.5, 0.01);
  EXPECT_NEAR(S.percentile(0.99), 99.01, 0.01);
  EXPECT_NEAR(S.percentile(0.95), 95.05, 0.01);
}

TEST(SampleSeriesTest, ConcurrentAdds) {
  SampleSeries S;
  std::vector<std::thread> Threads;
  for (int T = 0; T < 4; ++T)
    Threads.emplace_back([&S] {
      for (int I = 0; I < 1000; ++I)
        S.add(1.0);
    });
  for (auto &T : Threads)
    T.join();
  EXPECT_EQ(S.count(), 4000u);
  EXPECT_DOUBLE_EQ(S.sum(), 4000.0);
}

TEST(SpinLockTest, MutualExclusion) {
  SpinLock Lock;
  int Counter = 0;
  std::vector<std::thread> Threads;
  for (int T = 0; T < 4; ++T)
    Threads.emplace_back([&] {
      for (int I = 0; I < 10000; ++I) {
        std::lock_guard<SpinLock> Guard(Lock);
        ++Counter;
      }
    });
  for (auto &T : Threads)
    T.join();
  EXPECT_EQ(Counter, 40000);
}

TEST(SpinLockTest, TryLock) {
  SpinLock Lock;
  EXPECT_TRUE(Lock.try_lock());
  EXPECT_FALSE(Lock.try_lock());
  Lock.unlock();
  EXPECT_TRUE(Lock.try_lock());
  Lock.unlock();
}

TEST(TimingTest, StopwatchMonotonic) {
  Stopwatch W;
  uint64_t A = W.elapsedNanos();
  uint64_t B = W.elapsedNanos();
  EXPECT_LE(A, B);
  W.restart();
  EXPECT_LE(W.elapsedMillis(), 1000.0);
}

TEST(TablePrinterTest, Formatting) {
  EXPECT_EQ(TablePrinter::num(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::num(uint64_t{42}), "42");
  EXPECT_EQ(TablePrinter::percent(0.123, 1), "12.3%");
}

TEST(TablePrinterTest, PrintsAlignedColumns) {
  TablePrinter T({"name", "value"});
  T.addRow({"a", "1"});
  T.addRow({"long-name"}); // Missing cell renders empty.
  std::FILE *F = std::tmpfile();
  ASSERT_NE(F, nullptr);
  T.print(F);
  std::rewind(F);
  char Buf[256] = {};
  size_t N = std::fread(Buf, 1, sizeof(Buf) - 1, F);
  std::fclose(F);
  ASSERT_GT(N, 0u);
  EXPECT_NE(std::strstr(Buf, "name"), nullptr);
  EXPECT_NE(std::strstr(Buf, "long-name"), nullptr);
}

TEST(EnvKnobTest, AcceptsPlainAndHexIntegers) {
  uint64_t V = 0;
  EXPECT_TRUE(parseEnvKnob("0", &V));
  EXPECT_EQ(V, 0u);
  EXPECT_TRUE(parseEnvKnob("1500", &V));
  EXPECT_EQ(V, 1500u);
  EXPECT_TRUE(parseEnvKnob("0x20", &V));
  EXPECT_EQ(V, 0x20u);
  EXPECT_TRUE(parseEnvKnob("18446744073709551615", &V));
  EXPECT_EQ(V, UINT64_MAX);
}

TEST(EnvKnobTest, RejectsJunkWithReason) {
  // The whole point of the shared parser: a mistyped CGC_BENCH_* knob
  // must produce an error, never a silent strtoull zero.
  uint64_t V = 0;
  std::string Error;
  EXPECT_FALSE(parseEnvKnob(nullptr, &V, &Error));
  EXPECT_FALSE(parseEnvKnob("", &V, &Error));
  EXPECT_NE(Error.find("empty"), std::string::npos);
  EXPECT_FALSE(parseEnvKnob("-5", &V, &Error));
  EXPECT_NE(Error.find("negative"), std::string::npos);
  EXPECT_FALSE(parseEnvKnob("3OO", &V, &Error)); // the classic typo
  EXPECT_NE(Error.find("junk"), std::string::npos);
  EXPECT_FALSE(parseEnvKnob("2.5s", &V, &Error));
  EXPECT_FALSE(parseEnvKnob("abc", &V, &Error));
  EXPECT_NE(Error.find("not a number"), std::string::npos);
  EXPECT_FALSE(parseEnvKnob(" 12", &V, &Error));
  EXPECT_FALSE(parseEnvKnob("12 ", &V, &Error));
  EXPECT_FALSE(parseEnvKnob("+12", &V, &Error));
  EXPECT_FALSE(parseEnvKnob("99999999999999999999999", &V, &Error));
  EXPECT_NE(Error.find("out of range"), std::string::npos);
}

TEST(EnvKnobTest, EnvReadFallsBackToDefaultWhenUnset) {
  unsetenv("CGC_TEST_KNOB_UNSET");
  EXPECT_EQ(envKnobU64("CGC_TEST_KNOB_UNSET", 42), 42u);
  setenv("CGC_TEST_KNOB_SET", "1234", 1);
  EXPECT_EQ(envKnobU64("CGC_TEST_KNOB_SET", 42), 1234u);
  unsetenv("CGC_TEST_KNOB_SET");
}
