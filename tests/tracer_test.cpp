//===- tracer_test.cpp - marking engine units -----------------------------------//

#include "gc/Tracer.h"

#include "mutator/ThreadRegistry.h"
#include "support/Fences.h"

#include <gtest/gtest.h>

using namespace cgc;

namespace {

class TracerTest : public ::testing::Test {
protected:
  TracerTest()
      : Heap(2u << 20), Pool(16), Trace(Heap, Pool, Registry), Ctx(Pool) {
    Heap.freeList().clear();
  }

  /// Plants an allocated object whose allocation bit is published.
  Object *plant(size_t Offset, uint16_t NumRefs) {
    Object *Obj = reinterpret_cast<Object *>(Heap.base() + Offset);
    Obj->initialize(
        static_cast<uint32_t>(Object::requiredSize(8, NumRefs)), NumRefs, 0);
    Heap.allocBits().set(Obj);
    return Obj;
  }

  /// Plants an object WITHOUT publishing its allocation bit (fresh cache
  /// contents, Section 5.2).
  Object *plantUnpublished(size_t Offset, uint16_t NumRefs) {
    Object *Obj = reinterpret_cast<Object *>(Heap.base() + Offset);
    Obj->initialize(
        static_cast<uint32_t>(Object::requiredSize(8, NumRefs)), NumRefs, 0);
    return Obj;
  }

  HeapSpace Heap;
  PacketPool Pool;
  ThreadRegistry Registry;
  Tracer Trace;
  TraceContext Ctx;
};

TEST_F(TracerTest, MarkAndQueueMarksOnce) {
  Object *Obj = plant(0, 0);
  Trace.beginCycle();
  Trace.markAndQueue(Ctx, Obj);
  EXPECT_TRUE(Heap.markBits().test(Obj));
  Trace.markAndQueue(Ctx, Obj); // Second call is a no-op.
  size_t Traced = Trace.traceWork(Ctx, SIZE_MAX, true, false);
  EXPECT_EQ(Traced, Obj->sizeBytes()); // Scanned exactly once.
  Ctx.release();
}

TEST_F(TracerTest, TransitiveMarkingThroughPackets) {
  // A chain of 100 published objects.
  std::vector<Object *> Chain;
  for (int I = 0; I < 100; ++I)
    Chain.push_back(plant(static_cast<size_t>(I) * 64, 1));
  for (int I = 0; I + 1 < 100; ++I)
    Chain[I]->storeRefRaw(0, Chain[I + 1]);
  Trace.beginCycle();
  Trace.markAndQueue(Ctx, Chain[0]);
  size_t Traced = Trace.traceWork(Ctx, SIZE_MAX, true, false);
  Ctx.release();
  EXPECT_EQ(Traced, 100u * Chain[0]->sizeBytes());
  for (Object *Obj : Chain)
    EXPECT_TRUE(Heap.markBits().test(Obj));
  EXPECT_TRUE(Pool.allPacketsEmptyAndIdle());
}

TEST_F(TracerTest, BudgetBoundsTheIncrement) {
  for (int I = 0; I < 50; ++I) {
    Object *Obj = plant(static_cast<size_t>(I) * 64, 0);
    Trace.markAndQueue(Ctx, Obj);
  }
  size_t ObjBytes = Object::requiredSize(8, 0);
  size_t Traced = Trace.traceWork(Ctx, 10 * ObjBytes, true, false);
  EXPECT_GE(Traced, 10 * ObjBytes);
  EXPECT_LT(Traced, 50 * ObjBytes);
  // The rest is still queued; a second increment finishes it.
  size_t Rest = Trace.traceWork(Ctx, SIZE_MAX, true, false);
  EXPECT_EQ(Traced + Rest, 50 * ObjBytes);
  Ctx.release();
}

TEST_F(TracerTest, ConservativeWordFiltering) {
  Object *Obj = plant(0, 0);
  Trace.beginCycle();
  Trace.markConservativeWord(Ctx, reinterpret_cast<uintptr_t>(Obj));
  // Junk: misaligned, outside, unpublished granule.
  Trace.markConservativeWord(Ctx, reinterpret_cast<uintptr_t>(Obj) + 4);
  Trace.markConservativeWord(Ctx, 0x12345678);
  Trace.markConservativeWord(
      Ctx, reinterpret_cast<uintptr_t>(Heap.base() + 4096));
  size_t Traced = Trace.traceWork(Ctx, SIZE_MAX, true, false);
  Ctx.release();
  EXPECT_EQ(Traced, Obj->sizeBytes());
  EXPECT_FALSE(Heap.markBits().test(Heap.base() + 4096));
}

TEST_F(TracerTest, UnpublishedObjectsAreDeferredNotScanned) {
  // An unpublished object queued for tracing must go to the Deferred
  // pool (its header/slots may not be visible yet on weak hardware).
  Object *Fresh = plantUnpublished(0, 1);
  Trace.beginCycle();
  Trace.markAndQueue(Ctx, Fresh);
  size_t Traced = Trace.traceWork(Ctx, SIZE_MAX, /*CheckAllocBits=*/true,
                                  false);
  EXPECT_EQ(Traced, 0u);
  EXPECT_EQ(Trace.deferredCount(), 1u);
  Ctx.release();
  EXPECT_TRUE(Pool.hasDeferred());
  // The "cache flush" publishes the bit; redistribution makes the object
  // traceable.
  Heap.allocBits().set(Fresh);
  Pool.redistributeDeferred();
  size_t Traced2 = Trace.traceWork(Ctx, SIZE_MAX, true, false);
  EXPECT_EQ(Traced2, Fresh->sizeBytes());
  Ctx.release();
  EXPECT_TRUE(Pool.allPacketsEmptyAndIdle());
}

TEST_F(TracerTest, TracerBatchFencePerInputPacket) {
  for (int I = 0; I < 10; ++I) {
    Object *Obj = plant(static_cast<size_t>(I) * 64, 0);
    Trace.markAndQueue(Ctx, Obj);
  }
  fenceCounters().reset();
  Trace.traceWork(Ctx, SIZE_MAX, /*CheckAllocBits=*/true, false);
  // One batch fence for the whole packet of 10 objects, not one each.
  EXPECT_LE(fenceCounters().count(FenceSite::TracerBatch), 2u);
  EXPECT_GE(fenceCounters().count(FenceSite::TracerBatch), 1u);
  Ctx.release();
}

TEST_F(TracerTest, OverflowDirtiesTheCard) {
  // A pool of 2 packets: marking more than 2 * Capacity roots overflows.
  PacketPool TinyPool(2);
  Tracer TinyTrace(Heap, TinyPool, Registry);
  TraceContext TinyCtx(TinyPool);
  TinyTrace.beginCycle();
  size_t Planted = 2u * WorkPacket::Capacity + 50;
  for (size_t I = 0; I < Planted; ++I) {
    Object *Obj = plant(I * 64, 0);
    TinyTrace.markAndQueue(TinyCtx, Obj);
  }
  EXPECT_GT(TinyTrace.overflowCount(), 0u);
  // Every overflow victim is marked and sits on a dirty card.
  EXPECT_GE(Heap.cards().countDirty(), 1u);
  size_t Marked =
      Heap.markBits().countInRange(Heap.base(), Heap.base() + Planted * 64);
  EXPECT_EQ(Marked, Planted);
  while (TinyCtx.popWork())
    ;
  TinyCtx.release();
}

TEST_F(TracerTest, CycleCountersReset) {
  Object *Obj = plant(0, 0);
  Trace.beginCycle();
  Trace.markAndQueue(Ctx, Obj);
  Trace.traceWork(Ctx, SIZE_MAX, true, false);
  Ctx.release();
  EXPECT_GT(Trace.cycleTracedBytes(), 0u);
  Trace.beginCycle();
  EXPECT_EQ(Trace.cycleTracedBytes(), 0u);
  EXPECT_EQ(Trace.overflowCount(), 0u);
  EXPECT_EQ(Trace.deferredCount(), 0u);
}

TEST_F(TracerTest, AddTracedBytesFeedsTheFormulaT) {
  Trace.beginCycle();
  Trace.addTracedBytes(4096);
  EXPECT_EQ(Trace.cycleTracedBytes(), 4096u);
}

} // namespace
