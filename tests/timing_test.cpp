//===- timing_test.cpp - Clock / ManualClock unit tests -----------------------//
///
/// Locks in the swappable-clock contract every timing-sensitive test
/// depends on: nowNanos() routes through Clock, ManualClock freezes it
/// deterministically (advance-only, RAII-restored), and Stopwatch
/// measures exactly what the installed source says.
///
//===----------------------------------------------------------------------===//

#include "support/Timing.h"

#include <gtest/gtest.h>

#include <thread>

using namespace cgc;

namespace {

TEST(TimingTest, RealClockIsMonotonicAndDefault) {
  EXPECT_FALSE(Clock::isFaked());
  uint64_t A = nowNanos();
  uint64_t B = nowNanos();
  EXPECT_LE(A, B);
  EXPECT_GT(A, 0u);
}

TEST(TimingTest, ManualClockFreezesTime) {
  ManualClock Fake(/*StartNanos=*/1000);
  EXPECT_TRUE(Clock::isFaked());
  EXPECT_EQ(nowNanos(), 1000u);
  // Real time passing changes nothing.
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_EQ(nowNanos(), 1000u);

  Fake.advanceNanos(500);
  EXPECT_EQ(nowNanos(), 1500u);
  Fake.advanceMillis(2);
  EXPECT_EQ(nowNanos(), 2001500u);
  Fake.setNanos(5000000);
  EXPECT_EQ(nowNanos(), 5000000u);
  EXPECT_EQ(Fake.nanos(), 5000000u);
}

TEST(TimingTest, StopwatchReadsTheInstalledSource) {
  ManualClock Fake(100);
  Stopwatch Watch;
  EXPECT_EQ(Watch.elapsedNanos(), 0u);
  Fake.advanceNanos(2500000);
  EXPECT_EQ(Watch.elapsedNanos(), 2500000u);
  EXPECT_DOUBLE_EQ(Watch.elapsedMillis(), 2.5);
  Watch.restart();
  EXPECT_EQ(Watch.elapsedNanos(), 0u);
  Fake.advanceNanos(7);
  EXPECT_EQ(Watch.elapsedNanos(), 7u);
}

TEST(TimingTest, DestructionRestoresRealClock) {
  uint64_t RealBefore = Clock::realNowNanos();
  {
    ManualClock Fake(42);
    EXPECT_EQ(nowNanos(), 42u);
    // realNowNanos bypasses the fake.
    EXPECT_GE(Clock::realNowNanos(), RealBefore);
  }
  EXPECT_FALSE(Clock::isFaked());
  EXPECT_GE(nowNanos(), RealBefore);
}

TEST(TimingTest, FakeIsVisibleAcrossThreads) {
  ManualClock Fake(777);
  uint64_t Seen = 0;
  std::thread Reader([&Seen] { Seen = nowNanos(); });
  Reader.join();
  EXPECT_EQ(Seen, 777u);
}

} // namespace
