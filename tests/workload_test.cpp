//===- workload_test.cpp - workload end-to-end integrity -----------------------//

#include "workloads/BinaryTrees.h"
#include "workloads/Compiler.h"
#include "workloads/GraphChurn.h"
#include "workloads/KvServer.h"
#include "workloads/Warehouse.h"

#include "runtime/GcHeap.h"

#include <gtest/gtest.h>

using namespace cgc;

namespace {

GcOptions smallHeap(CollectorKind Kind) {
  GcOptions Opts;
  Opts.Kind = Kind;
  Opts.HeapBytes = 12u << 20;
  Opts.GcWorkerThreads = 2;
  Opts.BackgroundThreads = 1;
  Opts.NumWorkPackets = 128;
  Opts.VerifyEachCycle = true;
  return Opts;
}

class WorkloadOnBothCollectors
    : public ::testing::TestWithParam<CollectorKind> {};

TEST_P(WorkloadOnBothCollectors, WarehouseRunsAndCollects) {
  auto Heap = GcHeap::create(smallHeap(GetParam()));
  WarehouseConfig Config;
  Config.Threads = 3;
  Config.DurationMs = 800;
  Config.sizeLiveSet(6u << 20); // ~50% occupancy.
  WarehouseWorkload Workload(*Heap, Config);
  WorkloadResult Result = Workload.run();
  EXPECT_GT(Result.Transactions, 100u);
  EXPECT_GT(Result.BytesAllocated, Heap->options().HeapBytes)
      << "workload must outlive one heap's worth of allocation";
  EXPECT_GE(Heap->completedCycles(), 1u);
  EXPECT_FALSE(Result.IntegrityFailure);
}

TEST_P(WorkloadOnBothCollectors, WarehouseWithThinkTime) {
  auto Heap = GcHeap::create(smallHeap(GetParam()));
  WarehouseConfig Config;
  Config.Threads = 4;
  Config.DurationMs = 500;
  Config.ThinkMicros = 200; // pBOB-style idle time.
  Config.sizeLiveSet(4u << 20);
  WarehouseWorkload Workload(*Heap, Config);
  WorkloadResult Result = Workload.run();
  EXPECT_GT(Result.Transactions, 10u);
}

TEST_P(WorkloadOnBothCollectors, CompilerProducesCorrectCode) {
  auto Heap = GcHeap::create(smallHeap(GetParam()));
  CompilerConfig Config;
  Config.Threads = 1;
  Config.DurationMs = 800;
  CompilerWorkload Workload(*Heap, Config);
  WorkloadResult Result = Workload.run();
  EXPECT_GT(Result.Transactions, 5u);
  EXPECT_FALSE(Result.IntegrityFailure)
      << "compiled code disagreed with the AST oracle";
}

TEST_P(WorkloadOnBothCollectors, BinaryTreesChecksumsStable) {
  auto Heap = GcHeap::create(smallHeap(GetParam()));
  BinaryTreesConfig Config;
  Config.Threads = 2;
  Config.DurationMs = 800;
  Config.LongLivedDepth = 12;
  BinaryTreesWorkload Workload(*Heap, Config);
  WorkloadResult Result = Workload.run();
  EXPECT_GT(Result.Transactions, 10u);
  EXPECT_FALSE(Result.IntegrityFailure)
      << "a tree checksum changed under collection";
  EXPECT_GE(Heap->completedCycles(), 1u);
}

TEST_P(WorkloadOnBothCollectors, BinaryTreesUnderCompaction) {
  GcOptions Opts = smallHeap(GetParam());
  Opts.CompactEveryNCycles = 1;
  Opts.EvacuationAreaBytes = 1u << 20;
  auto Heap = GcHeap::create(Opts);
  BinaryTreesConfig Config;
  Config.Threads = 2;
  Config.DurationMs = 800;
  Config.LongLivedDepth = 12;
  BinaryTreesWorkload Workload(*Heap, Config);
  WorkloadResult Result = Workload.run();
  EXPECT_FALSE(Result.IntegrityFailure)
      << "compaction broke a tree (moved node or stale reference)";
  uint64_t Evacuated = 0;
  for (const CycleRecord &R : Heap->stats().snapshot())
    Evacuated += R.EvacuatedObjects;
  EXPECT_GT(Evacuated, 0u);
}

TEST_P(WorkloadOnBothCollectors, GraphChurnStaysConsistent) {
  auto Heap = GcHeap::create(smallHeap(GetParam()));
  GraphChurnConfig Config;
  Config.Threads = 3;
  Config.DurationMs = 800;
  GraphChurnWorkload Workload(*Heap, Config);
  WorkloadResult Result = Workload.run();
  EXPECT_GT(Result.Transactions, 1000u);
  EXPECT_FALSE(Result.IntegrityFailure)
      << "an edge nonce mismatched: live object was reclaimed";
}

TEST_P(WorkloadOnBothCollectors, KvServerServesWithIntegrity) {
  auto Heap = GcHeap::create(smallHeap(GetParam()));
  KvWorkloadConfig Config;
  Config.Threads = 3;
  Config.DurationMs = 800;
  KvWorkload Workload(*Heap, Config);
  WorkloadResult Result = Workload.run();
  EXPECT_GT(Result.Transactions, 1000u);
  EXPECT_FALSE(Result.IntegrityFailure)
      << "a KV value stamp mismatched: live object reclaimed or corrupted";
  EXPECT_GE(Heap->completedCycles(), 1u);
}

INSTANTIATE_TEST_SUITE_P(BothCollectors, WorkloadOnBothCollectors,
                         ::testing::Values(CollectorKind::StopTheWorld,
                                           CollectorKind::MostlyConcurrent),
                         [](const auto &Info) {
                           return Info.param == CollectorKind::StopTheWorld
                                      ? "Stw"
                                      : "Concurrent";
                         });

TEST(WorkloadConfigTest, WarehouseLiveSetSizing) {
  WarehouseConfig Config;
  Config.Threads = 4;
  Config.sizeLiveSet(8u << 20);
  size_t Estimate = Config.estimatedLiveBytes();
  EXPECT_GT(Estimate, 6u << 20);
  EXPECT_LT(Estimate, 9u << 20);
  // Tiny targets clamp to the minimum ring.
  Config.sizeLiveSet(0);
  EXPECT_EQ(Config.LiveTreesPerThread, 4u);
}

TEST(WorkloadConfigTest, ThroughputMath) {
  WorkloadResult R;
  R.Transactions = 500;
  R.DurationMs = 250;
  EXPECT_DOUBLE_EQ(R.throughput(), 2000.0);
  WorkloadResult Zero;
  EXPECT_DOUBLE_EQ(Zero.throughput(), 0.0);
}

} // namespace
