//===- fault_injection_test.cpp - unhappy paths under injection ----------------//
///
/// Exercises the degradation machinery the paper describes but never
/// tests deliberately: packet overflow (Section 4.3), allocation
/// outrunning the tracer, the stop-the-world fallback, and outright heap
/// exhaustion. The FaultInjector makes each path reachable on demand;
/// the chaos soak at the end runs them all together under seeded
/// probabilistic injection.
///
//===----------------------------------------------------------------------===//

#include "TestSeed.h"
#include "gc/ConcurrentCollector.h"
#include "gc/Tracer.h"
#include "mutator/ThreadRegistry.h"
#include "runtime/GcHeap.h"
#include "support/FaultInjector.h"
#include "support/Random.h"
#include "support/Timing.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <vector>

using namespace cgc;

namespace {

/// --- FaultInjector unit behavior --------------------------------------

TEST(FaultInjectorTest, EveryNthFiresExactlyOnSchedule) {
  FaultPlan Plan;
  Plan.failEveryNth(FaultSite::TracerStep, 3);
  FaultInjector Inject(Plan);
  std::vector<bool> Decisions;
  for (int I = 0; I < 9; ++I)
    Decisions.push_back(Inject.shouldFail(FaultSite::TracerStep));
  std::vector<bool> Expected = {false, false, true,  false, false,
                                true,  false, false, true};
  EXPECT_EQ(Decisions, Expected);
  EXPECT_EQ(Inject.visits(FaultSite::TracerStep), 9u);
  EXPECT_EQ(Inject.injected(FaultSite::TracerStep), 3u);
  // Other sites are untouched.
  EXPECT_EQ(Inject.visits(FaultSite::AllocCacheRefill), 0u);
}

TEST(FaultInjectorTest, SeededSequenceIsReproducible) {
  FaultPlan Plan;
  Plan.Seed = 0xfeedface;
  Plan.failWithProbability(FaultSite::AllocCacheRefill, 0.3);

  auto draw = [](const FaultPlan &P) {
    FaultInjector Inject(P);
    std::vector<bool> Decisions;
    for (int I = 0; I < 500; ++I)
      Decisions.push_back(Inject.shouldFail(FaultSite::AllocCacheRefill));
    return Decisions;
  };

  std::vector<bool> A = draw(Plan);
  std::vector<bool> B = draw(Plan);
  EXPECT_EQ(A, B) << "same seed must give an identical decision sequence";

  size_t Hits = 0;
  for (bool D : A)
    Hits += D;
  EXPECT_GT(Hits, 100u); // ~150 expected; loose bounds, deterministic seed.
  EXPECT_LT(Hits, 200u);

  Plan.Seed = 0xdecafbad;
  EXPECT_NE(draw(Plan), A) << "different seed must give a different sequence";
}

TEST(FaultInjectorTest, DisarmedInjectorIsFreeOfSideEffects) {
  FaultInjector Inject; // Default: disarmed.
  EXPECT_FALSE(Inject.enabled());
  for (int I = 0; I < 10; ++I) {
    EXPECT_FALSE(Inject.shouldFail(FaultSite::FreeListAllocate));
    Inject.maybePerturb(FaultSite::PacketCas);
  }
  // The cold path must not even count visits.
  EXPECT_EQ(Inject.visits(FaultSite::FreeListAllocate), 0u);
  EXPECT_EQ(Inject.perturbed(FaultSite::PacketCas), 0u);
  EXPECT_EQ(Inject.totalInjected(), 0u);
}

TEST(FaultInjectorTest, ReconfigurePreservesCumulativeCounters) {
  FaultPlan Always;
  Always.failEveryNth(FaultSite::CardCleanBegin, 1);
  FaultInjector Inject(Always);
  EXPECT_TRUE(Inject.shouldFail(FaultSite::CardCleanBegin));
  EXPECT_TRUE(Inject.shouldFail(FaultSite::CardCleanBegin));

  Inject.disarm();
  EXPECT_FALSE(Inject.shouldFail(FaultSite::CardCleanBegin));

  // Re-arming continues the same visit sequence (multi-phase chaos runs
  // keep cumulative totals).
  Inject.reconfigure(Always);
  EXPECT_TRUE(Inject.shouldFail(FaultSite::CardCleanBegin));
  EXPECT_EQ(Inject.injected(FaultSite::CardCleanBegin), 3u);
  EXPECT_EQ(Inject.visits(FaultSite::CardCleanBegin), 3u);
}

/// --- Section 4.3 overflow fallback under injected pool exhaustion ------

TEST(FaultInjectionTest, PacketOverflowFallsBackToMarkAndDirtyCard) {
  FaultPlan Plan;
  Plan.failEveryNth(FaultSite::PacketAcquireOutput, 1);
  Plan.failEveryNth(FaultSite::PacketAcquireEmpty, 1);
  FaultInjector Inject(Plan);

  HeapSpace Heap(2u << 20);
  Heap.freeList().clear();
  PacketPool Pool(8, &Inject);
  ThreadRegistry Registry;
  Tracer Trace(Heap, Pool, Registry);
  TraceContext Ctx(Pool);

  Object *Obj = reinterpret_cast<Object *>(Heap.base());
  Obj->initialize(static_cast<uint32_t>(Object::requiredSize(8, 0)), 0, 0);
  Heap.allocBits().set(Obj);

  Trace.beginCycle();
  Trace.markAndQueue(Ctx, Obj);

  // The object must not be lost: it stays marked and its card is dirty,
  // so a later cleaning pass retraces it (Section 4.3).
  EXPECT_TRUE(Heap.markBits().test(Obj));
  EXPECT_TRUE(Heap.cards().isDirty(Heap.cards().cardIndexFor(Obj)));
  EXPECT_EQ(Trace.overflowCount(), 1u);
  EXPECT_GT(Inject.injected(FaultSite::PacketAcquireOutput) +
                Inject.injected(FaultSite::PacketAcquireEmpty),
            0u);
  Ctx.release();
  EXPECT_TRUE(Pool.verifyAllReturned());
}

/// --- The degradation ladder -------------------------------------------

GcOptions ladderOptions() {
  GcOptions Opts;
  Opts.Kind = CollectorKind::MostlyConcurrent;
  Opts.HeapBytes = 8u << 20;
  Opts.BackgroundThreads = 1;
  Opts.GcWorkerThreads = 2;
  Opts.NumWorkPackets = 64;
  return Opts;
}

TEST(FaultInjectionTest, LadderRungsFireInOrderUnderRefillInjection) {
  GcOptions Opts = ladderOptions();
  Opts.Faults.failEveryNth(FaultSite::AllocCacheRefill, 1);
  auto Heap = GcHeap::create(Opts);
  MutatorContext &Ctx = Heap->attachThread();

  // Every refill attempt is injected to fail, so a single allocation
  // walks the whole ladder and comes back empty-handed — no abort.
  Object *Obj = Heap->allocate(Ctx, 64, 1);
  EXPECT_EQ(Obj, nullptr);

  GcStatsCollector &Stats = Heap->stats();
  EXPECT_EQ(Stats.escalationCount(EscalationRung::RefillRetry), 1u);
  EXPECT_EQ(Stats.escalationCount(EscalationRung::SweepFinish), 1u);
  // No concurrent phase was active, so the STW-finish rung is skipped.
  EXPECT_EQ(Stats.escalationCount(EscalationRung::StwFinish), 0u);
  EXPECT_EQ(Stats.escalationCount(EscalationRung::FullStw), 2u);
  EXPECT_EQ(Stats.escalationCount(EscalationRung::AllocationFailure), 1u);

  // Disarming makes the very next allocation succeed: the failure was
  // injected, not real.
  Heap->core().Inject.disarm();
  Object *Recovered = Heap->allocate(Ctx, 64, 1);
  EXPECT_NE(Recovered, nullptr);
  EXPECT_EQ(Stats.escalationCount(EscalationRung::AllocationFailure), 1u);

  Heap->detachThread(Ctx);
}

TEST(FaultInjectionTest, ClassRefillWalksTheSameLadderAsBumpRefill) {
  // Satellite of the size-class fast path (DESIGN.md §16): its refill
  // slow path must sit behind the same degradation ladder, the same
  // injection site, and the same rung ordering as the bump refill —
  // chaos coverage bought for the legacy path transfers wholesale.
  GcOptions Opts = ladderOptions();
  Opts.FastPathSizeClasses = true;
  Opts.Faults.failEveryNth(FaultSite::AllocCacheRefill, 1);
  auto Heap = GcHeap::create(Opts);
  MutatorContext &Ctx = Heap->attachThread();

  // 80 total bytes: served by the class path when the flag is on.
  Object *Obj = Heap->allocate(Ctx, 64, 1);
  EXPECT_EQ(Obj, nullptr);

  GcStatsCollector &Stats = Heap->stats();
  EXPECT_EQ(Stats.escalationCount(EscalationRung::RefillRetry), 1u);
  EXPECT_EQ(Stats.escalationCount(EscalationRung::SweepFinish), 1u);
  EXPECT_EQ(Stats.escalationCount(EscalationRung::StwFinish), 0u);
  EXPECT_EQ(Stats.escalationCount(EscalationRung::FullStw), 2u);
  EXPECT_EQ(Stats.escalationCount(EscalationRung::AllocationFailure), 1u);

  Heap->core().Inject.disarm();
  EXPECT_NE(Heap->allocate(Ctx, 64, 1), nullptr);
  Heap->detachThread(Ctx);
}

TEST(FaultInjectionTest, ParkedRemoteBytesRescuedBeforeStopTheWorld) {
  // The satellite-2 regression proper: free memory parked on a shard's
  // remote-free queue that the requesting thread does NOT own is
  // invisible to its own refill drain. The ladder must hand it back to
  // the free lists on the cheap RefillRetry rung — paying a full
  // stop-the-world to recover memory the process already has would be
  // the shard-stranding bug reborn one level up.
  GcOptions Opts;
  Opts.Kind = CollectorKind::StopTheWorld;
  Opts.HeapBytes = 4u << 20;
  Opts.FreeListShards = 4;
  Opts.FastPathSizeClasses = true;
  auto Heap = GcHeap::create(Opts);
  MutatorContext &Ctx = Heap->attachThread();
  GcCore &Core = Heap->core();
  ASSERT_EQ(Core.Heap.freeList().numShards(), 4u);

  const unsigned Preferred = Ctx.preferredShard();
  const unsigned Other = (Preferred + 2) % 4;

  // Steal every free byte out of the locked lists in queue-eligible
  // grabs, remembering the ranges that belong to the victim shard.
  std::vector<std::pair<uint8_t *, size_t>> OtherRanges;
  for (unsigned S = 0; S < 4; ++S)
    for (;;) {
      size_t Granted = 0;
      uint8_t *P = Core.Heap.freeList().allocateUpTo(64, 2048, Granted, S);
      if (!P)
        break;
      if (Core.Heap.freeList().shardIndexFor(P) == Other)
        OtherRanges.emplace_back(P, Granted);
    }
  ASSERT_EQ(Core.Heap.freeList().freeBytes(), 0u);
  ASSERT_FALSE(OtherRanges.empty());

  // Park the victim shard's memory back — but only onto its remote
  // queue, where this thread's per-refill drain cannot see it.
  size_t Parked = 0;
  for (auto [P, Size] : OtherRanges) {
    Core.Heap.releaseRange(P, Size);
    Parked += Size;
  }
  ASSERT_EQ(Core.Heap.remoteQueue(Other).queuedBytes(), Parked);
  ASSERT_GT(Parked, 4096u);

  // A bump-path request (too big for the class table): its refill finds
  // the locked lists empty and its own queue empty. One RefillRetry
  // rung must reclaim the parked bytes and succeed — never a FullStw.
  Object *Obj = Heap->allocate(Ctx, 2040, 0);
  ASSERT_NE(Obj, nullptr) << "parked bytes were never reclaimed";

  GcStatsCollector &Stats = Heap->stats();
  EXPECT_EQ(Stats.escalationCount(EscalationRung::RefillRetry), 1u);
  EXPECT_EQ(Stats.escalationCount(EscalationRung::SweepFinish), 0u);
  EXPECT_EQ(Stats.escalationCount(EscalationRung::FullStw), 0u)
      << "ladder escalated to stop-the-world past reclaimable memory";
  EXPECT_EQ(Core.Heap.remoteQueuedBytes(), 0u)
      << "reclaim must drain every queue";

  Heap->detachThread(Ctx);
}

TEST(FaultInjectionTest, HappyPathRecordsZeroEscalations) {
  GcOptions Opts = ladderOptions();
  auto Heap = GcHeap::create(Opts);
  MutatorContext &Ctx = Heap->attachThread();
  Ctx.reserveRoots(1);
  for (int I = 0; I < 2000; ++I) {
    Object *Obj = Heap->allocate(Ctx, 64, 1);
    ASSERT_NE(Obj, nullptr);
    Ctx.setRoot(0, Obj);
  }
  GcStatsCollector &Stats = Heap->stats();
  for (unsigned R = 0;
       R < static_cast<unsigned>(EscalationRung::NumRungs); ++R)
    EXPECT_EQ(Stats.escalationCount(static_cast<EscalationRung>(R)), 0u)
        << escalationRungName(static_cast<EscalationRung>(R));
  EXPECT_EQ(Stats.watchdogTrips(), 0u);
  EXPECT_EQ(Heap->core().Inject.totalInjected(), 0u);
  Heap->detachThread(Ctx);
}

/// --- Cycle watchdog ----------------------------------------------------

TEST(FaultInjectionTest, WatchdogFinishesStalledConcurrentCycle) {
  GcOptions Opts = ladderOptions();
  // No background tracers and every tracing increment injected to fail:
  // once a concurrent cycle starts, nobody can make marking progress.
  // Only the watchdog can finish the cycle.
  Opts.BackgroundThreads = 0;
  Opts.WatchdogIntervalMicros = 200;
  Opts.WatchdogStallTicks = 10;
  Opts.WatchdogLagTicks = 1u << 30; // Isolate the stall trigger.
  Opts.Faults.failEveryNth(FaultSite::TracerStep, 1);
  auto Heap = GcHeap::create(Opts);
  MutatorContext &Ctx = Heap->attachThread();

  // Retained ring so the cycle has real marking work outstanding.
  constexpr size_t NumRoots = 64;
  Ctx.reserveRoots(NumRoots);
  for (size_t I = 0; I < NumRoots; ++I) {
    Object *Obj = Heap->allocate(Ctx, 4096, 1);
    ASSERT_NE(Obj, nullptr);
    Ctx.setRoot(I, Obj);
  }

  // Open a cycle explicitly (the pacer's organic kickoff would need the
  // heap driven near-empty, which is shard- and machine-dependent).
  static_cast<ConcurrentCollector &>(Heap->collector())
      .startConcurrentCycle(&Ctx);
  ASSERT_EQ(Heap->core().phase(), GcPhase::Concurrent);

  // Stop allocating; just poll safepoints so the watchdog's STW finish
  // can stop this thread. Progress is frozen, so the stall detector
  // must trip within ~StallTicks * Interval.
  // Clock-routed deadline (support/Timing.h): a test under ManualClock
  // would control this wait too, and the real-clock path is identical.
  Stopwatch Waited;
  while (Heap->stats().watchdogTrips() == 0 &&
         Waited.elapsedNanos() < 30ull * 1000 * 1000 * 1000) {
    Heap->safepointPoll(Ctx);
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  EXPECT_GE(Heap->stats().watchdogTrips(), 1u);
  EXPECT_GE(Heap->stats().escalationCount(EscalationRung::StwFinish), 1u);

  Heap->core().Inject.disarm();
  Heap->requestGC(&Ctx);
  VerifyResult V = Heap->verifyNow(&Ctx);
  EXPECT_TRUE(V.Ok) << V.Error;
  Heap->detachThread(Ctx);
}

TEST(FaultInjectionTest, WatchdogKilledCyclesLeaveCompactorConsistent) {
  // Regression for the compactor arm/disarm lifecycle on abnormal cycle
  // endings: every cycle arms an evacuation area (CompactEveryNCycles =
  // 1), the tracer is injected to make no progress, and the watchdog
  // force-finishes each cycle through the STW escalation. A path that
  // ended a cycle without evacuating or disarming would trip
  // armForCycle's not-armed assert on the next round (debug builds) or
  // corrupt the free list (caught by the per-cycle verifier).
  GcOptions Opts = ladderOptions();
  Opts.BackgroundThreads = 0;
  Opts.CompactEveryNCycles = 1;
  Opts.EvacuationAreaBytes = 1u << 20;
  Opts.WatchdogIntervalMicros = 200;
  Opts.WatchdogStallTicks = 10;
  Opts.WatchdogLagTicks = 1u << 30; // Isolate the stall trigger.
  Opts.VerifyEachCycle = true;
  Opts.Faults.failEveryNth(FaultSite::TracerStep, 1);
  auto Heap = GcHeap::create(Opts);
  MutatorContext &Ctx = Heap->attachThread();

  constexpr size_t NumRoots = 64;
  Ctx.reserveRoots(NumRoots);
  for (size_t I = 0; I < NumRoots; ++I) {
    Object *Obj = Heap->allocate(Ctx, 4096, 1);
    ASSERT_NE(Obj, nullptr);
    Ctx.setRoot(I, Obj);
  }

  auto &Concurrent = static_cast<ConcurrentCollector &>(Heap->collector());
  for (int Round = 0; Round < 2; ++Round) {
    uint64_t TripsBefore = Heap->stats().watchdogTrips();
    uint64_t CyclesBefore = Heap->completedCycles();
    Concurrent.startConcurrentCycle(&Ctx);
    // Keep polling until the killed cycle has fully completed, not just
    // until the trip registers: the STW force-finish lands at a later
    // safepoint, and the next round's start is a no-op while the
    // previous cycle is still active.
    Stopwatch Waited;
    while ((Heap->stats().watchdogTrips() == TripsBefore ||
            Heap->completedCycles() == CyclesBefore) &&
           Waited.elapsedNanos() < 30ull * 1000 * 1000 * 1000) {
      Heap->safepointPoll(Ctx);
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    EXPECT_GT(Heap->stats().watchdogTrips(), TripsBefore)
        << "watchdog never tripped in round " << Round;
    EXPECT_GT(Heap->completedCycles(), CyclesBefore)
        << "killed cycle never force-finished in round " << Round;
  }
  EXPECT_GE(Heap->completedCycles(), 2u);

  // A clean cycle after the chaos: arming, evacuation and verification
  // must all still work.
  Heap->core().Inject.disarm();
  Heap->requestGC(&Ctx);
  VerifyResult V = Heap->verifyNow(&Ctx);
  EXPECT_TRUE(V.Ok) << V.Error;
  Heap->detachThread(Ctx);
}

/// --- Genuine exhaustion (no injection) ----------------------------------

TEST(FaultInjectionTest, ExhaustionReturnsNullThenRecovers) {
  GcOptions Opts = ladderOptions();
  Opts.HeapBytes = 2u << 20;
  auto Heap = GcHeap::create(Opts);
  MutatorContext &Ctx = Heap->attachThread();

  constexpr size_t MaxRoots = 512;
  Ctx.reserveRoots(MaxRoots);
  size_t Rooted = 0;
  // Retain everything: a real out-of-memory, no injector involved.
  while (Rooted < MaxRoots) {
    Object *Obj = Heap->allocate(Ctx, 16u << 10, 0);
    if (!Obj)
      break;
    Ctx.setRoot(Rooted++, Obj);
  }
  ASSERT_LT(Rooted, MaxRoots) << "heap never filled";
  GcStatsCollector &Stats = Heap->stats();
  EXPECT_GE(Stats.escalationCount(EscalationRung::AllocationFailure), 1u);
  EXPECT_GE(Stats.escalationCount(EscalationRung::FullStw), 1u);

  // Dropping the roots makes the memory reclaimable; the same request
  // succeeds after a collection.
  for (size_t I = 0; I < Rooted; ++I)
    Ctx.setRoot(I, nullptr);
  Heap->requestGC(&Ctx);
  EXPECT_NE(Heap->allocate(Ctx, 16u << 10, 0), nullptr);
  VerifyResult V = Heap->verifyNow(&Ctx);
  EXPECT_TRUE(V.Ok) << V.Error;
  Heap->detachThread(Ctx);
}

/// --- Chaos soak ---------------------------------------------------------

TEST(FaultInjectionTest, ChaosSoak) {
  uint64_t Seed = testSeed(0xc4a05, "FaultInjectionTest.ChaosSoak");
  ScopedSeedLog SeedLog(Seed, "FaultInjectionTest.ChaosSoak");

  // The nightly CI chaos job stretches the soak via the environment; the
  // default stays sized for the normal ctest run.
  int ItersPerThread = 5000;
  if (const char *Env = std::getenv("CGC_CHAOS_ITERS")) {
    long Iters = std::strtol(Env, nullptr, 10);
    if (Iters > 0)
      ItersPerThread = static_cast<int>(Iters);
  }

  // Small heap + many short-lived objects: the soak spends most of its
  // time in GC-triggering territory while faults land in every subsystem.
  GcOptions Opts;
  Opts.Kind = CollectorKind::MostlyConcurrent;
  Opts.HeapBytes = 16u << 20;
  Opts.BackgroundThreads = 2;
  Opts.GcWorkerThreads = 2;
  Opts.NumWorkPackets = 64;
  Opts.Faults.Seed = Seed;
  Opts.Faults.failWithProbability(FaultSite::AllocCacheRefill, 2e-2)
      .failWithProbability(FaultSite::FreeListRefill, 1e-2)
      .failWithProbability(FaultSite::FreeListAllocate, 1e-2)
      .failWithProbability(FaultSite::PacketAcquireInput, 5e-3)
      .failWithProbability(FaultSite::PacketAcquireOutput, 5e-3)
      .failWithProbability(FaultSite::PacketAcquireEmpty, 5e-3)
      .failWithProbability(FaultSite::CardCleanBegin, 1e-2)
      .failWithProbability(FaultSite::CardCleanStep, 1e-2)
      .failWithProbability(FaultSite::TracerStep, 5e-3)
      .failWithProbability(FaultSite::WorkerDispatch, 1e-2)
      // Non-cooperation chaos (DESIGN.md §13): skipped-poll bursts delay
      // handshake acks, idle transitions stretch mid-seqlock, and
      // mutators vanish mid-cycle (consulted test-side below).
      .failWithProbability(FaultSite::MutatorPollSkip, 2e-2)
      .burst(FaultSite::MutatorPollSkip, 32)
      .failWithProbability(FaultSite::MutatorDetach, 1e-2)
      .perturb(FaultSite::IdleTransitionStall, 1)
      .perturb(FaultSite::PacketCas, 1)
      .perturb(FaultSite::AllocCacheFlush, 1);
  auto Heap = GcHeap::create(Opts);
  auto &Concurrent = static_cast<ConcurrentCollector &>(Heap->collector());

  // Phase 1: three mutators churn linked rings under probabilistic
  // injection. Allocation failures are tolerated (counted, never fatal);
  // payload nonces catch corruption.
  constexpr int NumThreads = 3;
  std::atomic<uint64_t> Iterations{0};
  std::atomic<uint64_t> FailedAllocs{0};
  std::atomic<uint64_t> IntegrityFailures{0};

  std::vector<std::thread> Threads;
  for (int T = 0; T < NumThreads; ++T)
    Threads.emplace_back([&, T] {
      MutatorContext *Ctx = &Heap->attachThread();
      constexpr size_t RingSize = 64;
      Ctx->reserveRoots(RingSize);
      std::vector<Object *> Ring(RingSize, nullptr);
      std::vector<uint64_t> Nonce(RingSize, 0);
      Random Rng(Seed * 41 + static_cast<uint64_t>(T));
      for (int I = 0; I < ItersPerThread; ++I) {
        // Mostly small cache allocations; every 16th goes through the
        // large path so the free list churns and cycles actually fire.
        size_t Payload = I % 16 == 0 ? 8192 + Rng.nextBelow(16384)
                                     : 16 + Rng.nextBelow(512);
        // Force extra concurrent phases: organic kickoff alone leaves
        // most of the run idle, and idle chaos tests nothing.
        if (I % 500 == 250)
          Concurrent.startConcurrentCycle(Ctx);
        // Thread 0 also runs cycles to completion so the completed-cycle
        // assertion below holds on any core count; on a single CPU an
        // open concurrent phase can outlive the whole loop otherwise.
        if (T == 0 && I % 1000 == 750)
          Heap->requestGC(Ctx);
        // MutatorDetach chaos: the thread vanishes mid-cycle and comes
        // back as a fresh context. Its roots die with the old context,
        // so the ring restarts empty (dangling Ring entries would be
        // integrity failures, not chaos).
        if (I % 64 == 0 &&
            Heap->core().Inject.shouldFail(FaultSite::MutatorDetach)) {
          Heap->detachThread(*Ctx);
          std::fill(Ring.begin(), Ring.end(), nullptr);
          std::fill(Nonce.begin(), Nonce.end(), 0);
          Ctx = &Heap->attachThread();
          Ctx->reserveRoots(RingSize);
        }
        Object *Obj = Heap->allocate(*Ctx, Payload, 2);
        if (!Obj) {
          FailedAllocs.fetch_add(1, std::memory_order_relaxed);
          Iterations.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        uint64_t Tag = Rng.next();
        std::memcpy(Obj->payload(), &Tag, sizeof(Tag));
        size_t Slot = Rng.nextBelow(RingSize);
        if (Object *Old = Ring[Slot]) {
          // Check the evicted object's nonce before dropping it.
          uint64_t Seen;
          std::memcpy(&Seen, Old->payload(), sizeof(Seen));
          if (Seen != Nonce[Slot])
            IntegrityFailures.fetch_add(1, std::memory_order_relaxed);
          // Cross-link into a survivor to exercise the write barrier on
          // old objects during concurrent phases.
          Heap->writeRef(*Ctx, Obj, 0, Old);
        }
        Ring[Slot] = Obj;
        Nonce[Slot] = Tag;
        Ctx->setRoot(Slot, Obj);
        if (I % 256 == 0)
          Heap->safepointPoll(*Ctx);
        Iterations.fetch_add(1, std::memory_order_relaxed);
      }
      Heap->detachThread(*Ctx);
    });
  for (std::thread &T : Threads)
    T.join();

  EXPECT_GE(Iterations.load(), static_cast<uint64_t>(NumThreads) *
                                   static_cast<uint64_t>(ItersPerThread));
  EXPECT_EQ(IntegrityFailures.load(), 0u);
  EXPECT_GT(Heap->core().Inject.totalInjected(), 0u);
  EXPECT_GE(Heap->completedCycles(), 3u);

  // Phase 2: stall the tracer so a concurrent cycle stays open, then
  // walk in with every allocation path injected — the ladder must pass
  // through the STW-finish rung (the phase IS concurrent) on its way to
  // a clean failure.
  MutatorContext &Ctx = Heap->attachThread();
  FaultPlan Stall;
  Stall.Seed = Seed;
  Stall.failEveryNth(FaultSite::TracerStep, 1);
  Heap->core().Inject.reconfigure(Stall);

  constexpr size_t NumRoots = 64;
  Ctx.reserveRoots(NumRoots);
  size_t Rooted = 0;
  for (size_t I = 0; I < NumRoots; ++I) {
    Object *Obj = Heap->allocate(Ctx, 1024, 1);
    if (!Obj)
      break; // Post-chaos heap may be tight; the ring just needs members.
    Ctx.setRoot(Rooted++, Obj);
  }
  ASSERT_GT(Rooted, 0u);
  bool Started = false;
  for (int I = 0; I < 1000 && !Started; ++I) {
    Concurrent.startConcurrentCycle(&Ctx);
    Started = Heap->core().phase() == GcPhase::Concurrent;
    Heap->safepointPoll(Ctx);
  }
  ASSERT_TRUE(Started) << "never reached a concurrent phase";

  FaultPlan Exhaust = Stall;
  Exhaust.failEveryNth(FaultSite::AllocCacheRefill, 1)
      .failEveryNth(FaultSite::FreeListRefill, 1)
      .failEveryNth(FaultSite::FreeListAllocate, 1);
  Heap->core().Inject.reconfigure(Exhaust);
  // A large allocation bypasses the thread cache, so it must consult the
  // (fully injected) free list and walk the whole ladder.
  EXPECT_EQ(Heap->allocate(Ctx, 64u << 10, 0), nullptr);

  // Phase 3: disarm; the heap must be fully functional and consistent,
  // and by now every rung of the ladder has been observed.
  Heap->core().Inject.disarm();
  EXPECT_NE(Heap->allocate(Ctx, 64, 0), nullptr);

  GcStatsCollector &Stats = Heap->stats();
  for (unsigned R = 0;
       R < static_cast<unsigned>(EscalationRung::NumRungs); ++R)
    EXPECT_GE(Stats.escalationCount(static_cast<EscalationRung>(R)), 1u)
        << "rung never exercised: "
        << escalationRungName(static_cast<EscalationRung>(R));

  for (size_t I = 0; I < NumRoots; ++I)
    Ctx.setRoot(I, nullptr);
  Heap->requestGC(&Ctx);
  VerifyResult V = Heap->verifyNow(&Ctx);
  EXPECT_TRUE(V.Ok) << V.Error;
  Heap->detachThread(Ctx);

  Stats.printEscalations(stderr);
  std::fprintf(stderr,
               "[ cgc ] chaos: %llu iterations, %llu failed allocs, "
               "%llu faults injected, %llu cycles\n",
               static_cast<unsigned long long>(Iterations.load()),
               static_cast<unsigned long long>(FailedAllocs.load()),
               static_cast<unsigned long long>(
                   Heap->core().Inject.totalInjected()),
               static_cast<unsigned long long>(Heap->completedCycles()));
}

} // namespace
