//===- latency_buffer_test.cpp - buffer -> histogram -> JSON quantile path ----//
///
/// The reporting pipeline of the open-loop harness end to end: raw
/// request samples in a LatencyBuffer, drained into the HDR-lite
/// PauseHistograms, quantiles within the histogram's error contract of a
/// reference sort (mirroring histogram_test's bound: one sub-bucket,
/// 12.5% + linear granularity, exact max preserved), and the same
/// figures surviving the BenchJsonWriter -> validateBenchJson ->
/// JsonValue::parse round trip unaltered.
///
//===----------------------------------------------------------------------===//

#include "TestSeed.h"
#include "observe/BenchJsonWriter.h"
#include "observe/Json.h"
#include "workloads/OpenLoop.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>
#include <vector>

using namespace cgc;

namespace {

/// Seeded synthetic request stream: log-uniform service times (1 us ..
/// ~1 ms) plus an occasional large scheduling delay, the shape an
/// open-loop run under GC produces.
struct SampleSet {
  std::vector<RequestSample> Samples;
  std::vector<uint64_t> OpenLoopRef; // Done - Sched, unsorted
  std::vector<uint64_t> ServiceRef;  // Done - Send, unsorted
};

SampleSet makeSamples(uint64_t Seed, size_t N) {
  std::mt19937_64 Rng(Seed);
  std::uniform_real_distribution<double> LogService(10.0, 20.0); // 2^10..2^20
  std::uniform_real_distribution<double> Uniform(0.0, 1.0);
  SampleSet Set;
  uint64_t Sched = 1000;
  for (size_t I = 0; I < N; ++I) {
    RequestSample S;
    S.SchedNanos = Sched;
    // 2% of requests queued behind a pause: up to 8 ms of delay.
    uint64_t Delay = Uniform(Rng) < 0.02
                         ? static_cast<uint64_t>(Uniform(Rng) * 8e6)
                         : 0;
    S.SendNanos = S.SchedNanos + Delay;
    S.DoneNanos =
        S.SendNanos + static_cast<uint64_t>(std::exp2(LogService(Rng)));
    Set.Samples.push_back(S);
    Set.OpenLoopRef.push_back(S.DoneNanos - S.SchedNanos);
    Set.ServiceRef.push_back(S.DoneNanos - S.SendNanos);
    Sched += 50000;
  }
  return Set;
}

uint64_t exactQuantile(std::vector<uint64_t> V, double Q) {
  std::sort(V.begin(), V.end());
  uint64_t Rank =
      static_cast<uint64_t>(std::ceil(Q * static_cast<double>(V.size())));
  if (Rank < 1)
    Rank = 1;
  return V[Rank - 1];
}

TEST(LatencyBufferDrainTest, QuantilesMatchReferenceSort) {
  uint64_t Seed = testSeed(0x1a7b0f, "LatencyBufferDrainTest.Quantiles");
  ScopedSeedLog SeedLog(Seed, "LatencyBufferDrainTest.Quantiles");
  SampleSet Set = makeSamples(Seed, 20000);

  LatencyBuffer Buffer(Set.Samples.size());
  for (const RequestSample &S : Set.Samples)
    ASSERT_TRUE(Buffer.record(S));

  PauseHistogram Latency, Service;
  Buffer.drainInto(Latency, Service);
  ASSERT_EQ(Latency.count(), Set.Samples.size());
  ASSERT_EQ(Service.count(), Set.Samples.size());

  struct Case {
    const PauseHistogram *H;
    const std::vector<uint64_t> *Ref;
    const char *Name;
  } Cases[] = {{&Latency, &Set.OpenLoopRef, "open-loop"},
               {&Service, &Set.ServiceRef, "service"}};

  for (const Case &C : Cases) {
    for (double Q : {0.50, 0.90, 0.99, 0.999}) {
      uint64_t Exact = exactQuantile(*C.Ref, Q);
      uint64_t Reported = C.H->quantile(Q);
      // Same contract histogram_test pins for GC pauses: the reported
      // value is the lower bound of the exact sample's bucket.
      EXPECT_EQ(PauseHistogram::bucketFor(Reported),
                PauseHistogram::bucketFor(Exact))
          << C.Name << " q=" << Q;
      EXPECT_LE(Reported, Exact) << C.Name << " q=" << Q;
      double Error = static_cast<double>(Exact - Reported);
      EXPECT_LE(Error, 0.125 * static_cast<double>(Exact) + 128.0)
          << C.Name << " q=" << Q;
    }
    // The exact maximum survives bucketing.
    uint64_t RefMax = *std::max_element(C.Ref->begin(), C.Ref->end());
    EXPECT_EQ(C.H->quantile(1.0), RefMax) << C.Name;
    EXPECT_EQ(C.H->max(), RefMax) << C.Name;
  }
}

TEST(LatencyBufferDrainTest, OutcomeDrainAggregatesAllClients) {
  uint64_t Seed = testSeed(0xd8a1a, "LatencyBufferDrainTest.Aggregate");
  OpenLoopOutcome Out;
  size_t Total = 0;
  for (unsigned Client = 0; Client < 3; ++Client) {
    SampleSet Set = makeSamples(Seed + Client, 500);
    LatencyBuffer Buffer(Set.Samples.size());
    for (const RequestSample &S : Set.Samples)
      Buffer.record(S);
    Total += Set.Samples.size();
    Out.Buffers.push_back(std::move(Buffer));
  }
  Out.Counters.Scheduled = Total;
  Out.Counters.Completed = Total;

  MetricsRegistry Metrics;
  Out.drainInto(Metrics);
  EXPECT_EQ(Metrics.histogram(PauseMetric::RequestLatency).count(), Total);
  EXPECT_EQ(Metrics.histogram(PauseMetric::RequestService).count(), Total);
  EXPECT_EQ(Metrics.requests().snapshot().Completed, Total);
  EXPECT_EQ(Out.openLoopLatencies().size(), Total);
}

TEST(LatencyBufferDrainTest, QuantilesSurviveBenchJsonRoundTrip) {
  uint64_t Seed = testSeed(0xb3a9, "LatencyBufferDrainTest.JsonRoundTrip");
  SampleSet Set = makeSamples(Seed, 4000);
  LatencyBuffer Buffer(Set.Samples.size());
  for (const RequestSample &S : Set.Samples)
    Buffer.record(S);
  PauseHistogram Latency, Service;
  Buffer.drainInto(Latency, Service);

  double P99Ms = static_cast<double>(Latency.quantile(0.99)) / 1e6;
  double MaxMs = static_cast<double>(Latency.max()) / 1e6;

  BenchJsonWriter Json("latency_buffer_roundtrip");
  Json.beginRow("offered=1000,collector=cgc");
  Json.addConfig("offered_per_s", 1000);
  Json.addMetric("req_p99_ms", P99Ms, "ms");
  Json.addMetric("req_max_ms", MaxMs, "ms");
  std::string Text = Json.toJson();

  std::string Error;
  ASSERT_TRUE(validateBenchJson(Text, &Error)) << Error;

  std::unique_ptr<JsonValue> Doc = JsonValue::parse(Text, &Error);
  ASSERT_TRUE(Doc) << Error;
  const JsonValue *Rows = Doc->get("rows");
  ASSERT_TRUE(Rows);
  ASSERT_EQ(Rows->arrayValue().size(), 1u);
  const JsonValue *MetricsObj = Rows->arrayValue()[0].get("metrics");
  ASSERT_TRUE(MetricsObj);
  const JsonValue *P99 = MetricsObj->get("req_p99_ms");
  const JsonValue *Max = MetricsObj->get("req_max_ms");
  ASSERT_TRUE(P99 && Max);
  // The writer prints enough digits that parse(print(x)) == x for the
  // magnitudes latency metrics take; a lossy printf here would corrupt
  // every published quantile.
  EXPECT_DOUBLE_EQ(P99->numberValue(), P99Ms);
  EXPECT_DOUBLE_EQ(Max->numberValue(), MaxMs);
}

} // namespace
