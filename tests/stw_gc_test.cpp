//===- stw_gc_test.cpp - baseline stop-the-world collector ---------------------//

#include "runtime/GcHeap.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

using namespace cgc;

namespace {

GcOptions stwOptions(size_t HeapMb = 8) {
  GcOptions Opts;
  Opts.Kind = CollectorKind::StopTheWorld;
  Opts.HeapBytes = HeapMb << 20;
  Opts.GcWorkerThreads = 2;
  Opts.VerifyEachCycle = true;
  Opts.NumWorkPackets = 64;
  return Opts;
}

TEST(StwGcTest, AllocateAndReadBack) {
  auto Heap = GcHeap::create(stwOptions());
  MutatorContext &Ctx = Heap->attachThread();
  Object *Obj = Heap->allocate(Ctx, 100, 2, 42);
  ASSERT_NE(Obj, nullptr);
  EXPECT_EQ(Obj->classId(), 42u);
  EXPECT_EQ(Obj->numRefs(), 2u);
  EXPECT_GE(Obj->payloadBytes(), 100u);
  Obj->payload()[0] = 0x5A;
  EXPECT_EQ(Obj->payload()[0], 0x5A);
  Heap->detachThread(Ctx);
}

TEST(StwGcTest, GarbageIsReclaimed) {
  auto Heap = GcHeap::create(stwOptions());
  MutatorContext &Ctx = Heap->attachThread();
  Ctx.reserveRoots(1);
  // Fill well past one heap's worth: forces several collections.
  size_t Total = 0;
  while (Total < 64u << 20) {
    Object *Obj = Heap->allocate(Ctx, 1000, 0, 0);
    ASSERT_NE(Obj, nullptr) << "heap exhausted though all is garbage";
    Total += Obj->sizeBytes();
  }
  EXPECT_GE(Heap->completedCycles(), 5u);
  Heap->detachThread(Ctx);
}

TEST(StwGcTest, RootedObjectsSurvive) {
  auto Heap = GcHeap::create(stwOptions());
  MutatorContext &Ctx = Heap->attachThread();
  constexpr size_t NumLive = 50;
  Ctx.reserveRoots(NumLive);
  for (size_t I = 0; I < NumLive; ++I) {
    Object *Obj = Heap->allocate(Ctx, 64, 1, static_cast<uint16_t>(I));
    ASSERT_NE(Obj, nullptr);
    Obj->payload()[0] = static_cast<uint8_t>(I);
    Ctx.setRoot(I, Obj);
  }
  Heap->requestGC(&Ctx);
  EXPECT_GE(Heap->completedCycles(), 1u);
  for (size_t I = 0; I < NumLive; ++I) {
    Object *Obj = Ctx.getRoot(I);
    ASSERT_NE(Obj, nullptr);
    EXPECT_EQ(Obj->classId(), I);
    EXPECT_EQ(Obj->payload()[0], static_cast<uint8_t>(I));
  }
  Heap->detachThread(Ctx);
}

TEST(StwGcTest, TransitiveReachabilitySurvives) {
  auto Heap = GcHeap::create(stwOptions());
  MutatorContext &Ctx = Heap->attachThread();
  Ctx.reserveRoots(1);
  // A linked list rooted at slot 0; only the head is a root.
  constexpr int Len = 1000;
  Object *Head = nullptr;
  for (int I = 0; I < Len; ++I) {
    Object *Node = Heap->allocate(Ctx, 16, 1, 0);
    ASSERT_NE(Node, nullptr);
    Node->payload()[0] = static_cast<uint8_t>(I & 0xff);
    if (Head)
      Heap->writeRef(Ctx, Node, 0, Head);
    Head = Node;
    Ctx.setRoot(0, Head);
  }
  Heap->requestGC(&Ctx);
  Heap->requestGC(&Ctx);
  int Count = 0;
  for (Object *N = Ctx.getRoot(0); N; N = GcHeap::readRef(N, 0)) {
    EXPECT_EQ(N->payload()[0],
              static_cast<uint8_t>((Len - 1 - Count) & 0xff));
    ++Count;
  }
  EXPECT_EQ(Count, Len);
  Heap->detachThread(Ctx);
}

TEST(StwGcTest, DroppedSubgraphReclaimed) {
  auto Heap = GcHeap::create(stwOptions());
  MutatorContext &Ctx = Heap->attachThread();
  Ctx.reserveRoots(1);
  for (int I = 0; I < 200; ++I) {
    Object *Big = Heap->allocate(Ctx, 4000, 0, 0);
    ASSERT_NE(Big, nullptr);
    Ctx.setRoot(0, Big);
  }
  Ctx.setRoot(0, nullptr);
  Heap->requestGC(&Ctx);
  VerifyResult R = Heap->verifyNow(&Ctx);
  EXPECT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.ReachableObjects, 0u);
  Heap->detachThread(Ctx);
}

TEST(StwGcTest, LargeObjectsBypassCache) {
  auto Heap = GcHeap::create(stwOptions());
  MutatorContext &Ctx = Heap->attachThread();
  Ctx.reserveRoots(4);
  for (int I = 0; I < 4; ++I) {
    // Above the 8 KB large-object threshold.
    Object *Big = Heap->allocate(Ctx, 100 << 10, 2, 7);
    ASSERT_NE(Big, nullptr);
    EXPECT_TRUE(Heap->core().Heap.allocBits().test(Big));
    Ctx.setRoot(I, Big);
  }
  Heap->requestGC(&Ctx);
  for (int I = 0; I < 4; ++I) {
    Object *Big = Ctx.getRoot(I);
    ASSERT_NE(Big, nullptr);
    EXPECT_EQ(Big->classId(), 7u);
  }
  Heap->detachThread(Ctx);
}

TEST(StwGcTest, OutOfMemoryReturnsNull) {
  auto Heap = GcHeap::create(stwOptions(2));
  MutatorContext &Ctx = Heap->attachThread();
  Ctx.reserveRoots(4096);
  size_t Slot = 0;
  Object *Obj;
  while ((Obj = Heap->allocate(Ctx, 4000, 0, 0)) != nullptr &&
         Slot < 4096)
    Ctx.setRoot(Slot++, Obj);
  EXPECT_EQ(Obj, nullptr) << "2 MB heap cannot hold 16 MB of live data";
  // The heap is still functional: drop everything and allocate again.
  for (size_t I = 0; I < Slot; ++I)
    Ctx.setRoot(I, nullptr);
  Heap->requestGC(&Ctx);
  EXPECT_NE(Heap->allocate(Ctx, 4000, 0, 0), nullptr);
  Heap->detachThread(Ctx);
}

TEST(StwGcTest, ConservativeFilterIgnoresJunkRoots) {
  auto Heap = GcHeap::create(stwOptions());
  MutatorContext &Ctx = Heap->attachThread();
  Ctx.reserveRoots(4);
  Object *Live = Heap->allocate(Ctx, 32, 0, 1);
  Ctx.setRoot(0, Live);
  // Junk words: misaligned, out of heap, small integers.
  Ctx.setRootWord(1, reinterpret_cast<uintptr_t>(Live) + 4);
  Ctx.setRootWord(2, 0xdeadbeef);
  Ctx.setRootWord(3, 42);
  Heap->requestGC(&Ctx);
  EXPECT_EQ(Ctx.getRoot(0)->classId(), 1u);
  Heap->detachThread(Ctx);
}

TEST(StwGcTest, CycleRecordsPopulated) {
  auto Heap = GcHeap::create(stwOptions());
  MutatorContext &Ctx = Heap->attachThread();
  Ctx.reserveRoots(1);
  Object *Live = Heap->allocate(Ctx, 5000, 0, 0);
  Ctx.setRoot(0, Live);
  Heap->requestGC(&Ctx);
  auto Records = Heap->stats().snapshot();
  ASSERT_GE(Records.size(), 1u);
  const CycleRecord &R = Records.back();
  EXPECT_FALSE(R.Concurrent);
  EXPECT_GT(R.PauseMs, 0.0);
  EXPECT_GE(R.LiveBytesAfter, Live->sizeBytes());
  EXPECT_EQ(R.HeapBytes, Heap->core().Heap.sizeBytes());
  EXPECT_GT(R.BytesTracedFinal, 0u);
  Heap->detachThread(Ctx);
}

TEST(StwGcTest, PacketOverflowDuringStwMarkIsSound) {
  // Regression test: with a tiny packet pool the STW drain overflows
  // constantly, falling back to mark-and-dirty-card; the STW cycle must
  // clean those cards before sweeping or the victims' children are
  // silently reclaimed.
  GcOptions Opts = stwOptions();
  Opts.NumWorkPackets = 4;
  auto Heap = GcHeap::create(Opts);
  MutatorContext &Ctx = Heap->attachThread();
  constexpr int Slots = 128;
  Ctx.reserveRoots(Slots);
  // Wide, deep structure: marking queues far more than 4 packets hold.
  for (int I = 0; I < 30000; ++I) {
    Object *Node = Heap->allocate(Ctx, 24, 2, 3);
    ASSERT_NE(Node, nullptr);
    Object *A = Ctx.getRoot(I % Slots);
    Object *B = Ctx.getRoot((I * 13 + 5) % Slots);
    if (A)
      Heap->writeRef(Ctx, Node, 0, A);
    if (B)
      Heap->writeRef(Ctx, Node, 1, B);
    Ctx.setRoot(I % Slots, Node);
  }
  Heap->requestGC(&Ctx);
  VerifyResult V = Heap->verifyNow(&Ctx);
  EXPECT_TRUE(V.Ok) << V.Error;
  Heap->detachThread(Ctx);
}

TEST(StwGcTest, MultiThreadedAllocationAndCollection) {
  auto Heap = GcHeap::create(stwOptions());
  constexpr int NumThreads = 4;
  std::vector<std::thread> Threads;
  std::atomic<int> Failures{0};
  for (int T = 0; T < NumThreads; ++T)
    Threads.emplace_back([&, T] {
      MutatorContext &Ctx = Heap->attachThread();
      Ctx.reserveRoots(32);
      for (int I = 0; I < 10000; ++I) {
        Object *Obj = Heap->allocate(Ctx, 64 + (I % 512), 1,
                                     static_cast<uint16_t>(T));
        if (!Obj) {
          ++Failures;
          break;
        }
        Ctx.setRoot(I % 32, Obj);
      }
      // Everything this thread retained has its class id.
      for (int I = 0; I < 32; ++I)
        if (Object *Obj = Ctx.getRoot(I))
          if (Obj->classId() != static_cast<uint16_t>(T))
            ++Failures;
      Heap->detachThread(Ctx);
    });
  for (auto &T : Threads)
    T.join();
  EXPECT_EQ(Failures.load(), 0);
  EXPECT_GE(Heap->completedCycles(), 1u);
}

} // namespace
