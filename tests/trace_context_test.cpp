//===- trace_context_test.cpp - input/output packet pair rules -----------------//

#include "workpackets/TraceContext.h"

#include "heap/ObjectModel.h"

#include <gtest/gtest.h>

using namespace cgc;

namespace {

Object *fakeObject(uintptr_t I) {
  return reinterpret_cast<Object *>(I * GranuleBytes + 0x20000);
}

TEST(TraceContextTest, PopFromEmptyPoolFails) {
  PacketPool Pool(4);
  TraceContext Ctx(Pool);
  EXPECT_EQ(Ctx.popWork(), nullptr);
  EXPECT_FALSE(Ctx.ensureInputWork());
  Ctx.release();
  EXPECT_TRUE(Pool.allPacketsEmptyAndIdle());
}

TEST(TraceContextTest, PushThenPopRoundTripThroughPool) {
  PacketPool Pool(4);
  TraceContext Producer(Pool);
  EXPECT_EQ(Producer.pushWork(fakeObject(1)), PushResult::Ok);
  EXPECT_EQ(Producer.pushWork(fakeObject(2)), PushResult::Ok);
  Producer.release();

  TraceContext Consumer(Pool);
  Object *A = Consumer.popWork();
  Object *B = Consumer.popWork();
  EXPECT_TRUE((A == fakeObject(1) && B == fakeObject(2)) ||
              (A == fakeObject(2) && B == fakeObject(1)));
  EXPECT_EQ(Consumer.popWork(), nullptr);
  Consumer.release();
  EXPECT_TRUE(Pool.allPacketsEmptyAndIdle());
}

TEST(TraceContextTest, ConsumerDrainsOwnOutputViughPool) {
  // A participant that produced work and then runs out of input must be
  // able to consume its own output (published through the pool).
  PacketPool Pool(4);
  TraceContext Ctx(Pool);
  EXPECT_EQ(Ctx.pushWork(fakeObject(5)), PushResult::Ok);
  EXPECT_EQ(Ctx.popWork(), fakeObject(5));
  Ctx.release();
  EXPECT_TRUE(Pool.allPacketsEmptyAndIdle());
}

TEST(TraceContextTest, OverflowWhenPoolExhausted) {
  // Two packets total: the context holds both as input+output; pushing
  // beyond 2 * Capacity must eventually overflow.
  PacketPool Pool(2);
  TraceContext Ctx(Pool);
  size_t Pushed = 0;
  PushResult Last = PushResult::Ok;
  for (uint32_t I = 0; I < 3 * WorkPacket::Capacity; ++I) {
    Last = Ctx.pushWork(fakeObject(I + 1));
    if (Last == PushResult::Overflow)
      break;
    ++Pushed;
  }
  EXPECT_EQ(Last, PushResult::Overflow);
  // Both packets completely full.
  EXPECT_EQ(Pushed, 2u * WorkPacket::Capacity);
  // Draining works afterwards.
  size_t Popped = 0;
  while (Ctx.popWork())
    ++Popped;
  EXPECT_EQ(Popped, Pushed);
  Ctx.release();
  EXPECT_TRUE(Pool.allPacketsEmptyAndIdle());
}

TEST(TraceContextTest, DeferredGoesToDeferredPool) {
  PacketPool Pool(4);
  TraceContext Ctx(Pool);
  EXPECT_TRUE(Ctx.pushDeferred(fakeObject(9)));
  Ctx.release();
  EXPECT_TRUE(Pool.hasDeferred());
  EXPECT_FALSE(Pool.allPacketsEmptyAndIdle());
  Pool.redistributeDeferred();
  TraceContext Consumer(Pool);
  EXPECT_EQ(Consumer.popWork(), fakeObject(9));
  Consumer.release();
  EXPECT_TRUE(Pool.allPacketsEmptyAndIdle());
}

TEST(TraceContextTest, DeferredFailsWhenNoEmptyPackets) {
  PacketPool Pool(1);
  TraceContext Holder(Pool);
  EXPECT_EQ(Holder.pushWork(fakeObject(1)), PushResult::Ok); // Takes the only packet.
  TraceContext Ctx(Pool);
  EXPECT_FALSE(Ctx.pushDeferred(fakeObject(2)));
  Ctx.release();
  Holder.release();
  WorkPacket *P = Pool.getInput();
  P->clear();
  Pool.put(P);
}

TEST(TraceContextTest, EmptyDeferredPacketReturnsToEmptyPool) {
  PacketPool Pool(2);
  TraceContext Ctx(Pool);
  ASSERT_TRUE(Ctx.pushDeferred(fakeObject(3)));
  // Drain the deferred packet locally before release (simulates a batch
  // that re-checked bits): the packet must go back as a normal empty.
  // (Direct manipulation through release() path: pop via redistribute.)
  Ctx.release();
  Pool.redistributeDeferred();
  TraceContext Consumer(Pool);
  EXPECT_EQ(Consumer.popWork(), fakeObject(3));
  Consumer.release();
  EXPECT_TRUE(Pool.allPacketsEmptyAndIdle());
  EXPECT_FALSE(Pool.hasDeferred());
}

TEST(TraceContextTest, TerminationInvisibleWhileHoldingPackets) {
  PacketPool Pool(3);
  TraceContext Ctx(Pool);
  EXPECT_EQ(Ctx.pushWork(fakeObject(1)), PushResult::Ok);
  EXPECT_FALSE(Pool.allPacketsEmptyAndIdle());
  EXPECT_EQ(Ctx.popWork(), fakeObject(1));
  // Still holding (empty) packets: termination must not be declared.
  EXPECT_FALSE(Pool.allPacketsEmptyAndIdle());
  Ctx.release();
  EXPECT_TRUE(Pool.allPacketsEmptyAndIdle());
}

} // namespace
