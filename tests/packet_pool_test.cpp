//===- packet_pool_test.cpp - work packet pool units ---------------------------//

#include "workpackets/PacketPool.h"

#include "heap/ObjectModel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

using namespace cgc;

namespace {

/// Packets never dereference entries; fabricate distinct "objects".
Object *fakeObject(uintptr_t I) {
  return reinterpret_cast<Object *>(I * GranuleBytes + 0x10000);
}

TEST(WorkPacketTest, PushPopLifo) {
  WorkPacket P;
  EXPECT_TRUE(P.empty());
  EXPECT_FALSE(P.full());
  P.push(fakeObject(1));
  P.push(fakeObject(2));
  EXPECT_EQ(P.count(), 2u);
  EXPECT_EQ(P.peek(0), fakeObject(1));
  EXPECT_EQ(P.peek(1), fakeObject(2));
  EXPECT_EQ(P.pop(), fakeObject(2));
  EXPECT_EQ(P.pop(), fakeObject(1));
  EXPECT_TRUE(P.empty());
}

TEST(WorkPacketTest, CapacityAndClassification) {
  WorkPacket P;
  EXPECT_FALSE(P.almostFull());
  for (uint32_t I = 0; I < WorkPacket::Capacity / 2 - 1; ++I)
    P.push(fakeObject(I));
  EXPECT_FALSE(P.almostFull());
  P.push(fakeObject(999));
  EXPECT_TRUE(P.almostFull()); // >= 50%.
  while (!P.full())
    P.push(fakeObject(1));
  EXPECT_EQ(P.count(), WorkPacket::Capacity);
  P.clear();
  EXPECT_TRUE(P.empty());
}

TEST(PacketPoolTest, StartsAllEmptyAndIdle) {
  PacketPool Pool(16);
  EXPECT_EQ(Pool.numPackets(), 16u);
  EXPECT_TRUE(Pool.allPacketsEmptyAndIdle());
  EXPECT_FALSE(Pool.hasDeferred());
  EXPECT_EQ(Pool.approxInputPackets(), 0u);
  EXPECT_TRUE(Pool.verifyAllReturned());
}

TEST(PacketPoolTest, GetInputNeedsWork) {
  PacketPool Pool(4);
  EXPECT_EQ(Pool.getInput(), nullptr); // Only empty packets exist.
  WorkPacket *Out = Pool.getOutput();
  ASSERT_NE(Out, nullptr);
  EXPECT_FALSE(Pool.allPacketsEmptyAndIdle()); // One held.
  Out->push(fakeObject(1));
  Pool.put(Out);
  EXPECT_EQ(Pool.approxInputPackets(), 1u);
  WorkPacket *In = Pool.getInput();
  ASSERT_EQ(In, Out);
  EXPECT_EQ(In->count(), 1u);
  In->clear();
  Pool.put(In);
  EXPECT_TRUE(Pool.allPacketsEmptyAndIdle());
}

TEST(PacketPoolTest, InputPrefersFullestSubPool) {
  PacketPool Pool(8);
  WorkPacket *Light = Pool.getOutput();
  WorkPacket *Heavy = Pool.getOutput();
  Light->push(fakeObject(1));
  for (uint32_t I = 0; I < WorkPacket::Capacity; ++I)
    Heavy->push(fakeObject(I));
  Pool.put(Light);
  Pool.put(Heavy);
  EXPECT_EQ(Pool.getInput(), Heavy); // Almost-full first.
  EXPECT_EQ(Pool.getInput(), Light);
  Heavy->clear();
  Light->clear();
  Pool.put(Heavy);
  Pool.put(Light);
}

TEST(PacketPoolTest, OutputPrefersEmptiest) {
  PacketPool Pool(2);
  WorkPacket *A = Pool.getOutput();
  WorkPacket *B = Pool.getOutput();
  A->push(fakeObject(1));
  Pool.put(A); // Non-empty pool.
  Pool.put(B); // Empty pool.
  EXPECT_EQ(Pool.getOutput(), B); // Empty preferred.
  // Only the non-empty packet remains: output falls back to it.
  EXPECT_EQ(Pool.getOutput(), A);
  A->clear();
  Pool.put(A);
  Pool.put(B);
}

TEST(PacketPoolTest, DeferredLifecycle) {
  PacketPool Pool(4);
  WorkPacket *P = Pool.getEmpty();
  ASSERT_NE(P, nullptr);
  P->push(fakeObject(7));
  Pool.putDeferred(P);
  EXPECT_TRUE(Pool.hasDeferred());
  // Deferred work is invisible to getInput and to termination.
  EXPECT_EQ(Pool.getInput(), nullptr);
  EXPECT_FALSE(Pool.allPacketsEmptyAndIdle());
  EXPECT_EQ(Pool.redistributeDeferred(), 1u);
  EXPECT_FALSE(Pool.hasDeferred());
  WorkPacket *In = Pool.getInput();
  ASSERT_EQ(In, P);
  EXPECT_EQ(In->pop(), fakeObject(7));
  Pool.put(In);
  EXPECT_TRUE(Pool.allPacketsEmptyAndIdle());
}

TEST(PacketPoolTest, StatsWatermarks) {
  PacketPool Pool(8);
  Pool.resetStats();
  WorkPacket *A = Pool.getOutput();
  WorkPacket *B = Pool.getOutput();
  WorkPacket *C = Pool.getOutput();
  EXPECT_EQ(Pool.stats().PacketsInUseWatermark, 3u);
  A->push(fakeObject(1));
  A->push(fakeObject(2));
  Pool.put(A);
  EXPECT_EQ(Pool.stats().SlotsInUseWatermark, 2u);
  Pool.put(B);
  Pool.put(C);
  EXPECT_GT(Pool.stats().SyncOps, 0u);
  WorkPacket *In = Pool.getInput();
  In->clear();
  Pool.put(In);
  EXPECT_TRUE(Pool.verifyAllReturned());
}

TEST(PacketPoolTest, FailedGetsCounted) {
  PacketPool Pool(1);
  WorkPacket *P = Pool.getOutput();
  EXPECT_EQ(Pool.getOutput(), nullptr);
  EXPECT_EQ(Pool.getEmpty(), nullptr);
  EXPECT_EQ(Pool.getInput(), nullptr);
  EXPECT_EQ(Pool.stats().FailedGets, 3u);
  Pool.put(P);
}

TEST(PacketPoolTest, AcquireStatusDistinguishesExhaustion) {
  PacketPool Pool(1);
  PacketAcquireStatus Status = PacketAcquireStatus::Injected;
  WorkPacket *P = Pool.getOutput(&Status);
  ASSERT_NE(P, nullptr);
  EXPECT_EQ(Status, PacketAcquireStatus::Ok);
  // The one packet is held: every sub-pool search comes up genuinely dry.
  EXPECT_EQ(Pool.getOutput(&Status), nullptr);
  EXPECT_EQ(Status, PacketAcquireStatus::Exhausted);
  EXPECT_EQ(Pool.getEmpty(&Status), nullptr);
  EXPECT_EQ(Status, PacketAcquireStatus::Exhausted);
  EXPECT_EQ(Pool.getInput(&Status), nullptr);
  EXPECT_EQ(Status, PacketAcquireStatus::Exhausted);
  EXPECT_EQ(Pool.stats().InjectedGets, 0u);
  Pool.put(P);
}

TEST(PacketPoolTest, InjectedAcquireFailureIsTyped) {
  FaultPlan Plan;
  Plan.failEveryNth(FaultSite::PacketAcquireEmpty, 2);
  FaultInjector Inject(Plan);
  PacketPool Pool(4, &Inject);
  PacketAcquireStatus Status = PacketAcquireStatus::Ok;
  // Visit 1: no injection; visit 2: injected even though packets exist.
  WorkPacket *P = Pool.getEmpty(&Status);
  ASSERT_NE(P, nullptr);
  EXPECT_EQ(Status, PacketAcquireStatus::Ok);
  EXPECT_EQ(Pool.getEmpty(&Status), nullptr);
  EXPECT_EQ(Status, PacketAcquireStatus::Injected);
  EXPECT_EQ(Pool.stats().InjectedGets, 1u);
  EXPECT_EQ(Pool.stats().FailedGets, 1u);
  EXPECT_EQ(Inject.injected(FaultSite::PacketAcquireEmpty), 1u);
  Pool.put(P);
}

TEST(PacketPoolTest, DrainToZeroThenStatusAndRecovery) {
  // Regression for the overflow path: drain the pool to zero packets
  // held, observe typed exhaustion (not a silent spin), then return
  // everything and observe full recovery.
  constexpr uint32_t NumPackets = 8;
  PacketPool Pool(NumPackets);
  std::vector<WorkPacket *> Held;
  PacketAcquireStatus Status;
  while (WorkPacket *P = Pool.getOutput(&Status))
    Held.push_back(P);
  EXPECT_EQ(Held.size(), NumPackets);
  EXPECT_EQ(Status, PacketAcquireStatus::Exhausted);
  EXPECT_EQ(Pool.getEmpty(&Status), nullptr);
  EXPECT_EQ(Status, PacketAcquireStatus::Exhausted);
  for (WorkPacket *P : Held)
    Pool.put(P);
  EXPECT_TRUE(Pool.verifyAllReturned());
  WorkPacket *Again = Pool.getEmpty(&Status);
  ASSERT_NE(Again, nullptr);
  EXPECT_EQ(Status, PacketAcquireStatus::Ok);
  Pool.put(Again);
  EXPECT_TRUE(Pool.verifyAllReturned());
}

TEST(PacketPoolTest, ConcurrentChurnConservesPackets) {
  // Threads continuously get/put packets with random occupancy; at the
  // end every packet must be back and empty (conservation + ABA).
  constexpr uint32_t NumPackets = 64;
  PacketPool Pool(NumPackets);
  std::atomic<bool> Stop{false};
  std::vector<std::thread> Threads;
  for (int T = 0; T < 4; ++T)
    Threads.emplace_back([&Pool, &Stop, T] {
      uint64_t Step = 0;
      while (!Stop.load(std::memory_order_relaxed)) {
        WorkPacket *P = (Step + T) % 3 ? Pool.getOutput() : Pool.getInput();
        if (!P) {
          ++Step;
          continue;
        }
        // Mutate occupancy while privately owned.
        while (!P->empty() && Step % 2)
          P->pop();
        for (unsigned I = 0; I < (Step % 7) && !P->full(); ++I)
          P->push(fakeObject(I + 1));
        Pool.put(P);
        ++Step;
      }
    });
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  Stop.store(true);
  for (auto &T : Threads)
    T.join();
  // Drain all leftover work single-threadedly.
  while (WorkPacket *P = Pool.getInput()) {
    P->clear();
    Pool.put(P);
  }
  EXPECT_TRUE(Pool.verifyAllReturned());
  EXPECT_TRUE(Pool.allPacketsEmptyAndIdle());
}

} // namespace
