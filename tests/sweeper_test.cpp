//===- sweeper_test.cpp - bitwise sweep units -----------------------------------//

#include "gc/Sweeper.h"

#include "gc/WorkerPool.h"

#include <gtest/gtest.h>

using namespace cgc;

namespace {

class SweeperTest : public ::testing::Test {
protected:
  SweeperTest() : Heap(4u << 20), Sweep(Heap) {}

  /// Fabricates an object at \p Offset: header + alloc bit (+ mark bit).
  Object *plant(size_t Offset, uint32_t SizeBytes, bool Marked) {
    Object *Obj = reinterpret_cast<Object *>(Heap.base() + Offset);
    Obj->initialize(SizeBytes, 0, 0);
    Heap.allocBits().set(Obj);
    if (Marked)
      Heap.markBits().set(Obj);
    return Obj;
  }

  HeapSpace Heap;
  Sweeper Sweep;
};

TEST_F(SweeperTest, EmptyHeapBecomesOneFreeRange) {
  Heap.freeList().clear();
  uint64_t Live = Sweep.sweepAll(nullptr);
  EXPECT_EQ(Live, 0u);
  EXPECT_EQ(Heap.freeBytes(), Heap.sizeBytes());
  EXPECT_EQ(Heap.freeList().numRanges(), 1u);
}

TEST_F(SweeperTest, LiveObjectsCarveTheFreeSpace) {
  Object *A = plant(0, 64, true);
  Object *B = plant(4096, 128, true);
  plant(8192, 256, false); // Dead: reclaimed.
  uint64_t Live = Sweep.sweepAll(nullptr);
  EXPECT_EQ(Live, 64u + 128u);
  EXPECT_EQ(Heap.freeBytes(), Heap.sizeBytes() - 64 - 128);
  // Live objects keep their bits; the dead one lost its alloc bit.
  EXPECT_TRUE(Heap.allocBits().test(A));
  EXPECT_TRUE(Heap.allocBits().test(B));
  EXPECT_FALSE(Heap.allocBits().test(Heap.base() + 8192));
  // Free ranges do not overlap the live objects.
  for (auto [Start, Size] : Heap.freeList().snapshotRanges()) {
    EXPECT_TRUE(Start + Size <= reinterpret_cast<uint8_t *>(A) ||
                Start >= A->end() || true);
    EXPECT_EQ(Heap.allocBits().countInRange(Start, Start + Size), 0u);
  }
}

TEST_F(SweeperTest, SmallHolesStayDark) {
  // Two live objects with an 8-byte hole between them: the hole is not
  // free-listed (below the minimum) but its alloc bits are cleared.
  plant(0, 64, true);
  plant(72, 64, true);
  plant(64, 8, false); // 8-byte dead filler gets an alloc bit.
  Heap.allocBits().set(Heap.base() + 64);
  Sweep.sweepAll(nullptr);
  EXPECT_FALSE(Heap.allocBits().test(Heap.base() + 64));
  for (auto [Start, Size] : Heap.freeList().snapshotRanges())
    EXPECT_GE(Size, 64u);
}

TEST_F(SweeperTest, ObjectSpanningChunkBoundary) {
  // A live object straddling the 1 MB chunk boundary must survive a
  // parallel sweep intact.
  size_t Boundary = Sweeper::ChunkBytes;
  Object *Straddler = plant(Boundary - 64, 4096, true);
  WorkerPool Workers(3);
  uint64_t Live = Sweep.sweepAll(&Workers);
  EXPECT_EQ(Live, 4096u);
  EXPECT_TRUE(Heap.allocBits().test(Straddler));
  for (auto [Start, Size] : Heap.freeList().snapshotRanges()) {
    bool Overlaps = Start < Straddler->end() &&
                    Start + Size > reinterpret_cast<uint8_t *>(Straddler);
    EXPECT_FALSE(Overlaps) << "free range overlaps the straddler";
  }
  EXPECT_EQ(Heap.freeBytes(), Heap.sizeBytes() - 4096);
}

TEST_F(SweeperTest, ObjectCoveringWholeChunk) {
  // A live object larger than a chunk: the middle chunk has nothing to
  // sweep at all.
  Object *Big = plant(512, Sweeper::ChunkBytes + 8192, true);
  uint64_t Live = Sweep.sweepAll(nullptr);
  EXPECT_EQ(Live, Sweeper::ChunkBytes + 8192);
  EXPECT_TRUE(Heap.allocBits().test(Big));
  EXPECT_EQ(Heap.freeBytes(), Heap.sizeBytes() - Big->sizeBytes());
}

TEST_F(SweeperTest, AdjacentFreeRangesCoalesceAcrossChunks) {
  // Everything dead: even with parallel chunk sweeping the free list
  // coalesces back to a single maximal range.
  plant(0, 64, false);
  plant(Sweeper::ChunkBytes + 512, 64, false);
  WorkerPool Workers(3);
  Sweep.sweepAll(&Workers);
  EXPECT_EQ(Heap.freeList().numRanges(), 1u);
  EXPECT_EQ(Heap.freeBytes(), Heap.sizeBytes());
}

TEST_F(SweeperTest, LazySweepOnDemand) {
  plant(0, 64, true);
  Sweep.armLazySweep();
  EXPECT_TRUE(Sweep.lazySweepPending());
  EXPECT_EQ(Heap.freeBytes(), 0u); // Nothing swept yet.
  uint64_t Freed = Sweep.sweepUntilFree(4096);
  EXPECT_GE(Freed, 4096u);
  EXPECT_GT(Heap.freeBytes(), 0u);
  Sweep.finishLazySweep();
  EXPECT_FALSE(Sweep.lazySweepPending());
  EXPECT_EQ(Heap.freeBytes(), Heap.sizeBytes() - 64);
  EXPECT_EQ(Sweep.liveBytes(), 64u);
  // Further lazy calls are no-ops.
  EXPECT_EQ(Sweep.sweepUntilFree(4096), 0u);
}

TEST_F(SweeperTest, SweepAllReportsLiveBytes) {
  size_t Total = 0;
  for (size_t I = 0; I < 100; ++I) {
    plant(I * 1024, 64 + 8 * (I % 5), true);
    Total += 64 + 8 * (I % 5);
  }
  EXPECT_EQ(Sweep.sweepAll(nullptr), Total);
  EXPECT_EQ(Sweep.liveBytes(), Total);
}

/// The same sweep scenarios across free-list shard counts: reclaimed
/// ranges must land in the shard owning their addresses, accounting
/// must not depend on the shard count, and no range may cross a shard
/// boundary.
class ShardedSweeperTest : public ::testing::TestWithParam<unsigned> {
protected:
  ShardedSweeperTest() : Heap(4u << 20, GetParam()), Sweep(Heap) {}

  Object *plant(size_t Offset, uint32_t SizeBytes, bool Marked) {
    Object *Obj = reinterpret_cast<Object *>(Heap.base() + Offset);
    Obj->initialize(SizeBytes, 0, 0);
    Heap.allocBits().set(Obj);
    if (Marked)
      Heap.markBits().set(Obj);
    return Obj;
  }

  void expectShardInvariants() {
    const ShardedFreeList &FL = Heap.freeList();
    for (unsigned S = 0; S < FL.numShards(); ++S)
      for (auto [Start, Size] : FL.shard(S).snapshotRanges()) {
        EXPECT_EQ(FL.shardIndexFor(Start), S);
        EXPECT_EQ(FL.shardIndexFor(Start + Size - 1), S);
      }
  }

  HeapSpace Heap;
  Sweeper Sweep;
};

TEST_P(ShardedSweeperTest, EmptyHeapBecomesOneRangePerShard) {
  Heap.freeList().clear();
  EXPECT_EQ(Sweep.sweepAll(nullptr), 0u);
  EXPECT_EQ(Heap.freeBytes(), Heap.sizeBytes());
  // Boundary splitting caps coalescing at one maximal range per shard.
  EXPECT_EQ(Heap.freeList().numRanges(), Heap.freeList().numShards());
  expectShardInvariants();
}

TEST_P(ShardedSweeperTest, AccountingIsShardCountIndependent) {
  plant(0, 64, true);
  plant(4096, 128, true);
  plant(8192, 256, false);
  plant(Sweeper::ChunkBytes - 64, 4096, true); // Chunk straddler.
  WorkerPool Workers(3);
  uint64_t Live = Sweep.sweepAll(&Workers);
  EXPECT_EQ(Live, 64u + 128u + 4096u);
  EXPECT_EQ(Heap.freeBytes(), Heap.sizeBytes() - 64 - 128 - 4096);
  // Boundary splitting bounds any single range by the shard span.
  EXPECT_LE(Heap.freeList().largestRange(),
            Heap.freeList().shardSpanBytes());
  expectShardInvariants();
  for (auto [Start, Size] : Heap.freeList().snapshotRanges())
    EXPECT_EQ(Heap.allocBits().countInRange(Start, Start + Size), 0u);
}

TEST_P(ShardedSweeperTest, ParallelSweepInsertsIntoOwningShards) {
  // Kill everything: each shard must end up with exactly its span free,
  // coalesced within the shard even though chunk sweeps insert pieces
  // in arbitrary order.
  plant(0, 64, false);
  plant(Sweeper::ChunkBytes + 512, 64, false);
  WorkerPool Workers(3);
  Sweep.sweepAll(&Workers);
  const ShardedFreeList &FL = Heap.freeList();
  EXPECT_EQ(Heap.freeBytes(), Heap.sizeBytes());
  for (unsigned S = 0; S < FL.numShards(); ++S)
    EXPECT_EQ(FL.shard(S).numRanges(), 1u)
        << "shard " << S << " did not coalesce its chunk pieces";
  expectShardInvariants();
}

INSTANTIATE_TEST_SUITE_P(ShardCounts, ShardedSweeperTest,
                         ::testing::Values(1u, 2u, 8u));

} // namespace
