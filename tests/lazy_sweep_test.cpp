//===- lazy_sweep_test.cpp - lazy sweep option end-to-end ----------------------//

#include "runtime/GcHeap.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

using namespace cgc;

namespace {

GcOptions lazyOptions(CollectorKind Kind) {
  GcOptions Opts;
  Opts.Kind = Kind;
  Opts.HeapBytes = 8u << 20;
  Opts.LazySweep = true;
  Opts.GcWorkerThreads = 2;
  Opts.BackgroundThreads = 1;
  Opts.NumWorkPackets = 64;
  return Opts;
}

class LazySweepTest : public ::testing::TestWithParam<CollectorKind> {};

TEST_P(LazySweepTest, AllocationDrivesTheSweep) {
  auto Heap = GcHeap::create(lazyOptions(GetParam()));
  MutatorContext &Ctx = Heap->attachThread();
  Ctx.reserveRoots(16);
  // Retain a few objects, churn a lot; lazy sweeping must keep
  // allocation alive across many cycles.
  for (int I = 0; I < 16; ++I)
    Ctx.setRoot(I, Heap->allocate(Ctx, 2000, 0, 5));
  size_t Total = 0;
  while (Total < 48u << 20) {
    Object *G = Heap->allocate(Ctx, 700, 1, 0);
    ASSERT_NE(G, nullptr) << "lazy sweep failed to feed the allocator";
    Total += G->sizeBytes();
  }
  EXPECT_GE(Heap->completedCycles(), 2u);
  for (int I = 0; I < 16; ++I) {
    ASSERT_NE(Ctx.getRoot(I), nullptr);
    EXPECT_EQ(Ctx.getRoot(I)->classId(), 5u);
  }
  Heap->detachThread(Ctx);
}

TEST_P(LazySweepTest, SweepPhaseLeavesThePause) {
  auto Heap = GcHeap::create(lazyOptions(GetParam()));
  MutatorContext &Ctx = Heap->attachThread();
  Ctx.reserveRoots(64);
  for (int I = 0; I < 64; ++I)
    Ctx.setRoot(I, Heap->allocate(Ctx, 4000, 0, 0));
  size_t Total = 0;
  while (Total < 32u << 20) {
    Object *G = Heap->allocate(Ctx, 512, 0, 0);
    ASSERT_NE(G, nullptr);
    Total += G->sizeBytes();
  }
  auto Records = Heap->stats().snapshot();
  ASSERT_GE(Records.size(), 1u);
  for (const auto &R : Records) {
    // Arming lazy sweep is (nearly) instantaneous compared with an
    // eager parallel sweep of an 8 MB heap.
    EXPECT_LT(R.SweepMs, R.PauseMs + 0.001);
  }
  Heap->detachThread(Ctx);
}

TEST_P(LazySweepTest, BackToBackCyclesFinishTheSweepFirst) {
  auto Heap = GcHeap::create(lazyOptions(GetParam()));
  MutatorContext &Ctx = Heap->attachThread();
  Ctx.reserveRoots(1);
  Object *Keep = Heap->allocate(Ctx, 128, 0, 3);
  Ctx.setRoot(0, Keep);
  // Two immediate forced collections: the second must complete the
  // first's lazy sweep before reusing the mark bits.
  Heap->requestGC(&Ctx);
  Heap->requestGC(&Ctx);
  ASSERT_EQ(Ctx.getRoot(0), Keep);
  EXPECT_EQ(Keep->classId(), 3u);
  VerifyResult V = Heap->verifyNow(&Ctx);
  EXPECT_TRUE(V.Ok) << V.Error;
  Heap->detachThread(Ctx);
}

TEST(LazySweepBackgroundTest, BackgroundThreadsSweepWhileMutatorIdles) {
  GcOptions Opts = lazyOptions(CollectorKind::MostlyConcurrent);
  Opts.BackgroundThreads = 2;
  auto Heap = GcHeap::create(Opts);
  MutatorContext &Ctx = Heap->attachThread();
  Ctx.reserveRoots(1);
  // Create garbage and force a cycle: the sweep is armed lazily.
  for (int I = 0; I < 2000; ++I)
    Heap->allocate(Ctx, 512, 0, 0);
  Heap->requestGC(&Ctx);
  ASSERT_TRUE(Heap->core().Sweep.lazySweepPending());
  // The mutator goes idle; only background threads can finish the sweep
  // (Section 7: sweeping spread between mutators and background threads).
  Heap->enterIdle(Ctx);
  for (int I = 0; I < 2000 && Heap->core().Sweep.lazySweepPending(); ++I)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  Heap->exitIdle(Ctx);
  EXPECT_FALSE(Heap->core().Sweep.lazySweepPending())
      << "background threads never finished the lazy sweep";
  EXPECT_GT(Heap->freeBytes(), 0u);
  Heap->detachThread(Ctx);
}

INSTANTIATE_TEST_SUITE_P(BothCollectors, LazySweepTest,
                         ::testing::Values(CollectorKind::StopTheWorld,
                                           CollectorKind::MostlyConcurrent),
                         [](const auto &Info) {
                           return Info.param == CollectorKind::StopTheWorld
                                      ? "Stw"
                                      : "Concurrent";
                         });

} // namespace
