//===- lint_selftest.cpp - cgc-lint rule engine self-test ---------------------//
///
/// \file
/// Drives the cgc-lint rule engine (tools/cgc-lint/LintCore.h) over the
/// fixture files in tests/lint_fixtures/ and checks that each rule
/// fires exactly where the fixtures say it should — and nowhere else.
///
/// Fixture format:
///   - line 1: `// fixture-as: <relpath>` — the tree-relative path the
///     fixture is linted as (rules R2/R3/R4 are path-sensitive).
///   - `// expect(R1)` on a line declares one expected finding there;
///     `expect(R1,R4)` declares several.
///
/// The set equality in both directions is the point: a rule that stops
/// firing (regression) and a rule that starts over-firing (false
/// positive) both fail this suite.
///
//===----------------------------------------------------------------------===//

#include "LintCore.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace {

namespace fs = std::filesystem;

struct Fixture {
  std::string FileName; // fixture file name, for messages
  std::string LintAs;   // tree-relative path from the directive
  std::string Content;
  std::multiset<std::pair<std::string, int>> Expected; // (rule, line)
};

std::vector<Fixture> loadFixtures() {
  std::vector<Fixture> Out;
  for (const auto &Entry : fs::directory_iterator(CGC_LINT_FIXTURE_DIR)) {
    if (!Entry.is_regular_file())
      continue;
    Fixture F;
    F.FileName = Entry.path().filename().string();
    std::ifstream In(Entry.path());
    std::stringstream SS;
    SS << In.rdbuf();
    F.Content = SS.str();

    std::istringstream Lines(F.Content);
    std::string Line;
    int LineNo = 0;
    while (std::getline(Lines, Line)) {
      ++LineNo;
      if (LineNo == 1) {
        const std::string Directive = "// fixture-as: ";
        EXPECT_EQ(Line.rfind(Directive, 0), 0u)
            << F.FileName << ": first line must be '" << Directive
            << "<relpath>'";
        F.LintAs = Line.substr(Directive.size());
        continue;
      }
      size_t At = Line.find("expect(");
      if (At == std::string::npos)
        continue;
      size_t Close = Line.find(')', At);
      EXPECT_NE(Close, std::string::npos) << F.FileName << ":" << LineNo;
      if (Close == std::string::npos)
        continue;
      std::stringstream RuleSS(Line.substr(At + 7, Close - At - 7));
      std::string Rule;
      while (std::getline(RuleSS, Rule, ','))
        F.Expected.insert({Rule, LineNo});
    }
    Out.push_back(std::move(F));
  }
  std::sort(Out.begin(), Out.end(),
            [](const Fixture &A, const Fixture &B) {
              return A.FileName < B.FileName;
            });
  return Out;
}

std::string describe(const std::multiset<std::pair<std::string, int>> &S) {
  std::string Out;
  for (const auto &[Rule, Line] : S)
    Out += "  " + Rule + " @ line " + std::to_string(Line) + "\n";
  return Out.empty() ? "  (none)\n" : Out;
}

TEST(LintSelfTest, FixturesMatchExactly) {
  auto Fixtures = loadFixtures();
  ASSERT_FALSE(Fixtures.empty()) << "no fixtures under " CGC_LINT_FIXTURE_DIR;
  for (const Fixture &F : Fixtures) {
    auto Violations = cgclint::lintSource(F.LintAs, F.Content);
    std::multiset<std::pair<std::string, int>> Actual;
    for (const auto &V : Violations) {
      EXPECT_EQ(V.File, F.LintAs);
      Actual.insert({V.Rule, V.Line});
    }
    EXPECT_EQ(Actual, F.Expected)
        << F.FileName << " (as " << F.LintAs << ")\nexpected:\n"
        << describe(F.Expected) << "actual:\n"
        << describe(Actual);
  }
}

TEST(LintSelfTest, EveryRuleIsCoveredByAFixture) {
  std::set<std::string> Fired;
  for (const Fixture &F : loadFixtures())
    for (const auto &[Rule, Line] : F.Expected)
      Fired.insert(Rule);
  for (const char *Rule : {"R1", "R2", "R3", "R4"})
    EXPECT_TRUE(Fired.count(Rule))
        << "no fixture exercises rule " << Rule;
}

TEST(LintSelfTest, SuppressionCoversOwnAndNextLine) {
  const std::string Src = "#include <atomic>\n"
                          "void f(std::atomic<int> &A) {\n"
                          "  (void)A.load(); // cgc-lint: allow(R1)\n"
                          "  // cgc-lint: allow(all)\n"
                          "  (void)A.load();\n"
                          "  (void)A.load();\n" // line 6: NOT suppressed
                          "}\n";
  auto V = cgclint::lintSource("gc/X.cpp", Src);
  ASSERT_EQ(V.size(), 1u);
  EXPECT_EQ(V[0].Rule, "R1");
  EXPECT_EQ(V[0].Line, 6);
}

TEST(LintSelfTest, FormatViolation) {
  cgclint::LintViolation V{"R2", "gc/Tracer.cpp", 12, 7, "boom"};
  EXPECT_EQ(cgclint::formatViolation(V), "gc/Tracer.cpp:12:7: [R2] boom");
}

TEST(LintSelfTest, JsonOutput) {
  std::vector<cgclint::LintViolation> Vs = {
      {"R1", "gc/X.cpp", 3, 9, "a \"quoted\" msg"}};
  std::string Json = cgclint::violationsToJson(Vs);
  EXPECT_NE(Json.find("\"file\": \"gc/X.cpp\""), std::string::npos);
  EXPECT_NE(Json.find("\"line\": 3"), std::string::npos);
  EXPECT_NE(Json.find("\"column\": 9"), std::string::npos);
  EXPECT_NE(Json.find("\\\"quoted\\\""), std::string::npos);
  EXPECT_EQ(cgclint::violationsToJson({}), "[]\n");
}

TEST(LintSelfTest, LintTreeOnRealSourcesIsClean) {
  // The same invariant the `cgc_lint` ctest enforces, reachable from the
  // unit suite so a violating edit fails close to the change.
  fs::path SrcRoot = fs::path(CGC_LINT_FIXTURE_DIR).parent_path().parent_path() / "src";
  ASSERT_TRUE(fs::exists(SrcRoot)) << SrcRoot;
  auto Violations = cgclint::lintTree(SrcRoot.string());
  for (const auto &V : Violations)
    ADD_FAILURE() << cgclint::formatViolation(V);
}

} // namespace
