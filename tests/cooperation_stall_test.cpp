//===- cooperation_stall_test.cpp - timed-handshake stall defense --------------//
///
/// \file
/// The cooperation protocols (safepoint parks, ragged fence handshakes)
/// lean entirely on mutator cooperation; DESIGN.md §13 arms them with
/// grace-period deadlines, laggard attribution, and a strike escalation
/// that aborts a wedged concurrent cycle to the STW finish. This suite
/// drives every piece with deliberately non-cooperative mutators:
///
///  * registry-level: deterministic timeout attribution (who stalled,
///    in which protocol, how stale), the TransitionSeq seqlock rule for
///    provably-quiescent threads, detach-mid-handshake, ManualClock
///    determinism, and injected per-thread poll-skip bursts;
///  * heap-level: the full containment story — a mutator refuses to
///    poll, fence handshakes time out attributing it, the watchdog
///    aborts the cycle to an STW finish without deadlocking, and the
///    next cycle completes normally (the ISSUE acceptance scenario);
///  * attach/detach churn against live concurrent cycles.
///
//===----------------------------------------------------------------------===//

#include "TestSeed.h"
#include "gc/ConcurrentCollector.h"
#include "heap/BitVector8.h"
#include "mutator/ThreadRegistry.h"
#include "runtime/GcHeap.h"
#include "support/FaultInjector.h"
#include "support/Random.h"
#include "support/Timing.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <thread>
#include <vector>

using namespace cgc;

namespace {

constexpr uint64_t MsNs = 1000ull * 1000;

/// Real-time ceiling for "wait until X happens" loops: generous enough
/// for a loaded single-core CI host, far below the ctest timeout.
constexpr uint64_t WaitCeilingNs = 60ull * 1000 * MsNs;

class StallRegistryTest : public ::testing::Test {
protected:
  static constexpr size_t HeapBytes = 1u << 20;
  StallRegistryTest() : Pool(8) {
    Mem.reset(static_cast<uint8_t *>(std::aligned_alloc(4096, HeapBytes)));
    Bits = std::make_unique<BitVector8>(Mem.get(), HeapBytes);
  }
  struct FreeDeleter {
    void operator()(uint8_t *P) const { std::free(P); }
  };
  std::unique_ptr<uint8_t, FreeDeleter> Mem;
  std::unique_ptr<BitVector8> Bits;
  PacketPool Pool;
  ThreadRegistry Registry;
};

/// Counts recent stall reports naming \p DebugId in \p Protocol.
size_t stallsFor(const ThreadRegistry &Registry, uint32_t DebugId,
                 StallProtocol Protocol) {
  size_t N = 0;
  for (const StallReport &R : Registry.recentStalls())
    if (R.DebugId == DebugId && R.Protocol == Protocol)
      ++N;
  return N;
}

TEST_F(StallRegistryTest, FenceTimeoutAttributesExactLaggard) {
  Registry.configureStallDefense(/*StwGraceNanos=*/0,
                                 /*FenceGraceNanos=*/50 * MsNs, nullptr,
                                 nullptr);
  MutatorContext Good(Pool);
  MutatorContext Laggard(Pool);
  Registry.attach(&Good);
  Registry.attach(&Laggard);

  std::atomic<bool> Finish{false};
  // The cooperative thread polls tightly; the laggard spins without ever
  // reaching a cooperation point (yielding, like a thread wedged in a
  // syscall — non-cooperative, not CPU-hogging).
  std::thread GoodThread([&] {
    while (!Finish.load(std::memory_order_acquire))
      Registry.poll(Good, *Bits);
  });
  std::thread LaggardThread([&] {
    while (!Finish.load(std::memory_order_acquire))
      std::this_thread::yield();
  });

  EXPECT_EQ(Registry.requestFenceHandshake(nullptr, *Bits),
            CooperationResult::Timeout);
  EXPECT_EQ(Registry.fenceTimeouts(), 1u);
  EXPECT_GE(Registry.stallReportCount(), 1u);

  // Attribution names exactly the laggard, never the cooperative thread.
  EXPECT_GE(stallsFor(Registry, Laggard.debugId(),
                      StallProtocol::FenceHandshake),
            1u);
  EXPECT_EQ(stallsFor(Registry, Good.debugId(),
                      StallProtocol::FenceHandshake),
            0u);
  for (const StallReport &R : Registry.recentStalls())
    if (R.DebugId == Laggard.debugId()) {
      EXPECT_EQ(R.State, ExecState::Running);
      EXPECT_GE(R.AckLagEpochs, 1u);
    }

  Finish.store(true, std::memory_order_release);
  GoodThread.join();
  LaggardThread.join();
  Registry.detach(&Good);
  Registry.detach(&Laggard);
}

TEST_F(StallRegistryTest, ManualClockMakesTimeoutsDeterministic) {
  ManualClock Clk(/*StartNanos=*/1);
  Registry.configureStallDefense(0, /*FenceGraceNanos=*/1 * MsNs, nullptr,
                                 nullptr);
  MutatorContext Laggard(Pool); // Running; nobody ever polls it.
  Registry.attach(&Laggard);

  std::atomic<bool> Done{false};
  CooperationResult Result = CooperationResult::Ok;
  std::thread Requester([&] {
    Result = Registry.requestFenceHandshake(nullptr, *Bits);
    Done.store(true, std::memory_order_release);
  });

  // Plenty of real time passes, but the fake clock is frozen: the grace
  // deadline must not fire.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(Done.load(std::memory_order_acquire))
      << "grace deadline fired under a frozen clock";

  // One tick past the grace: the timeout is immediate and exact.
  Clk.advanceNanos(2 * MsNs);
  Requester.join();
  EXPECT_TRUE(Done.load(std::memory_order_acquire));
  EXPECT_EQ(Result, CooperationResult::Timeout);

  // Fully deterministic report: attach stamped LastPollNanos at t=1 and
  // the reporter read the clock at t=1+2ms.
  std::vector<StallReport> Stalls = Registry.recentStalls();
  ASSERT_EQ(Stalls.size(), 1u);
  EXPECT_EQ(Stalls[0].DebugId, Laggard.debugId());
  EXPECT_EQ(Stalls[0].TimeNs, 1 + 2 * MsNs);
  EXPECT_EQ(Stalls[0].PollAgeNanos, 2 * MsNs);
  EXPECT_EQ(Stalls[0].Protocol, StallProtocol::FenceHandshake);

  Registry.detach(&Laggard);
}

TEST_F(StallRegistryTest, MidTransitionThreadIsNeverQuiescent) {
  Registry.configureStallDefense(0, /*FenceGraceNanos=*/10 * MsNs, nullptr,
                                 nullptr);
  MutatorContext Idler(Pool);
  Registry.attach(&Idler);
  Registry.enterIdle(Idler);

  // Stable idle (even seqlock): provably quiescent, handshake is
  // immediate.
  EXPECT_EQ(Registry.requestFenceHandshake(nullptr, *Bits),
            CooperationResult::Ok);
  EXPECT_EQ(Registry.fenceTimeouts(), 0u);

  // Simulate a thread caught mid-transition: odd TransitionSeq. The
  // state still reads Idle, but the fence ordering is not proven — the
  // handshake must refuse to treat it as quiescent and time out.
  Idler.TransitionSeq.fetch_add(1, std::memory_order_acq_rel);
  EXPECT_EQ(Registry.requestFenceHandshake(nullptr, *Bits),
            CooperationResult::Timeout);
  EXPECT_EQ(Registry.fenceTimeouts(), 1u);
  EXPECT_GE(stallsFor(Registry, Idler.debugId(),
                      StallProtocol::FenceHandshake),
            1u);

  // Transition completes (even again): quiescent once more.
  Idler.TransitionSeq.fetch_add(1, std::memory_order_release);
  EXPECT_EQ(Registry.requestFenceHandshake(nullptr, *Bits),
            CooperationResult::Ok);

  Registry.exitIdle(Idler, *Bits);
  Registry.detach(&Idler);
}

TEST_F(StallRegistryTest, StopTheWorldWarnsButStillCompletes) {
  Registry.configureStallDefense(/*StwGraceNanos=*/20 * MsNs, 0, nullptr,
                                 nullptr);
  MutatorContext Worker(Pool);
  Registry.attach(&Worker);

  std::atomic<bool> Cooperate{false};
  std::atomic<bool> Finish{false};
  std::thread T([&] {
    while (!Finish.load(std::memory_order_acquire)) {
      if (Cooperate.load(std::memory_order_acquire))
        Registry.poll(Worker, *Bits);
      else
        std::this_thread::yield();
    }
  });

  std::atomic<bool> Stopped{false};
  std::thread Initiator([&] {
    Registry.stopTheWorld(nullptr, *Bits);
    Stopped.store(true, std::memory_order_release);
  });

  // The wait never gives up, but past each grace period it attributes
  // the stall.
  Stopwatch Waited;
  while (Registry.stwStallWarnings() < 2 &&
         Waited.elapsedNanos() < WaitCeilingNs)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_GE(Registry.stwStallWarnings(), 2u);
  EXPECT_FALSE(Stopped.load(std::memory_order_acquire));
  EXPECT_GE(stallsFor(Registry, Worker.debugId(),
                      StallProtocol::StopTheWorld),
            1u);
  for (const StallReport &R : Registry.recentStalls())
    if (R.Protocol == StallProtocol::StopTheWorld) {
      EXPECT_EQ(R.DebugId, Worker.debugId());
      EXPECT_GT(R.PollAgeNanos, 0u);
      EXPECT_EQ(R.AckLagEpochs, 0u);
    }

  // The thread comes back to its polls: the stop completes normally.
  Cooperate.store(true, std::memory_order_release);
  Initiator.join();
  EXPECT_TRUE(Stopped.load(std::memory_order_acquire));
  EXPECT_EQ(Worker.state(), ExecState::AtSafepoint);
  Registry.resumeTheWorld();

  Finish.store(true, std::memory_order_release);
  T.join();
  Registry.detach(&Worker);
}

TEST_F(StallRegistryTest, DetachingLaggardUnblocksPendingHandshake) {
  // Unbounded grace (legacy behavior): the handshake blocks on the
  // laggard. Detaching it mid-handshake must complete the wait — the
  // regression this guards had the requester scan a stale thread list.
  MutatorContext Laggard(Pool);
  Registry.attach(&Laggard);

  std::atomic<bool> Done{false};
  std::thread Requester([&] {
    EXPECT_EQ(Registry.requestFenceHandshake(nullptr, *Bits),
              CooperationResult::Ok);
    Done.store(true, std::memory_order_release);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(Done.load(std::memory_order_acquire))
      << "handshake completed with a non-cooperating thread attached";

  Registry.detach(&Laggard);
  Requester.join();
  EXPECT_TRUE(Done.load(std::memory_order_acquire));
}

TEST_F(StallRegistryTest, StallReportsOutliveTheLaggard) {
  Registry.configureStallDefense(0, /*FenceGraceNanos=*/10 * MsNs, nullptr,
                                 nullptr);
  uint32_t LaggardId = 0;
  {
    MutatorContext Laggard(Pool);
    Registry.attach(&Laggard);
    LaggardId = Laggard.debugId();
    EXPECT_EQ(Registry.requestFenceHandshake(nullptr, *Bits),
              CooperationResult::Timeout);
    Registry.detach(&Laggard);
  } // Context destroyed: reports carry copied data, not pointers.
  EXPECT_GE(stallsFor(Registry, LaggardId, StallProtocol::FenceHandshake),
            1u);
}

TEST_F(StallRegistryTest, InjectedPollSkipBurstDelaysAcknowledgement) {
  FaultPlan Plan;
  Plan.failEveryNth(FaultSite::MutatorPollSkip, 10)
      .burst(FaultSite::MutatorPollSkip, 5);
  FaultInjector Inject(Plan);
  Registry.configureStallDefense(0, 0, &Inject, nullptr);

  MutatorContext Worker(Pool);
  Registry.attach(&Worker);

  // Visits 1-9: cooperative.
  for (int I = 0; I < 9; ++I)
    Registry.poll(Worker, *Bits);
  EXPECT_EQ(Worker.SkipPollsRemaining, 0u);

  uint64_t AckBefore = Worker.HandshakeAck.load(std::memory_order_acquire);
  std::atomic<bool> Done{false};
  std::thread Requester([&] {
    Registry.requestFenceHandshake(nullptr, *Bits);
    Done.store(true, std::memory_order_release);
  });
  // Wait until the epoch is visibly bumped so the polls below would ack
  // if they were cooperative.
  Stopwatch Waited;
  while (Registry.handshakeEpoch() == AckBefore &&
         Waited.elapsedNanos() < WaitCeilingNs)
    std::this_thread::yield();

  // Visit 10 draws the skip and opens a 5-poll burst: this poll and the
  // five after it are non-cooperative.
  for (int I = 0; I < 6; ++I)
    Registry.poll(Worker, *Bits);
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_EQ(Worker.HandshakeAck.load(std::memory_order_acquire), AckBefore)
      << "a skipped poll acknowledged the handshake";
  EXPECT_FALSE(Done.load(std::memory_order_acquire));
  EXPECT_EQ(Inject.injected(FaultSite::MutatorPollSkip), 1u);

  // Burst over: the next poll cooperates and the handshake completes.
  Registry.poll(Worker, *Bits);
  Requester.join();
  EXPECT_EQ(Worker.HandshakeAck.load(std::memory_order_acquire),
            AckBefore + 1);

  Registry.detach(&Worker);
}

/// --- Heap-level containment ---------------------------------------------

GcOptions stallOptions() {
  GcOptions Opts;
  Opts.Kind = CollectorKind::MostlyConcurrent;
  Opts.HeapBytes = 8u << 20;
  Opts.BackgroundThreads = 1;
  Opts.GcWorkerThreads = 2;
  Opts.NumWorkPackets = 64;
  return Opts;
}

TEST(CooperationStallTest, NonCooperativeMutatorIsContained) {
  // The ISSUE acceptance scenario: a mutator wedges (refuses to poll)
  // during a concurrent cycle. The collector must (1) attribute every
  // fence-handshake timeout to exactly that thread, (2) strike-escalate
  // and abort the cycle to an STW finish without deadlocking, and
  // (3) complete a subsequent cycle normally once the thread recovers.
  GcOptions Opts = stallOptions();
  Opts.FenceGraceMicros = 100000; // 100 ms: laggard detection
  Opts.StwGraceMicros = 100000;
  Opts.HandshakeStrikeLimit = 2;
  // An empty registration (no dirty cards yet) consumes a pass without
  // needing the fence the laggard refuses. An effectively unlimited
  // budget keeps the cleaner registering until the dirty cards planted
  // below are seen, whatever the scheduler does to the mutators.
  Opts.ConcurrentCleaningPasses = 1u << 20;
  Opts.WatchdogIntervalMicros = 1000;
  Opts.WatchdogStallTicks = 1u << 30; // Isolate the strike trigger.
  Opts.WatchdogLagTicks = 1u << 30;
  auto Heap = GcHeap::create(Opts);
  auto &Concurrent = static_cast<ConcurrentCollector &>(Heap->collector());

  // The observer thread (this one) stays unattached while the chaos
  // runs: an attached waiter could park inside the strike-abort's
  // pending STW and never reach the laggard's release line.
  std::atomic<bool> LaggardWedged{false};
  std::atomic<bool> LaggardRelease{false};
  std::atomic<bool> CoopReady{false};
  std::atomic<bool> Finish{false};
  std::atomic<uint32_t> LaggardId{0};
  std::atomic<uint32_t> CooperativeId{0};

  std::thread Laggard([&] {
    MutatorContext &Ctx = Heap->attachThread();
    LaggardId.store(Ctx.debugId(), std::memory_order_release);
    Ctx.reserveRoots(8);
    for (size_t I = 0; I < 8; ++I)
      if (Object *Obj = Heap->allocate(Ctx, 256, 1))
        Ctx.setRoot(I, Obj);
    LaggardWedged.store(true, std::memory_order_release);
    // Refuse every cooperation point (yield: wedged, not CPU-hogging).
    while (!LaggardRelease.load(std::memory_order_acquire))
      std::this_thread::yield();
    // Recovered: cooperate until the test ends.
    while (!Finish.load(std::memory_order_acquire)) {
      Heap->safepointPoll(Ctx);
      std::this_thread::yield();
    }
    Heap->detachThread(Ctx);
  });

  std::thread Cooperative([&] {
    MutatorContext &Ctx = Heap->attachThread();
    CooperativeId.store(Ctx.debugId(), std::memory_order_release);
    constexpr size_t WindowSize = 32;
    Ctx.reserveRoots(WindowSize);
    std::vector<Object *> Window(WindowSize, nullptr);
    for (size_t I = 0; I < WindowSize; ++I) {
      Object *Obj = Heap->allocate(Ctx, 512, 2);
      if (!Obj)
        continue;
      Window[I] = Obj;
      Ctx.setRoot(I, Obj);
      // Cross-links dirty cards BEFORE the cycle starts: the cycle's
      // first card-registration pass must find work, because only a
      // pass with registered cards needs the fence the laggard refuses.
      if (I && Window[I - 1])
        Heap->writeRef(Ctx, Window[I - 1], 0, Obj);
    }
    CoopReady.store(true, std::memory_order_release);
    // Keep allocating and cross-linking through the chaos (more dirty
    // cards, plus the polls that park inside the forced STW finish).
    // Gently: exhausting the 8 MB heap would race the strike abort
    // with the allocation-failure ladder.
    size_t Slot = 0;
    while (!Finish.load(std::memory_order_acquire)) {
      Heap->safepointPoll(Ctx);
      if (Object *Obj = Heap->allocate(Ctx, 128, 2)) {
        if (Object *Old = Window[Slot])
          Heap->writeRef(Ctx, Old, 1, Obj);
        Window[Slot] = Obj;
        Ctx.setRoot(Slot, Obj);
        Slot = (Slot + 1) % WindowSize;
      }
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
    Heap->detachThread(Ctx);
  });

  while (!LaggardWedged.load(std::memory_order_acquire) ||
         !CoopReady.load(std::memory_order_acquire))
    std::this_thread::yield();

  uint64_t CyclesBefore = Heap->completedCycles();
  Concurrent.startConcurrentCycle(nullptr);
  ASSERT_EQ(Heap->core().phase(), GcPhase::Concurrent);

  // The cycle cannot finish concurrently: card cleaning needs the fence
  // the laggard refuses, so handshakes strike out and the watchdog
  // aborts to the STW finish. The wait loop re-dirties a card each
  // iteration (registration clears indicators) so a registration pass
  // always has work, independent of the cooperative thread's schedule.
  Stopwatch Waited;
  while (Heap->stats().handshakeAborts() == 0 &&
         Waited.elapsedNanos() < WaitCeilingNs) {
    Heap->core().Heap.cards().dirty(Heap->core().Heap.base());
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GE(Heap->stats().handshakeAborts(), 1u);
  EXPECT_GE(Heap->core().Registry.fenceTimeouts(),
            Opts.HandshakeStrikeLimit);
  EXPECT_GE(Heap->stats().escalationCount(EscalationRung::StwFinish), 1u);

  // Attribution: fence stall reports name the laggard, never the
  // cooperative mutator.
  uint32_t Wedged = LaggardId.load(std::memory_order_acquire);
  ASSERT_NE(Wedged, 0u);
  EXPECT_GE(stallsFor(Heap->core().Registry, Wedged,
                      StallProtocol::FenceHandshake),
            1u);
  EXPECT_EQ(stallsFor(Heap->core().Registry,
                      CooperativeId.load(std::memory_order_acquire),
                      StallProtocol::FenceHandshake),
            0u);

  // Release the laggard: the pending STW finish must now complete —
  // no deadlock — and the killed cycle counts as completed.
  LaggardRelease.store(true, std::memory_order_release);
  Waited.restart();
  while (Heap->completedCycles() == CyclesBefore &&
         Waited.elapsedNanos() < WaitCeilingNs)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_GT(Heap->completedCycles(), CyclesBefore)
      << "aborted cycle never finished";

  // A subsequent cycle with everyone cooperating completes cleanly.
  uint64_t CyclesAfterChaos = Heap->completedCycles();
  uint64_t AbortsAfterChaos = Heap->stats().handshakeAborts();
  MutatorContext &Ctx = Heap->attachThread();
  Heap->requestGC(&Ctx);
  EXPECT_GT(Heap->completedCycles(), CyclesAfterChaos);
  EXPECT_EQ(Heap->stats().handshakeAborts(), AbortsAfterChaos)
      << "a clean cycle struck out";
  VerifyResult V = Heap->verifyNow(&Ctx);
  EXPECT_TRUE(V.Ok) << V.Error;
  Heap->detachThread(Ctx);

  Finish.store(true, std::memory_order_release);
  Laggard.join();
  Cooperative.join();
}

void runAttachDetachChurn(bool FastPathSizeClasses) {
  uint64_t Seed =
      testSeed(0xa77ac4, "CooperationStallTest.AttachDetachChurn");
  ScopedSeedLog SeedLog(Seed, "CooperationStallTest.AttachDetachChurn");

  GcOptions Opts = stallOptions();
  Opts.FenceGraceMicros = 200000;
  Opts.StwGraceMicros = 200000;
  Opts.FastPathSizeClasses = FastPathSizeClasses;
  Opts.FreeListShards = 2; // Detaches exercise the successor hand-off.
  // Stretch idle transitions so attach/detach (which pass through
  // enterIdle/exitIdle) overlap in-flight handshakes mid-transition.
  Opts.Faults.Seed = Seed;
  Opts.Faults.perturb(FaultSite::IdleTransitionStall, 2);
  auto Heap = GcHeap::create(Opts);
  auto &Concurrent = static_cast<ConcurrentCollector &>(Heap->collector());

  // A long-lived driver keeps cycles running while short-lived threads
  // churn through attach -> allocate -> detach.
  std::atomic<bool> Finish{false};
  std::thread Driver([&] {
    MutatorContext &Ctx = Heap->attachThread();
    Ctx.reserveRoots(32);
    Random Rng(Seed);
    uint64_t I = 0;
    while (!Finish.load(std::memory_order_acquire)) {
      if (Object *Obj =
              Heap->allocate(Ctx, 64 + Rng.nextBelow(2048), 1))
        Ctx.setRoot(Rng.nextBelow(32), Obj);
      if (++I % 400 == 0)
        Concurrent.startConcurrentCycle(&Ctx);
      if (I % 1000 == 0)
        Heap->requestGC(&Ctx);
    }
    Heap->detachThread(Ctx);
  });

  constexpr int Waves = 12;
  constexpr int ThreadsPerWave = 3;
  for (int W = 0; W < Waves; ++W) {
    std::vector<std::thread> Wave;
    for (int T = 0; T < ThreadsPerWave; ++T)
      Wave.emplace_back([&, W, T] {
        MutatorContext &Ctx = Heap->attachThread();
        Ctx.reserveRoots(8);
        Random Rng(Seed * 31 + uint64_t(W) * 7 + uint64_t(T));
        for (int I = 0; I < 200; ++I) {
          if (Object *Obj =
                  Heap->allocate(Ctx, 32 + Rng.nextBelow(512), 1))
            Ctx.setRoot(Rng.nextBelow(8), Obj);
          if (I % 32 == 0)
            Heap->safepointPoll(Ctx);
        }
        Heap->detachThread(Ctx);
      });
    for (std::thread &T : Wave)
      T.join();
  }

  Finish.store(true, std::memory_order_release);
  Driver.join();

  // Whatever the interleavings did, the registry must be empty, the
  // heap consistent, and a clean cycle must still run.
  EXPECT_EQ(Heap->core().Registry.numThreads(), 0u);
  MutatorContext &Ctx = Heap->attachThread();
  Heap->requestGC(&Ctx);
  VerifyResult V = Heap->verifyNow(&Ctx);
  EXPECT_TRUE(V.Ok) << V.Error;
  Heap->detachThread(Ctx);
}

TEST(CooperationStallTest, AttachDetachChurnDuringConcurrentCycles) {
  runAttachDetachChurn(/*FastPathSizeClasses=*/false);
}

// Same churn with the size-class fast path on: every detach must
// publish its class caches and hand its shard's remote-free queue to a
// successor (or drain it); under TSan this doubles as a race check on
// the detach protocol itself.
TEST(CooperationStallTest, AttachDetachChurnWithFastPathSizeClasses) {
  runAttachDetachChurn(/*FastPathSizeClasses=*/true);
}

TEST(CooperationStallTest, DetachPublishesCachesAndDrainsOrphanQueues) {
  // The detach invariants of the size-class fast path: a detaching
  // thread must (a) publish its parked class-cache chunks back to the
  // free lists — they would otherwise go dark until the next full
  // sweep — and (b) drain its shard's remote-free queue when it is the
  // last thread preferring that shard, or leave it for a successor.
  GcOptions Opts;
  Opts.Kind = CollectorKind::StopTheWorld;
  Opts.HeapBytes = 8u << 20;
  Opts.FreeListShards = 1; // Every thread prefers the one shard.
  Opts.FastPathSizeClasses = true;
  auto Heap = GcHeap::create(Opts);
  GcCore &Core = Heap->core();

  auto stealAndQueue = [&]() -> size_t {
    size_t Granted = 0;
    uint8_t *P = Core.Heap.freeList().allocateUpTo(64, 2048, Granted, 0);
    EXPECT_NE(P, nullptr);
    Core.Heap.releaseRange(P, Granted);
    return Granted;
  };

  // --- Orphan shard: the sole owner's detach must drain. -------------
  {
    MutatorContext &A = Heap->attachThread();
    ASSERT_NE(Heap->allocate(A, 16, 0), nullptr);
    const size_t Cached = A.cache().cachedClassBytes();
    ASSERT_GT(Cached, 0u);
    const size_t Queued = stealAndQueue();
    ASSERT_EQ(Core.Heap.remoteQueuedBytes(), Queued);
    const size_t FreeBefore = Core.Heap.freeList().freeBytes();

    Heap->detachThread(A);
    EXPECT_EQ(Core.Heap.remoteQueuedBytes(), 0u)
        << "orphaned queue must be drained by the last owner's detach";
    EXPECT_EQ(Core.Heap.freeList().freeBytes(),
              FreeBefore + Cached + Queued)
        << "detach stranded parked bytes outside the free lists";
  }

  // --- Successor present: the queue is handed over, not drained. -----
  std::atomic<bool> SuccessorUp{false};
  std::atomic<bool> FinishSuccessor{false};
  std::thread Successor([&] {
    MutatorContext &B = Heap->attachThread();
    SuccessorUp.store(true, std::memory_order_release);
    while (!FinishSuccessor.load(std::memory_order_acquire))
      std::this_thread::yield();
    Heap->detachThread(B);
  });
  while (!SuccessorUp.load(std::memory_order_acquire))
    std::this_thread::yield();

  MutatorContext &A2 = Heap->attachThread();
  const size_t Queued2 = stealAndQueue();
  ASSERT_GT(Queued2, 0u);
  Heap->detachThread(A2);
  EXPECT_EQ(Core.Heap.remoteQueuedBytes(), Queued2)
      << "queue with a live successor must be handed over, not drained";

  // The successor's own detach is the last owner out: it drains.
  FinishSuccessor.store(true, std::memory_order_release);
  Successor.join();
  EXPECT_EQ(Core.Heap.remoteQueuedBytes(), 0u);

  MutatorContext &Ctx = Heap->attachThread();
  VerifyResult V = Heap->verifyNow(&Ctx);
  EXPECT_TRUE(V.Ok) << V.Error;
  Heap->detachThread(Ctx);
}

TEST(CooperationStallTest, HandshakeLatencyLandsInHistograms) {
  // The bench JSON's stw_entry / fence_handshake quantiles come from
  // these PauseMetric histograms; a cycle must populate both.
  GcOptions Opts = stallOptions();
  Opts.Observe = true;
  auto Heap = GcHeap::create(Opts);
  MutatorContext &Ctx = Heap->attachThread();
  Ctx.reserveRoots(16);
  for (size_t I = 0; I < 16; ++I) {
    Object *Obj = Heap->allocate(Ctx, 1024, 1);
    ASSERT_NE(Obj, nullptr);
    Ctx.setRoot(I, Obj);
  }
  static_cast<ConcurrentCollector &>(Heap->collector())
      .startConcurrentCycle(&Ctx);
  Heap->requestGC(&Ctx); // STW finish: stopTheWorld records StwEntry.

  GcObserver &Obs = Heap->core().Obs;
  EXPECT_GE(Obs.metrics().histogram(PauseMetric::StwEntry).count(), 1u);
  // Concurrent cleaning passes run fence handshakes; a full requested
  // finish may or may not have needed one, so drive one explicitly.
  EXPECT_EQ(Heap->core().Registry.requestFenceHandshake(
                &Ctx, Heap->core().Heap.allocBits()),
            CooperationResult::Ok);
  EXPECT_GE(Obs.metrics().histogram(PauseMetric::FenceHandshake).count(),
            1u);
  Heap->detachThread(Ctx);
}

} // namespace
