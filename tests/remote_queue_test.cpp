//===- remote_queue_test.cpp - lock-free remote-free queue units ---------------//
///
/// Units for the ownership-return channel of the size-class fast path
/// (DESIGN.md §16): the Treiber-stack MPSC RemoteFreeQueue, HeapSpace's
/// routing of reclaimed ranges into it, and — the reason this file is in
/// the TSan CI job — a many-producer hammer that races pushes against a
/// draining consumer and checks that no chunk and no byte is lost.
///
//===----------------------------------------------------------------------===//

#include "heap/HeapSpace.h"
#include "heap/RemoteFreeQueue.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <set>
#include <thread>
#include <vector>

using namespace cgc;

namespace {

struct FreeDeleter {
  void operator()(uint8_t *P) const { std::free(P); }
};
using Arena = std::unique_ptr<uint8_t, FreeDeleter>;

Arena makeArena(size_t Bytes) {
  return Arena(static_cast<uint8_t *>(std::aligned_alloc(4096, Bytes)));
}

/// --- Single-threaded semantics ----------------------------------------

TEST(RemoteFreeQueueTest, PushTakeAllRoundTripsChunksAndBytes) {
  Arena Mem = makeArena(1u << 16);
  RemoteFreeQueue Q;
  EXPECT_EQ(Q.queuedBytes(), 0u);
  EXPECT_EQ(Q.takeAll(), nullptr);

  Q.push(Mem.get(), 128);
  Q.push(Mem.get() + 1024, 64);
  Q.push(Mem.get() + 4096, 256);
  EXPECT_EQ(Q.queuedBytes(), 128u + 64u + 256u);

  std::set<uint8_t *> Seen;
  size_t Bytes = 0;
  for (RemoteFreeChunk *C = Q.takeAll(); C;) {
    RemoteFreeChunk *Next = C->Next;
    Seen.insert(reinterpret_cast<uint8_t *>(C));
    Bytes += C->SizeBytes;
    C = Next;
  }
  EXPECT_EQ(Seen.size(), 3u);
  EXPECT_EQ(Bytes, 128u + 64u + 256u);
  EXPECT_TRUE(Seen.count(Mem.get()));
  EXPECT_TRUE(Seen.count(Mem.get() + 1024));
  EXPECT_TRUE(Seen.count(Mem.get() + 4096));

  // The queue is empty afterwards; accounting went back to zero.
  EXPECT_EQ(Q.queuedBytes(), 0u);
  EXPECT_EQ(Q.takeAll(), nullptr);
}

TEST(RemoteFreeQueueTest, ResetDropsContentWithoutWalking) {
  Arena Mem = makeArena(1u << 12);
  RemoteFreeQueue Q;
  Q.push(Mem.get(), 64);
  Q.push(Mem.get() + 512, 64);
  Q.reset();
  EXPECT_EQ(Q.queuedBytes(), 0u);
  EXPECT_EQ(Q.takeAll(), nullptr);
}

/// --- HeapSpace routing -------------------------------------------------

TEST(RemoteFreeQueueTest, HeapSpaceRoutesEligibleRangesToOwningShard) {
  HeapSpace Heap(1u << 20, /*FreeListShards=*/4, /*FI=*/nullptr,
                 /*RefillThresholdBytes=*/0, /*RouteRemoteFrees=*/true);
  ASSERT_TRUE(Heap.remoteRoutingEnabled());
  const size_t Total = Heap.freeBytes();

  // Drain all seed memory out of the locked lists in queue-eligible
  // grabs (below the bin threshold) so every release routes.
  std::vector<std::pair<uint8_t *, size_t>> Stolen;
  for (unsigned S = 0; S < Heap.freeList().numShards(); ++S)
    for (;;) {
      size_t Granted = 0;
      uint8_t *P = Heap.freeList().allocateUpTo(64, 2048, Granted, S);
      if (!P)
        break;
      Stolen.emplace_back(P, Granted);
    }
  EXPECT_EQ(Heap.freeList().freeBytes(), 0u);

  // Release everything back: small in-shard ranges must go to queues,
  // and the aggregate free-byte views must see them immediately.
  size_t Returned = 0;
  for (auto [P, Size] : Stolen) {
    Heap.releaseRange(P, Size);
    Returned += Size;
  }
  EXPECT_EQ(Heap.freeBytes(), Total);
  EXPECT_EQ(Heap.refillableFreeBytes(), Total);
  EXPECT_GT(Heap.remoteQueuedBytes(), 0u) << "nothing was routed";
  EXPECT_EQ(Heap.remoteQueuedBytes() + Heap.freeList().freeBytes(), Returned);

  // Each queued chunk lives entirely inside its owning shard.
  for (unsigned S = 0; S < Heap.freeList().numShards(); ++S) {
    size_t QueueBytes = Heap.remoteQueue(S).queuedBytes();
    size_t Drained = Heap.drainRemoteQueue(S);
    EXPECT_EQ(Drained, QueueBytes);
  }
  EXPECT_EQ(Heap.remoteQueuedBytes(), 0u);
  EXPECT_EQ(Heap.freeList().freeBytes(), Total);
}

TEST(RemoteFreeQueueTest, RoutingDisabledFallsBackToLockedLists) {
  HeapSpace Heap(1u << 20, /*FreeListShards=*/4);
  EXPECT_FALSE(Heap.remoteRoutingEnabled());
  size_t Granted = 0;
  uint8_t *P = Heap.freeList().allocateUpTo(64, 4096, Granted, 0);
  ASSERT_NE(P, nullptr);
  Heap.releaseRange(P, Granted);
  EXPECT_EQ(Heap.remoteQueuedBytes(), 0u);
  EXPECT_EQ(Heap.freeBytes(), Heap.freeList().freeBytes());
}

TEST(RemoteFreeQueueTest, OversizeAndStraddlingRangesBypassTheQueue) {
  HeapSpace Heap(1u << 20, /*FreeListShards=*/4, nullptr, 0,
                 /*RouteRemoteFrees=*/true);
  size_t Granted = 0;
  // A bin-threshold-sized range is too big for the queue.
  uint8_t *P = Heap.freeList().allocateUpTo(4096, 8192, Granted, 0);
  ASSERT_NE(P, nullptr);
  ASSERT_GE(Granted, 4096u);
  Heap.releaseRange(P, Granted);
  EXPECT_EQ(Heap.remoteQueuedBytes(), 0u);
}

/// --- The TSan hammer ---------------------------------------------------
///
/// N producers push chunks from private arenas while one consumer
/// drains concurrently. Every chunk must come back exactly once, with
/// its size intact, and the byte ledger must return to zero. Under TSan
/// this exercises the release/acquire pairing of push and takeAll.
TEST(RemoteFreeQueueHammer, ManyProducersOneConsumerLosesNothing) {
  constexpr unsigned NumProducers = 8;
  constexpr unsigned ChunksPerProducer = 4000;
  constexpr size_t ChunkStride = 128; // >= MinChunkBytes, private slots

  RemoteFreeQueue Q;
  std::vector<Arena> Arenas;
  for (unsigned P = 0; P < NumProducers; ++P)
    Arenas.push_back(makeArena(ChunksPerProducer * ChunkStride));

  std::atomic<unsigned> ProducersDone{0};
  std::atomic<size_t> BytesPushed{0};

  auto Producer = [&](unsigned Id) {
    uint8_t *Base = Arenas[Id].get();
    size_t Pushed = 0;
    for (unsigned I = 0; I < ChunksPerProducer; ++I) {
      // Vary sizes a little so the consumer checks more than one value.
      size_t Size = 64 + (I % 3) * 16;
      Q.push(Base + I * ChunkStride, Size);
      Pushed += Size;
    }
    BytesPushed.fetch_add(Pushed, std::memory_order_relaxed);
    ProducersDone.fetch_add(1, std::memory_order_release);
  };

  std::set<uint8_t *> Seen;
  size_t BytesDrained = 0;
  auto drainOnce = [&] {
    for (RemoteFreeChunk *C = Q.takeAll(); C;) {
      RemoteFreeChunk *Next = C->Next;
      uint8_t *Addr = reinterpret_cast<uint8_t *>(C);
      EXPECT_TRUE(Seen.insert(Addr).second) << "chunk delivered twice";
      // Size must be one of the values its producer wrote — the
      // overlay write must be visible after the acquire takeAll.
      EXPECT_TRUE(C->SizeBytes == 64 || C->SizeBytes == 80 ||
                  C->SizeBytes == 96)
          << "torn or stale chunk size: " << C->SizeBytes;
      BytesDrained += C->SizeBytes;
      C = Next;
    }
  };

  std::vector<std::thread> Threads;
  for (unsigned P = 0; P < NumProducers; ++P)
    Threads.emplace_back(Producer, P);
  while (ProducersDone.load(std::memory_order_acquire) < NumProducers)
    drainOnce();
  for (auto &T : Threads)
    T.join();
  drainOnce(); // Final sweep after all producers finished.

  EXPECT_EQ(Seen.size(), size_t(NumProducers) * ChunksPerProducer);
  EXPECT_EQ(BytesDrained, BytesPushed.load(std::memory_order_relaxed));
  EXPECT_EQ(Q.queuedBytes(), 0u);
  EXPECT_EQ(Q.takeAll(), nullptr);
}

} // namespace
