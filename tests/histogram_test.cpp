//===- histogram_test.cpp - PauseHistogram and gauge-log unit tests -----------//
///
/// Locks in the HDR-lite histogram contract: bucketFor/bucketLowerBound
/// are exact inverses at every bucket boundary, quantiles match a
/// reference sort to within one sub-bucket (12.5% relative error),
/// quantile(1.0) is the exact maximum, and the cycle-gauge log derives
/// floating garbage from the live-after low-water mark.
///
//===----------------------------------------------------------------------===//

#include "observe/MetricsRegistry.h"
#include "TestSeed.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>
#include <vector>

using namespace cgc;

namespace {

TEST(PauseHistogramTest, BucketForAndLowerBoundAreInverses) {
  for (uint32_t B = 0; B < PauseHistogram::NumBuckets; ++B) {
    uint64_t Lb = PauseHistogram::bucketLowerBound(B);
    EXPECT_EQ(PauseHistogram::bucketFor(Lb), B) << "bucket " << B;
    // One below the lower bound falls in an earlier bucket.
    if (B > 0)
      EXPECT_LT(PauseHistogram::bucketFor(Lb - 1), B) << "bucket " << B;
  }
}

TEST(PauseHistogramTest, LowerBoundsAreStrictlyIncreasing) {
  for (uint32_t B = 1; B < PauseHistogram::NumBuckets; ++B)
    EXPECT_GT(PauseHistogram::bucketLowerBound(B),
              PauseHistogram::bucketLowerBound(B - 1));
}

TEST(PauseHistogramTest, LinearAndOctaveBoundaries) {
  // 8 linear 128 ns buckets below 1024 ns.
  EXPECT_EQ(PauseHistogram::bucketFor(0), 0u);
  EXPECT_EQ(PauseHistogram::bucketFor(127), 0u);
  EXPECT_EQ(PauseHistogram::bucketFor(128), 1u);
  EXPECT_EQ(PauseHistogram::bucketFor(1023), 7u);
  // First octave starts at 1024 with 128 ns sub-buckets.
  EXPECT_EQ(PauseHistogram::bucketFor(1024), 8u);
  EXPECT_EQ(PauseHistogram::bucketFor(1151), 8u);
  EXPECT_EQ(PauseHistogram::bucketFor(1152), 9u);
  EXPECT_EQ(PauseHistogram::bucketFor(2047), 15u);
  EXPECT_EQ(PauseHistogram::bucketFor(2048), 16u);
  // Values past the last octave land in the overflow bucket.
  EXPECT_EQ(PauseHistogram::bucketFor(UINT64_MAX),
            PauseHistogram::NumBuckets - 1);
}

TEST(PauseHistogramTest, EmptyHistogramReportsZeros) {
  PauseHistogram H;
  EXPECT_EQ(H.count(), 0u);
  EXPECT_EQ(H.totalNanos(), 0u);
  EXPECT_EQ(H.max(), 0u);
  EXPECT_EQ(H.quantile(0.5), 0u);
  EXPECT_EQ(H.meanNanos(), 0.0);
}

TEST(PauseHistogramTest, MaxAndMeanAreExact) {
  PauseHistogram H;
  H.record(100);
  H.record(1000000);
  H.record(3);
  EXPECT_EQ(H.count(), 3u);
  EXPECT_EQ(H.totalNanos(), 1000103u);
  EXPECT_EQ(H.max(), 1000000u);
  EXPECT_EQ(H.quantile(1.0), 1000000u); // exact, not bucket-rounded
  EXPECT_DOUBLE_EQ(H.meanNanos(), 1000103.0 / 3.0);
}

TEST(PauseHistogramTest, QuantilesMatchReferenceSort) {
  uint64_t Seed = testSeed(0x4157, "histogram_quantiles");
  std::mt19937_64 Rng(Seed);
  // Log-uniform samples spanning the linear region through several
  // octaves (1 ns .. ~16 s).
  std::uniform_real_distribution<double> LogDist(0.0, 34.0);
  PauseHistogram H;
  std::vector<uint64_t> Reference;
  for (int I = 0; I < 20000; ++I) {
    uint64_t Sample = static_cast<uint64_t>(std::exp2(LogDist(Rng)));
    H.record(Sample);
    Reference.push_back(Sample);
  }
  std::sort(Reference.begin(), Reference.end());

  for (double Q : {0.01, 0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99, 0.999}) {
    uint64_t Rank = static_cast<uint64_t>(
        std::ceil(Q * static_cast<double>(Reference.size())));
    if (Rank < 1)
      Rank = 1;
    uint64_t Exact = Reference[Rank - 1];
    uint64_t Reported = H.quantile(Q);
    // Bucket-equality contract: the reported value is the lower bound of
    // the exact sample's bucket.
    EXPECT_EQ(PauseHistogram::bucketFor(Reported),
              PauseHistogram::bucketFor(Exact))
        << "q=" << Q;
    EXPECT_LE(Reported, Exact);
    // One sub-bucket of error: the lower bound is within 12.5% + the
    // linear-region granularity of the exact value.
    double Error = static_cast<double>(Exact - Reported);
    EXPECT_LE(Error, 0.125 * static_cast<double>(Exact) + 128.0) << "q=" << Q;
  }
}

TEST(PauseHistogramTest, QuantileDegenerateInputs) {
  PauseHistogram H;
  H.record(5000);
  EXPECT_EQ(H.quantile(0.0), H.quantile(0.5)); // rank clamps to 1
  EXPECT_EQ(H.quantile(-1.0), H.quantile(0.0));
  EXPECT_EQ(H.quantile(2.0), 5000u); // >= 1 returns exact max
}

TEST(MetricsRegistryTest, HistogramsAreIndependentPerMetric) {
  MetricsRegistry M;
  M.histogram(PauseMetric::TotalPause).record(100);
  M.histogram(PauseMetric::Sweep).record(200);
  M.histogram(PauseMetric::Sweep).record(300);
  EXPECT_EQ(M.histogram(PauseMetric::TotalPause).count(), 1u);
  EXPECT_EQ(M.histogram(PauseMetric::Sweep).count(), 2u);
  EXPECT_EQ(M.histogram(PauseMetric::FinalMark).count(), 0u);
}

TEST(MetricsRegistryTest, PauseMetricNamesAreStable) {
  EXPECT_STREQ(pauseMetricName(PauseMetric::TotalPause), "total_pause");
  EXPECT_STREQ(pauseMetricName(PauseMetric::FinalCardClean),
               "final_card_clean");
  EXPECT_STREQ(pauseMetricName(PauseMetric::FinalMark), "final_mark");
  EXPECT_STREQ(pauseMetricName(PauseMetric::Sweep), "sweep");
  EXPECT_STREQ(pauseMetricName(PauseMetric::IncQuantum), "inc_quantum");
  EXPECT_STREQ(pauseMetricName(PauseMetric::RequestLatency),
               "request_latency");
  EXPECT_STREQ(pauseMetricName(PauseMetric::RequestService),
               "request_service");
}

TEST(MetricsRegistryTest, FloatingGarbageUsesLowWaterMark) {
  MetricsRegistry M;
  auto add = [&](uint64_t Cycle, uint64_t LiveAfter) {
    CycleGauges G;
    G.Cycle = Cycle;
    G.LiveAfterBytes = LiveAfter;
    M.addCycleGauges(G);
  };
  add(1, 100); // low-water = 100 -> floating 0
  add(2, 150); // floating 50 over the baseline
  add(3, 80);  // new low-water -> floating 0
  add(4, 130); // floating 50 over the *new* baseline

  std::vector<CycleGauges> Gauges = M.cycleGauges();
  ASSERT_EQ(Gauges.size(), 4u);
  EXPECT_EQ(Gauges[0].FloatingGarbageBytes, 0u);
  EXPECT_EQ(Gauges[1].FloatingGarbageBytes, 50u);
  EXPECT_EQ(Gauges[2].FloatingGarbageBytes, 0u);
  EXPECT_EQ(Gauges[3].FloatingGarbageBytes, 50u);
}

} // namespace
