//===- flight_recorder_test.cpp - signal-safe GC crash dump ---------------===//
///
/// \file
/// The flight recorder (DESIGN.md §13) dumps cycle phase, the per-thread
/// cooperation table, stall reports, pacer windows, ladder counters and
/// event-ring tails on SIGSEGV/SIGABRT. Two kinds of coverage:
///
///  * death tests: a crashing process with GcOptions::FlightRecorder set
///    really emits the report to stderr before dying with the original
///    signal (gtest's death-test harness still sees the abort);
///  * a parse test: dumpNow()'s report is well-formed line-oriented
///    `record key=value...` text, includes the records the ISSUE asks
///    for (threads, stalls, pacer, ladder), and lands in $CGC_FLIGHT_OUT
///    when CI wants it as an artifact.
///
//===----------------------------------------------------------------------===//

#include "gc/FlightRecorder.h"
#include "mutator/ThreadRegistry.h"
#include "runtime/GcHeap.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <csignal>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

using namespace cgc;

namespace {

GcOptions recorderOptions() {
  GcOptions Opts;
  Opts.Kind = CollectorKind::MostlyConcurrent;
  Opts.HeapBytes = 8u << 20;
  Opts.BackgroundThreads = 1;
  Opts.GcWorkerThreads = 2;
  Opts.NumWorkPackets = 64;
  return Opts;
}

/// Splits \p Text into lines (discarding a trailing partial line, which
/// cannot happen here: every record ends in '\n').
std::vector<std::string> splitLines(const std::string &Text) {
  std::vector<std::string> Lines;
  size_t Start = 0;
  for (size_t I = 0; I < Text.size(); ++I)
    if (Text[I] == '\n') {
      Lines.push_back(Text.substr(Start, I - Start));
      Start = I + 1;
    }
  return Lines;
}

size_t countPrefixed(const std::vector<std::string> &Lines,
                     const char *Prefix) {
  size_t N = 0;
  for (const std::string &L : Lines)
    if (L.rfind(Prefix, 0) == 0)
      ++N;
  return N;
}

TEST(FlightRecorderTest, DumpNowReportIsWellFormed) {
  GcOptions Opts = recorderOptions();
  Opts.Observe = true; // Event rings show up as ring/ev records.
  Opts.FenceGraceMicros = 20000;
  auto Heap = GcHeap::create(Opts);

  MutatorContext &Ctx = Heap->attachThread();
  Ctx.reserveRoots(8);
  for (size_t I = 0; I < 8; ++I)
    if (Object *Obj = Heap->allocate(Ctx, 512, 1))
      Ctx.setRoot(I, Obj);

  // A wedged second thread forces a fence timeout so the dump contains
  // stall records — the whole point of a flight recorder.
  std::atomic<bool> Attached{false};
  std::atomic<bool> Release{false};
  std::thread Laggard([&] {
    MutatorContext &LCtx = Heap->attachThread();
    Attached.store(true, std::memory_order_release);
    while (!Release.load(std::memory_order_acquire))
      std::this_thread::yield();
    Heap->detachThread(LCtx);
  });
  while (!Attached.load(std::memory_order_acquire))
    std::this_thread::yield();
  EXPECT_EQ(Heap->core().Registry.requestFenceHandshake(
                &Ctx, Heap->core().Heap.allocBits()),
            CooperationResult::Timeout);

  int Fds[2];
  ASSERT_EQ(pipe(Fds), 0);
  FlightRecorder::dumpNow(&Heap->core(), Fds[1], /*Signal=*/0);
  close(Fds[1]);
  std::string Report;
  char Buf[4096];
  for (ssize_t N; (N = read(Fds[0], Buf, sizeof(Buf))) > 0;)
    Report.append(Buf, static_cast<size_t>(N));
  close(Fds[0]);

  Release.store(true, std::memory_order_release);
  Laggard.join();

  // CI collects the report as an artifact when asked.
  if (const char *Out = std::getenv("CGC_FLIGHT_OUT"))
    if (std::FILE *F = std::fopen(Out, "w")) {
      std::fwrite(Report.data(), 1, Report.size(), F);
      std::fclose(F);
    }

  std::vector<std::string> Lines = splitLines(Report);
  ASSERT_GE(Lines.size(), 6u) << Report;
  EXPECT_EQ(Lines.front(), "=== cgc flight recorder (signal 0) ===");
  EXPECT_EQ(Lines.back(), "=== end cgc flight recorder ===");

  // Every record the ISSUE names is present.
  EXPECT_EQ(countPrefixed(Lines, "heap="), 1u);
  EXPECT_EQ(countPrefixed(Lines, "registry "), 1u);
  EXPECT_GE(countPrefixed(Lines, "thread "), 2u) << Report;
  EXPECT_GE(countPrefixed(Lines, "stall "), 1u) << Report;
  EXPECT_EQ(countPrefixed(Lines, "pacer "), 1u);
  EXPECT_EQ(countPrefixed(Lines, "ladder "), 1u);
  EXPECT_GE(countPrefixed(Lines, "ring "), 1u) << Report;

  // The fence timeout above is in the dump, attributed.
  bool FenceStall = false;
  for (const std::string &L : Lines)
    if (L.rfind("stall ", 0) == 0 &&
        L.find(" proto=fence ") != std::string::npos)
      FenceStall = true;
  EXPECT_TRUE(FenceStall) << Report;

  // Well-formedness: every body line is `record key=value...` — each
  // space-separated token after the record tag carries an '='.
  for (size_t I = 1; I + 1 < Lines.size(); ++I) {
    const std::string &L = Lines[I];
    size_t Pos = L.find(' ');
    ASSERT_NE(Pos, std::string::npos) << "untagged record: " << L;
    while (Pos != std::string::npos) {
      size_t Next = L.find(' ', Pos + 1);
      std::string Tok = L.substr(
          Pos + 1, Next == std::string::npos ? Next : Next - Pos - 1);
      EXPECT_NE(Tok.find('='), std::string::npos)
          << "malformed field '" << Tok << "' in: " << L;
      Pos = Next;
    }
  }

  Heap->detachThread(Ctx);
}

/// Death tests spawn the statement in a child whose stderr the harness
/// captures: the regex below must match the recorder's header line.
/// "threadsafe" style re-execs the binary — required, the statement
/// spawns GC background threads.
class FlightRecorderDeathTest : public ::testing::Test {
protected:
  FlightRecorderDeathTest() {
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  }
};

void crashWithRecorder(int Sig) {
  GcOptions Opts = recorderOptions();
  Opts.FlightRecorder = true;
  Opts.FlightRecorderFd = 2;
  auto Heap = GcHeap::create(Opts);
  MutatorContext &Ctx = Heap->attachThread();
  Ctx.reserveRoots(4);
  for (size_t I = 0; I < 4; ++I)
    if (Object *Obj = Heap->allocate(Ctx, 256, 1))
      Ctx.setRoot(I, Obj);
  if (Sig == SIGABRT)
    std::abort();
  raise(Sig);
}

TEST_F(FlightRecorderDeathTest, AbortEmitsReportThenDies) {
  // abort() also covers assert() failures in release-with-asserts
  // builds: same SIGABRT path.
  EXPECT_DEATH(crashWithRecorder(SIGABRT),
               "=== cgc flight recorder \\(signal 6\\) ===");
}

TEST_F(FlightRecorderDeathTest, SegvEmitsReportThenDies) {
  EXPECT_DEATH(crashWithRecorder(SIGSEGV),
               "=== cgc flight recorder \\(signal 11\\) ===");
}

TEST_F(FlightRecorderDeathTest, ReportIsTerminatedBeforeReraise) {
  // The trailer must be flushed before the re-raise kills the process:
  // a truncated report is almost as bad as none.
  EXPECT_DEATH(crashWithRecorder(SIGABRT),
               "=== end cgc flight recorder ===");
}

} // namespace
