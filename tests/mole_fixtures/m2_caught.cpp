// fixture-as: workloads/mole_m2_caught.cpp
// M2 (caught): a raw unbarriered store outside the documented barrier
// sites (see Object::storeRefRaw in heap/ObjectModel.h). The card is
// never dirtied, so concurrent marking can lose `To`.
namespace cgc {

void moleM2Scribble(GcHeap &Heap, MutatorContext &Ctx, Object *From,
                    Object *To) {
  From->storeRefRaw(0, To); // expect(M2)
}

} // namespace cgc
