// fixture-as: gc/mole_m3_clean.cpp
// M3 (clean): the guard lives in an inner scope that closes before the
// may-safepoint call, so nothing is held at the GC point.
namespace cgc {

class M3CleanFixture {
  SpinLock TableLock;
  GcHeap &Heap;
  MutatorContext &Ctx;
  int Hits;

  void refillAfterLock() {
    {
      SpinLockGuard Guard(TableLock);
      Hits = Hits + 1;
    }
    Heap.allocate(Ctx, 16, 0, 0);
  }
};

} // namespace cgc
