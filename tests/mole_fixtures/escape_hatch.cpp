// fixture-as: workloads/mole_escape_hatch.cpp
// Escape hatch: both suppression forms silence a would-be M2 on their
// own line and the next. Suppressed findings are not dropped — they are
// counted per rule in the tool summary. expect-suppressed() markers
// below are checked against Report.Suppressed.
namespace cgc {

void moleInitGraphNode(MutatorContext &Ctx, Object *Node, Object *A,
                       Object *B) {
  CGC_GC_UNSAFE_OK("Node is unpublished: no tracer can have visited it");
  Node->storeRefRaw(0, A); // expect-suppressed(M2)
  // cgc-mole: allow(M2): unpublished object, initializing store
  Node->storeRefRaw(1, B); // expect-suppressed(M2)
}

} // namespace cgc
