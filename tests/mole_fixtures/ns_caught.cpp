// fixture-as: runtime/mole_ns_caught.cpp
// NS (caught): the function claims CGC_NO_SAFEPOINT but calls the poll
// entry point — the analyzer verifies the claim instead of trusting it.
namespace cgc {

class NsCaughtFixture {
  GcHeap &Heap;
  MutatorContext &Ctx;

  CGC_NO_SAFEPOINT void fastPath() {
    Heap.safepointPoll(Ctx); // expect(NS)
  }
};

} // namespace cgc
