// fixture-as: workloads/mole_m1_clean.cpp
// M1 (clean): the same shape as m1_caught.cpp, but every local that is
// live across a GC point is anchored first (pushRoot for the shadow
// stack, setRoot for a fixed slot) — exactly what the M1 message asks
// the author to do.
namespace cgc {

class M1CleanFixture {
  GcHeap &Heap;
  MutatorContext &Ctx;

  Object *buildPair() {
    Object *First = Heap.allocate(Ctx, 16, 2, 0);
    Ctx.pushRoot(First);
    Object *Second = Heap.allocate(Ctx, 16, 2, 0);
    Heap.writeRef(Ctx, First, 0, Second);
    Ctx.popRoots(1);
    return First;
  }

  Object *buildRooted() {
    Object *Node = Heap.allocate(Ctx, 16, 2, 0);
    Ctx.setRoot(0, Node);
    Object *Leaf = Heap.allocate(Ctx, 16, 0, 0);
    Heap.writeRef(Ctx, Node, 0, Leaf);
    return Node;
  }
};

} // namespace cgc
