// fixture-as: workloads/mole_m1_caught.cpp
// M1 (caught): `First` stays live across the second allocation — a GC
// point — without being rooted. Under compaction the referent can be
// evacuated, leaving `First` dangling at the writeRef.
namespace cgc {

class M1CaughtFixture {
  GcHeap &Heap;
  MutatorContext &Ctx;

  Object *buildPair() {
    Object *First = Heap.allocate(Ctx, 16, 2, 0);
    Object *Second = Heap.allocate(Ctx, 16, 2, 0);
    Heap.writeRef(Ctx, First, 0, Second); // expect(M1)
    return First;
  }
};

} // namespace cgc
