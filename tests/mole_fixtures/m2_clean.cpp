// fixture-as: workloads/mole_m2_clean.cpp
// M2 (clean): the sanctioned path — GcHeap::writeRef stores the slot
// and dirties the holder's card (Section 5.3).
namespace cgc {

void moleM2Rewire(GcHeap &Heap, MutatorContext &Ctx, Object *From,
                  Object *To) {
  Heap.writeRef(Ctx, From, 0, To);
}

} // namespace cgc
