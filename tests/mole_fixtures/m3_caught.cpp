// fixture-as: gc/mole_m3_caught.cpp
// M3 (caught): a may-safepoint call while a SpinLockGuard is held. If
// the thread parks here, the spinlock stays taken and the STW/handshake
// protocol can deadlock against it.
namespace cgc {

class M3CaughtFixture {
  SpinLock TableLock;
  GcHeap &Heap;
  MutatorContext &Ctx;

  void refillUnderLock() {
    SpinLockGuard Guard(TableLock);
    Heap.allocate(Ctx, 16, 0, 0); // expect(M3)
  }
};

} // namespace cgc
