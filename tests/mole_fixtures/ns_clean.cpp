// fixture-as: heap/mole_ns_clean.cpp
// NS (clean): a CGC_NO_SAFEPOINT function whose body only touches
// never-safepoint primitives keeps its claim.
namespace cgc {

CGC_NO_SAFEPOINT Object *moleReadEdge(const Object *From) {
  return From->loadRef(0);
}

} // namespace cgc
