// fixture-as: gc/Compactor.cpp
// M2 (clean): the compactor's slot fix-up is barrier-contract case 3 —
// one of the documented raw-store sites — so rule M2 does not apply to
// this path at all.
namespace cgc {

void moleFixupSlot(Object *Holder, Object *Relocated) {
  Holder->storeRefRaw(0, Relocated);
}

} // namespace cgc
