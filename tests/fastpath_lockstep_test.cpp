//===- fastpath_lockstep_test.cpp - fast path vs legacy equivalence ------------//
///
/// Runs the same deterministic, seeded mutator program twice — once with
/// FastPathSizeClasses off (the bump-pointer legacy path) and once with
/// it on (the size-class fast path of DESIGN.md §16) — and demands that
/// the surviving object graphs are semantically identical: same
/// reachable-object count, and the same (ClassId, NumRefs, payload
/// stamp, child shape) at every position of a canonical depth-first
/// walk. Object sizes may legitimately differ (class rounding), so they
/// are compared by request size, not by Object::sizeBytes.
///
/// The multi-threaded variants run the same comparison under attach/
/// detach churn and concurrent collection; under TSan they double as a
/// race check on the whole class-cache/remote-queue machinery.
///
//===----------------------------------------------------------------------===//

#include "TestSeed.h"
#include "heap/SizeClasses.h"
#include "runtime/GcHeap.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <set>
#include <thread>
#include <vector>

using namespace cgc;

namespace {

GcOptions baseOptions(CollectorKind Kind, bool FastPath) {
  GcOptions Opts;
  Opts.HeapBytes = 16u << 20;
  Opts.Kind = Kind;
  Opts.FastPathSizeClasses = FastPath;
  Opts.FreeListShards = 4;
  return Opts;
}

/// One node's identity, independent of which allocator produced it.
struct NodeFingerprint {
  uint16_t ClassId;
  uint16_t NumRefs;
  uint64_t Stamp;
  std::vector<size_t> Children; // DFS indices.

  bool operator==(const NodeFingerprint &O) const {
    return ClassId == O.ClassId && NumRefs == O.NumRefs && Stamp == O.Stamp &&
           Children == O.Children;
  }
};

uint64_t readStamp(const Object *Obj) {
  uint64_t S = 0;
  if (Obj->payloadBytes() >= sizeof(S))
    std::memcpy(&S, Obj->payload(), sizeof(S));
  return S;
}

void writeStamp(Object *Obj, uint64_t S) {
  if (Obj->payloadBytes() >= sizeof(S))
    std::memcpy(Obj->payload(), &S, sizeof(S));
}

/// Canonical DFS from the roots; index order is deterministic because
/// root order and slot order are.
std::vector<NodeFingerprint> fingerprint(MutatorContext &Ctx) {
  std::vector<NodeFingerprint> Out;
  std::map<const Object *, size_t> Index;
  // Iterative DFS with explicit two-phase visit so child indices are
  // final when recorded.
  struct Frame {
    Object *Obj;
    size_t OutIndex;
    unsigned NextSlot;
  };
  std::vector<Frame> Stack;
  auto visit = [&](Object *Obj) -> size_t {
    auto It = Index.find(Obj);
    if (It != Index.end())
      return It->second;
    size_t I = Out.size();
    Index[Obj] = I;
    Out.push_back({Obj->classId(), Obj->numRefs(), readStamp(Obj), {}});
    Stack.push_back({Obj, I, 0});
    return I;
  };
  for (size_t R = 0; R < Ctx.numRoots(); ++R) {
    Object *Root = Ctx.getRoot(R);
    if (!Root)
      continue;
    visit(Root);
    while (!Stack.empty()) {
      Frame &F = Stack.back();
      if (F.NextSlot >= F.Obj->numRefs()) {
        Stack.pop_back();
        continue;
      }
      // Copy out of the frame before visit(): it may grow Stack and
      // invalidate F.
      size_t OutIndex = F.OutIndex;
      Object *Child = GcHeap::readRef(F.Obj, F.NextSlot++);
      size_t ChildIndex = Child ? visit(Child) : SIZE_MAX;
      Out[OutIndex].Children.push_back(ChildIndex);
    }
  }
  return Out;
}

/// The seeded single-threaded program: builds a root forest, then churns
/// it (allocate, link, unlink, overwrite) so garbage accrues and
/// collections run, finishing with a verifiable survivor graph.
std::vector<NodeFingerprint> runProgram(CollectorKind Kind, bool FastPath,
                                        uint64_t Seed) {
  auto Heap = GcHeap::create(baseOptions(Kind, FastPath));
  MutatorContext &Ctx = Heap->attachThread();
  constexpr size_t NumRoots = 16;
  Ctx.reserveRoots(NumRoots);

  Random Rng(Seed);
  uint64_t NextStamp = 1;
  for (unsigned Step = 0; Step < 60000; ++Step) {
    // Sizes deliberately straddle the class-path/bump boundary so both
    // allocators are exercised in the fast-path run.
    size_t PayloadBytes = 8 + Rng.next() % 1500;
    uint16_t NumRefs = static_cast<uint16_t>(Rng.next() % 4);
    uint16_t ClassId = static_cast<uint16_t>(Rng.next() % 97);
    Object *Obj = Heap->allocate(Ctx, PayloadBytes, NumRefs, ClassId);
    if (!Obj) {
      ADD_FAILURE() << "allocation failed at step " << Step;
      return {};
    }
    writeStamp(Obj, NextStamp++);

    size_t RootSlot = Rng.next() % NumRoots;
    uint64_t Action = Rng.next() % 100;
    Object *Root = Ctx.getRoot(RootSlot);
    if (Action < 55 && Root && Root->numRefs() > 0) {
      // Link the new object somewhere under an existing root.
      Object *Holder = Root;
      for (int Hop = 0; Hop < 3; ++Hop) {
        if (Holder->numRefs() == 0)
          break;
        Object *Next = GcHeap::readRef(Holder, Rng.next() % Holder->numRefs());
        if (!Next)
          break;
        Holder = Next;
      }
      if (Holder->numRefs() > 0)
        Heap->writeRef(Ctx, Holder, Rng.next() % Holder->numRefs(), Obj);
    } else if (Action < 85) {
      Ctx.setRoot(RootSlot, Obj); // Replace: old subtree becomes garbage.
    } else {
      Ctx.setRoot(RootSlot, nullptr); // Drop a whole subtree.
    }
    if (Step % 4096 == 0)
      Heap->safepointPoll(Ctx);
  }

  // Settle: finish any concurrent work, then verify before reading.
  Heap->requestGC(&Ctx);
  VerifyResult V = Heap->verifyNow(&Ctx);
  EXPECT_TRUE(V.Ok) << V.Error;
  std::vector<NodeFingerprint> FP = fingerprint(Ctx);
  Heap->detachThread(Ctx);
  return FP;
}

class FastPathLockstep : public ::testing::TestWithParam<CollectorKind> {};

TEST_P(FastPathLockstep, SurvivorGraphsMatchLegacy) {
  const uint64_t Seed = testSeed(0x10c357e9, "FastPathLockstep");
  std::vector<NodeFingerprint> Legacy =
      runProgram(GetParam(), /*FastPath=*/false, Seed);
  std::vector<NodeFingerprint> Fast =
      runProgram(GetParam(), /*FastPath=*/true, Seed);
  ASSERT_FALSE(Legacy.empty()) << "program must leave survivors";
  ASSERT_EQ(Legacy.size(), Fast.size());
  for (size_t I = 0; I < Legacy.size(); ++I)
    EXPECT_TRUE(Legacy[I] == Fast[I]) << "DFS position " << I << " differs";
}

INSTANTIATE_TEST_SUITE_P(AllKinds, FastPathLockstep,
                         ::testing::Values(CollectorKind::StopTheWorld,
                                           CollectorKind::MostlyConcurrent),
                         [](const auto &Info) {
                           return Info.param == CollectorKind::StopTheWorld
                                      ? "Stw"
                                      : "MostlyConcurrent";
                         });

/// Multi-threaded smoke: N threads run independent seeded churn with the
/// fast path on under the concurrent collector; each thread verifies its
/// own survivors' stamps. Under TSan this hammers the class caches,
/// remote queues, and pacer aggregation together.
TEST(FastPathChurn, ConcurrentChurnKeepsPerThreadGraphsIntact) {
  auto Heap = GcHeap::create(baseOptions(CollectorKind::MostlyConcurrent, true));
  constexpr unsigned NumThreads = 4;
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T < NumThreads; ++T)
    Threads.emplace_back([&, T] {
      MutatorContext &Ctx = Heap->attachThread();
      Ctx.reserveRoots(8);
      Random Rng(testSeed(0xfa57, "FastPathChurn") + T);
      std::map<const Object *, uint64_t> Expected;
      uint64_t NextStamp = uint64_t(T) << 32;
      for (unsigned Step = 0; Step < 30000; ++Step) {
        size_t PayloadBytes = 8 + Rng.next() % 900;
        Object *Obj = Heap->allocate(Ctx, PayloadBytes, 0, 7);
        ASSERT_NE(Obj, nullptr);
        writeStamp(Obj, ++NextStamp);
        size_t Slot = Rng.next() % 8;
        Expected.erase(Ctx.getRoot(Slot));
        if (Rng.next() % 8 != 0) {
          Ctx.setRoot(Slot, Obj);
          Expected[Obj] = NextStamp;
        } else {
          Ctx.setRoot(Slot, nullptr);
        }
        if (Step % 1024 == 0)
          Heap->safepointPoll(Ctx);
      }
      for (size_t R = 0; R < Ctx.numRoots(); ++R)
        if (const Object *Root = Ctx.getRoot(R))
          EXPECT_EQ(readStamp(Root), Expected.at(Root))
              << "rooted object corrupted on thread " << T;
      Heap->detachThread(Ctx);
    });
  for (auto &T : Threads)
    T.join();
  VerifyResult V = Heap->verifyNow(nullptr);
  EXPECT_TRUE(V.Ok) << V.Error;
}

} // namespace
