//===- card_cleaning_test.cpp - card cleaner protocol --------------------------//

#include "gc/CardCleaner.h"

#include "gc/GcCore.h"
#include "support/Fences.h"

#include <gtest/gtest.h>

using namespace cgc;

namespace {

class CardCleaningTest : public ::testing::Test {
protected:
  CardCleaningTest() {
    GcOptions Opts;
    Opts.HeapBytes = 4u << 20;
    Opts.NumWorkPackets = 16;
    Opts.BackgroundThreads = 0;
    Core = std::make_unique<GcCore>(Opts);
  }

  /// Fabricates a marked, allocated object at \p Offset.
  Object *plantMarked(size_t Offset, uint32_t Size) {
    Object *Obj = reinterpret_cast<Object *>(Core->Heap.base() + Offset);
    Obj->initialize(Size, 0, 0);
    Core->Heap.allocBits().set(Obj);
    Core->Heap.markBits().set(Obj);
    return Obj;
  }

  std::unique_ptr<GcCore> Core;
};

TEST_F(CardCleaningTest, NoPassWithoutDirtyCards) {
  Core->Cleaner.beginCycle(1);
  EXPECT_FALSE(Core->Cleaner.tryBeginConcurrentPass(nullptr));
  // The empty registration consumed the pass budget.
  EXPECT_TRUE(Core->Cleaner.concurrentCleaningComplete());
}

TEST_F(CardCleaningTest, CleanPushesMarkedObjectsOnly) {
  Core->Cleaner.beginCycle(1);
  Object *Marked = plantMarked(0, 64);
  // An unmarked allocated neighbour on the same card.
  Object *Unmarked = reinterpret_cast<Object *>(Core->Heap.base() + 64);
  Unmarked->initialize(64, 0, 0);
  Core->Heap.allocBits().set(Unmarked);
  Core->Heap.cards().dirty(Marked);

  ASSERT_TRUE(Core->Cleaner.tryBeginConcurrentPass(nullptr));
  TraceContext Ctx(Core->Pool);
  EXPECT_EQ(Core->Cleaner.cleanSome(Ctx, 100), 1u);
  EXPECT_TRUE(Core->Cleaner.currentPassDrained());
  EXPECT_EQ(Ctx.popWork(), Marked);
  EXPECT_EQ(Ctx.popWork(), nullptr);
  Ctx.release();
  EXPECT_EQ(Core->Cleaner.cleanedConcurrent(), 1u);
  EXPECT_EQ(Core->Cleaner.cleanedFinal(), 0u);
}

TEST_F(CardCleaningTest, RegistrationIssuesHandshakeFence) {
  Core->Cleaner.beginCycle(1);
  plantMarked(0, 64);
  Core->Heap.cards().dirty(Core->Heap.base());
  fenceCounters().reset();
  ASSERT_TRUE(Core->Cleaner.tryBeginConcurrentPass(nullptr));
  EXPECT_GE(fenceCounters().count(FenceSite::CardTableHandshake), 1u);
  TraceContext Ctx(Core->Pool);
  Core->Cleaner.cleanSome(Ctx, 100);
  Ctx.release();
}

TEST_F(CardCleaningTest, PassBudgetEnforced) {
  Core->Cleaner.beginCycle(1);
  plantMarked(0, 64);
  Core->Heap.cards().dirty(Core->Heap.base());
  ASSERT_TRUE(Core->Cleaner.tryBeginConcurrentPass(nullptr));
  TraceContext Ctx(Core->Pool);
  Core->Cleaner.cleanSome(Ctx, 100);
  // Re-dirty: with a budget of one pass, no further pass starts.
  Core->Heap.cards().dirty(Core->Heap.base());
  EXPECT_FALSE(Core->Cleaner.tryBeginConcurrentPass(nullptr));
  EXPECT_TRUE(Core->Cleaner.concurrentCleaningComplete());
  // Drain our context's packets.
  while (Ctx.popWork())
    ;
  Ctx.release();
}

TEST_F(CardCleaningTest, TwoPassConfigRunsSecondPass) {
  Core->Cleaner.beginCycle(2);
  plantMarked(0, 64);
  Core->Heap.cards().dirty(Core->Heap.base());
  ASSERT_TRUE(Core->Cleaner.tryBeginConcurrentPass(nullptr));
  TraceContext Ctx(Core->Pool);
  Core->Cleaner.cleanSome(Ctx, 100);
  EXPECT_FALSE(Core->Cleaner.concurrentCleaningComplete());
  // Card dirtied again between passes.
  Core->Heap.cards().dirty(Core->Heap.base());
  ASSERT_TRUE(Core->Cleaner.tryBeginConcurrentPass(nullptr));
  EXPECT_EQ(Core->Cleaner.cleanSome(Ctx, 100), 1u);
  EXPECT_TRUE(Core->Cleaner.concurrentCleaningComplete());
  EXPECT_EQ(Core->Cleaner.cleanedConcurrent(), 2u);
  while (Ctx.popWork())
    ;
  Ctx.release();
}

TEST_F(CardCleaningTest, FinalPassCarriesOverInterruptedCards) {
  Core->Cleaner.beginCycle(1);
  Object *A = plantMarked(0, 64);
  Object *B = plantMarked(4096, 64); // A different card.
  Core->Heap.cards().dirty(A);
  Core->Heap.cards().dirty(B);
  ASSERT_TRUE(Core->Cleaner.tryBeginConcurrentPass(nullptr));
  TraceContext Ctx(Core->Pool);
  // Clean only one card, then "fail" into the final pass.
  EXPECT_EQ(Core->Cleaner.cleanSome(Ctx, 1), 1u);
  EXPECT_EQ(Core->Cleaner.registeredNotCleaned(), 1u);
  size_t FinalRegistered = Core->Cleaner.beginFinalPass();
  EXPECT_EQ(FinalRegistered, 1u); // The leftover card.
  EXPECT_EQ(Core->Cleaner.cleanSome(Ctx, 100), 1u);
  EXPECT_EQ(Core->Cleaner.cleanedFinal(), 1u);
  // Both objects were pushed exactly once in total.
  int Count = 0;
  while (Ctx.popWork())
    ++Count;
  EXPECT_EQ(Count, 2);
  Ctx.release();
}

TEST_F(CardCleaningTest, FinalPassPicksUpNewDirtyCards) {
  Core->Cleaner.beginCycle(0); // No concurrent cleaning at all.
  Object *A = plantMarked(0, 64);
  Core->Heap.cards().dirty(A);
  EXPECT_EQ(Core->Cleaner.beginFinalPass(), 1u);
  TraceContext Ctx(Core->Pool);
  EXPECT_EQ(Core->Cleaner.cleanSome(Ctx, 100), 1u);
  EXPECT_EQ(Ctx.popWork(), A);
  Ctx.release();
  // A second final pass with nothing dirty registers nothing.
  EXPECT_EQ(Core->Cleaner.beginFinalPass(), 0u);
}

TEST_F(CardCleaningTest, MultipleObjectsPerCard) {
  Core->Cleaner.beginCycle(1);
  // Card 0 holds several marked objects.
  for (int I = 0; I < 5; ++I)
    plantMarked(static_cast<size_t>(I) * 64, 64);
  Core->Heap.cards().dirty(Core->Heap.base());
  ASSERT_TRUE(Core->Cleaner.tryBeginConcurrentPass(nullptr));
  TraceContext Ctx(Core->Pool);
  Core->Cleaner.cleanSome(Ctx, 100);
  int Count = 0;
  while (Ctx.popWork())
    ++Count;
  EXPECT_EQ(Count, 5);
  Ctx.release();
}

TEST_F(CardCleaningTest, IdleCleanersDoNotBurnClaims) {
  // Regression test: cleanSome invoked while NO pass is active (starved
  // tracers probe it constantly) must not consume claim indices —
  // otherwise the first cards of the next registration are silently
  // skipped and their (already cleared) dirty flags are lost.
  Core->Cleaner.beginCycle(1);
  TraceContext Ctx(Core->Pool);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(Core->Cleaner.cleanSome(Ctx, 16), 0u);

  Object *A = plantMarked(0, 64);
  Object *B = plantMarked(4096, 64);
  Core->Heap.cards().dirty(A);
  Core->Heap.cards().dirty(B);
  ASSERT_TRUE(Core->Cleaner.tryBeginConcurrentPass(nullptr));
  EXPECT_EQ(Core->Cleaner.cleanSome(Ctx, 100), 2u)
      << "probing cleanSome while idle must not skip registered cards";
  EXPECT_TRUE(Core->Cleaner.currentPassDrained());
  int Count = 0;
  while (Ctx.popWork())
    ++Count;
  EXPECT_EQ(Count, 2);
  Ctx.release();
}

TEST_F(CardCleaningTest, TotalRegisteredAccumulates) {
  Core->Cleaner.beginCycle(2);
  plantMarked(0, 64);
  Core->Heap.cards().dirty(Core->Heap.base());
  ASSERT_TRUE(Core->Cleaner.tryBeginConcurrentPass(nullptr));
  TraceContext Ctx(Core->Pool);
  Core->Cleaner.cleanSome(Ctx, 100);
  Core->Heap.cards().dirty(Core->Heap.base() + 512);
  ASSERT_TRUE(Core->Cleaner.tryBeginConcurrentPass(nullptr));
  Core->Cleaner.cleanSome(Ctx, 100);
  EXPECT_EQ(Core->Cleaner.totalRegistered(), 2u);
  while (Ctx.popWork())
    ;
  Ctx.release();
}

} // namespace
