//===- metrics_export_test.cpp - exporter golden and schema tests -------------//
///
/// Locks in the serialized exporter formats: a golden-file test for the
/// Chrome-trace JSON and the cgc-bench-v1 document (exact output vs the
/// checked-in expectation, with the only nondeterministic field —
/// unix_ms — normalized), round-trip parse checks through the bundled
/// JSON parser, and negative tests for every validateBenchJson rule.
///
/// Regenerate goldens after an intentional format change with
/// `CGC_UPDATE_GOLDEN=1 ./metrics_export_test` and re-review the diff.
///
//===----------------------------------------------------------------------===//

#include "observe/BenchJsonWriter.h"
#include "observe/ChromeTraceExporter.h"
#include "observe/Json.h"

#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

using namespace cgc;

namespace {

std::string goldenPath(const char *Name) {
  return std::string(CGC_TEST_GOLDEN_DIR) + "/" + Name;
}

std::string readFileOrEmpty(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return "";
  std::ostringstream Buf;
  Buf << In.rdbuf();
  return Buf.str();
}

/// Compares \p Actual against the checked-in golden file, or rewrites
/// the golden when CGC_UPDATE_GOLDEN is set.
void expectMatchesGolden(const char *Name, const std::string &Actual) {
  std::string Path = goldenPath(Name);
  if (std::getenv("CGC_UPDATE_GOLDEN")) {
    std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(Out) << "cannot write " << Path;
    Out << Actual;
    GTEST_SKIP() << "golden updated: " << Path;
  }
  std::string Expected = readFileOrEmpty(Path);
  ASSERT_FALSE(Expected.empty())
      << "missing golden " << Path
      << " (run with CGC_UPDATE_GOLDEN=1 to create)";
  EXPECT_EQ(Actual, Expected) << "serialized format drifted from " << Name;
}

/// Replaces the wall-clock "unix_ms" value with 0 so bench documents
/// compare deterministically.
std::string normalizeUnixMs(std::string Json) {
  const std::string Key = "\"unix_ms\":";
  size_t Pos = Json.find(Key);
  if (Pos == std::string::npos)
    return Json;
  size_t Start = Pos + Key.size();
  size_t End = Start;
  while (End < Json.size() && (std::isdigit(Json[End]) || Json[End] == '-'))
    ++End;
  return Json.substr(0, Start) + "0" + Json.substr(End);
}

std::vector<EventRecord> traceFixture() {
  // Two threads: tid 1 has a proper Begin/End pair around an instant;
  // tid 2 has an orphan End (Begin lost to ring overwrite) followed by a
  // Begin left open at stream end (synthetic close expected).
  auto Rec = [](uint64_t T, uint32_t Tid, EventKind K, uint64_t A0,
                uint64_t A1) {
    EventRecord R;
    R.TimeNs = T;
    R.ThreadId = Tid;
    R.Kind = K;
    R.Arg0 = A0;
    R.Arg1 = A1;
    return R;
  };
  return {
      Rec(10000, 1, EventKind::CycleKickoff, 1, 4096),
      Rec(12000, 2, EventKind::StwEnd, 1, 0), // orphan: dropped
      Rec(15000, 1, EventKind::IncTraceBegin, 512, 1),
      Rec(18000, 1, EventKind::PacketGet, 1, 200),
      Rec(21000, 1, EventKind::IncTraceEnd, 480, 512),
      Rec(25000, 2, EventKind::StwBegin, 2, 0), // left open: synth close
      Rec(30000, 1, EventKind::CycleComplete, 1, 1),
  };
}

TEST(ChromeTraceExportTest, MatchesGolden) {
  expectMatchesGolden("chrome_trace_golden.json",
                      ChromeTraceExporter::toJson(traceFixture()));
}

TEST(ChromeTraceExportTest, OutputParsesAndPairsAreBalanced) {
  std::string Json = ChromeTraceExporter::toJson(traceFixture());
  std::string Error;
  std::unique_ptr<JsonValue> Doc = JsonValue::parse(Json, &Error);
  ASSERT_NE(Doc, nullptr) << Error;

  const JsonValue *Events = Doc->get("traceEvents");
  ASSERT_NE(Events, nullptr);
  ASSERT_EQ(Events->type(), JsonValue::Type::Array);

  int Begins = 0, Ends = 0, Instants = 0;
  for (const JsonValue &E : Events->arrayValue()) {
    const JsonValue *Ph = E.get("ph");
    ASSERT_NE(Ph, nullptr);
    const std::string &Phase = Ph->stringValue();
    if (Phase == "B")
      ++Begins;
    else if (Phase == "E")
      ++Ends;
    else if (Phase == "i")
      ++Instants;
    else
      FAIL() << "unexpected phase " << Phase;
    // Every event carries the required fields.
    EXPECT_NE(E.get("name"), nullptr);
    EXPECT_NE(E.get("ts"), nullptr);
    EXPECT_NE(E.get("tid"), nullptr);
    EXPECT_NE(E.get("pid"), nullptr);
  }
  // One real pair (inc_trace) + one synthetic close for the open
  // StwBegin; the orphan StwEnd was dropped.
  EXPECT_EQ(Begins, 2);
  EXPECT_EQ(Ends, 2);
  EXPECT_EQ(Instants, 3);
  // Timestamps are rebased to the earliest event.
  EXPECT_EQ(Events->arrayValue()[0].get("ts")->numberValue(), 0.0);
}

TEST(ChromeTraceExportTest, EmptyStreamStillLoads) {
  std::string Json = ChromeTraceExporter::toJson({});
  std::string Error;
  std::unique_ptr<JsonValue> Doc = JsonValue::parse(Json, &Error);
  ASSERT_NE(Doc, nullptr) << Error;
  EXPECT_TRUE(Doc->get("traceEvents")->arrayValue().empty());
}

BenchJsonWriter benchFixture() {
  BenchJsonWriter Json("goldenbench");
  Json.beginRow("warehouses=1");
  Json.addConfig("warehouses", 1);
  Json.addConfig("heap_mb", 48);
  Json.addMetric("pause_p50_ms", 1.5, "ms");
  Json.addMetric("throughput_per_s", 120000, "per_s");
  Json.beginRow("warehouses=2");
  Json.addConfig("warehouses", 2);
  Json.addConfig("heap_mb", 48);
  Json.addMetric("pause_p50_ms", 2.25, "ms");
  Json.addMetric("throughput_per_s", 110000, "per_s");
  return Json;
}

TEST(BenchJsonTest, MatchesGolden) {
  expectMatchesGolden("bench_golden.json",
                      normalizeUnixMs(benchFixture().toJson()));
}

TEST(BenchJsonTest, DocumentValidatesAndRoundTrips) {
  std::string Text = benchFixture().toJson();
  std::string Error;
  EXPECT_TRUE(validateBenchJson(Text, &Error)) << Error;

  std::unique_ptr<JsonValue> Doc = JsonValue::parse(Text, &Error);
  ASSERT_NE(Doc, nullptr) << Error;
  EXPECT_EQ(Doc->get("schema")->stringValue(), "cgc-bench-v1");
  EXPECT_EQ(Doc->get("bench")->stringValue(), "goldenbench");
  const std::vector<JsonValue> &Rows = Doc->get("rows")->arrayValue();
  ASSERT_EQ(Rows.size(), 2u);
  EXPECT_EQ(Rows[0].get("label")->stringValue(), "warehouses=1");
  EXPECT_EQ(Rows[0].get("config")->get("heap_mb")->numberValue(), 48.0);
  EXPECT_EQ(Rows[1].get("metrics")->get("pause_p50_ms")->numberValue(), 2.25);
  EXPECT_EQ(Doc->get("units")->get("throughput_per_s")->stringValue(),
            "per_s");
}

TEST(BenchJsonTest, NonFiniteMetricsAreClampedToZero) {
  BenchJsonWriter Json("nan");
  Json.beginRow("r");
  Json.addMetric("bad_ratio", std::nan(""), "ratio");
  Json.addMetric("inf_ratio", std::numeric_limits<double>::infinity(),
                 "ratio");
  std::string Error;
  EXPECT_TRUE(validateBenchJson(Json.toJson(), &Error)) << Error;
  std::unique_ptr<JsonValue> Doc = JsonValue::parse(Json.toJson(), &Error);
  ASSERT_NE(Doc, nullptr);
  const JsonValue &Row = Doc->get("rows")->arrayValue()[0];
  EXPECT_EQ(Row.get("metrics")->get("bad_ratio")->numberValue(), 0.0);
  EXPECT_EQ(Row.get("metrics")->get("inf_ratio")->numberValue(), 0.0);
}

TEST(BenchJsonValidatorTest, RejectsMalformedDocuments) {
  auto invalid = [](const std::string &Text) {
    std::string Error;
    bool Ok = validateBenchJson(Text, &Error);
    EXPECT_FALSE(Ok) << "accepted: " << Text;
    EXPECT_FALSE(Error.empty());
    return !Ok;
  };

  invalid("not json at all");
  invalid("{}");
  // Wrong schema string.
  invalid(R"({"schema":"cgc-bench-v2","bench":"x","unix_ms":1,"units":{},)"
          R"("rows":[{"label":"a","config":{},"metrics":{}}]})");
  // No rows.
  invalid(R"({"schema":"cgc-bench-v1","bench":"x","unix_ms":1,"units":{},)"
          R"("rows":[]})");
  // Duplicate labels.
  invalid(R"({"schema":"cgc-bench-v1","bench":"x","unix_ms":1,)"
          R"("units":{"m":"ms"},)"
          R"("rows":[{"label":"a","config":{},"metrics":{"m":1}},)"
          R"({"label":"a","config":{},"metrics":{"m":2}}]})");
  // Row with no metrics at all.
  invalid(R"({"schema":"cgc-bench-v1","bench":"x","unix_ms":1,"units":{},)"
          R"("rows":[{"label":"a","config":{},"metrics":{}}]})");
  // Metric key missing from the units map.
  invalid(R"({"schema":"cgc-bench-v1","bench":"x","unix_ms":1,"units":{},)"
          R"("rows":[{"label":"a","config":{},"metrics":{"m":1}}]})");
  // Non-numeric metric.
  invalid(R"({"schema":"cgc-bench-v1","bench":"x","unix_ms":1,)"
          R"("units":{"m":"ms"},)"
          R"("rows":[{"label":"a","config":{},"metrics":{"m":"fast"}}]})");
  // Non-numeric config knob.
  invalid(R"({"schema":"cgc-bench-v1","bench":"x","unix_ms":1,)"
          R"("units":{"m":"ms"},)"
          R"("rows":[{"label":"a","config":{"c":"big"},)"
          R"("metrics":{"m":1}}]})");
  // Missing label.
  invalid(R"({"schema":"cgc-bench-v1","bench":"x","unix_ms":1,)"
          R"("units":{"m":"ms"},)"
          R"("rows":[{"config":{},"metrics":{"m":1}}]})");
}

TEST(BenchJsonValidatorTest, AcceptsMinimalValidDocument) {
  std::string Error;
  EXPECT_TRUE(validateBenchJson(
      R"({"schema":"cgc-bench-v1","bench":"x","unix_ms":1,)"
      R"("units":{"m":"ms"},)"
      R"("rows":[{"label":"a","config":{"c":2},"metrics":{"m":1.5}}]})",
      &Error))
      << Error;
}

TEST(JsonParserTest, ParsesEscapesAndNesting) {
  std::string Error;
  std::unique_ptr<JsonValue> Doc = JsonValue::parse(
      R"({"s":"a\"b\\c\n","arr":[1,-2.5,true,false,null],"o":{"k":3}})",
      &Error);
  ASSERT_NE(Doc, nullptr) << Error;
  EXPECT_EQ(Doc->get("s")->stringValue(), "a\"b\\c\n");
  const std::vector<JsonValue> &Arr = Doc->get("arr")->arrayValue();
  ASSERT_EQ(Arr.size(), 5u);
  EXPECT_EQ(Arr[0].numberValue(), 1.0);
  EXPECT_EQ(Arr[1].numberValue(), -2.5);
  EXPECT_TRUE(Arr[2].boolValue());
  EXPECT_FALSE(Arr[3].boolValue());
  EXPECT_TRUE(Arr[4].isNull());
  EXPECT_EQ(Doc->get("o")->get("k")->numberValue(), 3.0);
}

TEST(JsonParserTest, RejectsGarbage) {
  for (const char *Bad : {"{", "[1,", "{\"a\":}", "12abc", "{\"a\" 1}"}) {
    std::string Error;
    EXPECT_EQ(JsonValue::parse(Bad, &Error), nullptr) << Bad;
    EXPECT_FALSE(Error.empty());
  }
}

TEST(JsonWriterTest, EscapesControlCharactersAndQuotes) {
  JsonWriter W;
  W.beginObject();
  W.key("k\"ey");
  W.value(std::string("v\x01\n\\"));
  W.endObject();
  EXPECT_EQ(W.str(), "{\"k\\\"ey\":\"v\\u0001\\n\\\\\"}");
}

} // namespace
