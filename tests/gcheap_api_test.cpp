//===- gcheap_api_test.cpp - public API edges ------------------------------------//

#include "runtime/GcHeap.h"

#include "support/Fences.h"

#include <gtest/gtest.h>

#include <cstring>

using namespace cgc;

namespace {

GcOptions apiOptions() {
  GcOptions Opts;
  Opts.HeapBytes = 8u << 20;
  Opts.BackgroundThreads = 0;
  Opts.NumWorkPackets = 32;
  return Opts;
}

class GcHeapApiTest : public ::testing::Test {
protected:
  GcHeapApiTest() : Heap(GcHeap::create(apiOptions())) {
    Ctx = &Heap->attachThread();
    Ctx->reserveRoots(16);
  }
  ~GcHeapApiTest() override { Heap->detachThread(*Ctx); }

  std::unique_ptr<GcHeap> Heap;
  MutatorContext *Ctx = nullptr;
};

TEST_F(GcHeapApiTest, ZeroPayloadZeroRefs) {
  Object *Obj = Heap->allocate(*Ctx, 0, 0);
  ASSERT_NE(Obj, nullptr);
  EXPECT_EQ(Obj->sizeBytes(), Object::MinObjectBytes);
  EXPECT_EQ(Obj->numRefs(), 0u);
  EXPECT_EQ(Obj->payloadBytes(), Object::MinObjectBytes - 8);
}

TEST_F(GcHeapApiTest, PayloadSizesRoundUp) {
  for (size_t Payload : {1u, 7u, 8u, 9u, 100u, 511u}) {
    Object *Obj = Heap->allocate(*Ctx, Payload, 0);
    ASSERT_NE(Obj, nullptr);
    EXPECT_GE(Obj->payloadBytes(), Payload);
    EXPECT_EQ(Obj->sizeBytes() % GranuleBytes, 0u);
  }
}

TEST_F(GcHeapApiTest, ManyRefSlots) {
  Object *Obj = Heap->allocate(*Ctx, 0, 100);
  ASSERT_NE(Obj, nullptr);
  EXPECT_EQ(Obj->numRefs(), 100u);
  for (unsigned I = 0; I < 100; ++I)
    EXPECT_EQ(GcHeap::readRef(Obj, I), nullptr);
  Object *Val = Heap->allocate(*Ctx, 8, 0);
  Heap->writeRef(*Ctx, Obj, 99, Val);
  EXPECT_EQ(GcHeap::readRef(Obj, 99), Val);
  EXPECT_EQ(GcHeap::readRef(Obj, 98), nullptr);
}

TEST_F(GcHeapApiTest, ClassIdPreservedAcrossGc) {
  Object *Obj = Heap->allocate(*Ctx, 16, 0, 4242);
  Ctx->setRoot(0, Obj);
  Heap->requestGC(Ctx);
  EXPECT_EQ(Ctx->getRoot(0)->classId(), 4242u);
}

TEST_F(GcHeapApiTest, WriteRefNullClearsSlot) {
  Object *Holder = Heap->allocate(*Ctx, 0, 1);
  Object *Val = Heap->allocate(*Ctx, 8, 0);
  Heap->writeRef(*Ctx, Holder, 0, Val);
  EXPECT_EQ(GcHeap::readRef(Holder, 0), Val);
  Heap->writeRef(*Ctx, Holder, 0, nullptr);
  EXPECT_EQ(GcHeap::readRef(Holder, 0), nullptr);
}

TEST_F(GcHeapApiTest, LargeObjectWithRefsAndPayload) {
  size_t Payload = 64u << 10; // Above the large-object threshold.
  Object *Big = Heap->allocate(*Ctx, Payload, 3, 9);
  ASSERT_NE(Big, nullptr);
  EXPECT_GE(Big->payloadBytes(), Payload);
  EXPECT_EQ(Big->numRefs(), 3u);
  std::memset(Big->payload(), 0xCD, Payload);
  Object *Child = Heap->allocate(*Ctx, 8, 0, 1);
  Heap->writeRef(*Ctx, Big, 1, Child);
  Ctx->setRoot(0, Big);
  Heap->requestGC(Ctx);
  Object *Kept = Ctx->getRoot(0);
  ASSERT_EQ(Kept, Big);
  EXPECT_EQ(Big->payload()[Payload - 1], 0xCD);
  EXPECT_EQ(GcHeap::readRef(Big, 1)->classId(), 1u);
}

TEST_F(GcHeapApiTest, AllocationFenceBatching) {
  // ~64 small allocations per 32 KB cache: fences scale with caches,
  // not with objects (Section 5.2).
  fenceCounters().reset();
  constexpr int NumObjects = 2000;
  for (int I = 0; I < NumObjects; ++I)
    Heap->allocate(*Ctx, 480, 0); // ~496 bytes each, ~66 per cache.
  uint64_t Fences = fenceCounters().count(FenceSite::AllocCacheFlush);
  EXPECT_LT(Fences, NumObjects / 20)
      << "alloc fences must be per cache flush, not per object";
}

TEST_F(GcHeapApiTest, PushPopRootsNest) {
  Object *A = Heap->allocate(*Ctx, 8, 0, 1);
  Object *B = Heap->allocate(*Ctx, 8, 0, 2);
  size_t Before = Ctx->numRoots();
  Ctx->pushRoot(A);
  Ctx->pushRoot(B);
  EXPECT_EQ(Ctx->numRoots(), Before + 2);
  Heap->requestGC(Ctx);
  EXPECT_EQ(A->classId(), 1u);
  EXPECT_EQ(B->classId(), 2u);
  Ctx->popRoots(2);
  EXPECT_EQ(Ctx->numRoots(), Before);
}

TEST_F(GcHeapApiTest, StatsExposeCompletedCycles) {
  EXPECT_EQ(Heap->completedCycles(), 0u);
  Heap->requestGC(Ctx);
  EXPECT_EQ(Heap->completedCycles(), 1u);
  EXPECT_EQ(Heap->stats().numCycles(), 1u);
  EXPECT_EQ(Heap->stats().snapshot().back().CycleNumber, 1u);
}

TEST_F(GcHeapApiTest, FreeBytesMoveWithAllocationAndGc) {
  size_t Before = Heap->freeBytes();
  for (int I = 0; I < 100; ++I)
    Heap->allocate(*Ctx, 1000, 0);
  EXPECT_LT(Heap->freeBytes(), Before);
  Heap->requestGC(Ctx); // All garbage reclaimed.
  EXPECT_GT(Heap->freeBytes(), Before - (64u << 10));
}

TEST_F(GcHeapApiTest, VerifyNowOnQuietHeap) {
  Object *Obj = Heap->allocate(*Ctx, 8, 1);
  Ctx->setRoot(0, Obj);
  VerifyResult R = Heap->verifyNow(Ctx);
  EXPECT_TRUE(R.Ok) << R.Error;
  EXPECT_GE(R.ReachableObjects, 1u);
}

TEST(GcHeapKickoffTest, ConcurrentPhaseStartsBeforeExhaustion) {
  // The kickoff formula must start the concurrent phase while free
  // memory remains, once estimates exist (i.e. after the first cycle).
  GcOptions Opts = apiOptions();
  Opts.Kind = CollectorKind::MostlyConcurrent;
  Opts.TracingRate = 4.0;
  auto Heap = GcHeap::create(Opts);
  MutatorContext &Ctx = Heap->attachThread();
  Ctx.reserveRoots(64);
  for (int I = 0; I < 64; ++I)
    Ctx.setRoot(I, Heap->allocate(Ctx, 8000, 0));
  size_t Churned = 0;
  while (Heap->completedCycles() < 4) {
    Object *Obj = Heap->allocate(Ctx, 512, 0);
    ASSERT_NE(Obj, nullptr);
    Churned += Obj->sizeBytes();
    ASSERT_LT(Churned, 1u << 30) << "collector never completed 4 cycles";
  }
  size_t ConcurrentCompletions = 0;
  for (const CycleRecord &R : Heap->stats().snapshot())
    if (R.Concurrent)
      ++ConcurrentCompletions;
  EXPECT_GT(ConcurrentCompletions, 0u);
  Heap->detachThread(Ctx);
}

} // namespace
