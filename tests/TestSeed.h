//===- TestSeed.h - CGC_SEED environment override for tests ----*- C++ -*-===//
///
/// \file
/// Seed plumbing for the randomized suites (soak, concurrent GC, fault
/// injection): `CGC_SEED=<n>` (decimal, or 0x-prefixed hex) overrides a
/// test's default seed, and the effective seed is printed to stderr so a
/// failing run's log always carries the line needed to reproduce it
/// (`ctest --output-on-failure` shows test output only on failure).
///
//===----------------------------------------------------------------------===//

#ifndef CGC_TESTS_TESTSEED_H
#define CGC_TESTS_TESTSEED_H

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>

namespace cgc {

/// Returns CGC_SEED from the environment if set (base auto-detected), or
/// \p Default. Prints the effective seed as "[ cgc ] <label>: CGC_SEED=N".
inline uint64_t testSeed(uint64_t Default, const char *Label) {
  uint64_t Seed = Default;
  if (const char *Env = std::getenv("CGC_SEED")) {
    char *End = nullptr;
    uint64_t Parsed = std::strtoull(Env, &End, 0);
    if (End && End != Env && *End == '\0')
      Seed = Parsed;
    else
      std::fprintf(stderr, "[ cgc ] %s: ignoring unparsable CGC_SEED=%s\n",
                   Label, Env);
  }
  std::fprintf(stderr,
               "[ cgc ] %s: CGC_SEED=%llu (set CGC_SEED to reproduce)\n",
               Label, static_cast<unsigned long long>(Seed));
  return Seed;
}

/// RAII guard for randomized tests: if the enclosing gtest test has
/// failed by the time the guard goes out of scope, the effective seed is
/// printed AGAIN, adjacent to the failure output. Chaos tests emit a lot
/// of log between the testSeed() banner and an eventual assertion
/// failure; the repro line must be the last thing a triager reads, not
/// the first thing scrolled away.
class ScopedSeedLog {
public:
  ScopedSeedLog(uint64_t Seed, const char *Label)
      : Seed(Seed), Label(Label) {}
  ~ScopedSeedLog() {
    if (::testing::Test::HasFailure())
      std::fprintf(
          stderr, "[ cgc ] %s: FAILED with CGC_SEED=%llu — rerun with "
                  "CGC_SEED=%llu to reproduce\n",
          Label, static_cast<unsigned long long>(Seed),
          static_cast<unsigned long long>(Seed));
  }

  ScopedSeedLog(const ScopedSeedLog &) = delete;
  ScopedSeedLog &operator=(const ScopedSeedLog &) = delete;

private:
  uint64_t Seed;
  const char *Label;
};

} // namespace cgc

#endif // CGC_TESTS_TESTSEED_H
