//===- TestSeed.h - CGC_SEED environment override for tests ----*- C++ -*-===//
///
/// \file
/// Seed plumbing for the randomized suites (soak, concurrent GC, fault
/// injection): `CGC_SEED=<n>` (decimal, or 0x-prefixed hex) overrides a
/// test's default seed, and the effective seed is printed to stderr so a
/// failing run's log always carries the line needed to reproduce it
/// (`ctest --output-on-failure` shows test output only on failure).
///
//===----------------------------------------------------------------------===//

#ifndef CGC_TESTS_TESTSEED_H
#define CGC_TESTS_TESTSEED_H

#include <cstdint>
#include <cstdio>
#include <cstdlib>

namespace cgc {

/// Returns CGC_SEED from the environment if set (base auto-detected), or
/// \p Default. Prints the effective seed as "[ cgc ] <label>: CGC_SEED=N".
inline uint64_t testSeed(uint64_t Default, const char *Label) {
  uint64_t Seed = Default;
  if (const char *Env = std::getenv("CGC_SEED")) {
    char *End = nullptr;
    uint64_t Parsed = std::strtoull(Env, &End, 0);
    if (End && End != Env && *End == '\0')
      Seed = Parsed;
    else
      std::fprintf(stderr, "[ cgc ] %s: ignoring unparsable CGC_SEED=%s\n",
                   Label, Env);
  }
  std::fprintf(stderr,
               "[ cgc ] %s: CGC_SEED=%llu (set CGC_SEED to reproduce)\n",
               Label, static_cast<unsigned long long>(Seed));
  return Seed;
}

} // namespace cgc

#endif // CGC_TESTS_TESTSEED_H
