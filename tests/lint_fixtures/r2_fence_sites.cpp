// fixture-as: gc/Tracer.cpp
// Rule R2: fence(FenceSite::X) only at documented (file, site) pairs;
// raw atomic_thread_fence only inside support/Fences.h.
#include <atomic>

namespace cgc {

void flushBatch() {
  fence(FenceSite::TracerBatch); // allowed: the Section-5.1 tracer batch site
  fence(FenceSite::AllocCacheFlush); // expect(R2)
  std::atomic_thread_fence(std::memory_order_seq_cst); // expect(R2)
}

void dynamicSite(FenceSite S) {
  fence(S); // expect(R2)
}

struct WithMember {
  // Even declaring a `fence(` outside the wrapper is flagged -- the
  // scanner is deliberately conservative about shadowing the name:
  void fence(); // expect(R2)
  void call() { this->fence(); } // calls through ./-> are not the wrapper
};

} // namespace cgc
