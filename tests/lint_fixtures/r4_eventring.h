// fixture-as: observe/EventRing.h
// Rule R4 over the observability headers: every std::atomic member —
// including atomic-array storage behind unique_ptr — carries a
// CGC_ATOMIC_DOC or CGC_GUARDED_BY claim. Local atomic access inside
// inline ring code stays clean when it goes through `auto *` slot
// pointers and explicit memory orders.
#include "support/Annotations.h"

#include <atomic>
#include <cstdint>
#include <memory>

namespace cgc {

class RingFixture {
public:
  void push(uint64_t TimeNs) {
    uint64_t W = WriteCursor.load(std::memory_order_relaxed);
    // Slot pointers are `auto *`: the fragment scanner must not mistake
    // a local access path for an undocumented member declaration.
    auto *Slot = &Slots[W & Mask];
    Slot[0].store(TimeNs, std::memory_order_relaxed);
    WriteCursor.store(W + 1, std::memory_order_release);
  }

private:
  static constexpr uint64_t Mask = 15;

  std::atomic<uint64_t> WriteCursor{0}; // expect(R4)

  CGC_ATOMIC_DOC("consumer-side progress; relaxed, drains serialized")
  std::atomic<uint64_t> ReadCursor{0};

  std::unique_ptr<std::atomic<uint64_t>[]> Slots; // expect(R4)

  CGC_ATOMIC_DOC("relaxed data words; publication ordered via WriteCursor")
  std::unique_ptr<std::atomic<uint64_t>[]> DocumentedSlots;
};

} // namespace cgc
