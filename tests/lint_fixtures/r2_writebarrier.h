// fixture-as: heap/CardTable.h
// Rule R2: the write barrier / card-table fast path must be fence free
// (paper Section 5.1); any fence here is a build error.
namespace cgc {

inline void writeBarrierSlot(void *Slot, void *Value) {
  fence(FenceSite::PacketPublish); // expect(R2)
  (void)Slot;
  (void)Value;
}

} // namespace cgc
