// fixture-as: heap/Clean.cpp
// A fully-conforming file: the scanner must report nothing, and must
// not be confused by literals, comments, or the preprocessor.
#include <atomic>

#define NOT_CODE(X)                                                            \
  do {                                                                         \
    X.load();                                                                  \
  } while (0)

void good(std::atomic<unsigned> &A) {
  A.store(1, std::memory_order_release);
  (void)A.load(std::memory_order_acquire);
  (void)A.fetch_add(1, std::memory_order_relaxed);
  const char *S = "A.load(); fence(FenceSite::Nope); while (1) "
                  "A.compare_exchange_weak(x, y);";
  (void)S;
  /* atomic_thread_fence(std::memory_order_seq_cst); in a comment */
  // fence(FenceSite::AllocCacheFlush); also in a comment
  char Q = '"';
  (void)Q;
}
