// fixture-as: gc/R1Fixture.cpp
// Rule R1: every atomic access spells its memory_order.
#include <atomic>

void accesses(std::atomic<int> &A, std::atomic<int> &B, int X) {
  (void)A.load(); // expect(R1)
  (void)A.load(std::memory_order_acquire);
  A.store(1); // expect(R1)
  A.store(1, std::memory_order_release);
  (void)A.exchange(2); // expect(R1)
  (void)A.exchange(2, std::memory_order_acq_rel);
  (void)A.fetch_add(1); // expect(R1)
  (void)A.fetch_add(1, std::memory_order_relaxed);
  (void)A.fetch_sub(1, std::memory_order_relaxed);
  // compare_exchange needs BOTH success and failure orders:
  (void)A.compare_exchange_strong(X, 3, std::memory_order_acq_rel); // expect(R1)
  (void)A.compare_exchange_strong(X, 3, std::memory_order_acq_rel,
                                  std::memory_order_relaxed);
  // An inner call's order must not vouch for the outer call:
  A.store(B.load(std::memory_order_acquire)); // expect(R1)
  // Suppression applies to its own line...
  (void)A.load(); // cgc-lint: allow(R1) fixture suppression
  // ...and to the line after a standalone comment:
  // cgc-lint: allow(R1) next-line suppression
  (void)A.load();
}

struct Holder {
  std::atomic<int> Flag{0}; // not a core header: R4 does not apply here
  void clear() { Flag.store(0, std::memory_order_relaxed); }
};

void notAtomics(std::vector<int> &V) {
  V.clear(); // member named like vector ops must not trip R1
}
