// fixture-as: mutator/ThreadRegistry.h
// Rule R4 over the thread-registry header: the stall-defense state
// (handshake epoch, stall-ring cursor, per-thread poll timestamps and
// the transition seqlock) is all cross-thread atomics — every one must
// document its publication protocol, because the flight recorder reads
// them from a signal handler and the fence handshake's quiescence proof
// hangs off their ordering. Orders stay explicit so R1 passes alongside.
#include "support/Annotations.h"

#include <atomic>
#include <cstdint>

namespace cgc {

class ThreadRegistryFixture {
public:
  uint64_t bumpEpoch() {
    return HandshakeEpoch.fetch_add(1, std::memory_order_seq_cst) + 1;
  }

  void stampPoll(uint64_t Now) {
    LastPollNanos.store(Now, std::memory_order_release);
  }

  bool stableNonRunning() const {
    uint64_t Seq = TransitionSeq.load(std::memory_order_acquire);
    return (Seq & 1) == 0 &&
           TransitionSeq.load(std::memory_order_acquire) == Seq;
  }

private:
  std::atomic<uint64_t> HandshakeEpoch{0}; // expect(R4)

  CGC_ATOMIC_DOC("monotone poll timestamp; release store by the owning "
                 "mutator at every cooperation point, acquire-read by "
                 "stall reporters and the flight recorder")
  std::atomic<uint64_t> LastPollNanos{0};

  std::atomic<uint64_t> StallCursor{0}; // expect(R4)

  CGC_ATOMIC_DOC("execution-transition seqlock: odd while the owner is "
                 "mid-transition; acq_rel bumps bracket the state store "
                 "so an even read-read-same pair proves fence ordering")
  std::atomic<uint64_t> TransitionSeq{0};
};

} // namespace cgc
