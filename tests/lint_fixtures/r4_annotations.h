// fixture-as: workpackets/PacketPool.h
// Rule R4: atomics in core component headers carry CGC_ATOMIC_DOC or
// CGC_GUARDED_BY; std::lock_guard<SpinLock> is banned tree-wide.
#include "support/Annotations.h"
#include "support/SpinLock.h"

#include <atomic>
#include <cstdint>

namespace cgc {

class Fixture {
  std::atomic<unsigned> Undocumented{0}; // expect(R4)

  CGC_ATOMIC_DOC("workers fetch_add relaxed; stats only")
  std::atomic<unsigned> Documented{0};

  mutable SpinLock Lock;
  std::atomic<bool> Guarded CGC_GUARDED_BY(Lock);

  // A signature mentioning an atomic is a function, not a member:
  std::atomic<uint32_t> &counterFor(int Kind);
};

inline void bad(SpinLock &L) {
  std::lock_guard<SpinLock> G(L); // expect(R4)
}

inline void good(SpinLock &L) { SpinLockGuard G(L); }

} // namespace cgc
