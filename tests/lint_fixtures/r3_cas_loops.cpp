// fixture-as: gc/R3Fixture.cpp
// Rule R3: no hand-rolled compare_exchange retry loops outside support/.
#include <atomic>

void casLoops(std::atomic<int> &A) {
  int V = A.load(std::memory_order_relaxed);
  while (!A.compare_exchange_weak(V, V + 1, std::memory_order_acq_rel, // expect(R3)
                                  std::memory_order_relaxed)) {
  }
  for (;;) {
    if (A.compare_exchange_strong(V, 0, std::memory_order_acq_rel, // expect(R3)
                                  std::memory_order_relaxed))
      break;
  }
  do {
    V = 1;
  } while (V != 1);
  // A single (non-looping) compare_exchange is a plain conditional
  // update, not a retry loop: allowed anywhere.
  int Expected = 0;
  (void)A.compare_exchange_strong(Expected, 1, std::memory_order_acq_rel,
                                  std::memory_order_relaxed);
}
