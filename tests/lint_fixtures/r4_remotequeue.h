// fixture-as: heap/RemoteFreeQueue.h
// Rule R4 over the remote-free queue header: the Treiber head and the
// racily-read byte ledger are the whole cross-thread protocol of the
// ownership-return channel, so every atomic member must carry a
// CGC_ATOMIC_DOC claim stating who writes it and at what order.
#include "support/Annotations.h"

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace cgc {

struct ChunkFixture {
  ChunkFixture *Next;
  size_t SizeBytes;
};

class RemoteQueueFixture {
public:
  ChunkFixture *takeAll() {
    return Head.exchange(nullptr, std::memory_order_acquire);
  }

  size_t queuedBytes() const {
    return QueuedBytes.load(std::memory_order_relaxed);
  }

private:
  std::atomic<ChunkFixture *> Head{nullptr}; // expect(R4)

  CGC_ATOMIC_DOC("producers fetch_add relaxed; pacer aggregation reads racily")
  std::atomic<size_t> QueuedBytes{0};

  std::atomic<uint64_t> PushCount{0}; // expect(R4)
};

} // namespace cgc
