// fixture-as: gc/Compactor.h
// Rule R4 over the compactor header: the parallel-evacuation phase
// cursors and per-worker tallies are atomics shared across the STW
// worker pool; each must say who touches it and why its orders
// suffice. The fetch_add work-claiming idiom with explicit orders must
// stay clean under R1 at the same time.
#include "support/Annotations.h"

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace cgc {

class CompactorFixture {
public:
  bool claimFixupChunk(size_t *Out) {
    size_t C = FixupCursor.fetch_add(1, std::memory_order_relaxed);
    *Out = C;
    return C < ChunkCount.load(std::memory_order_acquire);
  }

  void noteFailedMove() {
    FailedMoves.fetch_add(1, std::memory_order_relaxed);
  }

private:
  std::atomic<size_t> FixupCursor{0}; // expect(R4)

  CGC_ATOMIC_DOC("chunk total published once at phase start (release) "
                 "before the pool runs; workers read-only (acquire)")
  std::atomic<size_t> ChunkCount{0};

  std::atomic<uint64_t> FailedMoves{0}; // expect(R4)

  CGC_ATOMIC_DOC("per-cycle failed-move tally; relaxed increments from "
                 "any worker, read serially after the pool joins")
  std::atomic<uint64_t> PinnedObjects{0};
};

} // namespace cgc
