//===- integration_test.cpp - cross-module property sweeps ---------------------//
///
/// Property-style sweeps over the option grid: for every combination of
/// collector kind, lazy sweep, worker count, background threads and
/// packet-pool size, a verifying workload must run without integrity
/// failures and leave a heap the reachability verifier accepts.
///
//===----------------------------------------------------------------------===//

#include "runtime/GcHeap.h"
#include "workloads/GraphChurn.h"
#include "workloads/Warehouse.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <tuple>

using namespace cgc;

namespace {

struct GridPoint {
  CollectorKind Kind;
  bool LazySweep;
  unsigned Workers;
  unsigned BgThreads;
  uint32_t Packets;
  double TracingRate;
};

std::string gridName(const ::testing::TestParamInfo<GridPoint> &Info) {
  const GridPoint &G = Info.param;
  std::string Name =
      G.Kind == CollectorKind::StopTheWorld ? "Stw" : "Cgc";
  Name += G.LazySweep ? "Lazy" : "Eager";
  Name += "W" + std::to_string(G.Workers);
  Name += "B" + std::to_string(G.BgThreads);
  Name += "P" + std::to_string(G.Packets);
  Name += "T" + std::to_string(static_cast<int>(G.TracingRate));
  return Name;
}

class GcOptionGrid : public ::testing::TestWithParam<GridPoint> {
protected:
  std::unique_ptr<GcHeap> makeHeap() {
    const GridPoint &G = GetParam();
    GcOptions Opts;
    Opts.Kind = G.Kind;
    Opts.HeapBytes = 10u << 20;
    Opts.LazySweep = G.LazySweep;
    Opts.GcWorkerThreads = G.Workers;
    Opts.BackgroundThreads = G.BgThreads;
    Opts.NumWorkPackets = G.Packets;
    Opts.TracingRate = G.TracingRate;
    Opts.VerifyEachCycle = true;
    return GcHeap::create(Opts);
  }
};

TEST_P(GcOptionGrid, GraphChurnSoundness) {
  auto Heap = makeHeap();
  GraphChurnConfig Config;
  Config.Threads = 2;
  Config.DurationMs = 400;
  Config.Seed = 99 + static_cast<uint64_t>(GetParam().Packets);
  GraphChurnWorkload Workload(*Heap, Config);
  WorkloadResult Result = Workload.run();
  EXPECT_FALSE(Result.IntegrityFailure) << "live object reclaimed";
  EXPECT_GT(Result.Transactions, 0u);
  VerifyResult V = Heap->verifyNow(nullptr);
  EXPECT_TRUE(V.Ok) << V.Error;
}

TEST_P(GcOptionGrid, WarehouseThenVerify) {
  auto Heap = makeHeap();
  WarehouseConfig Config;
  Config.Threads = 2;
  Config.DurationMs = 400;
  Config.sizeLiveSet(5u << 20);
  WarehouseWorkload Workload(*Heap, Config);
  WorkloadResult Result = Workload.run();
  EXPECT_GT(Result.Transactions, 0u);
  VerifyResult V = Heap->verifyNow(nullptr);
  EXPECT_TRUE(V.Ok) << V.Error;
  // All threads detached: reachable set must be empty.
  EXPECT_EQ(V.ReachableObjects, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, GcOptionGrid,
    ::testing::Values(
        GridPoint{CollectorKind::StopTheWorld, false, 0, 0, 64, 8.0},
        GridPoint{CollectorKind::StopTheWorld, false, 3, 0, 64, 8.0},
        GridPoint{CollectorKind::StopTheWorld, true, 2, 0, 64, 8.0},
        GridPoint{CollectorKind::MostlyConcurrent, false, 2, 0, 64, 8.0},
        GridPoint{CollectorKind::MostlyConcurrent, false, 2, 2, 64, 8.0},
        GridPoint{CollectorKind::MostlyConcurrent, false, 1, 4, 64, 1.0},
        GridPoint{CollectorKind::MostlyConcurrent, false, 2, 1, 8, 8.0},
        GridPoint{CollectorKind::MostlyConcurrent, true, 2, 1, 64, 8.0},
        GridPoint{CollectorKind::MostlyConcurrent, false, 2, 1, 64, 10.0}),
    gridName);

TEST(IntegrationTest, TwoHeapsCoexist) {
  GcOptions Opts;
  Opts.HeapBytes = 4u << 20;
  Opts.BackgroundThreads = 1;
  auto HeapA = GcHeap::create(Opts);
  auto HeapB = GcHeap::create(Opts);
  MutatorContext &CtxA = HeapA->attachThread();
  MutatorContext &CtxB = HeapB->attachThread();
  CtxA.reserveRoots(1);
  CtxB.reserveRoots(1);
  CtxA.setRoot(0, HeapA->allocate(CtxA, 64, 0, 1));
  CtxB.setRoot(0, HeapB->allocate(CtxB, 64, 0, 2));
  HeapA->requestGC(&CtxA);
  HeapB->requestGC(&CtxB);
  EXPECT_EQ(CtxA.getRoot(0)->classId(), 1u);
  EXPECT_EQ(CtxB.getRoot(0)->classId(), 2u);
  HeapA->detachThread(CtxA);
  HeapB->detachThread(CtxB);
}

TEST(IntegrationTest, AttachDetachChurnDuringCollection) {
  GcOptions Opts;
  Opts.HeapBytes = 8u << 20;
  Opts.BackgroundThreads = 1;
  auto Heap = GcHeap::create(Opts);
  std::atomic<bool> Stop{false};
  // Allocator thread keeps the collector busy.
  std::thread Allocator([&] {
    MutatorContext &Ctx = Heap->attachThread();
    Ctx.reserveRoots(8);
    while (!Stop.load(std::memory_order_acquire)) {
      Object *Obj = Heap->allocate(Ctx, 512, 1, 0);
      if (!Obj)
        break;
      Ctx.setRoot(0, Obj);
    }
    Heap->detachThread(Ctx);
  });
  // Churn thread attach/detach repeatedly.
  for (int I = 0; I < 60; ++I) {
    MutatorContext &Ctx = Heap->attachThread();
    Ctx.reserveRoots(2);
    Object *Obj = Heap->allocate(Ctx, 128, 0, 0);
    if (Obj)
      Ctx.setRoot(0, Obj);
    Heap->detachThread(Ctx);
  }
  // Give the allocator thread time to drive at least one collection
  // (single-core hosts may not have scheduled it much yet).
  for (int I = 0; I < 10000 && Heap->completedCycles() == 0; ++I)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  Stop.store(true, std::memory_order_release);
  Allocator.join();
  EXPECT_GE(Heap->completedCycles(), 1u);
}

TEST(IntegrationTest, ForcedGcIdempotent) {
  GcOptions Opts;
  Opts.HeapBytes = 4u << 20;
  auto Heap = GcHeap::create(Opts);
  MutatorContext &Ctx = Heap->attachThread();
  Ctx.reserveRoots(1);
  Ctx.setRoot(0, Heap->allocate(Ctx, 64, 0, 9));
  for (int I = 0; I < 5; ++I)
    Heap->requestGC(&Ctx);
  EXPECT_EQ(Ctx.getRoot(0)->classId(), 9u);
  EXPECT_GE(Heap->completedCycles(), 5u);
  Heap->detachThread(Ctx);
}

} // namespace
