//===- cardtable_test.cpp - card table units -----------------------------------//

#include "heap/CardTable.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <thread>

using namespace cgc;

namespace {

class CardTableTest : public ::testing::Test {
protected:
  static constexpr size_t HeapBytes = 64u << 10; // 128 cards.
  void SetUp() override {
    Mem.reset(static_cast<uint8_t *>(std::aligned_alloc(4096, HeapBytes)));
    Cards = std::make_unique<CardTable>(Mem.get(), HeapBytes);
  }
  struct FreeDeleter {
    void operator()(uint8_t *P) const { std::free(P); }
  };
  std::unique_ptr<uint8_t, FreeDeleter> Mem;
  std::unique_ptr<CardTable> Cards;
};

TEST_F(CardTableTest, Geometry) {
  EXPECT_EQ(Cards->numCards(), HeapBytes / CardTable::CardBytes);
  EXPECT_EQ(Cards->cardIndexFor(Mem.get()), 0u);
  EXPECT_EQ(Cards->cardIndexFor(Mem.get() + 511), 0u);
  EXPECT_EQ(Cards->cardIndexFor(Mem.get() + 512), 1u);
  EXPECT_EQ(Cards->cardStart(1), Mem.get() + 512);
  EXPECT_EQ(Cards->cardEnd(1), Mem.get() + 1024);
}

TEST_F(CardTableTest, DirtyAndCount) {
  EXPECT_EQ(Cards->countDirty(), 0u);
  Cards->dirty(Mem.get() + 100);
  Cards->dirty(Mem.get() + 200); // Same card.
  Cards->dirty(Mem.get() + 5000);
  EXPECT_EQ(Cards->countDirty(), 2u);
  EXPECT_TRUE(Cards->isDirty(0));
  EXPECT_FALSE(Cards->isDirty(1));
  EXPECT_TRUE(Cards->isDirty(5000 / 512));
}

TEST_F(CardTableTest, RegisterAndClear) {
  Cards->dirty(Mem.get());
  Cards->dirty(Mem.get() + 3 * 512);
  std::vector<uint32_t> Registered;
  EXPECT_EQ(Cards->registerAndClearDirty(Registered), 2u);
  ASSERT_EQ(Registered.size(), 2u);
  EXPECT_EQ(Registered[0], 0u);
  EXPECT_EQ(Registered[1], 3u);
  EXPECT_EQ(Cards->countDirty(), 0u);
  // Registration appends; a second pass adds newly dirty cards.
  Cards->dirty(Mem.get() + 7 * 512);
  EXPECT_EQ(Cards->registerAndClearDirty(Registered), 1u);
  EXPECT_EQ(Registered.size(), 3u);
  EXPECT_EQ(Registered[2], 7u);
}

TEST_F(CardTableTest, ClearAll) {
  for (size_t I = 0; I < Cards->numCards(); ++I)
    Cards->dirty(Cards->cardStart(I));
  EXPECT_EQ(Cards->countDirty(), Cards->numCards());
  Cards->clearAll();
  EXPECT_EQ(Cards->countDirty(), 0u);
}

TEST_F(CardTableTest, RedirtyAfterRegistrationSurvives) {
  Cards->dirty(Mem.get());
  std::vector<uint32_t> R1, R2;
  Cards->registerAndClearDirty(R1);
  // A mutator dirties the same card again after registration.
  Cards->dirty(Mem.get());
  EXPECT_TRUE(Cards->isDirty(0));
  Cards->registerAndClearDirty(R2);
  ASSERT_EQ(R2.size(), 1u);
  EXPECT_EQ(R2[0], 0u);
}

TEST_F(CardTableTest, ConcurrentDirtyAndRegisterLosesNothing) {
  // A barrage of dirtying races with repeated registration; afterwards
  // every card is either registered or still dirty — never lost.
  constexpr int Rounds = 2000;
  std::vector<uint32_t> Registered;
  std::thread Mutator([&] {
    for (int I = 0; I < Rounds; ++I)
      Cards->dirty(Mem.get() + (I % Cards->numCards()) * 512);
  });
  for (int I = 0; I < 50; ++I)
    Cards->registerAndClearDirty(Registered);
  Mutator.join();
  Cards->registerAndClearDirty(Registered);

  std::vector<bool> Seen(Cards->numCards(), false);
  for (uint32_t Index : Registered)
    Seen[Index] = true;
  for (size_t I = 0; I < std::min<size_t>(Rounds, Cards->numCards()); ++I)
    EXPECT_TRUE(Seen[I]) << "card " << I << " lost";
}

} // namespace
